// Package rubik is a Go reproduction of "Rubik: Fast Analytical Power
// Management for Latency-Critical Systems" (Kasture, Bartolini, Beckmann,
// Sanchez — MICRO-48, 2015).
//
// Rubik is a fine-grain per-core DVFS controller: on every request arrival
// and completion it consults a statistical model of per-request work
// (compute cycles and memory-bound time, profiled online) to pick the
// lowest core frequency that keeps the tail (95th-percentile) response
// latency under a bound. This module contains the controller itself, the
// discrete-event simulation substrate the paper's evaluation needs (cores
// with DVFS and power models, latency-critical workload models, Poisson and
// step-load clients), the baseline schemes it is compared against
// (Fixed-frequency, StaticOracle, AdrenalineOracle, DynamicOracle, and a
// Pegasus-style feedback controller), the RubikColoc colocation substrate,
// a multi-core cluster simulator with pluggable request dispatch
// (NewCluster, SimulateCluster), a sharded fleet engine that simulates
// thousands of sockets across parallel event loops with shard-count-
// invariant results (NewFleet, SimulateFleet), a datacenter fleet model,
// and one experiment driver per table/figure of the paper.
//
// Request streams are pull-based Sources (StreamTrace, NewScenarioSource,
// SimulateSource, SimulateClusterSource): a scenario registry provides
// bursty MMPP, diurnal, flash-crowd, closed-loop and heavy-tailed shapes
// beyond the paper's Poisson/step clients, and because nothing on the
// streaming path materializes a trace, runs of tens of millions of
// requests use constant memory (ServerConfig.DropCompletions folds
// per-request records into a fixed-size latency histogram). A
// materialized Trace is just one Source: replaying it streamed is
// byte-identical to the classic path.
//
// # Quick start
//
//	app, _ := rubik.AppByName("masstree")
//	trace := rubik.GenerateTrace(app, 0.4, 9000, 1)    // 40% load
//	bound, _ := rubik.TailBound(app, 1)                // p95 @ fixed 2.4 GHz, 50% load
//	ctl, _ := rubik.NewController(bound)
//	res, _ := rubik.Simulate(trace, ctl)
//	fmt.Printf("p95 %.3f ms using %.3f mJ/request\n",
//		res.TailNs(0.95, 0.1)/1e6, res.EnergyPerRequestJ()*1e3)
//
// Experiment drivers (rubik.Experiments, rubik.RunExperiment) regenerate
// every table and figure of the paper's evaluation; the rubiksim command
// wraps them for the shell. DESIGN.md documents the architecture and the
// substitutions made for the paper's hardware-bound artifacts, and
// EXPERIMENTS.md records paper-vs-measured results.
package rubik

import (
	"fmt"
	"io"

	"rubik/internal/capping"
	"rubik/internal/cluster"
	rubikcore "rubik/internal/core"
	"rubik/internal/cpu"
	"rubik/internal/experiments"
	"rubik/internal/policy"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// Core aliases: the facade re-exports the building blocks so downstream
// code can use the library without reaching into internal packages.
type (
	// App is a latency-critical application model (paper Table 3).
	App = workload.LCApp
	// BatchApp is a throughput-oriented batch application model.
	BatchApp = workload.BatchApp
	// Trace is a reusable request stream; every scheme in a comparison
	// replays the same trace.
	Trace = workload.Trace
	// Request is one request of a trace.
	Request = workload.Request
	// Controller is the Rubik DVFS controller (the paper's contribution).
	Controller = rubikcore.Rubik
	// ControllerConfig tunes a Controller. Notable knobs beyond the paper
	// parameters: DriftThreshold enables the drift-gated table refresh
	// (skip the convolutions while the profiled distributions are still;
	// 0 = always rebuild, byte-identical results), and PackedFFT selects
	// the packed real-FFT rebuild pipeline (on by default: both
	// convolution chains ride one transform with Hermitian half-spectra
	// and pruned inverses, a 2-3x cheaper rebuild; clear it for the
	// reference complex pipeline — decision trajectories are identical,
	// as the cluster equivalence sweep pins).
	ControllerConfig = rubikcore.Config
	// TableBuilder is the persistent, allocation-free rebuild pipeline
	// behind a controller's target tail tables (FFT plans, streaming
	// profiles, in-place table refills). Controllers manage their own;
	// it is exported for callers that rebuild TailTables directly.
	TableBuilder = rubikcore.TableBuilder
	// TailTable is the pair of precomputed target tail tables.
	TailTable = rubikcore.TailTable
	// Policy decides core frequencies on each arrival and completion.
	Policy = queueing.Policy
	// Result is the outcome of simulating a trace under a policy.
	Result = queueing.Result
	// Completion records one served request.
	Completion = queueing.Completion
	// ServerConfig parameterizes the simulated core.
	ServerConfig = queueing.Config
	// Grid is a DVFS frequency grid.
	Grid = cpu.Grid
	// PowerModel is the analytical core power model.
	PowerModel = cpu.PowerModel
	// ExperimentOptions tunes experiment fidelity.
	ExperimentOptions = experiments.Options
	// Experiment describes one registered paper artifact driver.
	Experiment = experiments.Entry
	// ClusterConfig parameterizes a simulated multi-core server.
	ClusterConfig = cluster.Config
	// ClusterResult is the outcome of simulating a trace on a cluster.
	ClusterResult = cluster.Result
	// Dispatcher routes arriving requests to cluster cores.
	Dispatcher = cluster.Dispatcher
	// CoreState is the dispatcher-visible snapshot of one cluster core.
	CoreState = cluster.CoreState
	// FleetConfig parameterizes a sharded fleet: Sockets independent core
	// groups (each with its own source, dispatcher and power budget)
	// simulated across Shards parallel event loops. Results are invariant
	// to the shard count.
	FleetConfig = cluster.FleetConfig
	// FleetResult is the outcome of a fleet run: one ClusterResult per
	// socket, with pooled tails/energy, a streaming completion merge
	// (IterCompletions) that never materializes the fleet's request log,
	// and the aggregate rebuild-cache statistics (TableCache).
	FleetResult = cluster.FleetResult
	// TableCache is a bounded, content-addressed memo of tail-table
	// rebuilds: refreshes whose profiled inputs match a cached rebuild bit
	// for bit copy the cached table instead of re-running the FFT
	// convolutions, with bitwise-identical results. Goroutine-confined —
	// fleet runs create one per shard automatically
	// (FleetConfig.TableCacheEntries); attach one by hand via
	// ClusterConfig.TableCache or Controller.SetTableCache.
	TableCache = rubikcore.TableCache
	// TableCacheStats counts rebuild-cache outcomes (hits, misses,
	// fingerprint collisions, evictions).
	TableCacheStats = rubikcore.TableCacheStats
	// Source is a pull-based request stream: the streaming counterpart of
	// a Trace. Simulations consume sources without materializing them, so
	// run length is bounded by time, not memory.
	Source = workload.Source
	// Scenario is a named arrival/service shape in the scenario registry
	// (poisson, step, bursty, diurnal, flashcrowd, closedloop, heavytail,
	// correlated).
	Scenario = workload.Scenario
	// ArrivalProcess generates interarrival gaps (Poisson, StepLoad,
	// MMPP, Sinusoid, FlashCrowd).
	ArrivalProcess = workload.ArrivalProcess
	// ClosedLoop configures a closed-loop think-time client population.
	ClosedLoop = workload.ClosedLoop
	// Allocator reconciles per-core desired frequencies against a shared
	// power budget (uniform, greedy-slack, waterfill).
	Allocator = capping.Allocator
	// PowerDomainStats is the per-domain budget accounting of a capped
	// cluster run (ClusterResult.Capping).
	PowerDomainStats = capping.DomainStats
	// HierarchySpec describes a budget tree (rack -> PDU -> ... -> socket)
	// for hierarchical fleet capping (FleetConfig.Hierarchy).
	HierarchySpec = capping.HierarchySpec
	// LevelSpec is one level of a HierarchySpec: node count, optional
	// per-node cap, oversubscription ratio and allocator.
	LevelSpec = capping.LevelSpec
	// LevelAllocator divides one tree node's budget among its children
	// (StaticLevelAllocator, WaterfillLevelAllocator).
	LevelAllocator = capping.LevelAllocator
	// HierarchyStats is the per-level accounting of a hierarchical fleet
	// run (FleetResult.Hierarchy).
	HierarchyStats = capping.HierarchyStats
	// LevelStats is one level's grant statistics within HierarchyStats.
	LevelStats = capping.LevelStats
	// Time is a simulated timestamp or duration in nanoseconds
	// (FleetConfig.Epoch, ServerConfig.Deadline).
	Time = sim.Time
)

// NominalMHz is the nominal core frequency (2.4 GHz, paper Table 2).
const NominalMHz = cpu.NominalMHz

// DefaultTableCacheEntries is the per-shard rebuild-cache capacity fleet
// runs use when FleetConfig.TableCacheEntries is 0.
const DefaultTableCacheEntries = cluster.DefaultTableCacheEntries

// NewTableCache returns a rebuild cache bounded at the given entry count
// (at least 1). One cache per goroutine: it does not synchronize.
func NewTableCache(entries int) *TableCache { return rubikcore.NewTableCache(entries) }

// TailPercentile is the paper's tail definition (95th percentile).
const TailPercentile = 0.95

// Apps returns the five latency-critical application models in the paper's
// order: masstree, moses, shore, specjbb, xapian.
func Apps() []App { return workload.Apps() }

// AppByName looks an application model up by its paper name.
func AppByName(name string) (App, error) { return workload.AppByName(name) }

// DefaultGrid returns the paper's DVFS grid (0.8-3.4 GHz, 200 MHz steps).
func DefaultGrid() Grid { return cpu.DefaultGrid() }

// DefaultServerConfig returns the paper's simulated-core configuration.
func DefaultServerConfig() ServerConfig { return queueing.DefaultConfig() }

// GenerateTrace builds a Poisson request trace at a fraction of the app's
// nominal-frequency capacity (1.0 = the maximum rate at 2.4 GHz).
func GenerateTrace(app App, load float64, n int, seed int64) Trace {
	return workload.GenerateAtLoad(app, load, n, seed)
}

// StreamTrace returns the streaming equivalent of GenerateTrace: a
// Poisson source yielding the byte-identical request sequence for the
// same arguments, one request at a time. n < 0 streams forever — bound
// such runs with ServerConfig.Deadline (and DropCompletions for
// constant memory).
func StreamTrace(app App, load float64, n int, seed int64) Source {
	return workload.NewLoadSource(app, load, n, seed)
}

// TraceSource streams a materialized trace; replaying it through
// SimulateSource is byte-identical to Simulate on the trace.
func TraceSource(tr Trace) Source { return workload.NewTraceSource(tr) }

// Scenarios lists the registered arrival/service scenario shapes.
func Scenarios() []Scenario { return workload.Scenarios() }

// ScenarioByName looks a scenario up in the registry.
func ScenarioByName(name string) (Scenario, error) { return workload.ScenarioByName(name) }

// NewScenarioSource builds the named scenario's source for app at a mean
// load fraction, capped at n requests (n < 0: unbounded where the shape
// allows), deterministically per seed.
func NewScenarioSource(name string, app App, load float64, n int, seed int64) (Source, error) {
	sc, err := workload.ScenarioByName(name)
	if err != nil {
		return nil, err
	}
	return sc.New(app, load, n, seed), nil
}

// TailBound measures the app's latency bound the way the paper defines it:
// the p95 response latency of fixed-nominal execution at 50% load.
func TailBound(app App, seed int64) (float64, error) {
	tr := workload.GenerateAtLoad(app, 0.5, app.Requests, seed)
	res, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, queueing.DefaultConfig())
	if err != nil {
		return 0, err
	}
	return res.TailNs(TailPercentile, 0), nil
}

// NewController builds a Rubik controller with the paper's parameters for
// the given tail latency bound (ns).
func NewController(latencyBoundNs float64) (*Controller, error) {
	return rubikcore.New(rubikcore.DefaultConfig(latencyBoundNs))
}

// DefaultControllerConfig returns the paper's Rubik parameters for the
// given tail latency bound (ns), for callers that tweak knobs — e.g.
// DriftThreshold — before NewControllerWithConfig.
func DefaultControllerConfig(latencyBoundNs float64) ControllerConfig {
	return rubikcore.DefaultConfig(latencyBoundNs)
}

// NewControllerWithConfig builds a Rubik controller with explicit settings.
func NewControllerWithConfig(cfg ControllerConfig) (*Controller, error) {
	return rubikcore.New(cfg)
}

// NewTableBuilder returns a persistent tail-table rebuild pipeline with
// the given table dimensions (paper: percentile 0.95, 128 buckets, 8 rows,
// 16 queue positions). One builder per goroutine: it owns its buffers.
func NewTableBuilder(percentile float64, nbuckets, rows, maxQueue int) (*TableBuilder, error) {
	return rubikcore.NewTableBuilder(percentile, nbuckets, rows, maxQueue)
}

// Fixed returns the Fixed-frequency baseline policy.
func Fixed(mhz int) Policy { return queueing.FixedPolicy{MHz: mhz} }

// Simulate runs a trace under a policy on the default simulated core.
func Simulate(tr Trace, p Policy) (Result, error) {
	return queueing.Run(tr, p, queueing.DefaultConfig())
}

// SimulateWithConfig runs a trace under a policy with an explicit core
// configuration.
func SimulateWithConfig(tr Trace, p Policy, cfg ServerConfig) (Result, error) {
	return queueing.Run(tr, p, cfg)
}

// SimulateSource streams a source through a policy on the default
// simulated core. Set ServerConfig.DropCompletions (via
// SimulateSourceWithConfig) for constant-memory runs of unbounded
// streams.
func SimulateSource(src Source, p Policy) (Result, error) {
	return queueing.RunSource(src, p, queueing.DefaultConfig())
}

// SimulateSourceWithConfig streams a source through a policy with an
// explicit core configuration.
func SimulateSourceWithConfig(src Source, p Policy, cfg ServerConfig) (Result, error) {
	return queueing.RunSource(src, p, cfg)
}

// NewCluster assembles a multi-core server configuration: cores cores on
// one shared engine, each under a fresh policy from newPolicy, with the
// dispatcher routing arrivals. A nil dispatcher means round-robin.
func NewCluster(cores int, d Dispatcher, newPolicy func(core int) (Policy, error)) ClusterConfig {
	return cluster.Config{
		Cores:      cores,
		Dispatcher: d,
		Core:       queueing.DefaultConfig(),
		NewPolicy:  newPolicy,
	}
}

// SimulateCluster runs a trace on a simulated multi-core server. The
// trace carries the server's aggregate request stream (GenerateTrace with
// load scaled by the core count models N cores at a per-core load).
func SimulateCluster(tr Trace, cfg ClusterConfig) (ClusterResult, error) {
	return cluster.Run(tr, cfg)
}

// SimulateClusterSource streams a source through a simulated multi-core
// server: the streaming SimulateCluster, byte-identical for a
// TraceSource and constant-memory for generator sources.
func SimulateClusterSource(src Source, cfg ClusterConfig) (ClusterResult, error) {
	return cluster.RunSource(src, cfg)
}

// SimulateClusterPerCore runs cores with dedicated request streams (no
// dispatcher): core i of the cluster serves srcs[i] exclusively.
func SimulateClusterPerCore(srcs []Source, cfg ClusterConfig) (ClusterResult, error) {
	return cluster.RunPerCoreSources(srcs, cfg)
}

// NewFleet assembles a sharded fleet configuration: sockets independent
// groups of coresPerSocket cores, socket s fed by newSource(s) (derive
// per-socket seeds with ShardSeed) under fresh per-core policies from
// newPolicy. Dispatch defaults to per-socket round-robin and the shard
// count to GOMAXPROCS; set the returned config's NewDispatcher, Shards,
// CapW and Allocator fields to override. Rebuild caching is on by
// default (one TableCache of DefaultTableCacheEntries per shard); tune
// or disable it with the TableCacheEntries field.
func NewFleet(sockets, coresPerSocket int, newSource func(socket int) Source,
	newPolicy func(socket, core int) (Policy, error)) FleetConfig {
	return cluster.FleetConfig{
		Sockets:        sockets,
		CoresPerSocket: coresPerSocket,
		NewSource:      newSource,
		Core:           queueing.DefaultConfig(),
		NewPolicy:      newPolicy,
	}
}

// SimulateFleet runs a fleet across its configured shard count: shard
// goroutines steal sockets from a shared work queue and simulate each on
// a dedicated event loop, and the per-socket results merge
// deterministically — shard=N output is deeply equal to shard=1, which
// is the plain sequential loop over the sockets.
func SimulateFleet(cfg FleetConfig) (FleetResult, error) {
	return cluster.RunFleet(cfg)
}

// ShardSeed derives the seed for independent group (socket) i of a fleet
// from a fleet-level seed, so per-socket sources are deterministic per
// fleet seed yet mutually independent.
func ShardSeed(seed int64, group int) int64 { return workload.ShardSeed(seed, group) }

// DispatcherByName looks a dispatch discipline up by name (random,
// roundrobin, jsq, leastwork); seed only matters for random.
func DispatcherByName(name string, seed int64) (Dispatcher, error) {
	return cluster.DispatcherByName(name, seed)
}

// NewCappedCluster assembles a capped multi-core server: cfg plus a
// shared power budget of capW watts over one power domain spanning every
// core, enforced by the allocator (nil = waterfill). Use the returned
// config's PowerDomains field to split cores across several sockets.
func NewCappedCluster(cores int, d Dispatcher, capW float64, alloc Allocator,
	newPolicy func(core int) (Policy, error)) ClusterConfig {
	cfg := NewCluster(cores, d, newPolicy)
	cfg.CapW = capW
	cfg.Allocator = alloc
	return cfg
}

// SimulateClusterCapped runs a trace on a multi-core server under a
// shared power budget: cfg with CapW set to capW and the allocator
// applied (nil = waterfill, the default strategy). With capW <= 0 it is
// exactly SimulateCluster. The result's Capping field carries the
// per-domain accounting (throttle events, peak/average granted power,
// infeasible-cap time).
func SimulateClusterCapped(tr Trace, cfg ClusterConfig, capW float64, alloc Allocator) (ClusterResult, error) {
	if capW > 0 {
		cfg.CapW = capW
		cfg.Allocator = alloc
	}
	return cluster.Run(tr, cfg)
}

// SimulateClusterCappedSource is the streaming SimulateClusterCapped.
func SimulateClusterCappedSource(src Source, cfg ClusterConfig, capW float64, alloc Allocator) (ClusterResult, error) {
	if capW > 0 {
		cfg.CapW = capW
		cfg.Allocator = alloc
	}
	return cluster.RunSource(src, cfg)
}

// UniformAllocator splits the budget into equal per-core shares.
func UniformAllocator() Allocator { return capping.Uniform{} }

// GreedySlackAllocator sheds frequency from the cores with the most
// predicted tail slack first when the cap binds.
func GreedySlackAllocator() Allocator { return capping.GreedySlack{} }

// WaterfillAllocator raises cores toward their desired frequencies
// lowest-first until the budget is exhausted (FastCap-style max-min
// water-filling; the default strategy).
func WaterfillAllocator() Allocator { return capping.Waterfill{} }

// AllocatorByName looks an allocator strategy up by name (uniform,
// greedy-slack, waterfill).
func AllocatorByName(name string) (Allocator, error) { return capping.ByName(name) }

// StaticLevelAllocator divides a tree node's budget into equal per-child
// shares regardless of demand.
func StaticLevelAllocator() LevelAllocator { return capping.StaticLevel{} }

// WaterfillLevelAllocator raises children toward their reported demands
// lowest-first, then spreads any surplus toward their maxima (the default
// level strategy).
func WaterfillLevelAllocator() LevelAllocator { return capping.WaterfillLevel{} }

// LevelAllocatorByName looks a tree-level allocator up by name (static,
// waterfill).
func LevelAllocatorByName(name string) (LevelAllocator, error) { return capping.LevelByName(name) }

// FreqForPower returns the highest grid frequency whose active core power
// fits budgetW; ok is false when even the minimum step exceeds it.
func FreqForPower(g Grid, m PowerModel, budgetW float64) (fMHz int, ok bool) {
	return cpu.FreqForPower(g, m, budgetW)
}

// RandomDispatcher routes requests uniformly at random, reproducibly for
// a seed.
func RandomDispatcher(seed int64) Dispatcher { return cluster.NewRandom(seed) }

// RoundRobinDispatcher cycles through the cores in index order.
func RoundRobinDispatcher() Dispatcher { return cluster.NewRoundRobin() }

// JSQDispatcher routes to the core with the shortest queue (ties to the
// lowest index).
func JSQDispatcher() Dispatcher { return cluster.NewJSQ() }

// LeastWorkDispatcher routes to the core with the least pending work at
// its current frequency (ties to the lowest index).
func LeastWorkDispatcher() Dispatcher { return cluster.NewLeastWork() }

// StaticOracleMHz returns the lowest static frequency whose replay of the
// trace meets the bound (paper Sec. 5.2), and whether any frequency does.
func StaticOracleMHz(tr Trace, boundNs float64) (mhz int, feasible bool, err error) {
	res, err := policy.StaticOracle(tr, cpu.DefaultGrid(), boundNs, TailPercentile, policy.DefaultReplayConfig())
	if err != nil {
		return 0, false, err
	}
	return res.MHz, res.Feasible, nil
}

// Experiments lists the registered paper-artifact drivers.
func Experiments() []Experiment { return experiments.Registry() }

// RunExperiment executes a registered experiment by ID (e.g. "fig6") and
// writes its text rendering to w.
func RunExperiment(id string, opts ExperimentOptions, w io.Writer) error {
	return experiments.RunAndRender(id, opts, w)
}

// Validate sanity-checks a server configuration (exported for callers that
// assemble configurations by hand).
func Validate(cfg ServerConfig) error {
	if cfg.Grid.Len() == 0 {
		return fmt.Errorf("rubik: empty frequency grid")
	}
	if cfg.InitialMHz != 0 && cfg.Grid.Index(cfg.InitialMHz) < 0 {
		return fmt.Errorf("rubik: initial frequency %d not on grid", cfg.InitialMHz)
	}
	return cfg.Power.Validate()
}
