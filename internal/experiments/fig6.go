package experiments

import (
	"fmt"
	"io"

	"rubik/internal/cpu"
	"rubik/internal/policy"
	"rubik/internal/workload"
)

// Fig6Result reproduces Fig. 6: active core power savings of StaticOracle,
// AdrenalineOracle and Rubik over Fixed-frequency at 30/40/50% load, per
// app plus the cross-app mean.
type Fig6Result struct {
	Loads []float64
	Apps  []string // includes "mean" as the last entry
	// Savings[scheme][app][loadIdx] in fractions (0.37 = 37%).
	Static     map[string][]float64
	Adrenaline map[string][]float64
	Rubik      map[string][]float64
}

// Fig6 runs the headline steady-state power comparison.
func Fig6(opts Options) (*Fig6Result, error) {
	h := newHarness(opts)
	out := &Fig6Result{
		Loads:      []float64{0.3, 0.4, 0.5},
		Static:     map[string][]float64{},
		Adrenaline: map[string][]float64{},
		Rubik:      map[string][]float64{},
	}
	apps := workload.Apps()
	bounds := make([]float64, len(apps))
	for i, app := range apps {
		out.Apps = append(out.Apps, app.Name)
		b, err := h.bound(app)
		if err != nil {
			return nil, err
		}
		bounds[i] = b
	}
	// The (app, load) cells are independent; shard them across
	// Options.Workers goroutines into preallocated slots.
	static := make([]float64, len(apps)*len(out.Loads))
	adren := make([]float64, len(apps)*len(out.Loads))
	rubikSav := make([]float64, len(apps)*len(out.Loads))
	var jobs []func() error
	for ai, app := range apps {
		for li, load := range out.Loads {
			ai, li, app, load := ai, li, app, load
			jobs = append(jobs, func() error {
				bound := bounds[ai]
				tr := h.trace(app, load)
				fixed, err := policy.Replay(tr, policy.UniformAssignment(len(tr.Requests), cpu.NominalMHz), h.rcfg)
				if err != nil {
					return err
				}
				so, err := policy.StaticOracle(tr, h.grid, bound, TailPercentile, h.rcfg)
				if err != nil {
					return err
				}
				ad, err := policy.AdrenalineOracle(tr, h.grid, bound, TailPercentile, h.rcfg)
				if err != nil {
					return err
				}
				rb, err := h.runRubik(tr, bound, true)
				if err != nil {
					return err
				}
				slot := ai*len(out.Loads) + li
				static[slot] = 1 - so.Result.ActiveEnergyJ/fixed.ActiveEnergyJ
				adren[slot] = 1 - ad.Result.ActiveEnergyJ/fixed.ActiveEnergyJ
				rubikSav[slot] = 1 - rb.ActiveEnergyJ/fixed.ActiveEnergyJ
				return nil
			})
		}
	}
	if err := RunParallel(opts.Workers, jobs...); err != nil {
		return nil, err
	}
	for ai, app := range apps {
		for li := range out.Loads {
			slot := ai*len(out.Loads) + li
			out.Static[app.Name] = append(out.Static[app.Name], static[slot])
			out.Adrenaline[app.Name] = append(out.Adrenaline[app.Name], adren[slot])
			out.Rubik[app.Name] = append(out.Rubik[app.Name], rubikSav[slot])
		}
	}
	// Cross-app mean.
	out.Apps = append(out.Apps, "mean")
	for li := range out.Loads {
		var s, a, r float64
		for _, app := range apps {
			s += out.Static[app.Name][li]
			a += out.Adrenaline[app.Name][li]
			r += out.Rubik[app.Name][li]
		}
		n := float64(len(apps))
		out.Static["mean"] = append(out.Static["mean"], s/n)
		out.Adrenaline["mean"] = append(out.Adrenaline["mean"], a/n)
		out.Rubik["mean"] = append(out.Rubik["mean"], r/n)
	}
	return out, nil
}

// Render writes the savings table.
func (r *Fig6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 6 — core power savings over Fixed-frequency (%)")
	header := []string{"app", "load", "StaticOracle", "AdrenalineOracle", "Rubik"}
	var rows [][]string
	for _, app := range r.Apps {
		for li, load := range r.Loads {
			rows = append(rows, []string{
				app,
				fmt.Sprintf("%.0f%%", load*100),
				fmt.Sprintf("%.1f", r.Static[app][li]*100),
				fmt.Sprintf("%.1f", r.Adrenaline[app][li]*100),
				fmt.Sprintf("%.1f", r.Rubik[app][li]*100),
			})
		}
	}
	table(w, header, rows)
}
