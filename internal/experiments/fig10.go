package experiments

import (
	"fmt"
	"io"

	"rubik/internal/cpu"
	"rubik/internal/policy"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// Fig10App holds one app's load-step traces.
type Fig10App struct {
	App     string
	BoundMs float64
	// Sampled every 200 ms over the 12 s run.
	Times []sim.Time
	// Rolling 200 ms p95 per scheme (ms).
	StaticTailMs, AdrenalineTailMs, RubikTailMs []float64
	// Rolling 200 ms active power per scheme (W).
	StaticPowerW, AdrenalinePowerW, RubikPowerW []float64
	// Rubik's time-weighted mean frequency per sample (GHz).
	RubikFreqGHz []float64
	// Per-phase violation fractions (25%, 50%, 75%) for Rubik.
	RubikPhaseViol [3]float64
}

// Fig10Result reproduces Fig. 10: load steps 25%→50%→75% (4 s each) for
// StaticOracle, AdrenalineOracle and Rubik on all five apps.
type Fig10Result struct {
	Apps []Fig10App
}

// Fig10 runs the responsiveness comparison. StaticOracle and
// AdrenalineOracle are configured from the 50% steady-state trace (the
// bound-defining load) and cannot adapt; Rubik reacts per event.
func Fig10(opts Options) (*Fig10Result, error) {
	h := newHarness(opts)
	out := &Fig10Result{}
	phaseDur := 4 * sim.Second
	if opts.Quick {
		phaseDur = sim.Second
	}
	for _, app := range workload.Apps() {
		bound, err := h.bound(app)
		if err != nil {
			return nil, err
		}
		rates := []float64{app.RateForLoad(0.25), app.RateForLoad(0.5), app.RateForLoad(0.75)}
		step, err := workload.NewStepLoad(
			workload.Phase{Start: 0, RatePerSec: rates[0]},
			workload.Phase{Start: phaseDur, RatePerSec: rates[1]},
			workload.Phase{Start: 2 * phaseDur, RatePerSec: rates[2]},
		)
		if err != nil {
			return nil, err
		}
		n := int(float64(phaseDur) / 1e9 * (rates[0] + rates[1] + rates[2]))
		tr := workload.Generate(app, step, n, opts.Seed+stableSeed(app.Name, 10))

		steady := h.trace(app, 0.5)
		so, err := policy.StaticOracle(steady, h.grid, bound, TailPercentile, h.rcfg)
		if err != nil {
			return nil, err
		}
		soRep, err := policy.Replay(tr, policy.UniformAssignment(len(tr.Requests), so.MHz), h.rcfg)
		if err != nil {
			return nil, err
		}

		ad, err := policy.AdrenalineOracle(steady, h.grid, bound, TailPercentile, h.rcfg)
		if err != nil {
			return nil, err
		}
		adFreqs := make([]int, len(tr.Requests))
		for i, req := range tr.Requests {
			if req.ServiceNs(cpu.NominalMHz) >= ad.ThresholdNs {
				adFreqs[i] = ad.HighMHz
			} else {
				adFreqs[i] = ad.LowMHz
			}
		}
		adRep, err := policy.Replay(tr, adFreqs, h.rcfg)
		if err != nil {
			return nil, err
		}

		qcfg := h.qcfg
		qcfg.RecordTimeline = true
		rb, err := h.rubik(bound, true)
		if err != nil {
			return nil, err
		}
		rbRes, err := queueing.Run(tr, rb, qcfg)
		if err != nil {
			return nil, err
		}

		a := Fig10App{App: app.Name, BoundMs: ms(bound)}
		const stepT = 200 * sim.Millisecond
		const window = 200 * sim.Millisecond
		end := rbRes.EndTime
		soTail := rollingTail(replayCompletions(tr, soRep), window, stepT, TailPercentile)
		adTail := rollingTail(replayCompletions(tr, adRep), window, stepT, TailPercentile)
		rbTail := rollingTail(rbRes.Completions, window, stepT, TailPercentile)
		soPow := rollingPower(replayEnergy(tr, soRep, policy.UniformAssignment(len(tr.Requests), so.MHz), h), window, stepT, end)
		adPow := rollingPower(replayEnergy(tr, adRep, adFreqs, h), window, stepT, end)
		rbPow := rollingPower(rbRes.EnergyTimeline, window, stepT, end)
		for t := stepT; t <= end; t += stepT {
			a.Times = append(a.Times, t)
			a.StaticTailMs = append(a.StaticTailMs, ms(valueAt(soTail, t)))
			a.AdrenalineTailMs = append(a.AdrenalineTailMs, ms(valueAt(adTail, t)))
			a.RubikTailMs = append(a.RubikTailMs, ms(valueAt(rbTail, t)))
			a.StaticPowerW = append(a.StaticPowerW, valueAt(soPow, t))
			a.AdrenalinePowerW = append(a.AdrenalinePowerW, valueAt(adPow, t))
			a.RubikPowerW = append(a.RubikPowerW, valueAt(rbPow, t))
			a.RubikFreqGHz = append(a.RubikFreqGHz, meanFreqGHz(rbRes.FreqTimeline, t-stepT, t, end))
		}
		// Per-phase Rubik violations.
		for ph := 0; ph < 3; ph++ {
			lo := sim.Time(ph) * phaseDur
			hi := lo + phaseDur
			var n, v int
			for _, c := range rbRes.Completions {
				if c.Arrival >= lo && c.Arrival < hi {
					n++
					if c.ResponseNs > bound {
						v++
					}
				}
			}
			if n > 0 {
				a.RubikPhaseViol[ph] = float64(v) / float64(n)
			}
		}
		out.Apps = append(out.Apps, a)
	}
	return out, nil
}

// replayEnergy reconstructs an energy timeline from a replay's per-request
// services, for the rolling-power panels.
func replayEnergy(tr workload.Trace, rep policy.ReplayResult, freqs []int, h *harness) []queueing.EnergySample {
	out := make([]queueing.EnergySample, len(rep.Dones))
	for i := range rep.Dones {
		service := tr.Requests[i].ServiceNs(freqs[i])
		out[i] = queueing.EnergySample{
			T: rep.Dones[i],
			J: h.power.ActivePower(freqs[i]) * service / 1e9,
		}
	}
	return out
}

// Render prints one condensed table per app.
func (r *Fig10Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 10 — load steps 25%→50%→75%: rolling 200 ms p95 (ms), active power (W), Rubik frequency (GHz)")
	for _, a := range r.Apps {
		fmt.Fprintf(w, "\n%s (bound %.3f ms; rubik violations by phase: %.1f%% / %.1f%% / %.1f%%)\n",
			a.App, a.BoundMs, a.RubikPhaseViol[0]*100, a.RubikPhaseViol[1]*100, a.RubikPhaseViol[2]*100)
		var rows [][]string
		for i, t := range a.Times {
			if i%4 != 3 { // print every 800 ms
				continue
			}
			rows = append(rows, []string{
				fmt.Sprintf("%.1f", float64(t)/1e9),
				fmt.Sprintf("%.3f", a.StaticTailMs[i]),
				fmt.Sprintf("%.3f", a.AdrenalineTailMs[i]),
				fmt.Sprintf("%.3f", a.RubikTailMs[i]),
				fmt.Sprintf("%.2f", a.StaticPowerW[i]),
				fmt.Sprintf("%.2f", a.AdrenalinePowerW[i]),
				fmt.Sprintf("%.2f", a.RubikPowerW[i]),
				fmt.Sprintf("%.2f", a.RubikFreqGHz[i]),
			})
		}
		table(w, []string{"t(s)", "so tail", "adr tail", "rubik tail", "so W", "adr W", "rubik W", "rubik GHz"}, rows)
	}
}
