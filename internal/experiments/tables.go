package experiments

import (
	"fmt"
	"io"

	"rubik/internal/cpu"
	"rubik/internal/workload"
)

// Table2Result reproduces Table 2: the simulated CMP configuration as this
// reproduction models it.
type Table2Result struct {
	Rows [][2]string
}

// Table2 collects the configuration constants.
func Table2(Options) (*Table2Result, error) {
	grid := cpu.DefaultGrid()
	model := cpu.DefaultPowerModel()
	system := cpu.DefaultSystemPower()
	return &Table2Result{Rows: [][2]string{
		{"Cores", "6 cores, request-level model (paper: Westmere-like OOO in zsim)"},
		{"DVFS range", fmt.Sprintf("%.1f-%.1f GHz in %d MHz steps (%d steps)",
			float64(grid.Min())/1000, float64(grid.Max())/1000, cpu.StepMHz, grid.Len())},
		{"Nominal frequency", fmt.Sprintf("%.1f GHz", float64(cpu.NominalMHz)/1000)},
		{"V/F transition latency", "4 us (Haswell-like FIVR); 130 us in real-system mode"},
		{"Core power @nominal", fmt.Sprintf("%.2f W active, %.2f W sleep", model.ActivePower(cpu.NominalMHz), model.SleepPower())},
		{"Core power @max", fmt.Sprintf("%.2f W (6 cores ≈ %.0f W, near the 65 W TDP)",
			model.ActivePower(grid.Max()), 6*model.ActivePower(grid.Max()))},
		{"Core sleep state", "C3-like, 5 us wake penalty (L1/L2 flushed to LLC)"},
		{"Non-core power", fmt.Sprintf("uncore %.0f W + DRAM %.0f W + other %.0f W idle; +%.1f W per active core",
			system.UncoreIdleW, system.DRAMIdleW, system.OtherW,
			system.UncorePerActiveCoreW+system.DRAMPerActiveCoreW)},
		{"Memory system", "partitioned under colocation (Vantage/channel partitioning modeled as zero cross-workload memory interference)"},
	}}, nil
}

// Render writes the configuration.
func (r *Table2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 2 — simulated CMP configuration")
	var rows [][]string
	for _, kv := range r.Rows {
		rows = append(rows, []string{kv[0], kv[1]})
	}
	table(w, []string{"parameter", "value"}, rows)
}

// Table3Result reproduces Table 3: per-app workload configuration and
// request counts.
type Table3Result struct {
	Apps []workload.LCApp
}

// Table3 collects the app models.
func Table3(Options) (*Table3Result, error) {
	return &Table3Result{Apps: workload.Apps()}, nil
}

// Render writes the workload table.
func (r *Table3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 3 — latency-critical application models")
	var rows [][]string
	for _, a := range r.Apps {
		rows = append(rows, []string{
			a.Name,
			a.Workload,
			fmt.Sprintf("%d", a.Requests),
			fmt.Sprintf("%.3f ms", a.MeanServiceNsAtNominal()/1e6),
			fmt.Sprintf("%.0f%%", a.MemFrac*100),
		})
	}
	table(w, []string{"app", "workload", "requests", "mean service @2.4GHz", "memory-bound"}, rows)
}
