package experiments

import (
	"fmt"
	"io"
	"sort"

	"rubik/internal/policy"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

// FigCDFResult reproduces Figs. 7 and 8: at 50% load, the response-latency
// CDFs of StaticOracle, AdrenalineOracle and Rubik against the tail bound,
// plus Rubik's frequency residency histogram. Rubik delays short requests
// (CDF low end shifts right) without crossing the bound.
type FigCDFResult struct {
	App         string
	BoundMs     float64
	Percentiles []float64
	// LatencyMs[scheme][k] is the latency at Percentiles[k].
	StaticMs     []float64
	AdrenalineMs []float64
	RubikMs      []float64
	// Residency[i] is Rubik's fraction of active time at GridMHz[i].
	GridMHz   []int
	Residency []float64
}

// Fig7 characterizes masstree (tightly clustered service times).
func Fig7(opts Options) (*FigCDFResult, error) {
	return figCDF(opts, workload.Masstree())
}

// Fig8 characterizes xapian (variable service times: the CDF shift is less
// pronounced and frequencies more conservative).
func Fig8(opts Options) (*FigCDFResult, error) {
	return figCDF(opts, workload.Xapian())
}

func figCDF(opts Options, app workload.LCApp) (*FigCDFResult, error) {
	h := newHarness(opts)
	bound, err := h.bound(app)
	if err != nil {
		return nil, err
	}
	tr := h.trace(app, 0.5)
	so, err := policy.StaticOracle(tr, h.grid, bound, TailPercentile, h.rcfg)
	if err != nil {
		return nil, err
	}
	ad, err := policy.AdrenalineOracle(tr, h.grid, bound, TailPercentile, h.rcfg)
	if err != nil {
		return nil, err
	}
	rb, err := h.runRubik(tr, bound, true)
	if err != nil {
		return nil, err
	}

	out := &FigCDFResult{
		App:         app.Name,
		BoundMs:     ms(bound),
		Percentiles: []float64{0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99},
		GridMHz:     h.grid.Steps(),
		Residency:   rb.Residency,
	}
	at := func(vals []float64) []float64 {
		cp := append([]float64(nil), vals...)
		sort.Float64s(cp)
		var row []float64
		for _, p := range out.Percentiles {
			row = append(row, ms(stats.PercentileSorted(cp, p)))
		}
		return row
	}
	out.StaticMs = at(so.Result.ResponsesNs)
	out.AdrenalineMs = at(ad.Result.ResponsesNs)
	out.RubikMs = at(rb.Responses(Warmup))
	return out, nil
}

// Render prints the CDF samples and the frequency histogram.
func (r *FigCDFResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 7/8 — %s response latency CDF at 50%% load (tail bound %.3f ms)\n", r.App, r.BoundMs)
	var rows [][]string
	for k, p := range r.Percentiles {
		rows = append(rows, []string{
			fmt.Sprintf("p%.0f", p*100),
			fmt.Sprintf("%.3f", r.StaticMs[k]),
			fmt.Sprintf("%.3f", r.AdrenalineMs[k]),
			fmt.Sprintf("%.3f", r.RubikMs[k]),
		})
	}
	table(w, []string{"pct", "StaticOracle(ms)", "AdrenalineOracle(ms)", "Rubik(ms)"}, rows)
	fmt.Fprintln(w, "Rubik frequency residency (fraction of active time):")
	var fr [][]string
	for i, f := range r.GridMHz {
		if r.Residency[i] < 0.001 {
			continue
		}
		fr = append(fr, []string{
			fmt.Sprintf("%.1f GHz", float64(f)/1000),
			fmt.Sprintf("%.3f", r.Residency[i]),
		})
	}
	table(w, []string{"freq", "fraction"}, fr)
}
