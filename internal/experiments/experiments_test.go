package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Quick: true, Seed: 7}
}

// TestRegistryCoversEveryArtifact pins the experiment inventory to the
// paper's tables and figures (DESIGN.md §5).
func TestRegistryCoversEveryArtifact(t *testing.T) {
	want := []string{
		"fig1a", "fig1b", "fig2a", "fig2b", "fig2c",
		"table1", "table2", "table3",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"pmv", "fig15", "fig16",
		"ablation", "pegasus", "clusterscale", "scenarios", "capping",
		"fleetscale", "fleetcap",
	}
	reg := Registry()
	have := map[string]bool{}
	for _, e := range reg {
		have[e.ID] = true
		if e.Description == "" || e.Run == nil {
			t.Errorf("experiment %s missing description or runner", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(reg) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(reg), len(want))
	}
	if _, err := Find("fig6"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown ID must error")
	}
}

func TestFig1a(t *testing.T) {
	r, err := Fig1a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rubik) != 3 || len(r.StaticOracle) != 3 {
		t.Fatalf("wrong series lengths: %+v", r)
	}
	// Fig 1a's claim: Rubik uses less energy than StaticOracle at every
	// load (up to 23% less in the paper).
	for i := range r.Loads {
		if r.Rubik[i] >= r.StaticOracle[i] {
			t.Errorf("load %.0f%%: Rubik %.3f mJ >= StaticOracle %.3f mJ",
				r.Loads[i]*100, r.Rubik[i], r.StaticOracle[i])
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 1a") {
		t.Error("render missing title")
	}
}

func TestFig1b(t *testing.T) {
	r, err := Fig1b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Times) < 10 {
		t.Fatalf("too few samples: %d", len(r.Times))
	}
	// Rubik's frequency must rise after the load step at t=1s.
	var before, after []float64
	for i, ts := range r.Times {
		if ts <= 1e9 {
			before = append(before, r.RubikFreqGHz[i])
		} else {
			after = append(after, r.RubikFreqGHz[i])
		}
	}
	if meanOf(after) <= meanOf(before) {
		t.Errorf("Rubik frequency did not rise after step: %.2f -> %.2f GHz",
			meanOf(before), meanOf(after))
	}
	// Rubik's violations must stay small across the step.
	if r.RubikViolFrac > 0.08 {
		t.Errorf("Rubik violations %.2f across step", r.RubikViolFrac)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestFig2a(t *testing.T) {
	r, err := Fig2a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range r.Apps {
		row := r.NormQPS[app]
		if len(row) != len(r.Percentiles) {
			t.Fatalf("%s: wrong row length", app)
		}
		// Fig 2a: instantaneous load varies substantially around the
		// average. High-rate apps (specjbb: ~28 arrivals per 5 ms window)
		// have tighter CDFs — exactly as in the paper's figure, where
		// specjbb is the steepest curve.
		if row[0] > 0.8 {
			t.Errorf("%s: p5 normalized QPS %.2f too high (no variability)", app, row[0])
		}
		if row[len(row)-1] < 1.25 {
			t.Errorf("%s: p99 normalized QPS %.2f too low", app, row[len(row)-1])
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 2a") {
		t.Error("render missing title")
	}
}

func TestFig2b(t *testing.T) {
	r, err := Fig2b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Response) == 0 || len(r.QueueLen) == 0 || r.MeanQPS <= 0 {
		t.Fatalf("missing panels: %+v", r)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "masstree") {
		t.Error("render missing app name")
	}
}

func TestFig2c(t *testing.T) {
	r, err := Fig2c(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range r.Apps {
		row := r.NormTail[app]
		// Normalized tail >= ~1 everywhere and grows with load.
		if row[0] < 0.9 {
			t.Errorf("%s: normalized tail %.2f below 1 at low load", app, row[0])
		}
		if row[len(row)-1] <= row[0] {
			t.Errorf("%s: tail did not grow with load: %v", app, row)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range r.Apps {
		c := r.Correlations[app]
		// Table 1's headline: queue length is the dominant correlate.
		if c[2] < 0.5 {
			t.Errorf("%s: queue-length correlation %.2f too weak", app, c[2])
		}
		if c[2] < c[0] || c[2] < c[1] {
			t.Errorf("%s: queue length (%.2f) not dominant over service (%.2f)/QPS (%.2f)",
				app, c[2], c[0], c[1])
		}
	}
	// masstree's service-time correlation is near zero (paper: 0.03).
	if c := r.Correlations["masstree"]; c[0] > 0.35 {
		t.Errorf("masstree service correlation %.2f, want near zero", c[0])
	}
	// Variable apps correlate with service time more strongly.
	if r.Correlations["shore"][0] <= r.Correlations["masstree"][0] {
		t.Error("shore service correlation should exceed masstree's")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("render missing title")
	}
}

func TestTables23(t *testing.T) {
	t2, err := Table2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) < 5 {
		t.Fatal("Table 2 too short")
	}
	t3, err := Table3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Apps) != 5 {
		t.Fatal("Table 3 must list 5 apps")
	}
	var buf bytes.Buffer
	t2.Render(&buf)
	t3.Render(&buf)
	if !strings.Contains(buf.String(), "masstree") {
		t.Error("Table 3 render missing apps")
	}
}

func TestFig6(t *testing.T) {
	r, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Apps[len(r.Apps)-1] != "mean" {
		t.Fatal("missing cross-app mean")
	}
	for _, app := range r.Apps {
		for li := range r.Loads {
			// Rubik leads every scheme on every app and load (Fig. 6).
			if r.Rubik[app][li] < r.Static[app][li]-0.02 {
				t.Errorf("%s@%.0f%%: Rubik %.1f%% below StaticOracle %.1f%%",
					app, r.Loads[li]*100, r.Rubik[app][li]*100, r.Static[app][li]*100)
			}
		}
	}
	// At 30% load the mean savings are large; at 50% StaticOracle's mean
	// savings collapse while Rubik still saves (Fig. 6's shape).
	if r.Rubik["mean"][0] < 0.20 {
		t.Errorf("mean Rubik savings at 30%% = %.1f%%, want >20%%", r.Rubik["mean"][0]*100)
	}
	if r.Static["mean"][2] > 0.10 {
		t.Errorf("mean StaticOracle savings at 50%% = %.1f%%, want near zero", r.Static["mean"][2]*100)
	}
	if r.Rubik["mean"][2] < r.Static["mean"][2]+0.05 {
		t.Errorf("Rubik at 50%% (%.1f%%) not clearly ahead of StaticOracle (%.1f%%)",
			r.Rubik["mean"][2]*100, r.Static["mean"][2]*100)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 6") {
		t.Error("render missing title")
	}
}

func TestFig7And8(t *testing.T) {
	for _, f := range []func(Options) (*FigCDFResult, error){Fig7, Fig8} {
		r, err := f(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		// Rubik delays short requests: its median sits right of
		// StaticOracle's (Fig. 7a: "push the lower end of the CDF to the
		// right").
		if r.RubikMs[3] <= r.StaticMs[3] {
			t.Errorf("%s: Rubik median %.3f not right of StaticOracle %.3f",
				r.App, r.RubikMs[3], r.StaticMs[3])
		}
		// But the p95 stays at or below the bound (small slack for quick
		// mode's short traces).
		if r.RubikMs[6] > r.BoundMs*1.1 {
			t.Errorf("%s: Rubik p95 %.3f above bound %.3f", r.App, r.RubikMs[6], r.BoundMs)
		}
		// Residency sums to ~1.
		var sum float64
		for _, v := range r.Residency {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: residency sums to %.3f", r.App, sum)
		}
		var buf bytes.Buffer
		r.Render(&buf)
		if buf.Len() == 0 {
			t.Error("empty render")
		}
	}
}

func TestFig9(t *testing.T) {
	r, err := Fig9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5*3 {
		t.Fatalf("rows = %d, want 15 (5 apps x 3 quick loads)", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Feasible {
			continue
		}
		slack := 1.12
		// In the feasible region every adaptive scheme holds the bound...
		for name, tail := range map[string]float64{
			"static": row.StaticTailMs, "dynamic": row.DynamicTailMs, "rubik": row.RubikTailMs,
		} {
			if tail > row.BoundMs*slack {
				t.Errorf("%s@%.0f%%: %s tail %.3f above bound %.3f",
					row.App, row.Load*100, name, tail, row.BoundMs)
			}
		}
		// ...and the energy ordering holds: DynamicOracle is the floor,
		// and Rubik beats Fixed at or below the 50%-load design point
		// (above it, the paper notes all schemes spend more to chase the
		// tail, but Rubik still undercuts StaticOracle).
		if row.DynamicMJ > row.StaticMJ*1.01 {
			t.Errorf("%s@%.0f%%: DynamicOracle (%.3f mJ) above StaticOracle (%.3f)",
				row.App, row.Load*100, row.DynamicMJ, row.StaticMJ)
		}
		if row.Load <= 0.5 && row.RubikMJ > row.FixedMJ*1.02 {
			t.Errorf("%s@%.0f%%: Rubik (%.3f mJ) above Fixed (%.3f)",
				row.App, row.Load*100, row.RubikMJ, row.FixedMJ)
		}
		if row.RubikMJ > row.StaticMJ*1.08 {
			t.Errorf("%s@%.0f%%: Rubik (%.3f mJ) well above StaticOracle (%.3f)",
				row.App, row.Load*100, row.RubikMJ, row.StaticMJ)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 9") {
		t.Error("render missing title")
	}
}

func TestFig10(t *testing.T) {
	r, err := Fig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 5 {
		t.Fatalf("apps = %d", len(r.Apps))
	}
	for _, a := range r.Apps {
		if len(a.Times) < 5 {
			t.Fatalf("%s: too few samples", a.App)
		}
		// Rubik keeps the 25%- and 50%-phase violations tiny.
		if a.RubikPhaseViol[0] > 0.10 || a.RubikPhaseViol[1] > 0.10 {
			t.Errorf("%s: rubik violations %.2f/%.2f in stable phases",
				a.App, a.RubikPhaseViol[0], a.RubikPhaseViol[1])
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestFig11(t *testing.T) {
	r, err := Fig11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// moses (long requests) retains a clear Rubik advantage even with
	// 130 us DVFS lag; Rubik never does worse than StaticOracle by more
	// than noise, and never violates much.
	for _, app := range r.Apps {
		for li := range r.Loads {
			if r.Rubik[app][li] < r.Static[app][li]-0.05 {
				t.Errorf("%s@%.0f%%: Rubik %.1f%% well below StaticOracle %.1f%%",
					app, r.Loads[li]*100, r.Rubik[app][li]*100, r.Static[app][li]*100)
			}
			if r.ViolRubik[app][li] > 0.08 {
				t.Errorf("%s@%.0f%%: Rubik violations %.1f%%",
					app, r.Loads[li]*100, r.ViolRubik[app][li]*100)
			}
		}
	}
	if r.Rubik["moses"][0] < r.Static["moses"][0]+0.03 {
		t.Errorf("moses@30%%: Rubik %.1f%% should clearly beat StaticOracle %.1f%%",
			r.Rubik["moses"][0]*100, r.Static["moses"][0]*100)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestFig12(t *testing.T) {
	r, err := Fig12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, app := range r.Apps {
		// System savings are positive but much smaller than core savings
		// (Fig. 12's point: idle power limits DVFS savings).
		if r.SystemSavings[i] <= 0 {
			t.Errorf("%s: system savings %.1f%% not positive", app, r.SystemSavings[i]*100)
		}
		if r.SystemSavings[i] > 0.6*r.CoreSavings[i] {
			t.Errorf("%s: system savings %.1f%% too close to core savings %.1f%%",
				app, r.SystemSavings[i]*100, r.CoreSavings[i]*100)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestPowerModelValidation(t *testing.T) {
	r, err := PowerModelValidation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Components) != 4 {
		t.Fatalf("components = %v", r.Components)
	}
	for i, c := range r.Components {
		// The paper's model achieves ~5% mean error; the synthetic refit
		// should do at least as well.
		if r.MeanErrPct[i] > 6 {
			t.Errorf("%s: mean error %.2f%% too large", c, r.MeanErrPct[i])
		}
		if r.MaxErrPct[i] < r.MeanErrPct[i] {
			t.Errorf("%s: max below mean", c)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestFig15(t *testing.T) {
	r, err := Fig15(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Mixes == 0 {
		t.Fatal("no mixes evaluated")
	}
	// Scheme ordering (Fig. 15): RubikColoc holds tails; StaticColoc
	// degrades for some mixes; the HW schemes violate grossly.
	if worst := r.RubikColoc[0]; worst > 1.15 {
		t.Errorf("RubikColoc worst tail ratio %.2f", worst)
	}
	if r.HWT[0] < 1.2 || r.HWTPW[0] < 1.2 {
		t.Errorf("HW schemes should violate grossly: HW-T %.2f, HW-TPW %.2f", r.HWT[0], r.HWTPW[0])
	}
	if r.StaticColoc[0] < r.RubikColoc[0] {
		t.Error("StaticColoc worst case should exceed RubikColoc's")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 15") {
		t.Error("render missing title")
	}
}

func TestFig16(t *testing.T) {
	r, err := Fig16(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ColocPower >= row.SegPower {
			t.Errorf("load %.0f%%: colocated power not below segregated", row.Load*100)
		}
		if row.ColocServers >= row.SegServers {
			t.Errorf("load %.0f%%: colocated servers not below segregated", row.Load*100)
		}
	}
	// The savings gap widens at low LC load (Fig. 16's shape).
	saveLow := 1 - r.Rows[0].ColocPower/r.Rows[0].SegPower
	saveHigh := 1 - r.Rows[len(r.Rows)-1].ColocPower/r.Rows[len(r.Rows)-1].SegPower
	if saveLow <= saveHigh {
		t.Errorf("power savings did not widen at low load: %.2f vs %.2f", saveLow, saveHigh)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 16") {
		t.Error("render missing title")
	}
}

func TestAblation(t *testing.T) {
	r, err := Ablation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range r.Apps {
		vs := r.Rows[app]
		if len(vs) != 8 {
			t.Fatalf("%s: %d variants", app, len(vs))
		}
		full := vs[0]
		if full.TailRel > 1.10 {
			t.Errorf("%s: full Rubik tail %.2fx bound", app, full.TailRel)
		}
		byName := map[string]AblationVariant{}
		for _, v := range vs {
			byName[v.Name] = v
		}
		// Queue blindness is the worst mutilation (the paper's Sec. 2.2
		// argument against PACE-style deadline schemes): it always
		// violates more, and for apps with tight headroom (masstree,
		// bound ≈ 3x service time) it blows the tail badly.
		qb := byName["queue-blind (PACE-like)"]
		if qb.ViolPct <= full.ViolPct {
			t.Errorf("%s: queue-blind violations %.1f%% not above full %.1f%%",
				app, qb.ViolPct, full.ViolPct)
		}
		if app == "masstree" && qb.TailRel < full.TailRel+0.05 {
			t.Errorf("masstree: queue-blind tail %.2f vs full %.2f — queueing not load-bearing?",
				qb.TailRel, full.TailRel)
		}
		// Removing feedback keeps the tail but costs savings.
		if nf := byName["no feedback"]; nf.TailRel > 1.10 {
			t.Errorf("%s: no-feedback tail %.2fx bound", app, nf.TailRel)
		}
		// The drift gate serves slightly stale tables at steady load;
		// it must still honor the bound (it rebuilds on real drift).
		if dg := byName["drift-gated tables (2%)"]; dg.TailRel > 1.10 {
			t.Errorf("%s: drift-gated tail %.2fx bound", app, dg.TailRel)
		}
		if nf := byName["no feedback"]; nf.SavingsPct > full.SavingsPct+1 {
			t.Errorf("%s: feedback should not lose savings: %.1f%% vs %.1f%%",
				app, nf.SavingsPct, full.SavingsPct)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Ablation") {
		t.Error("render missing title")
	}
}

func TestPegasusComparison(t *testing.T) {
	r, err := PegasusComparison(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Loads {
		// StaticOracle upper-bounds the realistic feedback controller
		// (paper Sec. 5.2), modulo quick-mode noise.
		if r.Pegasus[i] > r.Static[i]+0.08 {
			t.Errorf("load %.0f%%: Pegasus %.1f%% above its StaticOracle bound %.1f%%",
				r.Loads[i]*100, r.Pegasus[i]*100, r.Static[i]*100)
		}
		// And Rubik beats both.
		if r.Rubik[i] < r.Static[i]-0.02 {
			t.Errorf("load %.0f%%: Rubik %.1f%% below StaticOracle %.1f%%",
				r.Loads[i]*100, r.Rubik[i]*100, r.Static[i]*100)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestClusterScale(t *testing.T) {
	r, err := ClusterScale(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*4*1 {
		t.Fatalf("rows = %d, want 8 (2 core counts x 4 dispatchers x 1 quick load)", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Per-core Rubik controllers hold the single-core bound on every
		// dispatcher at 50% per-core load (small slack for quick traces).
		if row.TailMs > row.BoundMs*1.15 {
			t.Errorf("%d cores/%s: tail %.3f ms above bound %.3f ms",
				row.Cores, row.Dispatcher, row.TailMs, row.BoundMs)
		}
		if row.MaxShare <= 0 || row.MaxShare > 1 {
			t.Errorf("%d cores/%s: bad max share %.2f", row.Cores, row.Dispatcher, row.MaxShare)
		}
		if row.BusyCores <= 0 || row.BusyCores > float64(row.Cores) {
			t.Errorf("%d cores/%s: busy cores %.2f out of range", row.Cores, row.Dispatcher, row.BusyCores)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "clusterscale") {
		t.Error("render missing title")
	}
}

// TestRunParallelMatchesSequential is the acceptance check for the worker
// pool: sharding an experiment's cells across goroutines must not change
// its result. Compare full renderings byte-for-byte at workers=1 and
// workers=4.
func TestRunParallelMatchesSequential(t *testing.T) {
	for _, id := range []string{"fig6", "fig9", "clusterscale"} {
		seq := quickOpts()
		seq.Workers = 1
		par := quickOpts()
		par.Workers = 4
		var bufSeq, bufPar bytes.Buffer
		if err := RunAndRender(id, seq, &bufSeq); err != nil {
			t.Fatal(err)
		}
		if err := RunAndRender(id, par, &bufPar); err != nil {
			t.Fatal(err)
		}
		if bufSeq.String() != bufPar.String() {
			t.Errorf("%s: parallel rendering differs from sequential", id)
		}
	}
}

func TestRunParallelErrors(t *testing.T) {
	boom := func() error { return errTest("boom") }
	ok := func() error { return nil }
	if err := RunParallel(3, ok, boom, ok, boom); err == nil {
		t.Fatal("error must propagate")
	}
	if err := RunParallel(0, ok, ok); err != nil {
		t.Fatal(err)
	}
	if err := RunParallel(8); err != nil {
		t.Fatal("no jobs must succeed")
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestRunAndRender(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAndRender("table3", quickOpts(), &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
	if err := RunAndRender("nope", quickOpts(), &buf); err == nil {
		t.Fatal("unknown experiment must error")
	}
}
