package experiments

import (
	"fmt"
	"io"

	"rubik/internal/queueing"
	"rubik/internal/workload"
)

// ScenarioRow is one (scenario, scheme) cell of the sweep.
type ScenarioRow struct {
	Scenario string
	Scheme   string
	// Served is the completed request count (closed-loop populations may
	// issue fewer than the cap if the run drains first).
	Served int
	// TailMs is the p95 response latency; BoundMs the app's paper bound.
	TailMs  float64
	BoundMs float64
	// MJPerReq is active core energy per request.
	MJPerReq float64
	// Util is the fraction of wall time spent serving.
	Util float64
}

// ScenariosResult is the EXTENSION experiment "scenarios": every arrival/
// service shape in the workload scenario registry (stationary Poisson,
// load steps, MMPP bursts, diurnal swings, flash crowds, closed-loop
// clients, heavy-tailed and correlated slowdowns) run under fixed-nominal
// and Rubik on the streaming source path. It is the evaluation the
// paper's fixed Poisson/step harness could not express: how much of
// Rubik's energy saving survives, and where its tail control strains,
// when load varies the way production traffic does.
type ScenariosResult struct {
	App  string
	Rows []ScenarioRow
}

// ScenarioSweep runs schemes x scenario shapes on masstree, sharding the
// independent cells across Options.Workers goroutines. Every cell streams
// its scenario source through queueing.RunSource; nothing materializes a
// trace.
func ScenarioSweep(opts Options) (*ScenariosResult, error) {
	h := newHarness(opts)
	app, err := workload.AppByName("masstree")
	if err != nil {
		return nil, err
	}
	bound, err := h.bound(app)
	if err != nil {
		return nil, err
	}

	const load = 0.5
	n := opts.requests(app)
	scenarios := workload.Scenarios()
	schemes := []string{"fixed-nominal", "rubik"}

	type cell struct {
		scIdx  int
		scheme string
	}
	var cells []cell
	for i := range scenarios {
		for _, s := range schemes {
			cells = append(cells, cell{scIdx: i, scheme: s})
		}
	}

	rows := make([]ScenarioRow, len(cells))
	jobs := make([]func() error, len(cells))
	for i, cl := range cells {
		i, cl := i, cl
		jobs[i] = func() error {
			sc := scenarios[cl.scIdx]
			src := sc.New(app, load, n, opts.Seed+stableSeed(sc.Name, load))
			var pol queueing.Policy
			switch cl.scheme {
			case "fixed-nominal":
				pol = queueing.FixedPolicy{MHz: h.qcfg.InitialMHz}
			case "rubik":
				r, err := h.rubik(bound, true)
				if err != nil {
					return err
				}
				pol = r
			default:
				return fmt.Errorf("experiments: unknown scenario scheme %q", cl.scheme)
			}
			res, err := queueing.RunSource(src, pol, h.qcfg)
			if err != nil {
				return fmt.Errorf("experiments: scenario %s under %s: %w", sc.Name, cl.scheme, err)
			}
			rows[i] = ScenarioRow{
				Scenario: sc.Name,
				Scheme:   cl.scheme,
				Served:   res.Served,
				TailMs:   ms(res.TailNs(TailPercentile, Warmup)),
				BoundMs:  ms(bound),
				MJPerReq: res.EnergyPerRequestJ() * 1e3,
				Util:     res.Utilization(),
			}
			return nil
		}
	}
	if err := RunParallel(opts.Workers, jobs...); err != nil {
		return nil, err
	}
	return &ScenariosResult{App: app.Name, Rows: rows}, nil
}

// Render writes the sweep table.
func (r *ScenariosResult) Render(w io.Writer) {
	fmt.Fprintf(w, "scenarios — %s: arrival/service shapes x schemes, streaming sources at 50%% mean load\n", r.App)
	header := []string{"scenario", "scheme", "served", "p95 ms", "bound ms", "tail/bound", "mJ/req", "util"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scenario,
			row.Scheme,
			fmt.Sprintf("%d", row.Served),
			fmt.Sprintf("%.3f", row.TailMs),
			fmt.Sprintf("%.3f", row.BoundMs),
			fmt.Sprintf("%.2f", row.TailMs/row.BoundMs),
			fmt.Sprintf("%.3f", row.MJPerReq),
			fmt.Sprintf("%.2f", row.Util),
		})
	}
	table(w, header, rows)
}
