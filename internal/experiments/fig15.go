package experiments

import (
	"fmt"
	"io"
	"sort"

	"rubik/internal/coloc"
	"rubik/internal/policy"
	"rubik/internal/sim"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

// Fig15Result reproduces Fig. 15: the distribution of tail latencies,
// relative to each app's bound, across the LC-app × batch-mix colocation
// matrix at 60% load, for StaticColoc, RubikColoc, HW-T and HW-TPW.
type Fig15Result struct {
	Mixes int
	// Sorted descending tail ratios (tail / bound), one per (app, mix).
	StaticColoc []float64
	RubikColoc  []float64
	HWT         []float64
	HWTPW       []float64
}

// Fig15 runs the colocation tail comparison.
func Fig15(opts Options) (*Fig15Result, error) {
	h := newHarness(opts)
	load := 0.6
	nmixes := 20
	reqs := 3000
	apps := workload.Apps()
	if opts.Quick {
		// Use the short-request apps so a small trace still spans many
		// feedback windows (moses at 800 requests would end before
		// Rubik's 1 s rolling feedback settles).
		nmixes = 2
		reqs = 2500
		masstree, specjbb := workload.Masstree(), workload.Specjbb()
		apps = []workload.LCApp{masstree, specjbb}
	}
	mixes := workload.Mixes(nmixes, 6, opts.Seed+21)

	out := &Fig15Result{}
	for _, app := range apps {
		bound, err := h.bound(app)
		if err != nil {
			return nil, err
		}
		// StaticColoc frequency: StaticOracle on the uncolocated trace.
		tr := h.trace(app, load)
		so, err := policy.StaticOracle(tr, h.grid, bound, TailPercentile, h.rcfg)
		if err != nil {
			return nil, err
		}
		// At least ~2 s of simulated time per core so Rubik's rolling
		// feedback settles even for short-request apps (specjbb).
		appReqs := reqs
		if minN := int(2e9 * load / app.MeanServiceNsAtNominal()); appReqs < minN && !opts.Quick {
			appReqs = minN
		}
		for mi, mix := range mixes {
			seed := opts.Seed + int64(mi)*977 + stableSeed(app.Name, load)
			scfg := coloc.SchemeConfig{
				App: app, Mix: mix, Load: load,
				RequestsPerCore:   appReqs,
				Seed:              seed,
				BoundNs:           bound,
				Grid:              h.grid,
				Power:             h.power,
				TransitionLatency: h.qcfg.TransitionLatency,
				Interference:      coloc.DefaultInterference(),
			}
			st, err := coloc.RunStaticColocServer(scfg, so.MHz)
			if err != nil {
				return nil, err
			}
			rb, err := coloc.RunRubikColocServer(scfg)
			if err != nil {
				return nil, err
			}
			out.StaticColoc = append(out.StaticColoc, st.TailNs(TailPercentile, Warmup)/bound)
			out.RubikColoc = append(out.RubikColoc, rb.TailNs(TailPercentile, Warmup)/bound)

			for _, obj := range []coloc.HWObjective{coloc.HWThroughput, coloc.HWThroughputPerWatt} {
				res, err := coloc.RunHWServer(coloc.ServerConfig{
					App: app, Mix: mix, Load: load,
					RequestsPerCore:   appReqs,
					Seed:              seed,
					Grid:              h.grid,
					Power:             h.power,
					TransitionLatency: h.qcfg.TransitionLatency,
					Interference:      coloc.DefaultInterference(),
					Epoch:             100 * sim.Microsecond,
					Objective:         obj,
				})
				if err != nil {
					return nil, err
				}
				ratio := res.TailNs(TailPercentile, Warmup) / bound
				if obj == coloc.HWThroughput {
					out.HWT = append(out.HWT, ratio)
				} else {
					out.HWTPW = append(out.HWTPW, ratio)
				}
			}
			out.Mixes++
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out.StaticColoc)))
	sort.Sort(sort.Reverse(sort.Float64Slice(out.RubikColoc)))
	sort.Sort(sort.Reverse(sort.Float64Slice(out.HWT)))
	sort.Sort(sort.Reverse(sort.Float64Slice(out.HWTPW)))
	return out, nil
}

// violFrac returns the fraction of mixes violating the bound.
func violFrac(sortedDesc []float64) float64 {
	n := 0
	for _, v := range sortedDesc {
		if v > 1.0 {
			n++
		}
	}
	if len(sortedDesc) == 0 {
		return 0
	}
	return float64(n) / float64(len(sortedDesc))
}

// Render prints distribution summaries per scheme.
func (r *Fig15Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 15 — colocation tail latency relative to bound across %d (app, mix) pairs at 60%% load\n", r.Mixes)
	row := func(name string, d []float64) []string {
		asc := append([]float64(nil), d...)
		sort.Float64s(asc)
		return []string{name,
			fmt.Sprintf("%.2f", d[0]),
			fmt.Sprintf("%.2f", stats.PercentileSorted(asc, 0.9)),
			fmt.Sprintf("%.2f", stats.PercentileSorted(asc, 0.5)),
			fmt.Sprintf("%.2f", asc[0]),
			fmt.Sprintf("%.0f%%", violFrac(d)*100),
		}
	}
	table(w,
		[]string{"scheme", "worst", "p90", "median", "best", "mixes>bound"},
		[][]string{
			row("StaticColoc", r.StaticColoc),
			row("RubikColoc", r.RubikColoc),
			row("HW-T", r.HWT),
			row("HW-TPW", r.HWTPW),
		})
}
