package experiments

import (
	"fmt"
	"io"
	"sort"

	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

// Fig2aResult reproduces Fig. 2a: the CDF of instantaneous load (QPS over a
// rolling 5 ms window, normalized to the run's average) for each app.
type Fig2aResult struct {
	// NormQPSAtPercentile[app][k] is the normalized instantaneous QPS at
	// the k-th entry of Percentiles.
	Percentiles []float64
	NormQPS     map[string][]float64
	Apps        []string
}

// Fig2a measures instantaneous-load variability from the arrival streams.
func Fig2a(opts Options) (*Fig2aResult, error) {
	h := newHarness(opts)
	res := &Fig2aResult{
		Percentiles: []float64{0.05, 0.25, 0.50, 0.75, 0.90, 0.99},
		NormQPS:     map[string][]float64{},
	}
	const window = 5 * sim.Millisecond
	for _, app := range workload.Apps() {
		res.Apps = append(res.Apps, app.Name)
		tr := h.trace(app, 0.5)
		// Sample the rolling window count every 1 ms.
		var samples []float64
		arr := tr.Requests
		lo := 0
		hi := 0
		for t := window; t <= tr.Duration(); t += sim.Millisecond {
			for hi < len(arr) && arr[hi].Arrival <= t {
				hi++
			}
			for lo < len(arr) && arr[lo].Arrival <= t-window {
				lo++
			}
			samples = append(samples, float64(hi-lo)/(float64(window)/1e9))
		}
		avg := meanOf(samples)
		if avg == 0 {
			continue
		}
		sort.Float64s(samples)
		var row []float64
		for _, p := range res.Percentiles {
			row = append(row, stats.PercentileSorted(samples, p)/avg)
		}
		res.NormQPS[app.Name] = row
	}
	return res, nil
}

// Render writes the result as a table.
func (r *Fig2aResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 2a — CDF of instantaneous QPS (5 ms window), normalized to average load")
	header := []string{"app"}
	for _, p := range r.Percentiles {
		header = append(header, fmt.Sprintf("p%.0f", p*100))
	}
	var rows [][]string
	for _, app := range r.Apps {
		row := []string{app}
		for _, v := range r.NormQPS[app] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		rows = append(rows, row)
	}
	table(w, header, rows)
}

// Fig2bResult reproduces Fig. 2b: a masstree execution trace at 50% load —
// QPS, service times, queue lengths and response times over time.
type Fig2bResult struct {
	QPS       []TimePoint // 100 ms windows
	Service   []TimePoint // per completion (ms)
	QueueLen  []TimePoint // at each arrival
	Response  []TimePoint // per completion (ms)
	MeanQPS   float64
	P95RespMs float64
}

// Fig2b runs masstree at 50% load under fixed nominal frequency and
// extracts the four panels of the paper's figure.
func Fig2b(opts Options) (*Fig2bResult, error) {
	h := newHarness(opts)
	app := workload.Masstree()
	tr := h.trace(app, 0.5)
	res, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, h.qcfg)
	if err != nil {
		return nil, err
	}
	out := &Fig2bResult{}
	// QPS over 100 ms windows.
	arr := tr.Requests
	lo, hi := 0, 0
	const win = 100 * sim.Millisecond
	for t := win; t <= tr.Duration(); t += win {
		for hi < len(arr) && arr[hi].Arrival <= t {
			hi++
		}
		for lo < len(arr) && arr[lo].Arrival <= t-win {
			lo++
		}
		out.QPS = append(out.QPS, TimePoint{T: t, V: float64(hi-lo) / (float64(win) / 1e9)})
	}
	var responses []float64
	for _, c := range res.Completions {
		out.Service = append(out.Service, TimePoint{T: c.Done, V: ms(c.ServiceNs)})
		out.QueueLen = append(out.QueueLen, TimePoint{T: c.Arrival, V: float64(c.QueueLenAtArrival)})
		out.Response = append(out.Response, TimePoint{T: c.Done, V: ms(c.ResponseNs)})
		responses = append(responses, c.ResponseNs)
	}
	var qpsVals []float64
	for _, p := range out.QPS {
		qpsVals = append(qpsVals, p.V)
	}
	out.MeanQPS = meanOf(qpsVals)
	out.P95RespMs = ms(stats.Percentile(responses, TailPercentile))
	return out, nil
}

// Render summarizes the four panels.
func (r *Fig2bResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 2b — masstree execution trace at 50% load (fixed nominal frequency)")
	summarize := func(name string, pts []TimePoint) []string {
		var vals []float64
		for _, p := range pts {
			vals = append(vals, p.V)
		}
		if len(vals) == 0 {
			return []string{name, "-", "-", "-"}
		}
		return []string{name,
			fmt.Sprintf("%.3f", meanOf(vals)),
			fmt.Sprintf("%.3f", stats.Percentile(vals, 0.95)),
			fmt.Sprintf("%.3f", stats.Percentile(vals, 1.0)),
		}
	}
	table(w, []string{"panel", "mean", "p95", "max"}, [][]string{
		summarize("QPS (100ms win)", r.QPS),
		summarize("service time (ms)", r.Service),
		summarize("queue length", r.QueueLen),
		summarize("response time (ms)", r.Response),
	})
	fmt.Fprintf(w, "mean QPS %.0f, p95 response %.3f ms\n", r.MeanQPS, r.P95RespMs)
}

// Fig2cResult reproduces Fig. 2c: p95 tail latency vs utilization,
// normalized to the app's p95 service latency.
type Fig2cResult struct {
	Loads []float64
	// NormTail[app][i] is p95(response)/p95(service) at Loads[i].
	NormTail map[string][]float64
	Apps     []string
}

// Fig2c sweeps load under fixed nominal frequency.
func Fig2c(opts Options) (*Fig2cResult, error) {
	h := newHarness(opts)
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	if opts.Quick {
		loads = []float64{0.2, 0.5, 0.8}
	}
	out := &Fig2cResult{Loads: loads, NormTail: map[string][]float64{}}
	for _, app := range workload.Apps() {
		out.Apps = append(out.Apps, app.Name)
		var row []float64
		for _, load := range loads {
			tr := h.trace(app, load)
			res, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, h.qcfg)
			if err != nil {
				return nil, err
			}
			var svc []float64
			for _, c := range res.Completions {
				svc = append(svc, c.ServiceNs)
			}
			p95Svc := stats.Percentile(svc, TailPercentile)
			row = append(row, res.TailNs(TailPercentile, Warmup)/p95Svc)
		}
		out.NormTail[app.Name] = row
	}
	return out, nil
}

// Render writes the normalized-tail table.
func (r *Fig2cResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 2c — p95 tail latency vs load, normalized to p95 service latency")
	header := []string{"app"}
	for _, l := range r.Loads {
		header = append(header, fmt.Sprintf("%.0f%%", l*100))
	}
	var rows [][]string
	for _, app := range r.Apps {
		row := []string{app}
		for _, v := range r.NormTail[app] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		rows = append(rows, row)
	}
	table(w, header, rows)
}

// Table1Result reproduces Table 1: Pearson correlation of response latency
// with service time, instantaneous QPS and queue length.
type Table1Result struct {
	Apps []string
	// Correlations[app] = {service, qps, queue}.
	Correlations map[string][3]float64
}

// Table1 computes the correlations at 50% load under fixed nominal
// frequency, as in the paper's characterization.
func Table1(opts Options) (*Table1Result, error) {
	h := newHarness(opts)
	out := &Table1Result{Correlations: map[string][3]float64{}}
	const qpsWin = 5 * sim.Millisecond
	for _, app := range workload.Apps() {
		out.Apps = append(out.Apps, app.Name)
		tr := h.trace(app, 0.5)
		res, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, h.qcfg)
		if err != nil {
			return nil, err
		}
		// Instantaneous QPS at each arrival: arrivals in (arr-5ms, arr].
		arr := tr.Requests
		instQPS := make([]float64, len(arr))
		lo := 0
		for i := range arr {
			for lo < len(arr) && arr[lo].Arrival <= arr[i].Arrival-qpsWin {
				lo++
			}
			instQPS[i] = float64(i-lo+1) / (float64(qpsWin) / 1e9)
		}
		var resp, svc, qps, qlen []float64
		for _, c := range res.Completions {
			resp = append(resp, c.ResponseNs)
			svc = append(svc, c.ServiceNs)
			qps = append(qps, instQPS[c.ID])
			qlen = append(qlen, float64(c.QueueLenAtArrival))
		}
		rs, err := stats.Pearson(resp, svc)
		if err != nil {
			return nil, err
		}
		rq, err := stats.Pearson(resp, qps)
		if err != nil {
			return nil, err
		}
		rl, err := stats.Pearson(resp, qlen)
		if err != nil {
			return nil, err
		}
		out.Correlations[app.Name] = [3]float64{rs, rq, rl}
	}
	return out, nil
}

// Render writes Table 1.
func (r *Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — Pearson correlation of response latency with:")
	var rows [][]string
	for _, app := range r.Apps {
		c := r.Correlations[app]
		rows = append(rows, []string{app,
			fmt.Sprintf("%.2f", c[0]),
			fmt.Sprintf("%.2f", c[1]),
			fmt.Sprintf("%.2f", c[2]),
		})
	}
	table(w, []string{"app", "service time", "inst. QPS", "queue length"}, rows)
}
