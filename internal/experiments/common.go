// Package experiments contains one driver per table and figure of the
// paper's evaluation (Secs. 3, 5 and 7). Each driver regenerates the
// artifact's rows/series from the reproduction's simulators and returns a
// structured result with a formatted text rendering; DESIGN.md §5 maps the
// drivers to the paper artifacts and EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	rubikcore "rubik/internal/core"
	"rubik/internal/cpu"
	"rubik/internal/policy"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// Options tunes experiment fidelity.
type Options struct {
	// Quick caps request counts so smoke tests and benchmarks finish fast;
	// full runs use the paper's Table 3 counts.
	Quick bool
	// Seed makes every experiment deterministic.
	Seed int64
	// Workers is the simulation fan-out: drivers shard their independent
	// (app, load, seed, scheme) cells across this many goroutines via
	// RunParallel. 0 means GOMAXPROCS; 1 runs sequentially. Results are
	// identical at any width.
	Workers int
}

// DefaultOptions runs at full paper fidelity with a fixed seed.
func DefaultOptions() Options { return Options{Seed: 42} }

// requests returns the trace length for an app under the options. The
// quick cap keeps smoke tests fast while leaving enough completions for
// stable p95 estimates and for Rubik's rolling feedback window to settle.
func (o Options) requests(app workload.LCApp) int {
	n := app.Requests
	if o.Quick && n > 2400 {
		return 2400
	}
	return n
}

// TailPercentile is the paper's tail definition (95th percentile).
const TailPercentile = 0.95

// Warmup is the fraction of completions discarded before measuring, so
// online-profiled policies are evaluated in steady state.
const Warmup = 0.1

// harness bundles the shared pieces: configuration, per-app bounds, traces.
type harness struct {
	opts   Options
	grid   cpu.Grid
	power  cpu.PowerModel
	qcfg   queueing.Config
	rcfg   policy.ReplayConfig
	bounds map[string]float64
}

func newHarness(opts Options) *harness {
	return &harness{
		opts:   opts,
		grid:   cpu.DefaultGrid(),
		power:  cpu.DefaultPowerModel(),
		qcfg:   queueing.DefaultConfig(),
		rcfg:   policy.DefaultReplayConfig(),
		bounds: map[string]float64{},
	}
}

// trace generates the canonical trace for (app, load) with an
// experiment-stable seed; all schemes replay the same trace, as in the
// paper's methodology.
func (h *harness) trace(app workload.LCApp, load float64) workload.Trace {
	return workload.GenerateAtLoad(app, load, h.opts.requests(app), h.opts.Seed+stableSeed(app.Name, load))
}

func stableSeed(name string, load float64) int64 {
	var s int64 = 17
	for i := 0; i < len(name); i++ {
		s = s*131 + int64(name[i])
	}
	return s + int64(load*1000)
}

// bound returns the app's tail latency bound: the p95 of fixed-nominal
// execution at 50% load (paper Sec. 5.2). No warmup trim: fixed-frequency
// execution has nothing to warm up, and using the full trace keeps the
// bound consistent with the oracle feasibility checks on the same trace
// (StaticOracle at 50% load then lands exactly on nominal).
func (h *harness) bound(app workload.LCApp) (float64, error) {
	if b, ok := h.bounds[app.Name]; ok {
		return b, nil
	}
	tr := h.trace(app, 0.5)
	res, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, h.qcfg)
	if err != nil {
		return 0, err
	}
	b := res.TailNs(TailPercentile, 0)
	h.bounds[app.Name] = b
	return b, nil
}

// rubik builds a fresh Rubik controller for a bound.
func (h *harness) rubik(boundNs float64, feedback bool) (*rubikcore.Rubik, error) {
	cfg := rubikcore.DefaultConfig(boundNs)
	cfg.Grid = h.grid
	cfg.TransitionLatency = h.qcfg.TransitionLatency
	cfg.Feedback.Enabled = feedback
	return rubikcore.New(cfg)
}

// runRubik simulates a trace under a fresh Rubik controller.
func (h *harness) runRubik(tr workload.Trace, boundNs float64, feedback bool) (queueing.Result, error) {
	r, err := h.rubik(boundNs, feedback)
	if err != nil {
		return queueing.Result{}, err
	}
	return queueing.Run(tr, r, h.qcfg)
}

// table renders rows with tab alignment.
func table(w io.Writer, header []string, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

// rollingTail computes a (time, q-tail) series over completions using a
// trailing window, stepping by step — the paper's rolling 200 ms tail
// traces (Figs. 1b and 10).
func rollingTail(completions []queueing.Completion, window, step sim.Time, q float64) []TimePoint {
	if len(completions) == 0 {
		return nil
	}
	end := completions[len(completions)-1].Done
	var out []TimePoint
	lo := 0
	var buf []float64
	for t := step; t <= end; t += step {
		buf = buf[:0]
		for lo < len(completions) && completions[lo].Done <= t-window {
			lo++
		}
		for i := lo; i < len(completions) && completions[i].Done <= t; i++ {
			buf = append(buf, completions[i].ResponseNs)
		}
		if len(buf) == 0 {
			continue
		}
		cp := append([]float64(nil), buf...)
		sort.Float64s(cp)
		rank := int(q*float64(len(cp)) + 0.999999)
		if rank < 1 {
			rank = 1
		}
		if rank > len(cp) {
			rank = len(cp)
		}
		out = append(out, TimePoint{T: t, V: cp[rank-1]})
	}
	return out
}

// TimePoint is one sample of a time series.
type TimePoint struct {
	T sim.Time
	V float64
}

// rollingPower converts an energy timeline into a (time, watts) series over
// a trailing window.
func rollingPower(samples []queueing.EnergySample, window, step sim.Time, end sim.Time) []TimePoint {
	var out []TimePoint
	lo := 0
	var acc float64
	hi := 0
	for t := step; t <= end; t += step {
		for hi < len(samples) && samples[hi].T <= t {
			acc += samples[hi].J
			hi++
		}
		for lo < len(samples) && samples[lo].T <= t-window {
			acc -= samples[lo].J
			lo++
		}
		w := float64(window)
		if t < window {
			w = float64(t)
		}
		out = append(out, TimePoint{T: t, V: acc / (w / 1e9)})
	}
	return out
}

// meanOf averages a float slice (0 if empty).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func ms(ns float64) float64 { return ns / 1e6 }
