package experiments

import (
	"fmt"
	"io"

	rubikcore "rubik/internal/core"
	"rubik/internal/policy"
	"rubik/internal/queueing"
	"rubik/internal/workload"
)

// AblationVariant is one Rubik configuration with a design choice removed.
type AblationVariant struct {
	Name string
	// SavingsPct is the core power saving over fixed-nominal.
	SavingsPct float64
	// TailRel is the p95 relative to the bound.
	TailRel float64
	// ViolPct is the fraction of responses above the bound.
	ViolPct float64
}

// AblationResult quantifies what each of Rubik's design choices buys
// (DESIGN.md §7): omega-row conditioning, the compute/memory split, queue
// awareness, and the feedback loop, each removed one at a time. This is an
// extension beyond the paper's figures; the paper argues for each choice
// qualitatively (Secs. 2.2, 3, 4.1-4.2).
type AblationResult struct {
	// Rows[app] lists the variants for that app.
	Apps []string
	Rows map[string][]AblationVariant
	Load float64
}

// Ablation runs the variants on a queuing-heavy app (masstree: memory-
// bound, tight service times) and a variable app (shore) at 50% load —
// the bound-defining load, where queuing and headroom pressure expose
// each removed mechanism.
func Ablation(opts Options) (*AblationResult, error) {
	h := newHarness(opts)
	out := &AblationResult{Rows: map[string][]AblationVariant{}, Load: 0.5}
	variants := []struct {
		name string
		mut  func(*rubikcore.Config)
	}{
		{"full rubik", func(*rubikcore.Config) {}},
		{"no feedback", func(c *rubikcore.Config) { c.Feedback.Enabled = false }},
		{"no omega rows", func(c *rubikcore.Config) { c.SingleRow = true }},
		{"no C/M split", func(c *rubikcore.Config) { c.MergeMemory = true }},
		{"queue-blind (PACE-like)", func(c *rubikcore.Config) { c.HeadOnly = true }},
		{"16-bucket tables", func(c *rubikcore.Config) { c.Buckets = 16 }},
		{"4-deep tables", func(c *rubikcore.Config) { c.MaxTableQueue = 4 }},
		// Not a removal but an addition: gate the periodic rebuild on
		// profile drift (2% in mean/stddev). Quantifies what serving from
		// slightly stale tables costs, i.e. whether the refresh work the
		// allocation-free pipeline optimizes is load-bearing at steady
		// load.
		{"drift-gated tables (2%)", func(c *rubikcore.Config) { c.DriftThreshold = 0.02 }},
	}
	for _, app := range []workload.LCApp{workload.Masstree(), workload.Shore()} {
		out.Apps = append(out.Apps, app.Name)
		bound, err := h.bound(app)
		if err != nil {
			return nil, err
		}
		tr := h.trace(app, out.Load)
		fixed, err := policy.Replay(tr, policy.UniformAssignment(len(tr.Requests), queueing.DefaultConfig().InitialMHz), h.rcfg)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			cfg := rubikcore.DefaultConfig(bound)
			cfg.Grid = h.grid
			cfg.TransitionLatency = h.qcfg.TransitionLatency
			v.mut(&cfg)
			ctl, err := rubikcore.New(cfg)
			if err != nil {
				return nil, err
			}
			res, err := queueing.Run(tr, ctl, h.qcfg)
			if err != nil {
				return nil, err
			}
			out.Rows[app.Name] = append(out.Rows[app.Name], AblationVariant{
				Name:       v.name,
				SavingsPct: (1 - res.ActiveEnergyJ/fixed.ActiveEnergyJ) * 100,
				TailRel:    res.TailNs(TailPercentile, Warmup) / bound,
				ViolPct:    res.ViolationFrac(bound, Warmup) * 100,
			})
		}
	}
	return out, nil
}

// Render prints one table per app.
func (r *AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation — Rubik design choices removed one at a time (%.0f%% load)\n", r.Load*100)
	for _, app := range r.Apps {
		fmt.Fprintf(w, "\n%s:\n", app)
		var rows [][]string
		for _, v := range r.Rows[app] {
			rows = append(rows, []string{
				v.Name,
				fmt.Sprintf("%.1f%%", v.SavingsPct),
				fmt.Sprintf("%.2f", v.TailRel),
				fmt.Sprintf("%.1f%%", v.ViolPct),
			})
		}
		table(w, []string{"variant", "power saved", "tail/bound", "violations"}, rows)
	}
	fmt.Fprintln(w, "\nReading: queue awareness is load-bearing — the PACE-like variant")
	fmt.Fprintln(w, "misses the tail AND saves less once feedback reacts to its")
	fmt.Fprintln(w, "violations. Omega rows and the C/M split are near-neutral at this")
	fmt.Fprintln(w, "operating point (both err conservative below nominal frequency);")
	fmt.Fprintln(w, "their value is correctness without feedback and above nominal.")
	fmt.Fprintln(w, "Feedback converts spare conservatism into savings. The drift gate")
	fmt.Fprintln(w, "serves slightly stale tables at steady load; tails staying at the")
	fmt.Fprintln(w, "full-rubik point mean the skipped refreshes were redundant there.")
}

// PegasusResult is the extension comparison of a realistic feedback-only
// controller against its StaticOracle upper bound and Rubik, validating
// the paper's claim that StaticOracle upper-bounds Pegasus-style schemes
// (Sec. 5.2).
type PegasusResult struct {
	Loads []float64
	// Savings over fixed-nominal per scheme (fractions).
	Pegasus []float64
	Static  []float64
	Rubik   []float64
	// PegasusViol tracks the feedback controller's bound violations.
	PegasusViol []float64
	App         string
}

// PegasusComparison runs masstree across loads.
func PegasusComparison(opts Options) (*PegasusResult, error) {
	h := newHarness(opts)
	app := workload.Masstree()
	bound, err := h.bound(app)
	if err != nil {
		return nil, err
	}
	out := &PegasusResult{App: app.Name, Loads: []float64{0.2, 0.3, 0.4, 0.5}}
	for _, load := range out.Loads {
		tr := h.trace(app, load)
		fixed, err := policy.Replay(tr, policy.UniformAssignment(len(tr.Requests), queueing.DefaultConfig().InitialMHz), h.rcfg)
		if err != nil {
			return nil, err
		}
		so, err := policy.StaticOracle(tr, h.grid, bound, TailPercentile, h.rcfg)
		if err != nil {
			return nil, err
		}
		peg := policy.NewPegasus(bound, h.grid)
		pegRes, err := queueing.Run(tr, peg, h.qcfg)
		if err != nil {
			return nil, err
		}
		rb, err := h.runRubik(tr, bound, true)
		if err != nil {
			return nil, err
		}
		out.Pegasus = append(out.Pegasus, 1-pegRes.ActiveEnergyJ/fixed.ActiveEnergyJ)
		out.Static = append(out.Static, 1-so.Result.ActiveEnergyJ/fixed.ActiveEnergyJ)
		out.Rubik = append(out.Rubik, 1-rb.ActiveEnergyJ/fixed.ActiveEnergyJ)
		out.PegasusViol = append(out.PegasusViol, pegRes.ViolationFrac(bound, 0.3))
	}
	return out, nil
}

// Render prints the comparison.
func (r *PegasusResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Extension — Pegasus-style feedback vs StaticOracle (its upper bound) vs Rubik on %s\n", r.App)
	var rows [][]string
	for i, load := range r.Loads {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", load*100),
			fmt.Sprintf("%.1f%% (viol %.1f%%)", r.Pegasus[i]*100, r.PegasusViol[i]*100),
			fmt.Sprintf("%.1f%%", r.Static[i]*100),
			fmt.Sprintf("%.1f%%", r.Rubik[i]*100),
		})
	}
	table(w, []string{"load", "Pegasus", "StaticOracle", "Rubik"}, rows)
}
