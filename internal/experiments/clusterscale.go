package experiments

import (
	"fmt"
	"io"

	"rubik/internal/cluster"
	rubikcore "rubik/internal/core"
	"rubik/internal/queueing"
	"rubik/internal/workload"
)

// ClusterScaleRow is one (cores, dispatcher, load) cell of the sweep.
type ClusterScaleRow struct {
	Cores      int
	Dispatcher string
	// Load is the per-core offered load; the cluster receives Cores times
	// this fraction of single-core nominal capacity.
	Load float64
	// TailMs is the pooled p95 response latency; BoundMs the single-core
	// Rubik bound every core targets.
	TailMs  float64
	BoundMs float64
	// MJPerReq is pooled active core energy per request.
	MJPerReq float64
	// BusyCores is the mean number of simultaneously busy cores.
	BusyCores float64
	// MaxShare is the largest fraction of requests routed to one core
	// (1/Cores = perfectly balanced).
	MaxShare float64
}

// ClusterScaleResult is the EXTENSION experiment "clusterscale": full
// multi-core server simulation (per-core Rubik controllers behind a
// request dispatcher) swept over core count, dispatch discipline and
// load. It exercises the cluster substrate the paper's 6-core CMP implies
// but per-core extrapolation hides: dispatch quality directly moves the
// pooled tail, so the energy Rubik can save depends on the dispatcher.
type ClusterScaleResult struct {
	App  string
	Rows []ClusterScaleRow
}

// ClusterScale sweeps cores x dispatcher x load on masstree with a fresh
// Rubik controller per core, sharding the independent cells across
// Options.Workers goroutines.
func ClusterScale(opts Options) (*ClusterScaleResult, error) {
	h := newHarness(opts)
	app, err := workload.AppByName("masstree")
	if err != nil {
		return nil, err
	}
	bound, err := h.bound(app)
	if err != nil {
		return nil, err
	}

	coreCounts := []int{1, 2, 4, 6}
	loads := []float64{0.3, 0.5, 0.7}
	if opts.Quick {
		coreCounts = []int{2, 6}
		loads = []float64{0.5}
	}

	type cell struct {
		cores int
		disp  int
		load  float64
	}
	var cells []cell
	nDisp := len(cluster.Dispatchers(0))
	for _, n := range coreCounts {
		for d := 0; d < nDisp; d++ {
			for _, load := range loads {
				cells = append(cells, cell{cores: n, disp: d, load: load})
			}
		}
	}

	rows := make([]ClusterScaleRow, len(cells))
	jobs := make([]func() error, len(cells))
	for i, cl := range cells {
		i, cl := i, cl
		jobs[i] = func() error {
			// Fresh dispatcher per cell: dispatchers are stateful and the
			// cells run concurrently.
			d := cluster.Dispatchers(opts.Seed)[cl.disp]
			n := opts.requests(app) * cl.cores
			tr := workload.GenerateAtLoad(app, cl.load*float64(cl.cores), n,
				opts.Seed+stableSeed(app.Name, cl.load)+int64(cl.cores))
			ccfg := cluster.Config{
				Cores:      cl.cores,
				Dispatcher: d,
				Core:       h.qcfg,
				NewPolicy: func(int) (queueing.Policy, error) {
					rcfg := rubikcore.DefaultConfig(bound)
					rcfg.Grid = h.grid
					rcfg.TransitionLatency = h.qcfg.TransitionLatency
					return rubikcore.New(rcfg)
				},
			}
			res, err := cluster.Run(tr, ccfg)
			if err != nil {
				return err
			}
			maxShare := 0.0
			for _, cnt := range res.Routed {
				if s := float64(cnt) / float64(len(tr.Requests)); s > maxShare {
					maxShare = s
				}
			}
			rows[i] = ClusterScaleRow{
				Cores:      cl.cores,
				Dispatcher: d.Name(),
				Load:       cl.load,
				TailMs:     ms(res.TailNs(TailPercentile, Warmup)),
				BoundMs:    ms(bound),
				MJPerReq:   res.EnergyPerRequestJ() * 1e3,
				BusyCores:  res.MeanBusyCores(),
				MaxShare:   maxShare,
			}
			return nil
		}
	}
	if err := RunParallel(opts.Workers, jobs...); err != nil {
		return nil, err
	}
	return &ClusterScaleResult{App: app.Name, Rows: rows}, nil
}

// Render writes the sweep table.
func (r *ClusterScaleResult) Render(w io.Writer) {
	fmt.Fprintf(w, "clusterscale — %s: multi-core server, per-core Rubik, cores x dispatcher x load\n", r.App)
	header := []string{"cores", "dispatcher", "load", "p95 ms", "bound ms", "tail/bound", "mJ/req", "busy cores", "max share"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Cores),
			row.Dispatcher,
			fmt.Sprintf("%.0f%%", row.Load*100),
			fmt.Sprintf("%.3f", row.TailMs),
			fmt.Sprintf("%.3f", row.BoundMs),
			fmt.Sprintf("%.2f", row.TailMs/row.BoundMs),
			fmt.Sprintf("%.3f", row.MJPerReq),
			fmt.Sprintf("%.2f", row.BusyCores),
			fmt.Sprintf("%.2f", row.MaxShare),
		})
	}
	table(w, header, rows)
}
