package experiments

import (
	"fmt"
	"io"

	"rubik/internal/datacenter"
)

// Fig16Row is one LC-load sample of the datacenter comparison.
type Fig16Row struct {
	Load float64
	// Normalized to the segregated datacenter at 60% load, split into
	// LC/colocated servers and batch-only servers (Fig. 16's hatching).
	SegPower, SegPowerBatch         float64
	ColocPower, ColocPowerBatch     float64
	SegServers, SegServersBatch     float64
	ColocServers, ColocServersBatch float64
	WorstTailRel                    float64
}

// Fig16Result reproduces Fig. 16: datacenter power and server count for
// the segregated (StaticOracle) and colocated (RubikColoc) fleets as the
// LC load sweeps 10-60%.
type Fig16Result struct {
	Rows []Fig16Row
}

// Fig16 runs the fleet comparison.
func Fig16(opts Options) (*Fig16Result, error) {
	cfg := datacenter.DefaultConfig()
	cfg.Seed = opts.Seed
	if opts.Quick {
		cfg.LCServersPerApp = 20
		cfg.BatchServersPerMix = 34
		cfg.NMixes = 3
		cfg.RequestsPerCore = 600
		cfg.BoundRequests = 1500
	}
	m, err := datacenter.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	if opts.Quick {
		loads = []float64{0.1, 0.3, 0.6}
	}
	// Normalization base: segregated at 60%.
	base, err := m.Segregated(0.6)
	if err != nil {
		return nil, err
	}
	basePower := base.TotalPowerW()
	baseServers := float64(base.TotalServers())

	out := &Fig16Result{}
	for _, load := range loads {
		seg, err := m.Segregated(load)
		if err != nil {
			return nil, err
		}
		col, err := m.Colocated(load)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig16Row{
			Load:              load,
			SegPower:          seg.TotalPowerW() / basePower,
			SegPowerBatch:     seg.BatchPowerW / basePower,
			ColocPower:        col.TotalPowerW() / basePower,
			ColocPowerBatch:   col.BatchPowerW / basePower,
			SegServers:        float64(seg.TotalServers()) / baseServers,
			SegServersBatch:   float64(seg.BatchServers) / baseServers,
			ColocServers:      float64(col.TotalServers()) / baseServers,
			ColocServersBatch: float64(col.BatchServers) / baseServers,
			WorstTailRel:      col.WorstTailRel,
		})
	}
	return out, nil
}

// Render prints normalized power and server counts.
func (r *Fig16Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 16 — datacenter power and servers vs LC load, normalized to segregated @60% (batch share in parens)")
	var rows [][]string
	for _, row := range r.Rows {
		powerSave := 1 - row.ColocPower/row.SegPower
		serverSave := 1 - row.ColocServers/row.SegServers
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", row.Load*100),
			fmt.Sprintf("%.2f (%.2f)", row.SegPower, row.SegPowerBatch),
			fmt.Sprintf("%.2f (%.2f)", row.ColocPower, row.ColocPowerBatch),
			fmt.Sprintf("%.0f%%", powerSave*100),
			fmt.Sprintf("%.2f (%.2f)", row.SegServers, row.SegServersBatch),
			fmt.Sprintf("%.2f (%.2f)", row.ColocServers, row.ColocServersBatch),
			fmt.Sprintf("%.0f%%", serverSave*100),
			fmt.Sprintf("%.2f", row.WorstTailRel),
		})
	}
	table(w, []string{"LC load", "seg power", "coloc power", "power saved",
		"seg servers", "coloc servers", "servers saved", "worst tail/bound"}, rows)
}
