package experiments

import (
	"fmt"
	"io"

	"rubik/internal/cpu"
	"rubik/internal/policy"
	"rubik/internal/workload"
)

// Fig9Row is one (app, load) sample of the load sweep.
type Fig9Row struct {
	App  string
	Load float64
	// TailMs per scheme.
	FixedTailMs, StaticTailMs, DynamicTailMs, RubikNoFBTailMs, RubikTailMs float64
	// Energy per request (mJ) per scheme.
	FixedMJ, StaticMJ, DynamicMJ, RubikNoFBMJ, RubikMJ float64
	// Feasible marks whether even the oracles can meet the bound (the
	// unshaded region of Fig. 9).
	Feasible bool
	BoundMs  float64
}

// Fig9Result reproduces Fig. 9: load-latency (a) and load-energy (b)
// diagrams for Fixed-frequency, StaticOracle, DynamicOracle, and Rubik with
// and without feedback control.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9 sweeps loads for every app. The (app, load) cells are independent
// simulations, so they are sharded across Options.Workers goroutines; the
// per-app bounds are derived sequentially first because the harness
// caches them.
func Fig9(opts Options) (*Fig9Result, error) {
	h := newHarness(opts)
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	if opts.Quick {
		loads = []float64{0.2, 0.4, 0.6}
	}
	apps := workload.Apps()
	bounds := make([]float64, len(apps))
	for i, app := range apps {
		b, err := h.bound(app)
		if err != nil {
			return nil, err
		}
		bounds[i] = b
	}
	rows := make([]Fig9Row, len(apps)*len(loads))
	var jobs []func() error
	for ai, app := range apps {
		for li, load := range loads {
			ai, li, app, load := ai, li, app, load
			jobs = append(jobs, func() error {
				bound := bounds[ai]
				tr := h.trace(app, load)
				row := Fig9Row{App: app.Name, Load: load, BoundMs: ms(bound)}

				fixed, err := policy.Replay(tr, policy.UniformAssignment(len(tr.Requests), cpu.NominalMHz), h.rcfg)
				if err != nil {
					return err
				}
				row.FixedTailMs = ms(fixed.TailNs(TailPercentile))
				row.FixedMJ = fixed.EnergyPerRequestJ() * 1e3

				so, err := policy.StaticOracle(tr, h.grid, bound, TailPercentile, h.rcfg)
				if err != nil {
					return err
				}
				row.StaticTailMs = ms(so.Result.TailNs(TailPercentile))
				row.StaticMJ = so.Result.EnergyPerRequestJ() * 1e3
				row.Feasible = so.Feasible

				dyn, err := policy.DynamicOracle(tr, h.grid, bound, TailPercentile, h.rcfg)
				if err != nil {
					return err
				}
				row.DynamicTailMs = ms(dyn.Result.TailNs(TailPercentile))
				row.DynamicMJ = dyn.Result.EnergyPerRequestJ() * 1e3

				nofb, err := h.runRubik(tr, bound, false)
				if err != nil {
					return err
				}
				row.RubikNoFBTailMs = ms(nofb.TailNs(TailPercentile, Warmup))
				row.RubikNoFBMJ = nofb.EnergyPerRequestJ() * 1e3

				rb, err := h.runRubik(tr, bound, true)
				if err != nil {
					return err
				}
				row.RubikTailMs = ms(rb.TailNs(TailPercentile, Warmup))
				row.RubikMJ = rb.EnergyPerRequestJ() * 1e3

				rows[ai*len(loads)+li] = row
				return nil
			})
		}
	}
	if err := RunParallel(opts.Workers, jobs...); err != nil {
		return nil, err
	}
	return &Fig9Result{Rows: rows}, nil
}

// Render prints both panels as one table per app.
func (r *Fig9Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 9 — load sweeps: (a) p95 tail latency (ms), (b) core energy per request (mJ)")
	header := []string{"app", "load", "bound",
		"fixed tail", "static tail", "dynamic tail", "rubik-nofb tail", "rubik tail",
		"fixed mJ", "static mJ", "dynamic mJ", "rubik-nofb mJ", "rubik mJ", "feasible"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.App,
			fmt.Sprintf("%.0f%%", row.Load*100),
			fmt.Sprintf("%.3f", row.BoundMs),
			fmt.Sprintf("%.3f", row.FixedTailMs),
			fmt.Sprintf("%.3f", row.StaticTailMs),
			fmt.Sprintf("%.3f", row.DynamicTailMs),
			fmt.Sprintf("%.3f", row.RubikNoFBTailMs),
			fmt.Sprintf("%.3f", row.RubikTailMs),
			fmt.Sprintf("%.3f", row.FixedMJ),
			fmt.Sprintf("%.3f", row.StaticMJ),
			fmt.Sprintf("%.3f", row.DynamicMJ),
			fmt.Sprintf("%.3f", row.RubikNoFBMJ),
			fmt.Sprintf("%.3f", row.RubikMJ),
			fmt.Sprintf("%v", row.Feasible),
		})
	}
	table(w, header, rows)
}
