package experiments

import (
	"fmt"
	"io"

	"rubik/internal/capping"
	"rubik/internal/cluster"
	rubikcore "rubik/internal/core"
	"rubik/internal/queueing"
	"rubik/internal/workload"
)

// CappingRow is one (scenario, allocator, cap) cell of the sweep.
type CappingRow struct {
	Scenario  string
	Allocator string
	// CapW is the per-socket power budget; 0 = uncapped reference row.
	CapW float64
	// P95Ms / P99Ms are pooled tail response latencies; BoundMs is the
	// single-core Rubik bound every core targets.
	P95Ms, P99Ms, BoundMs float64
	// MJPerReq is pooled active core energy per request.
	MJPerReq float64
	// Throttles counts allocation rounds where the cap was binding;
	// PeakW/AvgW are the largest and time-weighted mean granted power.
	Throttles   int
	PeakW, AvgW float64
	CapExceedMs float64
}

// CappingResult is the EXTENSION experiment "capping": a 6-core cluster of
// per-core Rubik controllers run under a shared socket power budget,
// swept over cap level x allocator strategy x traffic shape. It measures
// the question Rubik alone cannot answer — how much tail latency a fleet
// gives up per watt of cap, and how much of that loss smart budget
// allocation (slack-aware donation, FastCap-style water-filling) buys
// back over a rigid equal split.
type CappingResult struct {
	App   string
	Cores int
	Rows  []CappingRow
}

// Capping sweeps cap x allocator x scenario on masstree with a fresh
// Rubik controller per core behind JSQ dispatch, sharding the independent
// cells across Options.Workers goroutines. Every cell streams its
// scenario source; the uncapped reference row per scenario anchors the
// tail-vs-cap tradeoff.
func Capping(opts Options) (*CappingResult, error) {
	h := newHarness(opts)
	app, err := workload.AppByName("masstree")
	if err != nil {
		return nil, err
	}
	bound, err := h.bound(app)
	if err != nil {
		return nil, err
	}

	const cores = 6
	const load = 0.5
	caps := []float64{36, 27, 18}
	scenarios := []string{"bursty", "diurnal"}
	if opts.Quick {
		caps = []float64{27, 18}
	}

	type cell struct {
		scenario string
		alloc    string // "" = uncapped reference
		capW     float64
	}
	var cells []cell
	for _, sc := range scenarios {
		cells = append(cells, cell{scenario: sc})
		for _, capW := range caps {
			for _, al := range capping.Names() {
				cells = append(cells, cell{scenario: sc, alloc: al, capW: capW})
			}
		}
	}

	rows := make([]CappingRow, len(cells))
	jobs := make([]func() error, len(cells))
	for i, cl := range cells {
		i, cl := i, cl
		jobs[i] = func() error {
			sc, err := workload.ScenarioByName(cl.scenario)
			if err != nil {
				return err
			}
			n := opts.requests(app) * cores
			src := sc.New(app, load*cores, n, opts.Seed+stableSeed(cl.scenario, load))
			ccfg := cluster.Config{
				Cores:      cores,
				Dispatcher: cluster.NewJSQ(),
				Core:       h.qcfg,
				NewPolicy: func(int) (queueing.Policy, error) {
					rcfg := rubikcore.DefaultConfig(bound)
					rcfg.Grid = h.grid
					rcfg.TransitionLatency = h.qcfg.TransitionLatency
					return rubikcore.New(rcfg)
				},
			}
			if cl.alloc != "" {
				ccfg.CapW = cl.capW
				if ccfg.Allocator, err = capping.ByName(cl.alloc); err != nil {
					return err
				}
			}
			res, err := cluster.RunSource(src, ccfg)
			if err != nil {
				return fmt.Errorf("experiments: capping %s/%s/%gW: %w", cl.scenario, cl.alloc, cl.capW, err)
			}
			row := CappingRow{
				Scenario:  cl.scenario,
				Allocator: cl.alloc,
				CapW:      cl.capW,
				P95Ms:     ms(res.TailNs(TailPercentile, Warmup)),
				P99Ms:     ms(res.TailNs(0.99, Warmup)),
				BoundMs:   ms(bound),
				MJPerReq:  res.EnergyPerRequestJ() * 1e3,
			}
			for _, d := range res.Capping {
				row.Throttles += d.ThrottleEvents
				row.CapExceedMs += ms(float64(d.CapExceededNs))
				row.AvgW += d.AvgPowerW
				if d.PeakPowerW > row.PeakW {
					row.PeakW = d.PeakPowerW
				}
			}
			rows[i] = row
			return nil
		}
	}
	if err := RunParallel(opts.Workers, jobs...); err != nil {
		return nil, err
	}
	return &CappingResult{App: app.Name, Cores: cores, Rows: rows}, nil
}

// Render writes the sweep table.
func (r *CappingResult) Render(w io.Writer) {
	fmt.Fprintf(w, "capping — %s: %d-core cluster, per-core Rubik under a shared socket budget, cap x allocator x scenario\n",
		r.App, r.Cores)
	header := []string{"scenario", "cap W", "allocator", "p95 ms", "p99 ms", "tail/bound", "mJ/req", "throttles", "peak W", "avg W", "cap-exceeded ms"}
	var rows [][]string
	for _, row := range r.Rows {
		alloc, capW := row.Allocator, fmt.Sprintf("%.0f", row.CapW)
		if alloc == "" {
			alloc, capW = "-", "∞"
		}
		rows = append(rows, []string{
			row.Scenario,
			capW,
			alloc,
			fmt.Sprintf("%.3f", row.P95Ms),
			fmt.Sprintf("%.3f", row.P99Ms),
			fmt.Sprintf("%.2f", row.P95Ms/row.BoundMs),
			fmt.Sprintf("%.3f", row.MJPerReq),
			fmt.Sprintf("%d", row.Throttles),
			fmt.Sprintf("%.1f", row.PeakW),
			fmt.Sprintf("%.1f", row.AvgW),
			fmt.Sprintf("%.3f", row.CapExceedMs),
		})
	}
	table(w, header, rows)
}
