package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Renderer is any experiment result that can print itself.
type Renderer interface {
	Render(w io.Writer)
}

// Runner executes one experiment and returns its renderable result.
type Runner func(Options) (Renderer, error)

// Entry describes one registered experiment.
type Entry struct {
	ID          string
	Description string
	Run         Runner
}

// Registry maps experiment IDs (paper table/figure numbers) to runners.
// DESIGN.md §5 is the authoritative index; EXPERIMENTS.md records
// paper-vs-measured values.
func Registry() []Entry {
	entries := []Entry{
		{"fig1a", "masstree energy/request: Rubik vs StaticOracle at 30/40/50% load",
			func(o Options) (Renderer, error) { return Fig1a(o) }},
		{"fig1b", "masstree 30%→50% load step: rolling tail and Rubik frequencies",
			func(o Options) (Renderer, error) { return Fig1b(o) }},
		{"fig2a", "CDF of instantaneous QPS (5 ms window) for all apps",
			func(o Options) (Renderer, error) { return Fig2a(o) }},
		{"fig2b", "masstree execution trace: QPS, service, queue, response",
			func(o Options) (Renderer, error) { return Fig2b(o) }},
		{"fig2c", "normalized tail latency vs load for all apps",
			func(o Options) (Renderer, error) { return Fig2c(o) }},
		{"table1", "correlation of response latency with service/QPS/queue",
			func(o Options) (Renderer, error) { return Table1(o) }},
		{"table2", "simulated CMP configuration",
			func(o Options) (Renderer, error) { return Table2(o) }},
		{"table3", "latency-critical application models",
			func(o Options) (Renderer, error) { return Table3(o) }},
		{"fig6", "core power savings: StaticOracle/AdrenalineOracle/Rubik",
			func(o Options) (Renderer, error) { return Fig6(o) }},
		{"fig7", "masstree latency CDF + Rubik frequency residency",
			func(o Options) (Renderer, error) { return Fig7(o) }},
		{"fig8", "xapian latency CDF + Rubik frequency residency",
			func(o Options) (Renderer, error) { return Fig8(o) }},
		{"fig9", "load sweeps: tails and energy for all schemes",
			func(o Options) (Renderer, error) { return Fig9(o) }},
		{"fig10", "25%→50%→75% load steps for all apps and schemes",
			func(o Options) (Renderer, error) { return Fig10(o) }},
		{"fig11", "real-system mode (130 us DVFS lag): masstree and moses",
			func(o Options) (Renderer, error) { return Fig11(o) }},
		{"fig12", "full-system power savings at 30% load",
			func(o Options) (Renderer, error) { return Fig12(o) }},
		{"pmv", "power-model fit + k-fold cross-validation (Sec 5.1)",
			func(o Options) (Renderer, error) { return PowerModelValidation(o) }},
		{"fig15", "colocation tail distributions: 4 schemes at 60% load",
			func(o Options) (Renderer, error) { return Fig15(o) }},
		{"fig16", "datacenter power/servers: segregated vs RubikColoc",
			func(o Options) (Renderer, error) { return Fig16(o) }},
		{"ablation", "EXTENSION: Rubik design choices removed one at a time",
			func(o Options) (Renderer, error) { return Ablation(o) }},
		{"capping", "EXTENSION: shared socket power budget, cap x allocator x scenario",
			func(o Options) (Renderer, error) { return Capping(o) }},
		{"clusterscale", "EXTENSION: multi-core cluster, cores x dispatcher x load sweep",
			func(o Options) (Renderer, error) { return ClusterScale(o) }},
		{"fleetcap", "EXTENSION: hierarchical rack->PDU->socket budgets vs flat division",
			func(o Options) (Renderer, error) { return FleetCap(o) }},
		{"fleetscale", "EXTENSION: sharded fleet, sockets x scenario x per-socket cap sweep",
			func(o Options) (Renderer, error) { return FleetScale(o) }},
		{"scenarios", "EXTENSION: arrival/service scenario shapes x schemes (streaming sources)",
			func(o Options) (Renderer, error) { return ScenarioSweep(o) }},
		{"pegasus", "EXTENSION: Pegasus-style feedback vs StaticOracle vs Rubik",
			func(o Options) (Renderer, error) { return PegasusComparison(o) }},
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	return entries
}

// Find returns the registered experiment with the given ID.
func Find(id string) (Entry, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAndRender executes an experiment by ID and writes its rendering.
func RunAndRender(id string, opts Options, w io.Writer) error {
	e, err := Find(id)
	if err != nil {
		return err
	}
	res, err := e.Run(opts)
	if err != nil {
		return fmt.Errorf("experiments: running %s: %w", id, err)
	}
	res.Render(w)
	return nil
}
