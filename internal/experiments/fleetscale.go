package experiments

import (
	"fmt"
	"io"

	"rubik/internal/cluster"
	rubikcore "rubik/internal/core"
	"rubik/internal/queueing"
	"rubik/internal/workload"
)

// FleetScaleRow is one (sockets, scenario, cap) cell of the sweep.
type FleetScaleRow struct {
	// Sockets x Cores is the fleet shape (Cores per socket).
	Sockets, Cores int
	Scenario       string
	// CapW is the per-socket power budget; 0 = uncapped.
	CapW float64
	// P95Ms / P99Ms are fleet-pooled tail response latencies; BoundMs is
	// the single-core Rubik bound every core targets.
	P95Ms, P99Ms, BoundMs float64
	// MJPerReq is fleet-pooled active core energy per request.
	MJPerReq float64
	// SpreadP95 is max/min per-socket p95 — the socket-to-socket tail
	// inequality that a fleet-level (hierarchical) budget would act on.
	SpreadP95 float64
	Served    int
}

// FleetScaleResult is the EXTENSION experiment "fleetscale": the sharded
// fleet engine run as an experiment — sockets x scenario x per-socket cap
// with a fresh Rubik controller per core, every socket fed an independent
// seed-derived stream behind socket-local JSQ dispatch. Its values are
// invariant to the shard count (the property the cluster tests pin), so
// the rendered table is identical whether the fleet simulated on one
// goroutine or GOMAXPROCS — what sharding buys is recorded as wall-clock
// in EXPERIMENTS.md, not here.
type FleetScaleResult struct {
	App  string
	Rows []FleetScaleRow
}

// FleetScale sweeps fleet size x traffic shape x per-socket cap on
// masstree. Each cell is one RunFleet call sharded across Options.Workers
// event-loop goroutines (0 = GOMAXPROCS); cells run sequentially since
// the fleet itself is the parallel unit.
func FleetScale(opts Options) (*FleetScaleResult, error) {
	h := newHarness(opts)
	app, err := workload.AppByName("masstree")
	if err != nil {
		return nil, err
	}
	bound, err := h.bound(app)
	if err != nil {
		return nil, err
	}

	const cores = 6
	const load = 0.5
	socketCounts := []int{16, 64}
	nPerCore := opts.requests(app)
	if opts.Quick {
		socketCounts = []int{2, 4}
		nPerCore = 1200
	}
	scenarios := []string{"bursty", "diurnal"}
	caps := []float64{0, 24}

	var rows []FleetScaleRow
	for _, sockets := range socketCounts {
		for _, scn := range scenarios {
			for _, capW := range caps {
				sc, err := workload.ScenarioByName(scn)
				if err != nil {
					return nil, err
				}
				n := nPerCore * cores
				fleetSeed := opts.Seed + stableSeed(scn, load) + int64(sockets)
				fcfg := cluster.FleetConfig{
					Sockets:        sockets,
					CoresPerSocket: cores,
					Shards:         opts.Workers,
					NewSource: func(s int) workload.Source {
						return sc.New(app, load*cores, n, workload.ShardSeed(fleetSeed, s))
					},
					NewDispatcher: func(int) cluster.Dispatcher { return cluster.NewJSQ() },
					Core:          h.qcfg,
					NewPolicy: func(int, int) (queueing.Policy, error) {
						rcfg := rubikcore.DefaultConfig(bound)
						rcfg.Grid = h.grid
						rcfg.TransitionLatency = h.qcfg.TransitionLatency
						return rubikcore.New(rcfg)
					},
					CapW: capW,
				}
				res, err := cluster.RunFleet(fcfg)
				if err != nil {
					return nil, fmt.Errorf("experiments: fleetscale %d sockets/%s/%gW: %w", sockets, scn, capW, err)
				}
				minP95, maxP95 := 0.0, 0.0
				for s, sr := range res.Sockets {
					p := sr.TailNs(TailPercentile, Warmup)
					if s == 0 || p < minP95 {
						minP95 = p
					}
					if p > maxP95 {
						maxP95 = p
					}
				}
				spread := 0.0
				if minP95 > 0 {
					spread = maxP95 / minP95
				}
				rows = append(rows, FleetScaleRow{
					Sockets:   sockets,
					Cores:     cores,
					Scenario:  scn,
					CapW:      capW,
					P95Ms:     ms(res.TailNs(TailPercentile, Warmup)),
					P99Ms:     ms(res.TailNs(0.99, Warmup)),
					BoundMs:   ms(bound),
					MJPerReq:  res.EnergyPerRequestJ() * 1e3,
					SpreadP95: spread,
					Served:    res.Served(),
				})
			}
		}
	}
	return &FleetScaleResult{App: app.Name, Rows: rows}, nil
}

// Render writes the sweep table.
func (r *FleetScaleResult) Render(w io.Writer) {
	fmt.Fprintf(w, "fleetscale — %s: sharded fleet, sockets x scenario x per-socket cap (per-core Rubik, socket-local JSQ)\n", r.App)
	header := []string{"sockets", "cores", "scenario", "cap W", "p95 ms", "p99 ms", "tail/bound", "mJ/req", "p95 spread", "served"}
	var rows [][]string
	for _, row := range r.Rows {
		capStr := "-"
		if row.CapW > 0 {
			capStr = fmt.Sprintf("%.0f", row.CapW)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Sockets),
			fmt.Sprintf("%dx%d", row.Sockets, row.Cores),
			row.Scenario,
			capStr,
			fmt.Sprintf("%.3f", row.P95Ms),
			fmt.Sprintf("%.3f", row.P99Ms),
			fmt.Sprintf("%.2f", row.P95Ms/row.BoundMs),
			fmt.Sprintf("%.3f", row.MJPerReq),
			fmt.Sprintf("%.2f", row.SpreadP95),
			fmt.Sprintf("%d", row.Served),
		})
	}
	table(w, header, rows)
}
