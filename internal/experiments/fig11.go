package experiments

import (
	"fmt"
	"io"

	rubikcore "rubik/internal/core"
	"rubik/internal/cpu"
	"rubik/internal/policy"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// Fig11Result reproduces Fig. 11: the real-system evaluation. The paper's
// Haswell exhibits ~130 us DVFS transition latencies (not the 0.5 us FIVR
// spec) and its larger per-core LLC share makes the apps more
// compute-bound. We model both: 130 us transitions and halved memory
// fractions for masstree (shortest requests) and moses (longest).
type Fig11Result struct {
	Loads []float64
	Apps  []string
	// Savings over fixed-nominal (fractions).
	Static map[string][]float64
	Rubik  map[string][]float64
	// ViolRubik confirms Rubik still meets the bound despite DVFS lag.
	ViolRubik map[string][]float64
}

// Fig11 runs the real-system-mode comparison.
func Fig11(opts Options) (*Fig11Result, error) {
	h := newHarness(opts)
	// Real-system mode: observed FIVR actuation lag.
	h.qcfg.TransitionLatency = 130 * sim.Microsecond

	masstree := workload.Masstree()
	masstree.MemFrac = 0.15 // full 8 MB LLC: more compute-bound
	moses := workload.Moses()
	moses.MemFrac = 0.08

	out := &Fig11Result{
		Loads:     []float64{0.3, 0.4, 0.5},
		Static:    map[string][]float64{},
		Rubik:     map[string][]float64{},
		ViolRubik: map[string][]float64{},
	}
	for _, app := range []workload.LCApp{masstree, moses} {
		out.Apps = append(out.Apps, app.Name)
		// Bound at 50% load under the real-system config.
		trBound := h.trace(app, 0.5)
		fixedBound, err := queueing.Run(trBound, queueing.FixedPolicy{MHz: cpu.NominalMHz}, h.qcfg)
		if err != nil {
			return nil, err
		}
		bound := fixedBound.TailNs(TailPercentile, 0)
		for _, load := range out.Loads {
			tr := h.trace(app, load)
			fixed, err := policy.Replay(tr, policy.UniformAssignment(len(tr.Requests), cpu.NominalMHz), h.rcfg)
			if err != nil {
				return nil, err
			}
			so, err := policy.StaticOracle(tr, h.grid, bound, TailPercentile, h.rcfg)
			if err != nil {
				return nil, err
			}
			rcfg := rubikcore.DefaultConfig(bound)
			rcfg.Grid = h.grid
			rcfg.TransitionLatency = h.qcfg.TransitionLatency
			rb, err := rubikcore.New(rcfg)
			if err != nil {
				return nil, err
			}
			rbRes, err := queueing.Run(tr, rb, h.qcfg)
			if err != nil {
				return nil, err
			}
			out.Static[app.Name] = append(out.Static[app.Name],
				1-so.Result.ActiveEnergyJ/fixed.ActiveEnergyJ)
			out.Rubik[app.Name] = append(out.Rubik[app.Name],
				1-rbRes.ActiveEnergyJ/fixed.ActiveEnergyJ)
			out.ViolRubik[app.Name] = append(out.ViolRubik[app.Name],
				rbRes.ViolationFrac(bound, Warmup))
		}
	}
	return out, nil
}

// Render writes the savings table.
func (r *Fig11Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 11 — real-system mode (130 us DVFS transitions, compute-bound LLC variant):")
	fmt.Fprintln(w, "core power savings over fixed-nominal (%)")
	var rows [][]string
	for _, app := range r.Apps {
		for li, load := range r.Loads {
			rows = append(rows, []string{
				app,
				fmt.Sprintf("%.0f%%", load*100),
				fmt.Sprintf("%.1f", r.Static[app][li]*100),
				fmt.Sprintf("%.1f", r.Rubik[app][li]*100),
				fmt.Sprintf("%.1f%%", r.ViolRubik[app][li]*100),
			})
		}
	}
	table(w, []string{"app", "load", "StaticOracle", "Rubik", "rubik>bound"}, rows)
}

// Fig12Result reproduces Fig. 12: Rubik's full-system power savings at 30%
// load, per app. Savings are modest relative to core savings because idle
// power (uncore, DRAM, PSU, disk) dominates — the observation that
// motivates RubikColoc.
type Fig12Result struct {
	Apps []string
	// CoreSavings and SystemSavings are fractions.
	CoreSavings   []float64
	SystemSavings []float64
}

// Fig12 computes per-server full-system savings (6 cores per server).
func Fig12(opts Options) (*Fig12Result, error) {
	h := newHarness(opts)
	system := cpu.DefaultSystemPower()
	out := &Fig12Result{}
	const cores = 6
	for _, app := range workload.Apps() {
		bound, err := h.bound(app)
		if err != nil {
			return nil, err
		}
		tr := h.trace(app, 0.3)
		fixed, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, h.qcfg)
		if err != nil {
			return nil, err
		}
		rb, err := h.runRubik(tr, bound, true)
		if err != nil {
			return nil, err
		}
		// Uncore/DRAM activity power scales with the *work* done (cache
		// and memory accesses are per-request), not with how long the
		// core takes to do it — so it is identical across schemes running
		// the same trace and is charged at the trace's nominal-frequency
		// utilization.
		var workNs float64
		for _, req := range tr.Requests {
			workNs += req.ServiceNs(cpu.NominalMHz)
		}
		sysPower := func(res queueing.Result) float64 {
			wall := float64(res.ActiveNs+res.IdleNs) / 1e9
			corePower := (res.ActiveEnergyJ + res.IdleEnergyJ) / wall
			workUtil := workNs / 1e9 / wall
			return cores*corePower + system.NonCorePower(cores*workUtil)
		}
		coreSave := 1 - rb.ActiveEnergyJ/fixed.ActiveEnergyJ
		sysSave := 1 - sysPower(rb)/sysPower(fixed)
		out.Apps = append(out.Apps, app.Name)
		out.CoreSavings = append(out.CoreSavings, coreSave)
		out.SystemSavings = append(out.SystemSavings, sysSave)
	}
	return out, nil
}

// Render writes the savings table.
func (r *Fig12Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 12 — Rubik power savings at 30% load: core vs full system (%)")
	var rows [][]string
	for i, app := range r.Apps {
		rows = append(rows, []string{
			app,
			fmt.Sprintf("%.1f", r.CoreSavings[i]*100),
			fmt.Sprintf("%.1f", r.SystemSavings[i]*100),
		})
	}
	table(w, []string{"app", "core savings", "system savings"}, rows)
}
