package experiments

import (
	"fmt"
	"io"

	"rubik/internal/capping"
	"rubik/internal/cluster"
	rubikcore "rubik/internal/core"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// FleetCapRow is one (scenario, rack cap, oversubscription, mode) cell.
type FleetCapRow struct {
	Sockets, Cores int
	Scenario       string
	// RackW is the rack-level budget; Oversub is the PDU oversubscription
	// ratio (each PDU may promise its children Oversub x its own grant).
	RackW   float64
	Oversub float64
	// Mode is "flat" (the rack budget statically pre-divided into fixed
	// per-socket caps) or "hier" (rack->PDU->socket waterfill tree
	// re-allocating on demand every epoch).
	Mode                  string
	P95Ms, P99Ms, BoundMs float64
	MJPerReq              float64
	// SpreadP95 is max/min per-socket p95: hierarchical budgets exist to
	// shrink this under skewed demand.
	SpreadP95 float64
	// Throttles sums allocation rounds that clipped at least one core;
	// ExceedMs sums simulated time infeasible domains spent over budget.
	Throttles int
	ExceedMs  float64
	// CapChanges counts socket budget retargets (0 in flat mode).
	CapChanges int
	Served     int
}

// FleetCapResult is the EXTENSION experiment "fleetcap": hierarchical
// rack->PDU->socket power budgets versus flat static division, on a fleet
// with deliberately skewed per-socket demand (socket s runs at
// 0.3+0.4·s/(n-1) load per core). Flat mode gives every socket
// RackW·Oversub/sockets forever; hier mode lets the budget tree move
// watts toward demand at every epoch. Both enforce the same rack budget,
// so tail and spread differences are pure allocation quality.
type FleetCapResult struct {
	App  string
	Rows []FleetCapRow
}

// FleetCap sweeps scenario x rack budget x oversubscription x flat/hier
// on masstree. Values are shard-invariant (the property the cluster tests
// pin), so Options.Workers changes wall-clock only.
func FleetCap(opts Options) (*FleetCapResult, error) {
	h := newHarness(opts)
	app, err := workload.AppByName("masstree")
	if err != nil {
		return nil, err
	}
	bound, err := h.bound(app)
	if err != nil {
		return nil, err
	}

	const cores = 4
	sockets := 8
	nPerCore := opts.requests(app)
	if opts.Quick {
		sockets = 4
		nPerCore = 1200
	}
	const epoch = 5 * sim.Time(1_000_000) // 5 ms re-allocation cadence
	scenarios := []string{"bursty", "diurnal"}
	// Tight: well under the fleet's max draw, so allocation quality shows.
	// Roomy: binds only during bursts.
	rackCaps := []float64{10 * float64(sockets), 16 * float64(sockets)}
	oversubs := []float64{1, 1.25}

	var rows []FleetCapRow
	for _, scn := range scenarios {
		sc, err := workload.ScenarioByName(scn)
		if err != nil {
			return nil, err
		}
		for _, rackW := range rackCaps {
			for _, oversub := range oversubs {
				for _, mode := range []string{"flat", "hier"} {
					n := nPerCore * cores
					fleetSeed := opts.Seed + stableSeed(scn, oversub) + int64(sockets)
					fcfg := cluster.FleetConfig{
						Sockets:        sockets,
						CoresPerSocket: cores,
						Shards:         opts.Workers,
						NewSource: func(s int) workload.Source {
							load := 0.3 + 0.4*float64(s)/float64(sockets-1)
							return sc.New(app, load*cores, n, workload.ShardSeed(fleetSeed, s))
						},
						NewDispatcher: func(int) cluster.Dispatcher { return cluster.NewJSQ() },
						Core:          h.qcfg,
						NewPolicy: func(int, int) (queueing.Policy, error) {
							rcfg := rubikcore.DefaultConfig(bound)
							rcfg.Grid = h.grid
							rcfg.TransitionLatency = h.qcfg.TransitionLatency
							return rubikcore.New(rcfg)
						},
					}
					if mode == "flat" {
						fcfg.CapW = rackW * oversub / float64(sockets)
					} else {
						fcfg.Hierarchy = &capping.HierarchySpec{Levels: []capping.LevelSpec{
							{Name: "rack", Nodes: 1, CapW: rackW},
							{Name: "pdu", Nodes: 2, Oversub: oversub},
						}}
						fcfg.Epoch = epoch
					}
					res, err := cluster.RunFleet(fcfg)
					if err != nil {
						return nil, fmt.Errorf("experiments: fleetcap %s/%gW/%gx/%s: %w", scn, rackW, oversub, mode, err)
					}
					minP95, maxP95 := 0.0, 0.0
					for s, sr := range res.Sockets {
						p := sr.TailNs(TailPercentile, Warmup)
						if s == 0 || p < minP95 {
							minP95 = p
						}
						if p > maxP95 {
							maxP95 = p
						}
					}
					spread := 0.0
					if minP95 > 0 {
						spread = maxP95 / minP95
					}
					throttles := 0
					var exceedNs sim.Time
					for _, ds := range res.Capping() {
						throttles += ds.ThrottleEvents
						exceedNs += ds.CapExceededNs
					}
					capChanges := 0
					if res.Hierarchy != nil {
						capChanges = res.Hierarchy.LeafCapChanges
					}
					rows = append(rows, FleetCapRow{
						Sockets:    sockets,
						Cores:      cores,
						Scenario:   scn,
						RackW:      rackW,
						Oversub:    oversub,
						Mode:       mode,
						P95Ms:      ms(res.TailNs(TailPercentile, Warmup)),
						P99Ms:      ms(res.TailNs(0.99, Warmup)),
						BoundMs:    ms(bound),
						MJPerReq:   res.EnergyPerRequestJ() * 1e3,
						SpreadP95:  spread,
						Throttles:  throttles,
						ExceedMs:   float64(exceedNs) / 1e6,
						CapChanges: capChanges,
						Served:     res.Served(),
					})
				}
			}
		}
	}
	return &FleetCapResult{App: app.Name, Rows: rows}, nil
}

// Render writes the sweep table.
func (r *FleetCapResult) Render(w io.Writer) {
	fmt.Fprintf(w, "fleetcap — %s: rack->PDU->socket budgets vs flat division, skewed demand (per-core Rubik, socket-local JSQ)\n", r.App)
	header := []string{"fleet", "scenario", "rack W", "oversub", "mode", "p95 ms", "p99 ms", "tail/bound", "mJ/req", "p95 spread", "throttles", "exceed ms", "cap chg", "served"}
	var rows [][]string
	for _, row := range r.Rows {
		capChg := "-"
		if row.Mode == "hier" {
			capChg = fmt.Sprintf("%d", row.CapChanges)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%dx%d", row.Sockets, row.Cores),
			row.Scenario,
			fmt.Sprintf("%.0f", row.RackW),
			fmt.Sprintf("%.2f", row.Oversub),
			row.Mode,
			fmt.Sprintf("%.3f", row.P95Ms),
			fmt.Sprintf("%.3f", row.P99Ms),
			fmt.Sprintf("%.2f", row.P95Ms/row.BoundMs),
			fmt.Sprintf("%.3f", row.MJPerReq),
			fmt.Sprintf("%.2f", row.SpreadP95),
			fmt.Sprintf("%d", row.Throttles),
			fmt.Sprintf("%.1f", row.ExceedMs),
			capChg,
			fmt.Sprintf("%d", row.Served),
		})
	}
	table(w, header, rows)
}
