package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"rubik/internal/cpu"
)

// PowerModelValidationResult reproduces the paper's power-model
// construction and validation (Sec. 5.1): least-squares regression of
// per-component power onto frequency/voltage/activity features, with
// k-fold cross-validation. The paper reports 5.1% mean / 11% worst-case
// absolute error for the full system and 1.5% / 4% for core, uncore and
// DRAM.
type PowerModelValidationResult struct {
	Components []string
	MeanErrPct []float64
	MaxErrPct  []float64
	Samples    int
	Folds      int
}

// PowerModelValidation generates synthetic 25 ms "RAPL samples" of
// SPEC-like mixes running at random frequencies and utilizations, fits the
// regression per component and cross-validates.
func PowerModelValidation(opts Options) (*PowerModelValidationResult, error) {
	r := rand.New(rand.NewSource(opts.Seed + 99))
	grid := cpu.DefaultGrid()
	model := cpu.DefaultPowerModel()
	system := cpu.DefaultSystemPower()
	n := 20000
	if opts.Quick {
		n = 4000
	}

	type sample struct {
		features map[string][]float64
		truth    map[string]float64
	}
	samples := make([]sample, n)
	for i := range samples {
		f := grid.Step(r.Intn(grid.Len()))
		v := cpu.Voltage(f)
		util := 0.2 + 0.8*r.Float64()      // busy fraction over the 25 ms window
		activity := 0.75 + 0.5*r.Float64() // workload switching factor
		cores := 1 + r.Intn(6)
		cf := float64(cores)

		m := model
		m.ActivityFactor = activity
		corePower := cf * (util*m.ActivePower(f) + (1-util)*m.SleepPower())
		uncorePower := system.UncoreIdleW + cf*util*system.UncorePerActiveCoreW
		dramPower := system.DRAMIdleW + cf*util*system.DRAMPerActiveCoreW
		// Wall power includes PSU losses etc. plus measurement noise.
		noise := func(scale float64) float64 { return 1 + scale*r.NormFloat64() }

		// Counter-derived features: frequency, voltage terms, and
		// activity proxies (instructions ∝ util*activity*f, accesses ∝
		// util*cores).
		instr := cf * util * activity * float64(f)
		active := cf * util
		samples[i] = sample{
			features: map[string][]float64{
				"core":   {1, cf * v, instr * v * v / 1e3, active * v},
				"uncore": {1, active, float64(f) / 1e3},
				"dram":   {1, active},
				"system": {1, cf * v, instr * v * v / 1e3, active, float64(f) / 1e3},
			},
			truth: map[string]float64{
				"core":   corePower * noise(0.01),
				"uncore": uncorePower * noise(0.01),
				"dram":   dramPower * noise(0.01),
				"system": (corePower + uncorePower + dramPower + system.OtherW) * noise(0.03),
			},
		}
	}

	out := &PowerModelValidationResult{Samples: n, Folds: 10}
	for _, comp := range []string{"core", "uncore", "dram", "system"} {
		x := make([][]float64, n)
		y := make([]float64, n)
		for i, s := range samples {
			x[i] = s.features[comp]
			y[i] = s.truth[comp]
		}
		cv, err := cpu.KFoldCV(x, y, out.Folds)
		if err != nil {
			return nil, fmt.Errorf("experiments: power model CV (%s): %w", comp, err)
		}
		out.Components = append(out.Components, comp)
		out.MeanErrPct = append(out.MeanErrPct, cv.MeanAbsRelErr*100)
		out.MaxErrPct = append(out.MaxErrPct, cv.MaxAbsRelErr*100)
	}
	return out, nil
}

// Render writes the error table.
func (r *PowerModelValidationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Power model validation — %d samples, %d-fold cross-validation\n", r.Samples, r.Folds)
	var rows [][]string
	for i, c := range r.Components {
		rows = append(rows, []string{
			c,
			fmt.Sprintf("%.2f%%", r.MeanErrPct[i]),
			fmt.Sprintf("%.2f%%", r.MaxErrPct[i]),
		})
	}
	table(w, []string{"component", "mean abs err", "worst abs err"}, rows)
}
