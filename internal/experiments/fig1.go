package experiments

import (
	"fmt"
	"io"

	"rubik/internal/policy"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// Fig1aResult reproduces Fig. 1a: core energy per request for StaticOracle
// and Rubik on masstree at 30/40/50% load.
type Fig1aResult struct {
	Loads []float64
	// EnergyMJPerReq[scheme][i] is mJ/request at Loads[i].
	StaticOracle []float64
	Rubik        []float64
	BoundMs      float64
}

// Fig1a runs the teaser comparison.
func Fig1a(opts Options) (*Fig1aResult, error) {
	h := newHarness(opts)
	app := workload.Masstree()
	bound, err := h.bound(app)
	if err != nil {
		return nil, err
	}
	out := &Fig1aResult{Loads: []float64{0.3, 0.4, 0.5}, BoundMs: ms(bound)}
	for _, load := range out.Loads {
		tr := h.trace(app, load)
		so, err := policy.StaticOracle(tr, h.grid, bound, TailPercentile, h.rcfg)
		if err != nil {
			return nil, err
		}
		out.StaticOracle = append(out.StaticOracle, so.Result.EnergyPerRequestJ()*1e3)
		res, err := h.runRubik(tr, bound, true)
		if err != nil {
			return nil, err
		}
		out.Rubik = append(out.Rubik, res.EnergyPerRequestJ()*1e3)
	}
	return out, nil
}

// Render writes the energy table.
func (r *Fig1aResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 1a — masstree core energy per request (mJ/req), tail bound %.3f ms\n", r.BoundMs)
	var rows [][]string
	for i, load := range r.Loads {
		saving := 1 - r.Rubik[i]/r.StaticOracle[i]
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", load*100),
			fmt.Sprintf("%.3f", r.StaticOracle[i]),
			fmt.Sprintf("%.3f", r.Rubik[i]),
			fmt.Sprintf("%.0f%%", saving*100),
		})
	}
	table(w, []string{"load", "StaticOracle", "Rubik", "Rubik saving"}, rows)
}

// Fig1bResult reproduces Fig. 1b: the response of Rubik and StaticOracle to
// a 30%→50% load step at t = 1 s (input load, rolling tail latency, and
// Rubik's frequency choices over time).
type Fig1bResult struct {
	BoundMs float64
	// Sampled every 100 ms.
	Times          []sim.Time
	LoadQPS        []float64
	RubikTailMs    []float64
	StaticTailMs   []float64
	RubikFreqGHz   []float64 // time-weighted mean over each sample step
	StaticMHz      int
	RubikViolFrac  float64
	StaticViolFrac float64
}

// Fig1b runs the load-step teaser on masstree.
func Fig1b(opts Options) (*Fig1bResult, error) {
	h := newHarness(opts)
	app := workload.Masstree()
	bound, err := h.bound(app)
	if err != nil {
		return nil, err
	}
	r30 := app.RateForLoad(0.3)
	r50 := app.RateForLoad(0.5)
	step, err := workload.NewStepLoad(
		workload.Phase{Start: 0, RatePerSec: r30},
		workload.Phase{Start: sim.Second, RatePerSec: r50},
	)
	if err != nil {
		return nil, err
	}
	n := int(r30 + r50) // ≈ 2 seconds of arrivals
	if opts.Quick {
		n = n / 2
	}
	tr := workload.Generate(app, step, n, opts.Seed+5)

	// StaticOracle configured for the 50%-load steady state (its setting
	// is derived from the bound-defining load and cannot adapt).
	steady := h.trace(app, 0.5)
	so, err := policy.StaticOracle(steady, h.grid, bound, TailPercentile, h.rcfg)
	if err != nil {
		return nil, err
	}
	soRep, err := policy.Replay(tr, policy.UniformAssignment(len(tr.Requests), so.MHz), h.rcfg)
	if err != nil {
		return nil, err
	}

	qcfg := h.qcfg
	qcfg.RecordTimeline = true
	rb, err := h.rubik(bound, true)
	if err != nil {
		return nil, err
	}
	rbRes, err := queueing.Run(tr, rb, qcfg)
	if err != nil {
		return nil, err
	}

	out := &Fig1bResult{BoundMs: ms(bound), StaticMHz: so.MHz}
	const stepT = 100 * sim.Millisecond
	const window = 200 * sim.Millisecond
	rbTail := rollingTail(rbRes.Completions, window, stepT, TailPercentile)
	soTail := rollingTail(replayCompletions(tr, soRep), window, stepT, TailPercentile)
	end := rbRes.EndTime
	for t := stepT; t <= end; t += stepT {
		out.Times = append(out.Times, t)
		out.LoadQPS = append(out.LoadQPS, qpsIn(tr, t-stepT, t))
		out.RubikTailMs = append(out.RubikTailMs, ms(valueAt(rbTail, t)))
		out.StaticTailMs = append(out.StaticTailMs, ms(valueAt(soTail, t)))
		out.RubikFreqGHz = append(out.RubikFreqGHz, meanFreqGHz(rbRes.FreqTimeline, t-stepT, t, end))
	}
	out.RubikViolFrac = rbRes.ViolationFrac(bound, Warmup)
	out.StaticViolFrac = float64(soRep.ViolationCount(bound)) / float64(len(tr.Requests))
	return out, nil
}

// Render prints the time series.
func (r *Fig1bResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 1b — masstree load step 30%%→50%% at t=1s (bound %.3f ms, StaticOracle fixed at %d MHz)\n",
		r.BoundMs, r.StaticMHz)
	var rows [][]string
	for i, t := range r.Times {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", float64(t)/1e9),
			fmt.Sprintf("%.0f", r.LoadQPS[i]),
			fmt.Sprintf("%.3f", r.StaticTailMs[i]),
			fmt.Sprintf("%.3f", r.RubikTailMs[i]),
			fmt.Sprintf("%.2f", r.RubikFreqGHz[i]),
		})
	}
	table(w, []string{"t(s)", "QPS", "static tail(ms)", "rubik tail(ms)", "rubik freq(GHz)"}, rows)
	fmt.Fprintf(w, "violations: rubik %.1f%%, static %.1f%%\n", r.RubikViolFrac*100, r.StaticViolFrac*100)
}

// replayCompletions adapts a ReplayResult into completion records for the
// rolling-tail helper.
func replayCompletions(tr workload.Trace, rep policy.ReplayResult) []queueing.Completion {
	out := make([]queueing.Completion, len(rep.ResponsesNs))
	for i := range rep.ResponsesNs {
		out[i] = queueing.Completion{
			Arrival:    tr.Requests[i].Arrival,
			Done:       rep.Dones[i],
			ResponseNs: rep.ResponsesNs[i],
		}
	}
	return out
}

// qpsIn counts trace arrivals in (from, to] as a rate.
func qpsIn(tr workload.Trace, from, to sim.Time) float64 {
	n := 0
	for _, r := range tr.Requests {
		if r.Arrival > to {
			break
		}
		if r.Arrival > from {
			n++
		}
	}
	return float64(n) / (float64(to-from) / 1e9)
}

// valueAt returns the series value at the sample closest to t (0 if none).
func valueAt(series []TimePoint, t sim.Time) float64 {
	var v float64
	for _, p := range series {
		if p.T > t {
			break
		}
		v = p.V
	}
	return v
}

// meanFreqGHz computes the time-weighted mean frequency in (from, to].
func meanFreqGHz(timeline []queueing.FreqSample, from, to, end sim.Time) float64 {
	if len(timeline) == 0 {
		return 0
	}
	var wsum, tsum float64
	for i, fs := range timeline {
		segEnd := end
		if i+1 < len(timeline) {
			segEnd = timeline[i+1].T
		}
		lo, hi := fs.T, segEnd
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			wsum += float64(fs.MHz) * float64(hi-lo)
			tsum += float64(hi - lo)
		}
	}
	if tsum == 0 {
		return 0
	}
	return wsum / tsum / 1000
}
