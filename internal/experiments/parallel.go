package experiments

import (
	"runtime"
	"sync"
)

// RunParallel executes independent jobs on a worker pool of the given
// width (workers <= 0 means GOMAXPROCS; workers == 1 is the sequential
// runner). Jobs must be independent — each writes only its own
// caller-owned result slot — so the pool changes wall-clock order but
// never results: RunParallel(1, jobs...) and RunParallel(n, jobs...) fill
// identical slots. The returned error is the lowest-indexed job's error,
// independent of scheduling, so error reporting is deterministic too.
//
// Experiment drivers shard their (app, load, seed, scheme) cells through
// this pool; every simulation stays single-threaded internally, the
// fan-out is purely across cells.
func RunParallel(workers int, jobs ...func() error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, len(jobs))
	if workers <= 1 {
		for i, job := range jobs {
			errs[i] = job()
		}
		return firstError(errs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = jobs[i]()
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
