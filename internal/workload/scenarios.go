package workload

import (
	"fmt"

	"rubik/internal/sim"
)

// Scenario is a named arrival/service shape in the scenario registry:
// given an app, a mean load fraction, a request budget and a seed it
// builds the streaming Source realizing that shape. Time-varying
// scenarios derive their episode lengths from the app's mean
// interarrival time at the target load, so every app sees the same
// relative dynamics regardless of its absolute request rate.
type Scenario struct {
	// Name is the registry key (rubiktrace -scenario, the scenarios
	// experiment, the facade).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// New builds the scenario source. load is the mean fraction of the
	// app's nominal-frequency capacity; n caps total requests (<0:
	// unbounded where the shape allows it).
	New func(app LCApp, load float64, n int, seed int64) Source
}

// expectedDur estimates the run length of n requests at a mean load.
func expectedDur(app LCApp, load float64, n int) sim.Time {
	if n < 0 {
		n = app.Requests
	}
	return sim.Time(float64(n) / app.RateForLoad(load) * 1e9)
}

// meanGap returns the mean interarrival time at the target load.
func meanGap(app LCApp, load float64) sim.Time {
	return sim.Time(1e9 / app.RateForLoad(load))
}

// Scenarios returns the registry in presentation order. Every scenario is
// deterministic per (app, load, n, seed).
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "poisson",
			Description: "stationary Poisson arrivals (the paper's Markov input)",
			New: func(app LCApp, load float64, n int, seed int64) Source {
				return NewLoadSource(app, load, n, seed)
			},
		},
		{
			Name:        "step",
			Description: "piecewise load steps 0.5x -> 1x -> 1.5x of the target load",
			New: func(app LCApp, load float64, n int, seed int64) Source {
				T := expectedDur(app, load, n)
				step, err := NewStepLoad(
					Phase{Start: 0, RatePerSec: app.RateForLoad(0.5 * load)},
					Phase{Start: T / 3, RatePerSec: app.RateForLoad(load)},
					Phase{Start: 2 * T / 3, RatePerSec: app.RateForLoad(1.5 * load)},
				)
				if err != nil {
					panic(err) // phases above are statically valid
				}
				return NewGenSource(app, step, n, seed)
			},
		},
		{
			Name:        "bursty",
			Description: "two-state MMPP: calm spells with 3x burst episodes",
			New: func(app LCApp, load float64, n int, seed int64) Source {
				// Mean rate over the cycle is base*(4*1 + 1*3)/5 = 1.4*base;
				// divide so the scenario's mean load matches the target.
				base := app.RateForLoad(load) / 1.4
				gap := meanGap(app, load)
				return NewGenSource(app, NewBurstyMMPP(base, 3, 400*gap, 100*gap), n, seed)
			},
		},
		{
			Name:        "diurnal",
			Description: "sinusoidal day/night load swing (+/-60%), four cycles per run",
			New: func(app LCApp, load float64, n int, seed int64) Source {
				return NewGenSource(app, Sinusoid{
					BaseRate:  app.RateForLoad(load),
					Amplitude: 0.6,
					Period:    expectedDur(app, load, n) / 4,
				}, n, seed)
			},
		},
		{
			Name:        "flashcrowd",
			Description: "flash-crowd spike: 3x load plateau then exponential decay",
			New: func(app LCApp, load float64, n int, seed int64) Source {
				T := expectedDur(app, load, n)
				return NewGenSource(app, FlashCrowd{
					BaseRate: app.RateForLoad(load),
					Peak:     3,
					Start:    T / 3,
					Hold:     T / 10,
					Decay:    T / 10,
				}, n, seed)
			},
		},
		{
			Name:        "closedloop",
			Description: "closed-loop think-time clients (population sized for the target load)",
			New: func(app LCApp, load float64, n int, seed int64) Source {
				// Interactive law: throughput ~= Clients/think when think
				// dominates response time, so Clients = load*think/meanService
				// offers the target load. think = 20x mean service keeps the
				// approximation honest at moderate loads.
				think := sim.Time(20 * app.MeanServiceNsAtNominal())
				clients := int(load*20 + 0.5)
				if clients < 1 {
					clients = 1
				}
				return ClosedLoop{
					App:       app,
					Clients:   clients,
					MeanThink: think,
					N:         n,
					Seed:      seed,
				}.NewSource()
			},
		},
		{
			Name:        "heavytail",
			Description: "Poisson arrivals with 2% Pareto straggler requests (3-50x)",
			New: func(app LCApp, load float64, n int, seed int64) Source {
				mod := &ParetoSlowdown{Prob: 0.02, Scale: 3, Alpha: 1.5, Cap: 50}
				return Modulate(NewLoadSource(app, load, n, seed), mod, seed+1)
			},
		},
		{
			Name:        "correlated",
			Description: "Poisson arrivals with AR(1)-correlated service slowdowns",
			New: func(app LCApp, load float64, n int, seed int64) Source {
				mod := &ARSlowdown{Corr: 0.95, Sigma: 0.3}
				return Modulate(NewLoadSource(app, load, n, seed), mod, seed+2)
			},
		},
	}
}

// ScenarioByName looks a scenario up in the registry.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q", name)
}
