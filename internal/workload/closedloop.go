package workload

import (
	"math/rand"

	"rubik/internal/sim"
)

// ClosedLoop configures a closed-loop client population: Clients users
// that each issue one request, wait for its completion, think for an
// exponential time, and issue the next. Unlike the open (Poisson) model,
// offered load falls when the server slows down — the self-throttling
// behavior of interactive sessions — so tail/energy trade-offs look very
// different from open-loop replays of the same mean rate.
type ClosedLoop struct {
	// App supplies per-request work.
	App LCApp
	// Clients is the concurrent user population.
	Clients int
	// MeanThink is the mean exponential think time between a client's
	// completion and its next request.
	MeanThink sim.Time
	// N caps total requests issued (<0: unbounded).
	N int
	// Seed makes the stream deterministic.
	Seed int64
}

// NewSource builds the streaming closed-loop source. It implements
// CompletionAware: the simulation feeder must forward completions (the
// queueing and cluster RunSource entry points do) — without them each
// client issues exactly one request.
func (c ClosedLoop) NewSource() *ClosedLoopSource {
	s := &ClosedLoopSource{cfg: c}
	s.Reset()
	return s
}

// ClosedLoopSource streams a ClosedLoop population. Pending arrivals live
// in a small min-heap ordered by (arrival, id): one entry per waiting
// client, so memory is O(Clients) regardless of run length. Work is
// sampled when an arrival is spawned; IDs are assigned in spawn order.
type ClosedLoopSource struct {
	cfg ClosedLoop

	r       *rand.Rand
	heap    []Request // min-heap by (Arrival, ID)
	spawned int
	pulled  int
}

// Next pops the earliest pending arrival.
func (s *ClosedLoopSource) Next() (Request, bool) {
	if len(s.heap) == 0 {
		return Request{}, false
	}
	req := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	s.siftDown(0)
	s.pulled++
	return req, true
}

// Len is unknown (-1): future arrivals depend on completions.
func (s *ClosedLoopSource) Len() int { return -1 }

// Reset rewinds to the initial client population: each client's first
// request arrives after one think time from t=0.
func (s *ClosedLoopSource) Reset() {
	s.r = rand.New(rand.NewSource(s.cfg.Seed))
	s.heap = s.heap[:0]
	s.spawned = 0
	s.pulled = 0
	for i := 0; i < s.cfg.Clients; i++ {
		s.spawn(0)
	}
}

// OnCompletion spawns the completing client's next request at
// done + think. The total-request cap N stops the population.
func (s *ClosedLoopSource) OnCompletion(done sim.Time) {
	if s.pulled > 0 {
		s.pulled-- // the completed request left the in-flight set
	}
	s.spawn(done)
}

// Requeue returns a pulled-but-undelivered request to the heap (the
// feeder's lookahead, displaced by a completion-spawned earlier arrival).
func (s *ClosedLoopSource) Requeue(req Request) {
	s.pulled--
	s.push(req)
}

// InFlight reports how many requests are currently between pull and
// completion (pulled, not requeued, not yet completed) — never more than
// Clients.
func (s *ClosedLoopSource) InFlight() int { return s.pulled }

// Exhausted reports that no future Next can ever return a request: the
// heap is empty and either the spawn cap is reached or nothing is in
// flight whose completion could spawn more (InFlight == 0).
func (s *ClosedLoopSource) Exhausted() bool {
	if len(s.heap) > 0 {
		return false
	}
	if s.cfg.N >= 0 && s.spawned >= s.cfg.N {
		return true
	}
	return s.pulled == 0
}

// spawn samples one client request arriving think-time after from.
func (s *ClosedLoopSource) spawn(from sim.Time) {
	if s.cfg.N >= 0 && s.spawned >= s.cfg.N {
		return
	}
	think := sim.Time(s.r.ExpFloat64() * float64(s.cfg.MeanThink))
	if think < 1 {
		think = 1
	}
	cc, mt := s.cfg.App.SampleRequest(s.r)
	s.push(Request{ID: s.spawned, Arrival: from + think, ComputeCycles: cc, MemTime: mt})
	s.spawned++
}

// before orders heap entries by (Arrival, ID).
func (s *ClosedLoopSource) before(a, b Request) bool {
	return a.Arrival < b.Arrival || (a.Arrival == b.Arrival && a.ID < b.ID)
}

func (s *ClosedLoopSource) push(req Request) {
	s.heap = append(s.heap, req)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.before(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *ClosedLoopSource) siftDown(i int) {
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(s.heap) && s.before(s.heap[left], s.heap[smallest]) {
			smallest = left
		}
		if right < len(s.heap) && s.before(s.heap[right], s.heap[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}
