package workload

import (
	"fmt"
	"math"
	"math/rand"

	"rubik/internal/sim"
)

// Source is a pull-based request stream: the streaming counterpart of a
// materialized Trace. Consumers (queueing.Feeder, the cluster dispatcher
// loop, coloc cores) pull one request at a time, so simulation length is
// bounded by time, not by trace allocation — a 10M-request run holds no
// []Request anywhere.
//
// Contract:
//   - Deterministic per construction parameters: two sources built with
//     the same arguments yield identical request sequences, and Reset
//     rewinds a source to exactly its initial sequence.
//   - Arrivals are non-decreasing.
//   - Next returns requests one at a time; ok=false means the stream is
//     exhausted (a later Next may return more only for completion-aware
//     sources, see CompletionAware).
//   - The returned Request is a value; sources retain nothing.
type Source interface {
	// Next returns the next request, or ok=false when exhausted.
	Next() (req Request, ok bool)
	// Len returns the number of requests remaining, or -1 when unknown
	// (unbounded or feedback-driven streams). Consumers use it only as a
	// capacity hint.
	Len() int
	// Reset rewinds the source to the start of its sequence.
	Reset()
}

// CompletionAware is implemented by sources whose future arrivals depend
// on completions (closed-loop clients). The feeder notifies the source of
// every completion and, because it holds a one-request lookahead, returns
// that lookahead via Requeue before re-pulling, so a completion-spawned
// arrival that precedes the lookahead is delivered in order.
type CompletionAware interface {
	Source
	// OnCompletion tells the source a request finished at done.
	OnCompletion(done sim.Time)
	// Requeue gives an already-pulled request back to the source; a
	// subsequent Next must return it — or a deterministic regeneration
	// with the same ID and arrival (a modulating wrapper redraws its work
	// factor) — at its position in arrival order. Consumers may only
	// requeue the most recently pulled request (the feeder's one-deep
	// lookahead protocol); sources rely on that bound.
	Requeue(req Request)
	// Exhausted reports that no future Next can ever return a request,
	// regardless of completions still to come. A drained Next (ok=false)
	// alone does not imply it: with requests in flight, a completion may
	// spawn new arrivals. Consumers keep periodic machinery (policy
	// ticks) alive until Exhausted.
	Exhausted() bool
}

// arrivalsResetter is implemented by stateful arrival processes (MMPP);
// GenSource.Reset forwards to it.
type arrivalsResetter interface{ ResetProcess() }

// TraceSource streams a materialized request slice: the bridge that makes
// a Trace just one Source implementation, so every consumer has a single
// streaming ingest path.
type TraceSource struct {
	reqs []Request
	next int
}

// NewTraceSource streams tr's requests.
func NewTraceSource(tr Trace) *TraceSource { return &TraceSource{reqs: tr.Requests} }

// NewRequestsSource streams a raw request slice.
func NewRequestsSource(reqs []Request) *TraceSource { return &TraceSource{reqs: reqs} }

// Next returns the next trace request.
func (s *TraceSource) Next() (Request, bool) {
	if s.next >= len(s.reqs) {
		return Request{}, false
	}
	r := s.reqs[s.next]
	s.next++
	return r, true
}

// Len returns the number of requests not yet pulled.
func (s *TraceSource) Len() int { return len(s.reqs) - s.next }

// Reset rewinds to the first request.
func (s *TraceSource) Reset() { s.next = 0 }

// GenSource generates requests on demand from an arrival process and an
// app's service model — the streaming equivalent of Generate: for the
// same (app, arrivals, n, seed) it yields the byte-identical request
// sequence, drawing from one seeded rand in the same order.
type GenSource struct {
	app      LCApp
	arrivals ArrivalProcess
	n        int // <0 = unbounded
	seed     int64

	r      *rand.Rand
	issued int
	now    sim.Time
}

// NewGenSource streams n requests (n < 0: unbounded) for app under the
// arrival process, deterministically per seed. Stateful arrival processes
// (e.g. *MMPP) must not be shared between live sources.
func NewGenSource(app LCApp, arrivals ArrivalProcess, n int, seed int64) *GenSource {
	s := &GenSource{app: app, arrivals: arrivals, n: n, seed: seed}
	s.Reset()
	return s
}

// NewLoadSource streams n Poisson requests at a fraction of the app's
// nominal-frequency capacity — the streaming GenerateAtLoad.
func NewLoadSource(app LCApp, load float64, n int, seed int64) *GenSource {
	return NewGenSource(app, Poisson{RatePerSec: app.RateForLoad(load)}, n, seed)
}

// Next samples the next arrival gap and request work.
func (s *GenSource) Next() (Request, bool) {
	if s.n >= 0 && s.issued >= s.n {
		return Request{}, false
	}
	s.now += s.arrivals.NextGap(s.r, s.now)
	cc, mt := s.app.SampleRequest(s.r)
	req := Request{ID: s.issued, Arrival: s.now, ComputeCycles: cc, MemTime: mt}
	s.issued++
	return req, true
}

// Len returns the remaining request count, or -1 when unbounded.
func (s *GenSource) Len() int {
	if s.n < 0 {
		return -1
	}
	return s.n - s.issued
}

// Reset rewinds the generator (and a stateful arrival process) to the
// start of its deterministic sequence.
func (s *GenSource) Reset() {
	s.r = rand.New(rand.NewSource(s.seed))
	s.issued = 0
	s.now = 0
	if ar, ok := s.arrivals.(arrivalsResetter); ok {
		ar.ResetProcess()
	}
}

// Materialize drains up to n requests (n < 0: until exhaustion) from a
// source into a Trace, for consumers that need random access (oracle
// replays, JSON export). It is the inverse bridge of NewTraceSource.
// Draining a source of unknown length (Len() < 0) requires an explicit
// cap: n < 0 there would materialize forever.
func Materialize(app string, seed int64, src Source, n int) (Trace, error) {
	if n < 0 && src.Len() < 0 {
		return Trace{}, fmt.Errorf("workload: materializing a source of unknown length needs an explicit request cap")
	}
	hint := 0
	if k := src.Len(); k >= 0 {
		hint = k
		if n >= 0 && n < hint {
			hint = n
		}
	} else if hint = n; hint > 4096 {
		// Unknown length: n is an upper bound, not an estimate (a
		// closed-loop source may drain after its open-loop prefix), so
		// start modest and let append grow geometrically.
		hint = 4096
	}
	tr := Trace{App: app, Seed: seed, Requests: make([]Request, 0, hint)}
	for n < 0 || len(tr.Requests) < n {
		req, ok := src.Next()
		if !ok {
			break
		}
		tr.Requests = append(tr.Requests, req)
	}
	return tr, nil
}

// Modulator scales per-request work multiplicatively, modeling
// service-time dynamics the stationary app models lack: correlated slow
// spells (cache/JIT/GC weather) and heavy-tailed stragglers. Modulators
// are stateful; Reset rewinds them.
type Modulator interface {
	// Factor returns the work multiplier for the next request.
	Factor(r *rand.Rand) float64
	// Reset rewinds the modulator's state.
	Reset()
}

// ARSlowdown is a lognormal AR(1) slowdown: the log-factor follows
// x' = Corr·x + sqrt(1-Corr²)·Sigma·N(0,1), so consecutive requests see
// correlated slowdowns with stationary log-stddev Sigma. The factor is
// mean-one (exp(x - Sigma²/2)).
type ARSlowdown struct {
	// Corr is the lag-1 autocorrelation of the log-slowdown (0..1).
	Corr float64
	// Sigma is the stationary standard deviation of the log-slowdown.
	Sigma float64

	x float64
}

// Factor advances the AR(1) state and returns the slowdown.
func (m *ARSlowdown) Factor(r *rand.Rand) float64 {
	m.x = m.Corr*m.x + math.Sqrt(1-m.Corr*m.Corr)*m.Sigma*r.NormFloat64()
	return math.Exp(m.x - m.Sigma*m.Sigma/2)
}

// Reset returns the state to the stationary mean.
func (m *ARSlowdown) Reset() { m.x = 0 }

// ParetoSlowdown makes a fraction of requests heavy-tailed stragglers:
// with probability Prob the request is slowed by Scale·Pareto(Alpha)
// (Pareto minimum 1), otherwise it runs unmodified. Alpha near 1 gives
// very heavy tails; larger Alpha tightens them.
type ParetoSlowdown struct {
	// Prob is the straggler probability per request.
	Prob float64
	// Scale is the minimum straggler slowdown.
	Scale float64
	// Alpha is the Pareto tail index (must be > 0).
	Alpha float64
	// Cap truncates the slowdown (0 = uncapped).
	Cap float64
}

// Factor returns 1 or a Pareto-distributed straggler slowdown.
func (m *ParetoSlowdown) Factor(r *rand.Rand) float64 {
	if r.Float64() >= m.Prob {
		return 1
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	f := m.Scale * math.Pow(u, -1/m.Alpha)
	if m.Cap > 0 && f > m.Cap {
		f = m.Cap
	}
	return f
}

// Reset is a no-op: the straggler draw is memoryless.
func (m *ParetoSlowdown) Reset() {}

// Modulated wraps a Source, scaling every request's compute and memory
// work by the modulator's factor. It draws from its own seeded rand, so
// the inner source's sequence is untouched and the composition stays
// deterministic.
type Modulated struct {
	src  Source
	mod  Modulator
	seed int64
	r    *rand.Rand
	// lastOrig is the pre-modulation copy of the most recent request, so
	// a completion-aware inner source gets its own request back on
	// Requeue (the feeder only ever requeues its last-pulled lookahead).
	lastOrig Request
}

// Modulate composes a slowdown process over a source. When src is
// CompletionAware (closed-loop clients), the returned source is too:
// completions and requeues are forwarded, so modulated closed-loop
// populations keep running (a requeued request is re-modulated with a
// fresh factor draw on its next pull).
func Modulate(src Source, mod Modulator, seed int64) Source {
	m := &Modulated{src: src, mod: mod, seed: seed}
	m.r = rand.New(rand.NewSource(seed))
	if _, aware := src.(CompletionAware); aware {
		return &modulatedCompletionAware{m}
	}
	return m
}

// Next pulls the inner request and scales its work.
func (m *Modulated) Next() (Request, bool) {
	req, ok := m.src.Next()
	if !ok {
		return Request{}, false
	}
	m.lastOrig = req
	f := m.mod.Factor(m.r)
	req.ComputeCycles *= f
	if req.ComputeCycles < 1 {
		req.ComputeCycles = 1
	}
	req.MemTime = sim.Time(float64(req.MemTime) * f)
	return req, true
}

// Len returns the inner source's remaining count.
func (m *Modulated) Len() int { return m.src.Len() }

// Reset rewinds the inner source, the modulator and the factor stream.
func (m *Modulated) Reset() {
	m.src.Reset()
	m.mod.Reset()
	m.r = rand.New(rand.NewSource(m.seed))
}

// modulatedCompletionAware adds the CompletionAware forwarding methods;
// Modulate returns it only when the inner source is completion-aware, so
// plain modulated sources never claim completion feedback they cannot
// honor.
type modulatedCompletionAware struct{ *Modulated }

// OnCompletion forwards the completion to the inner source.
func (m *modulatedCompletionAware) OnCompletion(done sim.Time) {
	m.src.(CompletionAware).OnCompletion(done)
}

// Requeue returns the inner source's own (unmodulated) request; the
// feeder only requeues its last-pulled lookahead, which lastOrig mirrors.
func (m *modulatedCompletionAware) Requeue(Request) {
	m.src.(CompletionAware).Requeue(m.lastOrig)
}

// Exhausted forwards the inner source's lifecycle.
func (m *modulatedCompletionAware) Exhausted() bool {
	return m.src.(CompletionAware).Exhausted()
}
