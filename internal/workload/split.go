package workload

// Source splitting for sharded fleet simulation.
//
// A fleet run partitions its cores into independent groups (sockets), each
// served by its own Source. The split is by construction, not by
// demultiplexing one stream: group i's source is built with a seed derived
// from the fleet seed and i, so the request sequence each group sees is a
// function of (fleet seed, group index) alone. That is what makes fleet
// results invariant to how groups are packed onto engines and goroutines —
// a group's stream cannot observe how many shards exist or which shard it
// landed on.

// ShardSeed derives the seed for independent group i of a fleet from the
// fleet-level seed. The derivation is a SplitMix64 mix rather than a plain
// XOR so that neighboring group indices produce statistically unrelated
// math/rand streams (XOR alone flips low bits, and LCG-style generators
// seeded with near-equal values start visibly correlated). Deterministic:
// the same (seed, group) always yields the same derived seed, and distinct
// groups yield distinct seeds.
func ShardSeed(seed int64, group int) int64 {
	z := uint64(seed) + (uint64(group)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// SplitSources builds one source per group with ShardSeed-derived seeds:
// the deterministic fleet split of any seedable source constructor
// (GenSource, scenario shapes, closed-loop populations). build is called
// once per group, in group order, with the group's derived seed.
func SplitSources(groups int, seed int64, build func(group int, seed int64) Source) []Source {
	srcs := make([]Source, groups)
	for g := range srcs {
		srcs[g] = build(g, ShardSeed(seed, g))
	}
	return srcs
}
