package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"rubik/internal/sim"
)

// Request is one latency-critical request in a trace: its arrival time and
// its work, split into frequency-scalable compute cycles and
// frequency-invariant memory-bound time.
type Request struct {
	ID            int      `json:"id"`
	Arrival       sim.Time `json:"arrivalNs"`
	ComputeCycles float64  `json:"computeCycles"`
	MemTime       sim.Time `json:"memTimeNs"`
}

// ServiceNs returns the request's uninterrupted service time in ns at a
// constant frequency fMHz.
func (r Request) ServiceNs(fMHz int) float64 {
	return r.ComputeCycles*1000/float64(fMHz) + float64(r.MemTime)
}

// Trace is a reusable request stream. Every scheme in an experiment replays
// the same trace, mirroring the paper's trace-driven methodology (Sec. 5.3:
// "we capture per-request arrival times, core cycles, memory-bound times
// ... and replay the trace under different schemes").
type Trace struct {
	App      string    `json:"app"`
	Seed     int64     `json:"seed"`
	Requests []Request `json:"requests"`
}

// Generate builds a trace of n requests for app using the given arrival
// process and seed. It is fully deterministic.
func Generate(app LCApp, arrivals ArrivalProcess, n int, seed int64) Trace {
	r := rand.New(rand.NewSource(seed))
	tr := Trace{App: app.Name, Seed: seed, Requests: make([]Request, 0, n)}
	var now sim.Time
	for i := 0; i < n; i++ {
		now += arrivals.NextGap(r, now)
		cc, mt := app.SampleRequest(r)
		tr.Requests = append(tr.Requests, Request{
			ID:            i,
			Arrival:       now,
			ComputeCycles: cc,
			MemTime:       mt,
		})
	}
	return tr
}

// GenerateAtLoad builds a Poisson trace at a fraction of the app's
// nominal-frequency capacity.
func GenerateAtLoad(app LCApp, load float64, n int, seed int64) Trace {
	return Generate(app, Poisson{RatePerSec: app.RateForLoad(load)}, n, seed)
}

// Duration returns the time of the last arrival (0 for an empty trace).
func (t Trace) Duration() sim.Time {
	if len(t.Requests) == 0 {
		return 0
	}
	return t.Requests[len(t.Requests)-1].Arrival
}

// MeanServiceNs returns the empirical mean service time at fMHz.
func (t Trace) MeanServiceNs(fMHz int) float64 {
	if len(t.Requests) == 0 {
		return 0
	}
	var sum float64
	for _, r := range t.Requests {
		sum += r.ServiceNs(fMHz)
	}
	return sum / float64(len(t.Requests))
}

// Stats summarizes a trace's service-time and arrival statistics.
type Stats struct {
	Requests           int
	DurationNs         int64
	MeanServiceNs      float64
	CVService          float64
	P50ServiceNs       float64
	P95ServiceNs       float64
	P99ServiceNs       float64
	MeanInterarrivalNs float64
	OfferedLoad        float64 // at nominal frequency
	MemShare           float64 // memory-bound fraction of total work time
}

// Describe computes summary statistics at the given frequency.
func (t Trace) Describe(fMHz int) Stats {
	s := Stats{Requests: len(t.Requests), DurationNs: int64(t.Duration())}
	if len(t.Requests) == 0 {
		return s
	}
	services := make([]float64, len(t.Requests))
	var sum, sumSq, memNs, totalNs float64
	for i, r := range t.Requests {
		v := r.ServiceNs(fMHz)
		services[i] = v
		sum += v
		sumSq += v * v
		memNs += float64(r.MemTime)
		totalNs += v
	}
	n := float64(len(services))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	sort.Float64s(services)
	s.MeanServiceNs = mean
	s.CVService = math.Sqrt(variance) / mean
	s.P50ServiceNs = services[len(services)/2]
	s.P95ServiceNs = services[int(0.95*float64(len(services)-1))]
	s.P99ServiceNs = services[int(0.99*float64(len(services)-1))]
	if len(t.Requests) > 1 {
		s.MeanInterarrivalNs = float64(t.Duration()) / float64(len(t.Requests)-1)
	}
	if t.Duration() > 0 {
		s.OfferedLoad = totalNs / float64(t.Duration())
	}
	if totalNs > 0 {
		s.MemShare = memNs / totalNs
	}
	return s
}

// Source streams the trace's requests: the bridge into the streaming
// consumers (queueing.RunSource, cluster.RunSource), under which a replay
// is byte-identical to the materialized path.
func (t Trace) Source() *TraceSource { return NewTraceSource(t) }

// Save writes the trace as JSON.
func (t Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// SaveJSONL writes the trace as JSON Lines: a header object carrying the
// trace metadata followed by one request object per line. Unlike Save it
// never buffers the request set in the encoder, and WriteJSONL can
// produce the same format directly from a Source without materializing a
// trace at all. Load reads both formats.
func (t Trace) SaveJSONL(w io.Writer) error {
	_, err := WriteJSONL(w, t.App, t.Seed, NewTraceSource(t), -1)
	return err
}

// jsonlHeader is the first line of a JSONL trace file.
type jsonlHeader struct {
	App  string `json:"app"`
	Seed int64  `json:"seed"`
}

// WriteJSONL streams up to n requests (n < 0: until exhaustion) from a
// source to w in the JSONL trace format, holding one request at a time —
// arbitrarily long scenario exports in constant memory. It returns the
// number of requests written, which can fall short of n when the source
// drains early (notably closed-loop sources, which yield only their
// open-loop prefix without completion feedback).
func WriteJSONL(w io.Writer, app string, seed int64, src Source, n int) (int, error) {
	if n < 0 && src.Len() < 0 {
		return 0, fmt.Errorf("workload: exporting a source of unknown length needs an explicit request cap")
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(jsonlHeader{App: app, Seed: seed}); err != nil {
		return 0, fmt.Errorf("workload: encoding JSONL header: %w", err)
	}
	written := 0
	for n < 0 || written < n {
		req, ok := src.Next()
		if !ok {
			break
		}
		if err := enc.Encode(req); err != nil {
			return written, fmt.Errorf("workload: encoding request %d: %w", req.ID, err)
		}
		written++
	}
	return written, nil
}

// Load reads a trace written by Save or SaveJSONL/WriteJSONL and
// validates its invariants (non-decreasing arrivals, positive work). Both
// formats start with one JSON object carrying the metadata; the JSONL
// form then streams one request object per value.
func Load(rd io.Reader) (Trace, error) {
	dec := json.NewDecoder(rd)
	var t Trace
	if err := dec.Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("workload: decoding trace: %w", err)
	}
	for dec.More() {
		var r Request
		if err := dec.Decode(&r); err != nil {
			return Trace{}, fmt.Errorf("workload: decoding JSONL request %d: %w", len(t.Requests), err)
		}
		t.Requests = append(t.Requests, r)
	}
	var prev sim.Time
	for i, r := range t.Requests {
		if r.Arrival < prev {
			return Trace{}, fmt.Errorf("workload: trace arrival %d goes backwards", i)
		}
		if r.ComputeCycles <= 0 || r.MemTime < 0 {
			return Trace{}, fmt.Errorf("workload: trace request %d has invalid work", i)
		}
		prev = r.Arrival
	}
	return t, nil
}
