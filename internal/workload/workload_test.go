package workload

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"rubik/internal/cpu"
	"rubik/internal/sim"
	"rubik/internal/stats"
)

func TestAppsRegistry(t *testing.T) {
	apps := Apps()
	if len(apps) != 5 {
		t.Fatalf("want 5 apps, got %d", len(apps))
	}
	wantOrder := []string{"masstree", "moses", "shore", "specjbb", "xapian"}
	wantReqs := map[string]int{
		"xapian": 6000, "masstree": 9000, "moses": 900, "shore": 7500, "specjbb": 37500,
	}
	for i, a := range apps {
		if a.Name != wantOrder[i] {
			t.Errorf("apps[%d] = %s, want %s", i, a.Name, wantOrder[i])
		}
		if a.Requests != wantReqs[a.Name] {
			t.Errorf("%s requests = %d, want %d (paper Table 3)", a.Name, a.Requests, wantReqs[a.Name])
		}
		if a.Workload == "" {
			t.Errorf("%s has no workload description", a.Name)
		}
	}
	if _, err := AppByName("masstree"); err != nil {
		t.Fatal(err)
	}
	if _, err := AppByName("nope"); err == nil {
		t.Fatal("unknown app must error")
	}
}

// serviceCV estimates the coefficient of variation of nominal-frequency
// service times for an app.
func serviceCV(t *testing.T, app LCApp, n int) float64 {
	t.Helper()
	r := rand.New(rand.NewSource(1234))
	var w stats.Welford
	for i := 0; i < n; i++ {
		cc, mt := app.SampleRequest(r)
		w.Add(cc*1000/float64(cpu.NominalMHz) + float64(mt))
	}
	return w.Std() / w.Mean()
}

func TestAppServiceVariability(t *testing.T) {
	// Paper Sec. 3/5: masstree and moses have tightly clustered service
	// times; shore, specjbb and xapian are variable.
	const n = 30000
	tight := map[string]bool{"masstree": true, "moses": true}
	for _, app := range Apps() {
		cv := serviceCV(t, app, n)
		if tight[app.Name] {
			if cv > 0.30 {
				t.Errorf("%s service CV = %.2f, want tightly clustered (<0.30)", app.Name, cv)
			}
		} else if cv < 0.40 {
			t.Errorf("%s service CV = %.2f, want variable (>0.40)", app.Name, cv)
		}
	}
}

func TestMeanServiceMatchesSamples(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, app := range Apps() {
		var w stats.Welford
		for i := 0; i < 40000; i++ {
			cc, mt := app.SampleRequest(r)
			w.Add(cc*1000/float64(cpu.NominalMHz) + float64(mt))
		}
		analytic := app.MeanServiceNsAtNominal()
		if math.Abs(w.Mean()-analytic) > 0.05*analytic {
			t.Errorf("%s: empirical mean service %.0f ns vs analytic %.0f ns",
				app.Name, w.Mean(), analytic)
		}
	}
}

func TestAppServiceTimeOrdering(t *testing.T) {
	// moses requests are the longest, masstree/specjbb among the shortest
	// (paper Sec. 5.5: masstree median 240us vs moses median 3.95ms on the
	// real system; relative ordering is what matters here).
	means := map[string]float64{}
	for _, app := range Apps() {
		means[app.Name] = app.MeanServiceNsAtNominal()
	}
	if !(means["moses"] > 5*means["xapian"]) {
		t.Errorf("moses (%.0f) should dwarf xapian (%.0f)", means["moses"], means["xapian"])
	}
	if !(means["specjbb"] < means["masstree"]) {
		t.Errorf("specjbb (%.0f) should be shorter than masstree (%.0f)",
			means["specjbb"], means["masstree"])
	}
}

func TestRateForLoad(t *testing.T) {
	app := Masstree()
	rate := app.RateForLoad(0.5)
	// At 50% load, rate * mean service = 0.5.
	util := rate * app.MeanServiceNsAtNominal() / 1e9
	if math.Abs(util-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", util)
	}
}

func TestSampleRequestPositive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, app := range Apps() {
		for i := 0; i < 1000; i++ {
			cc, mt := app.SampleRequest(r)
			if cc <= 0 {
				t.Fatalf("%s: non-positive compute cycles", app.Name)
			}
			if mt < 0 {
				t.Fatalf("%s: negative memory time", app.Name)
			}
		}
	}
}

func TestPoissonArrivals(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := Poisson{RatePerSec: 1000} // mean gap 1 ms
	var w stats.Welford
	for i := 0; i < 50000; i++ {
		w.Add(float64(p.NextGap(r, 0)))
	}
	if math.Abs(w.Mean()-1e6) > 0.03e6 {
		t.Fatalf("mean gap %.0f ns, want ~1e6", w.Mean())
	}
	// Exponential: CV ~ 1.
	if cv := w.Std() / w.Mean(); math.Abs(cv-1) > 0.05 {
		t.Fatalf("gap CV %.2f, want ~1", cv)
	}
	// Degenerate rate.
	if g := (Poisson{}).NextGap(r, 0); g != sim.Second {
		t.Fatalf("zero-rate gap = %d", g)
	}
}

func TestStepLoad(t *testing.T) {
	s, err := NewStepLoad(
		Phase{Start: 0, RatePerSec: 100},
		Phase{Start: 2 * sim.Second, RatePerSec: 400},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.rateAt(1 * sim.Second); got != 100 {
		t.Fatalf("rate at 1s = %v", got)
	}
	if got := s.rateAt(3 * sim.Second); got != 400 {
		t.Fatalf("rate at 3s = %v", got)
	}
	if _, err := NewStepLoad(); err == nil {
		t.Fatal("empty StepLoad must error")
	}
	if _, err := NewStepLoad(Phase{Start: 5, RatePerSec: 1}); err == nil {
		t.Fatal("StepLoad not starting at 0 must error")
	}
	// Out-of-order phases are sorted.
	s2, err := NewStepLoad(
		Phase{Start: sim.Second, RatePerSec: 2},
		Phase{Start: 0, RatePerSec: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Phases[0].RatePerSec != 1 {
		t.Fatal("phases not sorted")
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	app := Masstree()
	t1 := GenerateAtLoad(app, 0.5, 500, 99)
	t2 := GenerateAtLoad(app, 0.5, 500, 99)
	if len(t1.Requests) != 500 {
		t.Fatalf("trace length %d", len(t1.Requests))
	}
	for i := range t1.Requests {
		if t1.Requests[i] != t2.Requests[i] {
			t.Fatalf("traces with same seed differ at %d", i)
		}
	}
	t3 := GenerateAtLoad(app, 0.5, 500, 100)
	same := true
	for i := range t3.Requests {
		if t1.Requests[i] != t3.Requests[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceArrivalsMonotone(t *testing.T) {
	tr := GenerateAtLoad(Xapian(), 0.7, 2000, 5)
	var prev sim.Time
	for _, r := range tr.Requests {
		if r.Arrival < prev {
			t.Fatal("arrivals must be non-decreasing")
		}
		prev = r.Arrival
	}
	if tr.Duration() != prev {
		t.Fatalf("Duration = %d, want %d", tr.Duration(), prev)
	}
}

func TestTraceLoadAccuracy(t *testing.T) {
	// The realized load of a generated trace must match the requested load.
	app := Shore()
	load := 0.4
	tr := GenerateAtLoad(app, load, 20000, 17)
	busyNs := 0.0
	for _, r := range tr.Requests {
		busyNs += r.ServiceNs(cpu.NominalMHz)
	}
	realized := busyNs / float64(tr.Duration())
	if math.Abs(realized-load) > 0.05*load {
		t.Fatalf("realized load %.3f, want %.3f", realized, load)
	}
}

func TestTraceSaveLoadRoundtrip(t *testing.T) {
	tr := GenerateAtLoad(Moses(), 0.3, 50, 2)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != tr.App || got.Seed != tr.Seed || len(got.Requests) != len(tr.Requests) {
		t.Fatalf("roundtrip header mismatch: %+v", got)
	}
	for i := range got.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatalf("roundtrip request %d mismatch", i)
		}
	}
}

func TestTraceLoadValidation(t *testing.T) {
	bad := Trace{App: "x", Requests: []Request{
		{ID: 0, Arrival: 100, ComputeCycles: 10},
		{ID: 1, Arrival: 50, ComputeCycles: 10},
	}}
	var buf bytes.Buffer
	if err := bad.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("backwards arrivals must fail validation")
	}
	bad2 := Trace{App: "x", Requests: []Request{{ID: 0, Arrival: 1, ComputeCycles: 0}}}
	buf.Reset()
	if err := bad2.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("zero work must fail validation")
	}
	if _, err := Load(bytes.NewBufferString("{")); err == nil {
		t.Fatal("truncated JSON must fail")
	}
}

func TestTraceDescribe(t *testing.T) {
	app := Masstree()
	tr := GenerateAtLoad(app, 0.4, 5000, 23)
	s := tr.Describe(cpu.NominalMHz)
	if s.Requests != 5000 {
		t.Fatalf("requests = %d", s.Requests)
	}
	if math.Abs(s.OfferedLoad-0.4) > 0.05 {
		t.Fatalf("offered load %.3f, want ~0.4", s.OfferedLoad)
	}
	analytic := app.MeanServiceNsAtNominal()
	if math.Abs(s.MeanServiceNs-analytic) > 0.05*analytic {
		t.Fatalf("mean service %.0f vs analytic %.0f", s.MeanServiceNs, analytic)
	}
	if !(s.P50ServiceNs <= s.P95ServiceNs && s.P95ServiceNs <= s.P99ServiceNs) {
		t.Fatal("service percentiles not ordered")
	}
	if s.MemShare < 0.2 || s.MemShare > 0.4 {
		t.Fatalf("memory share %.2f, want near MemFrac %.2f", s.MemShare, app.MemFrac)
	}
	if s.CVService < 0.05 || s.CVService > 0.3 {
		t.Fatalf("cv %.2f implausible for masstree", s.CVService)
	}
	// Empty trace: all zeros, no panic.
	var empty Trace
	if es := empty.Describe(cpu.NominalMHz); es.Requests != 0 || es.MeanServiceNs != 0 {
		t.Fatalf("empty describe = %+v", es)
	}
}

func TestRequestServiceNs(t *testing.T) {
	r := Request{ComputeCycles: 2400, MemTime: 500}
	// 2400 cycles at 2400 MHz = 1 us; plus 500 ns memory.
	if got := r.ServiceNs(2400); math.Abs(got-1500) > 1e-9 {
		t.Fatalf("ServiceNs = %v, want 1500", got)
	}
	// Doubling frequency halves only the compute part.
	if got := r.ServiceNs(4800); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("ServiceNs@2x = %v, want 1000", got)
	}
}

func TestBatchAppThroughputScaling(t *testing.T) {
	g := cpu.DefaultGrid()
	for _, b := range BatchPool() {
		prev := 0.0
		for _, f := range g.Steps() {
			tp := b.UnitsPerSec(f)
			if tp <= prev {
				t.Fatalf("%s throughput must increase with f", b.Name)
			}
			prev = tp
		}
	}
	// Compute-bound apps scale better with frequency than memory-bound.
	namd, _ := findBatch("namd")
	mcf, _ := findBatch("mcf")
	namdGain := namd.UnitsPerSec(3400) / namd.UnitsPerSec(800)
	mcfGain := mcf.UnitsPerSec(3400) / mcf.UnitsPerSec(800)
	if namdGain <= mcfGain {
		t.Fatalf("namd gain %.2f should exceed mcf gain %.2f", namdGain, mcfGain)
	}
}

func findBatch(name string) (BatchApp, bool) {
	for _, b := range BatchPool() {
		if b.Name == name {
			return b, true
		}
	}
	return BatchApp{}, false
}

func TestBatchOptimalTPW(t *testing.T) {
	g := cpu.DefaultGrid()
	m := cpu.DefaultPowerModel()
	for _, b := range BatchPool() {
		f := b.OptimalTPWFreq(g, m)
		if g.Index(f) < 0 {
			t.Fatalf("%s TPW frequency %d not on grid", b.Name, f)
		}
		if f > cpu.NominalMHz {
			t.Fatalf("%s TPW frequency %d above nominal (TDP rule)", b.Name, f)
		}
		// It must actually be optimal among allowed steps.
		best := b.UnitsPerSec(f) / b.PowerW(f, m)
		for _, fr := range g.Steps() {
			if fr > cpu.NominalMHz {
				break
			}
			if tpw := b.UnitsPerSec(fr) / b.PowerW(fr, m); tpw > best+1e-12 {
				t.Fatalf("%s: %d MHz has better TPW than chosen %d", b.Name, fr, f)
			}
		}
	}
}

func TestMixes(t *testing.T) {
	m1 := Mixes(20, 6, 42)
	m2 := Mixes(20, 6, 42)
	if len(m1) != 20 {
		t.Fatalf("mix count %d", len(m1))
	}
	for i := range m1 {
		if len(m1[i]) != 6 {
			t.Fatalf("mix %d size %d", i, len(m1[i]))
		}
		seen := map[string]bool{}
		for j, b := range m1[i] {
			if seen[b.Name] {
				t.Fatalf("mix %d has duplicate %s", i, b.Name)
			}
			seen[b.Name] = true
			if m1[i][j].Name != m2[i][j].Name {
				t.Fatal("mixes not deterministic")
			}
		}
	}
}
