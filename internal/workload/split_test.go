package workload

import (
	"reflect"
	"testing"
)

// TestShardSeed checks the derivation contract: stable per (seed, group),
// distinct across groups and across fleet seeds, and not the identity on
// group 0 (a fleet's socket 0 must not replay the unsharded stream).
func TestShardSeed(t *testing.T) {
	seen := map[int64]int{}
	for g := 0; g < 1000; g++ {
		s := ShardSeed(42, g)
		if s != ShardSeed(42, g) {
			t.Fatalf("ShardSeed(42, %d) unstable", g)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("ShardSeed collision: groups %d and %d both derive %d", prev, g, s)
		}
		seen[s] = g
	}
	if ShardSeed(42, 0) == 42 {
		t.Fatal("group 0 derives the fleet seed itself")
	}
	if ShardSeed(42, 5) == ShardSeed(43, 5) {
		t.Fatal("distinct fleet seeds derive the same group seed")
	}
}

// TestSplitSources checks that the split yields per-group sources that
// are deterministic (two splits agree) and mutually independent (distinct
// groups stream distinct sequences).
func TestSplitSources(t *testing.T) {
	app := Masstree()
	build := func(_ int, seed int64) Source { return NewLoadSource(app, 0.5, 50, seed) }
	drain := func(s Source) []Request {
		var out []Request
		for {
			r, ok := s.Next()
			if !ok {
				return out
			}
			out = append(out, r)
		}
	}
	a := SplitSources(3, 9, build)
	b := SplitSources(3, 9, build)
	if len(a) != 3 {
		t.Fatalf("got %d sources, want 3", len(a))
	}
	var seqs [][]Request
	for g := range a {
		sa, sb := drain(a[g]), drain(b[g])
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("group %d: split not deterministic", g)
		}
		seqs = append(seqs, sa)
	}
	if reflect.DeepEqual(seqs[0], seqs[1]) || reflect.DeepEqual(seqs[1], seqs[2]) {
		t.Fatal("groups stream identical sequences — derived seeds not independent")
	}
}
