package workload

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"rubik/internal/sim"
)

// drain pulls up to n requests from a source.
func drain(t *testing.T, src Source, n int) []Request {
	t.Helper()
	var out []Request
	for len(out) < n {
		req, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, req)
	}
	return out
}

// TestGenSourceMatchesGenerate pins the tentpole equivalence at the
// workload layer: a streaming GenSource yields the byte-identical request
// sequence Generate materializes, for every stock arrival process.
func TestGenSourceMatchesGenerate(t *testing.T) {
	app := Masstree()
	step, err := NewStepLoad(
		Phase{Start: 0, RatePerSec: app.RateForLoad(0.3)},
		Phase{Start: sim.Second / 2, RatePerSec: app.RateForLoad(0.7)},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		arrivals ArrivalProcess
	}{
		{"poisson", Poisson{RatePerSec: app.RateForLoad(0.5)}},
		{"step", step},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := Generate(app, tc.arrivals, 3000, 99).Requests
			src := NewGenSource(app, tc.arrivals, 3000, 99)
			got := drain(t, src, 4000)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("streamed requests differ from Generate")
			}
			if _, ok := src.Next(); ok {
				t.Fatal("source yielded more than n requests")
			}
			src.Reset()
			if again := drain(t, src, 4000); !reflect.DeepEqual(again, want) {
				t.Fatal("Reset did not rewind to the identical sequence")
			}
		})
	}
}

func TestGenSourceLen(t *testing.T) {
	app := Masstree()
	src := NewLoadSource(app, 0.5, 10, 1)
	if src.Len() != 10 {
		t.Fatalf("Len %d, want 10", src.Len())
	}
	src.Next()
	if src.Len() != 9 {
		t.Fatalf("Len after pull %d, want 9", src.Len())
	}
	unbounded := NewLoadSource(app, 0.5, -1, 1)
	if unbounded.Len() != -1 {
		t.Fatalf("unbounded Len %d, want -1", unbounded.Len())
	}
	for i := 0; i < 100; i++ {
		if _, ok := unbounded.Next(); !ok {
			t.Fatal("unbounded source ended")
		}
	}
}

func TestTraceSourceRoundTrip(t *testing.T) {
	tr := GenerateAtLoad(Masstree(), 0.4, 500, 3)
	src := tr.Source()
	if src.Len() != 500 {
		t.Fatalf("Len %d", src.Len())
	}
	got := drain(t, src, 1000)
	if !reflect.DeepEqual(got, tr.Requests) {
		t.Fatal("trace source diverged from trace")
	}
	if src.Len() != 0 {
		t.Fatalf("drained Len %d", src.Len())
	}
}

// TestMMPPBurstiness checks the MMPP produces substantially more
// short-timescale rate variance than Poisson at the same mean load, and
// that its stream is deterministic and monotone.
func TestMMPPBurstiness(t *testing.T) {
	app := Masstree()
	gap := meanGap(app, 0.5)
	mk := func() Source {
		return NewGenSource(app, NewBurstyMMPP(app.RateForLoad(0.5)/1.4, 3, 400*gap, 100*gap), 20000, 5)
	}
	a, b := drain(t, mk(), 20000), drain(t, mk(), 20000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("MMPP stream not deterministic")
	}
	var prev sim.Time
	for i, r := range a {
		if r.Arrival < prev {
			t.Fatalf("arrival %d goes backwards", i)
		}
		prev = r.Arrival
	}
	cvM := windowedRateCV(a, 200*gap)
	pois := drain(t, NewLoadSource(app, 0.5, 20000, 5), 20000)
	cvP := windowedRateCV(pois, 200*gap)
	if cvM < 1.5*cvP {
		t.Errorf("MMPP windowed-rate CV %.3f not clearly burstier than Poisson %.3f", cvM, cvP)
	}
}

// windowedRateCV returns the coefficient of variation of per-window
// arrival counts.
func windowedRateCV(reqs []Request, window sim.Time) float64 {
	if len(reqs) == 0 {
		return 0
	}
	var counts []float64
	end := reqs[len(reqs)-1].Arrival
	i := 0
	for t := window; t <= end; t += window {
		n := 0
		for i < len(reqs) && reqs[i].Arrival <= t {
			n++
			i++
		}
		counts = append(counts, float64(n))
	}
	var sum, sumSq float64
	for _, c := range counts {
		sum += c
		sumSq += c * c
	}
	mean := sum / float64(len(counts))
	return math.Sqrt(sumSq/float64(len(counts))-mean*mean) / mean
}

// TestSinusoidRateSwing checks the diurnal scenario actually swings the
// realized rate between the crest and the trough.
func TestSinusoidRateSwing(t *testing.T) {
	app := Masstree()
	const n = 40000
	period := expectedDur(app, 0.5, n) / 4
	src := NewGenSource(app, Sinusoid{BaseRate: app.RateForLoad(0.5), Amplitude: 0.6, Period: period}, n, 7)
	reqs := drain(t, src, n)
	// Count arrivals in the first crest (around period/4) and the first
	// trough (around 3*period/4) quarters.
	var crest, trough int
	for _, r := range reqs {
		phase := float64(r.Arrival%period) / float64(period)
		switch {
		case phase < 0.5:
			crest++
		default:
			trough++
		}
	}
	if crest < trough*2 {
		t.Errorf("crest half %d arrivals vs trough half %d: no diurnal swing", crest, trough)
	}
}

func TestFlashCrowdSpike(t *testing.T) {
	app := Masstree()
	const n = 30000
	T := expectedDur(app, 0.5, n)
	fc := FlashCrowd{BaseRate: app.RateForLoad(0.5), Peak: 3, Start: T / 3, Hold: T / 10, Decay: T / 10}
	reqs := drain(t, NewGenSource(app, fc, n, 9), n)
	pre, spike := 0, 0
	for _, r := range reqs {
		switch {
		case r.Arrival < T/3:
			pre++
		case r.Arrival < T/3+T/10:
			spike++
		}
	}
	preRate := float64(pre) / float64(T/3)
	spikeRate := float64(spike) / float64(T/10)
	if spikeRate < 2*preRate {
		t.Errorf("spike rate %.3g not clearly above base %.3g", spikeRate, preRate)
	}
}

func TestModulatedSlowdowns(t *testing.T) {
	app := Masstree()
	base := drain(t, NewLoadSource(app, 0.5, 5000, 11), 5000)

	// Heavy-tail: arrivals unchanged, a small fraction much slower, and
	// deterministic under Reset.
	ht := Modulate(NewLoadSource(app, 0.5, 5000, 11), &ParetoSlowdown{Prob: 0.02, Scale: 3, Alpha: 1.5, Cap: 50}, 12)
	mod := drain(t, ht, 5000)
	if len(mod) != len(base) {
		t.Fatalf("modulated count %d", len(mod))
	}
	slowed := 0
	for i := range mod {
		if mod[i].Arrival != base[i].Arrival {
			t.Fatal("modulator moved an arrival")
		}
		if mod[i].ComputeCycles > 2*base[i].ComputeCycles {
			slowed++
		}
	}
	if frac := float64(slowed) / float64(len(mod)); frac < 0.005 || frac > 0.06 {
		t.Errorf("straggler fraction %.4f outside [0.005, 0.06]", frac)
	}
	ht.Reset()
	again := drain(t, ht, 5000)
	if !reflect.DeepEqual(again, mod) {
		t.Fatal("modulated source not deterministic under Reset")
	}

	// AR(1): consecutive log-slowdowns must be positively correlated.
	ar := Modulate(NewLoadSource(app, 0.5, 5000, 11), &ARSlowdown{Corr: 0.95, Sigma: 0.3}, 13)
	arMod := drain(t, ar, 5000)
	logs := make([]float64, len(arMod))
	for i := range arMod {
		logs[i] = math.Log(arMod[i].ComputeCycles / base[i].ComputeCycles)
	}
	if corr := lag1Corr(logs); corr < 0.7 {
		t.Errorf("AR(1) lag-1 correlation %.3f, want > 0.7", corr)
	}
}

func lag1Corr(xs []float64) float64 {
	n := len(xs) - 1
	var mx float64
	for _, x := range xs {
		mx += x
	}
	mx /= float64(len(xs))
	var num, den float64
	for i := 0; i < n; i++ {
		num += (xs[i] - mx) * (xs[i+1] - mx)
	}
	for _, x := range xs {
		den += (x - mx) * (x - mx)
	}
	return num / den
}

// TestClosedLoopSource drives the source by hand, acting as the server:
// it checks determinism, the think-time gap, the Requeue contract and the
// request cap.
func TestClosedLoopSource(t *testing.T) {
	cfg := ClosedLoop{App: Masstree(), Clients: 4, MeanThink: 2 * sim.Millisecond, N: 200, Seed: 21}
	run := func() []Request {
		src := cfg.NewSource()
		var served []Request
		for {
			req, ok := src.Next()
			if !ok {
				break
			}
			served = append(served, req)
			// Serve instantly 1ms after arrival; completion spawns the
			// client's next request.
			src.OnCompletion(req.Arrival + sim.Millisecond)
		}
		return served
	}
	a, b := run(), run()
	if len(a) != 200 {
		t.Fatalf("served %d requests, want the N=200 cap", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("closed-loop stream not deterministic")
	}
	// InFlight counts pull-to-completion, bounded by the population.
	probe := cfg.NewSource()
	for i := 0; i < cfg.Clients; i++ {
		if _, ok := probe.Next(); !ok {
			t.Fatal("population smaller than Clients")
		}
	}
	if got := probe.InFlight(); got != cfg.Clients {
		t.Fatalf("InFlight after %d pulls = %d", cfg.Clients, got)
	}
	probe.OnCompletion(sim.Second)
	if got := probe.InFlight(); got != cfg.Clients-1 {
		t.Fatalf("InFlight after a completion = %d, want %d", got, cfg.Clients-1)
	}
	var prev sim.Time
	for i, r := range a {
		if r.Arrival < prev {
			t.Fatalf("arrival %d goes backwards", i)
		}
		prev = r.Arrival
	}

	// Requeue returns the lookahead so an earlier completion-spawned
	// arrival is delivered first.
	src := cfg.NewSource()
	first, _ := src.Next()
	look, _ := src.Next()
	src.OnCompletion(first.Arrival) // spawns at first.Arrival+think, may precede look
	src.Requeue(look)
	next, ok := src.Next()
	if !ok {
		t.Fatal("source ended after requeue")
	}
	if next.Arrival > look.Arrival {
		t.Fatalf("requeue broke arrival order: got %d after requeueing %d", next.Arrival, look.Arrival)
	}
}

// TestClosedLoopExhausted pins the lifecycle consumers key ticking off:
// a drained Next with requests in flight is NOT exhausted (a completion
// may spawn arrivals), and the N cap or an empty population is.
func TestClosedLoopExhausted(t *testing.T) {
	src := ClosedLoop{App: Masstree(), Clients: 2, MeanThink: sim.Millisecond, N: 5, Seed: 1}.NewSource()
	if src.Exhausted() {
		t.Fatal("fresh population reports exhausted")
	}
	var reqs []Request
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		reqs = append(reqs, r)
	}
	if len(reqs) != 2 {
		t.Fatalf("open-loop prefix %d, want Clients=2", len(reqs))
	}
	if src.Exhausted() {
		t.Fatal("in-flight requests can still spawn arrivals; not exhausted")
	}
	for i := 0; i < 5; i++ { // serve everything the cap allows
		src.OnCompletion(reqs[len(reqs)-1].Arrival + sim.Time(i+1)*sim.Millisecond)
		if r, ok := src.Next(); ok {
			reqs = append(reqs, r)
		}
	}
	if len(reqs) != 5 {
		t.Fatalf("served %d, want the N=5 cap", len(reqs))
	}
	if !src.Exhausted() {
		t.Fatal("cap reached and heap empty: must be exhausted")
	}
	empty := ClosedLoop{App: Masstree(), Clients: 0, MeanThink: sim.Millisecond, N: 5, Seed: 1}.NewSource()
	if !empty.Exhausted() {
		t.Fatal("empty population must be exhausted")
	}
}

// TestModulatedClosedLoop pins the composition the registry cannot
// express alone: a heavy-tail modulator over a closed-loop population
// must stay completion-aware, so the full N requests flow.
func TestModulatedClosedLoop(t *testing.T) {
	cl := ClosedLoop{App: Masstree(), Clients: 3, MeanThink: 2 * sim.Millisecond, N: 100, Seed: 8}
	src := Modulate(cl.NewSource(), &ParetoSlowdown{Prob: 0.1, Scale: 3, Alpha: 1.5, Cap: 50}, 9)
	ca, ok := src.(CompletionAware)
	if !ok {
		t.Fatal("modulated closed-loop source lost completion awareness")
	}
	served := 0
	for {
		req, ok := src.Next()
		if !ok {
			break
		}
		served++
		ca.OnCompletion(req.Arrival + sim.Millisecond)
	}
	if served != 100 {
		t.Fatalf("modulated closed loop served %d of 100", served)
	}
	if !ca.Exhausted() {
		t.Fatal("drained modulated closed loop must report exhausted")
	}
	// A plain modulated source must NOT claim completion awareness (the
	// feeder would requeue into a source that cannot take it back).
	plain := Modulate(NewLoadSource(Masstree(), 0.5, 10, 1), &ParetoSlowdown{Prob: 0.1, Scale: 3, Alpha: 1.5}, 2)
	if _, aware := plain.(CompletionAware); aware {
		t.Fatal("plain modulated source claims completion awareness")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := GenerateAtLoad(Xapian(), 0.5, 300, 17)

	// Save -> Load (single-object JSON).
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("Save/Load round trip diverged")
	}

	// SaveJSONL -> Load (header + request lines).
	buf.Reset()
	if err := tr.SaveJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err = Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != tr.App || got.Seed != tr.Seed || !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Fatal("SaveJSONL/Load round trip diverged")
	}

	// WriteJSONL straight from a source, capped; it reports the count.
	buf.Reset()
	written, err := WriteJSONL(&buf, tr.App, tr.Seed, tr.Source(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if written != 50 {
		t.Fatalf("WriteJSONL wrote %d, want 50", written)
	}
	got, err = Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != 50 || !reflect.DeepEqual(got.Requests, tr.Requests[:50]) {
		t.Fatalf("WriteJSONL cap: got %d requests", len(got.Requests))
	}
}

func TestMaterialize(t *testing.T) {
	app := Masstree()
	want := GenerateAtLoad(app, 0.5, 400, 23)
	got, err := Materialize(app.Name, 23, NewLoadSource(app, 0.5, 400, 23), -1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Materialize(GenSource) != GenerateAtLoad")
	}
	capped, err := Materialize(app.Name, 23, NewLoadSource(app, 0.5, 400, 23), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(capped.Requests, want.Requests[:100]) {
		t.Fatal("Materialize cap broken")
	}
	// Uncapped drain of an unknown-length source must fail fast, not
	// materialize forever.
	if _, err := Materialize(app.Name, 1, NewLoadSource(app, 0.5, -1, 1), -1); err == nil {
		t.Fatal("unbounded Materialize accepted")
	}
	var buf bytes.Buffer
	if _, err := WriteJSONL(&buf, app.Name, 1, NewLoadSource(app, 0.5, -1, 1), -1); err == nil {
		t.Fatal("unbounded WriteJSONL accepted")
	}
}

// TestScenarioRegistry builds every scenario for every app and checks the
// streams are monotone, deterministic and produce the requested count
// (where the shape is open-loop).
func TestScenarioRegistry(t *testing.T) {
	app := Masstree()
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Description == "" {
			t.Errorf("%s: empty description", sc.Name)
		}
		if sc.Name == "closedloop" {
			continue // needs completion feedback; covered by TestClosedLoopSource
		}
		a := drain(t, sc.New(app, 0.5, 800, 31), 1000)
		b := drain(t, sc.New(app, 0.5, 800, 31), 1000)
		if len(a) != 800 {
			t.Errorf("%s: yielded %d of 800", sc.Name, len(a))
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: not deterministic", sc.Name)
		}
		var prev sim.Time
		for i, r := range a {
			if r.Arrival < prev {
				t.Errorf("%s: arrival %d goes backwards", sc.Name, i)
				break
			}
			if r.ComputeCycles < 1 || r.MemTime < 0 {
				t.Errorf("%s: request %d has invalid work", sc.Name, i)
				break
			}
			prev = r.Arrival
		}
	}
	for _, name := range []string{"poisson", "bursty", "diurnal", "flashcrowd", "closedloop"} {
		if _, err := ScenarioByName(name); err != nil {
			t.Errorf("ScenarioByName(%s): %v", name, err)
		}
	}
	if _, err := ScenarioByName("nope"); err == nil {
		t.Error("unknown scenario accepted")
	}
}
