// Package workload models the request streams of the paper's evaluation:
// the five latency-critical applications of Table 3 (as synthetic
// service-time models calibrated to the paper's characterization in Sec. 3),
// the Markov (Poisson) and step-load arrival processes, reusable request
// traces, and the SPEC-like batch applications used by RubikColoc.
package workload

import (
	"fmt"
	"math/rand"

	"rubik/internal/cpu"
	"rubik/internal/sim"
	"rubik/internal/stats"
)

// LCApp is a latency-critical application model. Per-request work is split,
// as in the paper (Sec. 4.1, "Core DVFS and memory"), into compute cycles
// (which scale with core frequency) and memory-bound time (which does not).
//
// Compute cycles are drawn from Compute. Memory time is proportional to the
// request's compute time at nominal frequency — MemFrac of total nominal
// service time is memory-bound on average — times multiplicative MemNoise.
type LCApp struct {
	// Name is the paper's benchmark name.
	Name string
	// Workload describes the configuration, mirroring paper Table 3.
	Workload string
	// Compute samples per-request compute cycles.
	Compute stats.Sampler
	// MemFrac is the mean fraction of nominal-frequency service time spent
	// memory-bound (stalls on LLC/DRAM that core DVFS cannot speed up).
	MemFrac float64
	// MemNoise multiplies the memory time per request; mean 1.
	MemNoise stats.Sampler
	// Requests is the paper's simulated request count (Table 3).
	Requests int
}

// memRatio converts MemFrac into the memory/compute time ratio.
func (a LCApp) memRatio() float64 {
	return a.MemFrac / (1 - a.MemFrac)
}

// SampleRequest draws one request's compute cycles and memory-bound time.
func (a LCApp) SampleRequest(r *rand.Rand) (computeCycles float64, memTime sim.Time) {
	cc := a.Compute.Sample(r)
	if cc < 1 {
		cc = 1
	}
	computeNsAtNominal := cc * 1000 / float64(cpu.NominalMHz)
	noise := 1.0
	if a.MemNoise != nil {
		noise = a.MemNoise.Sample(r)
		if noise < 0 {
			noise = 0
		}
	}
	mt := sim.Time(computeNsAtNominal * a.memRatio() * noise)
	return cc, mt
}

// MeanServiceNsAtNominal returns the analytic mean service time (ns) at
// nominal frequency, used to convert load fractions into arrival rates
// (100% load = the maximum request rate at nominal frequency, paper
// Sec. 5.3).
func (a LCApp) MeanServiceNsAtNominal() float64 {
	meanComputeNs := a.Compute.Mean() * 1000 / float64(cpu.NominalMHz)
	noiseMean := 1.0
	if a.MemNoise != nil {
		noiseMean = a.MemNoise.Mean()
	}
	return meanComputeNs * (1 + a.memRatio()*noiseMean)
}

// RateForLoad returns the arrival rate (requests/second) corresponding to a
// load fraction (0..1+) of the nominal-frequency capacity.
func (a LCApp) RateForLoad(load float64) float64 {
	return load * 1e9 / a.MeanServiceNsAtNominal()
}

// Masstree models the masstree key-value store (mycsb-a, 50% GETs/PUTs,
// paper Table 3): short requests with tightly clustered service times
// (Fig. 2b: "service times are fairly stable") and a memory-heavy profile.
func Masstree() LCApp {
	return LCApp{
		Name:     "masstree",
		Workload: "mycsb-a (50% GETs/PUTs), 1.1GB table",
		Compute:  stats.LognormalFromMoments(252e3, 0.12, 6),
		MemFrac:  0.30,
		MemNoise: stats.LognormalFromMoments(1, 0.15, 5),
		Requests: 9000,
	}
}

// Moses models the moses statistical machine translation system
// (opensubtitles corpora, phrase mode): long requests, low variability.
func Moses() LCApp {
	return LCApp{
		Name:     "moses",
		Workload: "opensubtitles.org corpora, phrase mode",
		Compute:  stats.LognormalFromMoments(7.14e6, 0.18, 6),
		MemFrac:  0.15,
		MemNoise: stats.LognormalFromMoments(1, 0.15, 5),
		Requests: 900,
	}
}

// Shore models the Shore-MT OLTP database running TPC-C (10 warehouses):
// a mixture over the five TPC-C transaction classes gives the variable
// service times the paper reports (Table 1: service-time correlation 0.56).
func Shore() LCApp {
	base := 562e3 // cycles; weighted class mean ≈ 588k cycles
	classes := stats.NewMixture(
		stats.MixtureComponent{Weight: 0.45, Sampler: stats.LognormalFromMoments(1.10*base, 0.30, 6)}, // NewOrder
		stats.MixtureComponent{Weight: 0.43, Sampler: stats.LognormalFromMoments(0.50*base, 0.30, 6)}, // Payment
		stats.MixtureComponent{Weight: 0.04, Sampler: stats.LognormalFromMoments(0.40*base, 0.30, 6)}, // OrderStatus
		stats.MixtureComponent{Weight: 0.04, Sampler: stats.LognormalFromMoments(3.50*base, 0.30, 6)}, // Delivery
		stats.MixtureComponent{Weight: 0.04, Sampler: stats.LognormalFromMoments(4.50*base, 0.30, 6)}, // StockLevel
	)
	return LCApp{
		Name:     "shore",
		Workload: "TPC-C, 10 warehouses",
		Compute:  classes,
		MemFrac:  0.30,
		MemNoise: stats.LognormalFromMoments(1, 0.20, 5),
		Requests: 7500,
	}
}

// Specjbb models the SPECjbb Java middleware benchmark (1 warehouse):
// mostly short requests with a minority of much longer ones, yielding the
// highly variable service times the paper calls out (Secs. 5.2-5.3).
func Specjbb() LCApp {
	mix := stats.NewMixture(
		stats.MixtureComponent{Weight: 0.85, Sampler: stats.LognormalFromMoments(100e3, 0.25, 6)},
		stats.MixtureComponent{Weight: 0.15, Sampler: stats.LognormalFromMoments(513e3, 0.50, 6)},
	)
	return LCApp{
		Name:     "specjbb",
		Workload: "1 warehouse",
		Compute:  mix,
		MemFrac:  0.25,
		MemNoise: stats.LognormalFromMoments(1, 0.20, 5),
		Requests: 37500,
	}
}

// Xapian models the xapian web search leaf (English Wikipedia, zipfian
// query popularity, paper Table 3): work grows logarithmically with the
// popularity rank of the query, times per-query noise.
func Xapian() LCApp {
	zipf := stats.NewZipfWork(1, 1.2, 0.9, 10000)
	base := stats.Scaled{K: 1.08e6 / zipf.Mean(), S: zipf}
	return LCApp{
		Name:     "xapian",
		Workload: "English Wikipedia, zipfian query popularity",
		Compute:  stats.Product{A: base, B: stats.LognormalFromMoments(1, 0.30, 6)},
		MemFrac:  0.25,
		MemNoise: stats.LognormalFromMoments(1, 0.20, 5),
		Requests: 6000,
	}
}

// Apps returns the five LC applications in the paper's figure order.
func Apps() []LCApp {
	return []LCApp{Masstree(), Moses(), Shore(), Specjbb(), Xapian()}
}

// AppByName looks an application up by its paper name.
func AppByName(name string) (LCApp, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return LCApp{}, fmt.Errorf("workload: unknown app %q", name)
}
