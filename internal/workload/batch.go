package workload

import (
	"math/rand"

	"rubik/internal/cpu"
)

// BatchApp is a throughput-oriented application model (the SPEC CPU2006
// role in the paper's colocation study, Sec. 7). Work is measured in
// abstract units (think: fixed instruction blocks); each unit needs
// CyclesPerUnit compute cycles and MemNsPerUnit memory-bound time, so
// throughput and its frequency sensitivity follow from the app's
// memory-boundness exactly as for LC requests.
type BatchApp struct {
	Name string
	// CyclesPerUnit is the compute work per unit.
	CyclesPerUnit float64
	// MemNsPerUnit is the memory-bound time per unit (does not scale with
	// frequency; the colocated memory system is partitioned, so it does not
	// depend on co-runners either — paper Sec. 6).
	MemNsPerUnit float64
	// ActivityFactor scales dynamic core power (compute-bound apps switch
	// more of the core).
	ActivityFactor float64
}

// UnitsPerSec returns throughput at frequency fMHz.
func (b BatchApp) UnitsPerSec(fMHz int) float64 {
	perUnitNs := b.CyclesPerUnit*1000/float64(fMHz) + b.MemNsPerUnit
	return 1e9 / perUnitNs
}

// PowerW returns the core power while running this app at fMHz.
func (b BatchApp) PowerW(fMHz int, m cpu.PowerModel) float64 {
	m.ActivityFactor = b.ActivityFactor
	return m.ActivePower(fMHz)
}

// IPCProxy returns a throughput-per-cycle figure used by the HW-T
// hardware DVFS heuristic (it maximizes aggregate instruction throughput).
func (b BatchApp) IPCProxy(fMHz int) float64 {
	return b.UnitsPerSec(fMHz) / (float64(fMHz) * 1e6)
}

// OptimalTPWFreq returns the grid frequency maximizing units per joule —
// "each batch app runs at its optimal throughput per watt" (paper Sec. 7).
// Because the memory system is partitioned, it does not depend on
// co-runners, as the paper notes.
func (b BatchApp) OptimalTPWFreq(g cpu.Grid, m cpu.PowerModel) int {
	best := g.Min()
	bestTPW := -1.0
	for _, f := range g.Steps() {
		if f > cpu.NominalMHz {
			// Batch apps do not run above nominal, to stay within TDP
			// (paper Sec. 7).
			break
		}
		tpw := b.UnitsPerSec(f) / b.PowerW(f, m)
		if tpw > bestTPW {
			bestTPW = tpw
			best = f
		}
	}
	return best
}

// BatchPool returns the SPEC-like profile pool, spanning compute-bound
// (namd-like: tiny memory share) to memory-bound (mcf-like: memory
// dominated). Units are sized so one unit takes ~1 ms at nominal frequency.
func BatchPool() []BatchApp {
	// memFrac is the memory-bound share of unit time at nominal frequency.
	mk := func(name string, memFrac, activity float64) BatchApp {
		const unitNsAtNominal = 1e6
		memNs := unitNsAtNominal * memFrac
		computeNs := unitNsAtNominal - memNs
		return BatchApp{
			Name:           name,
			CyclesPerUnit:  computeNs * float64(cpu.NominalMHz) / 1000,
			MemNsPerUnit:   memNs,
			ActivityFactor: activity,
		}
	}
	return []BatchApp{
		mk("namd", 0.05, 1.10),
		mk("povray", 0.07, 1.05),
		mk("hmmer", 0.10, 1.05),
		mk("gobmk", 0.15, 0.95),
		mk("sjeng", 0.15, 0.95),
		mk("h264ref", 0.18, 1.00),
		mk("perlbench", 0.22, 0.95),
		mk("gcc", 0.30, 0.90),
		mk("bzip2", 0.32, 0.90),
		mk("astar", 0.38, 0.85),
		mk("xalancbmk", 0.45, 0.85),
		mk("soplex", 0.52, 0.80),
		mk("omnetpp", 0.55, 0.80),
		mk("milc", 0.62, 0.75),
		mk("lbm", 0.68, 0.75),
		mk("mcf", 0.72, 0.70),
	}
}

// FindBatchApp looks a batch app up in the pool by name.
func FindBatchApp(name string) (BatchApp, bool) {
	for _, b := range BatchPool() {
		if b.Name == name {
			return b, true
		}
	}
	return BatchApp{}, false
}

// Mixes draws nmixes random mixes of perMix apps from the pool, with
// replacement across mixes but not within a mix, deterministically by seed
// (the paper uses 20 random 6-app SPEC mixes, Sec. 7).
func Mixes(nmixes, perMix int, seed int64) [][]BatchApp {
	pool := BatchPool()
	r := rand.New(rand.NewSource(seed))
	out := make([][]BatchApp, nmixes)
	for m := range out {
		perm := r.Perm(len(pool))
		mix := make([]BatchApp, 0, perMix)
		for i := 0; i < perMix && i < len(perm); i++ {
			mix = append(mix, pool[perm[i]])
		}
		out[m] = mix
	}
	return out
}
