package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rubik/internal/sim"
)

// ArrivalProcess generates interarrival gaps. The paper's clients produce a
// Markov input process (exponentially distributed interarrival times,
// Sec. 5.1); the step processes replay the load-change experiments
// (Figs. 1b and 10).
type ArrivalProcess interface {
	// NextGap returns the gap to the next arrival, given the current time.
	NextGap(r *rand.Rand, now sim.Time) sim.Time
}

// Poisson is a stationary Poisson arrival process.
type Poisson struct {
	RatePerSec float64
}

// NextGap samples an exponential interarrival gap.
func (p Poisson) NextGap(r *rand.Rand, _ sim.Time) sim.Time {
	if p.RatePerSec <= 0 {
		return sim.Second // degenerate: 1 req/s
	}
	gap := r.ExpFloat64() / p.RatePerSec * 1e9
	t := sim.Time(gap)
	if t < 1 {
		t = 1
	}
	return t
}

// Phase is one segment of a piecewise-constant step-load process.
type Phase struct {
	// Start is when this phase begins.
	Start sim.Time
	// RatePerSec is the Poisson rate during the phase.
	RatePerSec float64
}

// StepLoad is a piecewise-constant Poisson process: the paper's
// load-change experiments step the input load at fixed times
// (25%→50%→75% in Fig. 10).
type StepLoad struct {
	Phases []Phase
}

// NewStepLoad validates and sorts phases. The first phase must start at 0.
func NewStepLoad(phases ...Phase) (StepLoad, error) {
	if len(phases) == 0 {
		return StepLoad{}, fmt.Errorf("workload: StepLoad needs at least one phase")
	}
	ps := make([]Phase, len(phases))
	copy(ps, phases)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
	if ps[0].Start != 0 {
		return StepLoad{}, fmt.Errorf("workload: first phase must start at t=0, got %d", ps[0].Start)
	}
	return StepLoad{Phases: ps}, nil
}

// rateAt returns the phase rate in effect at time t.
func (s StepLoad) rateAt(t sim.Time) float64 {
	rate := s.Phases[0].RatePerSec
	for _, p := range s.Phases {
		if p.Start > t {
			break
		}
		rate = p.RatePerSec
	}
	return rate
}

// NextGap samples from the rate in effect now. (Rates change rarely
// relative to interarrival gaps, so re-sampling at the phase boundary is
// not modeled; this matches how the paper's client steps QPS.)
func (s StepLoad) NextGap(r *rand.Rand, now sim.Time) sim.Time {
	return Poisson{RatePerSec: s.rateAt(now)}.NextGap(r, now)
}

// MMPP is a Markov-modulated Poisson process: arrivals are Poisson at the
// current state's rate, and the state holds for an exponentially
// distributed time before moving to the next (cyclically). Two states —
// a calm one and a hot one — give the classic bursty on/off load that
// stresses reactive power managers far more than stationary Poisson.
// MMPP is stateful: do not share one instance between live sources.
type MMPP struct {
	// States are visited cyclically; each holds for Exp(MeanHold).
	States []MMPPState

	cur      int
	stateEnd sim.Time
	primed   bool
}

// MMPPState is one rate regime of an MMPP.
type MMPPState struct {
	// RatePerSec is the Poisson arrival rate while in this state.
	RatePerSec float64
	// MeanHold is the mean sojourn time in this state.
	MeanHold sim.Time
}

// NewBurstyMMPP builds the standard two-state burst model: baseRate with
// burst episodes at burstFactor times the base rate. meanCalm and
// meanBurst are the mean state sojourn times.
func NewBurstyMMPP(baseRate, burstFactor float64, meanCalm, meanBurst sim.Time) *MMPP {
	return &MMPP{States: []MMPPState{
		{RatePerSec: baseRate, MeanHold: meanCalm},
		{RatePerSec: baseRate * burstFactor, MeanHold: meanBurst},
	}}
}

// NextGap advances the state machine past now and samples a gap at the
// current state's rate. (As with StepLoad, a gap is sampled wholly from
// the rate in effect when it begins.)
func (m *MMPP) NextGap(r *rand.Rand, now sim.Time) sim.Time {
	if len(m.States) == 0 {
		return Poisson{}.NextGap(r, now)
	}
	if !m.primed {
		m.primed = true
		m.stateEnd = m.holdFrom(r, 0)
	}
	for now >= m.stateEnd {
		m.cur = (m.cur + 1) % len(m.States)
		m.stateEnd += m.holdFrom(r, m.cur)
	}
	return Poisson{RatePerSec: m.States[m.cur].RatePerSec}.NextGap(r, now)
}

// holdFrom samples a sojourn time for state i.
func (m *MMPP) holdFrom(r *rand.Rand, i int) sim.Time {
	h := sim.Time(r.ExpFloat64() * float64(m.States[i].MeanHold))
	if h < 1 {
		h = 1
	}
	return h
}

// ResetProcess rewinds the state machine (GenSource.Reset calls this).
func (m *MMPP) ResetProcess() {
	m.cur = 0
	m.stateEnd = 0
	m.primed = false
}

// Sinusoid is a diurnal load curve: a Poisson process whose rate follows
// Base·(1 + Amplitude·sin(2π·t/Period + Phase)), clamped at a small
// positive floor. With Period scaled down to simulation timescales it
// reproduces the day/night swings datacenter power managers ride.
type Sinusoid struct {
	// BaseRate is the mean arrival rate (requests/second).
	BaseRate float64
	// Amplitude is the relative swing (0..1: 0.8 means ±80% of Base).
	Amplitude float64
	// Period is the cycle length.
	Period sim.Time
	// Phase offsets the cycle start (radians).
	Phase float64
}

// rateAt returns the instantaneous rate at time t. A non-positive Period
// degenerates to the constant base rate (guards the NaN a zero Period
// would otherwise inject into the gap sampler).
func (s Sinusoid) rateAt(t sim.Time) float64 {
	if s.Period <= 0 {
		return s.BaseRate
	}
	rate := s.BaseRate * (1 + s.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(s.Period)+s.Phase))
	if floor := s.BaseRate * 1e-3; rate < floor {
		rate = floor
	}
	return rate
}

// NextGap samples a gap at the instantaneous rate (rate drift over one
// gap is negligible when Period spans many interarrivals).
func (s Sinusoid) NextGap(r *rand.Rand, now sim.Time) sim.Time {
	return Poisson{RatePerSec: s.rateAt(now)}.NextGap(r, now)
}

// FlashCrowd is a Poisson process with one spike episode: rate jumps to
// Peak×Base at Start, holds for Hold, then decays exponentially back
// toward the base rate with time constant Decay — the flash-crowd /
// breaking-news shape that latency SLOs are hardest to hold through.
type FlashCrowd struct {
	// BaseRate is the pre/post-spike rate (requests/second).
	BaseRate float64
	// Peak is the spike multiplier (e.g. 4 = 4x base at the crest).
	Peak float64
	// Start is when the spike hits; Hold is the full-rate plateau.
	Start, Hold sim.Time
	// Decay is the exponential recovery time constant.
	Decay sim.Time
}

// rateAt returns the instantaneous rate at time t.
func (f FlashCrowd) rateAt(t sim.Time) float64 {
	switch {
	case t < f.Start:
		return f.BaseRate
	case t < f.Start+f.Hold:
		return f.BaseRate * f.Peak
	default:
		if f.Decay <= 0 {
			return f.BaseRate
		}
		excess := (f.Peak - 1) * math.Exp(-float64(t-f.Start-f.Hold)/float64(f.Decay))
		return f.BaseRate * (1 + excess)
	}
}

// NextGap samples a gap at the instantaneous rate.
func (f FlashCrowd) NextGap(r *rand.Rand, now sim.Time) sim.Time {
	return Poisson{RatePerSec: f.rateAt(now)}.NextGap(r, now)
}
