package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"rubik/internal/sim"
)

// ArrivalProcess generates interarrival gaps. The paper's clients produce a
// Markov input process (exponentially distributed interarrival times,
// Sec. 5.1); the step processes replay the load-change experiments
// (Figs. 1b and 10).
type ArrivalProcess interface {
	// NextGap returns the gap to the next arrival, given the current time.
	NextGap(r *rand.Rand, now sim.Time) sim.Time
}

// Poisson is a stationary Poisson arrival process.
type Poisson struct {
	RatePerSec float64
}

// NextGap samples an exponential interarrival gap.
func (p Poisson) NextGap(r *rand.Rand, _ sim.Time) sim.Time {
	if p.RatePerSec <= 0 {
		return sim.Second // degenerate: 1 req/s
	}
	gap := r.ExpFloat64() / p.RatePerSec * 1e9
	t := sim.Time(gap)
	if t < 1 {
		t = 1
	}
	return t
}

// Phase is one segment of a piecewise-constant step-load process.
type Phase struct {
	// Start is when this phase begins.
	Start sim.Time
	// RatePerSec is the Poisson rate during the phase.
	RatePerSec float64
}

// StepLoad is a piecewise-constant Poisson process: the paper's
// load-change experiments step the input load at fixed times
// (25%→50%→75% in Fig. 10).
type StepLoad struct {
	Phases []Phase
}

// NewStepLoad validates and sorts phases. The first phase must start at 0.
func NewStepLoad(phases ...Phase) (StepLoad, error) {
	if len(phases) == 0 {
		return StepLoad{}, fmt.Errorf("workload: StepLoad needs at least one phase")
	}
	ps := make([]Phase, len(phases))
	copy(ps, phases)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
	if ps[0].Start != 0 {
		return StepLoad{}, fmt.Errorf("workload: first phase must start at t=0, got %d", ps[0].Start)
	}
	return StepLoad{Phases: ps}, nil
}

// rateAt returns the phase rate in effect at time t.
func (s StepLoad) rateAt(t sim.Time) float64 {
	rate := s.Phases[0].RatePerSec
	for _, p := range s.Phases {
		if p.Start > t {
			break
		}
		rate = p.RatePerSec
	}
	return rate
}

// NextGap samples from the rate in effect now. (Rates change rarely
// relative to interarrival gaps, so re-sampling at the phase boundary is
// not modeled; this matches how the paper's client steps QPS.)
func (s StepLoad) NextGap(r *rand.Rand, now sim.Time) sim.Time {
	return Poisson{RatePerSec: s.rateAt(now)}.NextGap(r, now)
}
