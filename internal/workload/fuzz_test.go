package workload

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzLoad fuzzes the trace reader over both on-disk formats — the legacy
// single-object JSON of Save and the streaming JSONL of SaveJSONL — with
// the round-trip property: any bytes Load accepts describe a trace that
// survives re-serialization through *either* writer and reloads deeply
// identical. The seed corpus covers both writers, hand-built edge shapes,
// and near-miss invalid inputs so the fuzzer starts at the format
// boundary.
func FuzzLoad(f *testing.F) {
	app := Masstree()
	tr := GenerateAtLoad(app, 0.5, 20, 1)
	var legacy bytes.Buffer
	if err := tr.Save(&legacy); err != nil {
		f.Fatal(err)
	}
	f.Add(legacy.Bytes())
	var jsonl bytes.Buffer
	if err := tr.SaveJSONL(&jsonl); err != nil {
		f.Fatal(err)
	}
	f.Add(jsonl.Bytes())
	f.Add([]byte(`{"app":"x","seed":7,"requests":[]}`))
	f.Add([]byte(`{"app":"x","seed":7}` + "\n" +
		`{"id":0,"arrivalNs":10,"computeCycles":100,"memTimeNs":5}` + "\n" +
		`{"id":1,"arrivalNs":10,"computeCycles":1,"memTimeNs":0}`))
	f.Add([]byte(`{"app":"x","seed":7}` + "\n" +
		`{"id":0,"arrivalNs":10,"computeCycles":100,"memTimeNs":5}` + "\n" +
		`{"id":1,"arrivalNs":3,"computeCycles":1,"memTimeNs":0}`)) // arrivals go backwards
	f.Add([]byte(`{"requests":[{"id":0,"arrivalNs":1,"computeCycles":0,"memTimeNs":0}]}`)) // zero work
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only the absence of panics is asserted
		}
		// Accepted traces satisfy the documented invariants.
		var prev int64
		for i, r := range tr.Requests {
			if r.Arrival < prev {
				t.Fatalf("accepted trace has backwards arrival at %d", i)
			}
			if r.ComputeCycles <= 0 || r.MemTime < 0 {
				t.Fatalf("accepted trace has invalid work at %d", i)
			}
			prev = r.Arrival
		}

		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatalf("re-saving accepted trace (legacy): %v", err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("reloading legacy round-trip: %v", err)
		}
		if !reflect.DeepEqual(tr, back) {
			t.Fatalf("legacy round-trip mutated the trace:\n got %+v\nwant %+v", back, tr)
		}

		buf.Reset()
		if err := tr.SaveJSONL(&buf); err != nil {
			t.Fatalf("re-saving accepted trace (JSONL): %v", err)
		}
		back, err = Load(&buf)
		if err != nil {
			t.Fatalf("reloading JSONL round-trip: %v", err)
		}
		// SaveJSONL streams the request set out of the header object, so
		// compare fields: App/Seed plus an element-wise request match (a
		// nil and an empty slice are the same empty trace).
		if back.App != tr.App || back.Seed != tr.Seed || len(back.Requests) != len(tr.Requests) {
			t.Fatalf("JSONL round-trip mutated the trace header: got %+v want %+v", back, tr)
		}
		for i := range tr.Requests {
			if tr.Requests[i] != back.Requests[i] {
				t.Fatalf("JSONL round-trip mutated request %d: got %+v want %+v",
					i, back.Requests[i], tr.Requests[i])
			}
		}
	})
}
