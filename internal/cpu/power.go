package cpu

import "fmt"

// Voltage returns the Haswell-like operating voltage for a frequency,
// interpolated linearly between 0.65 V at 800 MHz and 1.15 V at 3.4 GHz.
// Frequencies outside the grid clamp to the endpoints.
func Voltage(fMHz int) float64 {
	const (
		vMin = 0.65
		vMax = 1.15
	)
	if fMHz <= MinMHz {
		return vMin
	}
	if fMHz >= MaxMHz {
		return vMax
	}
	frac := float64(fMHz-MinMHz) / float64(MaxMHz-MinMHz)
	return vMin + frac*(vMax-vMin)
}

// PowerModel is the analytical core power model:
//
//	P_active(f) = DynCoeff * V(f)^2 * f  +  LeakCoeff * V(f)
//	P_sleep     = SleepW                       (C3-like: L1/L2 flushed)
//
// Calibrated so a 6-core CMP at max frequency lands near the 65 W TDP of
// paper Table 2 and the dynamic range supports the observed up-to-66% core
// power savings. The paper fits its model to RAPL measurements; here the
// model is the ground truth and the fitting methodology is exercised
// separately (see Fit and the power-model-validation experiment).
type PowerModel struct {
	// DynCoeff is the switching power coefficient in W / (MHz * V^2).
	DynCoeff float64
	// LeakCoeff is the leakage coefficient in W / V.
	LeakCoeff float64
	// SleepW is the C3-like core sleep power in W.
	SleepW float64
	// ActivityFactor scales dynamic power for the running workload
	// (1.0 = the calibration workload).
	ActivityFactor float64
}

// DefaultPowerModel returns the calibrated core power model. The model is
// dynamic-dominated, like the paper's Haswell: P(0.8 GHz)/P(2.4 GHz) ≈ 0.19,
// so slowing a request 3x cuts its energy substantially — the leverage
// behind the paper's up-to-66% core power savings.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		DynCoeff:       0.0023,
		LeakCoeff:      0.4,
		SleepW:         0.25,
		ActivityFactor: 1.0,
	}
}

// ActivePower returns the core power in W while executing at fMHz.
func (m PowerModel) ActivePower(fMHz int) float64 {
	v := Voltage(fMHz)
	return m.ActivityFactor*m.DynCoeff*v*v*float64(fMHz) + m.LeakCoeff*v
}

// SleepPower returns the core power in W while in the sleep state.
func (m PowerModel) SleepPower() float64 { return m.SleepW }

// Validate reports whether the model's parameters are physically sensible.
func (m PowerModel) Validate() error {
	if m.DynCoeff <= 0 || m.LeakCoeff < 0 || m.SleepW < 0 || m.ActivityFactor <= 0 {
		return fmt.Errorf("cpu: invalid power model %+v", m)
	}
	return nil
}

// FreqForPower inverts the active-power curve onto a frequency grid: it
// returns the highest grid step whose active power fits budgetW. ok is
// false when even the minimum step exceeds the budget (the minimum is
// still returned — a core cannot run slower than the grid floor); power
// capping layers account such spans as cap violations. The scan is linear
// because the curve need not be monotone for exotic models, and grids are
// a dozen steps.
func FreqForPower(g Grid, m PowerModel, budgetW float64) (fMHz int, ok bool) {
	best := -1
	for i := 0; i < g.Len(); i++ {
		if m.ActivePower(g.Step(i)) <= budgetW {
			best = i
		}
	}
	if best < 0 {
		return g.Min(), false
	}
	return g.Step(best), true
}

// SystemPower models the non-core components of a server, following the
// component split of the paper's power model (cores, uncore, DRAM, other:
// PSU, disk, NIC). Uncore and DRAM have idle floors plus activity-
// proportional parts; "other" is constant. These idle floors are what make
// servers non-energy-proportional and motivate RubikColoc (paper Sec. 6).
type SystemPower struct {
	// UncoreIdleW is the uncore (LLC, ring, memory controller) idle power.
	UncoreIdleW float64
	// UncorePerActiveCoreW is added per active core.
	UncorePerActiveCoreW float64
	// DRAMIdleW is DRAM background power.
	DRAMIdleW float64
	// DRAMPerActiveCoreW is added per active core (refresh + access energy).
	DRAMPerActiveCoreW float64
	// OtherW covers PSU losses, disk, NIC, fans.
	OtherW float64
}

// DefaultSystemPower returns the calibrated non-core model for the 6-core
// server of paper Table 2. With all six cores busy at nominal frequency the
// wall power lands near 120 W; fully idle near 55 W — a typical
// non-energy-proportional server (paper Sec. 6, [1,38,41]).
func DefaultSystemPower() SystemPower {
	return SystemPower{
		UncoreIdleW:          14,
		UncorePerActiveCoreW: 1.0,
		DRAMIdleW:            9,
		DRAMPerActiveCoreW:   1.5,
		OtherW:               25,
	}
}

// NonCorePower returns uncore+DRAM+other power given the average number of
// active cores (may be fractional, e.g. a core busy 30% of the time
// contributes 0.3).
func (s SystemPower) NonCorePower(activeCores float64) float64 {
	if activeCores < 0 {
		activeCores = 0
	}
	return s.UncoreIdleW + s.DRAMIdleW + s.OtherW +
		activeCores*(s.UncorePerActiveCoreW+s.DRAMPerActiveCoreW)
}
