package cpu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rubik/internal/sim"
)

func TestDefaultGrid(t *testing.T) {
	g := DefaultGrid()
	if g.Len() != 14 {
		t.Fatalf("grid has %d steps, want 14 (0.8-3.4 GHz in 200 MHz steps)", g.Len())
	}
	if g.Min() != 800 || g.Max() != 3400 {
		t.Fatalf("grid range [%d, %d]", g.Min(), g.Max())
	}
	if g.Index(NominalMHz) < 0 {
		t.Fatal("nominal frequency must be on the grid")
	}
	if g.Index(900) != -1 {
		t.Fatal("900 MHz must not be on the grid")
	}
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(nil); err == nil {
		t.Fatal("empty grid must error")
	}
	if _, err := NewGrid([]int{100, 100}); err == nil {
		t.Fatal("non-ascending grid must error")
	}
	g, err := NewGrid([]int{1000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if g.Step(1) != 2000 {
		t.Fatalf("Step(1) = %d", g.Step(1))
	}
}

func TestClampUpDown(t *testing.T) {
	g := DefaultGrid()
	cases := []struct {
		f        float64
		up, down int
	}{
		{0, 800, 800},
		{799, 800, 800},
		{800, 800, 800},
		{801, 1000, 800},
		{2399.5, 2400, 2200},
		{2400, 2400, 2400},
		{3400, 3400, 3400},
		{9999, 3400, 3400},
	}
	for _, c := range cases {
		if got := g.ClampUp(c.f); got != c.up {
			t.Errorf("ClampUp(%v) = %d, want %d", c.f, got, c.up)
		}
		if got := g.ClampDown(c.f); got != c.down {
			t.Errorf("ClampDown(%v) = %d, want %d", c.f, got, c.down)
		}
	}
}

func TestClampUpNeverViolates(t *testing.T) {
	g := DefaultGrid()
	f := func(raw float64) bool {
		want := math.Mod(math.Abs(raw), 4000)
		got := g.ClampUp(want)
		return float64(got) >= want || got == g.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVoltageMap(t *testing.T) {
	if v := Voltage(800); v != 0.65 {
		t.Fatalf("V(800) = %v", v)
	}
	if v := Voltage(3400); v != 1.15 {
		t.Fatalf("V(3400) = %v", v)
	}
	if v := Voltage(100); v != 0.65 {
		t.Fatalf("V below range = %v", v)
	}
	if v := Voltage(9000); v != 1.15 {
		t.Fatalf("V above range = %v", v)
	}
	mid := Voltage(2100) // exact midpoint of 800..3400
	if math.Abs(mid-0.9) > 1e-12 {
		t.Fatalf("V(2100) = %v, want 0.9", mid)
	}
	// Monotonic over the grid.
	g := DefaultGrid()
	for i := 1; i < g.Len(); i++ {
		if Voltage(g.Step(i)) <= Voltage(g.Step(i-1)) {
			t.Fatal("voltage must increase with frequency")
		}
	}
}

func TestPowerModelShape(t *testing.T) {
	m := DefaultPowerModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	g := DefaultGrid()
	prev := 0.0
	for _, f := range g.Steps() {
		p := m.ActivePower(f)
		if p <= prev {
			t.Fatalf("power must increase with frequency: P(%d)=%v, prev=%v", f, p, prev)
		}
		prev = p
	}
	// Superlinearity: stepping from min to max should cost more than the
	// frequency ratio alone (V^2 scaling).
	ratio := m.ActivePower(3400) / m.ActivePower(800)
	if ratio < float64(3400)/800 {
		t.Fatalf("power not superlinear in f: ratio %.2f", ratio)
	}
	// TDP sanity: 6 cores at max must be near the 65 W TDP of Table 2.
	tdp := 6 * m.ActivePower(3400)
	if tdp < 45 || tdp > 80 {
		t.Fatalf("6-core max power %.1f W, want near 65 W TDP", tdp)
	}
	if m.SleepPower() >= m.ActivePower(800) {
		t.Fatal("sleep power must be below min active power")
	}
}

func TestPowerModelValidate(t *testing.T) {
	bad := PowerModel{DynCoeff: -1, ActivityFactor: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative DynCoeff must fail validation")
	}
}

func TestSystemPower(t *testing.T) {
	s := DefaultSystemPower()
	idle := s.NonCorePower(0)
	busy := s.NonCorePower(6)
	if idle <= 0 || busy <= idle {
		t.Fatalf("non-core power: idle %v, busy %v", idle, busy)
	}
	if s.NonCorePower(-3) != idle {
		t.Fatal("negative active cores must clamp to idle")
	}
	// Idle floor must be a large fraction of busy power — the
	// non-energy-proportionality that motivates colocation.
	if idle/busy < 0.5 {
		t.Fatalf("idle/busy = %.2f, expected non-energy-proportional (>0.5)", idle/busy)
	}
}

func TestEnergyMeter(t *testing.T) {
	g := DefaultGrid()
	m := NewEnergyMeter(g, DefaultPowerModel())
	m.AccrueActive(sim.Second, 2400)
	wantJ := DefaultPowerModel().ActivePower(2400)
	if math.Abs(m.ActiveEnergyJ()-wantJ) > 1e-9 {
		t.Fatalf("1s at 2.4GHz = %v J, want %v", m.ActiveEnergyJ(), wantJ)
	}
	m.AccrueIdle(2 * sim.Second)
	wantIdle := 2 * DefaultPowerModel().SleepPower()
	if math.Abs(m.IdleEnergyJ()-wantIdle) > 1e-9 {
		t.Fatalf("idle energy %v, want %v", m.IdleEnergyJ(), wantIdle)
	}
	if m.TotalEnergyJ() != m.ActiveEnergyJ()+m.IdleEnergyJ() {
		t.Fatal("total != active + idle")
	}
	// Negative/zero durations are ignored.
	m.AccrueActive(-5, 2400)
	m.AccrueIdle(0)
	if m.ActiveNs() != sim.Second || m.IdleNs() != 2*sim.Second {
		t.Fatalf("time accounting wrong: %v active, %v idle", m.ActiveNs(), m.IdleNs())
	}
}

func TestEnergyMeterResidency(t *testing.T) {
	g := DefaultGrid()
	m := NewEnergyMeter(g, DefaultPowerModel())
	if r := m.Residency(); len(r) != g.Len() {
		t.Fatalf("residency length %d", len(r))
	}
	m.AccrueActive(3*sim.Second, 800)
	m.AccrueActive(1*sim.Second, 3400)
	r := m.Residency()
	if math.Abs(r[0]-0.75) > 1e-12 {
		t.Fatalf("residency[800] = %v, want 0.75", r[0])
	}
	if math.Abs(r[g.Len()-1]-0.25) > 1e-12 {
		t.Fatalf("residency[3400] = %v, want 0.25", r[g.Len()-1])
	}
	var sum float64
	for _, v := range r {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("residency sums to %v", sum)
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
	if _, err := SolveLinear([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Fatal("singular system must error")
	}
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Fatal("empty system must error")
	}
}

func TestLeastSquaresRecoversCoefficients(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	trueBeta := []float64{3.5, -2.0, 0.7}
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		row := []float64{1, r.Float64() * 10, r.Float64() * 5}
		x = append(x, row)
		y = append(y, Predict(trueBeta, row)+r.NormFloat64()*0.01)
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trueBeta {
		if math.Abs(beta[i]-trueBeta[i]) > 0.05 {
			t.Fatalf("beta[%d] = %v, want %v", i, beta[i], trueBeta[i])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged matrix must error")
	}
}

func TestKFoldCV(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		row := []float64{1, r.Float64() * 10}
		x = append(x, row)
		y = append(y, 2+3*row[1]+r.NormFloat64()*0.1)
	}
	res, err := KFoldCV(x, y, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAbsRelErr > 0.05 {
		t.Fatalf("mean error %v too large for near-linear data", res.MeanAbsRelErr)
	}
	if res.MaxAbsRelErr < res.MeanAbsRelErr {
		t.Fatal("max error below mean error")
	}
	if res.Folds != 5 {
		t.Fatalf("folds = %d", res.Folds)
	}
	if _, err := KFoldCV(x, y, 1); err == nil {
		t.Fatal("k=1 must error")
	}
	if _, err := KFoldCV(x, y, len(x)+1); err == nil {
		t.Fatal("k>n must error")
	}
}
