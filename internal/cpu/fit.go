package cpu

import (
	"fmt"
	"math"
)

// This file reproduces the paper's power-model construction methodology
// (Sec. 5.1): least-squares regression of measured power onto frequency,
// voltage, and performance-counter features, validated with k-fold
// cross-validation. In the reproduction the "measurements" are generated
// from the analytical models plus noise; the regression and validation
// machinery is the artifact under test.

// SolveLinear solves the square system A x = b in place using Gaussian
// elimination with partial pivoting. A and b are overwritten.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("cpu: bad system dimensions %dx? vs %d", n, len(b))
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("cpu: matrix is not square")
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("cpu: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// LeastSquares fits beta minimizing ||X beta - y||^2 via the normal
// equations. X is row-major: one row per sample, one column per feature.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("cpu: bad regression dimensions %d vs %d", n, len(y))
	}
	k := len(x[0])
	if k == 0 {
		return nil, fmt.Errorf("cpu: no features")
	}
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	for _, row := range x {
		if len(row) != k {
			return nil, fmt.Errorf("cpu: ragged feature matrix")
		}
	}
	for r := 0; r < n; r++ {
		row := x[r]
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[r]
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	return SolveLinear(xtx, xty)
}

// Predict evaluates a fitted linear model on one feature row.
func Predict(beta, row []float64) float64 {
	var v float64
	for i := range beta {
		v += beta[i] * row[i]
	}
	return v
}

// CVResult reports cross-validation error of a fitted model, matching the
// error metrics the paper quotes for its power model (mean and worst-case
// absolute relative error).
type CVResult struct {
	MeanAbsRelErr float64
	MaxAbsRelErr  float64
	Folds         int
}

// KFoldCV runs k-fold cross-validation of a least-squares fit over the
// sample set, assigning samples to folds round-robin (samples are already
// in randomized order in the callers).
func KFoldCV(x [][]float64, y []float64, k int) (CVResult, error) {
	n := len(x)
	if k < 2 || k > n {
		return CVResult{}, fmt.Errorf("cpu: k=%d out of range for %d samples", k, n)
	}
	var sumErr, maxErr float64
	var count int
	for fold := 0; fold < k; fold++ {
		var trainX [][]float64
		var trainY []float64
		var testX [][]float64
		var testY []float64
		for i := 0; i < n; i++ {
			if i%k == fold {
				testX = append(testX, x[i])
				testY = append(testY, y[i])
			} else {
				trainX = append(trainX, x[i])
				trainY = append(trainY, y[i])
			}
		}
		beta, err := LeastSquares(trainX, trainY)
		if err != nil {
			return CVResult{}, fmt.Errorf("cpu: fold %d: %w", fold, err)
		}
		for i := range testX {
			pred := Predict(beta, testX[i])
			denom := math.Abs(testY[i])
			if denom < 1e-9 {
				continue
			}
			rel := math.Abs(pred-testY[i]) / denom
			sumErr += rel
			if rel > maxErr {
				maxErr = rel
			}
			count++
		}
	}
	if count == 0 {
		return CVResult{}, fmt.Errorf("cpu: no evaluable test samples")
	}
	return CVResult{
		MeanAbsRelErr: sumErr / float64(count),
		MaxAbsRelErr:  maxErr,
		Folds:         k,
	}, nil
}
