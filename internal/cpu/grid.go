// Package cpu models the processor substrate of the Rubik reproduction:
// the per-core DVFS frequency grid and transition latency (paper Table 2:
// Haswell-like FIVR, 0.8-3.4 GHz in 200 MHz steps, 4 us V/F transitions),
// a voltage/frequency map, the core and full-system power models, energy
// metering, and the regression machinery behind the paper's power-model
// fitting methodology (Sec. 5.1).
package cpu

import "fmt"

// Frequencies are integers in MHz throughout the reproduction; a core at
// f MHz retires f compute cycles per microsecond.
const (
	// NominalMHz is the baseline frequency of the simulated CMP
	// (paper Table 2: 2.4 GHz nominal).
	NominalMHz = 2400
	// MinMHz and MaxMHz bound the DVFS range (paper Table 2).
	MinMHz = 800
	MaxMHz = 3400
	// StepMHz is the DVFS step (paper Table 2).
	StepMHz = 200
)

// Grid is an ascending set of available frequency steps.
type Grid struct {
	steps []int
}

// DefaultGrid returns the paper's 0.8-3.4 GHz grid in 200 MHz steps.
func DefaultGrid() Grid {
	var steps []int
	for f := MinMHz; f <= MaxMHz; f += StepMHz {
		steps = append(steps, f)
	}
	return Grid{steps: steps}
}

// NewGrid builds a grid from explicit ascending steps.
func NewGrid(steps []int) (Grid, error) {
	if len(steps) == 0 {
		return Grid{}, fmt.Errorf("cpu: empty frequency grid")
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] <= steps[i-1] {
			return Grid{}, fmt.Errorf("cpu: grid steps must be strictly ascending, got %v", steps)
		}
	}
	out := make([]int, len(steps))
	copy(out, steps)
	return Grid{steps: out}, nil
}

// Steps returns a copy of the grid's frequency steps in MHz.
func (g Grid) Steps() []int {
	out := make([]int, len(g.steps))
	copy(out, g.steps)
	return out
}

// Len returns the number of steps.
func (g Grid) Len() int { return len(g.steps) }

// Min returns the lowest frequency.
func (g Grid) Min() int { return g.steps[0] }

// Max returns the highest frequency.
func (g Grid) Max() int { return g.steps[len(g.steps)-1] }

// Step returns the i-th frequency (ascending).
func (g Grid) Step(i int) int { return g.steps[i] }

// Index returns the position of fMHz in the grid, or -1 if absent.
func (g Grid) Index(fMHz int) int {
	for i, s := range g.steps {
		if s == fMHz {
			return i
		}
	}
	return -1
}

// ClampUp returns the lowest grid step >= fMHz, or Max if fMHz exceeds the
// grid. This is how Rubik's analytic frequency constraint (a real number)
// is mapped onto the hardware's discrete steps without violating the tail.
func (g Grid) ClampUp(fMHz float64) int {
	for _, s := range g.steps {
		if float64(s) >= fMHz {
			return s
		}
	}
	return g.Max()
}

// ClampDown returns the highest grid step <= fMHz, or Min if fMHz is below
// the grid.
func (g Grid) ClampDown(fMHz float64) int {
	out := g.steps[0]
	for _, s := range g.steps {
		if float64(s) <= fMHz {
			out = s
		}
	}
	return out
}
