package cpu

import (
	"fmt"

	"rubik/internal/sim"
)

// EnergyMeter integrates core power over simulated time, split into active
// (serving a request) and idle (sleep) energy, and tracks per-frequency
// active residency. Active-only energy is what the paper's Fig. 6 and
// Fig. 9b report ("active energy per request does not change with load" at
// a fixed frequency); residency backs the frequency histograms of
// Figs. 7b/8b.
type EnergyMeter struct {
	Model PowerModel
	grid  Grid

	activeJ  float64
	idleJ    float64
	activeNs sim.Time
	idleNs   sim.Time
	// residency[i] = active ns spent at grid step i.
	residency []sim.Time
}

// NewEnergyMeter returns a meter for the given grid and power model.
func NewEnergyMeter(grid Grid, model PowerModel) *EnergyMeter {
	return &EnergyMeter{
		Model:     model,
		grid:      grid,
		residency: make([]sim.Time, grid.Len()),
	}
}

// AccrueActive charges dt nanoseconds of execution at fMHz.
func (m *EnergyMeter) AccrueActive(dt sim.Time, fMHz int) {
	if dt <= 0 {
		return
	}
	m.activeJ += m.Model.ActivePower(fMHz) * float64(dt) / 1e9
	m.activeNs += dt
	if i := m.grid.Index(fMHz); i >= 0 {
		m.residency[i] += dt
	}
}

// AccrueIdle charges dt nanoseconds of sleep.
func (m *EnergyMeter) AccrueIdle(dt sim.Time) {
	if dt <= 0 {
		return
	}
	m.idleJ += m.Model.SleepPower() * float64(dt) / 1e9
	m.idleNs += dt
}

// ActiveEnergyJ returns the accumulated active core energy in joules.
func (m *EnergyMeter) ActiveEnergyJ() float64 { return m.activeJ }

// IdleEnergyJ returns the accumulated sleep energy in joules.
func (m *EnergyMeter) IdleEnergyJ() float64 { return m.idleJ }

// TotalEnergyJ returns active plus idle energy in joules.
func (m *EnergyMeter) TotalEnergyJ() float64 { return m.activeJ + m.idleJ }

// ActiveNs returns the total busy time.
func (m *EnergyMeter) ActiveNs() sim.Time { return m.activeNs }

// IdleNs returns the total idle time.
func (m *EnergyMeter) IdleNs() sim.Time { return m.idleNs }

// Residency returns, for each grid step, the fraction of *active* time
// spent at that frequency. Sums to 1 when there was any active time.
func (m *EnergyMeter) Residency() []float64 {
	out := make([]float64, len(m.residency))
	if m.activeNs == 0 {
		return out
	}
	for i, ns := range m.residency {
		out[i] = float64(ns) / float64(m.activeNs)
	}
	return out
}

// String summarizes the meter, mostly for debugging and example output.
func (m *EnergyMeter) String() string {
	return fmt.Sprintf("active %.3f J over %.3f ms, idle %.3f J over %.3f ms",
		m.activeJ, float64(m.activeNs)/1e6, m.idleJ, float64(m.idleNs)/1e6)
}
