package policy

import (
	"math"
	"testing"

	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/workload"
)

func TestViolationBudget(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want int
	}{
		{100, 0.95, 5},
		{1000, 0.95, 50},
		{100, 0.99, 1},
		{10, 0.95, 0}, // ceil(9.5)=10 -> 0 may violate
		{20, 0.95, 1}, // ceil(19)=19 -> 1
		{100, 1.0, 0},
	}
	for _, c := range cases {
		if got := ViolationBudget(c.n, c.p); got != c.want {
			t.Errorf("ViolationBudget(%d, %v) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

func TestReplayValidation(t *testing.T) {
	tr := workload.GenerateAtLoad(workload.Masstree(), 0.3, 10, 1)
	if _, err := Replay(tr, []int{2400}, DefaultReplayConfig()); err == nil {
		t.Fatal("length mismatch must error")
	}
	bad := UniformAssignment(10, 2400)
	bad[3] = 0
	if _, err := Replay(tr, bad, DefaultReplayConfig()); err == nil {
		t.Fatal("zero frequency must error")
	}
}

func TestReplayMatchesEventSimAtFixedFrequency(t *testing.T) {
	// The analytic replay and the event-driven simulator must agree when
	// frequency never changes — this ties the oracle evaluations to the
	// Rubik simulations.
	for _, app := range workload.Apps() {
		for _, f := range []int{1200, 2400, 3400} {
			tr := workload.GenerateAtLoad(app, 0.55, 800, 21)
			rep, err := Replay(tr, UniformAssignment(len(tr.Requests), f), DefaultReplayConfig())
			if err != nil {
				t.Fatal(err)
			}
			cfg := queueing.DefaultConfig()
			cfg.InitialMHz = f
			cfg.TransitionLatency = 0
			res, err := queueing.Run(tr, queueing.FixedPolicy{MHz: f}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Completions) != len(rep.ResponsesNs) {
				t.Fatalf("%s@%d: request counts differ", app.Name, f)
			}
			for i, c := range res.Completions {
				if math.Abs(c.ResponseNs-rep.ResponsesNs[i]) > 4 {
					t.Fatalf("%s@%d req %d: sim %v vs replay %v ns",
						app.Name, f, i, c.ResponseNs, rep.ResponsesNs[i])
				}
			}
			if math.Abs(res.ActiveEnergyJ-rep.ActiveEnergyJ) > 1e-4*rep.ActiveEnergyJ {
				t.Fatalf("%s@%d: energy sim %v vs replay %v",
					app.Name, f, res.ActiveEnergyJ, rep.ActiveEnergyJ)
			}
		}
	}
}

// fixtures for oracle tests.
func oracleFixture(t *testing.T, app workload.LCApp, load float64, n int, seed int64) (workload.Trace, float64) {
	t.Helper()
	tr := workload.GenerateAtLoad(app, load, n, seed)
	// Bound: p95 of fixed-nominal at 50% load (paper Sec. 5.2).
	boundTr := workload.GenerateAtLoad(app, 0.5, n, seed+1000)
	rep, err := Replay(boundTr, UniformAssignment(n, cpu.NominalMHz), DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tr, rep.TailNs(0.95)
}

func TestStaticOracle(t *testing.T) {
	grid := cpu.DefaultGrid()
	tr, bound := oracleFixture(t, workload.Masstree(), 0.3, 4000, 3)
	res, err := StaticOracle(tr, grid, bound, 0.95, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("static oracle infeasible at 30% load")
	}
	if res.MHz >= cpu.NominalMHz {
		t.Fatalf("at 30%% load the oracle should run below nominal, chose %d", res.MHz)
	}
	// Minimality: one step lower must violate.
	idx := grid.Index(res.MHz)
	if idx > 0 {
		lower, err := Replay(tr, UniformAssignment(len(tr.Requests), grid.Step(idx-1)), DefaultReplayConfig())
		if err != nil {
			t.Fatal(err)
		}
		if lower.ViolationCount(bound) <= ViolationBudget(len(tr.Requests), 0.95) {
			t.Fatalf("frequency below the oracle's choice (%d) is also feasible", res.MHz)
		}
	}
	// Tail must meet the bound under the percentile definition.
	if res.Result.TailNs(0.95) > bound {
		t.Fatalf("oracle tail %v exceeds bound %v", res.Result.TailNs(0.95), bound)
	}
}

func TestStaticOracleInfeasibleAtOverload(t *testing.T) {
	grid := cpu.DefaultGrid()
	tr, bound := oracleFixture(t, workload.Masstree(), 0.97, 4000, 5)
	res, err := StaticOracle(tr, grid, bound, 0.95, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 97% load at nominal capacity: even 3.4 GHz may not fix the tail; the
	// oracle must return max frequency and flag infeasibility, or meet the
	// bound at a high frequency.
	if !res.Feasible && res.MHz != grid.Max() {
		t.Fatalf("infeasible result must use max frequency, got %d", res.MHz)
	}
}

func TestStaticOracleEmptyTrace(t *testing.T) {
	if _, err := StaticOracle(workload.Trace{}, cpu.DefaultGrid(), 1e6, 0.95, DefaultReplayConfig()); err == nil {
		t.Fatal("empty trace must error")
	}
	if _, err := AdrenalineOracle(workload.Trace{}, cpu.DefaultGrid(), 1e6, 0.95, DefaultReplayConfig()); err == nil {
		t.Fatal("empty trace must error (adrenaline)")
	}
	if _, err := DynamicOracle(workload.Trace{}, cpu.DefaultGrid(), 1e6, 0.95, DefaultReplayConfig()); err == nil {
		t.Fatal("empty trace must error (dynamic)")
	}
}

func TestAdrenalineOracleBeatsOrMatchesStatic(t *testing.T) {
	grid := cpu.DefaultGrid()
	// specjbb has the long/short structure Adrenaline exploits.
	tr, bound := oracleFixture(t, workload.Specjbb(), 0.4, 6000, 7)
	st, err := StaticOracle(tr, grid, bound, 0.95, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	ad, err := AdrenalineOracle(tr, grid, bound, 0.95, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !ad.Feasible {
		t.Fatal("adrenaline infeasible at 40% load")
	}
	// The sweep includes fLow = fHigh = staticF, so it can never be worse.
	if ad.Result.ActiveEnergyJ > st.Result.ActiveEnergyJ*1.0001 {
		t.Fatalf("adrenaline energy %v exceeds static %v",
			ad.Result.ActiveEnergyJ, st.Result.ActiveEnergyJ)
	}
	if ad.LowMHz > ad.HighMHz {
		t.Fatalf("boosted frequency below unboosted: %d > %d", ad.LowMHz, ad.HighMHz)
	}
	if ad.SweepEvaluated < 100 {
		t.Fatalf("sweep too small: %d", ad.SweepEvaluated)
	}
}

func TestDynamicOracle(t *testing.T) {
	grid := cpu.DefaultGrid()
	tr, bound := oracleFixture(t, workload.Masstree(), 0.4, 5000, 11)
	n := len(tr.Requests)
	dyn, err := DynamicOracle(tr, grid, bound, 0.95, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Budget: violations within the 5% the tail definition allows.
	if dyn.Violations > ViolationBudget(n, 0.95) {
		t.Fatalf("dynamic oracle violations %d exceed budget %d",
			dyn.Violations, ViolationBudget(n, 0.95))
	}
	if tail := dyn.Result.TailNs(0.95); tail > bound {
		t.Fatalf("dynamic oracle tail %v exceeds bound %v", tail, bound)
	}
	// All assigned frequencies must be on the grid.
	for i, f := range dyn.Freqs {
		if grid.Index(f) < 0 {
			t.Fatalf("request %d assigned off-grid frequency %d", i, f)
		}
	}
	// DynamicOracle is the strongest scheme: no worse than StaticOracle.
	st, err := StaticOracle(tr, grid, bound, 0.95, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Result.ActiveEnergyJ > st.Result.ActiveEnergyJ*1.001 {
		t.Fatalf("dynamic energy %v exceeds static %v",
			dyn.Result.ActiveEnergyJ, st.Result.ActiveEnergyJ)
	}
}

func TestDynamicOracleSavesMoreAtHighLoad(t *testing.T) {
	// Paper Fig. 9b: at 50% load DynamicOracle often saves 20-45% of the
	// energy StaticOracle consumes.
	grid := cpu.DefaultGrid()
	tr, bound := oracleFixture(t, workload.Masstree(), 0.5, 5000, 13)
	st, err := StaticOracle(tr, grid, bound, 0.95, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := DynamicOracle(tr, grid, bound, 0.95, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	saving := 1 - dyn.Result.ActiveEnergyJ/st.Result.ActiveEnergyJ
	if saving < 0.10 {
		t.Fatalf("dynamic oracle saves only %.1f%% over static at 50%% load", saving*100)
	}
}

func TestPegasusTracksBound(t *testing.T) {
	app := workload.Masstree()
	tr, bound := oracleFixture(t, app, 0.3, 20000, 17)
	peg := NewPegasus(bound, cpu.DefaultGrid())
	res, err := queueing.Run(tr, peg, queueing.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Pegasus must save energy versus fixed-nominal...
	fixed, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, queueing.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveEnergyJ >= fixed.ActiveEnergyJ {
		t.Fatalf("pegasus energy %v not below fixed %v", res.ActiveEnergyJ, fixed.ActiveEnergyJ)
	}
	// ...while keeping the steady-state tail near the bound (generous
	// slack: it is a coarse feedback controller).
	if tail := res.TailNs(0.95, 0.5); tail > bound*1.2 {
		t.Fatalf("pegasus steady-state tail %v far above bound %v", tail, bound)
	}
}

func TestStaticOracleMonotoneInBound(t *testing.T) {
	// Property: relaxing the latency bound can never raise the chosen
	// static frequency.
	grid := cpu.DefaultGrid()
	tr := workload.GenerateAtLoad(workload.Masstree(), 0.45, 3000, 19)
	base, err := Replay(tr, UniformAssignment(len(tr.Requests), cpu.NominalMHz), DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := base.TailNs(0.95)
	prev := grid.Max() + 1
	for _, scale := range []float64{0.9, 1.0, 1.2, 1.5, 2.0, 3.0} {
		res, err := StaticOracle(tr, grid, ref*scale, 0.95, DefaultReplayConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.MHz > prev {
			t.Fatalf("bound %.1fx: frequency rose to %d (prev %d)", scale, res.MHz, prev)
		}
		prev = res.MHz
	}
}

func TestUniformAssignment(t *testing.T) {
	a := UniformAssignment(3, 2000)
	if len(a) != 3 || a[0] != 2000 || a[2] != 2000 {
		t.Fatalf("UniformAssignment = %v", a)
	}
}

func TestReplayResultHelpers(t *testing.T) {
	r := ReplayResult{ResponsesNs: []float64{100, 200, 300, 400}, ActiveEnergyJ: 2}
	if got := r.TailNs(0.5); got != 200 {
		t.Fatalf("TailNs = %v", got)
	}
	if got := r.EnergyPerRequestJ(); got != 0.5 {
		t.Fatalf("EnergyPerRequestJ = %v", got)
	}
	if got := r.ViolationCount(250); got != 2 {
		t.Fatalf("ViolationCount = %v", got)
	}
	var empty ReplayResult
	if empty.EnergyPerRequestJ() != 0 {
		t.Fatal("empty result energy must be 0")
	}
}
