package policy

import (
	"fmt"
	"sort"

	"rubik/internal/cpu"
	"rubik/internal/workload"
)

// StaticOracleResult reports the frequency StaticOracle chose and the
// replay at that frequency.
type StaticOracleResult struct {
	MHz      int
	Feasible bool
	Result   ReplayResult
}

// StaticOracle chooses the lowest static frequency whose replay of the
// trace meets the tail bound (paper Sec. 5.2). It upper-bounds the savings
// of feedback controllers such as Pegasus. When even the maximum frequency
// cannot meet the bound, it returns the maximum with Feasible=false
// (matching the shaded "unachievable" regions of Fig. 9).
func StaticOracle(tr workload.Trace, grid cpu.Grid, boundNs, percentile float64, cfg ReplayConfig) (StaticOracleResult, error) {
	if len(tr.Requests) == 0 {
		return StaticOracleResult{}, fmt.Errorf("policy: empty trace")
	}
	allowed := ViolationBudget(len(tr.Requests), percentile)
	var last StaticOracleResult
	for _, f := range grid.Steps() {
		res, err := Replay(tr, UniformAssignment(len(tr.Requests), f), cfg)
		if err != nil {
			return StaticOracleResult{}, err
		}
		last = StaticOracleResult{MHz: f, Result: res}
		if res.ViolationCount(boundNs) <= allowed {
			last.Feasible = true
			return last, nil
		}
	}
	return last, nil
}

// ViolationBudget returns how many of n responses may exceed the bound
// while the percentile-tail still meets it (nearest-rank definition): the
// tail is the ceil(p*n)-th smallest response, so n - ceil(p*n) may violate.
func ViolationBudget(n int, percentile float64) int {
	rank := int(float64(n)*percentile + 0.999999)
	if rank > n {
		rank = n
	}
	return n - rank
}

// AdrenalineOracleResult reports the chosen configuration: requests whose
// total work (at nominal frequency) is at least ThresholdNs are "long" and
// are boosted to HighMHz; the rest run at LowMHz.
type AdrenalineOracleResult struct {
	ThresholdNs    float64
	LowMHz         int
	HighMHz        int
	Feasible       bool
	Result         ReplayResult
	SweepEvaluated int
}

// AdrenalineOracle implements the idealized Adrenaline of paper Sec. 5.2:
// it can perfectly distinguish long requests from short ones (the real
// system approximates this with application-level hints), sweeps the
// long/short threshold and the (boosted, unboosted) frequency pair offline,
// and picks the feasible setting with the lowest energy. Queuing is not
// modeled explicitly — exactly the limitation the paper identifies.
func AdrenalineOracle(tr workload.Trace, grid cpu.Grid, boundNs, percentile float64, cfg ReplayConfig) (AdrenalineOracleResult, error) {
	n := len(tr.Requests)
	if n == 0 {
		return AdrenalineOracleResult{}, fmt.Errorf("policy: empty trace")
	}
	// Oracular request lengths: true total work at nominal frequency.
	work := make([]float64, n)
	for i, r := range tr.Requests {
		work[i] = r.ServiceNs(cpu.NominalMHz)
	}
	sorted := make([]float64, n)
	copy(sorted, work)
	sort.Float64s(sorted)

	thresholds := []float64{}
	for _, q := range []float64{0.50, 0.60, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95} {
		idx := int(q * float64(n))
		if idx >= n {
			idx = n - 1
		}
		thresholds = append(thresholds, sorted[idx])
	}

	best := AdrenalineOracleResult{}
	bestEnergy := 0.0
	evaluated := 0
	allowed := ViolationBudget(n, percentile)
	freqs := make([]int, n)
	steps := grid.Steps()
	for _, th := range thresholds {
		for li, lo := range steps {
			for _, hi := range steps[li:] {
				for i := range freqs {
					if work[i] >= th {
						freqs[i] = hi
					} else {
						freqs[i] = lo
					}
				}
				res, err := Replay(tr, freqs, cfg)
				if err != nil {
					return AdrenalineOracleResult{}, err
				}
				evaluated++
				if res.ViolationCount(boundNs) > allowed {
					continue
				}
				if !best.Feasible || res.ActiveEnergyJ < bestEnergy {
					best = AdrenalineOracleResult{
						ThresholdNs: th,
						LowMHz:      lo,
						HighMHz:     hi,
						Feasible:    true,
						Result:      res,
					}
					bestEnergy = res.ActiveEnergyJ
				}
			}
		}
	}
	best.SweepEvaluated = evaluated
	if !best.Feasible {
		// Fall back to flat-out max frequency, like the other schemes.
		res, err := Replay(tr, UniformAssignment(n, grid.Max()), cfg)
		if err != nil {
			return AdrenalineOracleResult{}, err
		}
		best.Result = res
		best.LowMHz = grid.Max()
		best.HighMHz = grid.Max()
	}
	return best, nil
}
