package policy

import (
	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/stats"
)

// Pegasus is a feedback-only controller in the spirit of Lo et al. [33] as
// characterized by the paper: it measures the tail latency over a
// multi-second window and nudges a single core-wide frequency, so it adapts
// to long-term (diurnal) load shifts but cannot exploit sub-millisecond
// variability. The paper uses StaticOracle as its upper bound; this
// implementation exists to demonstrate that a realistic feedback controller
// tracks (and never beats) StaticOracle.
type Pegasus struct {
	// BoundNs is the tail latency bound.
	BoundNs float64
	// Percentile is the tail definition.
	Percentile float64
	// Grid is the DVFS grid.
	Grid cpu.Grid
	// Period is the adjustment cadence (seconds-scale; the paper notes
	// Pegasus adjusts "every few seconds").
	Period sim.Time
	// HighGuard and LowGuard bracket the measured tail: above
	// HighGuard*Bound the frequency steps up (straight to max above
	// 2*Bound), below LowGuard*Bound it steps down.
	HighGuard, LowGuard float64

	cur    int
	window *stats.RollingWindow
}

var (
	_ queueing.Policy             = (*Pegasus)(nil)
	_ queueing.Ticker             = (*Pegasus)(nil)
	_ queueing.CompletionObserver = (*Pegasus)(nil)
)

// NewPegasus returns a Pegasus controller with paper-like guardbands.
func NewPegasus(boundNs float64, grid cpu.Grid) *Pegasus {
	return &Pegasus{
		BoundNs:    boundNs,
		Percentile: 0.95,
		Grid:       grid,
		Period:     sim.Second,
		HighGuard:  0.98,
		LowGuard:   0.85,
		cur:        cpu.NominalMHz,
		window:     stats.NewRollingWindow(4 * sim.Second),
	}
}

// Name implements queueing.Policy.
func (p *Pegasus) Name() string { return "pegasus" }

// OnEvent implements queueing.Policy: Pegasus does not react per event; it
// holds the frequency chosen by the last feedback step.
func (p *Pegasus) OnEvent(queueing.View) int { return p.cur }

// ObserveCompletion implements queueing.CompletionObserver.
func (p *Pegasus) ObserveCompletion(c queueing.Completion) {
	p.window.Add(c.Done, c.ResponseNs)
}

// TickEvery implements queueing.Ticker.
func (p *Pegasus) TickEvery() sim.Time { return p.Period }

// OnTick implements queueing.Ticker: the guardbanded feedback step. The
// View is consumed synchronously (Pegasus only reads the clock), per the
// queueing.View non-retention contract.
func (p *Pegasus) OnTick(v queueing.View) int {
	p.window.AdvanceTo(v.Now)
	if p.window.Len() < 8 {
		return p.cur
	}
	measured := p.window.Percentile(p.Percentile)
	idx := p.Grid.Index(p.cur)
	switch {
	case measured > 2*p.BoundNs:
		idx = p.Grid.Len() - 1 // emergency: straight to max
	case measured > p.HighGuard*p.BoundNs:
		idx++
	case measured < p.LowGuard*p.BoundNs:
		idx--
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= p.Grid.Len() {
		idx = p.Grid.Len() - 1
	}
	p.cur = p.Grid.Step(idx)
	return p.cur
}
