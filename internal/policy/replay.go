// Package policy implements the DVFS schemes Rubik is evaluated against:
// the Fixed-frequency baseline (queueing.FixedPolicy), StaticOracle,
// AdrenalineOracle and DynamicOracle (paper Secs. 5.2-5.3), and a
// Pegasus-style feedback controller. The oracles are trace-driven: they
// assign each request a serving frequency offline and are evaluated with an
// analytic FIFO replay, mirroring the paper's trace-driven methodology.
package policy

import (
	"fmt"
	"math"

	"rubik/internal/cpu"
	"rubik/internal/sim"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

// ReplayConfig parameterizes the analytic replay.
type ReplayConfig struct {
	// Power is the core power model used for energy accounting.
	Power cpu.PowerModel
	// WakeLatency is the sleep-exit penalty paid by the first request of
	// each busy period, matching the event-driven simulator.
	WakeLatency sim.Time
}

// DefaultReplayConfig matches queueing.DefaultConfig.
func DefaultReplayConfig() ReplayConfig {
	return ReplayConfig{
		Power:       cpu.DefaultPowerModel(),
		WakeLatency: 5 * sim.Microsecond,
	}
}

// ReplayResult summarizes an analytic replay.
type ReplayResult struct {
	// ResponsesNs[i] is request i's end-to-end latency.
	ResponsesNs []float64
	// Dones[i] is request i's completion time.
	Dones []sim.Time
	// ActiveEnergyJ is the core energy spent serving.
	ActiveEnergyJ float64
}

// TailNs returns the q-quantile response latency.
func (r ReplayResult) TailNs(q float64) float64 {
	return stats.Percentile(r.ResponsesNs, q)
}

// EnergyPerRequestJ returns active energy per request.
func (r ReplayResult) EnergyPerRequestJ() float64 {
	if len(r.ResponsesNs) == 0 {
		return 0
	}
	return r.ActiveEnergyJ / float64(len(r.ResponsesNs))
}

// ViolationCount returns how many responses exceed boundNs.
func (r ReplayResult) ViolationCount(boundNs float64) int {
	n := 0
	for _, v := range r.ResponsesNs {
		if v > boundNs {
			n++
		}
	}
	return n
}

// Replay computes FIFO completions analytically when request i is served
// entirely at freqs[i] MHz: start_i = max(arrival_i, done_{i-1}). This is
// exact for schemes with per-request-constant frequencies (the oracles) and
// matches the event-driven simulator at a fixed frequency.
func Replay(tr workload.Trace, freqs []int, cfg ReplayConfig) (ReplayResult, error) {
	if len(freqs) != len(tr.Requests) {
		return ReplayResult{}, fmt.Errorf("policy: %d frequencies for %d requests",
			len(freqs), len(tr.Requests))
	}
	res := ReplayResult{
		ResponsesNs: make([]float64, len(tr.Requests)),
		Dones:       make([]sim.Time, len(tr.Requests)),
	}
	var donePrev sim.Time
	for i, req := range tr.Requests {
		f := freqs[i]
		if f <= 0 {
			return ReplayResult{}, fmt.Errorf("policy: request %d has frequency %d", i, f)
		}
		start := req.Arrival
		wake := float64(cfg.WakeLatency)
		if i > 0 {
			if donePrev > start {
				start = donePrev
				wake = 0 // busy period continues
			}
		}
		service := req.ServiceNs(f) + wake
		// Ceil matches the event-driven simulator's completion rounding.
		done := start + sim.Time(math.Ceil(service))
		res.Dones[i] = done
		res.ResponsesNs[i] = float64(done - req.Arrival)
		res.ActiveEnergyJ += cfg.Power.ActivePower(f) * service / 1e9
		donePrev = done
	}
	return res, nil
}

// UniformAssignment returns a frequency assignment serving every request at
// fMHz.
func UniformAssignment(n, fMHz int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = fMHz
	}
	return out
}
