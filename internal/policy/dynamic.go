package policy

import (
	"fmt"
	"math"

	"rubik/internal/cpu"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// DynamicOracleResult reports the per-request frequency schedule
// DynamicOracle found and its replay.
type DynamicOracleResult struct {
	Freqs      []int
	Result     ReplayResult
	Violations int
	// Reductions counts accepted one-step frequency reductions.
	Reductions int
}

type reduceCand struct {
	idx    int
	saving float64
}

// candHeap is a by-value max-heap of reduction candidates ordered by
// energy saving — the repo's by-value heap idiom: no container/heap
// indirection, no `any` boxing on push/pop. The maximum sits at index 0
// for the peek in the lazy-revalidation loop.
type candHeap []reduceCand

func (h candHeap) len() int { return len(h) }

func (h *candHeap) push(c reduceCand) {
	s := append(*h, c)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].saving >= s[i].saving {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *candHeap) pop() reduceCand {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && s[l].saving > s[big].saving {
			big = l
		}
		if r < n && s[r].saving > s[big].saving {
			big = r
		}
		if big == i {
			break
		}
		s[i], s[big] = s[big], s[i]
		i = big
	}
	return top
}

// DynamicOracle finds a per-request frequency schedule that minimizes
// energy while keeping the tail within the bound, following paper Sec. 5.3:
// "It first computes, for each request, the lowest frequency that meets the
// latency bound. Then, it progressively reduces frequencies until 5% of the
// requests are above the tail bound (if achievable), prioritizing the
// reductions that save most power."
//
// Implementation: start from the maximum frequency everywhere (the
// fewest-violations schedule) and greedily apply one-step per-request
// frequency reductions in order of energy saved. Each candidate reduction
// is validated by locally re-propagating the FIFO schedule (the effect of a
// reduction dies out at the next idle gap); it is accepted if it saves
// energy and keeps the number of bound violations within the tail's 5%
// budget. A request keeps collecting further reductions until it hits its
// per-request energy-optimal frequency or the budget refuses.
func DynamicOracle(tr workload.Trace, grid cpu.Grid, boundNs, percentile float64, cfg ReplayConfig) (DynamicOracleResult, error) {
	n := len(tr.Requests)
	if n == 0 {
		return DynamicOracleResult{}, fmt.Errorf("policy: empty trace")
	}
	reqs := tr.Requests
	fmax := grid.Max()
	fmin := grid.Min()

	freqs := make([]int, n)
	dones := make([]sim.Time, n)
	energy := make([]float64, n)

	serve := func(i, f int, donePrev sim.Time) (sim.Time, float64) {
		start := reqs[i].Arrival
		wake := float64(cfg.WakeLatency)
		if donePrev > start {
			start = donePrev
			wake = 0
		}
		service := reqs[i].ServiceNs(f) + wake
		done := start + sim.Time(math.Ceil(service))
		return done, cfg.Power.ActivePower(f) * service / 1e9
	}

	// Initial schedule: everything at max frequency.
	violations := 0
	var donePrev sim.Time
	for i := 0; i < n; i++ {
		freqs[i] = fmax
		done, e := serve(i, fmax, donePrev)
		dones[i] = done
		energy[i] = e
		if float64(done-reqs[i].Arrival) > boundNs {
			violations++
		}
		donePrev = done
	}
	budget := ViolationBudget(n, percentile) - violations
	if budget < 0 {
		budget = 0
	}

	stepDown := func(f int) (int, bool) {
		idx := grid.Index(f)
		if idx <= 0 {
			return f, false
		}
		return grid.Step(idx - 1), true
	}
	ownSaving := func(i int) (float64, bool) {
		lower, ok := stepDown(freqs[i])
		if !ok {
			return 0, false
		}
		_, eNow := serve(i, freqs[i], prevDone(dones, i))
		_, eLow := serve(i, lower, prevDone(dones, i))
		return eNow - eLow, true
	}

	h := &candHeap{}
	for i := 0; i < n; i++ {
		if s, ok := ownSaving(i); ok && s > 0 {
			h.push(reduceCand{idx: i, saving: s})
		}
	}

	reductions := 0
	scratchF := make([]int, 0, 256)
	scratchD := make([]sim.Time, 0, 256)
	scratchE := make([]float64, 0, 256)
	for h.len() > 0 {
		c := h.pop()
		i := c.idx
		if freqs[i] == fmin {
			continue
		}
		// Lazy revalidation: the saving may be stale after other accepts.
		saving, ok := ownSaving(i)
		if !ok || saving <= 0 {
			continue
		}
		if saving < c.saving*0.999 && h.len() > 0 && saving < (*h)[0].saving {
			h.push(reduceCand{idx: i, saving: saving})
			continue
		}
		lower, _ := stepDown(freqs[i])

		// Trial: propagate from i with freqs[i]=lower until the schedule
		// reconverges with the old one.
		scratchF = scratchF[:0]
		scratchD = scratchD[:0]
		scratchE = scratchE[:0]
		dPrev := prevDone(dones, i)
		var dE float64
		dViol := 0
		for j := i; j < n; j++ {
			f := freqs[j]
			if j == i {
				f = lower
			} else if dPrev == dones[j-1] {
				break // reconverged: the rest of the schedule is unchanged
			}
			done, e := serve(j, f, dPrev)
			scratchF = append(scratchF, f)
			scratchD = append(scratchD, done)
			scratchE = append(scratchE, e)
			dE += e - energy[j]
			oldViol := float64(dones[j]-reqs[j].Arrival) > boundNs
			newViol := float64(done-reqs[j].Arrival) > boundNs
			if newViol && !oldViol {
				dViol++
			} else if !newViol && oldViol {
				dViol--
			}
			dPrev = done
		}
		if dE >= 0 || dViol > budget {
			continue
		}
		for k := 0; k < len(scratchF); k++ {
			freqs[i+k] = scratchF[k]
			dones[i+k] = scratchD[k]
			energy[i+k] = scratchE[k]
		}
		violations += dViol
		budget -= dViol
		reductions++
		if s, ok := ownSaving(i); ok && s > 0 {
			h.push(reduceCand{idx: i, saving: s})
		}
	}

	final, err := Replay(tr, freqs, cfg)
	if err != nil {
		return DynamicOracleResult{}, err
	}
	return DynamicOracleResult{
		Freqs:      freqs,
		Result:     final,
		Violations: final.ViolationCount(boundNs),
		Reductions: reductions,
	}, nil
}

func prevDone(dones []sim.Time, i int) sim.Time {
	if i == 0 {
		return 0
	}
	return dones[i-1]
}
