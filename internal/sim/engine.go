// Package sim provides a deterministic discrete-event simulation engine.
//
// The Rubik reproduction replaces the paper's cycle-accurate zsim substrate
// with request-level discrete-event simulation; this package supplies the
// clock and event queue every simulated server is built on. Time is int64
// nanoseconds. Events at equal timestamps fire in scheduling order, which
// makes every simulation reproducible given the same inputs.
package sim

import "container/heap"

// Time is a point in simulated time, in nanoseconds.
type Time = int64

// Convenient durations in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator: a clock plus a time-ordered event
// queue. The zero value is not usable; call NewEngine.
type Engine struct {
	now  Time
	heap eventHeap
	seq  uint64
}

// NewEngine returns an engine with the clock at 0 and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at simulated time t. Scheduling in the past
// (t < Now) clamps to Now, i.e. the event fires next.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) {
	e.At(e.now+d, fn)
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) }

// Step runs the next event, advancing the clock to its timestamp. It
// returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t if it has not passed it already.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
