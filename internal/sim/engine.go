// Package sim provides a deterministic discrete-event simulation engine.
//
// The Rubik reproduction replaces the paper's cycle-accurate zsim substrate
// with request-level discrete-event simulation; this package supplies the
// clock and event queue every simulated server is built on. Time is int64
// nanoseconds. Events at equal timestamps fire in scheduling order, which
// makes every simulation reproducible given the same inputs.
//
// The engine is built for zero allocations per event in steady state: the
// event queue is a 4-ary min-heap of small value structs (no interface
// boxing, no container/heap indirection), and recurring events — a core's
// completion, its DVFS switch, its policy tick, a feeder's next arrival —
// are pre-registered once with Register and then moved with Reschedule /
// Cancel, which edit the heap entry in place instead of pushing a fresh
// closure and tombstoning the stale one.
package sim

// Time is a point in simulated time, in nanoseconds.
type Time = int64

// Convenient durations in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Handle identifies an event pre-registered on an Engine. The callback is
// fixed at Register time; Reschedule sets (or moves) its firing time and
// Cancel clears it. A handle holds at most one pending firing, which is
// exactly the shape of every recurring event in the simulators (one
// completion per core, one arrival per feeder, ...).
type Handle int32

// unscheduled marks a handle with no pending heap entry.
const unscheduled = -1

// entry is one scheduled event. Entries live by value in the heap slice:
// scheduling never boxes and never allocates beyond amortized slice growth.
type entry struct {
	at  Time
	seq uint64
	h   Handle
}

type handleState struct {
	fn      func()
	pos     int32 // index into Engine.heap, or unscheduled
	oneShot bool  // slot recycles after firing (At/After events)
}

// Engine is a discrete-event simulator: a clock plus a time-ordered event
// queue. The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	heap    []entry
	handles []handleState
	free    []Handle // recycled one-shot handle slots

	// phantom is the latest firing time displaced by Reschedule/Cancel. The
	// pre-handle engine left superseded events in the heap as no-op
	// tombstones, so a full drain advanced the clock to the latest time
	// ever scheduled, canceled or not; simulations observe that clock as
	// Result.EndTime. Run reproduces it so the handle engine is
	// byte-identical to the reference, without keeping tombstones around.
	phantom Time
}

// NewEngine returns an engine with the clock at 0 and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Register reserves a handle firing fn. The event is initially unscheduled;
// arm it with Reschedule. Handles stay valid for the engine's lifetime.
func (e *Engine) Register(fn func()) Handle {
	return e.register(fn, false)
}

func (e *Engine) register(fn func(), oneShot bool) Handle {
	if n := len(e.free); n > 0 {
		h := e.free[n-1]
		e.free = e.free[:n-1]
		e.handles[h] = handleState{fn: fn, pos: unscheduled, oneShot: oneShot}
		return h
	}
	e.handles = append(e.handles, handleState{fn: fn, pos: unscheduled, oneShot: oneShot})
	return Handle(len(e.handles) - 1)
}

// Reschedule schedules the handle's event at simulated time t, moving the
// pending firing if one exists. Scheduling in the past (t < Now) clamps to
// Now, i.e. the event fires next. A reschedule counts as a fresh scheduling
// for tie-breaking: among equal timestamps it fires after events already
// scheduled there, exactly as if it had been pushed anew.
func (e *Engine) Reschedule(h Handle, t Time) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	hs := &e.handles[h]
	if hs.pos != unscheduled {
		i := int(hs.pos)
		if e.heap[i].at > e.phantom {
			e.phantom = e.heap[i].at
		}
		e.heap[i].at = t
		e.heap[i].seq = e.seq
		e.siftDown(e.siftUp(i))
		return
	}
	e.heap = append(e.heap, entry{at: t, seq: e.seq, h: h})
	hs.pos = int32(len(e.heap) - 1)
	e.siftUp(len(e.heap) - 1)
}

// RescheduleAfter schedules the handle's event d nanoseconds from now.
func (e *Engine) RescheduleAfter(h Handle, d Time) {
	e.Reschedule(h, e.now+d)
}

// Cancel clears the handle's pending firing, if any. The handle remains
// registered and can be rescheduled.
func (e *Engine) Cancel(h Handle) {
	hs := &e.handles[h]
	if hs.pos == unscheduled {
		return
	}
	if at := e.heap[hs.pos].at; at > e.phantom {
		e.phantom = at
	}
	e.removeAt(int(hs.pos))
}

// Scheduled reports whether the handle has a pending firing.
func (e *Engine) Scheduled(h Handle) bool {
	return e.handles[h].pos != unscheduled
}

// At schedules fn to run at simulated time t. Scheduling in the past
// (t < Now) clamps to Now, i.e. the event fires next. Each call allocates
// a one-shot slot (recycled after firing); hot paths should pre-register a
// Handle and use Reschedule instead.
func (e *Engine) At(t Time, fn func()) {
	e.Reschedule(e.register(fn, true), t)
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) {
	e.At(e.now+d, fn)
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) }

// Step runs the next event, advancing the clock to its timestamp. It
// returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	top := e.heap[0]
	e.removeAt(0)
	e.now = top.at
	hs := &e.handles[top.h]
	fn := hs.fn
	if hs.oneShot {
		hs.fn = nil
		e.free = append(e.free, top.h)
	}
	fn()
	return true
}

// Run executes events until the queue is empty. The final clock is the
// latest time ever scheduled, including firings later displaced by
// Reschedule/Cancel (see the phantom field) — the drain semantics the
// tombstone-based engine had.
func (e *Engine) Run() {
	for e.Step() {
	}
	if e.now < e.phantom {
		e.now = e.phantom
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t if it has not passed it already.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunUntilOrDrain executes events until the queue drains or the clock
// reaches the deadline t, whichever comes first. A run that drains below
// the deadline keeps Run's end-of-run clock — the deadline is a pure
// safety bound that never perturbs a terminating simulation's results —
// while a run cut off at t matches RunUntil. t <= 0 means no deadline.
func (e *Engine) RunUntilOrDrain(t Time) {
	if t <= 0 {
		e.Run()
		return
	}
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if len(e.heap) == 0 {
		if e.now < e.phantom {
			e.now = e.phantom
		}
		return
	}
	if e.now < t {
		e.now = t
	}
}

// less orders entries by (time, scheduling order). seq is unique, so the
// order is total and the heap arity cannot affect firing order.
func less(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// removeAt deletes the entry at heap index i, marking its handle
// unscheduled and restoring the heap property around the hole.
func (e *Engine) removeAt(i int) {
	n := len(e.heap) - 1
	e.handles[e.heap[i].h].pos = unscheduled
	if i == n {
		e.heap = e.heap[:n]
		return
	}
	e.heap[i] = e.heap[n]
	e.heap = e.heap[:n]
	e.handles[e.heap[i].h].pos = int32(i)
	e.siftDown(e.siftUp(i))
}

// siftUp moves the entry at index i toward the root until its parent is no
// larger, maintaining handle positions. It returns the final index.
func (e *Engine) siftUp(i int) int {
	ev := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(ev, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.handles[e.heap[i].h].pos = int32(i)
		i = p
	}
	e.heap[i] = ev
	e.handles[ev.h].pos = int32(i)
	return i
}

// siftDown moves the entry at index i toward the leaves until no child is
// smaller, maintaining handle positions.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	ev := e.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !less(e.heap[best], ev) {
			break
		}
		e.heap[i] = e.heap[best]
		e.handles[e.heap[i].h].pos = int32(i)
		i = best
	}
	e.heap[i] = ev
	e.handles[ev.h].pos = int32(i)
}
