// Package sim provides a deterministic discrete-event simulation engine.
//
// The Rubik reproduction replaces the paper's cycle-accurate zsim substrate
// with request-level discrete-event simulation; this package supplies the
// clock and event queue every simulated server is built on. Time is int64
// nanoseconds. Events at equal timestamps fire in scheduling order, which
// makes every simulation reproducible given the same inputs.
//
// The engine is built for zero allocations and amortized O(1) work per
// event in steady state: the event queue is a hierarchical timing wheel
// (Varghese–Lauck, the kernel-timer construction) with a wide ground level
// sized so the simulators' whole working horizon — service completions,
// DVFS switches, arrival lookahead — schedules and fires without ever
// cascading. Recurring events are pre-registered once with Register and
// then moved with Reschedule / Cancel, which swap the single bucket entry
// in place instead of pushing a fresh closure and tombstoning the stale
// one. Scheduling appends to a bucket, canceling swap-removes from one,
// and firing drains the earliest bucket in (time, scheduling sequence)
// order — no comparison heap, no O(log n) sift on the hot path. A flat
// small-mode array fronts the wheel while only a handful of events are
// pending (the common per-core shape), keeping that regime on one hot
// cache line instead of scattered wheel buckets.
package sim

import (
	"math"
	"math/bits"
	"sort"
)

// Time is a point in simulated time, in nanoseconds.
type Time = int64

// Convenient durations in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Handle identifies an event pre-registered on an Engine. The callback is
// fixed at Register time; Reschedule sets (or moves) its firing time and
// Cancel clears it. A handle holds at most one pending firing, which is
// exactly the shape of every recurring event in the simulators (one
// completion per core, one arrival per feeder, ...).
type Handle int32

// unscheduled marks a handle with no pending bucket entry.
const unscheduled = -1

// Wheel geometry. One tick spans 2^wheelTickBits simulated nanoseconds.
// Level 0 is deliberately wide — 2^wheelL0Bits slots, indexed by a
// two-level occupancy bitmap — so that it alone covers 2^(6+12) ns =
// ~262 µs of horizon: service completions (~100 µs), DVFS switch latency
// (~10 µs), and arrival lookahead all schedule and fire without touching
// a higher level. Levels 1..8 are classic 64-slot cascade layers covering
// the rest of the int64 range (controller ticks at ms cadence land in
// level 1 and cascade once; nothing in the simulators goes deeper).
const (
	wheelTickBits  = 6 // one tick = 64 simulated ns
	wheelL0Bits    = 12
	wheelL0Slots   = 1 << wheelL0Bits
	wheelL0Mask    = wheelL0Slots - 1
	wheelL0Words   = wheelL0Slots / 64
	wheelLevelBits = 6 // 64 slots per cascade level, one occupancy bit each
	wheelSlots     = 1 << wheelLevelBits
	wheelSlotMask  = wheelSlots - 1
	wheelLevels    = 9 // ground level + 8 cascade levels cover all of Time
)

// Small-mode thresholds. With at most smallCap pending events the engine
// keeps them in one flat sorted array: firing pops the front, scheduling
// shift-inserts into a couple of hot cache lines. That beats both the
// heap (no sift chains, no position churn) and the wheel itself, whose
// buckets scatter across a 128 KB ground level — a cold line per event
// when pending is small, which is exactly the per-socket simulator shape
// (a completion per busy core, an arrival, a controller tick). The wheel
// takes over when the array fills; run() migrates back once pending
// drains to smallLow, and the wide gap between the two thresholds keeps
// workloads that hover near either one from thrashing between modes.
const (
	smallCap = 24
	smallLow = 20
)

// entry is one scheduled event. Entries live by value in bucket slices:
// scheduling never boxes and never allocates beyond amortized slice growth.
type entry struct {
	at  Time
	seq uint64
	h   Handle
}

// entryLess is the engine's total firing order: (time, scheduling
// sequence). seq is unique, so bucket geometry cannot affect firing order.
func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// bucket is one wheel slot: an unordered append bag of entries, sorted
// into firing order lazily at expiry. sorted tracks whether ents is
// currently ascending in (at, seq) — appends in scheduling order keep it,
// swap-removes break it.
type bucket struct {
	ents   []entry
	sorted bool
}

// level0 is the ground level: one bucket per tick across a 4096-tick
// window, with a two-level occupancy bitmap (summary bit w set iff occ[w]
// is non-zero) so finding the earliest non-empty bucket is at most two
// trailing-zeros counts. Each bucket holds entries of exactly one tick:
// an entry 4096+ ticks out goes to a cascade level, and the clock never
// passes a pending firing, so slots cannot alias.
type level0 struct {
	summary uint64
	occ     [wheelL0Words]uint64
	buckets [wheelL0Slots]bucket
}

// wheelLevel is one cascade layer: 64 buckets plus a one-bit-per-slot
// occupancy bitmap, so finding the earliest non-empty bucket is a rotate
// and a trailing-zeros count.
type wheelLevel struct {
	occ     uint64
	buckets [wheelSlots]bucket
}

type handleState struct {
	fn      func()
	pos     int32  // index into its bucket's ents, or unscheduled
	level   int8   // wheel level of the pending entry (0 = ground)
	slot    uint16 // wheel slot of the pending entry
	oneShot bool   // slot recycles after firing (At/After events)
}

// Engine is a discrete-event simulator: a clock plus a time-ordered event
// queue. The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	pending int

	// l0 is the ground level, embedded to spare a pointer chase on every
	// hot-path operation. Cascade levels allocate on first use (most runs
	// never schedule past level 1); top is one past the highest cascade
	// level ever used, bounding every level scan. levels[0] is unused.
	l0     level0
	levels [wheelLevels]*wheelLevel
	top    int

	// fireHead counts fired entries at the front of the active bucket —
	// the ground-level bucket of the current tick, the only bucket ever
	// consumed in place. Entries behind it are dead; they are truncated
	// when the bucket drains or the clock leaves the tick.
	fireHead int32

	// small holds every pending entry while smallMode is set (the wheel is
	// then completely empty), sorted ascending in (at, seq); the live
	// region is small[smallHead:], the prefix before it dead slots left by
	// fired/removed front entries and reused by front inserts. hs.pos is a
	// position hint into it, exact at write time but staled by shifts;
	// remove validates and falls back to a scan. See smallCap.
	small     []entry
	smallHead int
	smallMode bool

	handles []handleState
	free    []Handle // recycled one-shot handle slots

	// phantom is the latest firing time displaced by Reschedule/Cancel. The
	// pre-handle engine left superseded events in the heap as no-op
	// tombstones, so a full drain advanced the clock to the latest time
	// ever scheduled, canceled or not; simulations observe that clock as
	// Result.EndTime. Run reproduces it so the wheel engine is
	// byte-identical to the reference, without keeping tombstones around.
	phantom Time
}

// NewEngine returns an engine with the clock at 0 and no pending events.
func NewEngine() *Engine {
	e := &Engine{top: 1, smallMode: true, small: make([]entry, 0, smallCap)}
	// One arena backs every ground-level bucket with a two-entry stub, so
	// a long sparse run (mostly singleton buckets) touches each of the
	// 4096 slots without a single allocation; only denser buckets spill to
	// their own geometrically-grown slice, amortized across slot reuse.
	arena := make([]entry, 2*wheelL0Slots)
	for i := range e.l0.buckets {
		e.l0.buckets[i].ents = arena[2*i : 2*i : 2*i+2]
	}
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Register reserves a handle firing fn. The event is initially unscheduled;
// arm it with Reschedule. Handles stay valid for the engine's lifetime.
func (e *Engine) Register(fn func()) Handle {
	return e.register(fn, false)
}

func (e *Engine) register(fn func(), oneShot bool) Handle {
	if n := len(e.free); n > 0 {
		h := e.free[n-1]
		e.free = e.free[:n-1]
		e.handles[h] = handleState{fn: fn, pos: unscheduled, oneShot: oneShot}
		return h
	}
	e.handles = append(e.handles, handleState{fn: fn, pos: unscheduled, oneShot: oneShot})
	return Handle(len(e.handles) - 1)
}

// Reschedule schedules the handle's event at simulated time t, moving the
// pending firing if one exists. Scheduling in the past (t < Now) clamps to
// Now, i.e. the event fires next. A reschedule counts as a fresh scheduling
// for tie-breaking: among equal timestamps it fires after events already
// scheduled there, exactly as if it had been pushed anew.
func (e *Engine) Reschedule(h Handle, t Time) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	hs := &e.handles[h]
	if hs.pos != unscheduled {
		if at := e.remove(h, hs); at > e.phantom {
			e.phantom = at
		}
	}
	e.place(h, t, e.seq)
}

// RescheduleAfter schedules the handle's event d nanoseconds from now.
func (e *Engine) RescheduleAfter(h Handle, d Time) {
	e.Reschedule(h, e.now+d)
}

// Cancel clears the handle's pending firing, if any. The handle remains
// registered and can be rescheduled.
func (e *Engine) Cancel(h Handle) {
	hs := &e.handles[h]
	if hs.pos == unscheduled {
		return
	}
	if at := e.remove(h, hs); at > e.phantom {
		e.phantom = at
	}
}

// Scheduled reports whether the handle has a pending firing.
func (e *Engine) Scheduled(h Handle) bool {
	return e.handles[h].pos != unscheduled
}

// At schedules fn to run at simulated time t. Scheduling in the past
// (t < Now) clamps to Now, i.e. the event fires next. Each call allocates
// a one-shot slot (recycled after firing); hot paths should pre-register a
// Handle and use Reschedule instead.
func (e *Engine) At(t Time, fn func()) {
	e.Reschedule(e.register(fn, true), t)
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) {
	e.At(e.now+d, fn)
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.pending }

// Step runs the next event, advancing the clock to its timestamp. It
// returns false when no events remain.
func (e *Engine) Step() bool {
	if e.smallMode {
		if e.smallHead == len(e.small) {
			return false
		}
		e.fireSmall()
		return true
	}
	t, ok := e.nextAt()
	if !ok {
		return false
	}
	e.advanceTo(t)
	e.fireOne()
	return true
}

// Run executes events until the queue is empty. The final clock is the
// latest time ever scheduled, including firings later displaced by
// Reschedule/Cancel (see the phantom field) — the drain semantics the
// tombstone-based engine had.
func (e *Engine) Run() {
	e.run(math.MaxInt64)
	if e.now < e.phantom {
		e.now = e.phantom
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t if it has not passed it already.
func (e *Engine) RunUntil(t Time) {
	e.run(t)
	if e.now < t {
		e.advanceTo(t)
	}
}

// RunUntilOrDrain executes events until the queue drains or the clock
// reaches the deadline t, whichever comes first. A run that drains below
// the deadline keeps Run's end-of-run clock — the deadline is a pure
// safety bound that never perturbs a terminating simulation's results —
// while a run cut off at t matches RunUntil. t <= 0 means no deadline.
func (e *Engine) RunUntilOrDrain(t Time) {
	if t <= 0 {
		e.Run()
		return
	}
	e.run(t)
	if e.pending == 0 {
		if e.now < e.phantom {
			e.now = e.phantom
		}
		return
	}
	if e.now < t {
		e.advanceTo(t)
	}
}

// RunEventsUntil executes events with timestamps <= t without advancing
// the clock past the last fired event, and reports whether the queue
// drained. A drained engine takes Run's end-of-run clock (the phantom
// drain semantics). Unlike RunUntil, a barrier time that fires no events
// leaves no trace on the clock, so segmenting a run at barriers
// t_1 < t_2 < ... observes exactly the per-event clocks of a single
// Run() — the epoch-capped fleet depends on that for byte-identity with
// unsegmented runs.
func (e *Engine) RunEventsUntil(t Time) bool {
	e.run(t)
	if e.pending == 0 {
		if e.now < e.phantom {
			e.now = e.phantom
		}
		return true
	}
	return false
}

// run fires every event with timestamp <= limit. It scans the wheel once
// per expiring bucket, not once per event: after advanceTo, the active
// bucket's remaining entries all precede everything else in the wheel
// (other ground-level buckets are later ticks; cascade-level entries sit
// past the next level-1 boundary), and the only mid-drain intrusions
// possible are placements into the same tick, which drainActive handles
// locally.
func (e *Engine) run(limit Time) {
	for {
		if e.smallMode {
			if !e.runSmall(limit) {
				return
			}
			continue // a callback spilled small mode into the wheel
		}
		if e.pending <= smallLow {
			e.unspill()
			continue
		}
		nt, ok := e.nextAt()
		if !ok || nt > limit {
			return
		}
		e.advanceTo(nt)
		e.drainActive(limit)
	}
}

// fireSmall pops and runs the front (earliest) small-mode entry, advancing
// the clock to its timestamp.
func (e *Engine) fireSmall() {
	ev := e.small[e.smallHead]
	e.smallHead++
	if e.smallHead == len(e.small) {
		e.small = e.small[:0]
		e.smallHead = 0
	}
	e.now = ev.at
	hs := &e.handles[ev.h]
	hs.pos = unscheduled
	e.pending--
	fn := hs.fn
	if hs.oneShot {
		hs.fn = nil
		e.free = append(e.free, ev.h)
	}
	fn()
}

// runSmall fires small-mode events in (at, seq) order while they are due by
// limit. It returns false when run should stop (drained, or the next event
// is past the limit) and true when a callback overflowed the array and
// spilled into the wheel, handing the outer loop back to wheel mode.
func (e *Engine) runSmall(limit Time) bool {
	for e.smallMode {
		if e.smallHead == len(e.small) || e.small[e.smallHead].at > limit {
			return false
		}
		e.fireSmall()
	}
	return true
}

// drainActive consumes the active bucket — the ground-level bucket at the
// clock's tick — in (at, seq) order, stopping at the first entry beyond
// limit or when the bucket empties. Callbacks may append into this tick
// (clamped schedules land here) or remove pending entries; both flip
// sorted / truncate the bucket, so length, head, and order are reloaded
// every iteration.
func (e *Engine) drainActive(limit Time) {
	s := int(uint64(e.now>>wheelTickBits) & wheelL0Mask)
	b := &e.l0.buckets[s]
	for {
		head := int(e.fireHead)
		n := len(b.ents)
		if head >= n {
			return
		}
		if !b.sorted {
			e.sortBucket(b, head)
		}
		ev := b.ents[head]
		if ev.at > limit {
			return
		}
		// ev is in the clock's tick, so no cascade can come due here.
		e.now = ev.at
		hs := &e.handles[ev.h]
		hs.pos = unscheduled
		e.pending--
		if head+1 == n {
			b.ents = b.ents[:0]
			e.fireHead = 0
			e.clearL0(s)
			b.sorted = false
		} else {
			e.fireHead = int32(head + 1)
		}
		fn := hs.fn
		if hs.oneShot {
			hs.fn = nil
			e.free = append(e.free, ev.h)
		}
		fn()
	}
}

// level returns cascade level l (>= 1), allocating it on first use.
func (e *Engine) level(l int) *wheelLevel {
	lv := e.levels[l]
	if lv == nil {
		lv = &wheelLevel{}
		e.levels[l] = lv
	}
	if l >= e.top {
		e.top = l + 1
	}
	return lv
}

// clearL0 clears the ground-level occupancy bit for slot s, dropping the
// summary bit when the slot's word empties.
func (e *Engine) clearL0(s int) {
	w := uint(s >> 6)
	if e.l0.occ[w] &^= 1 << uint(s&63); e.l0.occ[w] == 0 {
		e.l0.summary &^= 1 << w
	}
}

// place inserts an entry for handle h at time t with sequence number seq,
// into the small-mode array when it has room (spilling every entry into
// the wheel when it does not).
func (e *Engine) place(h Handle, t Time, seq uint64) {
	if !e.smallMode && e.pending == 0 {
		// The wheel just drained completely; restart in small mode.
		e.smallMode = true
	}
	if e.smallMode {
		if len(e.small)-e.smallHead < smallCap {
			e.placeSmall(h, t, seq)
			return
		}
		e.spill()
	}
	e.placeWheel(h, t, seq)
}

// placeSmall shift-inserts into the sorted small-mode array: a scan from
// the back (periodic events usually sort last) and a short hot memmove. An
// entry sorting before every live one reuses a dead front slot, the shape
// clamped-to-now schedules have.
func (e *Engine) placeSmall(h Handle, t Time, seq uint64) {
	n := len(e.small)
	head := e.smallHead
	if n == cap(e.small) && head > 0 {
		// Compact the dead prefix instead of growing the array.
		copy(e.small, e.small[head:])
		n -= head
		e.small = e.small[:n]
		e.smallHead, head = 0, 0
	}
	i := n
	for i > head {
		prev := &e.small[i-1]
		if t > prev.at || (t == prev.at && seq > prev.seq) {
			break
		}
		i--
	}
	switch {
	case i == n:
		e.small = append(e.small, entry{at: t, seq: seq, h: h})
	case i == head && head > 0:
		head--
		e.smallHead = head
		e.small[head] = entry{at: t, seq: seq, h: h}
		i = head
	default:
		e.small = append(e.small, entry{})
		copy(e.small[i+1:], e.small[i:n])
		e.small[i] = entry{at: t, seq: seq, h: h}
	}
	e.handles[h].pos = int32(i)
	e.pending++
}

// spill migrates every small-mode entry into the wheel, preserving (at,
// seq), and switches modes. run migrates back once pending drains to
// smallLow (see unspill).
func (e *Engine) spill() {
	e.smallMode = false
	ents := e.small[e.smallHead:]
	e.small = e.small[:0]
	e.smallHead = 0
	for i := range ents {
		e.pending--
		e.placeWheel(ents[i].h, ents[i].at, ents[i].seq)
	}
}

// unspill migrates every wheel entry back into the small-mode array,
// walking the occupancy bitmaps so only live buckets are touched. Entries
// keep (at, seq), so firing order is unaffected.
func (e *Engine) unspill() {
	e.smallMode = true
	if e.fireHead > 0 {
		// Active bucket with a fired prefix: move only the live tail.
		s := int(uint64(e.now>>wheelTickBits) & wheelL0Mask)
		b := &e.l0.buckets[s]
		for _, ev := range b.ents[e.fireHead:] {
			e.smallAdd(ev)
		}
		b.ents = b.ents[:0]
		b.sorted = false
		e.fireHead = 0
		e.clearL0(s)
	}
	for e.l0.summary != 0 {
		w := bits.TrailingZeros64(e.l0.summary)
		occ := e.l0.occ[w]
		for occ != 0 {
			s := w<<6 + bits.TrailingZeros64(occ)
			occ &= occ - 1
			b := &e.l0.buckets[s]
			for _, ev := range b.ents {
				e.smallAdd(ev)
			}
			b.ents = b.ents[:0]
			b.sorted = false
		}
		e.l0.occ[w] = 0
		e.l0.summary &^= 1 << uint(w)
	}
	for l := 1; l < e.top; l++ {
		lv := e.levels[l]
		if lv == nil {
			continue
		}
		for lv.occ != 0 {
			s := bits.TrailingZeros64(lv.occ)
			lv.occ &^= 1 << uint(s)
			b := &lv.buckets[s]
			for _, ev := range b.ents {
				e.smallAdd(ev)
			}
			b.ents = b.ents[:0]
			b.sorted = false
		}
	}
	// Entries arrive in bucket-walk order; restore the sorted invariant and
	// exact position hints.
	ents := e.small
	for i := 1; i < len(ents); i++ {
		ev := ents[i]
		j := i
		for j > 0 && entryLess(ev, ents[j-1]) {
			ents[j] = ents[j-1]
			j--
		}
		ents[j] = ev
	}
	for i := range ents {
		e.handles[ents[i].h].pos = int32(i)
	}
}

func (e *Engine) smallAdd(ev entry) {
	e.small = append(e.small, ev)
}

// placeWheel inserts an entry for handle h at time t with sequence number
// seq into the wheel. Anything within the ground level's 4096-tick window
// lands there — the steady-state case, amortized O(1) with no cascade ever.
// Farther deltas pick the lowest cascade level whose span holds the tick
// delta, so a placed entry always lands on a strictly future tick of its
// level — the invariant cascading relies on.
func (e *Engine) placeWheel(h Handle, t Time, seq uint64) {
	dt := uint64(t>>wheelTickBits) - uint64(e.now>>wheelTickBits)
	var b *bucket
	var l, s int
	if dt < wheelL0Slots {
		s = int(uint64(t>>wheelTickBits) & wheelL0Mask)
		b = &e.l0.buckets[s]
		w := uint(s >> 6)
		e.l0.occ[w] |= 1 << uint(s&63)
		e.l0.summary |= 1 << w
	} else {
		l = (bits.Len64(dt)-1-wheelL0Bits)/wheelLevelBits + 1
		lv := e.levels[l]
		if lv == nil {
			lv = e.level(l)
		}
		s = int(uint64(t)>>uint(wheelTickBits+wheelL0Bits+(l-1)*wheelLevelBits)) & wheelSlotMask
		b = &lv.buckets[s]
		lv.occ |= 1 << uint(s)
	}
	n := len(b.ents)
	if n == 0 {
		b.sorted = true
	} else if b.sorted {
		if last := &b.ents[n-1]; t < last.at || (t == last.at && seq < last.seq) {
			if n < 24 {
				// Shift-insert to keep the bucket sorted: the tail is already
				// in cache from the probe above, and a sorted bucket makes the
				// expiry sort a no-op. Shifted entries get stale positions;
				// remove validates and falls back to a scan. A same-tick
				// insert during a drain cannot land in the fired prefix: dead
				// entries are at <= now <= t with strictly older seqs.
				e.pending++
				hs := &e.handles[h]
				hs.level, hs.slot = int8(l), uint16(s)
				b.ents = append(b.ents, entry{})
				i := n
				for ; i > 0; i-- {
					prev := &b.ents[i-1]
					if t > prev.at || (t == prev.at && seq > prev.seq) {
						break
					}
					b.ents[i] = *prev
				}
				b.ents[i] = entry{at: t, seq: seq, h: h}
				hs.pos = int32(i)
				return
			}
			// Cascade-fed burst: appending and sorting once at expiry beats
			// quadratic shift-inserts.
			b.sorted = false
		}
	}
	hs := &e.handles[h]
	hs.level, hs.slot, hs.pos = int8(l), uint16(s), int32(n)
	b.ents = append(b.ents, entry{at: t, seq: seq, h: h})
	e.pending++
}

// remove swap-removes the handle's entry from its bucket, returning its
// firing time. The occupancy bit clears when the bucket is effectively
// empty (no live entries beyond the active bucket's fired prefix).
//
// hs.pos may be stale: sortBucket permutes entries without rewriting
// positions (cheaper than a fixup pass on every expiry, since removal
// after a sort is the rare case). Sorting never moves an entry across
// buckets, so a failed position check falls back to scanning this bucket.
func (e *Engine) remove(h Handle, hs *handleState) Time {
	if e.smallMode {
		head := e.smallHead
		n := len(e.small)
		i := int(hs.pos)
		if i < head || i >= n || e.small[i].h != h {
			// Stale hint (a shift moved the entry); scan the live region.
			for i = head; e.small[i].h != h; i++ {
			}
		}
		at := e.small[i].at
		if i == head {
			e.smallHead++
			if e.smallHead == n {
				e.small = e.small[:0]
				e.smallHead = 0
			}
		} else {
			copy(e.small[i:], e.small[i+1:])
			e.small = e.small[:n-1]
		}
		hs.pos = unscheduled
		e.pending--
		return at
	}
	var b *bucket
	head := 0
	s := int(hs.slot)
	if hs.level == 0 {
		b = &e.l0.buckets[s]
		if int(uint64(e.now>>wheelTickBits)&wheelL0Mask) == s {
			head = int(e.fireHead)
		}
	} else {
		b = &e.levels[hs.level].buckets[s]
	}
	i := int(hs.pos)
	if i >= len(b.ents) || b.ents[i].h != h {
		// Scan the live region only: the active bucket's dead prefix can
		// hold an already-fired entry for this same handle.
		for j := head; ; j++ {
			if b.ents[j].h == h {
				i = j
				break
			}
		}
	}
	at := b.ents[i].at
	n := len(b.ents) - 1
	if i != n {
		moved := b.ents[n]
		b.ents[i] = moved
		e.handles[moved.h].pos = int32(i)
		b.sorted = false
	}
	b.ents = b.ents[:n]
	hs.pos = unscheduled
	e.pending--
	if n == head {
		if head > 0 {
			b.ents = b.ents[:0]
			e.fireHead = 0
		}
		if hs.level == 0 {
			e.clearL0(s)
		} else {
			e.levels[hs.level].occ &^= 1 << uint(s)
		}
		b.sorted = false
	}
	return at
}

// sortBucket sorts b.ents[from:] into (at, seq) order. Handle positions
// are deliberately NOT rewritten — remove validates its stored position
// and falls back to a bucket scan, so the fire path never pays a fixup
// pass for the rare cancel-after-sort. Buckets are typically a handful of
// entries, so insertion sort wins; cascade-fed bursts fall back to the
// library sort.
func (e *Engine) sortBucket(b *bucket, from int) {
	ents := b.ents
	n := len(ents)
	if n-from > 24 {
		sub := ents[from:]
		sort.Slice(sub, func(i, j int) bool { return entryLess(sub[i], sub[j]) })
	} else {
		for i := from + 1; i < n; i++ {
			ev := ents[i]
			j := i
			for j > from && entryLess(ev, ents[j-1]) {
				ents[j] = ents[j-1]
				j--
			}
			ents[j] = ev
		}
	}
	b.sorted = true
}

// bucketMin returns the earliest firing time in b.ents[head:].
func (e *Engine) bucketMin(b *bucket, head int) Time {
	if b.sorted {
		return b.ents[head].at
	}
	m := b.ents[head].at
	for _, ev := range b.ents[head+1:] {
		if ev.at < m {
			m = ev.at
		}
	}
	return m
}

// nextAt returns the earliest pending firing time. Each level contributes
// at most its earliest occupied bucket (within a level, later ticks hold
// strictly later times); a cascade level's bucket is scanned only when its
// tick's start time could beat the ground-level candidate, which near tick
// boundaries is how times split across levels compare exactly.
func (e *Engine) nextAt() (Time, bool) {
	if e.pending == 0 {
		return 0, false
	}
	if e.smallMode {
		return e.small[e.smallHead].at, true
	}
	best := Time(math.MaxInt64)
	curTick := uint64(e.now >> wheelTickBits)
	if e.l0.summary != 0 {
		cs := int(curTick & wheelL0Mask)
		w := cs >> 6
		var s int
		// The 4096-tick window starts at the current slot: check the rest
		// of its word first, then hop via the summary bitmap (rotated so
		// word w+1 is bit 0; word w reappears last, covering the wrapped
		// tail of the window below bit cs&63).
		if m := e.l0.occ[w] >> uint(cs&63); m != 0 {
			s = cs + bits.TrailingZeros64(m)
		} else {
			k := bits.TrailingZeros64(bits.RotateLeft64(e.l0.summary, -(w + 1)))
			w2 := (w + 1 + k) & (wheelL0Words - 1)
			s = w2<<6 + bits.TrailingZeros64(e.l0.occ[w2])
		}
		b := &e.l0.buckets[s]
		head := 0
		if s == cs {
			head = int(e.fireHead)
		}
		// Sort the candidate now instead of scanning for its min: it is
		// about to expire (only a rare cascade-level bucket can beat it),
		// and the fire path wants it sorted anyway.
		if !b.sorted {
			e.sortBucket(b, head)
		}
		best = b.ents[head].at
	}
	for l := 1; l < e.top; l++ {
		lv := e.levels[l]
		if lv == nil || lv.occ == 0 {
			continue
		}
		shift := uint(wheelTickBits + wheelL0Bits + (l-1)*wheelLevelBits)
		ctl := uint64(e.now) >> shift
		cs := int(ctl & wheelSlotMask)
		// Cascade-level entries live on strictly future ticks, so the scan
		// starts one past the current tick's slot (which also covers the
		// wrapped tick ctl+64 landing back on slot cs).
		k := bits.TrailingZeros64(bits.RotateLeft64(lv.occ, -(cs + 1)))
		tick := ctl + uint64(k) + 1
		if lb := Time(tick << shift); lb >= best {
			continue
		}
		s := (cs + 1 + k) & wheelSlotMask
		if m := e.bucketMin(&lv.buckets[s], 0); m < best {
			best = m
		}
	}
	return best, true
}

// cascade re-places every entry of cascade bucket (l, s) by its own firing
// time. Entries keep their original sequence numbers, so the eventual
// bucket-expiry sort reproduces the exact legacy tie order; each entry
// lands at a strictly lower level (its tick now shares the level-l tick of
// the clock), so cascading terminates.
func (e *Engine) cascade(l, s int) {
	lv := e.levels[l]
	b := &lv.buckets[s]
	lv.occ &^= 1 << uint(s)
	ents := b.ents
	b.ents = b.ents[:0]
	b.sorted = false
	for i := range ents {
		e.pending--
		e.placeWheel(ents[i].h, ents[i].at, ents[i].seq)
	}
}

// advanceTo moves the clock to t (<= the earliest pending firing time) and
// cascades, per level, the single bucket whose window the clock entered:
// its entries now belong to lower levels. Buckets between the old and new
// tick cannot be occupied — their entries would fire before t.
func (e *Engine) advanceTo(t Time) {
	if t == e.now {
		return
	}
	oldTick := uint64(e.now >> wheelTickBits)
	newTick := uint64(t >> wheelTickBits)
	e.now = t
	if newTick == oldTick {
		return
	}
	// The active bucket drained before the clock left its tick (otherwise
	// an earlier firing would be pending); any fired prefix was truncated
	// with it.
	e.fireHead = 0
	for l := 1; l < e.top; l++ {
		sh := uint(wheelL0Bits + (l-1)*wheelLevelBits)
		ot := oldTick >> sh
		nt := newTick >> sh
		if ot == nt {
			// Level-l ticks are prefixes of lower-level ticks: once one
			// matches, every higher level matches too.
			break
		}
		lv := e.levels[l]
		if lv == nil {
			continue
		}
		s := int(nt & wheelSlotMask)
		if lv.occ&(1<<uint(s)) != 0 {
			e.cascade(l, s)
		}
	}
}

// fireOne pops and runs the earliest entry of the active bucket. The clock
// already sits on the entry's firing time (advanceTo unified any same-time
// entries from cascade levels into this bucket first), so consuming the
// (at, seq)-sorted bucket front is exactly the legacy firing order.
func (e *Engine) fireOne() {
	s := int(uint64(e.now>>wheelTickBits) & wheelL0Mask)
	b := &e.l0.buckets[s]
	head := int(e.fireHead)
	if !b.sorted {
		e.sortBucket(b, head)
	}
	ev := b.ents[head]
	e.fireHead++
	hs := &e.handles[ev.h]
	hs.pos = unscheduled
	e.pending--
	if int(e.fireHead) == len(b.ents) {
		b.ents = b.ents[:0]
		e.fireHead = 0
		e.clearL0(s)
		b.sorted = false
	}
	fn := hs.fn
	if hs.oneShot {
		hs.fn = nil
		e.free = append(e.free, ev.h)
	}
	fn()
}
