//go:build !rubik_noref

package sim

import (
	"math/rand"
	"testing"
)

// firing is one observed callback: which label fired and at what clock.
type firing struct {
	label int
	at    Time
}

// lockstepTrio drives the timing-wheel Engine, the retired HeapEngine, and
// the tombstone RefEngine through an identical schedule, recording each
// firing as (label, time) so the three histories can be compared.
type lockstepTrio struct {
	eng *Engine
	hp  *HeapEngine
	ref *RefEngine

	engLog []firing
	hpLog  []firing
	refLog []firing
}

// TestEngineLockstepWithReference is the randomized stress property test:
// interleaved At/After/Reschedule/Cancel/RunUntil/RunUntilOrDrain/Step
// sequences — plus self-rescheduling handles (the shape every core event
// has), handle-count bursts that push the wheel engine across its
// small-mode thresholds in both directions, and far-future targets that
// force multi-level cascades — must produce the identical firing order and
// clock on all three engines.
func TestEngineLockstepWithReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := &lockstepTrio{eng: NewEngine(), hp: NewHeapEngine(), ref: NewRefEngine()}

		// Persistent handles: pure logging callbacks. Enough of them that a
		// burst rescheduling all at once overflows smallCap and spills into
		// the wheel; cancels and firings then drain pending back below
		// smallLow, exercising unspill.
		const handles = 3 * smallCap / 2
		var engH, hpH, refH [handles]Handle
		for i := 0; i < handles; i++ {
			i := i
			engH[i] = p.eng.Register(func() { p.engLog = append(p.engLog, firing{i, p.eng.Now()}) })
			hpH[i] = p.hp.Register(func() { p.hpLog = append(p.hpLog, firing{i, p.hp.Now()}) })
			refH[i] = p.ref.Register(func() { p.refLog = append(p.refLog, firing{i, p.ref.Now()}) })
		}
		// One more handle: self-rescheduling chain (a completion/tick
		// lookalike), deterministically re-arming itself a bounded number of
		// times.
		chain := 3 + r.Intn(10)
		period := Time(1 + r.Intn(40))
		engChain, hpChain, refChain := 0, 0, 0
		var engCH, hpCH, refCH Handle
		engCH = p.eng.Register(func() {
			p.engLog = append(p.engLog, firing{handles, p.eng.Now()})
			engChain++
			if engChain < chain {
				p.eng.RescheduleAfter(engCH, period)
			}
		})
		hpCH = p.hp.Register(func() {
			p.hpLog = append(p.hpLog, firing{handles, p.hp.Now()})
			hpChain++
			if hpChain < chain {
				p.hp.RescheduleAfter(hpCH, period)
			}
		})
		refCH = p.ref.Register(func() {
			p.refLog = append(p.refLog, firing{handles, p.ref.Now()})
			refChain++
			if refChain < chain {
				p.ref.RescheduleAfter(refCH, period)
			}
		})

		reschedAll := func(i int, at Time) {
			p.eng.Reschedule(engH[i], at)
			p.hp.Reschedule(hpH[i], at)
			p.ref.Reschedule(refH[i], at)
		}

		ops := 50 + r.Intn(150)
		for op := 0; op < ops; op++ {
			switch k := r.Intn(15); {
			case k < 3: // reschedule a persistent handle (possibly moving it)
				reschedAll(r.Intn(handles), Time(r.Intn(500)))
			case k < 4: // arm or move the chain
				at := Time(r.Intn(500))
				p.eng.Reschedule(engCH, at)
				p.hp.Reschedule(hpCH, at)
				p.ref.Reschedule(refCH, at)
			case k < 5: // cancel a persistent handle
				i := r.Intn(handles)
				p.eng.Cancel(engH[i])
				p.hp.Cancel(hpH[i])
				p.ref.Cancel(refH[i])
			case k < 7: // one-shot closure at an absolute time (possibly past)
				at := Time(r.Intn(500))
				label := 100 + op
				p.eng.At(at, func() { p.engLog = append(p.engLog, firing{label, p.eng.Now()}) })
				p.hp.At(at, func() { p.hpLog = append(p.hpLog, firing{label, p.hp.Now()}) })
				p.ref.At(at, func() { p.refLog = append(p.refLog, firing{label, p.ref.Now()}) })
			case k < 8: // one-shot closure a relative distance out
				d := Time(r.Intn(100))
				label := 100 + op
				p.eng.After(d, func() { p.engLog = append(p.engLog, firing{label, p.eng.Now()}) })
				p.hp.After(d, func() { p.hpLog = append(p.hpLog, firing{label, p.hp.Now()}) })
				p.ref.After(d, func() { p.refLog = append(p.refLog, firing{label, p.ref.Now()}) })
			case k < 9: // far-future reschedule: forces a multi-level cascade
				// when a later long RunUntil walks the clock past it.
				d := Time(1) << uint(10+r.Intn(34))
				reschedAll(r.Intn(handles), p.eng.Now()+d+Time(r.Intn(1000)))
			case k < 10: // burst: arm every persistent handle at once, pushing
				// the wheel engine past smallCap into wheel mode.
				base := p.eng.Now()
				for i := 0; i < handles; i++ {
					reschedAll(i, base+Time(r.Intn(2000)))
				}
			case k < 11: // far burst: pin more than smallCap entries across
				// cascade levels so the engine stays in wheel mode and a
				// later long advance must cascade them down level by level.
				base := p.eng.Now()
				for i := 0; i < handles; i++ {
					d := Time(1) << uint(10+(op+i)%30)
					reschedAll(i, base+d+Time(r.Intn(1000)))
				}
			case k < 12: // long advance: drags the clock across level
				// boundaries, cascading any far-future entries.
				until := p.eng.Now() + Time(1)<<uint(10+r.Intn(36))
				p.eng.RunUntil(until)
				p.hp.RunUntil(until)
				p.ref.RunUntil(until)
			case k < 13: // bounded advance
				until := p.eng.Now() + Time(r.Intn(120))
				p.eng.RunUntil(until)
				p.hp.RunUntil(until)
				p.ref.RunUntil(until)
			case k < 14: // deadline-or-drain; RefEngine has no such entry
				// point, so mirror the observable outcome onto it.
				until := p.eng.Now() + Time(r.Intn(300))
				p.eng.RunUntilOrDrain(until)
				p.hp.RunUntilOrDrain(until)
				if p.eng.Now() == until {
					p.ref.RunUntil(until)
				} else {
					p.ref.Run()
				}
			default: // single real step
				// One Engine step fires one real event; the reference burns
				// tombstone steps first, so step it until a real firing (or
				// drained). If the engine had nothing, leave the reference's
				// remaining tombstones for the final drain, as production
				// loops would.
				stepped := p.eng.Step()
				if p.hp.Step() != stepped {
					t.Fatalf("seed %d op %d: Step availability diverged", seed, op)
				}
				if stepped {
					for n := len(p.refLog); len(p.refLog) == n; {
						if !p.ref.Step() {
							t.Fatalf("seed %d op %d: reference drained before matching a real firing", seed, op)
						}
					}
				}
			}
			if p.eng.Now() != p.hp.Now() || p.eng.Now() != p.ref.Now() {
				t.Fatalf("seed %d op %d: clocks diverged mid-run: eng=%d heap=%d ref=%d",
					seed, op, p.eng.Now(), p.hp.Now(), p.ref.Now())
			}
			if p.eng.Pending() != p.hp.Pending() {
				t.Fatalf("seed %d op %d: pending diverged: eng=%d heap=%d",
					seed, op, p.eng.Pending(), p.hp.Pending())
			}
			// Scheduled must agree at every point (the ref tracks it via the
			// tombstone generation, the engine via its bucket position).
			for i := 0; i < handles; i++ {
				if p.eng.Scheduled(engH[i]) != p.ref.Scheduled(refH[i]) ||
					p.eng.Scheduled(engH[i]) != p.hp.Scheduled(hpH[i]) {
					t.Fatalf("seed %d op %d: Scheduled(handle %d) diverged: eng=%v heap=%v ref=%v",
						seed, op, i, p.eng.Scheduled(engH[i]), p.hp.Scheduled(hpH[i]), p.ref.Scheduled(refH[i]))
				}
			}
		}
		p.eng.Run()
		p.hp.Run()
		p.ref.Run()

		if p.eng.Now() != p.hp.Now() || p.eng.Now() != p.ref.Now() {
			t.Fatalf("seed %d: clocks diverged: eng=%d heap=%d ref=%d",
				seed, p.eng.Now(), p.hp.Now(), p.ref.Now())
		}
		if len(p.engLog) != len(p.refLog) || len(p.engLog) != len(p.hpLog) {
			t.Fatalf("seed %d: firing counts diverged: eng=%d heap=%d ref=%d",
				seed, len(p.engLog), len(p.hpLog), len(p.refLog))
		}
		for i := range p.engLog {
			if p.engLog[i] != p.refLog[i] || p.engLog[i] != p.hpLog[i] {
				t.Fatalf("seed %d: firing %d diverged: eng=%v heap=%v ref=%v",
					seed, i, p.engLog[i], p.hpLog[i], p.refLog[i])
			}
		}
	}
}
