//go:build !rubik_noref

package sim

import (
	"math/rand"
	"testing"
)

// lockstepPair drives Engine and RefEngine through an identical schedule
// and records each firing as (label, time) so the histories can be
// compared.
type lockstepPair struct {
	eng *Engine
	ref *RefEngine

	engLog []firing
	refLog []firing
}

type firing struct {
	label int
	at    Time
}

// TestEngineLockstepWithReference is the randomized stress property test:
// interleaved At/After/Reschedule/Cancel/RunUntil/Step sequences — plus
// self-rescheduling handles, the shape every core event has — must produce
// the identical firing order and clock on the handle-based engine and the
// container/heap reference.
func TestEngineLockstepWithReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		r := rand.New(rand.NewSource(seed))
		p := &lockstepPair{eng: NewEngine(), ref: NewRefEngine()}

		// Persistent handles 0..7: pure logging callbacks.
		const handles = 8
		var engH, refH [handles]Handle
		for i := 0; i < handles; i++ {
			i := i
			engH[i] = p.eng.Register(func() { p.engLog = append(p.engLog, firing{i, p.eng.Now()}) })
			refH[i] = p.ref.Register(func() { p.refLog = append(p.refLog, firing{i, p.ref.Now()}) })
		}
		// Handle 8: self-rescheduling chain (a completion/tick lookalike),
		// deterministically re-arming itself a bounded number of times.
		chain := 3 + r.Intn(10)
		period := Time(1 + r.Intn(40))
		engChain, refChain := 0, 0
		var engCH, refCH Handle
		engCH = p.eng.Register(func() {
			p.engLog = append(p.engLog, firing{handles, p.eng.Now()})
			engChain++
			if engChain < chain {
				p.eng.RescheduleAfter(engCH, period)
			}
		})
		refCH = p.ref.Register(func() {
			p.refLog = append(p.refLog, firing{handles, p.ref.Now()})
			refChain++
			if refChain < chain {
				p.ref.RescheduleAfter(refCH, period)
			}
		})

		ops := 50 + r.Intn(150)
		for op := 0; op < ops; op++ {
			switch k := r.Intn(10); {
			case k < 3: // reschedule a persistent handle (possibly moving it)
				i := r.Intn(handles)
				at := Time(r.Intn(500))
				p.eng.Reschedule(engH[i], at)
				p.ref.Reschedule(refH[i], at)
			case k < 4: // arm or move the chain
				at := Time(r.Intn(500))
				p.eng.Reschedule(engCH, at)
				p.ref.Reschedule(refCH, at)
			case k < 5: // cancel a persistent handle
				i := r.Intn(handles)
				p.eng.Cancel(engH[i])
				p.ref.Cancel(refH[i])
			case k < 7: // one-shot closure at an absolute time (possibly past)
				at := Time(r.Intn(500))
				label := 100 + op
				p.eng.At(at, func() { p.engLog = append(p.engLog, firing{label, p.eng.Now()}) })
				p.ref.At(at, func() { p.refLog = append(p.refLog, firing{label, p.ref.Now()}) })
			case k < 8: // one-shot closure a relative distance out
				d := Time(r.Intn(100))
				label := 100 + op
				p.eng.After(d, func() { p.engLog = append(p.engLog, firing{label, p.eng.Now()}) })
				p.ref.After(d, func() { p.refLog = append(p.refLog, firing{label, p.ref.Now()}) })
			case k < 9: // advance both clocks a bounded amount
				until := p.eng.Now() + Time(r.Intn(120))
				p.eng.RunUntil(until)
				p.ref.RunUntil(until)
			default: // single real step
				// One Engine step fires one real event; the reference burns
				// tombstone steps first, so step it until a real firing (or
				// drained). If the engine had nothing, leave the reference's
				// remaining tombstones for the final drain, as production
				// loops would.
				if p.eng.Step() {
					for n := len(p.refLog); len(p.refLog) == n; {
						if !p.ref.Step() {
							t.Fatalf("seed %d op %d: reference drained before matching a real firing", seed, op)
						}
					}
				}
			}
			if p.eng.Now() != p.ref.Now() {
				t.Fatalf("seed %d op %d: clocks diverged mid-run: eng=%d ref=%d",
					seed, op, p.eng.Now(), p.ref.Now())
			}
			// Scheduled must agree at every point (the ref tracks it via the
			// tombstone generation, the engine via the heap position).
			for i := 0; i < handles; i++ {
				if p.eng.Scheduled(engH[i]) != p.ref.Scheduled(refH[i]) {
					t.Fatalf("seed %d op %d: Scheduled(handle %d) diverged: eng=%v ref=%v",
						seed, op, i, p.eng.Scheduled(engH[i]), p.ref.Scheduled(refH[i]))
				}
			}
		}
		p.eng.Run()
		p.ref.Run()

		if p.eng.Now() != p.ref.Now() {
			t.Fatalf("seed %d: clocks diverged: eng=%d ref=%d", seed, p.eng.Now(), p.ref.Now())
		}
		if len(p.engLog) != len(p.refLog) {
			t.Fatalf("seed %d: firing counts diverged: eng=%d ref=%d\neng=%v\nref=%v",
				seed, len(p.engLog), len(p.refLog), p.engLog, p.refLog)
		}
		for i := range p.engLog {
			if p.engLog[i] != p.refLog[i] {
				t.Fatalf("seed %d: firing %d diverged: eng=%v ref=%v", seed, i, p.engLog[i], p.refLog[i])
			}
		}
	}
}
