//go:build !rubik_noref

package sim

// HeapEngine is the 4-ary min-heap engine the timing wheel replaced,
// retained (like RefEngine) as an executable specification: every
// operation is O(log n) in pending events, but the semantics — (time,
// scheduling sequence) total order, past clamping, phantom drained-clock,
// RunUntilOrDrain boundary — are exactly the contract the wheel must
// reproduce bit for bit. The three-way lockstep property test
// (engine_lockstep_test.go) and FuzzEngineLockstep drive Engine,
// HeapEngine and RefEngine through identical schedules; production code
// never uses it. Build with -tags rubik_noref to strip it.
type HeapEngine struct {
	now     Time
	seq     uint64
	heap    []heapEntry
	handles []heapHandleState
	free    []Handle // recycled one-shot handle slots

	// phantom is the latest firing time displaced by Reschedule/Cancel;
	// Run drags the drained clock to it (legacy tombstone drain
	// semantics). See Engine.phantom.
	phantom Time
}

// heapEntry is one scheduled event, by value in the heap slice.
type heapEntry struct {
	at  Time
	seq uint64
	h   Handle
}

type heapHandleState struct {
	fn      func()
	pos     int32 // index into HeapEngine.heap, or unscheduled
	oneShot bool  // slot recycles after firing (At/After events)
}

// NewHeapEngine returns a heap engine with the clock at 0.
func NewHeapEngine() *HeapEngine {
	return &HeapEngine{}
}

// Now returns the current simulated time.
func (e *HeapEngine) Now() Time { return e.now }

// Register reserves a handle firing fn, initially unscheduled.
func (e *HeapEngine) Register(fn func()) Handle {
	return e.register(fn, false)
}

func (e *HeapEngine) register(fn func(), oneShot bool) Handle {
	if n := len(e.free); n > 0 {
		h := e.free[n-1]
		e.free = e.free[:n-1]
		e.handles[h] = heapHandleState{fn: fn, pos: unscheduled, oneShot: oneShot}
		return h
	}
	e.handles = append(e.handles, heapHandleState{fn: fn, pos: unscheduled, oneShot: oneShot})
	return Handle(len(e.handles) - 1)
}

// Reschedule schedules the handle's event at t, moving the pending firing
// if one exists; t < Now clamps to Now. A reschedule counts as a fresh
// scheduling for tie-breaking.
func (e *HeapEngine) Reschedule(h Handle, t Time) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	hs := &e.handles[h]
	if hs.pos != unscheduled {
		i := int(hs.pos)
		if e.heap[i].at > e.phantom {
			e.phantom = e.heap[i].at
		}
		e.heap[i].at = t
		e.heap[i].seq = e.seq
		e.siftDown(e.siftUp(i))
		return
	}
	e.heap = append(e.heap, heapEntry{at: t, seq: e.seq, h: h})
	hs.pos = int32(len(e.heap) - 1)
	e.siftUp(len(e.heap) - 1)
}

// RescheduleAfter schedules the handle's event d nanoseconds from now.
func (e *HeapEngine) RescheduleAfter(h Handle, d Time) {
	e.Reschedule(h, e.now+d)
}

// Cancel clears the handle's pending firing, if any.
func (e *HeapEngine) Cancel(h Handle) {
	hs := &e.handles[h]
	if hs.pos == unscheduled {
		return
	}
	if at := e.heap[hs.pos].at; at > e.phantom {
		e.phantom = at
	}
	e.removeAt(int(hs.pos))
}

// Scheduled reports whether the handle has a pending firing.
func (e *HeapEngine) Scheduled(h Handle) bool {
	return e.handles[h].pos != unscheduled
}

// At schedules fn at t (clamping the past to Now) on a one-shot slot.
func (e *HeapEngine) At(t Time, fn func()) {
	e.Reschedule(e.register(fn, true), t)
}

// After schedules fn to run d nanoseconds from now.
func (e *HeapEngine) After(d Time, fn func()) {
	e.At(e.now+d, fn)
}

// Pending returns the number of scheduled events.
func (e *HeapEngine) Pending() int { return len(e.heap) }

// Step runs the next event, advancing the clock to its timestamp.
func (e *HeapEngine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	top := e.heap[0]
	e.removeAt(0)
	e.now = top.at
	hs := &e.handles[top.h]
	fn := hs.fn
	if hs.oneShot {
		hs.fn = nil
		e.free = append(e.free, top.h)
	}
	fn()
	return true
}

// Run executes events until the queue is empty, then drags the clock to
// the latest displaced firing (legacy tombstone drain semantics).
func (e *HeapEngine) Run() {
	for e.Step() {
	}
	if e.now < e.phantom {
		e.now = e.phantom
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock.
func (e *HeapEngine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunUntilOrDrain executes events until the queue drains or the clock
// reaches the deadline t; t <= 0 means no deadline. See
// Engine.RunUntilOrDrain.
func (e *HeapEngine) RunUntilOrDrain(t Time) {
	if t <= 0 {
		e.Run()
		return
	}
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if len(e.heap) == 0 {
		if e.now < e.phantom {
			e.now = e.phantom
		}
		return
	}
	if e.now < t {
		e.now = t
	}
}

// heapLess orders entries by (time, scheduling order); seq is unique, so
// the order is total and the heap arity cannot affect firing order.
func heapLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// removeAt deletes the entry at heap index i, marking its handle
// unscheduled and restoring the heap property around the hole.
func (e *HeapEngine) removeAt(i int) {
	n := len(e.heap) - 1
	e.handles[e.heap[i].h].pos = unscheduled
	if i == n {
		e.heap = e.heap[:n]
		return
	}
	e.heap[i] = e.heap[n]
	e.heap = e.heap[:n]
	e.handles[e.heap[i].h].pos = int32(i)
	e.siftDown(e.siftUp(i))
}

// siftUp moves the entry at index i toward the root until its parent is no
// larger, maintaining handle positions. It returns the final index.
func (e *HeapEngine) siftUp(i int) int {
	ev := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !heapLess(ev, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.handles[e.heap[i].h].pos = int32(i)
		i = p
	}
	e.heap[i] = ev
	e.handles[ev.h].pos = int32(i)
	return i
}

// siftDown moves the entry at index i toward the leaves until no child is
// smaller, maintaining handle positions.
func (e *HeapEngine) siftDown(i int) {
	n := len(e.heap)
	ev := e.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if heapLess(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !heapLess(e.heap[best], ev) {
			break
		}
		e.heap[i] = e.heap[best]
		e.handles[e.heap[i].h].pos = int32(i)
		i = best
	}
	e.heap[i] = ev
	e.handles[ev.h].pos = int32(i)
}
