//go:build !rubik_noref

package sim

import "testing"

// Edge regression tests for the timing-wheel engine. Each case pins a
// behavior the heap engine exhibited and the wheel must preserve
// bit-for-bit: handle reuse across Cancel/Reschedule, scheduling at the
// current instant, events landing exactly on a RunUntilOrDrain boundary,
// and deltas that cascade through multiple wheel levels.

// Cancel-then-Reschedule on the same handle must behave as if the cancel
// never left a residue: the handle fires once, at the new deadline.
func TestEngineCancelThenReschedule(t *testing.T) {
	e := NewEngine()
	var fired []Time
	h := e.Register(func() { fired = append(fired, e.Now()) })

	e.Reschedule(h, 100)
	e.Cancel(h)
	e.Reschedule(h, 250)
	e.Run()

	if len(fired) != 1 || fired[0] != 250 {
		t.Fatalf("fired = %v, want [250]", fired)
	}
	if e.Scheduled(h) {
		t.Fatalf("handle still scheduled after firing")
	}

	// Cancel/Reschedule churn while other events interleave; the handle
	// must track only its latest deadline.
	var log []int
	a := e.Register(func() { log = append(log, 1) })
	b := e.Register(func() { log = append(log, 2) })
	e.Reschedule(a, e.Now()+10)
	e.Reschedule(b, e.Now()+20)
	e.Cancel(a)
	e.Reschedule(a, e.Now()+30)
	e.Cancel(a)
	e.Reschedule(a, e.Now()+5)
	e.Run()
	if want := []int{1, 2}; len(log) != 2 || log[0] != want[0] || log[1] != want[1] {
		t.Fatalf("log = %v, want %v", log, want)
	}
}

// Scheduling at exactly Now() must fire on the next step without
// advancing the clock.
func TestEngineScheduleAtNow(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now = %d, want 1000", e.Now())
	}

	var at Time
	h := e.Register(func() { at = e.Now() })
	e.Reschedule(h, e.Now())
	if !e.Step() {
		t.Fatalf("Step found no event")
	}
	if at != 1000 || e.Now() != 1000 {
		t.Fatalf("fired at %d (clock %d), want 1000", at, e.Now())
	}

	// Same via the one-shot path, and in wheel mode (enough pending
	// handles to spill out of the sorted small front).
	var hs []Handle
	for i := 0; i < 2*smallCap; i++ {
		h := e.Register(func() {})
		e.Reschedule(h, e.Now()+Time(10000+i*1000))
		hs = append(hs, h)
	}
	fired := false
	e.At(e.Now(), func() { fired = true })
	if !e.Step() || !fired || e.Now() != 1000 {
		t.Fatalf("at-Now one-shot: fired=%v clock=%d, want true/1000", fired, e.Now())
	}
	for _, h := range hs {
		e.Cancel(h)
	}
}

// An event scheduled exactly at the RunUntilOrDrain bound must fire
// during that call, and the clock must rest exactly on the bound.
func TestEngineRunUntilOrDrainBoundary(t *testing.T) {
	e := NewEngine()
	var fired []Time
	h := e.Register(func() { fired = append(fired, e.Now()) })

	e.Reschedule(h, 5000)
	e.RunUntilOrDrain(5000)
	if len(fired) != 1 || fired[0] != 5000 || e.Now() != 5000 {
		t.Fatalf("boundary fire: fired=%v clock=%d, want [5000]/5000", fired, e.Now())
	}

	// An event one tick past the bound must NOT fire, and the clock must
	// stop at the bound.
	e.Reschedule(h, 6001)
	e.RunUntilOrDrain(6000)
	if len(fired) != 1 || e.Now() != 6000 {
		t.Fatalf("past-bound: fired=%v clock=%d, want len 1/6000", fired, e.Now())
	}
	// Draining with nothing pending advances only to the phantom — the
	// latest deadline ever scheduled (6001 here) — never to the bound.
	e.Cancel(h)
	e.RunUntilOrDrain(9000)
	if e.Now() != 6001 {
		t.Fatalf("empty drain: clock=%d, want phantom 6001", e.Now())
	}
}

// Far-future deltas must survive multi-level cascades: an event placed
// many levels up has to migrate down level by level and still fire at
// its exact deadline, in seq order against same-deadline latecomers.
func TestEngineFarFutureCascade(t *testing.T) {
	deltas := []Time{
		1e3, 1e6, 1e9, 1e12, 1e15, 1e18, // spans every cascade level
		wheelL0Slots << wheelTickBits,       // first slot past the l0 horizon
		(wheelL0Slots << wheelTickBits) - 1, // last l0-reachable tick
	}
	for _, d := range deltas {
		e := NewEngine()
		var at Time
		h := e.Register(func() { at = e.Now() })
		e.Reschedule(h, d)
		// Pin extra handles so the engine stays in wheel mode and the
		// event actually cascades instead of being unspilled early.
		for i := 0; i < 2*smallCap; i++ {
			p := e.Register(func() {})
			e.Reschedule(p, 2*d+Time(i+1))
		}
		e.RunUntil(d)
		if at != d {
			t.Fatalf("delta %d: fired at %d, want %d", d, at, d)
		}
	}
}

// Two events with the same deadline but placed via different routes — one
// cascaded from an upper level, one inserted directly into l0 after the
// clock got close — must fire in registration (seq) order.
func TestEngineCrossLevelTieOrder(t *testing.T) {
	e := NewEngine()
	var log []int
	a := e.Register(func() { log = append(log, 1) })
	b := e.Register(func() { log = append(log, 2) })

	const deadline = Time(5_000_000) // well past the l0 horizon: A cascades
	e.Reschedule(a, deadline)
	// Keep the engine in wheel mode throughout.
	var pins []Handle
	for i := 0; i < 2*smallCap; i++ {
		p := e.Register(func() {})
		e.Reschedule(p, 2*deadline+Time(i+1))
		pins = append(pins, p)
	}
	e.RunUntil(deadline - 10) // A has cascaded into (or near) l0 by now
	e.Reschedule(b, deadline) // B goes straight into l0
	e.RunUntil(deadline)

	if len(log) != 2 || log[0] != 1 || log[1] != 2 {
		t.Fatalf("tie order = %v, want [1 2] (seq order)", log)
	}
	for _, p := range pins {
		e.Cancel(p)
	}
}

// Far-to-near and near-to-far reschedules must relocate the event across
// levels without leaving stale residues behind.
func TestEngineCrossLevelReschedule(t *testing.T) {
	e := NewEngine()
	var fired []Time
	h := e.Register(func() { fired = append(fired, e.Now()) })
	for i := 0; i < 2*smallCap; i++ {
		p := e.Register(func() {})
		e.Reschedule(p, 1e12+Time(i))
	}

	e.Reschedule(h, 1e9) // far: upper cascade level
	e.Reschedule(h, 100) // near: l0
	e.RunUntil(200)
	if len(fired) != 1 || fired[0] != 100 {
		t.Fatalf("far-to-near: fired=%v, want [100]", fired)
	}

	e.Reschedule(h, e.Now()+50)  // near again
	e.Reschedule(h, e.Now()+1e9) // back out to a far level
	want := e.Now() + 1e9
	e.RunUntil(want)
	if len(fired) != 2 || fired[1] != want {
		t.Fatalf("near-to-far: fired=%v, want second at %d", fired, want)
	}

	// Cancel mid-flight after a cascade has begun: advance partway so the
	// entry migrates at least one level, then cancel; it must never fire.
	e.Reschedule(h, e.Now()+1e9)
	e.RunUntil(e.Now() + 1e6)
	e.Cancel(h)
	e.RunUntil(e.Now() + 2e9)
	if len(fired) != 2 {
		t.Fatalf("canceled mid-cascade event fired: %v", fired)
	}
}
