//go:build !rubik_noref

package sim

import "container/heap"

// RefEngine is the original container/heap engine, retained as an
// executable specification of the event semantics: boxed events, a fresh
// closure per scheduling, and generation-counter tombstones standing in for
// handle moves. The lockstep property test (engine_lockstep_test.go) drives
// RefEngine and Engine through identical schedules and asserts identical
// firing order and clocks; production code never uses it. Build with
// -tags rubik_noref to strip it.
type RefEngine struct {
	now  Time
	heap refEventHeap
	seq  uint64

	handles []refHandle
}

// refHandle emulates Engine handles the pre-handle way: every Reschedule
// pushes a fresh closure and bumps the generation, leaving the stale event
// in the heap as a tombstone that fires as a no-op.
type refHandle struct {
	fn        func()
	gen       uint64
	scheduled bool
}

type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type refEventHeap []refEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refEventHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewRefEngine returns a reference engine with the clock at 0.
func NewRefEngine() *RefEngine {
	return &RefEngine{}
}

// Now returns the current simulated time.
func (e *RefEngine) Now() Time { return e.now }

// At schedules fn at t, clamping the past to Now.
func (e *RefEngine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, refEvent{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (e *RefEngine) After(d Time, fn func()) {
	e.At(e.now+d, fn)
}

// Register reserves a handle firing fn, mirroring Engine.Register.
func (e *RefEngine) Register(fn func()) Handle {
	e.handles = append(e.handles, refHandle{fn: fn})
	return Handle(len(e.handles) - 1)
}

// Reschedule mirrors Engine.Reschedule via generation tombstones: the old
// pending event (if any) is invalidated and a fresh closure is pushed.
func (e *RefEngine) Reschedule(h Handle, t Time) {
	hs := &e.handles[h]
	hs.gen++
	hs.scheduled = true
	gen := hs.gen
	e.At(t, func() {
		if e.handles[h].gen != gen {
			return // superseded
		}
		e.handles[h].scheduled = false
		e.handles[h].fn()
	})
}

// RescheduleAfter schedules the handle's event d nanoseconds from now.
func (e *RefEngine) RescheduleAfter(h Handle, d Time) {
	e.Reschedule(h, e.now+d)
}

// Cancel mirrors Engine.Cancel: the pending firing (if any) is tombstoned.
func (e *RefEngine) Cancel(h Handle) {
	e.handles[h].gen++
	e.handles[h].scheduled = false
}

// Scheduled reports whether the handle has a pending (non-tombstoned)
// firing.
func (e *RefEngine) Scheduled(h Handle) bool {
	return e.handles[h].scheduled
}

// Step runs the next event; tombstones fire as no-ops, exactly as the
// pre-handle simulators behaved.
func (e *RefEngine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(refEvent)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *RefEngine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock.
func (e *RefEngine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
