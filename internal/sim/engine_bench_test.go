//go:build !rubik_noref

package sim

import "testing"

// Same-binary A/B of the timing-wheel Engine against the retired
// HeapEngine on the two canonical shapes: Sparse (16 self-rescheduling
// timers, the engine's sorted small-mode regime) and Dense (64 timers
// over a wide horizon, pure wheel mode vs O(log n) sifts). These pairs
// run in one process, so the comparison dodges the cross-binary noise
// that plagues stash-and-rebuild A/Bs.

type benchEngine interface {
	Register(fn func()) Handle
	Reschedule(h Handle, t Time)
	RescheduleAfter(h Handle, d Time)
	Run()
}

func benchTimers(b *testing.B, eng benchEngine, handles int, base, step Time) {
	fired := 0
	hs := make([]Handle, handles)
	for i := 0; i < handles; i++ {
		i := i
		hs[i] = eng.Register(func() {
			fired++
			if fired <= b.N-handles {
				eng.RescheduleAfter(hs[i], base+step*Time(i))
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := range hs {
		eng.Reschedule(hs[i], Time(1+i))
	}
	eng.Run()
	if fired < b.N {
		b.Fatalf("fired %d of %d events", fired, b.N)
	}
}

func BenchmarkWheelSparse(b *testing.B) { benchTimers(b, NewEngine(), 16, 97, 13) }
func BenchmarkHeapSparse(b *testing.B)  { benchTimers(b, NewHeapEngine(), 16, 97, 13) }
func BenchmarkWheelDense(b *testing.B)  { benchTimers(b, NewEngine(), 64, 1500, 97) }
func BenchmarkHeapDense(b *testing.B)   { benchTimers(b, NewHeapEngine(), 64, 1500, 97) }
