//go:build !rubik_noref

package sim

import (
	"testing"
)

// FuzzEngineLockstep drives the timing-wheel Engine, the retired
// HeapEngine, and the tombstone RefEngine through an op sequence decoded
// from the fuzz input and asserts identical firing order and clocks. The
// decoder favors the shapes that stress the wheel: past-due schedules that
// clamp to Now, shifted deltas that land on every cascade level, and
// enough live handles that bursts cross the small-mode thresholds.
func FuzzEngineLockstep(f *testing.F) {
	// Seeds: a mixed op soup, a cascade-heavy sequence (large shifts), and
	// a burst/cancel churn.
	f.Add([]byte{0, 1, 2, 3, 4, 5, 0, 10, 20, 30, 40, 50, 60, 70})
	f.Add([]byte{0, 200, 30, 0, 201, 31, 0, 202, 32, 4, 255, 255, 5})
	f.Add([]byte{3, 9, 3, 9, 3, 9, 1, 0, 1, 1, 0, 5, 0, 0, 4, 80, 2, 7, 5})

	f.Fuzz(func(t *testing.T, data []byte) {
		eng, hp, ref := NewEngine(), NewHeapEngine(), NewRefEngine()
		var engLog, hpLog, refLog []firing

		const handles = 32 // > smallCap: bursts spill into the wheel
		var engH, hpH, refH [handles]Handle
		for i := 0; i < handles; i++ {
			i := i
			engH[i] = eng.Register(func() { engLog = append(engLog, firing{i, eng.Now()}) })
			hpH[i] = hp.Register(func() { hpLog = append(hpLog, firing{i, hp.Now()}) })
			refH[i] = ref.Register(func() { refLog = append(refLog, firing{i, ref.Now()}) })
		}

		next := func(i *int) byte {
			if *i >= len(data) {
				return 0
			}
			b := data[*i]
			*i++
			return b
		}
		for i, op := 0, 0; i < len(data) && op < 512; op++ {
			switch next(&i) % 6 {
			case 0: // reschedule: delta shifted so every cascade level is
				// reachable from two bytes
				h := int(next(&i)) % handles
				d := Time(next(&i)) << (uint(next(&i)) % 40)
				at := eng.Now() + d
				eng.Reschedule(engH[h], at)
				hp.Reschedule(hpH[h], at)
				ref.Reschedule(refH[h], at)
			case 1: // cancel
				h := int(next(&i)) % handles
				eng.Cancel(engH[h])
				hp.Cancel(hpH[h])
				ref.Cancel(refH[h])
			case 2: // past-due one-shot: clamps to Now and fires next
				back := Time(next(&i))
				label := 1000 + op
				at := eng.Now() - back
				eng.At(at, func() { engLog = append(engLog, firing{label, eng.Now()}) })
				hp.At(at, func() { hpLog = append(hpLog, firing{label, hp.Now()}) })
				ref.At(at, func() { refLog = append(refLog, firing{label, ref.Now()}) })
			case 3: // relative one-shot
				d := Time(next(&i))
				label := 1000 + op
				eng.After(d, func() { engLog = append(engLog, firing{label, eng.Now()}) })
				hp.After(d, func() { hpLog = append(hpLog, firing{label, hp.Now()}) })
				ref.After(d, func() { refLog = append(refLog, firing{label, ref.Now()}) })
			case 4: // bounded advance, shifted to cross level boundaries
				until := eng.Now() + Time(next(&i))<<(uint(next(&i))%40)
				eng.RunUntil(until)
				hp.RunUntil(until)
				ref.RunUntil(until)
			case 5: // drain
				eng.Run()
				hp.Run()
				ref.Run()
			}
			if eng.Now() != hp.Now() || eng.Now() != ref.Now() {
				t.Fatalf("op %d: clocks diverged: eng=%d heap=%d ref=%d", op, eng.Now(), hp.Now(), ref.Now())
			}
			if eng.Pending() != hp.Pending() {
				t.Fatalf("op %d: pending diverged: eng=%d heap=%d", op, eng.Pending(), hp.Pending())
			}
		}
		eng.Run()
		hp.Run()
		ref.Run()
		if eng.Now() != hp.Now() || eng.Now() != ref.Now() {
			t.Fatalf("final clocks diverged: eng=%d heap=%d ref=%d", eng.Now(), hp.Now(), ref.Now())
		}
		if len(engLog) != len(hpLog) || len(engLog) != len(refLog) {
			t.Fatalf("firing counts diverged: eng=%d heap=%d ref=%d", len(engLog), len(hpLog), len(refLog))
		}
		for i := range engLog {
			if engLog[i] != hpLog[i] || engLog[i] != refLog[i] {
				t.Fatalf("firing %d diverged: eng=%v heap=%v ref=%v", i, engLog[i], hpLog[i], refLog[i])
			}
		}
	})
}
