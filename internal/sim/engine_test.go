package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTimestamp(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of order: %v", order)
		}
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(100, func() {
		e.At(50, func() { fired = true }) // in the past
	})
	e.Run()
	if !fired {
		t.Fatal("past-scheduled event never fired")
	}
	if e.Now() != 100 {
		t.Fatalf("clock went backwards: %d", e.Now())
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(10, func() {
		e.After(25, func() { at = e.Now() })
	})
	e.Run()
	if at != 35 {
		t.Fatalf("After fired at %d, want 35", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, ts := range []Time{5, 10, 15, 20} {
		ts := ts
		e.At(ts, func() { fired = append(fired, ts) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 5 and 10", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("now = %d, want 12", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine must return false")
	}
}

func TestEngineMonotonicClockProperty(t *testing.T) {
	// Property: for random event sets, the engine fires them in sorted
	// order and the clock never goes backwards.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 1 + r.Intn(200)
		times := make([]Time, n)
		var fired []Time
		for i := range times {
			times[i] = Time(r.Intn(1000))
			ts := times[i]
			e.At(ts, func() { fired = append(fired, ts) })
		}
		e.Run()
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		if len(fired) != n {
			return false
		}
		for i := range fired {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
