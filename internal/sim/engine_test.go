package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTimestamp(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of order: %v", order)
		}
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(100, func() {
		e.At(50, func() { fired = true }) // in the past
	})
	e.Run()
	if !fired {
		t.Fatal("past-scheduled event never fired")
	}
	if e.Now() != 100 {
		t.Fatalf("clock went backwards: %d", e.Now())
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(10, func() {
		e.After(25, func() { at = e.Now() })
	})
	e.Run()
	if at != 35 {
		t.Fatalf("After fired at %d, want 35", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, ts := range []Time{5, 10, 15, 20} {
		ts := ts
		e.At(ts, func() { fired = append(fired, ts) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 5 and 10", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("now = %d, want 12", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestEngineRunUntilBoundaryInclusive(t *testing.T) {
	// Events at exactly t fire, and an event that an in-window event
	// schedules AT the boundary also fires within the same RunUntil.
	e := NewEngine()
	var fired []string
	e.At(10, func() {
		fired = append(fired, "a")
		e.At(12, func() { fired = append(fired, "chained@12") })
	})
	e.At(12, func() { fired = append(fired, "b@12") })
	e.RunUntil(12)
	want := []string{"a", "b@12", "chained@12"}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	if e.Now() != 12 {
		t.Fatalf("now = %d, want 12", e.Now())
	}
}

func TestEngineRunUntilEqualTimestampOrder(t *testing.T) {
	// Equal-timestamp events split across two RunUntil calls keep
	// scheduling order: none fires early, and the second call fires them
	// exactly as scheduled.
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(20, func() { order = append(order, i) })
	}
	e.RunUntil(19)
	if len(order) != 0 {
		t.Fatalf("events at 20 fired during RunUntil(19): %v", order)
	}
	if e.Now() != 19 {
		t.Fatalf("now = %d, want 19", e.Now())
	}
	e.RunUntil(20)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of order: %v", order)
		}
	}
}

func TestEngineRunUntilPast(t *testing.T) {
	// RunUntil with t already passed runs nothing and never rewinds.
	e := NewEngine()
	e.At(50, func() {})
	e.Run()
	e.RunUntil(10)
	if e.Now() != 50 {
		t.Fatalf("clock rewound to %d", e.Now())
	}
}

func TestEngineInterleavedAtAndAfterSameTimestamp(t *testing.T) {
	// At(now+d) and After(d) land at the same instant and fire in
	// scheduling order — the property cluster dispatch relies on when an
	// arrival, a DVFS switch and a completion coincide.
	e := NewEngine()
	var order []string
	e.At(5, func() {
		e.After(10, func() { order = append(order, "after") })
		e.At(15, func() { order = append(order, "at") })
	})
	e.Run()
	if len(order) != 2 || order[0] != "after" || order[1] != "at" {
		t.Fatalf("order = %v, want [after at]", order)
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine must return false")
	}
}

func TestEngineHandleReschedule(t *testing.T) {
	e := NewEngine()
	var fired []Time
	h := e.Register(func() { fired = append(fired, e.Now()) })
	e.Reschedule(h, 100)
	e.Reschedule(h, 40) // move earlier: a handle holds one pending firing
	if !e.Scheduled(h) {
		t.Fatal("handle not scheduled after Reschedule")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (reschedule must move, not duplicate)", e.Pending())
	}
	e.Run()
	if len(fired) != 1 || fired[0] != 40 {
		t.Fatalf("fired = %v, want [40]", fired)
	}
	if e.Scheduled(h) {
		t.Fatal("handle still scheduled after firing")
	}
	// Re-arm after firing: handles are reusable.
	e.Reschedule(h, 200)
	e.Run()
	if len(fired) != 2 || fired[1] != 200 {
		t.Fatalf("fired = %v, want [40 200]", fired)
	}
	// The displaced time (100) drags the drained clock, like the tombstone
	// the pre-handle engine would have popped — but 200 has passed it.
	if e.Now() != 200 {
		t.Fatalf("now = %d, want 200", e.Now())
	}
}

func TestEngineHandleCancel(t *testing.T) {
	e := NewEngine()
	fired := 0
	h := e.Register(func() { fired++ })
	e.Cancel(h) // cancel while unscheduled: no-op
	e.Reschedule(h, 50)
	e.Cancel(h)
	if e.Scheduled(h) || e.Pending() != 0 {
		t.Fatal("cancel left the event scheduled")
	}
	e.At(10, func() {})
	e.Run()
	if fired != 0 {
		t.Fatal("canceled event fired")
	}
	// The canceled firing time drags the drained clock (legacy tombstone
	// drain semantics): the last event ran at 10, but 50 was once scheduled.
	if e.Now() != 50 {
		t.Fatalf("now = %d, want 50 (displaced firing drags the drain clock)", e.Now())
	}
}

func TestEngineHandleRescheduleKeepsTieOrder(t *testing.T) {
	// A reschedule counts as a fresh scheduling: among equal timestamps it
	// fires after events already scheduled there.
	e := NewEngine()
	var order []string
	h := e.Register(func() { order = append(order, "handle") })
	e.Reschedule(h, 10)
	e.At(20, func() { order = append(order, "closure@20") })
	e.Reschedule(h, 20) // moved after closure@20 was scheduled
	e.Run()
	if len(order) != 2 || order[0] != "closure@20" || order[1] != "handle" {
		t.Fatalf("order = %v, want [closure@20 handle]", order)
	}
}

func TestEngineHandleSelfRescheduleInCallback(t *testing.T) {
	// The completion/tick/feeder shape: a handle re-arms itself while
	// firing. Zero allocations in steady state.
	e := NewEngine()
	n := 0
	var h Handle
	h = e.Register(func() {
		n++
		if n < 5 {
			e.RescheduleAfter(h, 7)
		}
	})
	e.Reschedule(h, 7)
	e.Run()
	if n != 5 || e.Now() != 35 {
		t.Fatalf("n=%d now=%d, want 5 fires ending at 35", n, e.Now())
	}
}

func TestEngineRescheduleClampsPast(t *testing.T) {
	e := NewEngine()
	var at Time
	h := e.Register(func() { at = e.Now() })
	e.At(100, func() { e.Reschedule(h, 50) })
	e.Run()
	if at != 100 {
		t.Fatalf("past reschedule fired at %d, want clamp to 100", at)
	}
}

func TestEngineOneShotSlotRecycling(t *testing.T) {
	// Chained At/After (the pre-handle feeder pattern) must recycle one-shot
	// slots instead of growing the handle table per event.
	e := NewEngine()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 1000 {
			e.After(3, chain)
		}
	}
	e.At(0, chain)
	e.Run()
	if n != 1000 {
		t.Fatalf("n = %d, want 1000", n)
	}
	if got := len(e.handles); got > 4 {
		t.Fatalf("handle table grew to %d slots for a 1-deep chain", got)
	}
}

func TestEngineMonotonicClockProperty(t *testing.T) {
	// Property: for random event sets, the engine fires them in sorted
	// order and the clock never goes backwards.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 1 + r.Intn(200)
		times := make([]Time, n)
		var fired []Time
		for i := range times {
			times[i] = Time(r.Intn(1000))
			ts := times[i]
			e.At(ts, func() { fired = append(fired, ts) })
		}
		e.Run()
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		if len(fired) != n {
			return false
		}
		for i := range fired {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilOrDrain(t *testing.T) {
	// Drains below the deadline: clock must match Run exactly.
	a, b := NewEngine(), NewEngine()
	for _, e := range []*Engine{a, b} {
		e := e
		h := e.Register(func() {})
		e.Reschedule(h, 100)
		e.After(250, func() { e.Reschedule(h, 400) })
	}
	a.Run()
	b.RunUntilOrDrain(1_000_000)
	if a.Now() != b.Now() {
		t.Fatalf("drained clock %d != Run clock %d", b.Now(), a.Now())
	}

	// Cut off at the deadline: matches RunUntil.
	d := NewEngine()
	// Self-rescheduling event: unbounded stream analogue.
	var dh Handle
	dfired := 0
	dh = d.Register(func() { dfired++; d.RescheduleAfter(dh, 10) })
	d.Reschedule(dh, 10)
	d.RunUntilOrDrain(105)
	if dfired != 10 {
		t.Fatalf("fired %d events before the deadline, want 10", dfired)
	}
	if d.Now() != 105 {
		t.Fatalf("cut-off clock %d, want the deadline 105", d.Now())
	}

	// t <= 0 means no deadline.
	e := NewEngine()
	ran := false
	e.After(50, func() { ran = true })
	e.RunUntilOrDrain(0)
	if !ran || e.Now() != 50 {
		t.Fatalf("t=0 must drain: ran=%v now=%d", ran, e.Now())
	}
}

// TestRunEventsUntilSegmented pins the epoch-barrier contract: slicing a
// run at arbitrary barriers with RunEventsUntil fires the same events in
// the same order and ends on exactly the clock one Run() produces — the
// barriers themselves leave no trace. Rescheduling displacement is
// included so the phantom drain clock is exercised too.
func TestRunEventsUntilSegmented(t *testing.T) {
	build := func(e *Engine, fired *[]Time) {
		for _, at := range []Time{70, 10, 350, 130, 130, 520} {
			at := at
			e.At(at, func() { *fired = append(*fired, at) })
		}
		h := e.Register(func() { *fired = append(*fired, e.Now()) })
		e.Reschedule(h, 90)
		// Displace a far firing so the drain clock comes from phantom.
		far := e.Register(func() {})
		e.Reschedule(far, 900)
		e.At(40, func() { e.Reschedule(far, 260) })
	}

	var wantFired []Time
	want := NewEngine()
	build(want, &wantFired)
	want.Run()

	var gotFired []Time
	got := NewEngine()
	build(got, &gotFired)
	drained := false
	for _, barrier := range []Time{10, 60, 60, 130, 200, 400} {
		if got.RunEventsUntil(barrier) {
			t.Fatalf("drained early at barrier %d", barrier)
		}
		if got.Now() > barrier {
			t.Fatalf("clock %d ran past barrier %d", got.Now(), barrier)
		}
		drained = got.Pending() == 0
	}
	if drained {
		t.Fatal("events must remain after the last barrier")
	}
	if !got.RunEventsUntil(1 << 50) {
		t.Fatal("final segment did not drain")
	}
	if got.Now() != want.Now() {
		t.Fatalf("segmented clock %d != Run clock %d", got.Now(), want.Now())
	}
	if !reflect.DeepEqual(gotFired, wantFired) {
		t.Fatalf("segmented firing order %v != Run order %v", gotFired, wantFired)
	}

	// A barrier at an event's exact timestamp fires it (<= semantics), and
	// the clock rests on the event, not the barrier.
	e2 := NewEngine()
	n := 0
	e2.At(100, func() { n++ })
	e2.At(150, func() { n++ })
	if e2.RunEventsUntil(100) {
		t.Fatal("event at 150 still pending")
	}
	if n != 1 || e2.Now() != 100 {
		t.Fatalf("barrier-at-timestamp: fired %d, clock %d; want 1 fired at clock 100", n, e2.Now())
	}
}
