package stats

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	x := make([]complex128, 3)
	if err := FFT(x); err == nil {
		t.Fatal("expected error for non-power-of-two size")
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1,1,1,1] is [4,0,0,0].
	x := []complex128{1, 1, 1, 1}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	want := []complex128{4, 0, 0, 0}
	for i := range x {
		if cmplx.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("FFT[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// FFT of a delta is all-ones.
	x = []complex128{1, 0, 0, 0, 0, 0, 0, 0}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-1) > 1e-9 {
			t.Fatalf("FFT(delta)[%d] = %v, want 1", i, x[i])
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (1 + r.Intn(9)) // 2..512
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			orig[i] = x[i]
		}
		if err := FFT(x); err != nil {
			return false
		}
		if err := IFFT(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParseval(t *testing.T) {
	// Parseval: sum |x|^2 = (1/n) sum |X|^2.
	r := rand.New(rand.NewSource(11))
	n := 256
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(r.NormFloat64(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for i := range x {
		freqEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestConvolveFFTMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() PMF {
			n := 1 + r.Intn(130)
			p := make([]float64, n)
			var tot float64
			for i := range p {
				p[i] = r.Float64()
				tot += p[i]
			}
			for i := range p {
				p[i] /= tot
			}
			return PMF{Origin: float64(r.Intn(10)), Width: 2, P: p}
		}
		a, b := mk(), mk()
		direct, err1 := Convolve(a, b)
		viaFFT, err2 := ConvolveFFT(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		if direct.Origin != viaFFT.Origin || len(direct.P) != len(viaFFT.P) {
			return false
		}
		for i := range direct.P {
			if math.Abs(direct.P[i]-viaFFT.P[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIterConvolutionsMatchesRepeatedDirect(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	mk := func(n int) PMF {
		p := make([]float64, n)
		var tot float64
		for i := range p {
			p[i] = r.Float64()
			tot += p[i]
		}
		for i := range p {
			p[i] /= tot
		}
		return PMF{Origin: 1.5, Width: 0.25, P: p}
	}
	s0 := mk(50)
	s := mk(128)
	const count = 16
	got, err := IterConvolutions(s0, s, count)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != count {
		t.Fatalf("got %d PMFs, want %d", len(got), count)
	}
	want := s0
	for i := 0; i < count; i++ {
		if math.Abs(got[i].Origin-want.Origin) > 1e-9 {
			t.Fatalf("i=%d origin %v, want %v", i, got[i].Origin, want.Origin)
		}
		if len(got[i].P) != len(want.P) {
			t.Fatalf("i=%d len %d, want %d", i, len(got[i].P), len(want.P))
		}
		for k := range want.P {
			if math.Abs(got[i].P[k]-want.P[k]) > 1e-8 {
				t.Fatalf("i=%d bucket %d: %v vs %v", i, k, got[i].P[k], want.P[k])
			}
		}
		if i < count-1 {
			next, err := Convolve(want, s)
			if err != nil {
				t.Fatal(err)
			}
			want = next
		}
	}
}

func TestIterConvolutionsErrors(t *testing.T) {
	ok := PMF{Origin: 0, Width: 1, P: []float64{1}}
	if _, err := IterConvolutions(ok, ok, 0); err == nil {
		t.Fatal("expected error for count=0")
	}
	if _, err := IterConvolutions(PMF{}, ok, 4); err == nil {
		t.Fatal("expected error for empty s0")
	}
	bad := PMF{Origin: 0, Width: 3, P: []float64{1}}
	if _, err := IterConvolutions(ok, bad, 4); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestIterConvolutionsMoments(t *testing.T) {
	// Means and variances of S_i must follow E[S0]+i*E[S], var[S0]+i*var[S].
	s0 := PMF{Origin: 0, Width: 1, P: []float64{0.5, 0.25, 0.25}}
	s := PMF{Origin: 2, Width: 1, P: []float64{0.1, 0.6, 0.3}}
	out, err := IterConvolutions(s0, s, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range out {
		wantMean := s0.Mean() + float64(i)*s.Mean()
		wantVar := s0.Variance() + float64(i)*s.Variance()
		if !approxEqual(d.Mean(), wantMean, 1e-6) {
			t.Fatalf("i=%d mean %v, want %v", i, d.Mean(), wantMean)
		}
		if !approxEqual(d.Variance(), wantVar, 1e-6) {
			t.Fatalf("i=%d var %v, want %v", i, d.Variance(), wantVar)
		}
	}
}
