package stats

import "math"

// Hash64 is an incremental FNV-1a fingerprint over raw value bits. It is
// the content-addressing primitive behind the tail-table rebuild cache:
// two inputs hash equal exactly when their binary representations are
// byte-identical, which is the precondition for sharing the output of a
// bit-deterministic pipeline. Floats are hashed through Float64bits, so
// +0 and -0 (which compare ==) fingerprint differently — deliberately
// conservative: a spurious mismatch costs one redundant rebuild, a
// spurious match would corrupt results. Hash64 is a value; every method
// returns the advanced state, so fingerprints compose by chaining without
// allocating.
//
// FNV-1a is not collision-free over these input sizes; callers that cache
// by fingerprint must verify the full key on a hash hit (see
// core.TableCache).
type Hash64 uint64

const (
	fnvOffset64 Hash64 = 14695981039346656037
	fnvPrime64  Hash64 = 1099511628211
)

// NewHash64 returns the FNV-1a initial state.
func NewHash64() Hash64 { return fnvOffset64 }

// Uint64 folds the eight bytes of v into the hash, low byte first.
func (h Hash64) Uint64(v uint64) Hash64 {
	for i := 0; i < 8; i++ {
		h ^= Hash64(v & 0xff)
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// Float64 folds the raw IEEE-754 bits of v into the hash.
func (h Hash64) Float64(v float64) Hash64 { return h.Uint64(math.Float64bits(v)) }

// Int folds v into the hash.
func (h Hash64) Int(v int) Hash64 { return h.Uint64(uint64(int64(v))) }

// Float64s folds a length prefix and every element's raw bits into the
// hash. The prefix keeps concatenated slices from aliasing: hashing
// [a] then [b] differs from hashing [a, b].
func (h Hash64) Float64s(s []float64) Hash64 {
	h = h.Int(len(s))
	for _, v := range s {
		h = h.Float64(v)
	}
	return h
}

// Sum returns the current fingerprint.
func (h Hash64) Sum() uint64 { return uint64(h) }
