package stats

import (
	"fmt"
	"math"
)

// Histogram is a streaming profiler over a sliding window of the most
// recent Capacity() samples: a ring buffer plus monotonic min/max deques,
// giving O(1) amortized ingest and O(1) window extrema. PMFInto then bins
// the window into a caller-owned PMF without allocating.
//
// It replaces the append-then-copy sample slices on Rubik's profiling path:
// those cost O(HistoryCap) per completion once the window is full (the
// trim copies the whole window) and a fresh sort/scan plus allocation per
// table rebuild. The histogram's window semantics are identical — the most
// recent Capacity() accepted samples — and PMFInto is bitwise-equal to
// NewPMFFromSamples over the same window, so swapping it in changes no
// simulation results.
type Histogram struct {
	buf    []float64
	pushed uint64 // total accepted samples; sample p lives at buf[p%cap]

	// Monotonic deques of absolute sample positions, stored in rings of
	// the same capacity. minPos fronts the position of the window minimum
	// (values ascending from front to back), maxPos the maximum.
	minPos, maxPos  []uint64
	minHead, minLen int
	maxHead, maxLen int
}

// NewHistogram returns a histogram over a window of the given capacity.
// A non-positive capacity yields a histogram that rejects every sample,
// mirroring a zero-length sample window.
func NewHistogram(capacity int) *Histogram {
	if capacity < 0 {
		capacity = 0
	}
	return &Histogram{
		buf:    make([]float64, capacity),
		minPos: make([]uint64, capacity),
		maxPos: make([]uint64, capacity),
	}
}

// Capacity returns the window capacity.
func (h *Histogram) Capacity() int { return len(h.buf) }

// Len returns the number of samples currently in the window.
func (h *Histogram) Len() int {
	if h.pushed < uint64(len(h.buf)) {
		return int(h.pushed)
	}
	return len(h.buf)
}

// Push ingests one sample, evicting the oldest when the window is full.
// Non-finite samples are rejected (reported false) so the window always
// bins cleanly; NewPMFFromSamples treats them as input errors instead,
// which a per-completion streaming path cannot afford to surface.
func (h *Histogram) Push(v float64) bool {
	c := len(h.buf)
	if c == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	pos := h.pushed
	if pos >= uint64(c) { // evict sample pos-c
		old := pos - uint64(c)
		if h.minLen > 0 && h.minPos[h.minHead] == old {
			h.minHead = (h.minHead + 1) % c
			h.minLen--
		}
		if h.maxLen > 0 && h.maxPos[h.maxHead] == old {
			h.maxHead = (h.maxHead + 1) % c
			h.maxLen--
		}
	}
	h.buf[pos%uint64(c)] = v
	// Keep the deques monotonic: drop entries the new sample dominates.
	// Dropping equals keeps the newer position, which survives longer.
	for h.minLen > 0 {
		back := h.minPos[(h.minHead+h.minLen-1)%c]
		if h.buf[back%uint64(c)] < v {
			break
		}
		h.minLen--
	}
	h.minPos[(h.minHead+h.minLen)%c] = pos
	h.minLen++
	for h.maxLen > 0 {
		back := h.maxPos[(h.maxHead+h.maxLen-1)%c]
		if h.buf[back%uint64(c)] > v {
			break
		}
		h.maxLen--
	}
	h.maxPos[(h.maxHead+h.maxLen)%c] = pos
	h.maxLen++
	h.pushed++
	return true
}

// Min returns the smallest sample in the window (0 when empty).
func (h *Histogram) Min() float64 {
	if h.minLen == 0 {
		return 0
	}
	return h.buf[h.minPos[h.minHead]%uint64(len(h.buf))]
}

// Max returns the largest sample in the window (0 when empty).
func (h *Histogram) Max() float64 {
	if h.maxLen == 0 {
		return 0
	}
	return h.buf[h.maxPos[h.maxHead]%uint64(len(h.buf))]
}

// Snapshot appends the window's samples, oldest first, to dst and returns
// the result. Pass nil to get a fresh copy.
func (h *Histogram) Snapshot(dst []float64) []float64 {
	c := uint64(len(h.buf))
	n := uint64(h.Len())
	for p := h.pushed - n; p < h.pushed; p++ {
		dst = append(dst, h.buf[p%c])
	}
	return dst
}

// PMFInto bins the window into dst, reusing dst.P's backing array when its
// capacity allows. The result is bitwise-identical to NewPMFFromSamples
// over the same window (same [min, max] span, same bucket assignment, same
// degenerate single-bucket case), so the streaming profiler can replace the
// sample-slice path without perturbing any downstream decision. With a
// warm destination it performs zero allocations.
func (h *Histogram) PMFInto(dst *PMF, nbuckets int) error {
	n := h.Len()
	if n == 0 {
		return fmt.Errorf("stats: no samples")
	}
	if nbuckets <= 0 {
		return fmt.Errorf("stats: nbuckets must be positive, got %d", nbuckets)
	}
	lo, hi := h.Min(), h.Max()
	if hi == lo {
		p := dst.P
		if cap(p) < 1 {
			p = make([]float64, 1)
		} else {
			p = p[:1]
		}
		p[0] = 1
		*dst = PMF{Origin: lo, Width: 1, P: p}
		return nil
	}
	w := (hi - lo) / float64(nbuckets)
	p := dst.P
	if cap(p) < nbuckets {
		p = make([]float64, nbuckets)
	} else {
		p = p[:nbuckets]
		for i := range p {
			p[i] = 0
		}
	}
	inc := 1 / float64(n)
	c := uint64(len(h.buf))
	for pos := h.pushed - uint64(n); pos < h.pushed; pos++ {
		s := h.buf[pos%c]
		k := int((s - lo) / w)
		if k >= nbuckets { // s == hi lands one past the end
			k = nbuckets - 1
		}
		p[k] += inc
	}
	*dst = PMF{Origin: lo, Width: w, P: p}
	return nil
}
