package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestHistogramMatchesNewPMFFromSamples is the streaming profiler's core
// equivalence property: over any sequence of pushes, PMFInto must be
// bitwise-identical to NewPMFFromSamples on the trailing window, including
// window wrap-around and the degenerate all-equal case.
func TestHistogramMatchesNewPMFFromSamples(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capacity := 1 + r.Intn(200)
		nbuckets := 1 + r.Intn(140)
		h := NewHistogram(capacity)
		var all []float64
		var dst PMF
		n := 1 + r.Intn(600)
		for i := 0; i < n; i++ {
			var v float64
			switch r.Intn(4) {
			case 0:
				v = float64(r.Intn(4)) // heavy ties exercise the deques
			default:
				v = r.NormFloat64() * 1e5
			}
			if !h.Push(v) {
				return false
			}
			all = append(all, v)
			if r.Intn(8) != 0 { // check at random points, not every push
				continue
			}
			window := all
			if len(window) > capacity {
				window = window[len(window)-capacity:]
			}
			want, err := NewPMFFromSamples(window, nbuckets)
			if err != nil {
				return false
			}
			if err := h.PMFInto(&dst, nbuckets); err != nil {
				return false
			}
			if !sameBits(dst.Origin, want.Origin) || !sameBits(dst.Width, want.Width) ||
				len(dst.P) != len(want.P) {
				return false
			}
			for k := range want.P {
				if !sameBits(dst.P[k], want.P[k]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramWindowExtrema(t *testing.T) {
	// Min/Max must track the sliding window exactly (naive recompute).
	r := rand.New(rand.NewSource(3))
	const capacity = 37
	h := NewHistogram(capacity)
	var all []float64
	for i := 0; i < 1000; i++ {
		v := math.Floor(r.NormFloat64() * 10)
		h.Push(v)
		all = append(all, v)
		window := all
		if len(window) > capacity {
			window = window[len(window)-capacity:]
		}
		lo, hi := window[0], window[0]
		for _, s := range window {
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
		}
		if h.Min() != lo || h.Max() != hi {
			t.Fatalf("push %d: extrema (%v, %v), want (%v, %v)", i, h.Min(), h.Max(), lo, hi)
		}
		if h.Len() != len(window) {
			t.Fatalf("push %d: len %d, want %d", i, h.Len(), len(window))
		}
	}
}

func TestHistogramSnapshotOrder(t *testing.T) {
	h := NewHistogram(4)
	for i := 1; i <= 6; i++ {
		h.Push(float64(i))
	}
	got := h.Snapshot(nil)
	want := []float64{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("snapshot %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot %v, want %v", got, want)
		}
	}
}

func TestHistogramRejects(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if h.Push(v) {
			t.Fatalf("non-finite sample %v accepted", v)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("rejected samples counted: len %d", h.Len())
	}
	var dst PMF
	if err := h.PMFInto(&dst, 8); err == nil {
		t.Fatal("empty histogram must refuse to bin")
	}
	if err := func() error { h.Push(1); return h.PMFInto(&dst, 0) }(); err == nil {
		t.Fatal("nbuckets=0 must be rejected")
	}
	zero := NewHistogram(0)
	if zero.Push(1) {
		t.Fatal("zero-capacity histogram accepted a sample")
	}
}

func TestHistogramDegenerateWindow(t *testing.T) {
	h := NewHistogram(16)
	for i := 0; i < 5; i++ {
		h.Push(42)
	}
	var dst PMF
	if err := h.PMFInto(&dst, 128); err != nil {
		t.Fatal(err)
	}
	if dst.Origin != 42 || dst.Width != 1 || len(dst.P) != 1 || dst.P[0] != 1 {
		t.Fatalf("degenerate PMF %+v", dst)
	}
}

func TestHistogramPMFIntoAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	h := NewHistogram(512)
	for i := 0; i < 2000; i++ {
		h.Push(r.Float64() * 1e6)
	}
	var dst PMF
	if err := h.PMFInto(&dst, 128); err != nil { // warm the destination
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := h.PMFInto(&dst, 128); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm PMFInto allocates %v/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(10, func() { h.Push(1234.5) })
	if allocs != 0 {
		t.Fatalf("Push allocates %v/op, want 0", allocs)
	}
}

func TestConditionAtLeastIntoMatches(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomPMF(r, 1+r.Intn(128), float64(r.Intn(20)), 0.5+r.Float64())
		buf := make([]float64, len(d.P))
		for trial := 0; trial < 8; trial++ {
			omega := d.Origin + (r.Float64()*1.4-0.2)*float64(len(d.P))*d.Width
			want := d.ConditionAtLeast(omega)
			got := d.ConditionAtLeastInto(buf, omega)
			if !sameBits(got.Origin, want.Origin) || !sameBits(got.Width, want.Width) ||
				len(got.P) != len(want.P) {
				return false
			}
			for k := range want.P {
				if !sameBits(got.P[k], want.P[k]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
