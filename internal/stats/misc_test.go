package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		q, want float64
	}{
		{0.5, 0},
		{0.8413447, 1.0},
		{0.95, 1.6448536},
		{0.975, 1.9599640},
		{0.99, 2.3263479},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.q); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("extreme quantiles must be infinite")
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	f := func(raw float64) bool {
		q := math.Mod(math.Abs(raw), 0.49) // (0, 0.49)
		if q == 0 {
			return true
		}
		return math.Abs(NormalQuantile(0.5+q)+NormalQuantile(0.5-q)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianTail(t *testing.T) {
	if got := GaussianTail(10, 4, 0.95); math.Abs(got-(10+1.6448536*2)) > 1e-4 {
		t.Fatalf("GaussianTail = %v", got)
	}
	if got := GaussianTail(-100, 1, 0.5); got != 0 {
		t.Fatalf("negative tail must floor at 0, got %v", got)
	}
	if got := GaussianTail(5, -1, 0.9); got != 5 {
		t.Fatalf("negative variance treated as 0, got %v", got)
	}
}

func TestPearsonKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r, err := Pearson(x, y); err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation: r=%v err=%v", r, err)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if r, _ := Pearson(x, yneg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation: r=%v", r)
	}
	constant := []float64{3, 3, 3, 3, 3}
	if r, err := Pearson(x, constant); err != nil || r != 0 {
		t.Fatalf("constant series: r=%v err=%v", r, err)
	}
	if _, err := Pearson(x, []float64{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected too-few-points error")
	}
}

func TestPearsonIndependentNearZero(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 20000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.NormFloat64()
		y[i] = r.NormFloat64()
	}
	c, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c) > 0.05 {
		t.Fatalf("independent series correlation too large: %v", c)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.Mean() != 0 {
		t.Fatal("zero-value Welford must report zeros")
	}
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		w.Add(v)
	}
	if w.N() != len(vals) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Variance()-4) > 1e-12 {
		t.Fatalf("variance = %v, want 4", w.Variance())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", w.Std())
	}
}

func TestSamplerMeans(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	check := func(name string, s Sampler, n int, tol float64) {
		t.Helper()
		var w Welford
		for i := 0; i < n; i++ {
			w.Add(s.Sample(r))
		}
		if math.Abs(w.Mean()-s.Mean()) > tol*s.Mean() {
			t.Errorf("%s: empirical mean %v vs analytic %v", name, w.Mean(), s.Mean())
		}
	}
	check("lognormal", LognormalFromMoments(100, 0.3, 6), 100000, 0.02)
	check("exponential", Exponential{MeanValue: 42}, 100000, 0.02)
	check("uniform", Uniform{Lo: 10, Hi: 20}, 100000, 0.02)
	check("zipf", NewZipfWork(50, 0.5, 1.1, 10000), 100000, 0.02)
	check("scaled", Scaled{K: 3, S: Constant{V: 7}}, 10, 1e-12)
	mix := NewMixture(
		MixtureComponent{Weight: 0.7, Sampler: Constant{V: 10}},
		MixtureComponent{Weight: 0.3, Sampler: Constant{V: 20}},
	)
	check("mixture", mix, 100000, 0.02)
}

func TestLognormalFromMomentsCV(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	l := LognormalFromMoments(200, 0.5, 0)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(l.Sample(r))
	}
	cv := w.Std() / w.Mean()
	if math.Abs(cv-0.5) > 0.03 {
		t.Fatalf("cv = %v, want 0.5", cv)
	}
}

func TestLognormalClamp(t *testing.T) {
	l := LognormalFromMoments(100, 1.0, 3)
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 50000; i++ {
		if v := l.Sample(r); v > l.Max {
			t.Fatalf("sample %v exceeds clamp %v", v, l.Max)
		}
	}
}

func TestMixtureEdgeCases(t *testing.T) {
	empty := NewMixture()
	r := rand.New(rand.NewSource(1))
	if empty.Sample(r) != 0 || empty.Mean() != 0 {
		t.Fatal("empty mixture must sample/mean 0")
	}
}

func TestZipfWorkSkew(t *testing.T) {
	// Higher exponents concentrate mass on low ranks → lower mean work.
	flat := NewZipfWork(10, 1, 0.5, 1000)
	skew := NewZipfWork(10, 1, 2.0, 1000)
	if skew.Mean() >= flat.Mean() {
		t.Fatalf("skewed mean %v should be below flat mean %v", skew.Mean(), flat.Mean())
	}
}

func TestRollingWindowEviction(t *testing.T) {
	w := NewRollingWindow(100)
	for i := int64(0); i < 10; i++ {
		w.Add(i*50, float64(i))
	}
	// At t=450, span 100 → samples with T in (350, 450]: T=400, 450.
	if w.Len() != 2 {
		t.Fatalf("len = %d, want 2", w.Len())
	}
	vals := w.Values()
	if vals[0] != 8 || vals[1] != 9 {
		t.Fatalf("values = %v", vals)
	}
}

func TestRollingWindowPercentileAndMean(t *testing.T) {
	w := NewRollingWindow(1000)
	if w.Percentile(0.95) != 0 || w.Mean() != 0 {
		t.Fatal("empty window must report 0")
	}
	for i := 1; i <= 100; i++ {
		w.Add(int64(i), float64(i))
	}
	if got := w.Percentile(0.95); got != 95 {
		t.Fatalf("p95 = %v, want 95", got)
	}
	if got := w.Mean(); math.Abs(got-50.5) > 1e-12 {
		t.Fatalf("mean = %v, want 50.5", got)
	}
}

func TestRollingWindowAdvanceTo(t *testing.T) {
	w := NewRollingWindow(10)
	w.Add(0, 1)
	w.Add(5, 2)
	w.AdvanceTo(16)
	if w.Len() != 0 {
		t.Fatalf("len = %d, want 0 after advancing past span", w.Len())
	}
}

func TestRollingWindowCountSince(t *testing.T) {
	w := NewRollingWindow(1000)
	for _, ts := range []int64{10, 20, 30, 40, 50} {
		w.Add(ts, 1)
	}
	if n := w.CountSince(50, 25); n != 3 { // (25, 50] → 30, 40, 50
		t.Fatalf("CountSince = %d, want 3", n)
	}
	if n := w.CountSince(25, 25); n != 2 { // (0, 25] → 10, 20
		t.Fatalf("CountSince = %d, want 2", n)
	}
}

func TestRollingWindowCompaction(t *testing.T) {
	w := NewRollingWindow(10)
	for i := int64(0); i < 100000; i++ {
		w.Add(i, float64(i))
	}
	if w.Len() > 11 {
		t.Fatalf("window retained too many samples: %d", w.Len())
	}
	if cap(w.buf) > 1<<16 {
		t.Fatalf("window buffer never compacted: cap=%d", cap(w.buf))
	}
}
