package stats

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// ConvolutionPlan caches everything the FFT convolution pipeline derives
// from its transform size: the bit-reversal permutation, per-stage twiddle
// factors for both transform directions, and pooled complex scratch
// buffers. Rubik refreshes its target tail tables every 100 ms on every
// core (paper Sec. 4.2 budgets 0.2 ms per refresh), and the table
// dimensions — and therefore the transform size — never change between
// refreshes, so recomputing twiddles and reallocating scratch on each
// rebuild is pure waste. A plan is built once per size and reused for the
// lifetime of its table builder.
//
// The twiddle tables are generated with the exact same iterated
// w *= exp(i*step) recurrence the naive FFT/IFFT path uses, and the
// butterfly schedule is identical, so planned transforms — and everything
// layered on them — are bitwise-equal to the naive path, not merely close.
// Plan tests assert this.
//
// A plan owns its scratch buffers and is therefore NOT safe for concurrent
// use; each controller (core) holds its own.
type ConvolutionPlan struct {
	n   int
	rev []int
	// Flattened per-stage twiddles: the stage with half-size h (h = 1, 2,
	// 4, ..., n/2) occupies fwd[h-1 : 2h-1]. fwd holds the forward (-i)
	// roots, inv the inverse (+i) roots.
	fwd, inv []complex128
	// Pooled scratch for IterConvolutionsInto.
	fs, acc, tmp []complex128
}

// NewConvolutionPlan builds a plan for transforms of size n (a power of
// two).
func NewConvolutionPlan(n int) (*ConvolutionPlan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("stats: plan size %d is not a power of two", n)
	}
	p := &ConvolutionPlan{
		n:   n,
		rev: make([]int, n),
		fs:  make([]complex128, n),
		acc: make([]complex128, n),
		tmp: make([]complex128, n),
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	if n > 1 {
		p.fwd = make([]complex128, n-1)
		p.inv = make([]complex128, n-1)
		for size := 2; size <= n; size <<= 1 {
			half := size >> 1
			// Same recurrence as fft() so the stored values match the
			// naive path bit for bit.
			step := 2 * math.Pi / float64(size)
			wf := complex(1, 0)
			wi := complex(1, 0)
			wfBase := cmplx.Exp(complex(0, -step))
			wiBase := cmplx.Exp(complex(0, step))
			for k := 0; k < half; k++ {
				p.fwd[half-1+k] = wf
				p.inv[half-1+k] = wi
				wf *= wfBase
				wi *= wiBase
			}
		}
	}
	return p, nil
}

// Size returns the transform size the plan was built for.
func (p *ConvolutionPlan) Size() int { return p.n }

// Forward computes the in-place FFT of x using the precomputed tables.
// len(x) must equal Size().
func (p *ConvolutionPlan) Forward(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("stats: plan size %d, input size %d", p.n, len(x))
	}
	p.transform(x, p.fwd)
	return nil
}

// Inverse computes the in-place inverse FFT of x, including the 1/n
// scaling. len(x) must equal Size().
func (p *ConvolutionPlan) Inverse(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("stats: plan size %d, input size %d", p.n, len(x))
	}
	p.transform(x, p.inv)
	invN := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= invN
	}
	return nil
}

func (p *ConvolutionPlan) transform(x []complex128, tw []complex128) {
	for i, j := range p.rev {
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	fftStages(x, tw)
}

// transformFrom gathers src through the bit-reversal permutation into dst
// and runs the butterfly stages there, fusing the copy a caller would
// otherwise need before an in-place transform. The permutation is an
// involution, so the gather produces exactly the array copy-then-swap
// would; data movement only, bitwise-identical results.
func (p *ConvolutionPlan) transformFrom(dst, src []complex128, tw []complex128) {
	for i, j := range p.rev {
		dst[i] = src[j]
	}
	fftStages(dst, tw)
}

// fftStages runs the radix-2 butterfly cascade over an already
// bit-reversed x, for any power-of-two len(x). The twiddle layout is the
// plan layout (stage with half-size h at tw[h-1:2h-1]); because a stage's
// twiddles exp(±i*pi*k/h) do not depend on the transform size, one table
// built for size n serves every smaller power of two too — the packed
// pipeline's decimated inverse transforms lean on that.
func fftStages(x []complex128, tw []complex128) {
	n := len(x)
	// Every specialization below performs the identical floating-point
	// operations in the identical order as the plain nested loop (including
	// the multiplications by the unit twiddle, whose skipping could flip
	// signed zeros), so results stay bitwise-equal to the naive FFT path —
	// the plan tests assert it.
	if n >= 2 {
		// size == 2: one butterfly per block; a block loop with subslices
		// would spend more time slicing than computing.
		w := tw[0]
		for s := 1; s < n; s += 2 {
			a := x[s-1]
			b := x[s] * w
			x[s-1] = a + b
			x[s] = a - b
		}
	}
	if n >= 4 {
		// size == 4: two butterflies per block, twiddles held in registers.
		w0, w1 := tw[1], tw[2]
		for s := 3; s < n; s += 4 {
			a := x[s-3]
			b := x[s-1] * w0
			x[s-3] = a + b
			x[s-1] = a - b
			a = x[s-2]
			b = x[s] * w1
			x[s-2] = a + b
			x[s] = a - b
		}
	}
	for size := 8; size <= n; size <<= 1 {
		half := size >> 1
		ws := tw[half-1 : 2*half-1]
		for start := 0; start < n; start += size {
			// Per-block subslices let the compiler drop the bounds checks
			// in the butterfly: every index is bounded by len(xa).
			xa := x[start : start+half]
			xb := x[start+half : start+size][:len(xa)]
			wk := ws[:len(xa)]
			for k := range xa {
				a := xa[k]
				b := xb[k] * wk[k]
				xa[k] = a + b
				xb[k] = a - b
			}
		}
	}
}

// PlanSizeFor returns the transform size IterConvolutionsInto uses for a
// chain of count convolutions of an s0Len-bucket PMF with an sLen-bucket
// PMF — the size to pass to NewConvolutionPlan.
func PlanSizeFor(s0Len, sLen, count int) int {
	maxLen := s0Len + (count-1)*(sLen-1)
	if maxLen < s0Len {
		maxLen = s0Len
	}
	return nextPow2(maxLen)
}

// IterConvolutionsInto computes the same sequence of distributions as
// IterConvolutions — S_i = s0 + i-fold sum of s for i = 0..len(dst)-1 —
// writing into dst and reusing each dst[i].P backing array when its
// capacity allows. With warm destination buffers it performs zero
// allocations; the results are bitwise-equal to IterConvolutions. The plan
// must have been built for exactly PlanSizeFor(len(s0.P), len(s.P),
// len(dst)).
func (p *ConvolutionPlan) IterConvolutionsInto(dst []PMF, s0, s PMF) error {
	count := len(dst)
	if count <= 0 {
		return fmt.Errorf("stats: IterConvolutions count must be positive")
	}
	if len(s0.P) == 0 || len(s.P) == 0 {
		return fmt.Errorf("stats: IterConvolutions empty PMF")
	}
	if !widthsCompatible(s0.Width, s.Width) {
		return fmt.Errorf("stats: IterConvolutions width mismatch: %g vs %g", s0.Width, s.Width)
	}
	if want := PlanSizeFor(len(s0.P), len(s.P), count); want != p.n {
		return fmt.Errorf("stats: plan size %d, chain needs %d", p.n, want)
	}
	// Two single-destination loops so each compiles to a memclr.
	for i := range p.fs {
		p.fs[i] = 0
	}
	for i := range p.acc {
		p.acc[i] = 0
	}
	// When count == 1 the output is just s0 and fs is never multiplied in;
	// skipping it also matters for correctness, since the plan is sized
	// for the chain and can be smaller than len(s.P) in that case.
	if count > 1 {
		for i, v := range s.P {
			p.fs[i] = complex(v, 0)
		}
		p.transform(p.fs, p.fwd)
	}
	for i, v := range s0.P {
		p.acc[i] = complex(v, 0)
	}
	p.transform(p.acc, p.fwd)

	invN := complex(1/float64(p.n), 0)
	for i := 0; i < count; i++ {
		p.transformFrom(p.tmp, p.acc, p.inv)
		length := len(s0.P) + i*(len(s.P)-1)
		buf := dst[i].P
		if cap(buf) < length {
			buf = make([]float64, length)
		} else {
			buf = buf[:length]
		}
		for k := 0; k < length; k++ {
			v := real(p.tmp[k] * invN)
			if v < 0 { // numeric noise
				v = 0
			}
			buf[k] = v
		}
		dst[i] = PMF{
			// Each convolution adds s.Origin plus the half-width midpoint
			// correction (see Convolve).
			Origin: s0.Origin + float64(i)*(s.Origin+s0.Width/2),
			Width:  s0.Width,
			P:      buf,
		}
		if i < count-1 {
			for k := range p.acc {
				p.acc[k] *= p.fs[k]
			}
		}
	}
	return nil
}
