package stats

import "sort"

// TimedSample is one (timestamp, value) observation in a rolling window.
// Timestamps are int64 nanoseconds, matching the simulator clock.
type TimedSample struct {
	T int64
	V float64
}

// RollingWindow keeps the samples from the trailing Span nanoseconds.
// It backs three measurement paths from the paper:
//   - rolling 200 ms tail-latency traces (Figs. 1b, 10),
//   - the instantaneous-QPS CDF over a rolling 5 ms window (Fig. 2a),
//   - the PI feedback controller's rolling 1 s measured tail (Sec. 4.2).
//
// Samples must be added in non-decreasing timestamp order.
type RollingWindow struct {
	Span int64
	buf  []TimedSample
	head int
}

// NewRollingWindow returns a window covering the trailing span nanoseconds.
func NewRollingWindow(span int64) *RollingWindow {
	return &RollingWindow{Span: span}
}

// Add appends an observation and evicts samples older than T - Span.
func (w *RollingWindow) Add(t int64, v float64) {
	w.buf = append(w.buf, TimedSample{T: t, V: v})
	w.trim(t)
}

// trim drops samples with timestamp <= t-Span and compacts occasionally.
func (w *RollingWindow) trim(t int64) {
	cut := t - w.Span
	for w.head < len(w.buf) && w.buf[w.head].T <= cut {
		w.head++
	}
	if w.head > 1024 && w.head*2 > len(w.buf) {
		n := copy(w.buf, w.buf[w.head:])
		w.buf = w.buf[:n]
		w.head = 0
	}
}

// AdvanceTo evicts samples that fall out of the window as of time t without
// adding a new one.
func (w *RollingWindow) AdvanceTo(t int64) { w.trim(t) }

// Len returns the number of live samples.
func (w *RollingWindow) Len() int { return len(w.buf) - w.head }

// Values returns a copy of the live sample values in arrival order.
func (w *RollingWindow) Values() []float64 {
	out := make([]float64, 0, w.Len())
	for _, s := range w.buf[w.head:] {
		out = append(out, s.V)
	}
	return out
}

// Percentile returns the q-quantile of the live values (0 if empty).
func (w *RollingWindow) Percentile(q float64) float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	vals := w.Values()
	sort.Float64s(vals)
	return percentileSorted(vals, q)
}

// Mean returns the mean of the live values (0 if empty).
func (w *RollingWindow) Mean() float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	var sum float64
	for _, s := range w.buf[w.head:] {
		sum += s.V
	}
	return sum / float64(n)
}

// CountSince returns how many live samples have timestamps in (t-span, t].
// The Fig. 2a instantaneous-QPS measurement uses this with span = 5 ms.
func (w *RollingWindow) CountSince(t, span int64) int {
	cut := t - span
	n := 0
	for i := len(w.buf) - 1; i >= w.head; i-- {
		if w.buf[i].T <= cut {
			break
		}
		if w.buf[i].T <= t {
			n++
		}
	}
	return n
}
