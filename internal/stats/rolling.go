package stats

import "math"

// TimedSample is one (timestamp, value) observation in a rolling window.
// Timestamps are int64 nanoseconds, matching the simulator clock.
type TimedSample struct {
	T int64
	V float64
}

// RollingWindow keeps the samples from the trailing Span nanoseconds.
// It backs three measurement paths from the paper:
//   - rolling 200 ms tail-latency traces (Figs. 1b, 10),
//   - the instantaneous-QPS CDF over a rolling 5 ms window (Fig. 2a),
//   - the PI feedback controller's rolling 1 s measured tail (Sec. 4.2).
//
// Samples must be added in non-decreasing timestamp order.
type RollingWindow struct {
	Span int64
	buf  []TimedSample
	head int
	// scratch backs Percentile's selection so the per-tick feedback
	// measurement is allocation-free in steady state.
	scratch []float64
}

// NewRollingWindow returns a window covering the trailing span nanoseconds.
func NewRollingWindow(span int64) *RollingWindow {
	return &RollingWindow{Span: span}
}

// Add appends an observation and evicts samples older than T - Span.
func (w *RollingWindow) Add(t int64, v float64) {
	w.buf = append(w.buf, TimedSample{T: t, V: v})
	w.trim(t)
}

// trim drops samples with timestamp <= t-Span and compacts occasionally.
func (w *RollingWindow) trim(t int64) {
	cut := t - w.Span
	for w.head < len(w.buf) && w.buf[w.head].T <= cut {
		w.head++
	}
	if w.head > 1024 && w.head*2 > len(w.buf) {
		n := copy(w.buf, w.buf[w.head:])
		w.buf = w.buf[:n]
		w.head = 0
	}
}

// AdvanceTo evicts samples that fall out of the window as of time t without
// adding a new one.
func (w *RollingWindow) AdvanceTo(t int64) { w.trim(t) }

// Len returns the number of live samples.
func (w *RollingWindow) Len() int { return len(w.buf) - w.head }

// Values returns a copy of the live sample values in arrival order.
func (w *RollingWindow) Values() []float64 {
	out := make([]float64, 0, w.Len())
	for _, s := range w.buf[w.head:] {
		out = append(out, s.V)
	}
	return out
}

// Percentile returns the q-quantile of the live values (0 if empty). It
// selects the same nearest-rank order statistic the sort-based
// implementation returned, via an O(n) quickselect over a reused scratch
// buffer: controllers measure their feedback tail every tick, and a full
// sort plus copy per tick dominated the measurement cost.
func (w *RollingWindow) Percentile(q float64) float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	if cap(w.scratch) < n {
		w.scratch = make([]float64, n)
	}
	s := w.scratch[:0]
	for _, smp := range w.buf[w.head:] {
		s = append(s, smp.V)
	}
	if q > 1 {
		q = 1
	}
	rank := 0
	if q > 0 {
		rank = int(math.Ceil(q*float64(n))) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= n {
			rank = n - 1
		}
	}
	return selectKth(s, rank)
}

// selectKth returns the k-th smallest element of s (0-based), partially
// reordering s in place. The returned value is the order statistic itself,
// so it is identical to sorting and indexing regardless of pivot choices.
func selectKth(s []float64, k int) float64 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		// Median-of-three pivot: order s[lo], s[mid], s[hi].
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		p := s[mid]
		i, j := lo, hi
		for i <= j {
			for s[i] < p {
				i++
			}
			for s[j] > p {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return s[k]
		}
	}
	return s[k]
}

// Mean returns the mean of the live values (0 if empty).
func (w *RollingWindow) Mean() float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	var sum float64
	for _, s := range w.buf[w.head:] {
		sum += s.V
	}
	return sum / float64(n)
}

// CountSince returns how many live samples have timestamps in (t-span, t].
// The Fig. 2a instantaneous-QPS measurement uses this with span = 5 ms.
func (w *RollingWindow) CountSince(t, span int64) int {
	cut := t - span
	n := 0
	for i := len(w.buf) - 1; i >= w.head; i-- {
		if w.buf[i].T <= cut {
			break
		}
		if w.buf[i].T <= t {
			n++
		}
	}
	return n
}
