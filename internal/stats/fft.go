package stats

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two. The paper's runtime uses
// FFTs to accelerate the i-fold convolutions behind the target tail tables
// (Sec. 4.2: "We use 128-bucket distributions, and use FFTs to accelerate
// convolutions").
func FFT(x []complex128) error {
	return fft(x, false)
}

// IFFT computes the inverse FFT of x in place, including the 1/n scaling.
func IFFT(x []complex128) error {
	return fft(x, true)
}

func fft(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("stats: FFT size %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// ConvolveFFT returns the same result as Convolve but computed via FFT.
// It exists both to mirror the paper's implementation and because the
// target-tail-table refresh convolves the service distribution with itself
// up to 16 times per update.
func ConvolveFFT(a, b PMF) (PMF, error) {
	if len(a.P) == 0 || len(b.P) == 0 {
		return PMF{}, fmt.Errorf("stats: convolve empty PMF")
	}
	if !widthsCompatible(a.Width, b.Width) {
		return PMF{}, fmt.Errorf("stats: convolve width mismatch: %g vs %g", a.Width, b.Width)
	}
	outLen := len(a.P) + len(b.P) - 1
	n := nextPow2(outLen)
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i, v := range a.P {
		fa[i] = complex(v, 0)
	}
	for i, v := range b.P {
		fb[i] = complex(v, 0)
	}
	if err := FFT(fa); err != nil {
		return PMF{}, err
	}
	if err := FFT(fb); err != nil {
		return PMF{}, err
	}
	for i := range fa {
		fa[i] *= fb[i]
	}
	if err := IFFT(fa); err != nil {
		return PMF{}, err
	}
	out := make([]float64, outLen)
	for i := range out {
		v := real(fa[i])
		if v < 0 { // numeric noise
			v = 0
		}
		out[i] = v
	}
	return PMF{Origin: a.Origin + b.Origin + a.Width/2, Width: a.Width, P: out}, nil
}

// IterConvolutions computes the distributions of S_i = s0 + i-fold sum of s
// for i = 0..count-1, sharing a single forward FFT of s across iterations.
// This is exactly the sequence of distributions Rubik's target tail tables
// need (Sec. 4.1: PS_i = PS_0 * PS * ... * PS).
func IterConvolutions(s0, s PMF, count int) ([]PMF, error) {
	if count <= 0 {
		return nil, fmt.Errorf("stats: IterConvolutions count must be positive")
	}
	if len(s0.P) == 0 || len(s.P) == 0 {
		return nil, fmt.Errorf("stats: IterConvolutions empty PMF")
	}
	if !widthsCompatible(s0.Width, s.Width) {
		return nil, fmt.Errorf("stats: IterConvolutions width mismatch: %g vs %g", s0.Width, s.Width)
	}
	maxLen := len(s0.P) + (count-1)*(len(s.P)-1)
	if maxLen < len(s0.P) {
		maxLen = len(s0.P)
	}
	n := nextPow2(maxLen)
	fs := make([]complex128, n)
	// When count == 1 the output is just s0 and fs is never multiplied in;
	// skipping it also matters for correctness, since n is sized for the
	// chain and can be smaller than len(s.P) in that case.
	if count > 1 {
		for i, v := range s.P {
			fs[i] = complex(v, 0)
		}
		if err := FFT(fs); err != nil {
			return nil, err
		}
	}
	acc := make([]complex128, n)
	for i, v := range s0.P {
		acc[i] = complex(v, 0)
	}
	if err := FFT(acc); err != nil {
		return nil, err
	}

	out := make([]PMF, count)
	scratch := make([]complex128, n)
	for i := 0; i < count; i++ {
		copy(scratch, acc)
		if err := IFFT(scratch); err != nil {
			return nil, err
		}
		length := len(s0.P) + i*(len(s.P)-1)
		p := make([]float64, length)
		for k := 0; k < length; k++ {
			v := real(scratch[k])
			if v < 0 {
				v = 0
			}
			p[k] = v
		}
		out[i] = PMF{
			// Each convolution adds s.Origin plus the half-width midpoint
			// correction (see Convolve).
			Origin: s0.Origin + float64(i)*(s.Origin+s0.Width/2),
			Width:  s0.Width,
			P:      p,
		}
		if i < count-1 {
			for k := range acc {
				acc[k] *= fs[k]
			}
		}
	}
	return out, nil
}
