package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPMF(r *rand.Rand, n int, origin, width float64) PMF {
	p := make([]float64, n)
	var tot float64
	for i := range p {
		p[i] = r.Float64()
		tot += p[i]
	}
	for i := range p {
		p[i] /= tot
	}
	return PMF{Origin: origin, Width: width, P: p}
}

func TestNewConvolutionPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 12, 1000} {
		if _, err := NewConvolutionPlan(n); err == nil {
			t.Fatalf("plan size %d must be rejected", n)
		}
	}
}

func TestPlanTransformsMatchNaiveBitwise(t *testing.T) {
	// The plan's precomputed twiddles come from the same recurrence as the
	// naive FFT/IFFT, so transforms must agree to the last bit.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << r.Intn(11) // 1..1024
		plan, err := NewConvolutionPlan(n)
		if err != nil {
			return false
		}
		a := make([]complex128, n)
		b := make([]complex128, n)
		for i := range a {
			a[i] = complex(r.NormFloat64(), r.NormFloat64())
			b[i] = a[i]
		}
		if err := FFT(a); err != nil {
			return false
		}
		if err := plan.Forward(b); err != nil {
			return false
		}
		for i := range a {
			if !sameBits(real(a[i]), real(b[i])) || !sameBits(imag(a[i]), imag(b[i])) {
				return false
			}
		}
		if err := IFFT(a); err != nil {
			return false
		}
		if err := plan.Inverse(b); err != nil {
			return false
		}
		for i := range a {
			if !sameBits(real(a[i]), real(b[i])) || !sameBits(imag(a[i]), imag(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestIterConvolutionsIntoMatchesNaiveBitwise is the pipeline's core
// equivalence property: the planned, allocation-free convolution chain
// must reproduce IterConvolutions bit for bit, including on non-power-of-
// two bucket counts and degenerate single-bucket PMFs, so the table
// rebuild swap cannot perturb any experiment.
func TestIterConvolutionsIntoMatchesNaiveBitwise(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		width := 0.25 + r.Float64()
		s0 := randomPMF(r, 1+r.Intn(130), float64(r.Intn(10)), width)
		s := randomPMF(r, 1+r.Intn(130), float64(r.Intn(10)), width)
		count := 1 + r.Intn(20)
		want, err := IterConvolutions(s0, s, count)
		if err != nil {
			return false
		}
		plan, err := NewConvolutionPlan(PlanSizeFor(len(s0.P), len(s.P), count))
		if err != nil {
			return false
		}
		got := make([]PMF, count)
		// Two rounds: the second reuses the first round's destination
		// buffers and the plan's scratch, proving reuse changes nothing.
		for round := 0; round < 2; round++ {
			if err := plan.IterConvolutionsInto(got, s0, s); err != nil {
				return false
			}
			for i := range want {
				if !sameBits(got[i].Origin, want[i].Origin) || !sameBits(got[i].Width, want[i].Width) {
					return false
				}
				if len(got[i].P) != len(want[i].P) {
					return false
				}
				for k := range want[i].P {
					if !sameBits(got[i].P[k], want[i].P[k]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIterConvolutionsIntoDegenerateSingleBucket(t *testing.T) {
	// A degenerate profile (all samples equal) yields a single-bucket PMF;
	// the chain is then a sequence of deltas and needs a size-1 plan.
	d := PMF{Origin: 5, Width: 1, P: []float64{1}}
	const count = 4
	want, err := IterConvolutions(d, d, count)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewConvolutionPlan(PlanSizeFor(1, 1, count))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Size() != 1 {
		t.Fatalf("delta chain plan size %d, want 1", plan.Size())
	}
	got := make([]PMF, count)
	if err := plan.IterConvolutionsInto(got, d, d); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !sameBits(got[i].Origin, want[i].Origin) || len(got[i].P) != 1 ||
			!sameBits(got[i].P[0], want[i].P[0]) {
			t.Fatalf("i=%d got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestIterConvolutionsIntoValidation(t *testing.T) {
	ok := PMF{Origin: 0, Width: 1, P: []float64{1}}
	plan, err := NewConvolutionPlan(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.IterConvolutionsInto(nil, ok, ok); err == nil {
		t.Fatal("expected error for empty dst")
	}
	if err := plan.IterConvolutionsInto(make([]PMF, 2), PMF{}, ok); err == nil {
		t.Fatal("expected error for empty s0")
	}
	bad := PMF{Origin: 0, Width: 3, P: []float64{1}}
	if err := plan.IterConvolutionsInto(make([]PMF, 2), ok, bad); err == nil {
		t.Fatal("expected width mismatch error")
	}
	// Mismatched plan size must be rejected, not silently mis-transformed.
	big := randomPMF(rand.New(rand.NewSource(1)), 64, 0, 1)
	if err := plan.IterConvolutionsInto(make([]PMF, 8), big, big); err == nil {
		t.Fatal("expected plan size mismatch error")
	}
	if err := plan.Forward(make([]complex128, 2)); err == nil {
		t.Fatal("expected size error from Forward")
	}
	if err := plan.Inverse(make([]complex128, 2)); err == nil {
		t.Fatal("expected size error from Inverse")
	}
}

func TestIterConvolutionsIntoAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := randomPMF(r, 128, 0, 1000)
	plan, err := NewConvolutionPlan(PlanSizeFor(128, 128, 16))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]PMF, 16)
	if err := plan.IterConvolutionsInto(dst, d, d); err != nil { // warm buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := plan.IterConvolutionsInto(dst, d, d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm IterConvolutionsInto allocates %v/op, want 0", allocs)
	}
}
