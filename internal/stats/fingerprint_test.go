package stats

import (
	"hash/fnv"
	"math"
	"testing"
)

// TestHash64MatchesStdFNV pins Hash64 to the standard library's FNV-1a:
// folding a uint64 low byte first must equal hashing those eight bytes
// through hash/fnv.
func TestHash64MatchesStdFNV(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xff, 1 << 63, 0xdeadbeefcafef00d, math.MaxUint64} {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		ref := fnv.New64a()
		ref.Write(b[:])
		if got := NewHash64().Uint64(v).Sum(); got != ref.Sum64() {
			t.Errorf("Uint64(%#x) = %#x, want FNV-1a %#x", v, got, ref.Sum64())
		}
	}
}

// TestHash64Deterministic checks that identical chains produce identical
// fingerprints and that every folded value influences the result.
func TestHash64Deterministic(t *testing.T) {
	build := func() uint64 {
		return NewHash64().Float64(0.95).Int(128).Float64s([]float64{0.25, 0.75}).Sum()
	}
	if build() != build() {
		t.Fatal("same chain hashed to different fingerprints")
	}
	base := build()
	variants := []uint64{
		NewHash64().Float64(0.99).Int(128).Float64s([]float64{0.25, 0.75}).Sum(),
		NewHash64().Float64(0.95).Int(64).Float64s([]float64{0.25, 0.75}).Sum(),
		NewHash64().Float64(0.95).Int(128).Float64s([]float64{0.25, 0.5}).Sum(),
		NewHash64().Float64(0.95).Int(128).Float64s([]float64{0.75, 0.25}).Sum(),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d hashed equal to base %#x", i, base)
		}
	}
}

// TestHash64BitSensitivity checks the raw-bits contract: +0 and -0
// compare == as floats but must fingerprint differently.
func TestHash64BitSensitivity(t *testing.T) {
	pos := NewHash64().Float64(0.0).Sum()
	neg := NewHash64().Float64(math.Copysign(0, -1)).Sum()
	if pos == neg {
		t.Fatal("+0 and -0 fingerprint equal; hash must see raw bits")
	}
}

// TestHash64LengthPrefix checks that slice boundaries are part of the
// fingerprint: the same values split differently must hash differently.
func TestHash64LengthPrefix(t *testing.T) {
	joined := NewHash64().Float64s([]float64{1, 2}).Float64s(nil).Sum()
	split := NewHash64().Float64s([]float64{1}).Float64s([]float64{2}).Sum()
	if joined == split {
		t.Fatal("[1,2]+[] and [1]+[2] fingerprint equal; length prefix missing")
	}
}
