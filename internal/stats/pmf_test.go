package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewPMFFromSamplesErrors(t *testing.T) {
	if _, err := NewPMFFromSamples(nil, 128); err == nil {
		t.Fatal("expected error for empty samples")
	}
	if _, err := NewPMFFromSamples([]float64{1}, 0); err == nil {
		t.Fatal("expected error for zero buckets")
	}
	if _, err := NewPMFFromSamples([]float64{math.NaN()}, 8); err == nil {
		t.Fatal("expected error for NaN sample")
	}
	if _, err := NewPMFFromSamples([]float64{math.Inf(1)}, 8); err == nil {
		t.Fatal("expected error for Inf sample")
	}
}

func TestNewPMFFromSamplesDegenerate(t *testing.T) {
	d, err := NewPMFFromSamples([]float64{5, 5, 5}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.P) != 1 || d.P[0] != 1 {
		t.Fatalf("degenerate PMF not single bucket: %+v", d)
	}
	if d.Origin != 5 {
		t.Fatalf("degenerate origin = %v, want 5", d.Origin)
	}
	if q := d.Quantile(0.95); q < 5 {
		t.Fatalf("degenerate quantile %v < 5", q)
	}
}

func TestPMFMassIsOne(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	samples := make([]float64, 10000)
	for i := range samples {
		samples[i] = r.NormFloat64()*3 + 10
	}
	d, err := NewPMFFromSamples(samples, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(d.Mass(), 1, 1e-9) {
		t.Fatalf("mass = %v, want 1", d.Mass())
	}
}

func TestPMFMeanVarianceMatchSamples(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	samples := make([]float64, 50000)
	var w Welford
	for i := range samples {
		samples[i] = math.Exp(r.NormFloat64()*0.4 + 1)
		w.Add(samples[i])
	}
	d, err := NewPMFFromSamples(samples, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(d.Mean(), w.Mean(), 0.05*w.Mean()) {
		t.Fatalf("PMF mean %v, sample mean %v", d.Mean(), w.Mean())
	}
	if !approxEqual(d.Variance(), w.Variance(), 0.1*w.Variance()+0.01) {
		t.Fatalf("PMF var %v, sample var %v", d.Variance(), w.Variance())
	}
}

func TestQuantileIsConservative(t *testing.T) {
	// Quantile must return a value whose CDF is at least q.
	r := rand.New(rand.NewSource(3))
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = r.ExpFloat64() * 100
	}
	d, err := NewPMFFromSamples(samples, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0} {
		x := d.Quantile(q)
		if cdf := d.CDF(x); cdf+1e-9 < q {
			t.Errorf("CDF(Quantile(%v)) = %v < q", q, cdf)
		}
	}
}

func TestQuantileMonotonic(t *testing.T) {
	// Property: for any sample set, quantiles are monotone in q.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(500)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = r.Float64() * 1000
		}
		d, err := NewPMFFromSamples(samples, 64)
		if err != nil {
			return false
		}
		prev := math.Inf(-1)
		for q := 0.05; q <= 1.0; q += 0.05 {
			x := d.Quantile(q)
			if x < prev-1e-9 {
				return false
			}
			prev = x
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConditionAtLeastZeroIsIdentityShift(t *testing.T) {
	d := PMF{Origin: 10, Width: 2, P: []float64{0.25, 0.25, 0.5}}
	c := d.ConditionAtLeast(0)
	if c.Origin != 10 {
		t.Fatalf("origin = %v, want 10", c.Origin)
	}
	for i := range d.P {
		if c.P[i] != d.P[i] {
			t.Fatalf("P[%d] changed: %v vs %v", i, c.P[i], d.P[i])
		}
	}
	// Conditioning below the support shifts values exactly.
	c = d.ConditionAtLeast(4)
	if c.Origin != 6 {
		t.Fatalf("origin = %v, want 6", c.Origin)
	}
}

func TestConditionAtLeastRenormalizes(t *testing.T) {
	d := PMF{Origin: 0, Width: 1, P: []float64{0.5, 0.3, 0.2}}
	c := d.ConditionAtLeast(1.2) // conditions at boundary 1.0
	if !approxEqual(c.Mass(), 1, 1e-12) {
		t.Fatalf("mass = %v, want 1", c.Mass())
	}
	if len(c.P) != 2 {
		t.Fatalf("len = %d, want 2", len(c.P))
	}
	if !approxEqual(c.P[0], 0.6, 1e-12) || !approxEqual(c.P[1], 0.4, 1e-12) {
		t.Fatalf("P = %v, want [0.6 0.4]", c.P)
	}
	if c.Origin != 0 {
		t.Fatalf("origin = %v, want 0", c.Origin)
	}
}

func TestConditionAtLeastExhausted(t *testing.T) {
	d := PMF{Origin: 0, Width: 1, P: []float64{0.5, 0.5}}
	c := d.ConditionAtLeast(10)
	if !approxEqual(c.Mass(), 1, 1e-12) {
		t.Fatalf("exhausted conditioning must still return mass 1, got %v", c.Mass())
	}
}

func TestConditionAtLeastIsConservativeAtBoundaries(t *testing.T) {
	// Property: when conditioning exactly at a bucket boundary b (which is
	// what Rubik's octile rows do), the conditioned tail quantile
	// upper-bounds the empirical remaining-work quantile of the samples at
	// or above b. Off-boundary conditioning is only approximate — Rubik
	// quantizes omega to a row boundary before consulting the table.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		samples := make([]float64, 2000)
		for i := range samples {
			samples[i] = 100 + r.ExpFloat64()*50
		}
		d, err := NewPMFFromSamples(samples, 128)
		if err != nil {
			return false
		}
		k := r.Intn(len(d.P) / 2)
		b := d.Origin + float64(k)*d.Width
		cond := d.ConditionAtLeast(b)
		var remaining []float64
		for _, s := range samples {
			if s >= b {
				remaining = append(remaining, s-b)
			}
		}
		if len(remaining) < 20 {
			return true // too few survivors to compare
		}
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			if cond.Quantile(q) < Percentile(remaining, q)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveMatchesMoments(t *testing.T) {
	// Property: mean(a*b) = mean(a)+mean(b), var(a*b) = var(a)+var(b).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() PMF {
			n := 2 + r.Intn(40)
			p := make([]float64, n)
			var tot float64
			for i := range p {
				p[i] = r.Float64()
				tot += p[i]
			}
			for i := range p {
				p[i] /= tot
			}
			return PMF{Origin: r.Float64() * 10, Width: 0.5, P: p}
		}
		a, b := mk(), mk()
		c, err := Convolve(a, b)
		if err != nil {
			return false
		}
		meanOK := approxEqual(c.Mean(), a.Mean()+b.Mean(), 1e-6)
		varOK := approxEqual(c.Variance(), a.Variance()+b.Variance(), 1e-6)
		massOK := approxEqual(c.Mass(), 1, 1e-9)
		return meanOK && varOK && massOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveWidthMismatch(t *testing.T) {
	a := PMF{Origin: 0, Width: 1, P: []float64{1}}
	b := PMF{Origin: 0, Width: 2, P: []float64{1}}
	if _, err := Convolve(a, b); err == nil {
		t.Fatal("expected width mismatch error")
	}
	if _, err := ConvolveFFT(a, b); err == nil {
		t.Fatal("expected width mismatch error (FFT)")
	}
}

func TestRescalePreservesMassAndMean(t *testing.T) {
	d := PMF{Origin: 3, Width: 1, P: []float64{0.2, 0.3, 0.5}}
	r := d.Rescale(0.4)
	if !approxEqual(r.Mass(), 1, 1e-9) {
		t.Fatalf("mass = %v", r.Mass())
	}
	if !approxEqual(r.Mean(), d.Mean(), d.Width) {
		t.Fatalf("mean drifted: %v vs %v", r.Mean(), d.Mean())
	}
	// Rescaling to the same width is a no-op.
	same := d.Rescale(1)
	if len(same.P) != len(d.P) {
		t.Fatalf("same-width rescale changed shape")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	s := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.2, 1}, {0.4, 2}, {0.5, 3}, {0.95, 5}, {1.0, 5}, {0, 1},
	}
	for _, c := range cases {
		if got := Percentile(s, c.q); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

// TestQuantileFromCumMatchesQuantileBitwise pins the CDF-once rebuild
// optimization: for nonnegative PMFs (the profiler only produces those),
// one CumSumInto pass plus QuantileFromCum must reproduce the per-call
// Quantile scan bit for bit at every q, including the q<=0 / q>1 clamps
// and the octile row-bound grid the table rebuild actually queries.
func TestQuantileFromCumMatchesQuantileBitwise(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		p := make([]float64, n)
		for i := range p {
			// Occasional zero runs exercise ties in the running mass.
			if r.Intn(4) == 0 {
				p[i] = 0
			} else {
				p[i] = r.Float64() * math.Pow(10, float64(r.Intn(6)-3))
			}
		}
		d := PMF{Origin: float64(r.Intn(10)), Width: 0.25 + r.Float64(), P: p}
		cum := d.CumSumInto(nil)
		qs := []float64{-0.5, 0, 1e-9, 0.25, 0.5, 0.9, 0.95, 0.999, 1, 1.5}
		for rows := 1; rows <= 8; rows++ {
			for k := 0; k < rows; k++ {
				qs = append(qs, float64(k)/float64(rows))
			}
		}
		for i := 0; i < 32; i++ {
			qs = append(qs, r.Float64())
		}
		for _, q := range qs {
			want := d.Quantile(q)
			got := d.QuantileFromCum(cum, q)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("q=%v: QuantileFromCum %v, Quantile %v (n=%d)", q, got, want, n)
			}
		}
		// Reuse: a second pass into the same buffer changes nothing.
		cum2 := d.CumSumInto(cum)
		for i := range cum {
			if math.Float64bits(cum2[i]) != math.Float64bits(cum[i]) {
				t.Fatalf("CumSumInto reuse changed entry %d", i)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileFromCumEmpty(t *testing.T) {
	var d PMF
	if got := d.QuantileFromCum(nil, 0.5); got != 0 {
		t.Fatalf("empty PMF quantile %v, want 0", got)
	}
	if cum := d.CumSumInto(nil); len(cum) != 0 {
		t.Fatalf("empty PMF cum length %d", len(cum))
	}
}
