package stats

import (
	"fmt"
	"math"
)

// LogHistogram is a fixed-size geometric-bucket histogram for streaming
// quantile estimates over positive values spanning several decades
// (response latencies). Memory is constant — a few hundred counters —
// regardless of how many values are observed, which is what lets the
// streaming simulation paths drop the per-request completion log while
// still reporting tails. Bucket i covers [Lo·r^i, Lo·r^(i+1)); the
// relative quantile error is bounded by the bucket ratio r.
type LogHistogram struct {
	lo       float64
	logLo    float64
	logRatio float64
	counts   []uint64
	under    uint64 // values below lo (reported as lo)
	over     uint64 // values at or above the top edge (reported as the top edge)
	total    uint64
	sum      float64
}

// NewLogHistogram builds a histogram covering [lo, hi) with perDecade
// geometric buckets per factor-of-10.
func NewLogHistogram(lo, hi float64, perDecade int) (*LogHistogram, error) {
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: log histogram needs 0 < lo < hi, got [%g, %g)", lo, hi)
	}
	if perDecade <= 0 {
		return nil, fmt.Errorf("stats: log histogram needs perDecade > 0, got %d", perDecade)
	}
	n := int(math.Ceil(math.Log10(hi/lo) * float64(perDecade)))
	if n < 1 {
		n = 1
	}
	return &LogHistogram{
		lo:       lo,
		logLo:    math.Log(lo),
		logRatio: math.Ln10 / float64(perDecade),
		counts:   make([]uint64, n),
	}, nil
}

// NewResponseHistogram returns the histogram geometry the streaming
// simulation paths use for response latencies: 100 ns to 1000 s at 32
// buckets per decade (≈7.5% relative bucket width).
func NewResponseHistogram() *LogHistogram {
	h, err := NewLogHistogram(100, 1e12, 32)
	if err != nil {
		panic(err) // constants above are valid
	}
	return h
}

// Observe records one value. Non-positive and below-range values land in
// the underflow bucket; values at or above the top edge in the overflow
// bucket.
func (h *LogHistogram) Observe(v float64) {
	h.total++
	h.sum += v
	if v < h.lo {
		h.under++
		return
	}
	i := int((math.Log(v) - h.logLo) / h.logRatio)
	if i >= len(h.counts) {
		h.over++
		return
	}
	if i < 0 { // float rounding at the lower edge
		i = 0
	}
	h.counts[i]++
}

// Count returns the number of observed values.
func (h *LogHistogram) Count() uint64 { return h.total }

// Mean returns the exact mean of the observed values (the sum is tracked
// outside the buckets).
func (h *LogHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// edge returns the lower edge of bucket i.
func (h *LogHistogram) edge(i int) float64 {
	return math.Exp(h.logLo + float64(i)*h.logRatio)
}

// Quantile returns the nearest-rank q-quantile, reported as the geometric
// midpoint of the bucket holding the rank (the maximum relative error is
// half the bucket width). Returns 0 when empty.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	if rank <= h.under {
		return h.lo
	}
	seen := h.under
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return math.Sqrt(h.edge(i) * h.edge(i+1))
		}
	}
	return h.edge(len(h.counts))
}

// FracAbove returns the fraction of observed values above v, to bucket
// resolution: whole buckets strictly above v count fully, and the bucket
// containing v counts iff its geometric midpoint exceeds v (the same
// midpoint convention Quantile reports). Returns 0 when empty.
func (h *LogHistogram) FracAbove(v float64) float64 {
	if h.total == 0 {
		return 0
	}
	above := h.over
	if v < h.lo {
		above += h.under
		for _, c := range h.counts {
			above += c
		}
		return float64(above) / float64(h.total)
	}
	i := int((math.Log(v) - h.logLo) / h.logRatio)
	if i >= len(h.counts) {
		return float64(above) / float64(h.total)
	}
	if i < 0 {
		i = 0
	}
	for j := i + 1; j < len(h.counts); j++ {
		above += h.counts[j]
	}
	if math.Sqrt(h.edge(i)*h.edge(i+1)) > v {
		above += h.counts[i]
	}
	return float64(above) / float64(h.total)
}

// Merge adds another histogram's counts into h. Both must share the same
// geometry (same lo and buckets), which all NewResponseHistogram
// instances do.
func (h *LogHistogram) Merge(o *LogHistogram) error {
	if o == nil {
		return nil
	}
	if h.lo != o.lo || h.logRatio != o.logRatio || len(h.counts) != len(o.counts) {
		return fmt.Errorf("stats: merging log histograms with different geometry")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.total += o.total
	h.sum += o.sum
	return nil
}
