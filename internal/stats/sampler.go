package stats

import (
	"math"
	"math/rand"
)

// Sampler draws random variates for the synthetic workload models. All
// samplers are deterministic given the *rand.Rand they are handed.
type Sampler interface {
	// Sample draws one variate.
	Sample(r *rand.Rand) float64
	// Mean returns the analytic expected value. The workload generators use
	// it to translate a load fraction into an arrival rate (100% load = the
	// max request rate at nominal frequency, as in the paper).
	Mean() float64
}

// Lognormal samples exp(N(Mu, Sigma^2)), optionally clamped to Max
// (Max <= 0 disables clamping). The latency-critical service-time models
// are built from lognormals: tightly clustered apps (masstree, moses) use
// small Sigma, variable apps (xapian) larger Sigma.
type Lognormal struct {
	Mu    float64
	Sigma float64
	Max   float64
}

// Sample draws one lognormal variate.
func (l Lognormal) Sample(r *rand.Rand) float64 {
	v := math.Exp(l.Mu + l.Sigma*r.NormFloat64())
	if l.Max > 0 && v > l.Max {
		v = l.Max
	}
	return v
}

// Mean returns the analytic lognormal mean exp(Mu + Sigma^2/2). Clamping
// bias is negligible for the parameterizations used here (Max is placed
// several sigma out) and is ignored.
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// LognormalFromMoments builds a Lognormal with the given mean and
// coefficient of variation (std/mean), clamped at clampSigmas standard
// deviations of the underlying normal above Mu (0 disables clamping).
func LognormalFromMoments(mean, cv float64, clampSigmas float64) Lognormal {
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	l := Lognormal{Mu: mu, Sigma: math.Sqrt(sigma2)}
	if clampSigmas > 0 {
		l.Max = math.Exp(mu + clampSigmas*l.Sigma)
	}
	return l
}

// Exponential samples an exponential variate with the given mean; it is the
// interarrival distribution of the Markov input process the paper's clients
// generate.
type Exponential struct {
	MeanValue float64
}

// Sample draws one exponential variate.
func (e Exponential) Sample(r *rand.Rand) float64 {
	return r.ExpFloat64() * e.MeanValue
}

// Mean returns the configured mean.
func (e Exponential) Mean() float64 { return e.MeanValue }

// Constant always returns V. Used in tests and for degenerate components.
type Constant struct {
	V float64
}

// Sample returns V.
func (c Constant) Sample(*rand.Rand) float64 { return c.V }

// Mean returns V.
func (c Constant) Mean() float64 { return c.V }

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws one uniform variate.
func (u Uniform) Sample(r *rand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}

// Mean returns the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// MixtureComponent pairs a sampler with its selection weight.
type MixtureComponent struct {
	Weight  float64
	Sampler Sampler
}

// Mixture samples from one of its components chosen with probability
// proportional to weight. Multi-modal service times (shore's TPC-C
// transaction classes, specjbb's short/long requests) are mixtures.
type Mixture struct {
	Components []MixtureComponent
	total      float64
}

// NewMixture builds a Mixture, precomputing the weight normalization.
func NewMixture(components ...MixtureComponent) *Mixture {
	m := &Mixture{Components: components}
	for _, c := range components {
		m.total += c.Weight
	}
	return m
}

// Sample draws a component by weight, then samples it.
func (m *Mixture) Sample(r *rand.Rand) float64 {
	if len(m.Components) == 0 {
		return 0
	}
	u := r.Float64() * m.total
	for _, c := range m.Components {
		if u < c.Weight {
			return c.Sampler.Sample(r)
		}
		u -= c.Weight
	}
	return m.Components[len(m.Components)-1].Sampler.Sample(r)
}

// Mean returns the weight-averaged component mean.
func (m *Mixture) Mean() float64 {
	if m.total == 0 {
		return 0
	}
	var sum float64
	for _, c := range m.Components {
		sum += c.Weight * c.Sampler.Mean()
	}
	return sum / m.total
}

// ZipfWork models work driven by a Zipf-distributed popularity rank, as in
// xapian's "zipfian query popularity" (paper Table 3): popular queries hit
// caches and are short, unpopular ones walk more of the index. Work is
// Base * (1 + Slope*ln(1+rank)) with rank ~ Zipf(S) over 0..NRanks-1.
// Sampling uses a precomputed inverse CDF (binary search, no allocation).
type ZipfWork struct {
	Base   float64
	Slope  float64
	S      float64 // Zipf exponent (> 0): P[rank=k] ∝ 1/(k+1)^S
	NRanks int
	cdf    []float64
	mean   float64
}

// NewZipfWork builds a ZipfWork sampler, precomputing the rank CDF and the
// analytic mean of the transformed work.
func NewZipfWork(base, slope, s float64, nranks int) *ZipfWork {
	if nranks < 1 {
		nranks = 1
	}
	z := &ZipfWork{Base: base, Slope: slope, S: s, NRanks: nranks}
	z.cdf = make([]float64, nranks)
	var total float64
	for k := 0; k < nranks; k++ {
		total += math.Pow(float64(k+1), -s)
		z.cdf[k] = total
	}
	var mean float64
	prev := 0.0
	for k := 0; k < nranks; k++ {
		p := (z.cdf[k] - prev) / total
		prev = z.cdf[k]
		mean += p * z.value(k)
	}
	z.mean = mean
	return z
}

func (z *ZipfWork) value(rank int) float64 {
	return z.Base * (1 + z.Slope*math.Log1p(float64(rank)))
}

// Sample draws a popularity rank via inverse-CDF and maps it to work.
func (z *ZipfWork) Sample(r *rand.Rand) float64 {
	u := r.Float64() * z.cdf[len(z.cdf)-1]
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return z.value(lo)
}

// Mean returns the analytic mean of the transformed work.
func (z *ZipfWork) Mean() float64 { return z.mean }

// Product samples the product of two independent samplers; its mean is the
// product of the means. xapian's work model is a Zipf popularity term times
// lognormal per-query noise.
type Product struct {
	A, B Sampler
}

// Sample draws from both factors and multiplies.
func (p Product) Sample(r *rand.Rand) float64 { return p.A.Sample(r) * p.B.Sample(r) }

// Mean returns the product of the factor means (independence).
func (p Product) Mean() float64 { return p.A.Mean() * p.B.Mean() }

// Scaled wraps a sampler, multiplying every variate (and the mean) by K.
type Scaled struct {
	K float64
	S Sampler
}

// Sample draws from the wrapped sampler and scales.
func (s Scaled) Sample(r *rand.Rand) float64 { return s.K * s.S.Sample(r) }

// Mean returns K times the wrapped mean.
func (s Scaled) Mean() float64 { return s.K * s.S.Mean() }
