package stats

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// PackedConvolutionPlan is the packed real-FFT pipeline behind the tail
// table rebuild. The rebuild's two convolution chains (compute cycles and
// memory time) are self-convolutions of *purely real* PMFs, which the
// reference pipeline transforms as full complex signals with identically
// zero imaginary parts — half the arithmetic moves zeros around. The
// packed plan exploits realness twice:
//
//   - Pair packing. Both chains share one transform grid, so the two
//     input PMFs ride one complex signal z = distC + i*distM: a single
//     forward FFT yields both spectra, split by conjugate symmetry
//     (spectra of real signals are Hermitian, X[n-k] = conj(X[k])), and
//     each row's two inverse transforms fuse into one — the inverse of
//     specC_row + i*specM_row carries the real C row in its real part and
//     the M row in its imaginary part.
//
//   - Hermitian half-spectra. Because every spectrum in the pipeline is
//     Hermitian (pointwise products of Hermitian sequences stay
//     Hermitian), the per-row power step acc[k] *= spec[k] and the
//     spectrum storage keep only the n/2+1 non-redundant bins, halving
//     the pointwise work and memory traffic.
//
// On top of the symmetry tricks the plan prunes each row's inverse
// transform to the smallest power of two covering that row's output:
// row i of the chain has exact support len0 + i*(len0-1) <= n, so
// decimating the accumulated spectrum by n/ni and inverting at size ni
// aliases the signal mod ni — exact for a signal that fits in ni. Early
// rows invert at 1/16th the full transform size.
//
// Net transform count for the paper-shape rebuild (128 buckets, 16 queue
// positions, two chains): 36 full-size complex transforms in the
// reference pipeline vs 1 forward + 16 size-pruned inverses here.
//
// Unlike ConvolutionPlan, whose results are bitwise-equal to the naive
// path, the packed pipeline is numerics-changing: packed butterflies and
// pruned inverses round differently at the ulp level. Results agree with
// the reference within a tight relative error bound (see the property
// and fuzz tests: ~1e-12 of each row's total mass, contract <= 1e-9),
// and the pipeline is fully deterministic — same inputs, same bits, on
// every run and every shard. Callers that need the reference bits keep
// ConvolutionPlan; core.TableBuilder exposes the choice as its Packed
// toggle.
//
// A plan owns its scratch buffers and is therefore NOT safe for
// concurrent use; each table builder holds its own.
type PackedConvolutionPlan struct {
	n int
	// Flattened per-stage twiddles in the ConvolutionPlan layout (stage
	// with half-size h at [h-1 : 2h-1]). Twiddles depend only on the
	// stage, not the transform size, so the same tables drive the
	// full-size forward transform and every pruned inverse size.
	fwd, inv []complex128
	// revs caches one bit-reversal permutation per transform size used
	// (the full size plus each pruned inverse size), built on first use
	// so steady-state rebuilds allocate nothing.
	revs map[int][]int
	// Half-spectra (n/2+1 bins): specC/specM hold the forward spectra of
	// the two inputs, accC/accM the accumulated per-row spectra.
	specC, specM, accC, accM []complex128
	// z is the full-size complex scratch: the packed signal during the
	// forward transform, then each row's fused inverse input/output.
	z []complex128
}

// NewPackedConvolutionPlan builds a packed plan for transforms of size n
// (a power of two).
func NewPackedConvolutionPlan(n int) (*PackedConvolutionPlan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("stats: packed plan size %d is not a power of two", n)
	}
	p := &PackedConvolutionPlan{
		n:     n,
		revs:  map[int][]int{},
		specC: make([]complex128, n/2+1),
		specM: make([]complex128, n/2+1),
		accC:  make([]complex128, n/2+1),
		accM:  make([]complex128, n/2+1),
		z:     make([]complex128, n),
	}
	if n > 1 {
		p.fwd = make([]complex128, n-1)
		p.inv = make([]complex128, n-1)
		for size := 2; size <= n; size <<= 1 {
			half := size >> 1
			// Same recurrence as ConvolutionPlan/fft(), so shared-stage
			// transforms start from identical twiddle bits.
			step := 2 * math.Pi / float64(size)
			wf := complex(1, 0)
			wi := complex(1, 0)
			wfBase := cmplx.Exp(complex(0, -step))
			wiBase := cmplx.Exp(complex(0, step))
			for k := 0; k < half; k++ {
				p.fwd[half-1+k] = wf
				p.inv[half-1+k] = wi
				wf *= wfBase
				wi *= wiBase
			}
		}
	}
	return p, nil
}

// Size returns the transform size the plan was built for.
func (p *PackedConvolutionPlan) Size() int { return p.n }

// revFor returns the bit-reversal permutation for transform size m,
// building and caching it on first use.
func (p *PackedConvolutionPlan) revFor(m int) []int {
	if rev, ok := p.revs[m]; ok {
		return rev
	}
	rev := make([]int, m)
	if m > 1 {
		shift := 64 - uint(bits.TrailingZeros(uint(m)))
		for i := 0; i < m; i++ {
			rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
		}
	}
	p.revs[m] = rev
	return rev
}

// PackedPlanSizeFor returns the unified transform size the packed
// pipeline uses for the pair of self-convolution chains of a cLen-bucket
// and an mLen-bucket PMF over count queue positions — the size to pass
// to NewPackedConvolutionPlan. It is the larger of the two per-chain
// PlanSizeFor sizes, so a degenerate (e.g. single-bucket) chain rides
// the other chain's grid.
func PackedPlanSizeFor(cLen, mLen, count int) int {
	nc := PlanSizeFor(cLen, cLen, count)
	nm := PlanSizeFor(mLen, mLen, count)
	if nm > nc {
		return nm
	}
	return nc
}

// IterSelfConvolutionsInto computes both of the rebuild's convolution
// chains in one packed pass: dstC[i] receives the distribution of
// c + i-fold sum of c, dstM[i] the distribution of m + i-fold sum of m,
// for i = 0..len(dstC)-1 — the packed counterpart of one
// IterConvolutionsInto(dstC, c, c) plus one IterConvolutionsInto(dstM,
// m, m). The two PMFs need not share lengths or widths (the chains are
// independent; they only share transforms). Destination backing arrays
// are reused when capacity allows; with warm buffers the call performs
// zero allocations. The plan must have been built for exactly
// PackedPlanSizeFor(len(c.P), len(m.P), len(dstC)).
//
// Results match the reference chains within the packed pipeline's
// relative error bound; they are not bitwise-equal (see the type
// comment).
func (p *PackedConvolutionPlan) IterSelfConvolutionsInto(dstC, dstM []PMF, c, m PMF) error {
	count := len(dstC)
	if count <= 0 {
		return fmt.Errorf("stats: IterSelfConvolutions count must be positive")
	}
	if len(dstM) != count {
		return fmt.Errorf("stats: IterSelfConvolutions dst lengths differ: %d vs %d", count, len(dstM))
	}
	if len(c.P) == 0 || len(m.P) == 0 {
		return fmt.Errorf("stats: IterSelfConvolutions empty PMF")
	}
	if want := PackedPlanSizeFor(len(c.P), len(m.P), count); want != p.n {
		return fmt.Errorf("stats: packed plan size %d, chain pair needs %d", p.n, want)
	}
	n := p.n
	nc, nm := len(c.P), len(m.P)

	// Pack both real inputs into one complex signal z = c + i*m and take
	// a single full-size forward transform.
	z := p.z
	for i := range z {
		z[i] = 0
	}
	for i, v := range c.P {
		z[i] = complex(v, 0)
	}
	for i, v := range m.P {
		z[i] = complex(real(z[i]), v)
	}
	rev := p.revFor(n)
	for i, j := range rev {
		if j > i {
			z[i], z[j] = z[j], z[i]
		}
	}
	fftStages(z, p.fwd)

	// Split the packed spectrum by conjugate symmetry into the two
	// Hermitian half-spectra: with Z = FFT(c + i*m),
	//
	//	specC[k] = (Z[k] + conj(Z[n-k])) / 2
	//	specM[k] = (Z[k] - conj(Z[n-k])) / (2i)
	//
	// Only bins 0..n/2 are kept; the rest are their conjugate mirrors.
	// Bins 0 and n/2 are self-mirrored, so their imaginary parts come
	// out exactly zero — the half-spectra are exactly Hermitian, not
	// merely approximately, and stay so under pointwise products.
	h := n / 2
	for k := 0; k <= h; k++ {
		zk := z[k]
		zn := z[(n-k)&(n-1)]
		a, b := real(zk), imag(zk)
		cr, ci := real(zn), imag(zn)
		p.specC[k] = complex((a+cr)/2, (b-ci)/2)
		p.specM[k] = complex((b+ci)/2, (cr-a)/2)
	}
	// Both chains self-convolve (s0 == s), so the accumulators start as
	// the spectra themselves.
	copy(p.accC, p.specC)
	copy(p.accM, p.specM)

	for i := 0; i < count; i++ {
		lc := nc + i*(nc-1)
		lm := nm + i*(nm-1)
		// Pruned inverse: row i has exact support max(lc, lm), so a
		// transform of the smallest covering power of two ni suffices —
		// decimating the spectrum by d = n/ni aliases the row mod ni,
		// which is exact for a signal of support <= ni.
		l := lc
		if lm > l {
			l = lm
		}
		ni := nextPow2(l)
		d := n / ni
		hi := ni / 2
		w := z[:ni]
		// Assemble the fused natural-order spectrum w = accC + i*accM
		// from the decimated half-spectra; the upper half comes from
		// Hermitian symmetry, w[ni-k] = conj(accC[k*d] - i*accM[k*d]).
		for k := 0; k <= hi; k++ {
			ac, am := p.accC[k*d], p.accM[k*d]
			w[k] = complex(real(ac)-imag(am), imag(ac)+real(am))
		}
		for k := 1; k < hi; k++ {
			ac, am := p.accC[k*d], p.accM[k*d]
			w[ni-k] = complex(real(ac)+imag(am), real(am)-imag(ac))
		}
		rev := p.revFor(ni)
		for a2, b2 := range rev {
			if b2 > a2 {
				w[a2], w[b2] = w[b2], w[a2]
			}
		}
		fftStages(w, p.inv)
		// One fused inverse: the C row is the real part, the M row the
		// imaginary part. The 1/ni scaling folds into the extraction.
		invN := 1 / float64(ni)
		bufC := fitFloats(dstC[i].P, lc)
		for k := 0; k < lc; k++ {
			v := real(w[k]) * invN
			if v < 0 { // numeric noise
				v = 0
			}
			bufC[k] = v
		}
		bufM := fitFloats(dstM[i].P, lm)
		for k := 0; k < lm; k++ {
			v := imag(w[k]) * invN
			if v < 0 { // numeric noise
				v = 0
			}
			bufM[k] = v
		}
		dstC[i] = PMF{
			// Each convolution adds the origin plus the half-width
			// midpoint correction (see Convolve).
			Origin: c.Origin + float64(i)*(c.Origin+c.Width/2),
			Width:  c.Width,
			P:      bufC,
		}
		dstM[i] = PMF{
			Origin: m.Origin + float64(i)*(m.Origin+m.Width/2),
			Width:  m.Width,
			P:      bufM,
		}
		if i < count-1 {
			// Half-spectrum power step: both accumulators advance one
			// convolution over the n/2+1 non-redundant bins only.
			for k := 0; k <= h; k++ {
				p.accC[k] *= p.specC[k]
				p.accM[k] *= p.specM[k]
			}
		}
	}
	return nil
}

// fitFloats returns buf resized to n, reusing its backing array when the
// capacity allows.
func fitFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
