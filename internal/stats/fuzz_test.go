package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzValues decodes a byte string into float64 observations, 8 bytes per
// value, skipping NaNs (Observe's ordering comparisons are meaningless on
// NaN) but keeping infinities, negatives, zeros and denormals — the
// histogram must route all of them to a bucket without panicking.
func fuzzValues(data []byte) []float64 {
	vals := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
		if math.IsNaN(v) {
			continue
		}
		vals = append(vals, v)
	}
	return vals
}

// FuzzLogHistogramMerge fuzzes the streaming response-latency histogram
// with two arbitrary observation streams and checks the merge contract:
// counts are conserved exactly (total, underflow and overflow mass —
// FracAbove exposes the tail mass), merging is order-independent, and
// quantiles remain monotone in q and within the observed value range.
func FuzzLogHistogramMerge(f *testing.F) {
	seed := func(vals ...float64) []byte {
		b := make([]byte, 0, 8*len(vals))
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(150, 1e3, 2.5e6), seed(99, 1e12, 7e8))
	f.Add(seed(), seed(1))
	f.Add(seed(-4, 0, math.Inf(1)), seed(math.Inf(-1), 1e300))
	f.Add(seed(100, 100, 100), seed(100))

	f.Fuzz(func(t *testing.T, a, b []byte) {
		va, vb := fuzzValues(a), fuzzValues(b)
		ha, hb := NewResponseHistogram(), NewResponseHistogram()
		for _, v := range va {
			ha.Observe(v)
		}
		for _, v := range vb {
			hb.Observe(v)
		}
		if ha.Count() != uint64(len(va)) || hb.Count() != uint64(len(vb)) {
			t.Fatalf("observe miscounted: %d/%d vs %d/%d", ha.Count(), len(va), hb.Count(), len(vb))
		}

		merged := NewResponseHistogram()
		if err := merged.Merge(ha); err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(hb); err != nil {
			t.Fatal(err)
		}
		if got, want := merged.Count(), uint64(len(va)+len(vb)); got != want {
			t.Fatalf("merge dropped mass: count %d, want %d", got, want)
		}

		// Order independence: b then a lands on the identical histogram.
		rev := NewResponseHistogram()
		if err := rev.Merge(hb); err != nil {
			t.Fatal(err)
		}
		if err := rev.Merge(ha); err != nil {
			t.Fatal(err)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
			if merged.Quantile(q) != rev.Quantile(q) {
				t.Fatalf("merge not order-independent at q=%v", q)
			}
		}

		// Tail mass is conserved bucket-exactly: the fraction above any
		// probe scales as the count-weighted mean of the parts.
		for _, probe := range []float64{50, 1e4, 1e9, 2e12} {
			na, nb := float64(ha.Count()), float64(hb.Count())
			if na+nb == 0 {
				break
			}
			want := (ha.FracAbove(probe)*na + hb.FracAbove(probe)*nb) / (na + nb)
			if got := merged.FracAbove(probe); math.Abs(got-want) > 1e-12 {
				t.Fatalf("tail mass not conserved at %g: got %v want %v", probe, got, want)
			}
		}

		if merged.Count() == 0 {
			if q := merged.Quantile(0.5); q != 0 {
				t.Fatalf("empty histogram quantile %v", q)
			}
			return
		}
		// Quantiles are monotone in q...
		qs := []float64{0, 0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
		prev := math.Inf(-1)
		for _, q := range qs {
			v := merged.Quantile(q)
			if v < prev {
				t.Fatalf("quantiles not monotone: q=%v gives %v after %v", q, v, prev)
			}
			prev = v
		}
		// ...and stay inside the histogram's representable range.
		if lo, hi := merged.Quantile(0), merged.Quantile(1); lo < 100 || hi > 1e12*1.1 {
			t.Fatalf("quantile outside geometry: [%v, %v]", lo, hi)
		}
	})
}
