package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzValues decodes a byte string into float64 observations, 8 bytes per
// value, skipping NaNs (Observe's ordering comparisons are meaningless on
// NaN) but keeping infinities, negatives, zeros and denormals — the
// histogram must route all of them to a bucket without panicking.
func fuzzValues(data []byte) []float64 {
	vals := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
		if math.IsNaN(v) {
			continue
		}
		vals = append(vals, v)
	}
	return vals
}

// fuzzPMF decodes a byte string into a unit-mass PMF with up to 130
// buckets: 8 bytes per weight, non-finite values skipped, magnitudes
// folded to [0, 1e12] so the total stays finite, and an all-zero decode
// collapsed to a single-bucket delta (the degenerate profile shape).
func fuzzPMF(data []byte, origin, width float64) PMF {
	var p []float64
	for len(data) >= 8 && len(p) < 130 {
		v := math.Abs(math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v > 1e12 {
			v = math.Mod(v, 1e12)
		}
		p = append(p, v)
	}
	var tot float64
	for _, v := range p {
		tot += v
	}
	if len(p) == 0 || tot == 0 {
		p = []float64{1}
		tot = 1
	}
	for i := range p {
		p[i] /= tot
	}
	return PMF{Origin: origin, Width: width, P: p}
}

// FuzzPackedConvolution fuzzes the packed real-FFT pipeline against the
// reference convolutions: for arbitrary unit-mass PMF pairs (mismatched
// lengths, degenerate single buckets, extreme weight ratios) both chains
// of one packed pass must reproduce IterConvolutions within the packed
// error bound, with bitwise-identical row geometry.
func FuzzPackedConvolution(f *testing.F) {
	seed := func(vals ...float64) []byte {
		b := make([]byte, 0, 8*len(vals))
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	// Degenerate single-bucket chain against a spread chain.
	f.Add(seed(1), seed(0.25, 0.5, 0.25), byte(7))
	// Mismatched lengths with uneven mass.
	f.Add(seed(0.1, 0.9), seed(0.2, 0.3, 0.1, 0.4, 0.05, 0.6, 0.7), byte(15))
	// Both degenerate.
	f.Add(seed(3), seed(42), byte(1))
	// Extreme dynamic range within one PMF.
	f.Add(seed(1e-12, 1, 1e12, 1e-300), seed(5, 5, 5, 5, 5), byte(19))

	f.Fuzz(func(t *testing.T, a, b []byte, countByte byte) {
		c := fuzzPMF(a, 2, 0.5)
		m := fuzzPMF(b, 1, 0.75)
		count := 1 + int(countByte)%20
		wantC, err := IterConvolutions(c, c, count)
		if err != nil {
			t.Fatal(err)
		}
		wantM, err := IterConvolutions(m, m, count)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := NewPackedConvolutionPlan(PackedPlanSizeFor(len(c.P), len(m.P), count))
		if err != nil {
			t.Fatal(err)
		}
		gotC := make([]PMF, count)
		gotM := make([]PMF, count)
		if err := plan.IterSelfConvolutionsInto(gotC, gotM, c, m); err != nil {
			t.Fatal(err)
		}
		for chain, pair := range map[string][2][]PMF{"C": {gotC, wantC}, "M": {gotM, wantM}} {
			got, want := pair[0], pair[1]
			for i := range want {
				if got[i].Origin != want[i].Origin || got[i].Width != want[i].Width ||
					len(got[i].P) != len(want[i].P) {
					t.Fatalf("%s row %d geometry mismatch: %+v vs %+v", chain, i, got[i], want[i])
				}
				scale := 0.0
				for _, v := range want[i].P {
					if v > scale {
						scale = v
					}
				}
				if scale == 0 {
					scale = 1
				}
				for k := range want[i].P {
					if diff := math.Abs(got[i].P[k] - want[i].P[k]); diff > 1e-9*scale {
						t.Fatalf("%s row %d entry %d: packed %v reference %v (rel err %v)",
							chain, i, k, got[i].P[k], want[i].P[k], diff/scale)
					}
				}
			}
		}
	})
}

// FuzzLogHistogramMerge fuzzes the streaming response-latency histogram
// with two arbitrary observation streams and checks the merge contract:
// counts are conserved exactly (total, underflow and overflow mass —
// FracAbove exposes the tail mass), merging is order-independent, and
// quantiles remain monotone in q and within the observed value range.
func FuzzLogHistogramMerge(f *testing.F) {
	seed := func(vals ...float64) []byte {
		b := make([]byte, 0, 8*len(vals))
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(150, 1e3, 2.5e6), seed(99, 1e12, 7e8))
	f.Add(seed(), seed(1))
	f.Add(seed(-4, 0, math.Inf(1)), seed(math.Inf(-1), 1e300))
	f.Add(seed(100, 100, 100), seed(100))

	f.Fuzz(func(t *testing.T, a, b []byte) {
		va, vb := fuzzValues(a), fuzzValues(b)
		ha, hb := NewResponseHistogram(), NewResponseHistogram()
		for _, v := range va {
			ha.Observe(v)
		}
		for _, v := range vb {
			hb.Observe(v)
		}
		if ha.Count() != uint64(len(va)) || hb.Count() != uint64(len(vb)) {
			t.Fatalf("observe miscounted: %d/%d vs %d/%d", ha.Count(), len(va), hb.Count(), len(vb))
		}

		merged := NewResponseHistogram()
		if err := merged.Merge(ha); err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(hb); err != nil {
			t.Fatal(err)
		}
		if got, want := merged.Count(), uint64(len(va)+len(vb)); got != want {
			t.Fatalf("merge dropped mass: count %d, want %d", got, want)
		}

		// Order independence: b then a lands on the identical histogram.
		rev := NewResponseHistogram()
		if err := rev.Merge(hb); err != nil {
			t.Fatal(err)
		}
		if err := rev.Merge(ha); err != nil {
			t.Fatal(err)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
			if merged.Quantile(q) != rev.Quantile(q) {
				t.Fatalf("merge not order-independent at q=%v", q)
			}
		}

		// Tail mass is conserved bucket-exactly: the fraction above any
		// probe scales as the count-weighted mean of the parts.
		for _, probe := range []float64{50, 1e4, 1e9, 2e12} {
			na, nb := float64(ha.Count()), float64(hb.Count())
			if na+nb == 0 {
				break
			}
			want := (ha.FracAbove(probe)*na + hb.FracAbove(probe)*nb) / (na + nb)
			if got := merged.FracAbove(probe); math.Abs(got-want) > 1e-12 {
				t.Fatalf("tail mass not conserved at %g: got %v want %v", probe, got, want)
			}
		}

		if merged.Count() == 0 {
			if q := merged.Quantile(0.5); q != 0 {
				t.Fatalf("empty histogram quantile %v", q)
			}
			return
		}
		// Quantiles are monotone in q...
		qs := []float64{0, 0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
		prev := math.Inf(-1)
		for _, q := range qs {
			v := merged.Quantile(q)
			if v < prev {
				t.Fatalf("quantiles not monotone: q=%v gives %v after %v", q, v, prev)
			}
			prev = v
		}
		// ...and stay inside the histogram's representable range.
		if lo, hi := merged.Quantile(0), merged.Quantile(1); lo < 100 || hi > 1e12*1.1 {
			t.Fatalf("quantile outside geometry: [%v, %v]", lo, hi)
		}
	})
}
