// Package stats provides the statistical substrate for the Rubik
// reproduction: equal-width empirical distributions (PMFs) with
// conditioning and convolution, an FFT used to accelerate the repeated
// convolutions behind Rubik's target tail tables, Gaussian tail
// approximations for long queues, quantile and correlation helpers,
// random-variate samplers for the synthetic workloads, and rolling
// time-window accumulators used by the measurement and feedback paths.
//
// Everything in this package is deterministic given a seeded
// math/rand.Rand and uses only the standard library.
package stats
