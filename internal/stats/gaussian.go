package stats

import "math"

// NormalQuantile returns the q-quantile of the standard normal
// distribution (the z-score z with Phi(z) = q), via the error function
// inverse. Rubik uses it to extend the target tail tables past 16 queued
// requests: by the central limit theorem, S_i converges to a Gaussian for
// large i (paper Sec. 4.2, "Large queues").
func NormalQuantile(q float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return math.Sqrt2 * math.Erfinv(2*q-1)
}

// GaussianTail returns the q-quantile of a Gaussian with the given mean and
// variance, floored at zero (work cannot be negative).
func GaussianTail(mean, variance, q float64) float64 {
	if variance < 0 {
		variance = 0
	}
	v := mean + NormalQuantile(q)*math.Sqrt(variance)
	if v < 0 {
		return 0
	}
	return v
}
