package stats

import (
	"fmt"
	"math"
)

// Pearson returns the Pearson correlation coefficient of two equal-length
// series. It reproduces the paper's Table 1 analysis (correlation of
// response latency with service time, instantaneous QPS, and queue length).
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: Pearson length mismatch: %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: Pearson needs at least 2 points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil // a constant series is uncorrelated with anything
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Welford accumulates mean and variance in a single streaming pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }
