package stats

import (
	"fmt"
	"math"
	"sort"
)

// PMF is a discrete probability mass function over equal-width buckets.
// Bucket k covers the half-open value interval
// [Origin + k*Width, Origin + (k+1)*Width).
//
// PMFs are the core representation behind Rubik's target tail tables: the
// per-request compute-cycle distribution P[C] and memory-time distribution
// P[M] are estimated as PMFs, conditioned on elapsed work, and convolved to
// obtain the completion distributions of queued requests.
type PMF struct {
	Origin float64
	Width  float64
	P      []float64
}

// NewPMFFromSamples builds an equal-width PMF with nbuckets buckets spanning
// [min(samples), max(samples)]. It returns a degenerate single-bucket PMF
// when all samples are equal. The paper's implementation uses 128-bucket
// distributions; callers pass that.
func NewPMFFromSamples(samples []float64, nbuckets int) (PMF, error) {
	if len(samples) == 0 {
		return PMF{}, fmt.Errorf("stats: no samples")
	}
	if nbuckets <= 0 {
		return PMF{}, fmt.Errorf("stats: nbuckets must be positive, got %d", nbuckets)
	}
	lo, hi := samples[0], samples[0]
	for _, s := range samples {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return PMF{}, fmt.Errorf("stats: sample is not finite: %v", s)
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi == lo {
		return PMF{Origin: lo, Width: 1, P: []float64{1}}, nil
	}
	w := (hi - lo) / float64(nbuckets)
	p := make([]float64, nbuckets)
	inc := 1 / float64(len(samples))
	for _, s := range samples {
		k := int((s - lo) / w)
		if k >= nbuckets { // s == hi lands one past the end
			k = nbuckets - 1
		}
		p[k] += inc
	}
	return PMF{Origin: lo, Width: w, P: p}, nil
}

// Mass returns the total probability mass (1 up to rounding for any
// well-formed PMF).
func (d PMF) Mass() float64 {
	var m float64
	for _, v := range d.P {
		m += v
	}
	return m
}

// midpoint returns the representative value of bucket k.
func (d PMF) midpoint(k int) float64 {
	return d.Origin + (float64(k)+0.5)*d.Width
}

// Mean returns the expected value, using bucket midpoints.
func (d PMF) Mean() float64 {
	var m float64
	for k, v := range d.P {
		m += v * d.midpoint(k)
	}
	return m
}

// Variance returns the variance, using bucket midpoints.
func (d PMF) Variance() float64 {
	mean := d.Mean()
	var v float64
	for k, p := range d.P {
		dx := d.midpoint(k) - mean
		v += p * dx * dx
	}
	return v
}

// Quantile returns the value x such that P[X <= x] >= q, using the right
// edge of the bucket where the CDF crosses q. Using the right edge is
// deliberately conservative: Rubik treats the returned value as "the work
// that must complete by the deadline", so rounding up can only raise the
// chosen frequency, never violate the tail. q outside (0, 1] is clamped.
func (d PMF) Quantile(q float64) float64 {
	if len(d.P) == 0 {
		return 0
	}
	if q <= 0 {
		return d.Origin
	}
	if q > 1 {
		q = 1
	}
	mass := d.Mass()
	target := q * mass
	var cum float64
	for k, p := range d.P {
		cum += p
		if cum >= target-1e-12 {
			return d.Origin + float64(k+1)*d.Width
		}
	}
	return d.Origin + float64(len(d.P))*d.Width
}

// CumSumInto fills dst with the running mass cum[k] = P[0] + ... + P[k],
// accumulated in index order — the exact running sum Quantile forms
// internally — reusing dst's backing array when its capacity allows. One
// CumSumInto per rebuild lets QuantileFromCum answer every row-bound
// quantile without rescanning the PMF.
func (d PMF) CumSumInto(dst []float64) []float64 {
	if cap(dst) < len(d.P) {
		dst = make([]float64, len(d.P))
	} else {
		dst = dst[:len(d.P)]
	}
	var cum float64
	for k, p := range d.P {
		cum += p
		dst[k] = cum
	}
	return dst
}

// QuantileFromCum is Quantile answered from a precomputed CumSumInto
// running mass instead of a fresh linear scan. For PMFs with
// nonnegative entries (every profiled or convolved PMF) the running
// mass is nondecreasing, so a binary search finds the same first
// crossing the scan does and the result is bitwise-identical to
// Quantile's — the property tests pin that.
func (d PMF) QuantileFromCum(cum []float64, q float64) float64 {
	if len(d.P) == 0 {
		return 0
	}
	if q <= 0 {
		return d.Origin
	}
	if q > 1 {
		q = 1
	}
	// cum[len-1] is the same running total Mass() computes, bit for bit.
	target := q*cum[len(cum)-1] - 1e-12
	lo, hi := 0, len(cum) // first k with cum[k] >= target
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid] >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo < len(cum) {
		return d.Origin + float64(lo+1)*d.Width
	}
	return d.Origin + float64(len(d.P))*d.Width
}

// CDF returns P[X <= x].
func (d PMF) CDF(x float64) float64 {
	if len(d.P) == 0 {
		return 0
	}
	if x < d.Origin {
		return 0
	}
	k := int((x - d.Origin) / d.Width)
	if k >= len(d.P) {
		return d.Mass()
	}
	var cum float64
	for i := 0; i < k; i++ {
		cum += d.P[i]
	}
	// Interpolate within bucket k, treating mass as uniform in the bucket.
	frac := (x - (d.Origin + float64(k)*d.Width)) / d.Width
	return cum + d.P[k]*frac
}

// ConditionAtLeast returns the distribution of X - omega given X > omega:
//
//	P[X0 = c] = P[X = c + omega | X > omega]
//
// This is the paper's shift-and-rescale used to model the remaining work of
// the request currently being served (Sec. 4.1). Conditioning happens at a
// bucket boundary at or below omega, which is conservative (it can only
// overestimate remaining work). If omega exhausts the support, a degenerate
// PMF at the final bucket width is returned so callers always get a usable
// distribution.
func (d PMF) ConditionAtLeast(omega float64) PMF {
	if len(d.P) == 0 {
		return d
	}
	if omega <= d.Origin {
		// No mass below omega: the remaining work is exactly X - omega.
		out := make([]float64, len(d.P))
		copy(out, d.P)
		return PMF{Origin: d.Origin - omega, Width: d.Width, P: out}
	}
	// The epsilon keeps conditioning exactly at a bucket boundary from
	// rounding down into the previous bucket.
	k := int((omega-d.Origin)/d.Width + 1e-9)
	if k >= len(d.P) {
		// All profiled mass elapsed; model one residual bucket of work.
		return PMF{Origin: 0, Width: d.Width, P: []float64{1}}
	}
	rest := make([]float64, len(d.P)-k)
	copy(rest, d.P[k:])
	var mass float64
	for _, v := range rest {
		mass += v
	}
	if mass <= 0 {
		return PMF{Origin: 0, Width: d.Width, P: []float64{1}}
	}
	for i := range rest {
		rest[i] /= mass
	}
	return PMF{Origin: 0, Width: d.Width, P: rest}
}

// ConditionAtLeastInto is ConditionAtLeast writing into buf's backing
// array (grown only when too small), for rebuild paths that condition the
// same distribution once per table row and cannot afford a fresh slice per
// row. buf must not alias d.P. The returned PMF is bitwise-identical to
// ConditionAtLeast's.
func (d PMF) ConditionAtLeastInto(buf []float64, omega float64) PMF {
	if len(d.P) == 0 {
		return d
	}
	fit := func(n int) []float64 {
		if cap(buf) < n {
			return make([]float64, n)
		}
		return buf[:n]
	}
	if omega <= d.Origin {
		out := fit(len(d.P))
		copy(out, d.P)
		return PMF{Origin: d.Origin - omega, Width: d.Width, P: out}
	}
	// The epsilon keeps conditioning exactly at a bucket boundary from
	// rounding down into the previous bucket.
	k := int((omega-d.Origin)/d.Width + 1e-9)
	if k >= len(d.P) {
		out := fit(1)
		out[0] = 1
		return PMF{Origin: 0, Width: d.Width, P: out}
	}
	rest := fit(len(d.P) - k)
	copy(rest, d.P[k:])
	var mass float64
	for _, v := range rest {
		mass += v
	}
	if mass <= 0 {
		out := fit(1)
		out[0] = 1
		return PMF{Origin: 0, Width: d.Width, P: out}
	}
	for i := range rest {
		rest[i] /= mass
	}
	return PMF{Origin: 0, Width: d.Width, P: rest}
}

// Convolve returns the distribution of the sum of two independent variables
// with matching bucket widths, computed directly (O(n*m)). It is the
// reference implementation the FFT path is tested against.
//
// Bucket masses represent midpoints, so summing bucket i of a with bucket j
// of b yields the lattice point a.Origin+b.Origin+(i+j+1)*Width; the result
// origin carries the extra half-width so that midpoints (and therefore
// means and variances) add exactly.
func Convolve(a, b PMF) (PMF, error) {
	if len(a.P) == 0 || len(b.P) == 0 {
		return PMF{}, fmt.Errorf("stats: convolve empty PMF")
	}
	if !widthsCompatible(a.Width, b.Width) {
		return PMF{}, fmt.Errorf("stats: convolve width mismatch: %g vs %g", a.Width, b.Width)
	}
	out := make([]float64, len(a.P)+len(b.P)-1)
	for i, pa := range a.P {
		if pa == 0 {
			continue
		}
		for j, pb := range b.P {
			out[i+j] += pa * pb
		}
	}
	return PMF{Origin: a.Origin + b.Origin + a.Width/2, Width: a.Width, P: out}, nil
}

func widthsCompatible(w1, w2 float64) bool {
	if w1 == w2 {
		return true
	}
	d := math.Abs(w1 - w2)
	return d <= 1e-9*math.Max(math.Abs(w1), math.Abs(w2))
}

// Rescale returns an equivalent PMF with the given bucket width, spreading
// each bucket's mass uniformly over the buckets it overlaps. Used when two
// profiled distributions must share a grid before convolution.
func (d PMF) Rescale(width float64) PMF {
	if len(d.P) == 0 || width <= 0 || widthsCompatible(width, d.Width) {
		return d
	}
	span := float64(len(d.P)) * d.Width
	n := int(math.Ceil(span / width))
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for k, p := range d.P {
		if p == 0 {
			continue
		}
		lo := float64(k) * d.Width
		hi := lo + d.Width
		// Spread mass over [lo, hi) in the new grid.
		i0 := int(lo / width)
		i1 := int(math.Ceil(hi / width))
		if i1 > n {
			i1 = n
		}
		for i := i0; i < i1; i++ {
			blo := math.Max(lo, float64(i)*width)
			bhi := math.Min(hi, float64(i+1)*width)
			if bhi > blo {
				out[i] += p * (bhi - blo) / d.Width
			}
		}
	}
	return PMF{Origin: d.Origin, Width: width, P: out}
}

// Percentile returns the q-quantile (q in (0,1]) of a sample slice using
// the nearest-rank method on a sorted copy. It is the definition used for
// all measured tail latencies in the reproduction.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return percentileSorted(s, q)
}

// PercentileSorted is Percentile for an already-sorted slice (no copy).
func PercentileSorted(sorted []float64, q float64) float64 {
	return percentileSorted(sorted, q)
}

func percentileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q > 1 {
		q = 1
	}
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}
