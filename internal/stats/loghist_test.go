package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLogHistogramValidation(t *testing.T) {
	if _, err := NewLogHistogram(0, 10, 8); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := NewLogHistogram(10, 10, 8); err == nil {
		t.Error("hi=lo accepted")
	}
	if _, err := NewLogHistogram(1, 10, 0); err == nil {
		t.Error("perDecade=0 accepted")
	}
}

// TestLogHistogramQuantileAccuracy pins the quantile estimate against the
// exact nearest-rank percentile within the bucket relative width.
func TestLogHistogramQuantileAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	h := NewResponseHistogram()
	vals := make([]float64, 50000)
	for i := range vals {
		// Lognormal spanning ~3 decades, like response latencies.
		vals[i] = 1e6 * math.Exp(r.NormFloat64()*1.2)
		h.Observe(vals[i])
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := Percentile(vals, q)
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.08 {
			t.Errorf("q=%.2f: hist %.0f vs exact %.0f (rel err %.3f)", q, got, exact, rel)
		}
	}
	if h.Count() != 50000 {
		t.Errorf("count %d", h.Count())
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if mean := h.Mean(); math.Abs(mean-sum/50000) > 1e-6*sum/50000 {
		t.Errorf("mean %.3f vs %.3f", mean, sum/50000)
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h := NewResponseHistogram()
	if h.Quantile(0.95) != 0 {
		t.Error("empty histogram should report 0")
	}
	h.Observe(-5) // underflow
	h.Observe(1)  // underflow (below 100 ns floor)
	if got := h.Quantile(0.5); got != 100 {
		t.Errorf("underflow quantile %v, want the floor 100", got)
	}
	h.Observe(1e15) // overflow
	if got := h.Quantile(1.0); got < 1e12 {
		t.Errorf("overflow quantile %v, want the top edge", got)
	}
}

func TestLogHistogramFracAbove(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	h := NewResponseHistogram()
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = 1e6 * math.Exp(r.NormFloat64())
		h.Observe(vals[i])
	}
	for _, bound := range []float64{3e5, 1e6, 5e6} {
		exact := 0
		for _, v := range vals {
			if v > bound {
				exact++
			}
		}
		want := float64(exact) / float64(len(vals))
		got := h.FracAbove(bound)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("FracAbove(%g) = %.4f, exact %.4f", bound, got, want)
		}
	}
	if got := h.FracAbove(1); got != 1 {
		t.Errorf("below-range bound: %v, want 1", got)
	}
	if got := h.FracAbove(1e13); got != 0 {
		t.Errorf("above-range bound: %v, want 0", got)
	}
	var empty LogHistogram
	if empty.FracAbove(1) != 0 {
		t.Error("empty FracAbove must be 0")
	}
}

func TestLogHistogramMerge(t *testing.T) {
	a, b, both := NewResponseHistogram(), NewResponseHistogram(), NewResponseHistogram()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		v := 1e5 * math.Exp(r.NormFloat64())
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d vs %d", a.Count(), both.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.95} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("q=%.2f: merged %v vs pooled %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
	other, err := NewLogHistogram(1, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(other); err == nil {
		t.Error("merging different geometries should fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}
