package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// packedErrBound is the packed pipeline's accuracy contract against the
// reference convolutions: every row entry agrees within this relative
// error, normalized by the row's largest reference entry. Observed error
// on unit-mass PMFs is ~1e-13; the contract leaves four orders of margin.
const packedErrBound = 1e-9

// checkPackedRows compares one packed chain against its reference chain:
// geometry (origin, width, length) must match bitwise, values within
// packedErrBound of the row's largest reference entry.
func checkPackedRows(t *testing.T, chain string, got, want []PMF) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", chain, len(got), len(want))
	}
	for i := range want {
		if !sameBits(got[i].Origin, want[i].Origin) || !sameBits(got[i].Width, want[i].Width) {
			t.Fatalf("%s row %d geometry: got (%v,%v) want (%v,%v)",
				chain, i, got[i].Origin, got[i].Width, want[i].Origin, want[i].Width)
		}
		if len(got[i].P) != len(want[i].P) {
			t.Fatalf("%s row %d length %d, want %d", chain, i, len(got[i].P), len(want[i].P))
		}
		scale := 0.0
		for _, v := range want[i].P {
			if v > scale {
				scale = v
			}
		}
		if scale == 0 {
			scale = 1
		}
		for k := range want[i].P {
			if diff := math.Abs(got[i].P[k] - want[i].P[k]); diff > packedErrBound*scale {
				t.Fatalf("%s row %d entry %d: got %v want %v (rel err %v)",
					chain, i, k, got[i].P[k], want[i].P[k], diff/scale)
			}
		}
	}
}

func TestNewPackedConvolutionPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 12, 1000} {
		if _, err := NewPackedConvolutionPlan(n); err == nil {
			t.Fatalf("packed plan size %d must be rejected", n)
		}
	}
}

// TestPackedSelfConvolutionsMatchReferenceWithinBound is the packed
// pipeline's core accuracy property: both chains of a packed pass agree
// with the independent reference chains within packedErrBound, across
// mismatched bucket counts, distinct widths and origins, and repeated
// reuse of the same plan and destination buffers.
func TestPackedSelfConvolutionsMatchReferenceWithinBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomPMF(r, 1+r.Intn(130), float64(r.Intn(10)), 0.25+r.Float64())
		m := randomPMF(r, 1+r.Intn(130), float64(r.Intn(10)), 0.25+r.Float64())
		count := 1 + r.Intn(20)
		wantC, err := IterConvolutions(c, c, count)
		if err != nil {
			return false
		}
		wantM, err := IterConvolutions(m, m, count)
		if err != nil {
			return false
		}
		plan, err := NewPackedConvolutionPlan(PackedPlanSizeFor(len(c.P), len(m.P), count))
		if err != nil {
			return false
		}
		gotC := make([]PMF, count)
		gotM := make([]PMF, count)
		// Two rounds: the second reuses the first round's destination
		// buffers and the plan's scratch, proving reuse changes nothing.
		for round := 0; round < 2; round++ {
			if err := plan.IterSelfConvolutionsInto(gotC, gotM, c, m); err != nil {
				t.Fatal(err)
			}
			checkPackedRows(t, "C", gotC, wantC)
			checkPackedRows(t, "M", gotM, wantM)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPackedSelfConvolutionsDeterministic pins the pipeline's determinism
// contract: the same inputs produce the same bits on every call and on a
// freshly built plan — the property the shard/cache/work-stealing
// invariance of the fleet engine leans on once packed is the default.
func TestPackedSelfConvolutionsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	c := randomPMF(r, 128, 3, 250)
	m := randomPMF(r, 96, 1, 40)
	const count = 16
	plan, err := NewPackedConvolutionPlan(PackedPlanSizeFor(len(c.P), len(m.P), count))
	if err != nil {
		t.Fatal(err)
	}
	firstC := make([]PMF, count)
	firstM := make([]PMF, count)
	if err := plan.IterSelfConvolutionsInto(firstC, firstM, c, m); err != nil {
		t.Fatal(err)
	}
	// Deep-copy: later calls refill the same destination backing arrays.
	snap := func(rows []PMF) []PMF {
		out := make([]PMF, len(rows))
		for i, row := range rows {
			out[i] = PMF{Origin: row.Origin, Width: row.Width, P: append([]float64(nil), row.P...)}
		}
		return out
	}
	wantC, wantM := snap(firstC), snap(firstM)

	fresh, err := NewPackedConvolutionPlan(plan.Size())
	if err != nil {
		t.Fatal(err)
	}
	for trial, p := range []*PackedConvolutionPlan{plan, fresh} {
		gotC := make([]PMF, count)
		gotM := make([]PMF, count)
		if err := p.IterSelfConvolutionsInto(gotC, gotM, c, m); err != nil {
			t.Fatal(err)
		}
		for i := range wantC {
			for k := range wantC[i].P {
				if !sameBits(gotC[i].P[k], wantC[i].P[k]) {
					t.Fatalf("trial %d: C row %d entry %d not deterministic", trial, i, k)
				}
			}
			for k := range wantM[i].P {
				if !sameBits(gotM[i].P[k], wantM[i].P[k]) {
					t.Fatalf("trial %d: M row %d entry %d not deterministic", trial, i, k)
				}
			}
		}
	}
}

func TestPackedSelfConvolutionsDegenerateSingleBucket(t *testing.T) {
	// A degenerate chain (single-bucket delta PMF) paired with a full-width
	// chain rides the wide chain's grid; both must still match their
	// references. Also the doubly-degenerate pair, which runs at size 1.
	delta := PMF{Origin: 5, Width: 1, P: []float64{1}}
	r := rand.New(rand.NewSource(33))
	wide := randomPMF(r, 128, 0, 1000)
	const count = 8
	for _, pair := range []struct {
		name string
		c, m PMF
	}{
		{"delta-wide", delta, wide},
		{"wide-delta", wide, delta},
		{"delta-delta", delta, delta},
	} {
		wantC, err := IterConvolutions(pair.c, pair.c, count)
		if err != nil {
			t.Fatal(err)
		}
		wantM, err := IterConvolutions(pair.m, pair.m, count)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := NewPackedConvolutionPlan(PackedPlanSizeFor(len(pair.c.P), len(pair.m.P), count))
		if err != nil {
			t.Fatal(err)
		}
		gotC := make([]PMF, count)
		gotM := make([]PMF, count)
		if err := plan.IterSelfConvolutionsInto(gotC, gotM, pair.c, pair.m); err != nil {
			t.Fatalf("%s: %v", pair.name, err)
		}
		checkPackedRows(t, pair.name+"/C", gotC, wantC)
		checkPackedRows(t, pair.name+"/M", gotM, wantM)
	}
}

func TestPackedSelfConvolutionsValidation(t *testing.T) {
	ok := PMF{Origin: 0, Width: 1, P: []float64{1}}
	plan, err := NewPackedConvolutionPlan(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.IterSelfConvolutionsInto(nil, nil, ok, ok); err == nil {
		t.Fatal("expected error for empty dst")
	}
	if err := plan.IterSelfConvolutionsInto(make([]PMF, 2), make([]PMF, 3), ok, ok); err == nil {
		t.Fatal("expected error for mismatched dst lengths")
	}
	if err := plan.IterSelfConvolutionsInto(make([]PMF, 2), make([]PMF, 2), PMF{}, ok); err == nil {
		t.Fatal("expected error for empty c")
	}
	if err := plan.IterSelfConvolutionsInto(make([]PMF, 2), make([]PMF, 2), ok, PMF{}); err == nil {
		t.Fatal("expected error for empty m")
	}
	// Mismatched plan size must be rejected, not silently mis-transformed.
	big := randomPMF(rand.New(rand.NewSource(1)), 64, 0, 1)
	if err := plan.IterSelfConvolutionsInto(make([]PMF, 8), make([]PMF, 8), big, big); err == nil {
		t.Fatal("expected plan size mismatch error")
	}
}

func TestPackedSelfConvolutionsAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := randomPMF(r, 128, 0, 1000)
	m := randomPMF(r, 128, 0, 50)
	plan, err := NewPackedConvolutionPlan(PackedPlanSizeFor(128, 128, 16))
	if err != nil {
		t.Fatal(err)
	}
	dstC := make([]PMF, 16)
	dstM := make([]PMF, 16)
	if err := plan.IterSelfConvolutionsInto(dstC, dstM, c, m); err != nil { // warm buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := plan.IterSelfConvolutionsInto(dstC, dstM, c, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm IterSelfConvolutionsInto allocates %v/op, want 0", allocs)
	}
}
