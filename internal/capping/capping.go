// Package capping coordinates per-core DVFS choices under a shared power
// budget — the system-level layer Rubik itself does not have: each core's
// analytical controller still picks the frequency it *wants* for its tail
// bound, but production sockets and racks run under a cap, so the wanted
// frequencies must be reconciled against Σ P_active(f_i) ≤ CapW per power
// domain. This is the many-core power-capping setting FastCap (Liu et al.)
// formalizes, layered on top of Rubik's per-core control.
//
// The package is deliberately simulation-agnostic: it knows frequencies,
// power curves and slack estimates, not cores or engines. The cluster
// package owns the wiring (when allocation rounds run, how grants are
// actuated, time-weighted accounting); allocators here are pure functions
// from demands to grants over a Domain's precomputed power curve, with all
// scratch owned by the Domain so a decision-rate call path performs zero
// allocations.
package capping

import (
	"fmt"

	"rubik/internal/cpu"
	"rubik/internal/sim"
)

// Demand is one core's input to an allocation round.
type Demand struct {
	// DesiredIdx is the grid index of the frequency the core's own policy
	// asked for. Grants never exceed it: the budget layer only throttles,
	// it does not second-guess the per-core controller upward.
	DesiredIdx int
	// SlackNs is the core's predicted tail slack (headroom to its latency
	// bound) at the current operating point, as reported by a
	// queueing.SlackReporter policy. 0 means none or unknown.
	SlackNs float64
}

// Allocator reconciles per-core desired frequencies against the domain
// budget. Implementations must be deterministic functions of (domain,
// demands): the cluster simulation replays allocation rounds and pins
// results byte-for-byte.
type Allocator interface {
	// Name identifies the strategy in results and reports.
	Name() string
	// Allocate writes a granted grid index per core into grants
	// (len(grants) == len(demands)), honoring grants[i] <= DesiredIdx and
	// Σ power(grants) ≤ CapW whenever the budget admits every core at its
	// cheapest admissible step. When even that floor exceeds the cap the
	// round is infeasible: every core is granted FloorIdx(DesiredIdx) and
	// the caller accounts the excess. Allocate must not allocate memory;
	// per-round scratch lives in the Domain.
	Allocate(d *Domain, demands []Demand, grants []int)
}

// Domain is one power domain (socket): the budget, the grid-indexed active
// power curve shared by its member cores, and the allocator scratch. Build
// one per domain and reuse it for every round; it is not safe for
// concurrent use.
type Domain struct {
	capW  float64
	grid  cpu.Grid
	power []float64 // power[i] = active power (W) at grid step i

	// True extremes of the power curve. maxIdxWithin documents that the
	// curve need not be convex or monotone, so the cheapest step is not
	// necessarily index 0: feasibility checks and infeasible-round floors
	// must use the real minimum, not power[0].
	minPowerW float64
	maxPowerW float64
	// floorIdx[i] is the cheapest step at or below i (argmin power[0..i],
	// lowest index on ties) — the best a core desiring step i can do.
	floorIdx []int

	// Allocator scratch, sized to the member count: remaining-slack
	// estimates and per-step slack debits for greedy-slack.
	rem   []float64
	debit []float64
}

// NewDomain builds a power domain of cores members with the given budget.
// capW may be +Inf (never binding); it must exceed zero.
func NewDomain(grid cpu.Grid, model cpu.PowerModel, capW float64, cores int) (*Domain, error) {
	if grid.Len() == 0 {
		return nil, fmt.Errorf("capping: empty frequency grid")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if capW <= 0 {
		return nil, fmt.Errorf("capping: cap must be positive, got %v W", capW)
	}
	if cores <= 0 {
		return nil, fmt.Errorf("capping: domain needs at least 1 core, got %d", cores)
	}
	power := make([]float64, grid.Len())
	for i := range power {
		power[i] = model.ActivePower(grid.Step(i))
	}
	return newDomainCurve(grid, power, capW, cores), nil
}

// newDomainCurve builds a domain over an explicit power curve. It exists
// so tests can pin non-monotone curves, which the physical PowerModel
// (strictly increasing in frequency) cannot produce.
func newDomainCurve(grid cpu.Grid, power []float64, capW float64, cores int) *Domain {
	d := &Domain{
		capW:     capW,
		grid:     grid,
		power:    power,
		floorIdx: make([]int, len(power)),
		rem:      make([]float64, cores),
		debit:    make([]float64, cores),
	}
	d.minPowerW, d.maxPowerW = power[0], power[0]
	arg := 0
	for i, p := range power {
		if p < power[arg] {
			arg = i
		}
		d.floorIdx[i] = arg
		if p < d.minPowerW {
			d.minPowerW = p
		}
		if p > d.maxPowerW {
			d.maxPowerW = p
		}
	}
	return d
}

// CapW returns the domain budget in watts.
func (d *Domain) CapW() float64 { return d.capW }

// SetCapW retargets the domain budget between allocation rounds — the
// hierarchical budget tree re-grants socket caps at epoch barriers. Like
// NewDomain, the cap must be positive; +Inf (never binding) is allowed.
func (d *Domain) SetCapW(w float64) error {
	if w <= 0 {
		return fmt.Errorf("capping: cap must be positive, got %v W", w)
	}
	d.capW = w
	return nil
}

// MinPowerW returns the cheapest step's active power — the true curve
// minimum, which on a non-monotone curve need not be power[0].
func (d *Domain) MinPowerW() float64 { return d.minPowerW }

// MaxPowerW returns the most expensive step's active power — the
// per-core ceiling a budget hierarchy uses to bound leaf demand.
func (d *Domain) MaxPowerW() float64 { return d.maxPowerW }

// FloorIdx returns the cheapest step at or below desired (lowest index on
// ties): the floor an infeasible round grants, since grants never exceed
// the desire and nothing at or below it costs less.
func (d *Domain) FloorIdx(desired int) int { return d.floorIdx[desired] }

// Grid returns the domain's frequency grid.
func (d *Domain) Grid() cpu.Grid { return d.grid }

// PowerAt returns the active power of grid step idx.
func (d *Domain) PowerAt(idx int) float64 { return d.power[idx] }

// PowerOf sums the active power of a grant vector — the quantity every
// allocator bounds by CapW.
func (d *Domain) PowerOf(grants []int) float64 {
	var sum float64
	for _, g := range grants {
		sum += d.power[g]
	}
	return sum
}

// Feasible reports whether n cores at the cheapest step fit the budget.
// An infeasible domain cannot honor its cap at any allocation; allocators
// then grant each core its cheapest step at or below the desire (FloorIdx)
// and the caller accounts the excess time (DomainStats.CapExceededNs).
// The check uses the true curve minimum: on a non-monotone curve power[0]
// can overstate the floor and misreport a feasible domain as infeasible.
func (d *Domain) Feasible(n int) bool {
	return float64(n)*d.minPowerW <= d.capW
}

// maxIdxWithin returns the highest grid index whose active power fits
// budget, or -1 when even the minimum step exceeds it. Linear scan: grids
// are a dozen steps and the curve need not be convex.
func (d *Domain) maxIdxWithin(budget float64) int {
	best := -1
	for i, p := range d.power {
		if p <= budget {
			best = i
		}
	}
	return best
}

// DomainStats is the per-domain accounting a capped cluster run reports.
type DomainStats struct {
	// Cores lists the member core indices.
	Cores []int
	// CapW is the domain budget; Allocator the strategy name.
	CapW      float64
	Allocator string
	// Rounds counts allocation rounds (one per member decision that
	// changed its demand, plus the initial round).
	Rounds int
	// ThrottleEvents counts rounds in which at least one member was
	// granted less than its desired frequency — the cap was binding.
	ThrottleEvents int
	// CapExceededNs is simulated time during which even the enforced
	// allocation exceeded the cap: the domain was infeasible (all members
	// at the minimum step still overflow the budget). Zero whenever
	// CapW >= members * P_active(min).
	CapExceededNs sim.Time
	// PeakPowerW is the largest granted power sum over all rounds; with a
	// feasible cap it never exceeds CapW.
	PeakPowerW float64
	// AvgPowerW is the time-weighted mean granted power over the run.
	AvgPowerW float64
}

// ByName returns a fresh allocator by strategy name.
func ByName(name string) (Allocator, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "greedy-slack":
		return GreedySlack{}, nil
	case "waterfill":
		return Waterfill{}, nil
	}
	return nil, fmt.Errorf("capping: unknown allocator %q (have uniform, greedy-slack, waterfill)", name)
}

// Names lists the registered allocator strategies in sweep order.
func Names() []string { return []string{"uniform", "greedy-slack", "waterfill"} }
