package capping

import (
	"fmt"
	"math"
	"sort"
)

// This file is the nested-budget layer: production fleets do not cap each
// socket independently — a rack budget constrains PDU budgets, which
// constrain socket budgets, which constrain the per-core grants the flat
// Domain/Allocator machinery already reconciles. A Hierarchy is a tree of
// budget nodes with arbitrary fan-out per level; its leaves are sockets,
// and each re-allocation turns leaf demands (watts) into leaf grants
// (watts) that the cluster layer applies as time-varying Domain caps.
//
// Like the flat allocators, everything here is deterministic and
// simulation-agnostic: the cluster decides *when* rounds run (epoch
// barriers) and reports demand; the tree only divides watts.

// ChildDemand is one child's input to a level allocation round, all in
// watts. FloorW is the power the child's subtree burns even when fully
// throttled (every core at its cheapest admissible step); MaxW is the most
// it can usefully absorb (every core at the costliest step, clamped by any
// node cap below); DemandW is its aggregated reported demand, already
// clamped into [FloorW, MaxW].
type ChildDemand struct {
	FloorW  float64
	MaxW    float64
	DemandW float64
}

// LevelAllocator divides one node's divisible budget among its children.
// Implementations must be deterministic functions of (budgetW, children)
// and must grant within [FloorW, MaxW] per child; when the budget does not
// cover Σ FloorW the round is infeasible and every child is granted its
// floor (the excess surfaces downstream as Domain infeasibility).
type LevelAllocator interface {
	// Name identifies the level strategy in results and reports.
	Name() string
	// AllocateLevel writes a granted wattage per child into grants
	// (len(grants) == len(children)).
	AllocateLevel(budgetW float64, children []ChildDemand, grants []float64)
}

// StaticLevel is the rigid baseline: every child receives an equal share
// of the budget, clamped into [FloorW, MaxW]. Headroom a lightly-loaded
// child leaves unused is NOT redistributed — the gap to WaterfillLevel at
// the same budget measures what demand-aware nested division buys. The
// share is a single division, so a budget constructed as n·cap divides
// back to exactly cap: the degenerate one-level tree reproduces flat
// per-socket capping bit-for-bit.
type StaticLevel struct{}

// Name implements LevelAllocator.
func (StaticLevel) Name() string { return "static" }

// AllocateLevel implements LevelAllocator.
func (StaticLevel) AllocateLevel(budgetW float64, children []ChildDemand, grants []float64) {
	share := budgetW / float64(len(children))
	for i, c := range children {
		g := share
		if g < c.FloorW {
			g = c.FloorW
		}
		if g > c.MaxW {
			g = c.MaxW
		}
		grants[i] = g
	}
}

// WaterfillLevel is demand-aware progressive filling over continuous
// watts, the level-wise composition of the flat Waterfill allocator. Two
// passes: first raise a common water level from the floors toward each
// child's (demand-clamped) target — the max-min fair, leximin-optimal
// division of budget toward demand (the brute-force reference test pins
// this, mirroring the flat allocator's pin) — then spread any leftover
// toward the children's maxima the same way, so surplus becomes headroom
// instead of evaporating at the node.
type WaterfillLevel struct{}

// Name implements LevelAllocator.
func (WaterfillLevel) Name() string { return "waterfill" }

// AllocateLevel implements LevelAllocator.
func (WaterfillLevel) AllocateLevel(budgetW float64, children []ChildDemand, grants []float64) {
	n := len(children)
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i, c := range children {
		lo[i] = c.FloorW
		hi[i] = clampW(c.DemandW, c.FloorW, c.MaxW)
	}
	waterFill(budgetW, lo, hi, grants)
	used := 0.0
	for _, g := range grants {
		used += g
	}
	if leftover := budgetW - used; leftover > 0 {
		// Surplus beyond every demand: lift toward the maxima so a parent
		// grant is not silently wasted (children may out-demand their
		// report before the next barrier).
		copy(lo, grants)
		for i, c := range children {
			hi[i] = c.MaxW
		}
		waterFill(used+leftover, lo, hi, grants)
	}
}

// waterFill writes clamp(λ, lo[i], hi[i]) into out for the water level λ
// at which the clamped sum meets budget. Below Σ lo the round is
// infeasible and out = lo; above Σ hi everything is granted hi.
func waterFill(budget float64, lo, hi, out []float64) {
	sumLo, sumHi := 0.0, 0.0
	for i := range lo {
		sumLo += lo[i]
		sumHi += hi[i]
	}
	if budget <= sumLo {
		copy(out, lo)
		return
	}
	if budget >= sumHi {
		copy(out, hi)
		return
	}
	// S(λ) = Σ clamp(λ, lo, hi) is piecewise linear and nondecreasing with
	// breakpoints at the lo/hi values; find the segment bracketing the
	// budget and interpolate. O(n² log n) on a per-epoch path with level
	// fan-outs of dozens — clarity over asymptotics.
	bps := make([]float64, 0, 2*len(lo))
	bps = append(bps, lo...)
	bps = append(bps, hi...)
	sort.Float64s(bps)
	S := func(level float64) float64 {
		s := 0.0
		for i := range lo {
			s += clampW(level, lo[i], hi[i])
		}
		return s
	}
	prev := bps[0]
	sPrev := S(prev)
	level := bps[len(bps)-1]
	for _, bp := range bps[1:] {
		if bp == prev {
			continue
		}
		sBp := S(bp)
		if sBp >= budget {
			level = prev + (budget-sPrev)*(bp-prev)/(sBp-sPrev)
			break
		}
		prev, sPrev = bp, sBp
	}
	for i := range out {
		out[i] = clampW(level, lo[i], hi[i])
	}
}

func clampW(w, lo, hi float64) float64 {
	if w < lo {
		return lo
	}
	if w > hi {
		return hi
	}
	return w
}

// LevelByName returns a fresh level allocator by strategy name.
func LevelByName(name string) (LevelAllocator, error) {
	switch name {
	case "static":
		return StaticLevel{}, nil
	case "waterfill":
		return WaterfillLevel{}, nil
	}
	return nil, fmt.Errorf("capping: unknown level allocator %q (have static, waterfill)", name)
}

// LevelNames lists the registered level strategies in sweep order.
func LevelNames() []string { return []string{"static", "waterfill"} }

// LevelSpec describes one level of the budget tree, root-most first.
type LevelSpec struct {
	// Name labels the level in stats and reports ("rack", "pdu", ...).
	Name string
	// Nodes is the node count at this level; children (the next level's
	// nodes, or the leaves below the last level) are split contiguously
	// and near-evenly among them. Must not decrease down the tree.
	Nodes int
	// CapW is the per-node budget ceiling in watts. On the root level it
	// is the budget itself and must be positive (+Inf allowed: never
	// binding); below the root, 0 means uncapped — the node passes its
	// parent grant through.
	CapW float64
	// Oversub multiplies a node's grant before dividing it among children
	// — the classic provisioning bet that siblings do not peak together.
	// 1 (or 0, the zero value) divides exactly the grant; 1.25 promises
	// children 25% more than the node holds.
	Oversub float64
	// Alloc divides the node budget among children; nil means
	// WaterfillLevel.
	Alloc LevelAllocator
}

// HierarchySpec is the shape of the budget tree: levels from the root
// down, with the domain leaves (sockets) attached below the last level.
type HierarchySpec struct {
	Levels []LevelSpec
}

type hierNode struct {
	lo, hi int // children index range into the next level (or the leaves)
	// Aggregates rebuilt bottom-up each round, grants top-down.
	floorW  float64
	maxW    float64
	demandW float64
	grantW  float64
}

type levelState struct {
	spec  LevelSpec
	nodes []hierNode
	// Per-round stats accumulators.
	minGrantW float64
	maxGrantW float64
	sumGrantW float64
	throttled int
}

// Hierarchy is a built budget tree over a fixed leaf population. It owns
// all scratch; Reallocate performs no allocations after construction. Not
// safe for concurrent use.
type Hierarchy struct {
	levels     []levelState
	leaves     int
	leafFloorW float64
	leafMaxW   float64

	leafGrants []float64
	children   []ChildDemand // scratch sized to the widest fan-out
	chGrants   []float64
	rounds     int
	leafMin    float64
	leafMax    float64
	leafSum    float64
	leafThrot  int
}

// NewHierarchy builds the tree. leaves is the socket count; leafFloorW and
// leafMaxW bound one leaf's absorbable power (cores × cheapest-step and
// cores × costliest-step active power, intersected with any flat per-leaf
// cap). Both must be positive with leafFloorW ≤ leafMaxW, which keeps
// every grant positive — a valid Domain cap.
func NewHierarchy(spec HierarchySpec, leaves int, leafFloorW, leafMaxW float64) (*Hierarchy, error) {
	if len(spec.Levels) == 0 {
		return nil, fmt.Errorf("capping: hierarchy needs at least one level")
	}
	if leaves <= 0 {
		return nil, fmt.Errorf("capping: hierarchy needs at least 1 leaf, got %d", leaves)
	}
	if leafFloorW <= 0 || leafMaxW < leafFloorW {
		return nil, fmt.Errorf("capping: leaf power bounds must satisfy 0 < floor ≤ max, got [%v, %v] W",
			leafFloorW, leafMaxW)
	}
	h := &Hierarchy{
		leaves:     leaves,
		leafFloorW: leafFloorW,
		leafMaxW:   leafMaxW,
		leafGrants: make([]float64, leaves),
		leafMin:    math.Inf(1),
		leafMax:    math.Inf(-1),
	}
	prevNodes := 0
	for li, ls := range spec.Levels {
		if ls.Nodes <= 0 {
			return nil, fmt.Errorf("capping: level %q needs at least 1 node, got %d", ls.Name, ls.Nodes)
		}
		if li > 0 && ls.Nodes < prevNodes {
			return nil, fmt.Errorf("capping: level %q has %d nodes under %d parents — fan-out cannot shrink",
				ls.Name, ls.Nodes, prevNodes)
		}
		if li == 0 && !(ls.CapW > 0) {
			return nil, fmt.Errorf("capping: root level %q needs a positive budget, got %v W", ls.Name, ls.CapW)
		}
		if ls.CapW < 0 {
			return nil, fmt.Errorf("capping: level %q cap must not be negative, got %v W", ls.Name, ls.CapW)
		}
		if ls.Oversub < 0 || (ls.Oversub > 0 && ls.Oversub < 1) {
			return nil, fmt.Errorf("capping: level %q oversubscription must be ≥ 1 (or 0 for exact), got %v",
				ls.Name, ls.Oversub)
		}
		st := levelState{spec: ls, nodes: make([]hierNode, ls.Nodes)}
		if st.spec.Oversub == 0 {
			st.spec.Oversub = 1
		}
		if st.spec.CapW == 0 {
			st.spec.CapW = math.Inf(1)
		}
		if st.spec.Alloc == nil {
			st.spec.Alloc = WaterfillLevel{}
		}
		st.minGrantW = math.Inf(1)
		st.maxGrantW = math.Inf(-1)
		h.levels = append(h.levels, st)
		prevNodes = ls.Nodes
	}
	if prevNodes > leaves {
		return nil, fmt.Errorf("capping: last level has %d nodes over %d leaves — fan-out cannot shrink",
			prevNodes, leaves)
	}
	// Contiguous near-even child ranges per level; the widest fan-out
	// sizes the shared allocation scratch.
	maxFan := 0
	for li := range h.levels {
		st := &h.levels[li]
		childN := leaves
		if li+1 < len(h.levels) {
			childN = h.levels[li+1].spec.Nodes
		}
		m := len(st.nodes)
		for j := range st.nodes {
			st.nodes[j].lo = j * childN / m
			st.nodes[j].hi = (j + 1) * childN / m
			if fan := st.nodes[j].hi - st.nodes[j].lo; fan > maxFan {
				maxFan = fan
			}
		}
	}
	h.children = make([]ChildDemand, maxFan)
	h.chGrants = make([]float64, maxFan)
	return h, nil
}

// Leaves returns the leaf (socket) count the tree was built over.
func (h *Hierarchy) Leaves() int { return h.leaves }

// LeafFloorW returns the per-leaf power floor the tree was built with.
func (h *Hierarchy) LeafFloorW() float64 { return h.leafFloorW }

// Reallocate runs one top-down allocation round: demandW[i] is leaf i's
// reported demand in watts (clamped into the leaf bounds), and the
// returned slice — valid until the next call — holds one positive cap per
// leaf. Deterministic in its inputs; the epoch protocol in the cluster
// layer depends on that for shard invariance.
func (h *Hierarchy) Reallocate(demandW []float64) []float64 {
	if len(demandW) != h.leaves {
		panic(fmt.Sprintf("capping: Reallocate over %d demands, hierarchy has %d leaves",
			len(demandW), h.leaves))
	}
	// Bottom-up: aggregate floors, maxima and demands per node.
	for li := len(h.levels) - 1; li >= 0; li-- {
		st := &h.levels[li]
		for j := range st.nodes {
			nd := &st.nodes[j]
			var f, m, dem float64
			if li == len(h.levels)-1 {
				cnt := float64(nd.hi - nd.lo)
				f = cnt * h.leafFloorW
				m = cnt * h.leafMaxW
				for i := nd.lo; i < nd.hi; i++ {
					dem += clampW(demandW[i], h.leafFloorW, h.leafMaxW)
				}
			} else {
				for _, ch := range h.levels[li+1].nodes[nd.lo:nd.hi] {
					f += ch.floorW
					m += ch.maxW
					dem += ch.demandW
				}
			}
			if m > st.spec.CapW {
				m = st.spec.CapW
			}
			if m < f {
				m = f // a node cap below the floor is infeasible, not absorbing
			}
			nd.floorW, nd.maxW, nd.demandW = f, m, clampW(dem, f, m)
		}
	}
	// Top-down: the root's budget is its cap; every node divides
	// grant × oversubscription among its children.
	root := &h.levels[0]
	for j := range root.nodes {
		g := root.spec.CapW
		if g > root.nodes[j].maxW {
			g = root.nodes[j].maxW
		}
		root.nodes[j].grantW = g
	}
	for li := range h.levels {
		st := &h.levels[li]
		last := li == len(h.levels)-1
		for j := range st.nodes {
			nd := &st.nodes[j]
			fan := nd.hi - nd.lo
			ch := h.children[:fan]
			cg := h.chGrants[:fan]
			if last {
				for k := 0; k < fan; k++ {
					ch[k] = ChildDemand{
						FloorW:  h.leafFloorW,
						MaxW:    h.leafMaxW,
						DemandW: clampW(demandW[nd.lo+k], h.leafFloorW, h.leafMaxW),
					}
				}
			} else {
				for k := 0; k < fan; k++ {
					c := &h.levels[li+1].nodes[nd.lo+k]
					ch[k] = ChildDemand{FloorW: c.floorW, MaxW: c.maxW, DemandW: c.demandW}
				}
			}
			st.spec.Alloc.AllocateLevel(nd.grantW*st.spec.Oversub, ch, cg)
			if last {
				copy(h.leafGrants[nd.lo:nd.hi], cg)
			} else {
				for k := 0; k < fan; k++ {
					c := &h.levels[li+1].nodes[nd.lo+k]
					c.grantW = cg[k]
					if c.grantW > c.maxW {
						c.grantW = c.maxW
					}
				}
			}
		}
	}
	h.accountRound(demandW)
	return h.leafGrants
}

// accountRound folds one round into the per-level stats accumulators.
func (h *Hierarchy) accountRound(demandW []float64) {
	h.rounds++
	for li := range h.levels {
		st := &h.levels[li]
		for j := range st.nodes {
			g := st.nodes[j].grantW
			if g < st.minGrantW {
				st.minGrantW = g
			}
			if g > st.maxGrantW {
				st.maxGrantW = g
			}
			st.sumGrantW += g
			if g < st.nodes[j].demandW {
				st.throttled++
			}
		}
	}
	for i, g := range h.leafGrants {
		if g < h.leafMin {
			h.leafMin = g
		}
		if g > h.leafMax {
			h.leafMax = g
		}
		h.leafSum += g
		if g < clampW(demandW[i], h.leafFloorW, h.leafMaxW) {
			h.leafThrot++
		}
	}
}

// LevelStats is one level's accounting across every allocation round.
type LevelStats struct {
	// Name and Nodes echo the spec; Allocator is the level strategy.
	Name      string
	Nodes     int
	Allocator string
	// MinGrantW/MaxGrantW are the extreme node grants over all rounds;
	// AvgGrantW is the mean node grant per round.
	MinGrantW float64
	MaxGrantW float64
	AvgGrantW float64
	// Throttled counts (node, round) pairs granted below aggregated
	// demand — how often the budget bound at this level.
	Throttled int
}

// HierarchyStats is the per-level accounting a hierarchical fleet run
// reports: the spec levels top-down, then the leaf ("socket") level.
type HierarchyStats struct {
	Levels []LevelStats
	// Reallocations counts allocation rounds: the initial grant plus one
	// per epoch barrier.
	Reallocations int
	// LeafCapChanges counts socket cap retargets actually applied — a
	// round that re-derives an unchanged grant perturbs nothing and is
	// not counted. Maintained by the cluster layer.
	LeafCapChanges int
}

// Stats snapshots the accounting so far.
func (h *Hierarchy) Stats() HierarchyStats {
	s := HierarchyStats{Reallocations: h.rounds}
	denom := float64(h.rounds)
	if denom == 0 {
		denom = 1
	}
	for li := range h.levels {
		st := &h.levels[li]
		ls := LevelStats{
			Name:      st.spec.Name,
			Nodes:     len(st.nodes),
			Allocator: st.spec.Alloc.Name(),
			MinGrantW: st.minGrantW,
			MaxGrantW: st.maxGrantW,
			AvgGrantW: st.sumGrantW / (denom * float64(len(st.nodes))),
			Throttled: st.throttled,
		}
		if h.rounds == 0 {
			ls.MinGrantW, ls.MaxGrantW = 0, 0
		}
		s.Levels = append(s.Levels, ls)
	}
	leaf := LevelStats{
		Name:      "socket",
		Nodes:     h.leaves,
		Allocator: h.levels[len(h.levels)-1].spec.Alloc.Name(),
		MinGrantW: h.leafMin,
		MaxGrantW: h.leafMax,
		AvgGrantW: h.leafSum / (denom * float64(h.leaves)),
		Throttled: h.leafThrot,
	}
	if h.rounds == 0 {
		leaf.MinGrantW, leaf.MaxGrantW = 0, 0
	}
	s.Levels = append(s.Levels, leaf)
	return s
}

var (
	_ LevelAllocator = StaticLevel{}
	_ LevelAllocator = WaterfillLevel{}
)
