package capping

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"rubik/internal/cpu"
)

func testDomain(t testing.TB, capW float64, cores int) *Domain {
	t.Helper()
	d, err := NewDomain(cpu.DefaultGrid(), cpu.DefaultPowerModel(), capW, cores)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sumEps is the float tolerance for budget checks: strategies accumulate
// grant power as sums of exact per-step values, so any drift is a few ulps
// of the cap.
func sumEps(capW float64) float64 { return capW * 1e-9 }

func TestNewDomainValidation(t *testing.T) {
	grid := cpu.DefaultGrid()
	model := cpu.DefaultPowerModel()
	cases := []struct {
		name  string
		grid  cpu.Grid
		capW  float64
		cores int
	}{
		{"empty grid", cpu.Grid{}, 30, 4},
		{"zero cap", grid, 0, 4},
		{"negative cap", grid, -5, 4},
		{"zero cores", grid, 30, 0},
	}
	for _, c := range cases {
		if _, err := NewDomain(c.grid, model, c.capW, c.cores); err == nil {
			t.Errorf("%s: NewDomain accepted invalid input", c.name)
		}
	}
	if _, err := NewDomain(grid, model, math.Inf(1), 4); err != nil {
		t.Errorf("infinite cap rejected: %v", err)
	}
}

func TestDomainPowerCurve(t *testing.T) {
	grid := cpu.DefaultGrid()
	model := cpu.DefaultPowerModel()
	d := testDomain(t, 30, 6)
	for i := 0; i < grid.Len(); i++ {
		if got, want := d.PowerAt(i), model.ActivePower(grid.Step(i)); got != want {
			t.Fatalf("PowerAt(%d) = %v, want %v", i, got, want)
		}
	}
	if !d.Feasible(6) {
		t.Fatal("6 cores at minimum should fit 30 W")
	}
	if d2 := testDomain(t, 1, 6); d2.Feasible(6) {
		t.Fatal("6 cores at minimum cannot fit 1 W")
	}
}

func TestFreqForPower(t *testing.T) {
	grid := cpu.DefaultGrid()
	model := cpu.DefaultPowerModel()
	cases := []struct {
		budgetW float64
		wantMHz int
		wantOK  bool
	}{
		{1e9, grid.Max(), true},
		{model.ActivePower(grid.Max()), grid.Max(), true},
		{model.ActivePower(2400), 2400, true},
		{model.ActivePower(2400) - 1e-9, 2200, true},
		{model.ActivePower(grid.Min()), grid.Min(), true},
		{0.01, grid.Min(), false},
	}
	for _, c := range cases {
		got, ok := cpu.FreqForPower(grid, model, c.budgetW)
		if got != c.wantMHz || ok != c.wantOK {
			t.Errorf("FreqForPower(%.4f W) = (%d, %v), want (%d, %v)",
				c.budgetW, got, ok, c.wantMHz, c.wantOK)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown allocator accepted")
	}
}

// randomDemands draws a deterministic demand vector: desired indices over
// the full grid, slacks in [0, 1e6) ns with occasional exact ties and
// zeros (the regimes that exposed the greedy-slack tie-break bug).
func randomDemands(r *rand.Rand, grid cpu.Grid, n int) []Demand {
	demands := make([]Demand, n)
	for i := range demands {
		demands[i].DesiredIdx = r.Intn(grid.Len())
		switch r.Intn(3) {
		case 0:
			demands[i].SlackNs = 0
		case 1:
			demands[i].SlackNs = 250_000
		default:
			demands[i].SlackNs = r.Float64() * 1e6
		}
	}
	return demands
}

// TestAllocatorInvariants is the property sweep over every strategy:
// grants stay on-grid and at or below desires, the budget holds at every
// decision point whenever the domain is feasible, infeasible domains
// pin everything to the minimum step, and allocation is a deterministic
// function of (domain, demands).
func TestAllocatorInvariants(t *testing.T) {
	grid := cpu.DefaultGrid()
	caps := []float64{3, 7, 15, 24, 40, 80, math.Inf(1)}
	for _, name := range Names() {
		alloc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			for trial := 0; trial < 400; trial++ {
				n := 1 + r.Intn(8)
				capW := caps[r.Intn(len(caps))]
				d := testDomain(t, capW, n)
				demands := randomDemands(r, grid, n)
				grants := make([]int, n)
				alloc.Allocate(d, demands, grants)

				for i, g := range grants {
					if g < 0 || g >= grid.Len() {
						t.Fatalf("trial %d: grant %d off grid: %d", trial, i, g)
					}
					if g > demands[i].DesiredIdx {
						t.Fatalf("trial %d: core %d granted %d above desired %d",
							trial, i, g, demands[i].DesiredIdx)
					}
				}
				sum := d.PowerOf(grants)
				if d.Feasible(n) && sum > capW+sumEps(capW) {
					t.Fatalf("trial %d: budget exceeded: Σ=%.9f W > cap %.9f W (grants %v)",
						trial, sum, capW, grants)
				}
				if !d.Feasible(n) {
					for i, g := range grants {
						if want := d.FloorIdx(demands[i].DesiredIdx); g != want {
							t.Fatalf("trial %d: infeasible domain granted core %d step %d, want floor %d",
								trial, i, g, want)
						}
					}
				}

				// Determinism: a fresh allocator on a fresh domain with the
				// same demands produces the same grants.
				alloc2, _ := ByName(name)
				d2 := testDomain(t, capW, n)
				grants2 := make([]int, n)
				alloc2.Allocate(d2, demands, grants2)
				if !reflect.DeepEqual(grants, grants2) {
					t.Fatalf("trial %d: allocation not deterministic: %v vs %v", trial, grants, grants2)
				}
			}
		})
	}
}

// TestNonMonotoneCurve pins the Feasible/infeasible-floor fix: the power
// curve need not be monotone (maxIdxWithin documents this), so the true
// curve minimum — not power[0] — decides feasibility, and infeasible
// rounds must settle on each core's cheapest admissible step rather than
// index 0. The physical PowerModel is strictly increasing in frequency,
// so the curve is injected directly.
func TestNonMonotoneCurve(t *testing.T) {
	grid, err := cpu.NewGrid([]int{800, 1200, 1600, 2000})
	if err != nil {
		t.Fatal(err)
	}
	curve := []float64{5, 1, 3, 4} // cheapest step is index 1, not 0

	d := newDomainCurve(grid, curve, 3.5, 3)
	if d.MinPowerW() != 1 || d.MaxPowerW() != 5 {
		t.Fatalf("curve extremes = (%v, %v), want (1, 5)", d.MinPowerW(), d.MaxPowerW())
	}
	for i, want := range []int{0, 1, 1, 1} {
		if got := d.FloorIdx(i); got != want {
			t.Fatalf("FloorIdx(%d) = %d, want %d", i, got, want)
		}
	}
	// 3 cores fit at 1 W each within 3.5 W; the old power[0]-based check
	// (3*5 = 15 W) misreported this domain as infeasible.
	if !d.Feasible(3) {
		t.Fatal("Feasible used power[0] instead of the curve minimum")
	}
	top := grid.Len() - 1
	demands := []Demand{{DesiredIdx: top}, {DesiredIdx: top}, {DesiredIdx: top}}
	for _, name := range Names() {
		alloc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		grants := make([]int, 3)
		alloc.Allocate(d, demands, grants)
		if sum := d.PowerOf(grants); sum > 3.5+sumEps(3.5) {
			t.Fatalf("%s: feasible domain exceeded budget: Σ=%v W (grants %v)", name, sum, grants)
		}
	}

	// Below 3 * MinPowerW the domain is genuinely infeasible; every
	// strategy must floor to step 1 (1 W each), not step 0 (5 W each).
	d2 := newDomainCurve(grid, curve, 2.5, 3)
	if d2.Feasible(3) {
		t.Fatal("2.5 W cannot admit 3 cores at 1 W")
	}
	for _, name := range Names() {
		alloc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		grants := make([]int, 3)
		alloc.Allocate(d2, demands, grants)
		if want := []int{1, 1, 1}; !reflect.DeepEqual(grants, want) {
			t.Fatalf("%s: infeasible round granted %v, want cheapest steps %v", name, grants, want)
		}
	}

	// A desire below the cheap step keeps the floor at or below the
	// desire: grants never exceed DesiredIdx even when a cheaper step
	// exists above it.
	low := []Demand{{DesiredIdx: 0}, {DesiredIdx: 0}, {DesiredIdx: 0}}
	for _, name := range Names() {
		alloc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		grants := make([]int, 3)
		alloc.Allocate(d2, low, grants)
		if want := []int{0, 0, 0}; !reflect.DeepEqual(grants, want) {
			t.Fatalf("%s: desire-0 floor = %v, want %v", name, grants, want)
		}
	}
}

// TestSetCapW pins budget retargeting: the hierarchy re-grants socket
// caps between rounds, so the same domain must re-allocate under the new
// budget, and invalid caps must be rejected.
func TestSetCapW(t *testing.T) {
	d := testDomain(t, 80, 4)
	top := d.Grid().Len() - 1
	demands := []Demand{{DesiredIdx: top}, {DesiredIdx: top}, {DesiredIdx: top}, {DesiredIdx: top}}
	grants := make([]int, 4)
	Waterfill{}.Allocate(d, demands, grants)
	if !reflect.DeepEqual(grants, []int{top, top, top, top}) {
		t.Fatalf("80 W should admit all desires: %v", grants)
	}
	if err := d.SetCapW(12); err != nil {
		t.Fatal(err)
	}
	if d.CapW() != 12 {
		t.Fatalf("CapW = %v after SetCapW(12)", d.CapW())
	}
	Waterfill{}.Allocate(d, demands, grants)
	if sum := d.PowerOf(grants); sum > 12+sumEps(12) {
		t.Fatalf("retargeted budget exceeded: Σ=%v W (grants %v)", sum, grants)
	}
	for _, bad := range []float64{0, -3} {
		if err := d.SetCapW(bad); err == nil {
			t.Fatalf("SetCapW(%v) accepted", bad)
		}
	}
}

// TestUniformEqualShare pins the defining property of the baseline: every
// core's granted power fits CapW / members, even when siblings leave
// headroom unused.
func TestUniformEqualShare(t *testing.T) {
	const n = 6
	d := testDomain(t, 24, n)
	demands := make([]Demand, n)
	demands[0].DesiredIdx = d.Grid().Len() - 1 // wants everything
	// Everyone else wants (and gets) the minimum: their unused share must
	// NOT flow to core 0.
	grants := make([]int, n)
	Uniform{}.Allocate(d, demands, grants)
	share := 24.0 / n
	if p := d.PowerAt(grants[0]); p > share {
		t.Fatalf("uniform granted core 0 %.3f W above its %.3f W share", p, share)
	}
	if grants[0]+1 < d.Grid().Len() && d.PowerAt(grants[0]+1) <= share {
		t.Fatalf("uniform under-granted core 0: next step still fits the share")
	}
}

// TestGreedySlackDonationOrder pins the strategy's contract: under a
// binding cap, the core with the most predicted slack donates first, and
// zero-slack ties shed from the highest-granted core instead of bottoming
// out the lowest index.
func TestGreedySlackDonationOrder(t *testing.T) {
	grid := cpu.DefaultGrid()
	top := grid.Len() - 1
	// Cap just below 3 cores at max: exactly one step must be donated.
	d3 := testDomain(t, 3*cpu.DefaultPowerModel().ActivePower(grid.Max())-0.01, 3)
	demands := []Demand{
		{DesiredIdx: top, SlackNs: 1000},
		{DesiredIdx: top, SlackNs: 9000}, // most slack: donates
		{DesiredIdx: top, SlackNs: 2000},
	}
	grants := make([]int, 3)
	GreedySlack{}.Allocate(d3, demands, grants)
	if want := []int{top, top - 1, top}; !reflect.DeepEqual(grants, want) {
		t.Fatalf("slack-rich core did not donate: grants %v, want %v", grants, want)
	}

	// All-zero slack with asymmetric desires: donations must equalize from
	// the top, not pin core 0 to the minimum.
	d2 := testDomain(t, 9, 3)
	demands = []Demand{{DesiredIdx: top}, {DesiredIdx: top}, {DesiredIdx: top}}
	grants = make([]int, 3)
	GreedySlack{}.Allocate(d2, demands, grants)
	sort.Ints(grants)
	if grants[0] == 0 && grants[2] == top {
		t.Fatalf("zero-slack ties bottomed a core out: grants %v", grants)
	}
	if sum := d2.PowerOf(grants); sum > 9+sumEps(9) {
		t.Fatalf("budget exceeded: %.6f W", sum)
	}
}

// bruteForceLeximin enumerates every grant vector bounded by the desires
// and returns the best sorted grant vector under the leximin order (max
// the smallest grant, then the next, ...) among budget-feasible vectors.
// Exponential — keep grids and core counts tiny.
func bruteForceLeximin(d *Domain, demands []Demand) []int {
	n := len(demands)
	cur := make([]int, n)
	var best []int
	sorted := make([]int, n)
	var walk func(i int)
	walk = func(i int) {
		if i == n {
			if d.PowerOf(cur) > d.capW {
				return
			}
			copy(sorted, cur)
			sort.Ints(sorted)
			if best == nil || leximinLess(best, sorted) {
				best = append(best[:0], sorted...)
			}
			return
		}
		for g := 0; g <= demands[i].DesiredIdx; g++ {
			cur[i] = g
			walk(i + 1)
		}
	}
	walk(0)
	return best
}

// leximinLess reports whether sorted vector a is strictly worse than b in
// the leximin order.
func leximinLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// TestWaterfillMatchesBruteForce pins waterfill against exhaustive
// enumeration on small grids: its sorted grant vector must be the leximin
// optimum (max-min fairness) over every feasible grant vector, for random
// small domains.
func TestWaterfillMatchesBruteForce(t *testing.T) {
	steps := []int{800, 1200, 1600, 2000, 2400}
	grid, err := cpu.NewGrid(steps)
	if err != nil {
		t.Fatal(err)
	}
	model := cpu.DefaultPowerModel()
	minW := model.ActivePower(steps[0])
	maxW := model.ActivePower(steps[len(steps)-1])
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(3)
		capW := float64(n) * (minW + r.Float64()*(maxW-minW))
		d, err := NewDomain(grid, model, capW, n)
		if err != nil {
			t.Fatal(err)
		}
		demands := make([]Demand, n)
		for i := range demands {
			demands[i].DesiredIdx = r.Intn(grid.Len())
		}
		grants := make([]int, n)
		Waterfill{}.Allocate(d, demands, grants)
		if sum := d.PowerOf(grants); sum > capW+sumEps(capW) {
			t.Fatalf("trial %d: waterfill exceeded budget: %.9f > %.9f", trial, sum, capW)
		}

		want := bruteForceLeximin(d, demands)
		got := append([]int(nil), grants...)
		sort.Ints(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: waterfill %v (sorted %v) is not the leximin optimum %v (cap %.3f W, demands %+v)",
				trial, grants, got, want, capW, demands)
		}
	}
}

// TestAllocateZeroAlloc guards the per-decision path: one allocation
// round performs zero heap allocations for every strategy. (The race
// detector instruments allocations, so the guard only runs uninstrumented.)
func TestAllocateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	grid := cpu.DefaultGrid()
	r := rand.New(rand.NewSource(3))
	demands := randomDemands(r, grid, 6)
	grants := make([]int, 6)
	for _, name := range Names() {
		alloc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		d := testDomain(t, 20, 6)
		if n := testing.AllocsPerRun(100, func() {
			alloc.Allocate(d, demands, grants)
		}); n != 0 {
			t.Errorf("%s: Allocate performs %.1f allocs per round, want 0", name, n)
		}
	}
}
