package capping

// Uniform splits the budget into equal per-core shares: every core is
// granted the highest step whose active power fits CapW / members, capped
// at its desired frequency. Headroom a lightly-loaded core leaves unused
// is NOT redistributed — that rigidity is the point of the baseline: the
// gap to greedy-slack and waterfill at the same cap measures what
// demand-aware coordination buys.
type Uniform struct{}

// Name implements Allocator.
func (Uniform) Name() string { return "uniform" }

// Allocate implements Allocator.
func (Uniform) Allocate(d *Domain, demands []Demand, grants []int) {
	share := d.capW / float64(len(demands))
	lid := d.maxIdxWithin(share)
	for i, dem := range demands {
		g := lid
		if g > dem.DesiredIdx {
			g = dem.DesiredIdx
		}
		if g < 0 || d.power[g] > share {
			// No step fits the share at or below the desire — either the
			// share is infeasible outright, or the desired clamp landed on
			// a costlier step of a non-monotone curve. Grant the cheapest
			// step the desire admits.
			g = d.FloorIdx(dem.DesiredIdx)
		}
		grants[i] = g
	}
}

// GreedySlack grants every core its desired frequency when the budget
// admits it; when it does not, cores donate headroom in order of predicted
// tail slack — the core that can best afford to run slower throttles
// first, one grid step at a time. Each donated step debits the donor's
// slack estimate linearly (a core reaching the minimum step is modeled as
// having spent its entire predicted slack), so donation spreads across
// slack-rich cores instead of bottoming one out. Ties break to the lowest
// core index, keeping rounds deterministic.
type GreedySlack struct{}

// Name implements Allocator.
func (GreedySlack) Name() string { return "greedy-slack" }

// Allocate implements Allocator.
func (GreedySlack) Allocate(d *Domain, demands []Demand, grants []int) {
	for i, dem := range demands {
		grants[i] = dem.DesiredIdx
	}
	sum := d.PowerOf(grants)
	if sum <= d.capW {
		return
	}
	rem := d.rem[:len(demands)]
	debit := d.debit[:len(demands)]
	for i, dem := range demands {
		rem[i] = dem.SlackNs
		if dem.DesiredIdx > 0 {
			debit[i] = dem.SlackNs / float64(dem.DesiredIdx)
		} else {
			debit[i] = 0
		}
	}
	for sum > d.capW {
		// Donate from the core with the most remaining slack; among equal
		// slacks (common while controllers bootstrap and report 0) shed
		// from the highest-granted core, so ties equalize levels instead
		// of bottoming the lowest index out to the minimum step. Final tie
		// to the lowest index keeps rounds deterministic.
		donor := -1
		for i := range demands {
			if grants[i] == 0 {
				continue
			}
			if donor < 0 || rem[i] > rem[donor] ||
				(rem[i] == rem[donor] && grants[i] > grants[donor]) {
				donor = i
			}
		}
		if donor < 0 {
			// All donors exhausted: infeasible. Settle on each core's
			// cheapest admissible step (on the monotone physical curve that
			// is step 0, where the donation loop already left everyone) and
			// let the caller account the excess.
			for i, dem := range demands {
				grants[i] = d.FloorIdx(dem.DesiredIdx)
			}
			return
		}
		grants[donor]--
		sum -= d.power[grants[donor]+1] - d.power[grants[donor]]
		rem[donor] -= debit[donor]
	}
}

// Waterfill is FastCap-style iterative water-filling on the power curve:
// start every core at its cheapest admissible step and repeatedly raise the
// lowest-granted core (ties to the lowest index) whose next step both
// stays at or below its desired frequency and fits the remaining budget,
// until no raise fits. Budget flows to the cores that asked for it —
// idle-ish cores desiring low frequencies leave their share to loaded
// ones — while the raise-lowest-first order keeps the grant vector
// max-min fair (leximin-optimal on the shared power curve; the
// brute-force reference test pins this).
type Waterfill struct{}

// Name implements Allocator.
func (Waterfill) Name() string { return "waterfill" }

// Allocate implements Allocator.
func (Waterfill) Allocate(d *Domain, demands []Demand, grants []int) {
	// Feasible short-circuit: when every desire fits the budget, the raise
	// loop below provably ends at the desires — skip straight there. This
	// keeps the per-decision cost O(cores) whenever the cap is not
	// binding, which is most rounds of a well-provisioned domain.
	for i, dem := range demands {
		grants[i] = dem.DesiredIdx
	}
	if d.PowerOf(grants) <= d.capW {
		return
	}
	for i, dem := range demands {
		grants[i] = d.FloorIdx(dem.DesiredIdx)
	}
	sum := d.PowerOf(grants)
	if sum > d.capW {
		return // infeasible even at each core's cheapest admissible step
	}
	for {
		next := -1
		for i, dem := range demands {
			if grants[i] >= dem.DesiredIdx {
				continue
			}
			if d.power[grants[i]+1]-d.power[grants[i]] > d.capW-sum {
				continue
			}
			if next < 0 || grants[i] < grants[next] {
				next = i
			}
		}
		if next < 0 {
			// The running sum accumulates one rounding per raise; the
			// grants themselves are exact indices, so callers re-deriving
			// Σ PowerAt(grant) stay within float error of the check above.
			return
		}
		grants[next]++
		sum += d.power[grants[next]] - d.power[grants[next]-1]
	}
}

var (
	_ Allocator = Uniform{}
	_ Allocator = GreedySlack{}
	_ Allocator = Waterfill{}
)
