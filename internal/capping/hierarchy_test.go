package capping

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestHierarchyValidation(t *testing.T) {
	one := []LevelSpec{{Name: "rack", Nodes: 1, CapW: 40}}
	cases := []struct {
		name   string
		levels []LevelSpec
		leaves int
		floorW float64
		maxW   float64
	}{
		{"no levels", nil, 4, 1, 10},
		{"zero leaves", one, 0, 1, 10},
		{"zero floor", one, 4, 0, 10},
		{"max below floor", one, 4, 5, 4},
		{"zero nodes", []LevelSpec{{Name: "rack", Nodes: 0, CapW: 40}}, 4, 1, 10},
		{"zero root budget", []LevelSpec{{Name: "rack", Nodes: 1}}, 4, 1, 10},
		{"negative cap", []LevelSpec{{Name: "rack", Nodes: 1, CapW: 40}, {Name: "pdu", Nodes: 2, CapW: -1}}, 4, 1, 10},
		{"shrinking fan-out", []LevelSpec{{Name: "rack", Nodes: 2, CapW: 40}, {Name: "pdu", Nodes: 1}}, 4, 1, 10},
		{"more nodes than leaves", []LevelSpec{{Name: "rack", Nodes: 1, CapW: 40}, {Name: "pdu", Nodes: 8}}, 4, 1, 10},
		{"fractional oversub", []LevelSpec{{Name: "rack", Nodes: 1, CapW: 40, Oversub: 0.5}}, 4, 1, 10},
	}
	for _, c := range cases {
		if _, err := NewHierarchy(HierarchySpec{Levels: c.levels}, c.leaves, c.floorW, c.maxW); err == nil {
			t.Errorf("%s: NewHierarchy accepted invalid input", c.name)
		}
	}
	if _, err := NewHierarchy(HierarchySpec{Levels: one}, 4, 1, 10); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if _, err := NewHierarchy(HierarchySpec{Levels: []LevelSpec{{Name: "rack", Nodes: 1, CapW: math.Inf(1)}}}, 4, 1, 10); err != nil {
		t.Fatalf("infinite root budget rejected: %v", err)
	}
}

func TestLevelByName(t *testing.T) {
	for _, name := range LevelNames() {
		a, err := LevelByName(name)
		if err != nil {
			t.Fatalf("LevelByName(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("LevelByName(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := LevelByName("nope"); err == nil {
		t.Fatal("unknown level allocator accepted")
	}
}

// TestStaticLevelExactShare pins the float-exactness the degenerate
// byte-identity contract rests on: a budget constructed as n·cap divides
// back to exactly cap (one division, no accumulation), so a one-level
// static tree at oversubscription 1 reproduces flat per-socket caps
// bit-for-bit.
func TestStaticLevelExactShare(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		children := make([]ChildDemand, n)
		for i := range children {
			children[i] = ChildDemand{FloorW: 1, MaxW: 1000, DemandW: 500}
		}
		grants := make([]float64, n)
		const cap = 24.0
		StaticLevel{}.AllocateLevel(float64(n)*cap, children, grants)
		for i, g := range grants {
			if g != cap {
				t.Fatalf("n=%d: static share %v for child %d, want exactly %v", n, g, i, cap)
			}
		}
	}
}

// bruteForceLevelLeximin enumerates integer grant vectors g in
// [floor, target] with Σ g ≤ budget and returns the leximin-optimal
// sorted vector. Exponential — keep instances tiny.
func bruteForceLevelLeximin(budget float64, floors, targets []int) []int {
	n := len(floors)
	cur := make([]int, n)
	sorted := make([]int, n)
	var best []int
	var walk func(i, sum int)
	walk = func(i, sum int) {
		if float64(sum) > budget {
			return
		}
		if i == n {
			copy(sorted, cur)
			sort.Ints(sorted)
			if best == nil || leximinLess(best, sorted) {
				best = append(best[:0], sorted...)
			}
			return
		}
		for g := floors[i]; g <= targets[i]; g++ {
			cur[i] = g
			walk(i+1, sum+g)
		}
	}
	walk(0, 0)
	return best
}

// TestWaterfillLevelMatchesBruteForce proves leximin optimality holds
// level-wise, mirroring the flat allocator's brute-force pin: on integral
// instances whose budget is realizable at an integral water level, the
// continuous fill must land exactly on the integer leximin optimum over
// all feasible integer vectors.
func TestWaterfillLevelMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(3)
		floors := make([]int, n)
		targets := make([]int, n)
		children := make([]ChildDemand, n)
		for i := range children {
			floors[i] = r.Intn(4)
			targets[i] = floors[i] + r.Intn(5)
			children[i] = ChildDemand{
				FloorW:  float64(floors[i]),
				MaxW:    float64(targets[i]), // max == target: single-pass instance
				DemandW: float64(targets[i]),
			}
		}
		// A budget realized by an integral water level keeps the optimum
		// integral, so the continuous fill and the integer brute force
		// must agree exactly (modulo interpolation ulps).
		level := float64(r.Intn(9))
		budget := 0.0
		for i := range children {
			budget += clampW(level, children[i].FloorW, children[i].MaxW)
		}
		grants := make([]float64, n)
		WaterfillLevel{}.AllocateLevel(budget, children, grants)

		sum := 0.0
		for i, g := range grants {
			if g < children[i].FloorW-1e-9 || g > children[i].MaxW+1e-9 {
				t.Fatalf("trial %d: grant %v outside [%v, %v]", trial, g, children[i].FloorW, children[i].MaxW)
			}
			sum += g
		}
		if sum > budget+1e-9 {
			t.Fatalf("trial %d: Σ grants %v exceeds budget %v", trial, sum, budget)
		}

		want := bruteForceLevelLeximin(budget, floors, targets)
		got := append([]float64(nil), grants...)
		sort.Float64s(got)
		for i := range want {
			if math.Abs(got[i]-float64(want[i])) > 1e-6 {
				t.Fatalf("trial %d: waterfill %v is not the leximin optimum %v (budget %v, floors %v, targets %v)",
					trial, got, want, budget, floors, targets)
			}
		}
	}
}

// TestWaterfillLevelSurplus pins the second pass: budget beyond every
// demand lifts grants toward the maxima instead of evaporating.
func TestWaterfillLevelSurplus(t *testing.T) {
	children := []ChildDemand{
		{FloorW: 2, MaxW: 20, DemandW: 4},
		{FloorW: 2, MaxW: 20, DemandW: 4},
	}
	grants := make([]float64, 2)
	WaterfillLevel{}.AllocateLevel(28, children, grants)
	if grants[0] != 14 || grants[1] != 14 {
		t.Fatalf("surplus not spread toward maxima: %v, want [14 14]", grants)
	}
	// And never past them.
	WaterfillLevel{}.AllocateLevel(1000, children, grants)
	if grants[0] != 20 || grants[1] != 20 {
		t.Fatalf("grants exceeded maxima: %v", grants)
	}
	// Infeasible budgets settle on the floors.
	WaterfillLevel{}.AllocateLevel(1, children, grants)
	if grants[0] != 2 || grants[1] != 2 {
		t.Fatalf("infeasible budget did not floor: %v", grants)
	}
}

// TestHierarchyReallocate walks a rack → PDU → socket tree end to end:
// demand-aware division follows the skew, respects every bound, and is
// deterministic; the rigid static tree starves the loaded socket at the
// same budget.
func TestHierarchyReallocate(t *testing.T) {
	spec := HierarchySpec{Levels: []LevelSpec{
		{Name: "rack", Nodes: 1, CapW: 40},
		{Name: "pdu", Nodes: 2},
	}}
	h, err := NewHierarchy(spec, 4, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	demand := []float64{18, 2, 2, 2}
	caps := h.Reallocate(demand)
	sum := 0.0
	for i, c := range caps {
		if c < 2 || c > 20 {
			t.Fatalf("leaf %d cap %v outside [2, 20]", i, c)
		}
		sum += c
	}
	if sum > 40+1e-9 {
		t.Fatalf("Σ leaf caps %v exceeds the rack budget", sum)
	}
	if caps[0] < 18 {
		t.Fatalf("demand-aware tree granted the loaded socket %v W, want ≥ its 18 W demand", caps[0])
	}

	// Determinism: a fresh tree over the same demands grants identically.
	h2, err := NewHierarchy(spec, 4, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	caps0 := append([]float64(nil), caps...)
	if got := h2.Reallocate(demand); !reflect.DeepEqual(caps0, append([]float64(nil), got...)) {
		t.Fatalf("reallocation not deterministic: %v vs %v", caps0, got)
	}

	// The rigid static tree splits 40 W into 10 W shares regardless of
	// the skew: the loaded socket is starved.
	sspec := HierarchySpec{Levels: []LevelSpec{
		{Name: "rack", Nodes: 1, CapW: 40, Alloc: StaticLevel{}},
		{Name: "pdu", Nodes: 2, Alloc: StaticLevel{}},
	}}
	hs, err := NewHierarchy(sspec, 4, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	scaps := hs.Reallocate(demand)
	if scaps[0] != 10 {
		t.Fatalf("static tree granted %v W, want the rigid 10 W share", scaps[0])
	}

	// A binding PDU cap clamps its subtree even when the rack has room.
	cspec := HierarchySpec{Levels: []LevelSpec{
		{Name: "rack", Nodes: 1, CapW: 400},
		{Name: "pdu", Nodes: 2, CapW: 12},
	}}
	hc, err := NewHierarchy(cspec, 4, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	ccaps := hc.Reallocate([]float64{18, 18, 18, 18})
	if got := ccaps[0] + ccaps[1]; got > 12+1e-9 {
		t.Fatalf("PDU subtree granted %v W over its 12 W cap", got)
	}

	st := h.Stats()
	if st.Reallocations != 1 {
		t.Fatalf("Reallocations = %d, want 1", st.Reallocations)
	}
	names := []string{"rack", "pdu", "socket"}
	if len(st.Levels) != len(names) {
		t.Fatalf("stats levels = %d, want %d", len(st.Levels), len(names))
	}
	for i, want := range names {
		if st.Levels[i].Name != want {
			t.Fatalf("level %d named %q, want %q", i, st.Levels[i].Name, want)
		}
	}
	if st.Levels[0].MaxGrantW != 40 {
		t.Fatalf("rack grant %v, want its full 40 W budget", st.Levels[0].MaxGrantW)
	}
	if st.Levels[2].Nodes != 4 {
		t.Fatalf("socket level has %d nodes, want 4", st.Levels[2].Nodes)
	}
}

// TestHierarchyOversub pins the oversubscription bet: a level divides
// grant × ratio among children, so leaf grants may sum past the physical
// budget — the provisioning gamble that siblings do not peak together.
func TestHierarchyOversub(t *testing.T) {
	spec := HierarchySpec{Levels: []LevelSpec{
		{Name: "rack", Nodes: 1, CapW: 20, Oversub: 1.5},
	}}
	h, err := NewHierarchy(spec, 2, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	caps := h.Reallocate([]float64{100, 100})
	if caps[0] != 15 || caps[1] != 15 {
		t.Fatalf("oversubscribed grants %v, want [15 15] (20 W × 1.5 / 2)", caps)
	}
}
