package coloc

import (
	"math"
	"testing"

	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/workload"
)

// TestColocCoreMatchesQueueingWithoutInterference ties the two simulators
// together: with the interference model zeroed, a colocated core must
// serve the LC trace exactly like the standalone queueing server (the
// batch app only consumes gaps), while still making batch progress.
func TestColocCoreMatchesQueueingWithoutInterference(t *testing.T) {
	for _, appName := range []string{"masstree", "xapian"} {
		app, err := workload.AppByName(appName)
		if err != nil {
			t.Fatal(err)
		}
		tr := workload.GenerateAtLoad(app, 0.5, 1500, 33)

		colRes, err := RunCore(CoreConfig{
			App:               app,
			Batch:             workload.BatchPool()[0],
			Trace:             tr,
			LCPolicy:          queueing.FixedPolicy{MHz: cpu.NominalMHz},
			BatchMHz:          cpu.NominalMHz, // same frequency: no switch lag differences
			Grid:              cpu.DefaultGrid(),
			Power:             cpu.DefaultPowerModel(),
			TransitionLatency: 0,
			Interference:      Interference{}, // zero: no pollution, no preemption cost
		})
		if err != nil {
			t.Fatal(err)
		}

		qcfg := queueing.DefaultConfig()
		qcfg.TransitionLatency = 0
		qcfg.WakeLatency = 0
		qRes, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, qcfg)
		if err != nil {
			t.Fatal(err)
		}

		if len(colRes.Completions) != len(qRes.Completions) {
			t.Fatalf("%s: completion counts differ: %d vs %d",
				appName, len(colRes.Completions), len(qRes.Completions))
		}
		for i := range qRes.Completions {
			a, b := colRes.Completions[i], qRes.Completions[i]
			if a.ID != b.ID {
				t.Fatalf("%s: order differs at %d", appName, i)
			}
			if math.Abs(a.ResponseNs-b.ResponseNs) > 4 {
				t.Fatalf("%s: request %d response %v vs %v",
					appName, i, a.ResponseNs, b.ResponseNs)
			}
		}
		// LC energy matches the standalone server's active energy.
		if math.Abs(colRes.LCEnergyJ-qRes.ActiveEnergyJ) > 1e-3*qRes.ActiveEnergyJ {
			t.Fatalf("%s: LC energy %v vs standalone %v",
				appName, colRes.LCEnergyJ, qRes.ActiveEnergyJ)
		}
		// And the batch app filled (only) the gaps.
		if colRes.BatchUnits <= 0 {
			t.Fatalf("%s: batch made no progress", appName)
		}
		wall := float64(colRes.EndTime)
		if gap := colRes.LCBusyNs + colRes.BatchBusyNs - wall; math.Abs(gap) > 0.01*wall {
			t.Fatalf("%s: busy accounting off by %v ns", appName, gap)
		}
	}
}
