// Package coloc implements RubikColoc and the colocation substrate of
// paper Secs. 6-7: latency-critical (LC) and batch applications
// time-multiplex the same cores. The memory system (LLC capacity and DRAM
// bandwidth) is partitioned as in the paper, so the residual interference
// is core-private state (branch predictors, TLBs, L1/L2): after batch work
// occupies a core, the next LC requests pay extra compute cycles to re-warm
// that state, decaying as the core warms — "private caches can be refilled
// from a warm LLC in microseconds" (paper Sec. 6).
//
// Four schemes are modeled (paper Sec. 7): RubikColoc (Rubik sets LC
// frequencies; batch runs at its optimal throughput-per-watt frequency when
// the LC app is idle), StaticColoc (LC at the StaticOracle frequency of an
// uncolocated run), and the hardware QoS-blind allocators HW-T (maximize
// aggregate throughput under TDP) and HW-TPW (maximize aggregate
// throughput/watt), which re-allocate per-core frequencies every 100 us.
package coloc

import (
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// Interference models the core-private-state pollution that core sharing
// causes. The cost is *additive and one-time* — a bounded number of extra
// compute cycles to refill caches, TLBs and predictor state, charged to
// the first LC request after each batch occupancy — because the state that
// must be refilled has a fixed size and refilling it once warms the core
// for the rest of the busy period. (A multiplicative or per-request model
// would absurdly charge long requests more for the same cold caches, or
// charge a burst repeatedly for one eviction.)
type Interference struct {
	// PreemptLatency is the context-switch delay before an LC request can
	// start when batch work occupies the core.
	PreemptLatency sim.Time
	// ColdCyclesBase is the extra compute cycles the resuming LC request
	// pays on a fully polluted core with a zero-footprint batch partner,
	// for an LC app of reference footprint (see RefCycles).
	ColdCyclesBase float64
	// ColdCyclesPerMemFrac adds cycles proportional to the batch partner's
	// memory-boundness (cache-hungry partners evict more LC state).
	ColdCyclesPerMemFrac float64
	// RefCycles scales the cost by the LC app's own working-set proxy
	// (mean compute cycles per request, clamped to [0.2, 2] of RefCycles):
	// an app whose requests do little work has little warm state to lose.
	RefCycles float64
	// SaturationNs is the batch occupancy after which pollution saturates.
	SaturationNs float64
}

// DefaultInterference returns the calibrated interference model. At
// nominal frequency the worst partner (mcf-like) costs the resuming
// request ~57 us of re-warming for a masstree-sized footprint and up to
// ~270 us for the largest footprints — tens-of-microseconds scale, per
// paper Sec. 6.
func DefaultInterference() Interference {
	return Interference{
		PreemptLatency:       10 * sim.Microsecond,
		ColdCyclesBase:       40_000,
		ColdCyclesPerMemFrac: 400_000,
		RefCycles:            600_000,
		SaturationNs:         50_000, // 50 us of batch execution fully pollutes
	}
}

// extraCycles returns the one-time re-warming cost for the LC request that
// resumes after the core ran batch work for occupancyNs; lcMeanCycles is
// the LC app's mean per-request compute work (its footprint proxy).
func (ic Interference) extraCycles(batch workload.BatchApp, lcMeanCycles, occupancyNs float64) float64 {
	if occupancyNs <= 0 {
		return 0
	}
	maxCycles := ic.ColdCyclesBase + ic.ColdCyclesPerMemFrac*batchMemFrac(batch)
	if ic.RefCycles > 0 {
		footprint := lcMeanCycles / ic.RefCycles
		if footprint < 0.2 {
			footprint = 0.2
		}
		if footprint > 2 {
			footprint = 2
		}
		maxCycles *= footprint
	}
	sat := occupancyNs / ic.SaturationNs
	if sat > 1 {
		sat = 1
	}
	return maxCycles * sat
}

// batchMemFrac recovers the batch app's memory-bound share of unit time at
// nominal frequency.
func batchMemFrac(b workload.BatchApp) float64 {
	computeNs := b.CyclesPerUnit * 1000 / 2400
	total := computeNs + b.MemNsPerUnit
	if total <= 0 {
		return 0
	}
	return b.MemNsPerUnit / total
}
