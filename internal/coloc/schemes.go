package coloc

import (
	"fmt"

	rubikcore "rubik/internal/core"
	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// SchemeConfig describes a colocated server for the software-managed
// schemes (RubikColoc and StaticColoc): 6 cores, each pairing one LC app
// instance with one batch app from the mix. Cores are independent (the
// memory system is partitioned and these schemes respect the TDP by
// construction: LC at or below the uncolocated-safe frequency, batch at or
// below nominal).
type SchemeConfig struct {
	App workload.LCApp
	Mix []workload.BatchApp
	// Load is the LC load fraction per core.
	Load float64
	// RequestsPerCore is the LC trace length per core.
	RequestsPerCore int
	Seed            int64
	// NewSource, when set, supplies core i's LC request stream instead of
	// the default streaming Poisson generator at Load.
	NewSource func(core int) workload.Source
	// Deadline, when > 0, stops each core's simulation at that time —
	// the termination bound when NewSource supplies unbounded streams.
	Deadline sim.Time
	// BoundNs is the LC tail latency bound (RubikColoc only).
	BoundNs float64

	Grid              cpu.Grid
	Power             cpu.PowerModel
	TransitionLatency sim.Time
	Interference      Interference
}

// RunRubikColocServer simulates a server managed by RubikColoc: each core
// runs a fresh Rubik controller for its LC instance and drops to the batch
// app's optimal throughput-per-watt frequency whenever the LC app is idle
// (paper Fig. 13c).
func RunRubikColocServer(cfg SchemeConfig) (ServerResult, error) {
	if cfg.BoundNs <= 0 {
		return ServerResult{}, fmt.Errorf("coloc: RubikColoc needs a latency bound")
	}
	return runIndependentCores(cfg, func(coreIdx int) (queueing.Policy, error) {
		rcfg := rubikcore.DefaultConfig(cfg.BoundNs)
		rcfg.Grid = cfg.Grid
		rcfg.TransitionLatency = cfg.TransitionLatency
		// Core sharing adds per-burst costs Rubik's i.i.d. model cannot
		// see (re-warming, preemption), so give the feedback loop wider
		// authority to tighten the internal target.
		rcfg.Feedback.MinScale = 0.25
		return rubikcore.New(rcfg)
	})
}

// RunStaticColocServer simulates StaticColoc: LC runs at the StaticOracle
// frequency computed on an *uncolocated* trace (so it has no slack for
// core-state interference, the weakness paper Fig. 15 exposes), batch at
// its optimal TPW frequency.
func RunStaticColocServer(cfg SchemeConfig, staticMHz int) (ServerResult, error) {
	if staticMHz <= 0 {
		return ServerResult{}, fmt.Errorf("coloc: StaticColoc needs a frequency")
	}
	return runIndependentCores(cfg, func(int) (queueing.Policy, error) {
		return queueing.FixedPolicy{MHz: staticMHz}, nil
	})
}

func runIndependentCores(cfg SchemeConfig, mkPolicy func(int) (queueing.Policy, error)) (ServerResult, error) {
	if len(cfg.Mix) == 0 {
		return ServerResult{}, fmt.Errorf("coloc: empty batch mix")
	}
	res := ServerResult{Cores: make([]CoreResult, len(cfg.Mix))}
	for i, b := range cfg.Mix {
		pol, err := mkPolicy(i)
		if err != nil {
			return ServerResult{}, err
		}
		src := workload.Source(workload.NewLoadSource(cfg.App, cfg.Load, cfg.RequestsPerCore, cfg.Seed+int64(i)*101))
		if cfg.NewSource != nil {
			src = cfg.NewSource(i)
		}
		cr, err := RunCore(CoreConfig{
			App:               cfg.App,
			Batch:             b,
			Source:            src,
			Deadline:          cfg.Deadline,
			LCPolicy:          pol,
			Grid:              cfg.Grid,
			Power:             cfg.Power,
			TransitionLatency: cfg.TransitionLatency,
			InitialMHz:        cpu.NominalMHz,
			Interference:      cfg.Interference,
		})
		if err != nil {
			return ServerResult{}, err
		}
		res.Cores[i] = cr
	}
	return res, nil
}

// DefaultSchemeConfig returns paper-like parameters for a colocated server.
func DefaultSchemeConfig(app workload.LCApp, mix []workload.BatchApp, load float64, boundNs float64, seed int64) SchemeConfig {
	return SchemeConfig{
		App:               app,
		Mix:               mix,
		Load:              load,
		RequestsPerCore:   3000,
		Seed:              seed,
		BoundNs:           boundNs,
		Grid:              cpu.DefaultGrid(),
		Power:             cpu.DefaultPowerModel(),
		TransitionLatency: 4 * sim.Microsecond,
		Interference:      DefaultInterference(),
	}
}
