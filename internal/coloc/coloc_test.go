package coloc

import (
	"math"
	"testing"

	"rubik/internal/cpu"
	"rubik/internal/policy"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

func mustBatch(t *testing.T, name string) workload.BatchApp {
	t.Helper()
	b, ok := workload.FindBatchApp(name)
	if !ok {
		t.Fatalf("batch app %s not in pool", name)
	}
	return b
}

// boundAndStatic derives the app's tail bound (fixed-nominal at 50%) and
// the StaticOracle frequency at the given load on uncolocated traces.
func boundAndStatic(t *testing.T, app workload.LCApp, load float64, n int) (float64, int) {
	t.Helper()
	rcfg := policy.DefaultReplayConfig()
	boundTr := workload.GenerateAtLoad(app, 0.5, n, 900)
	rep, err := policy.Replay(boundTr, policy.UniformAssignment(n, cpu.NominalMHz), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	bound := rep.TailNs(0.95)
	tr := workload.GenerateAtLoad(app, load, n, 901)
	so, err := policy.StaticOracle(tr, cpu.DefaultGrid(), bound, 0.95, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	return bound, so.MHz
}

func TestInterferencePenalty(t *testing.T) {
	ic := DefaultInterference()
	namd := mustBatch(t, "namd")
	mcf := mustBatch(t, "mcf")
	// No occupancy, no penalty.
	if p := ic.extraCycles(mcf, 600_000, 0); p != 0 {
		t.Fatalf("penalty without occupancy = %v", p)
	}
	// Memory-hungry partners pollute more.
	pNamd := ic.extraCycles(namd, 600_000, 1e6)
	pMcf := ic.extraCycles(mcf, 600_000, 1e6)
	if pMcf <= pNamd {
		t.Fatalf("mcf penalty %v not above namd %v", pMcf, pNamd)
	}
	// The penalty is microseconds-scale at nominal frequency (paper
	// Sec. 6: private caches refill from the warm LLC in microseconds).
	if us := pMcf * 1000 / 2400 / 1000; us < 10 || us > 200 {
		t.Fatalf("full mcf penalty = %.1f us at nominal, want microseconds-scale", us)
	}
	// Saturation: doubling a long occupancy changes nothing.
	if a, b := ic.extraCycles(mcf, 600_000, 1e8), ic.extraCycles(mcf, 600_000, 2e8); a != b {
		t.Fatalf("penalty not saturating: %v vs %v", a, b)
	}
	// Short occupancies pollute proportionally less.
	if s := ic.extraCycles(mcf, 600_000, ic.SaturationNs/10); s >= pMcf {
		t.Fatal("short occupancy must pollute less than saturation")
	}
}

func TestRunCoreBasics(t *testing.T) {
	app := workload.Masstree()
	tr := workload.GenerateAtLoad(app, 0.3, 800, 5)
	res, err := RunCore(CoreConfig{
		App:               app,
		Batch:             mustBatch(t, "gcc"),
		Trace:             tr,
		LCPolicy:          queueing.FixedPolicy{MHz: cpu.NominalMHz},
		Grid:              cpu.DefaultGrid(),
		Power:             cpu.DefaultPowerModel(),
		TransitionLatency: 0,
		Interference:      DefaultInterference(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != 800 {
		t.Fatalf("completions = %d", len(res.Completions))
	}
	if res.BatchUnits <= 0 {
		t.Fatal("batch made no progress in LC idle gaps")
	}
	// The core is never idle: LC busy + batch busy ≈ end time.
	total := res.LCBusyNs + res.BatchBusyNs
	if math.Abs(total-float64(res.EndTime)) > 0.01*float64(res.EndTime) {
		t.Fatalf("busy %v != end %v: the core idled", total, res.EndTime)
	}
	// At 30% load the LC share should be near 30% (inflated a bit by
	// interference).
	lcFrac := res.LCBusyNs / float64(res.EndTime)
	if lcFrac < 0.25 || lcFrac > 0.45 {
		t.Fatalf("LC busy fraction %v implausible for 30%% load", lcFrac)
	}
	if res.LCEnergyJ <= 0 || res.BatchEnergyJ <= 0 {
		t.Fatal("energy split missing")
	}
}

func TestRunCoreValidation(t *testing.T) {
	if _, err := RunCore(CoreConfig{}); err == nil {
		t.Fatal("empty grid must error")
	}
	cfg := CoreConfig{Grid: cpu.DefaultGrid(), InitialMHz: 999}
	if _, err := RunCore(cfg); err == nil {
		t.Fatal("off-grid initial frequency must error")
	}
}

func TestColocationInflatesServiceTimes(t *testing.T) {
	// The same trace served colocated (with interference) must be slower
	// than uncolocated.
	app := workload.Masstree()
	tr := workload.GenerateAtLoad(app, 0.4, 1500, 8)
	colocated, err := RunCore(CoreConfig{
		App: app, Batch: mustBatch(t, "mcf"), Trace: tr,
		LCPolicy: queueing.FixedPolicy{MHz: cpu.NominalMHz},
		Grid:     cpu.DefaultGrid(), Power: cpu.DefaultPowerModel(),
		Interference: DefaultInterference(),
	})
	if err != nil {
		t.Fatal(err)
	}
	qcfg := queueing.DefaultConfig()
	qcfg.TransitionLatency = 0
	qcfg.WakeLatency = 0
	alone, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	ct := colocated.TailNs(0.95, 0.1)
	at := alone.TailNs(0.95, 0.1)
	if ct <= at {
		t.Fatalf("colocated tail %v not above uncolocated %v", ct, at)
	}
}

func TestRubikColocMaintainsTailStaticColocDegrades(t *testing.T) {
	// The paper's Fig. 15 claim in miniature. StaticColoc's degradation is
	// distributional: whether a configuration violates depends on how much
	// slack the 200 MHz frequency quantization left above the uncolocated
	// p95 (which is why the paper reports 40% of mixes violating, not
	// all). So this test samples several configurations and checks the
	// distribution: RubikColoc holds every one at the bound, StaticColoc
	// violates somewhere, and StaticColoc's worst case exceeds
	// RubikColoc's.
	load := 0.6
	mix := []workload.BatchApp{mustBatch(t, "mcf")}
	worstStatic, worstRubik := 0.0, 0.0
	for _, app := range []workload.LCApp{workload.Masstree(), workload.Specjbb()} {
		n := 2500
		if minN := int(2e9 * load / app.MeanServiceNsAtNominal()); n < minN {
			n = minN
		}
		bound, staticMHz := boundAndStatic(t, app, load, n)
		for _, seed := range []int64{11, 77, 203} {
			cfg := DefaultSchemeConfig(app, mix, load, bound, seed)
			cfg.RequestsPerCore = n
			st, err := RunStaticColocServer(cfg, staticMHz)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := RunRubikColocServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			stTail := st.TailNs(0.95, 0.1) / bound
			rbTail := rb.TailNs(0.95, 0.1) / bound
			if stTail > worstStatic {
				worstStatic = stTail
			}
			if rbTail > worstRubik {
				worstRubik = rbTail
			}
			if rbTail > 1.05 {
				t.Errorf("%s seed %d: RubikColoc tail ratio %.3f above bound", app.Name, seed, rbTail)
			}
		}
	}
	if worstStatic < 1.02 {
		t.Errorf("StaticColoc never degraded (worst %.3f): interference too weak to matter", worstStatic)
	}
	if worstRubik >= worstStatic {
		t.Errorf("RubikColoc worst (%.3f) not better than StaticColoc worst (%.3f)",
			worstRubik, worstStatic)
	}
}

func TestRubikColocKeepsBatchProgress(t *testing.T) {
	app := workload.Masstree()
	const n = 1500
	bound, _ := boundAndStatic(t, app, 0.3, n)
	mix := []workload.BatchApp{mustBatch(t, "namd")}
	cfg := DefaultSchemeConfig(app, mix, 0.3, bound, 3)
	cfg.RequestsPerCore = n
	res, err := RunRubikColocServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cores[0]
	// At 30% LC load, batch should get the majority of the core.
	if frac := c.BatchBusyNs / float64(c.EndTime); frac < 0.5 {
		t.Fatalf("batch only got %.2f of the core at 30%% LC load", frac)
	}
	if res.TotalEnergyJ() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestSchemeValidation(t *testing.T) {
	app := workload.Masstree()
	cfg := DefaultSchemeConfig(app, nil, 0.3, 1e6, 1)
	if _, err := RunRubikColocServer(cfg); err == nil {
		t.Fatal("empty mix must error")
	}
	cfg2 := DefaultSchemeConfig(app, []workload.BatchApp{mustBatch(t, "gcc")}, 0.3, 0, 1)
	if _, err := RunRubikColocServer(cfg2); err == nil {
		t.Fatal("missing bound must error")
	}
	if _, err := RunStaticColocServer(cfg2, 0); err == nil {
		t.Fatal("missing static frequency must error")
	}
}

func TestAllocateRespectsTDP(t *testing.T) {
	grid := cpu.DefaultGrid()
	model := cpu.DefaultPowerModel()
	curves := make([]occupantCurve, 6)
	for i := range curves {
		curves[i] = occupantCurve{computeCyclesPerUnit: 2e6, memNsPerUnit: 5e4, activity: 1}
	}
	for _, obj := range []HWObjective{HWThroughput, HWThroughputPerWatt} {
		freqs := allocate(curves, nil, grid, model, 20, obj)
		var total float64
		for i, f := range freqs {
			total += curves[i].power(f, model)
			if grid.Index(f) < 0 {
				t.Fatalf("allocated off-grid frequency %d", f)
			}
		}
		if total > 20+1e-9 {
			t.Fatalf("objective %v exceeded TDP: %v W", obj, total)
		}
	}
}

func TestAllocateHWTFavorsComputeBound(t *testing.T) {
	grid := cpu.DefaultGrid()
	model := cpu.DefaultPowerModel()
	namd := mustBatch(t, "namd")
	mcf := mustBatch(t, "mcf")
	curves := []occupantCurve{
		{computeCyclesPerUnit: namd.CyclesPerUnit, memNsPerUnit: namd.MemNsPerUnit, activity: 1},
		{computeCyclesPerUnit: mcf.CyclesPerUnit, memNsPerUnit: mcf.MemNsPerUnit, activity: 1},
	}
	// A budget that cannot power both cores at max.
	freqs := allocate(curves, nil, grid, model, 12, HWThroughput)
	if freqs[0] <= freqs[1] {
		t.Fatalf("HW-T gave compute-bound core %d and memory-bound core %d", freqs[0], freqs[1])
	}
}

func TestHWServersViolateTails(t *testing.T) {
	// Fig. 15: the hardware QoS-blind schemes grossly violate tails at 60%
	// load while RubikColoc holds them.
	app := workload.Masstree()
	const n = 1500
	load := 0.6
	bound, _ := boundAndStatic(t, app, load, n)
	mix := workload.Mixes(1, 6, 42)[0]

	for _, obj := range []HWObjective{HWThroughput, HWThroughputPerWatt} {
		res, err := RunHWServer(ServerConfig{
			App: app, Mix: mix, Load: load, RequestsPerCore: n, Seed: 9,
			Grid: cpu.DefaultGrid(), Power: cpu.DefaultPowerModel(),
			TransitionLatency: 4 * sim.Microsecond,
			Interference:      DefaultInterference(),
			Objective:         obj,
		})
		if err != nil {
			t.Fatal(err)
		}
		rel := res.TailNs(0.95, 0.1) / bound
		if rel < 1.2 {
			t.Errorf("objective %v: tail ratio %.2f — expected gross violation (>1.2)", obj, rel)
		}
	}
}

func TestRunHWServerValidation(t *testing.T) {
	if _, err := RunHWServer(ServerConfig{}); err == nil {
		t.Fatal("empty mix must error")
	}
}
