package coloc

import (
	"fmt"
	"math"
	"sort"

	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// CoreConfig describes one colocated core: an LC app instance sharing the
// core with one batch app. The LC app has strict priority — it runs
// whenever it has pending requests, and the batch app soaks up the idle
// gaps (paper Fig. 13c).
type CoreConfig struct {
	App   workload.LCApp
	Batch workload.BatchApp
	// Trace is the LC request stream.
	Trace workload.Trace
	// Source, when set, streams the LC requests instead of Trace — any
	// scenario source (bursty, diurnal, flash-crowd, modulated) without
	// materializing it. A materialized Trace and its Source are
	// byte-identical under replay.
	Source workload.Source
	// Deadline, when > 0, stops the simulation at that time instead of
	// draining the LC stream — the termination bound for unbounded
	// sources (n < 0 generators), which never drain.
	Deadline sim.Time
	// LCPolicy decides LC frequencies (nil when an external allocator —
	// HW-T / HW-TPW — owns the frequency).
	LCPolicy queueing.Policy
	// BatchMHz is the frequency the core drops to while batch occupies it
	// (ignored when ExternalFreq).
	BatchMHz int
	// ExternalFreq marks cores whose frequency is set by a server-level
	// allocator each epoch.
	ExternalFreq bool

	Grid              cpu.Grid
	Power             cpu.PowerModel
	TransitionLatency sim.Time
	InitialMHz        int
	Interference      Interference
}

// CoreResult summarizes one colocated core's run.
type CoreResult struct {
	Completions []queueing.Completion
	// LCEnergyJ and BatchEnergyJ split core energy by occupant.
	LCEnergyJ    float64
	BatchEnergyJ float64
	// BatchUnits is the batch work completed in the LC idle gaps.
	BatchUnits  float64
	LCBusyNs    float64
	BatchBusyNs float64
	EndTime     sim.Time
}

// TailNs returns the q-quantile LC response latency after warmup.
func (r CoreResult) TailNs(q, warmupFrac float64) float64 {
	skip := int(warmupFrac * float64(len(r.Completions)))
	if skip >= len(r.Completions) {
		return 0
	}
	vals := make([]float64, 0, len(r.Completions)-skip)
	for _, c := range r.Completions[skip:] {
		vals = append(vals, c.ResponseNs)
	}
	return percentile(vals, q)
}

// core is the colocated-core simulator: the shared queueing.Core serving
// the LC stream, with hooks that fill LC idle time with batch execution
// and apply the core-state interference model when the LC app resumes.
// The request-serving loop itself lives in queueing.Core; this type only
// adds the colocation semantics.
type core struct {
	eng  *sim.Engine
	cfg  CoreConfig
	qc   *queueing.Core
	feed *queueing.Feeder

	// Interference state.
	batchOccupiedNs float64 // duration of the most recent batch occupancy
	occupancyStart  sim.Time
	batchRunning    bool
	lcMeanCycles    float64 // the LC app's working-set proxy

	// Batch progress accrued in the LC idle gaps.
	batchUnits   float64
	batchEnergyJ float64
	batchBusyNs  float64
}

// newCore validates the config and prepares a core on the given engine.
func newCore(eng *sim.Engine, cfg CoreConfig) (*core, error) {
	if cfg.Grid.Len() == 0 {
		return nil, fmt.Errorf("coloc: empty grid")
	}
	if cfg.InitialMHz == 0 {
		cfg.InitialMHz = cpu.NominalMHz
	}
	if cfg.Grid.Index(cfg.InitialMHz) < 0 {
		return nil, fmt.Errorf("coloc: initial frequency %d not on grid", cfg.InitialMHz)
	}
	if !cfg.ExternalFreq && cfg.BatchMHz == 0 {
		cfg.BatchMHz = cfg.Batch.OptimalTPWFreq(cfg.Grid, cfg.Power)
	}
	src := cfg.Source
	if src == nil {
		src = workload.NewTraceSource(cfg.Trace)
	}
	expected := 0
	if n := src.Len(); n > 0 {
		expected = n
	}
	qc, err := queueing.NewCore(eng, cfg.LCPolicy, queueing.Config{
		Grid:              cfg.Grid,
		Power:             cfg.Power,
		TransitionLatency: cfg.TransitionLatency,
		InitialMHz:        cfg.InitialMHz,
		ExpectedRequests:  expected,
		// No WakeLatency: the core never sleeps — batch work keeps it busy,
		// and the resume cost is the interference model's preemption
		// latency instead.
	})
	if err != nil {
		return nil, err
	}
	c := &core{
		eng:          eng,
		cfg:          cfg,
		qc:           qc,
		batchRunning: true, // batch occupies the core until LC work arrives
		lcMeanCycles: cfg.App.Compute.Mean(),
	}
	qc.SetHooks(queueing.Hooks{
		StartService: c.startService,
		Busy:         c.onBusy,
		Idle:         c.onIdle,
		IdleAccrual:  c.accrueBatch,
		// Only actuate the LC policy's periodic tick while the LC app owns
		// the core.
		GateTick: func() bool { return qc.QueueLen() > 0 },
		// Completion-aware sources (closed-loop clients) get their
		// feedback; a no-op for ordinary sources.
		Completion: func(comp queueing.Completion) { c.feed.NotifyCompletion(comp.Done) },
	})
	c.feed = queueing.NewSourceFeeder(eng, src, qc.Enqueue)
	return c, nil
}

// start schedules the first arrival and policy tick.
func (c *core) start() {
	c.feed.Start()
	c.qc.StartTicks(func() bool { return c.feed.Remaining() > 0 })
	if c.batchRunning {
		c.occupancyStart = c.eng.Now()
		if !c.cfg.ExternalFreq {
			c.qc.ApplyFreq(c.cfg.BatchMHz)
		}
	}
}

// accrueBatch charges batch units and energy for an LC-idle span: batch
// occupies the core instead of sleep.
func (c *core) accrueBatch(dtNs float64, curMHz int) {
	c.batchUnits += c.cfg.Batch.UnitsPerSec(curMHz) * dtNs / 1e9
	c.batchEnergyJ += c.cfg.Batch.PowerW(curMHz, c.cfg.Power) * dtNs / 1e9
	c.batchBusyNs += dtNs
}

// onBusy closes the batch occupancy window when LC work preempts batch.
func (c *core) onBusy(now sim.Time) {
	if c.batchRunning {
		c.batchOccupiedNs = float64(now - c.occupancyStart)
		c.batchRunning = false
	}
}

// startService applies the interference model to the request taking the
// head of the queue. The request that resumes the LC app after a batch
// occupancy pays the one-time re-warming cycles and the context-switch
// latency; later requests of the busy period run on a warm core.
func (c *core) startService(a *queueing.ActiveRequest, preempting bool) {
	if preempting {
		a.RemainingCC += c.cfg.Interference.extraCycles(c.cfg.Batch, c.lcMeanCycles, c.batchOccupiedNs)
		a.RemainingMem += float64(c.cfg.Interference.PreemptLatency)
	}
}

// onIdle hands the core back to batch when the LC queue drains.
func (c *core) onIdle(now sim.Time) {
	c.batchRunning = true
	c.occupancyStart = now
	if !c.cfg.ExternalFreq {
		c.qc.ApplyFreq(c.cfg.BatchMHz)
	}
}

// accrue brings the core's progress and energy accounting up to now.
func (c *core) accrue() { c.qc.Accrue() }

// applyFreq retargets the core's DVFS actuator (external allocators).
func (c *core) applyFreq(fMHz int) { c.qc.ApplyFreq(fMHz) }

// queueLen returns the LC queue population.
func (c *core) queueLen() int { return c.qc.QueueLen() }

// drained reports whether all LC requests completed.
func (c *core) drained() bool {
	return c.feed.Remaining() == 0 && c.qc.QueueLen() == 0
}

// result finalizes the core's accounting into a CoreResult. The LC side
// comes from the shared core's meter (active time = LC occupancy); the
// batch side was accrued by the idle hook.
func (c *core) result() CoreResult {
	qr := c.qc.Finalize()
	return CoreResult{
		Completions:  qr.Completions,
		LCEnergyJ:    qr.ActiveEnergyJ,
		BatchEnergyJ: c.batchEnergyJ,
		BatchUnits:   c.batchUnits,
		LCBusyNs:     float64(qr.ActiveNs),
		BatchBusyNs:  c.batchBusyNs,
		EndTime:      qr.EndTime,
	}
}

// RunCore simulates a single colocated core to completion of its LC
// stream, or to cfg.Deadline when set (required for unbounded sources).
func RunCore(cfg CoreConfig) (CoreResult, error) {
	eng := sim.NewEngine()
	c, err := newCore(eng, cfg)
	if err != nil {
		return CoreResult{}, err
	}
	c.start()
	eng.RunUntilOrDrain(cfg.Deadline)
	return c.result(), nil
}

func percentile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	cp := make([]float64, len(vals))
	copy(cp, vals)
	sort.Float64s(cp)
	rank := int(math.Ceil(q*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(cp) {
		rank = len(cp) - 1
	}
	return cp[rank]
}
