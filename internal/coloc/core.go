package coloc

import (
	"fmt"
	"math"
	"sort"

	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// CoreConfig describes one colocated core: an LC app instance sharing the
// core with one batch app. The LC app has strict priority — it runs
// whenever it has pending requests, and the batch app soaks up the idle
// gaps (paper Fig. 13c).
type CoreConfig struct {
	App   workload.LCApp
	Batch workload.BatchApp
	// Trace is the LC request stream.
	Trace workload.Trace
	// LCPolicy decides LC frequencies (nil when an external allocator —
	// HW-T / HW-TPW — owns the frequency).
	LCPolicy queueing.Policy
	// BatchMHz is the frequency the core drops to while batch occupies it
	// (ignored when ExternalFreq).
	BatchMHz int
	// ExternalFreq marks cores whose frequency is set by a server-level
	// allocator each epoch.
	ExternalFreq bool

	Grid              cpu.Grid
	Power             cpu.PowerModel
	TransitionLatency sim.Time
	InitialMHz        int
	Interference      Interference
}

// CoreResult summarizes one colocated core's run.
type CoreResult struct {
	Completions []queueing.Completion
	// LCEnergyJ and BatchEnergyJ split core energy by occupant.
	LCEnergyJ    float64
	BatchEnergyJ float64
	// BatchUnits is the batch work completed in the LC idle gaps.
	BatchUnits  float64
	LCBusyNs    float64
	BatchBusyNs float64
	EndTime     sim.Time
}

// TailNs returns the q-quantile LC response latency after warmup.
func (r CoreResult) TailNs(q, warmupFrac float64) float64 {
	skip := int(warmupFrac * float64(len(r.Completions)))
	if skip >= len(r.Completions) {
		return 0
	}
	vals := make([]float64, 0, len(r.Completions)-skip)
	for _, c := range r.Completions[skip:] {
		vals = append(vals, c.ResponseNs)
	}
	return percentile(vals, q)
}

type colReq struct {
	req          workload.Request
	remainingCC  float64
	remainingMem float64
	elapsedCC    float64
	elapsedMem   float64
	start        sim.Time
	qlenAtArr    int
	started      bool
}

// core is the colocated-core simulator. It mirrors queueing.server but
// fills LC idle time with batch execution and applies the core-state
// interference model when the LC app resumes.
type core struct {
	eng *sim.Engine
	cfg CoreConfig

	next  int
	queue []*colReq

	cur           int
	target        int
	switchPending bool
	lastAccrual   sim.Time
	gen           uint64

	// Interference state.
	batchOccupiedNs float64 // duration of the most recent batch occupancy
	occupancyStart  sim.Time
	batchRunning    bool
	lcMeanCycles    float64 // the LC app's working-set proxy

	res CoreResult
}

// newCore validates the config and prepares a core on the given engine.
func newCore(eng *sim.Engine, cfg CoreConfig) (*core, error) {
	if cfg.Grid.Len() == 0 {
		return nil, fmt.Errorf("coloc: empty grid")
	}
	if cfg.InitialMHz == 0 {
		cfg.InitialMHz = cpu.NominalMHz
	}
	if cfg.Grid.Index(cfg.InitialMHz) < 0 {
		return nil, fmt.Errorf("coloc: initial frequency %d not on grid", cfg.InitialMHz)
	}
	if !cfg.ExternalFreq && cfg.BatchMHz == 0 {
		cfg.BatchMHz = cfg.Batch.OptimalTPWFreq(cfg.Grid, cfg.Power)
	}
	c := &core{
		eng:          eng,
		cfg:          cfg,
		cur:          cfg.InitialMHz,
		target:       cfg.InitialMHz,
		batchRunning: true, // batch occupies the core until LC work arrives
		lcMeanCycles: cfg.App.Compute.Mean(),
	}
	return c, nil
}

// start schedules the first arrival and policy tick.
func (c *core) start() {
	if len(c.cfg.Trace.Requests) > 0 {
		c.eng.At(c.cfg.Trace.Requests[0].Arrival, c.arrivalEvent)
	}
	if t, ok := c.cfg.LCPolicy.(queueing.Ticker); ok && t.TickEvery() > 0 {
		c.eng.After(t.TickEvery(), func() { c.tickEvent(t) })
	}
	if c.batchRunning {
		c.occupancyStart = c.eng.Now()
		if !c.cfg.ExternalFreq {
			c.applyFreq(c.cfg.BatchMHz)
		}
	}
}

func (c *core) accrue() {
	now := c.eng.Now()
	dt := now - c.lastAccrual
	c.lastAccrual = now
	if dt <= 0 {
		return
	}
	dtNs := float64(dt)
	if len(c.queue) == 0 {
		// Batch occupies the core: accrue units and batch energy.
		c.res.BatchUnits += c.cfg.Batch.UnitsPerSec(c.cur) * dtNs / 1e9
		c.res.BatchEnergyJ += c.cfg.Batch.PowerW(c.cur, c.cfg.Power) * dtNs / 1e9
		c.res.BatchBusyNs += dtNs
		return
	}
	c.res.LCEnergyJ += c.cfg.Power.ActivePower(c.cur) * dtNs / 1e9
	c.res.LCBusyNs += dtNs
	head := c.queue[0]
	total := head.remainingCC*1000/float64(c.cur) + head.remainingMem
	if total <= 0 {
		return
	}
	alpha := dtNs / total
	if alpha > 1 {
		alpha = 1
	}
	dCC := head.remainingCC * alpha
	dMem := head.remainingMem * alpha
	head.remainingCC -= dCC
	head.remainingMem -= dMem
	head.elapsedCC += dCC
	head.elapsedMem += dMem
}

// beginService applies the interference model to the request taking the
// head of the queue. The request that resumes the LC app after a batch
// occupancy pays the one-time re-warming cycles and the context-switch
// latency; later requests of the busy period run on a warm core.
func (c *core) beginService(a *colReq, preempting bool) {
	now := c.eng.Now()
	a.start = now
	a.started = true
	if preempting {
		a.remainingCC += c.cfg.Interference.extraCycles(c.cfg.Batch, c.lcMeanCycles, c.batchOccupiedNs)
		a.remainingMem += float64(c.cfg.Interference.PreemptLatency)
	}
}

func (c *core) view() queueing.View {
	q := make([]queueing.QueuedRequest, len(c.queue))
	for i, a := range c.queue {
		q[i] = queueing.QueuedRequest{Arrival: a.req.Arrival}
	}
	v := queueing.View{
		Now:        c.eng.Now(),
		CurrentMHz: c.cur,
		TargetMHz:  c.target,
		Queue:      q,
	}
	if len(c.queue) > 0 {
		v.HeadElapsedCycles = c.queue[0].elapsedCC
		v.HeadElapsedMemNs = sim.Time(c.queue[0].elapsedMem)
	}
	return v
}

func (c *core) decide() {
	if c.cfg.LCPolicy == nil {
		return
	}
	c.applyFreq(c.cfg.LCPolicy.OnEvent(c.view()))
}

func (c *core) applyFreq(fMHz int) {
	if fMHz <= 0 {
		return
	}
	if c.cfg.Grid.Index(fMHz) < 0 {
		fMHz = c.cfg.Grid.ClampUp(float64(fMHz))
	}
	c.target = fMHz
	if fMHz == c.cur {
		return
	}
	if c.cfg.TransitionLatency == 0 {
		c.cur = fMHz
		c.rescheduleCompletion()
		return
	}
	if !c.switchPending {
		c.switchPending = true
		c.eng.After(c.cfg.TransitionLatency, c.switchEvent)
	}
}

func (c *core) switchEvent() {
	c.accrue()
	c.switchPending = false
	if c.cur != c.target {
		c.cur = c.target
		c.rescheduleCompletion()
	}
}

func (c *core) rescheduleCompletion() {
	c.gen++
	if len(c.queue) == 0 {
		return
	}
	head := c.queue[0]
	total := head.remainingCC*1000/float64(c.cur) + head.remainingMem
	gen := c.gen
	c.eng.After(sim.Time(math.Ceil(total)), func() { c.completionEvent(gen) })
}

func (c *core) arrivalEvent() {
	c.accrue()
	req := c.cfg.Trace.Requests[c.next]
	c.next++
	if c.next < len(c.cfg.Trace.Requests) {
		c.eng.At(c.cfg.Trace.Requests[c.next].Arrival, c.arrivalEvent)
	}
	a := &colReq{
		req:          req,
		remainingCC:  req.ComputeCycles,
		remainingMem: float64(req.MemTime),
		qlenAtArr:    len(c.queue),
	}
	wasIdle := len(c.queue) == 0
	c.queue = append(c.queue, a)
	if wasIdle {
		// LC preempts batch: close the batch occupancy window.
		if c.batchRunning {
			c.batchOccupiedNs = float64(c.eng.Now() - c.occupancyStart)
			c.batchRunning = false
		}
		c.beginService(a, true)
	}
	c.decide()
	if wasIdle {
		c.rescheduleCompletion()
	}
}

func (c *core) completionEvent(gen uint64) {
	if gen != c.gen {
		return
	}
	c.accrue()
	head := c.queue[0]
	now := c.eng.Now()
	comp := queueing.Completion{
		ID:      head.req.ID,
		Arrival: head.req.Arrival,
		Start:   head.start,
		Done:    now,
		// Report the *measured* work, as CPI-stack performance counters
		// would: elapsedCC includes the cold-start inflation and
		// elapsedMem the preemption stall, so Rubik's profiler sees the
		// interference it must absorb.
		ComputeCycles:     head.elapsedCC,
		MemTime:           sim.Time(head.elapsedMem),
		QueueLenAtArrival: head.qlenAtArr,
		ResponseNs:        float64(now - head.req.Arrival),
		ServiceNs:         float64(now - head.start),
	}
	c.res.Completions = append(c.res.Completions, comp)
	c.queue = c.queue[1:]
	if obs, ok := c.cfg.LCPolicy.(queueing.CompletionObserver); ok {
		obs.ObserveCompletion(comp)
	}
	if len(c.queue) > 0 {
		c.beginService(c.queue[0], false)
		c.decide()
		c.rescheduleCompletion()
		return
	}
	// Queue drained: hand the core back to batch.
	c.batchRunning = true
	c.occupancyStart = now
	c.gen++ // no LC completion pending
	if !c.cfg.ExternalFreq {
		c.applyFreq(c.cfg.BatchMHz)
	}
}

func (c *core) tickEvent(t queueing.Ticker) {
	c.accrue()
	f := t.OnTick(c.view())
	// Only actuate the policy's frequency while the LC app owns the core.
	if len(c.queue) > 0 {
		c.applyFreq(f)
	}
	if c.next < len(c.cfg.Trace.Requests) || len(c.queue) > 0 {
		c.eng.After(t.TickEvery(), func() { c.tickEvent(t) })
	}
}

// drained reports whether all LC requests completed.
func (c *core) drained() bool {
	return c.next >= len(c.cfg.Trace.Requests) && len(c.queue) == 0
}

// RunCore simulates a single colocated core to completion of its LC trace.
func RunCore(cfg CoreConfig) (CoreResult, error) {
	eng := sim.NewEngine()
	c, err := newCore(eng, cfg)
	if err != nil {
		return CoreResult{}, err
	}
	c.start()
	eng.Run()
	c.accrue()
	c.res.EndTime = eng.Now()
	return c.res, nil
}

func percentile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	cp := make([]float64, len(vals))
	copy(cp, vals)
	sort.Float64s(cp)
	rank := int(math.Ceil(q*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(cp) {
		rank = len(cp) - 1
	}
	return cp[rank]
}
