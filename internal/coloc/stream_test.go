package coloc

import (
	"reflect"
	"testing"

	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// TestRunCoreSourceMatchesTrace is the coloc leg of the tentpole
// property: a colocated core fed by a streaming source produces the
// byte-identical CoreResult to replaying the materialized trace of the
// same seed — interference hooks, batch accrual and all.
func TestRunCoreSourceMatchesTrace(t *testing.T) {
	app := workload.Masstree()
	const n, seed = 2000, 51
	base := CoreConfig{
		App:               app,
		Batch:             workload.BatchPool()[0],
		LCPolicy:          queueing.FixedPolicy{MHz: cpu.NominalMHz},
		Grid:              cpu.DefaultGrid(),
		Power:             cpu.DefaultPowerModel(),
		TransitionLatency: 4000,
		Interference:      DefaultInterference(),
	}

	viaTrace := base
	viaTrace.Trace = workload.GenerateAtLoad(app, 0.5, n, seed)
	want, err := RunCore(viaTrace)
	if err != nil {
		t.Fatal(err)
	}

	viaSource := base
	viaSource.Source = workload.NewLoadSource(app, 0.5, n, seed)
	got, err := RunCore(viaSource)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed coloc CoreResult differs from materialized replay")
	}
	if len(got.Completions) != n {
		t.Fatalf("served %d of %d", len(got.Completions), n)
	}

	// An unbounded source terminates via the deadline instead of hanging,
	// and an unreached deadline leaves a draining run untouched.
	deadline := base
	deadline.Source = workload.NewLoadSource(app, 0.5, -1, seed)
	deadline.Deadline = 20 * sim.Millisecond
	bounded, err := RunCore(deadline)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.EndTime != deadline.Deadline {
		t.Fatalf("deadline run ended at %v, want %v", bounded.EndTime, deadline.Deadline)
	}
	if len(bounded.Completions) < 20 {
		t.Fatalf("deadline run served only %d", len(bounded.Completions))
	}
	safety := viaSource
	safety.Source = workload.NewLoadSource(app, 0.5, n, seed)
	safety.Deadline = 3600 * sim.Second
	unperturbed, err := RunCore(safety)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unperturbed, want) {
		t.Fatal("an unreached deadline perturbed a draining coloc run")
	}
}

// TestSchemeNewSourceOverride checks the per-core source factory plumbs
// through the software-managed scheme runner.
func TestSchemeNewSourceOverride(t *testing.T) {
	app := workload.Masstree()
	mix := workload.BatchPool()[:2]
	cfg := DefaultSchemeConfig(app, mix, 0.5, 2e6, 7)
	cfg.RequestsPerCore = 500

	// Default: streaming Poisson per core.
	def, err := RunRubikColocServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Override with the same streams, explicitly: identical result.
	cfg.NewSource = func(i int) workload.Source {
		return workload.NewLoadSource(app, 0.5, 500, 7+int64(i)*101)
	}
	over, err := RunRubikColocServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, over) {
		t.Fatal("explicit per-core sources diverged from the default streams")
	}
	// A genuinely different scenario changes the result.
	cfg.NewSource = func(i int) workload.Source {
		sc, err := workload.ScenarioByName("bursty")
		if err != nil {
			t.Fatal(err)
		}
		return sc.New(app, 0.5, 500, 7+int64(i)*101)
	}
	burst, err := RunRubikColocServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(def, burst) {
		t.Fatal("bursty scenario produced the identical result — override not applied")
	}
}
