package coloc

import (
	"fmt"

	"rubik/internal/cpu"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// HWObjective selects what the hardware DVFS allocator maximizes.
type HWObjective int

const (
	// HWThroughput is HW-T: maximize aggregate instruction throughput
	// subject to the TDP (paper Sec. 7, modeled after Turbo-Boost-style
	// coordinated DVFS).
	HWThroughput HWObjective = iota
	// HWThroughputPerWatt is HW-TPW: maximize aggregate throughput/watt.
	HWThroughputPerWatt
)

// occupantCurve characterizes what a core is currently executing: its
// achievable compute-cycle throughput and power at each frequency step.
// Both LC requests and batch units reduce to (compute cycles, memory time),
// so the same two functions cover both occupants.
type occupantCurve struct {
	computeCyclesPerUnit float64
	memNsPerUnit         float64
	activity             float64
}

// rate returns the compute-cycle throughput (cycles/s) at fMHz: the
// fraction of time spent computing times the clock rate. Memory-bound
// occupants plateau; compute-bound occupants scale with f.
func (o occupantCurve) rate(fMHz int) float64 {
	computeNs := o.computeCyclesPerUnit * 1000 / float64(fMHz)
	share := computeNs / (computeNs + o.memNsPerUnit)
	return share * float64(fMHz) * 1e6
}

func (o occupantCurve) power(fMHz int, m cpu.PowerModel) float64 {
	m.ActivityFactor = o.activity
	return m.ActivePower(fMHz)
}

// allocate picks one frequency per core maximizing the objective under the
// core power budget, starting from per-core floor steps (nil floors = grid
// minimum). Both allocators are greedy step-up climbers, which is how
// hardware governors behave between epochs. The floors model the
// utilization feedback every real governor has: a core whose occupant
// cannot sustain its offered load gets boosted regardless of the efficiency
// objective — hardware DVFS is QoS-blind, not stability-blind.
func allocate(curves []occupantCurve, floors []int, grid cpu.Grid, model cpu.PowerModel, tdpW float64, obj HWObjective) []int {
	n := len(curves)
	idx := make([]int, n)
	powers := make([]float64, n)
	rates := make([]float64, n)
	var totalP, totalR float64
	for i, c := range curves {
		if floors != nil && floors[i] > 0 && floors[i] < grid.Len() {
			idx[i] = floors[i]
		}
		powers[i] = c.power(grid.Step(idx[i]), model)
		rates[i] = c.rate(grid.Step(idx[i]))
		totalP += powers[i]
		totalR += rates[i]
	}
	for {
		best := -1
		var bestScore float64
		var bestDP, bestDR float64
		for i, c := range curves {
			if idx[i]+1 >= grid.Len() {
				continue
			}
			f := grid.Step(idx[i] + 1)
			dP := c.power(f, model) - powers[i]
			dR := c.rate(f) - rates[i]
			if totalP+dP > tdpW {
				continue
			}
			var score float64
			switch obj {
			case HWThroughput:
				// Marginal throughput per marginal watt maximizes total
				// throughput under the power budget (greedy knapsack).
				score = dR / dP
			case HWThroughputPerWatt:
				// Only steps that improve the global ratio are considered.
				newRatio := (totalR + dR) / (totalP + dP)
				score = newRatio - totalR/totalP
				if score <= 0 {
					continue
				}
			}
			if best == -1 || score > bestScore {
				best = i
				bestScore = score
				bestDP = dP
				bestDR = dR
			}
		}
		if best == -1 {
			return stepsOf(grid, idx)
		}
		idx[best]++
		powers[best] += bestDP
		rates[best] += bestDR
		totalP += bestDP
		totalR += bestDR
	}
}

func stepsOf(grid cpu.Grid, idx []int) []int {
	out := make([]int, len(idx))
	for i, k := range idx {
		out[i] = grid.Step(k)
	}
	return out
}

// ServerConfig describes a 6-core colocated server whose frequencies are
// owned by a hardware allocator (HW-T / HW-TPW).
type ServerConfig struct {
	App  workload.LCApp
	Mix  []workload.BatchApp
	Load float64
	// RequestsPerCore is the LC trace length per core.
	RequestsPerCore int
	Seed            int64
	// NewSource, when set, supplies core i's LC request stream instead of
	// the default streaming Poisson generator at Load (scenario sources,
	// closed-loop populations).
	NewSource func(core int) workload.Source
	// Deadline, when > 0, stops the simulation at that time — the
	// termination bound when NewSource supplies unbounded streams.
	Deadline sim.Time

	Grid              cpu.Grid
	Power             cpu.PowerModel
	TransitionLatency sim.Time
	Interference      Interference
	// Epoch is the allocator cadence (paper: 100 us).
	Epoch sim.Time
	// TDPCoreW is the core-power budget the allocator respects.
	TDPCoreW  float64
	Objective HWObjective
}

// ServerResult pools the per-core results of a 6-core server.
type ServerResult struct {
	Cores []CoreResult
}

// TailNs pools LC completions across cores and returns the q-quantile.
func (r ServerResult) TailNs(q, warmupFrac float64) float64 {
	var all []float64
	for _, c := range r.Cores {
		skip := int(warmupFrac * float64(len(c.Completions)))
		for i, comp := range c.Completions {
			if i >= skip {
				all = append(all, comp.ResponseNs)
			}
		}
	}
	return percentile(all, q)
}

// TotalEnergyJ returns LC+batch core energy across cores.
func (r ServerResult) TotalEnergyJ() float64 {
	var e float64
	for _, c := range r.Cores {
		e += c.LCEnergyJ + c.BatchEnergyJ
	}
	return e
}

// RunHWServer simulates a 6-core colocated server under a hardware
// QoS-blind DVFS allocator. Every epoch the allocator inspects what each
// core is running (LC request or batch work) and re-divides the TDP; it is
// oblivious to queue state and latency bounds, which is exactly why it
// violates tails (paper Fig. 15).
func RunHWServer(cfg ServerConfig) (ServerResult, error) {
	if len(cfg.Mix) == 0 {
		return ServerResult{}, fmt.Errorf("coloc: empty batch mix")
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 100 * sim.Microsecond
	}
	if cfg.TDPCoreW == 0 {
		// The chip's 65 W TDP (paper Table 2) covers uncore and the memory
		// interface too; with all six cores busy — which colocation
		// guarantees — roughly 36 W remains for the cores. A binding core
		// budget is what lets high-IPC batch occupants starve LC cores
		// under HW-T, the failure mode Fig. 15 shows.
		cfg.TDPCoreW = 33
	}
	eng := sim.NewEngine()
	cores := make([]*core, len(cfg.Mix))
	for i, b := range cfg.Mix {
		// Streaming by default: byte-identical to materializing the trace
		// (GenerateAtLoad) at the same seed, without holding it.
		src := workload.Source(workload.NewLoadSource(cfg.App, cfg.Load, cfg.RequestsPerCore, cfg.Seed+int64(i)*101))
		if cfg.NewSource != nil {
			src = cfg.NewSource(i)
		}
		cc, err := newCore(eng, CoreConfig{
			App:               cfg.App,
			Batch:             b,
			Source:            src,
			LCPolicy:          nil,
			ExternalFreq:      true,
			Grid:              cfg.Grid,
			Power:             cfg.Power,
			TransitionLatency: cfg.TransitionLatency,
			InitialMHz:        cpu.NominalMHz,
			Interference:      cfg.Interference,
		})
		if err != nil {
			return ServerResult{}, err
		}
		cores[i] = cc
	}
	for _, c := range cores {
		c.start()
	}

	meanCC := cfg.App.Compute.Mean()
	meanMem := cfg.App.MeanServiceNsAtNominal() - meanCC*1000/float64(cpu.NominalMHz)

	// Utilization-governor floor for LC-occupied cores: the lowest step at
	// which the offered LC load stays sustainable (busy fraction <= 0.92).
	// Without it a low-frequency efficiency objective would let queues grow
	// without bound, which no real governor allows.
	lcFloor := 0
	for s := 0; s < cfg.Grid.Len(); s++ {
		f := cfg.Grid.Step(s)
		svc := meanCC*1000/float64(f) + meanMem
		if cfg.Load*svc/cfg.App.MeanServiceNsAtNominal() <= 0.92 {
			lcFloor = s
			break
		}
	}

	// The epoch tick is one pre-registered event rescheduling itself, and
	// the allocator inputs are reused across epochs: a steady-state epoch
	// allocates only inside allocate's greedy climb.
	curves := make([]occupantCurve, len(cores))
	floors := make([]int, len(cores))
	var epochH sim.Handle
	epochTick := func() {
		for i := range floors {
			floors[i] = 0
		}
		for i, c := range cores {
			if c.queueLen() > 0 {
				curves[i] = occupantCurve{
					computeCyclesPerUnit: meanCC,
					memNsPerUnit:         meanMem,
					activity:             1.0,
				}
				floors[i] = lcFloor
			} else {
				curves[i] = occupantCurve{
					computeCyclesPerUnit: c.cfg.Batch.CyclesPerUnit,
					memNsPerUnit:         c.cfg.Batch.MemNsPerUnit,
					activity:             c.cfg.Batch.ActivityFactor,
				}
			}
		}
		freqs := allocate(curves, floors, cfg.Grid, cfg.Power, cfg.TDPCoreW, cfg.Objective)
		anyWork := false
		for i, c := range cores {
			c.accrue()
			c.applyFreq(freqs[i])
			if !c.drained() {
				anyWork = true
			}
		}
		if anyWork {
			eng.RescheduleAfter(epochH, cfg.Epoch)
		}
	}
	epochH = eng.Register(epochTick)
	eng.RescheduleAfter(epochH, cfg.Epoch)
	eng.RunUntilOrDrain(cfg.Deadline)

	res := ServerResult{Cores: make([]CoreResult, len(cores))}
	for i, c := range cores {
		res.Cores[i] = c.result()
	}
	return res, nil
}
