// Package datacenter models the fleet-level comparison of paper Sec. 7.2
// (Figs. 14 and 16): a segregated datacenter — 1000 latency-critical
// servers (200 per app, 6 cores each, frequencies set by StaticOracle) plus
// 1000 batch servers (50 per 6-app mix, each app at its optimal
// throughput-per-watt frequency) — versus a colocated datacenter where the
// 1000 LC servers also absorb batch work under RubikColoc and just enough
// batch-only servers are provisioned to match the segregated datacenter's
// per-app batch throughput.
package datacenter

import (
	"fmt"
	"sort"

	"rubik/internal/cluster"
	"rubik/internal/coloc"
	rubikcore "rubik/internal/core"
	"rubik/internal/cpu"
	"rubik/internal/policy"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// Config parameterizes the fleet model.
type Config struct {
	// LCServersPerApp is the number of LC servers per application
	// (paper: 200, 5 apps -> 1000 servers).
	LCServersPerApp int
	// BatchServersPerMix is the number of batch servers per mix
	// (paper: 50, 20 mixes -> 1000 servers).
	BatchServersPerMix int
	// CoresPerServer matches the simulated CMP (paper: 6).
	CoresPerServer int
	// NMixes is the number of random batch mixes (paper: 20).
	NMixes int
	// RequestsPerCore is the LC trace length used to estimate per-core
	// steady-state behaviour.
	RequestsPerCore int
	// BoundRequests is the trace length used to derive tail bounds.
	BoundRequests int
	// UseClusterSim replaces the analytic per-core extrapolation of the
	// segregated LC servers with a real multi-core cluster simulation
	// (cluster.Run with CoresPerServer cores behind a JSQ dispatcher):
	// server power then reflects simulated queueing and idle time instead
	// of a single-core busy-fraction estimate.
	UseClusterSim bool
	Seed          int64

	Grid              cpu.Grid
	Power             cpu.PowerModel
	System            cpu.SystemPower
	TransitionLatency sim.Time
	Interference      coloc.Interference
}

// DefaultConfig returns the paper's datacenter setup.
func DefaultConfig() Config {
	return Config{
		LCServersPerApp:    200,
		BatchServersPerMix: 50,
		CoresPerServer:     6,
		NMixes:             20,
		RequestsPerCore:    3000,
		BoundRequests:      5000,
		Seed:               1,
		Grid:               cpu.DefaultGrid(),
		Power:              cpu.DefaultPowerModel(),
		System:             cpu.DefaultSystemPower(),
		TransitionLatency:  4 * sim.Microsecond,
		Interference:       coloc.DefaultInterference(),
	}
}

// FleetResult describes one datacenter variant at one LC load.
type FleetResult struct {
	// PowerW splits total power into the LC/colocated servers and the
	// batch-only servers (the hatched split of Fig. 16).
	LCPowerW    float64
	BatchPowerW float64
	// Servers splits the server count the same way.
	LCServers    int
	BatchServers int
	// BatchUnitsPerSec is the aggregate batch throughput per app name.
	BatchUnitsPerSec map[string]float64
	// WorstTailRel is the worst per-(app,partner) tail relative to the
	// app's bound (colocated only; 0 for segregated).
	WorstTailRel float64
}

// TotalPowerW returns the fleet's total power.
func (f FleetResult) TotalPowerW() float64 { return f.LCPowerW + f.BatchPowerW }

// TotalServers returns the fleet's total server count.
func (f FleetResult) TotalServers() int { return f.LCServers + f.BatchServers }

// Model precomputes the pieces shared across loads: apps, mixes, bounds and
// the optimal-TPW batch frequencies.
type Model struct {
	cfg    Config
	apps   []workload.LCApp
	mixes  [][]workload.BatchApp
	bounds map[string]float64 // per-app tail bound (ns)
	tpw    map[string]int     // per-batch-app optimal TPW frequency
}

// NewModel derives the per-app latency bounds (p95 of fixed-nominal at 50%
// load, as everywhere in the paper) and batch TPW frequencies.
func NewModel(cfg Config) (*Model, error) {
	if cfg.CoresPerServer <= 0 || cfg.NMixes <= 0 {
		return nil, fmt.Errorf("datacenter: invalid config %+v", cfg)
	}
	m := &Model{
		cfg:    cfg,
		apps:   workload.Apps(),
		mixes:  workload.Mixes(cfg.NMixes, cfg.CoresPerServer, cfg.Seed),
		bounds: map[string]float64{},
		tpw:    map[string]int{},
	}
	rcfg := policy.ReplayConfig{Power: cfg.Power, WakeLatency: 5 * sim.Microsecond}
	for _, app := range m.apps {
		tr := workload.GenerateAtLoad(app, 0.5, cfg.BoundRequests, cfg.Seed+7)
		rep, err := policy.Replay(tr, policy.UniformAssignment(len(tr.Requests), cpu.NominalMHz), rcfg)
		if err != nil {
			return nil, err
		}
		m.bounds[app.Name] = rep.TailNs(0.95)
	}
	for _, b := range workload.BatchPool() {
		m.tpw[b.Name] = b.OptimalTPWFreq(cfg.Grid, cfg.Power)
	}
	return m, nil
}

// Bound returns the latency bound for an app.
func (m *Model) Bound(app string) float64 { return m.bounds[app] }

// Segregated evaluates the segregated datacenter at an LC load.
func (m *Model) Segregated(load float64) (FleetResult, error) {
	cfg := m.cfg
	out := FleetResult{BatchUnitsPerSec: map[string]float64{}}
	rcfg := policy.ReplayConfig{Power: cfg.Power, WakeLatency: 5 * sim.Microsecond}

	// LC servers: StaticOracle per app at this load.
	for _, app := range m.apps {
		tr := workload.GenerateAtLoad(app, load, cfg.RequestsPerCore, cfg.Seed+13)
		so, err := policy.StaticOracle(tr, cfg.Grid, m.bounds[app.Name], 0.95, rcfg)
		if err != nil {
			return FleetResult{}, err
		}
		var serverPower float64
		if cfg.UseClusterSim {
			serverPower, err = m.clusterServerPower(app, load, so.MHz)
			if err != nil {
				return FleetResult{}, err
			}
		} else {
			duration := float64(so.Result.Dones[len(so.Result.Dones)-1])
			busyNs := 0.0
			for _, r := range tr.Requests {
				busyNs += r.ServiceNs(so.MHz)
			}
			busyFrac := busyNs / duration
			if busyFrac > 1 {
				busyFrac = 1
			}
			corePower := cfg.Power.ActivePower(so.MHz)*busyFrac + cfg.Power.SleepPower()*(1-busyFrac)
			serverPower = float64(cfg.CoresPerServer)*corePower +
				cfg.System.NonCorePower(float64(cfg.CoresPerServer)*busyFrac)
		}
		out.LCPowerW += float64(cfg.LCServersPerApp) * serverPower
		out.LCServers += cfg.LCServersPerApp
	}

	// Batch servers: every core busy at its app's TPW-optimal frequency.
	for _, mix := range m.mixes {
		var serverPower float64
		for _, b := range mix {
			f := m.tpw[b.Name]
			serverPower += b.PowerW(f, cfg.Power)
			out.BatchUnitsPerSec[b.Name] += float64(cfg.BatchServersPerMix) * b.UnitsPerSec(f)
		}
		serverPower += cfg.System.NonCorePower(float64(cfg.CoresPerServer))
		out.BatchPowerW += float64(cfg.BatchServersPerMix) * serverPower
		out.BatchServers += cfg.BatchServersPerMix
	}
	return out, nil
}

// clusterServerPower estimates one segregated LC server's power by
// actually simulating it: CoresPerServer cores at the StaticOracle
// frequency behind a JSQ dispatcher, fed the server's aggregate Poisson
// stream. Unlike the per-core extrapolation it captures cross-core load
// imbalance and the real idle-time distribution.
func (m *Model) clusterServerPower(app workload.LCApp, load float64, staticMHz int) (float64, error) {
	cfg := m.cfg
	n := cfg.RequestsPerCore * cfg.CoresPerServer
	tr := workload.GenerateAtLoad(app, load*float64(cfg.CoresPerServer), n, cfg.Seed+13)
	res, err := cluster.Run(tr, cluster.Config{
		Cores:      cfg.CoresPerServer,
		Dispatcher: cluster.NewJSQ(),
		Core: queueing.Config{
			Grid:              cfg.Grid,
			Power:             cfg.Power,
			TransitionLatency: cfg.TransitionLatency,
			WakeLatency:       5 * sim.Microsecond,
			InitialMHz:        staticMHz,
		},
		NewPolicy: func(int) (queueing.Policy, error) {
			return queueing.FixedPolicy{MHz: staticMHz}, nil
		},
	})
	if err != nil {
		return 0, err
	}
	durS := float64(res.EndTime) / 1e9
	if durS <= 0 {
		return 0, fmt.Errorf("datacenter: empty cluster simulation for %s", app.Name)
	}
	// Unlike the analytic branch's per-core power, this is already the
	// whole core complex: TotalEnergyJ sums all CoresPerServer cores.
	coresPower := res.TotalEnergyJ() / durS
	return coresPower + cfg.System.NonCorePower(res.MeanBusyCores()), nil
}

// coreKey caches colocated core simulations by (app, batch partner); the
// result is independent of which mix the pairing appears in.
type coreKey struct {
	app   string
	batch string
}

type coreEval struct {
	powerW    float64 // average core power (LC + batch occupancy)
	unitsPerS float64 // batch throughput achieved in the gaps
	busyFrac  float64 // LC busy fraction (for uncore accounting)
	tailRel   float64 // LC tail relative to the bound
}

// Colocated evaluates the RubikColoc datacenter at an LC load: the LC
// servers also run batch work, and extra batch-only servers make up the
// per-app batch-throughput deficit against the segregated baseline
// (fixed-work comparison, paper Sec. 7).
func (m *Model) Colocated(load float64) (FleetResult, error) {
	cfg := m.cfg
	seg, err := m.Segregated(load)
	if err != nil {
		return FleetResult{}, err
	}

	cache := map[coreKey]coreEval{}
	evalCore := func(app workload.LCApp, b workload.BatchApp) (coreEval, error) {
		key := coreKey{app: app.Name, batch: b.Name}
		if ev, ok := cache[key]; ok {
			return ev, nil
		}
		bound := m.bounds[app.Name]
		rcfg := rubikConfig(cfg, bound)
		rb, err := newRubik(rcfg)
		if err != nil {
			return coreEval{}, err
		}
		// Scale the trace so the simulation spans at least ~2 s (Rubik's
		// rolling feedback needs multiple windows to settle — decisive for
		// short-request apps like specjbb) but at most ~12 s (so
		// long-request apps like moses do not multiply Rubik's periodic
		// table rebuilds).
		n := cfg.RequestsPerCore
		if minN := int(2e9 * load / app.MeanServiceNsAtNominal()); n < minN {
			n = minN
		}
		if maxN := int(12e9 * load / app.MeanServiceNsAtNominal()); n > maxN {
			n = maxN
		}
		if n < 300 {
			n = 300
		}
		tr := workload.GenerateAtLoad(app, load, n, cfg.Seed+stableHash(key.app+key.batch))
		cr, err := coloc.RunCore(coloc.CoreConfig{
			App:               app,
			Batch:             b,
			Trace:             tr,
			LCPolicy:          rb,
			Grid:              cfg.Grid,
			Power:             cfg.Power,
			TransitionLatency: cfg.TransitionLatency,
			InitialMHz:        cpu.NominalMHz,
			Interference:      cfg.Interference,
		})
		if err != nil {
			return coreEval{}, err
		}
		dur := float64(cr.EndTime)
		ev := coreEval{
			powerW:    (cr.LCEnergyJ + cr.BatchEnergyJ) / (dur / 1e9),
			unitsPerS: cr.BatchUnits / (dur / 1e9),
			busyFrac:  cr.LCBusyNs / dur,
			tailRel:   cr.TailNs(0.95, 0.1) / bound,
		}
		cache[key] = ev
		return ev, nil
	}

	out := FleetResult{BatchUnitsPerSec: map[string]float64{}}
	serversPerConfig := float64(cfg.LCServersPerApp) / float64(cfg.NMixes)
	for _, app := range m.apps {
		for _, mix := range m.mixes {
			var serverCoreP float64
			for _, b := range mix {
				ev, err := evalCore(app, b)
				if err != nil {
					return FleetResult{}, err
				}
				serverCoreP += ev.powerW
				out.BatchUnitsPerSec[b.Name] += serversPerConfig * ev.unitsPerS
				if ev.tailRel > out.WorstTailRel {
					out.WorstTailRel = ev.tailRel
				}
			}
			// Colocated cores are never idle: all six count as active.
			serverPower := serverCoreP + cfg.System.NonCorePower(float64(cfg.CoresPerServer))
			out.LCPowerW += serversPerConfig * serverPower
		}
		out.LCServers += cfg.LCServersPerApp
	}

	// Provision batch-only servers for the per-app throughput deficit.
	var extraCores float64
	var extraCorePower float64
	names := make([]string, 0, len(seg.BatchUnitsPerSec))
	for name := range seg.BatchUnitsPerSec {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		target := seg.BatchUnitsPerSec[name]
		deficit := target - out.BatchUnitsPerSec[name]
		if deficit <= 0 {
			continue
		}
		b, ok := workload.FindBatchApp(name)
		if !ok {
			return FleetResult{}, fmt.Errorf("datacenter: unknown batch app %q", name)
		}
		f := m.tpw[name]
		cores := deficit / b.UnitsPerSec(f)
		extraCores += cores
		extraCorePower += cores * b.PowerW(f, cfg.Power)
		out.BatchUnitsPerSec[name] = target
	}
	extraServers := int(extraCores/float64(cfg.CoresPerServer) + 0.999999)
	out.BatchServers = extraServers
	out.BatchPowerW = extraCorePower +
		float64(extraServers)*cfg.System.NonCorePower(float64(cfg.CoresPerServer))
	return out, nil
}

func rubikConfig(cfg Config, boundNs float64) rubikcore.Config {
	rcfg := rubikcore.DefaultConfig(boundNs)
	rcfg.Grid = cfg.Grid
	rcfg.TransitionLatency = cfg.TransitionLatency
	// Colocated cores: wider feedback authority against the per-burst
	// interference costs the i.i.d. model cannot see (see coloc package).
	rcfg.Feedback.MinScale = 0.25
	return rcfg
}

func newRubik(rcfg rubikcore.Config) (queueing.Policy, error) {
	return rubikcore.New(rcfg)
}

func stableHash(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= int64(s[i])
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h % 1000003
}
