package datacenter

import (
	"testing"
)

// smallConfig shrinks the fleet so tests stay fast while keeping every
// mechanism (bounds, oracle frequencies, colocated cores, deficit
// provisioning) active.
func smallConfig() Config {
	// Keep the paper's ~1:1 LC:batch server ratio (1000:1000): the
	// colocation savings come from absorbing the batch fleet's idle power,
	// so a skewed ratio would distort the comparison.
	cfg := DefaultConfig()
	cfg.LCServersPerApp = 20 // 5 apps -> 100 LC servers
	cfg.BatchServersPerMix = 34
	cfg.NMixes = 3 // -> 102 batch servers
	cfg.RequestsPerCore = 600
	cfg.BoundRequests = 1500
	return cfg
}

func TestNewModelValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.CoresPerServer = 0
	if _, err := NewModel(bad); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestModelBounds(t *testing.T) {
	m, err := NewModel(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range m.apps {
		if m.Bound(app.Name) <= 0 {
			t.Fatalf("%s has no bound", app.Name)
		}
	}
	// moses's bound dwarfs masstree's (longest vs short requests).
	if m.Bound("moses") < 5*m.Bound("masstree") {
		t.Fatalf("bounds implausible: moses %v, masstree %v",
			m.Bound("moses"), m.Bound("masstree"))
	}
}

func TestSegregatedFleet(t *testing.T) {
	cfg := smallConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := m.Segregated(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if seg.LCServers != 5*cfg.LCServersPerApp {
		t.Fatalf("LC servers = %d", seg.LCServers)
	}
	if seg.BatchServers != cfg.NMixes*cfg.BatchServersPerMix {
		t.Fatalf("batch servers = %d", seg.BatchServers)
	}
	if seg.LCPowerW <= 0 || seg.BatchPowerW <= 0 {
		t.Fatalf("powers: %+v", seg)
	}
	if len(seg.BatchUnitsPerSec) == 0 {
		t.Fatal("no batch throughput recorded")
	}
	// LC power falls as load falls (StaticOracle picks lower frequencies
	// and cores idle more).
	seg10, err := m.Segregated(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if seg10.LCPowerW >= seg.LCPowerW {
		t.Fatalf("segregated LC power did not fall with load: %v vs %v",
			seg10.LCPowerW, seg.LCPowerW)
	}
	// Batch side is load-independent.
	if seg10.BatchPowerW != seg.BatchPowerW {
		t.Fatalf("segregated batch power changed with LC load")
	}
}

func TestSegregatedClusterSim(t *testing.T) {
	// The cluster-backed segregated estimate must agree with the analytic
	// per-core extrapolation to first order (same oracle frequencies, same
	// offered load — the simulation only adds real queueing and idle-time
	// structure) and remain load-monotonic.
	cfg := smallConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.UseClusterSim = true
	mc, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ana, err := m.Segregated(0.3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := mc.Segregated(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if sim.LCServers != ana.LCServers || sim.BatchPowerW != ana.BatchPowerW {
		t.Fatalf("cluster sim changed non-LC fields: %+v vs %+v", sim, ana)
	}
	if sim.LCPowerW <= 0 {
		t.Fatalf("cluster-simulated LC power %v", sim.LCPowerW)
	}
	if ratio := sim.LCPowerW / ana.LCPowerW; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("cluster-simulated LC power %.0f W vs analytic %.0f W (ratio %.2f)",
			sim.LCPowerW, ana.LCPowerW, ratio)
	}
	sim10, err := mc.Segregated(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sim10.LCPowerW >= sim.LCPowerW {
		t.Errorf("cluster-simulated LC power did not fall with load: %v vs %v",
			sim10.LCPowerW, sim.LCPowerW)
	}
}

func TestColocatedBeatsSegregated(t *testing.T) {
	// The paper's headline (Fig. 16): the colocated datacenter uses less
	// power and fewer servers at matched batch throughput, with the gap
	// widest at low LC load.
	cfg := smallConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range []float64{0.1, 0.3} {
		seg, err := m.Segregated(load)
		if err != nil {
			t.Fatal(err)
		}
		col, err := m.Colocated(load)
		if err != nil {
			t.Fatal(err)
		}
		if col.TotalPowerW() >= seg.TotalPowerW() {
			t.Errorf("load %.1f: colocated power %.0f W not below segregated %.0f W",
				load, col.TotalPowerW(), seg.TotalPowerW())
		}
		if col.TotalServers() >= seg.TotalServers() {
			t.Errorf("load %.1f: colocated servers %d not below segregated %d",
				load, col.TotalServers(), seg.TotalServers())
		}
		// Fixed-work: batch throughput matched per app.
		for name, target := range seg.BatchUnitsPerSec {
			if col.BatchUnitsPerSec[name] < target*0.999 {
				t.Errorf("load %.1f: %s throughput %f below segregated %f",
					load, name, col.BatchUnitsPerSec[name], target)
			}
		}
		// RubikColoc must hold the tails while doing it. The slack covers
		// small-sample noise: this quick config estimates p95 from only a
		// few hundred requests per (app, partner) pair; at realistic trace
		// lengths the worst pair sits well below the bound (see the
		// fig15/fig16 experiment drivers for full-fidelity runs).
		if col.WorstTailRel > 1.15 {
			t.Errorf("load %.1f: worst colocated tail %.2fx bound", load, col.WorstTailRel)
		}
	}
}

func TestColocatedNeedsMoreBatchServersAtHighLoad(t *testing.T) {
	cfg := smallConfig()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := m.Colocated(0.1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := m.Colocated(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Higher LC load leaves fewer idle cycles to donate, so more
	// batch-only servers are needed.
	if hi.BatchServers < lo.BatchServers {
		t.Fatalf("batch servers fell with load: %d (50%%) vs %d (10%%)",
			hi.BatchServers, lo.BatchServers)
	}
}

func TestFleetResultHelpers(t *testing.T) {
	f := FleetResult{LCPowerW: 10, BatchPowerW: 5, LCServers: 2, BatchServers: 1}
	if f.TotalPowerW() != 15 {
		t.Fatalf("TotalPowerW = %v", f.TotalPowerW())
	}
	if f.TotalServers() != 3 {
		t.Fatalf("TotalServers = %v", f.TotalServers())
	}
}

func TestStableHashDeterministic(t *testing.T) {
	if stableHash("abc") != stableHash("abc") {
		t.Fatal("hash not deterministic")
	}
	if stableHash("abc") == stableHash("abd") {
		t.Fatal("suspicious collision on near-identical keys")
	}
	if stableHash("x") < 0 {
		t.Fatal("hash must be non-negative")
	}
}
