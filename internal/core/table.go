// Package core implements the paper's primary contribution: Rubik, the
// fast analytical per-core DVFS controller for latency-critical systems.
//
// Rubik treats the work of each request as two random variables — compute
// cycles C (scale with frequency) and memory-bound time M (do not) — whose
// distributions it profiles online. The completion distribution of the
// request at queue position i is S_i = S_0 + S + ... + S (i-fold
// convolution), where S_0 conditions the service distribution on the work
// the in-service request has already received. Rubik precomputes the tail
// quantiles of these distributions into small lookup tables (the "target
// tail tables", paper Fig. 5) every 100 ms, and on every request arrival
// and completion picks the lowest frequency satisfying paper Eq. 2:
//
//	f >= max_i  c_i / (L - (t_i + m_i))
//
// A small PI feedback loop trims Rubik's internal latency target using the
// measured tail over a rolling window (paper Sec. 4.2, "Feedback-based
// fine-tuning").
package core

import (
	"fmt"

	"rubik/internal/stats"
)

// TailTable is the pair of precomputed target tail tables (compute cycles
// and memory time). Rows condition on the elapsed work of the in-service
// request (omega), quantized to octiles as in the paper's implementation;
// columns are queue positions 0..MaxQueue-1. Positions beyond the table use
// the Gaussian (CLT) extension.
type TailTable struct {
	// Percentile is the tail percentile the table targets (e.g. 0.95).
	Percentile float64
	// MaxQueue is the number of explicit columns (paper: 16).
	MaxQueue int

	// rowBoundsC[r] is the elapsed-cycles conditioning point of row r;
	// rows are selected as the largest r with rowBoundsC[r] <= omega.
	rowBoundsC []float64
	rowBoundsM []float64

	// c[r][i] is the tail cycles-until-completion of the request at queue
	// position i when the head's elapsed work falls in row r; m[r][i] is
	// the tail memory time (ns).
	//
	// Row 0 (omega = 0) holds the exact convolved tails Q(C^(*(i+1))).
	// Rows r > 0 discount row 0 by the *mean* work the head has already
	// completed: c[r][i] = c[0][i] - (E[C] - E[C0|row r]). Under the
	// Gaussian view of the sum this is conservative — conditioning shrinks
	// the exact tail by at least the mean shift — while sharing one set of
	// FFT convolutions across all rows, which is what keeps the periodic
	// update within the paper's sub-millisecond budget (Sec. 4.2 reports
	// 0.2 ms per update). Each entry is floored at the row's own
	// conditioned head tail.
	c [][]float64
	m [][]float64

	// Base moments for the Gaussian extension of the exact sum tails.
	meanC, varC float64
	meanM, varM float64
	// Per-row mean discounts, for extending rows past MaxQueue.
	discC, discM []float64
}

// BuildTailTable constructs the tables from per-request compute-cycle and
// memory-time samples, using nbuckets-bucket distributions (paper: 128),
// rows octile rows (paper: 8), and maxQueue explicit queue positions
// (paper: 16). It is the periodic "update the service cycle and time
// distributions, perform the convolutions, and fill in the c_i and m_i
// values" step of paper Sec. 4.2.
func BuildTailTable(computeSamples, memSamples []float64, percentile float64, nbuckets, rows, maxQueue int) (*TailTable, error) {
	if len(computeSamples) == 0 || len(memSamples) == 0 {
		return nil, fmt.Errorf("core: no profiling samples")
	}
	if percentile <= 0 || percentile >= 1 {
		return nil, fmt.Errorf("core: percentile %v out of (0,1)", percentile)
	}
	if rows < 1 || maxQueue < 1 {
		return nil, fmt.Errorf("core: rows=%d maxQueue=%d must be positive", rows, maxQueue)
	}
	distC, err := stats.NewPMFFromSamples(computeSamples, nbuckets)
	if err != nil {
		return nil, fmt.Errorf("core: compute distribution: %w", err)
	}
	distM, err := stats.NewPMFFromSamples(memSamples, nbuckets)
	if err != nil {
		return nil, fmt.Errorf("core: memory distribution: %w", err)
	}

	t := &TailTable{
		Percentile: percentile,
		MaxQueue:   maxQueue,
		meanC:      distC.Mean(),
		varC:       distC.Variance(),
		meanM:      distM.Mean(),
		varM:       distM.Variance(),
	}

	// Exact sum tails for a fresh head: exactC[i] = Q(C^(*(i+1))),
	// computed once with FFT-accelerated convolutions.
	exactC := make([]float64, maxQueue)
	exactM := make([]float64, maxQueue)
	cs, err := stats.IterConvolutions(distC, distC, maxQueue)
	if err != nil {
		return nil, fmt.Errorf("core: compute convolutions: %w", err)
	}
	msum, err := stats.IterConvolutions(distM, distM, maxQueue)
	if err != nil {
		return nil, fmt.Errorf("core: memory convolutions: %w", err)
	}
	for i := 0; i < maxQueue; i++ {
		exactC[i] = cs[i].Quantile(percentile)
		exactM[i] = msum[i].Quantile(percentile)
	}

	for r := 0; r < rows; r++ {
		q := float64(r) / float64(rows)
		var boundC, boundM float64
		if r > 0 {
			boundC = distC.Quantile(q)
			boundM = distM.Quantile(q)
		}
		t.rowBoundsC = append(t.rowBoundsC, boundC)
		t.rowBoundsM = append(t.rowBoundsM, boundM)

		condC := distC.ConditionAtLeast(boundC)
		condM := distM.ConditionAtLeast(boundM)
		discC := t.meanC - condC.Mean()
		discM := t.meanM - condM.Mean()
		if discC < 0 {
			discC = 0
		}
		if discM < 0 {
			discM = 0
		}
		headC := condC.Quantile(percentile)
		headM := condM.Quantile(percentile)
		cRow := make([]float64, maxQueue)
		mRow := make([]float64, maxQueue)
		for i := 0; i < maxQueue; i++ {
			cRow[i] = maxf(exactC[i]-discC, headC)
			mRow[i] = maxf(exactM[i]-discM, headM)
		}
		t.c = append(t.c, cRow)
		t.m = append(t.m, mRow)
		t.discC = append(t.discC, discC)
		t.discM = append(t.discM, discM)
	}
	return t, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// RowFor returns the table row for a head request with elapsedCycles of
// compute work already performed.
func (t *TailTable) RowFor(elapsedCycles float64) int {
	row := 0
	for r := 1; r < len(t.rowBoundsC); r++ {
		if t.rowBoundsC[r] <= elapsedCycles {
			row = r
		}
	}
	return row
}

// Lookup returns the tail cycles c_i and tail memory time m_i (ns) for the
// request at queue position i given the head's row. Positions at or beyond
// MaxQueue use the Gaussian extension (paper Sec. 4.2, "Large queues").
func (t *TailTable) Lookup(row, i int) (ci, mi float64) {
	if row < 0 {
		row = 0
	}
	if row >= len(t.c) {
		row = len(t.c) - 1
	}
	if i < t.MaxQueue {
		return t.c[row][i], t.m[row][i]
	}
	// Gaussian (CLT) extension of the exact sum tails, with the same
	// per-row mean discount as the in-table entries (paper Sec. 4.2,
	// "Large queues").
	n := float64(i + 1)
	ci = stats.GaussianTail(n*t.meanC, n*t.varC, t.Percentile) - t.discC[row]
	mi = stats.GaussianTail(n*t.meanM, n*t.varM, t.Percentile) - t.discM[row]
	if ci < t.c[row][0] {
		ci = t.c[row][0]
	}
	if mi < t.m[row][0] {
		mi = t.m[row][0]
	}
	return ci, mi
}

// Rows returns the number of omega rows.
func (t *TailTable) Rows() int { return len(t.c) }
