// Package core implements the paper's primary contribution: Rubik, the
// fast analytical per-core DVFS controller for latency-critical systems.
//
// Rubik treats the work of each request as two random variables — compute
// cycles C (scale with frequency) and memory-bound time M (do not) — whose
// distributions it profiles online. The completion distribution of the
// request at queue position i is S_i = S_0 + S + ... + S (i-fold
// convolution), where S_0 conditions the service distribution on the work
// the in-service request has already received. Rubik precomputes the tail
// quantiles of these distributions into small lookup tables (the "target
// tail tables", paper Fig. 5) every 100 ms, and on every request arrival
// and completion picks the lowest frequency satisfying paper Eq. 2:
//
//	f >= max_i  c_i / (L - (t_i + m_i))
//
// A small PI feedback loop trims Rubik's internal latency target using the
// measured tail over a rolling window (paper Sec. 4.2, "Feedback-based
// fine-tuning").
package core

import (
	"fmt"

	"rubik/internal/stats"
)

// TailTable is the pair of precomputed target tail tables (compute cycles
// and memory time). Rows condition on the elapsed work of the in-service
// request (omega), quantized to octiles as in the paper's implementation;
// columns are queue positions 0..MaxQueue-1. Positions beyond the table use
// the Gaussian (CLT) extension.
type TailTable struct {
	// Percentile is the tail percentile the table targets (e.g. 0.95).
	Percentile float64
	// MaxQueue is the number of explicit columns (paper: 16).
	MaxQueue int

	// rowBoundsC[r] is the elapsed-cycles conditioning point of row r;
	// rows are selected as the largest r with rowBoundsC[r] <= omega.
	rowBoundsC []float64
	rowBoundsM []float64

	// c[r][i] is the tail cycles-until-completion of the request at queue
	// position i when the head's elapsed work falls in row r; m[r][i] is
	// the tail memory time (ns).
	//
	// Row 0 (omega = 0) holds the exact convolved tails Q(C^(*(i+1))).
	// Rows r > 0 discount row 0 by the *mean* work the head has already
	// completed: c[r][i] = c[0][i] - (E[C] - E[C0|row r]). Under the
	// Gaussian view of the sum this is conservative — conditioning shrinks
	// the exact tail by at least the mean shift — while sharing one set of
	// FFT convolutions across all rows, which is what keeps the periodic
	// update within the paper's sub-millisecond budget (Sec. 4.2 reports
	// 0.2 ms per update). Each entry is floored at the row's own
	// conditioned head tail.
	c [][]float64
	m [][]float64

	// Base moments for the Gaussian extension of the exact sum tails.
	meanC, varC float64
	meanM, varM float64
	// Per-row mean discounts, for extending rows past MaxQueue.
	discC, discM []float64
}

// BuildTailTable constructs the tables from per-request compute-cycle and
// memory-time samples, using nbuckets-bucket distributions (paper: 128),
// rows octile rows (paper: 8), and maxQueue explicit queue positions
// (paper: 16). It is the periodic "update the service cycle and time
// distributions, perform the convolutions, and fill in the c_i and m_i
// values" step of paper Sec. 4.2.
//
// It is now a thin one-shot wrapper over TableBuilder; controllers that
// refresh periodically hold a builder for their lifetime instead, which
// makes every refresh after the first allocation-free.
func BuildTailTable(computeSamples, memSamples []float64, percentile float64, nbuckets, rows, maxQueue int) (*TailTable, error) {
	if len(computeSamples) == 0 || len(memSamples) == 0 {
		return nil, fmt.Errorf("core: no profiling samples")
	}
	b, err := NewTableBuilder(percentile, nbuckets, rows, maxQueue)
	if err != nil {
		return nil, err
	}
	t, _, err := b.RebuildFromSamples(computeSamples, memSamples)
	return t, err
}

// Rebuild refills t in place from the profiled compute and memory
// distributions held in b (b.distC, b.distM), using b's cached convolution
// plans and scratch buffers. The caller passes the distributions' moments
// so they are computed once per refresh. All convolutions run before t is
// touched, so a failed rebuild leaves the previous contents intact.
func (t *TailTable) Rebuild(b *TableBuilder, meanC, varC, meanM, varM float64) error {
	distC, distM := b.distC, b.distM
	maxQueue, rows, percentile := b.maxQueue, b.rows, b.percentile

	// Exact sum tails for a fresh head: exactC[i] = Q(C^(*(i+1))). The
	// packed pipeline computes both chains in one real-FFT pass (one
	// forward transform, fused per-row inverses, half-spectrum power
	// steps); the reference pipeline runs the two chains independently
	// and stays bitwise-equal to the naive convolutions.
	if b.Packed {
		plan, err := b.packedPlanFor(stats.PackedPlanSizeFor(len(distC.P), len(distM.P), maxQueue))
		if err != nil {
			return err
		}
		if err := plan.IterSelfConvolutionsInto(b.convC, b.convM, distC, distM); err != nil {
			return fmt.Errorf("core: packed convolutions: %w", err)
		}
	} else {
		planC, err := b.planFor(stats.PlanSizeFor(len(distC.P), len(distC.P), maxQueue))
		if err != nil {
			return err
		}
		if err := planC.IterConvolutionsInto(b.convC, distC, distC); err != nil {
			return fmt.Errorf("core: compute convolutions: %w", err)
		}
		planM, err := b.planFor(stats.PlanSizeFor(len(distM.P), len(distM.P), maxQueue))
		if err != nil {
			return err
		}
		if err := planM.IterConvolutionsInto(b.convM, distM, distM); err != nil {
			return fmt.Errorf("core: memory convolutions: %w", err)
		}
	}
	for i := 0; i < maxQueue; i++ {
		b.exactC[i] = b.convC[i].Quantile(percentile)
		b.exactM[i] = b.convM[i].Quantile(percentile)
	}

	t.Percentile = percentile
	t.MaxQueue = maxQueue
	t.meanC, t.varC = meanC, varC
	t.meanM, t.varM = meanM, varM

	// One cumulative pass per profiled distribution answers every row
	// bound below; QuantileFromCum is bitwise-identical to the per-row
	// Quantile scans it replaces.
	b.cumC = distC.CumSumInto(b.cumC)
	b.cumM = distM.CumSumInto(b.cumM)

	for r := 0; r < rows; r++ {
		q := float64(r) / float64(rows)
		var boundC, boundM float64
		if r > 0 {
			boundC = distC.QuantileFromCum(b.cumC, q)
			boundM = distM.QuantileFromCum(b.cumM, q)
		}
		t.rowBoundsC[r] = boundC
		t.rowBoundsM[r] = boundM

		condC := distC.ConditionAtLeastInto(b.condC, boundC)
		condM := distM.ConditionAtLeastInto(b.condM, boundM)
		discC := t.meanC - condC.Mean()
		discM := t.meanM - condM.Mean()
		if discC < 0 {
			discC = 0
		}
		if discM < 0 {
			discM = 0
		}
		headC := condC.Quantile(percentile)
		headM := condM.Quantile(percentile)
		cRow := t.c[r]
		mRow := t.m[r]
		for i := 0; i < maxQueue; i++ {
			cRow[i] = maxf(b.exactC[i]-discC, headC)
			mRow[i] = maxf(b.exactM[i]-discM, headM)
		}
		t.discC[r] = discC
		t.discM[r] = discM
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// RowFor returns the table row for a head request with elapsedCycles of
// compute work already performed: the largest row whose conditioning point
// is at or below the elapsed work. Row bounds are quantiles of the
// profiled distribution at increasing q, hence nondecreasing, so a binary
// search suffices; RowFor runs on every arrival, completion, and tick.
func (t *TailTable) RowFor(elapsedCycles float64) int {
	lo, hi := 1, len(t.rowBoundsC) // find first bound > elapsed in [1, n)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.rowBoundsC[mid] <= elapsedCycles {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Lookup returns the tail cycles c_i and tail memory time m_i (ns) for the
// request at queue position i given the head's row. Positions at or beyond
// MaxQueue use the Gaussian extension (paper Sec. 4.2, "Large queues").
func (t *TailTable) Lookup(row, i int) (ci, mi float64) {
	if row < 0 {
		row = 0
	}
	if row >= len(t.c) {
		row = len(t.c) - 1
	}
	if i < t.MaxQueue {
		return t.c[row][i], t.m[row][i]
	}
	// Gaussian (CLT) extension of the exact sum tails, with the same
	// per-row mean discount as the in-table entries (paper Sec. 4.2,
	// "Large queues").
	n := float64(i + 1)
	ci = stats.GaussianTail(n*t.meanC, n*t.varC, t.Percentile) - t.discC[row]
	mi = stats.GaussianTail(n*t.meanM, n*t.varM, t.Percentile) - t.discM[row]
	if ci < t.c[row][0] {
		ci = t.c[row][0]
	}
	if mi < t.m[row][0] {
		mi = t.m[row][0]
	}
	return ci, mi
}

// Rows returns the number of omega rows.
func (t *TailTable) Rows() int { return len(t.c) }
