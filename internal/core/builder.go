package core

import (
	"fmt"
	"math"

	"rubik/internal/stats"
)

// TableBuilder is the persistent, allocation-free rebuild pipeline behind
// a controller's target tail tables. It owns everything a periodic refresh
// needs — the FFT convolution plans (twiddles, bit-reversal, scratch), the
// profiled-distribution buffers, the convolution result buffers, and the
// TailTable itself, which Rebuild refills in place. A controller creates
// one builder for its lifetime; every refresh after the first then
// performs zero steady-state allocations, which is what keeps the paper's
// periodic update inside its 0.2 ms budget (Sec. 4.2) once PR 1's cluster
// layer multiplies refresh frequency by the core count.
//
// The rebuilt tables are bitwise-identical to BuildTailTable's: the
// streaming profiler bins exactly like NewPMFFromSamples, the planned
// convolutions match IterConvolutions bit for bit, and the row math is
// unchanged. With the drift gate off, swapping the builder in changes no
// experiment output.
//
// A builder owns its buffers and is NOT safe for concurrent use; each
// controller holds its own.
type TableBuilder struct {
	// DriftThreshold gates the expensive part of a refresh: when both
	// profiled distributions have moved less than this relative amount (in
	// mean and standard deviation) since the last full rebuild, Rebuild
	// keeps the existing tables and skips the convolutions. 0 (the
	// default) disables the gate — every refresh rebuilds, and results are
	// byte-identical to the ungated pipeline. Set it from
	// core.Config.DriftThreshold; the tradeoff is staleness: a gated table
	// reacts one threshold-crossing later to workload drift, in exchange
	// for dropping the dominant rebuild cost at steady load.
	DriftThreshold float64

	// Cache, when non-nil, memoizes full rebuilds content-addressed by
	// their exact inputs (both profiled PMFs plus the table shape): a
	// refresh whose inputs match a cached rebuild bit for bit copies the
	// cached table in place instead of re-running the convolutions, which
	// is bitwise-indistinguishable from rebuilding because the pipeline
	// is a pure function of that key. Nil (the default) rebuilds
	// privately. The cache is shared across the builders of one goroutine
	// (cluster.RunFleet hands every socket on a shard the same cache);
	// like the builder itself it must not be shared across goroutines.
	Cache *TableCache

	// Packed selects the packed real-FFT rebuild pipeline
	// (stats.PackedConvolutionPlan): both convolution chains ride one
	// complex transform with Hermitian half-spectra and size-pruned
	// inverses, cutting the rebuild's transform count from 36 to 17 at
	// the paper shape. NewTableBuilder enables it; clear the field to
	// fall back to the reference complex pipeline, whose results are
	// bitwise-equal to the naive convolutions. The packed pipeline
	// rounds differently at the ulp level but is equally deterministic;
	// its outputs are property- and fuzz-tested against the reference
	// within a tight error bound, and in practice the quantile-bucketed
	// tables built from either pipeline come out bit-identical (the
	// equivalence tests pin that for every experiment scenario shape).
	Packed bool

	percentile     float64
	nbuckets       int
	rows, maxQueue int

	// plans caches one ConvolutionPlan per transform size. The size is
	// fixed by (nbuckets, maxQueue) in steady state; degenerate profiles
	// (all samples equal -> single-bucket PMF) briefly need a smaller one.
	plans map[int]*stats.ConvolutionPlan
	// packedPlans is the packed-pipeline counterpart, keyed by the
	// unified transform size of the chain pair.
	packedPlans map[int]*stats.PackedConvolutionPlan

	// Reused buffers, sized on first use.
	distC, distM   stats.PMF
	convC, convM   []stats.PMF
	exactC, exactM []float64
	condC, condM   []float64
	// cumC/cumM hold each profiled distribution's running mass, computed
	// once per rebuild so every row-bound quantile is answered from the
	// same pass instead of rescanning the PMF per row.
	cumC, cumM []float64

	table *TailTable

	// Drift-gate state: moments of the profiles at the last full rebuild.
	haveProfile                              bool
	lastMeanC, lastStdC, lastMeanM, lastStdM float64
	builds, skips, cacheHits                 int

	// probe/probeFP are the cache key of the refresh in flight, kept on
	// the builder (rather than finish's stack) so taking their address
	// for cache calls does not heap-allocate a key per refresh.
	probe   tableKey
	probeFP uint64
}

// NewTableBuilder validates the table dimensions and returns a builder
// with its TailTable and working buffers preallocated.
func NewTableBuilder(percentile float64, nbuckets, rows, maxQueue int) (*TableBuilder, error) {
	if percentile <= 0 || percentile >= 1 {
		return nil, fmt.Errorf("core: percentile %v out of (0,1)", percentile)
	}
	if nbuckets <= 0 {
		return nil, fmt.Errorf("core: nbuckets must be positive, got %d", nbuckets)
	}
	if rows < 1 || maxQueue < 1 {
		return nil, fmt.Errorf("core: rows=%d maxQueue=%d must be positive", rows, maxQueue)
	}
	t := &TailTable{
		Percentile: percentile,
		MaxQueue:   maxQueue,
		rowBoundsC: make([]float64, rows),
		rowBoundsM: make([]float64, rows),
		c:          make([][]float64, rows),
		m:          make([][]float64, rows),
		discC:      make([]float64, rows),
		discM:      make([]float64, rows),
	}
	for r := 0; r < rows; r++ {
		t.c[r] = make([]float64, maxQueue)
		t.m[r] = make([]float64, maxQueue)
	}
	return &TableBuilder{
		Packed:      true,
		percentile:  percentile,
		nbuckets:    nbuckets,
		rows:        rows,
		maxQueue:    maxQueue,
		plans:       map[int]*stats.ConvolutionPlan{},
		packedPlans: map[int]*stats.PackedConvolutionPlan{},
		convC:       make([]stats.PMF, maxQueue),
		convM:       make([]stats.PMF, maxQueue),
		exactC:      make([]float64, maxQueue),
		exactM:      make([]float64, maxQueue),
		condC:       make([]float64, nbuckets),
		condM:       make([]float64, nbuckets),
		cumC:        make([]float64, nbuckets),
		cumM:        make([]float64, nbuckets),
		table:       t,
	}, nil
}

// Table returns the builder's table (valid after the first successful
// Rebuild; refilled in place by later ones).
func (b *TableBuilder) Table() *TailTable { return b.table }

// Builds returns how many refreshes performed the full rebuild.
func (b *TableBuilder) Builds() int { return b.builds }

// Skips returns how many refreshes the drift gate short-circuited.
func (b *TableBuilder) Skips() int { return b.skips }

// CacheHits returns how many refreshes were answered by copying a cached
// rebuild (always 0 with Cache nil; such refreshes count in neither
// Builds nor Skips).
func (b *TableBuilder) CacheHits() int { return b.cacheHits }

// Rebuild refreshes the table from the profilers' current windows. It
// returns the (builder-owned) table and whether a full rebuild happened:
// false means the drift gate found both profiles within DriftThreshold of
// the last rebuild and kept the existing tables. On error the previous
// table is left intact.
func (b *TableBuilder) Rebuild(histC, histM *stats.Histogram) (*TailTable, bool, error) {
	if err := histC.PMFInto(&b.distC, b.nbuckets); err != nil {
		return nil, false, fmt.Errorf("core: compute distribution: %w", err)
	}
	if err := histM.PMFInto(&b.distM, b.nbuckets); err != nil {
		return nil, false, fmt.Errorf("core: memory distribution: %w", err)
	}
	return b.finish()
}

// RebuildFromSamples refreshes the table from explicit sample slices (the
// BuildTailTable-compatible entry point). The same drift gate applies.
func (b *TableBuilder) RebuildFromSamples(computeSamples, memSamples []float64) (*TailTable, bool, error) {
	if len(computeSamples) == 0 || len(memSamples) == 0 {
		return nil, false, fmt.Errorf("core: no profiling samples")
	}
	distC, err := stats.NewPMFFromSamples(computeSamples, b.nbuckets)
	if err != nil {
		return nil, false, fmt.Errorf("core: compute distribution: %w", err)
	}
	distM, err := stats.NewPMFFromSamples(memSamples, b.nbuckets)
	if err != nil {
		return nil, false, fmt.Errorf("core: memory distribution: %w", err)
	}
	b.distC, b.distM = distC, distM
	return b.finish()
}

// finish runs the drift gate and, when it does not fire, refreshes the
// table from b.distC/b.distM — through the content-addressed cache when
// one is attached (a verified hit copies the cached table in place,
// bitwise-identical to rebuilding), by the full in-place rebuild
// otherwise.
func (b *TableBuilder) finish() (*TailTable, bool, error) {
	meanC, varC := b.distC.Mean(), b.distC.Variance()
	meanM, varM := b.distM.Mean(), b.distM.Variance()
	stdC, stdM := math.Sqrt(varC), math.Sqrt(varM)
	if b.DriftThreshold > 0 && b.haveProfile &&
		relDrift(meanC, stdC, b.lastMeanC, b.lastStdC) <= b.DriftThreshold &&
		relDrift(meanM, stdM, b.lastMeanM, b.lastStdM) <= b.DriftThreshold {
		b.skips++
		return b.table, false, nil
	}
	if b.Cache != nil {
		// The probe key aliases the builder's distribution buffers; the
		// cache copies them only when it stores a new entry.
		b.probe = tableKey{
			percentile: b.percentile,
			nbuckets:   b.nbuckets, rows: b.rows, maxQueue: b.maxQueue,
			packed: b.Packed,
			distC:  b.distC, distM: b.distM,
		}
		b.probeFP = b.Cache.fingerprint(&b.probe)
		if cached := b.Cache.lookup(b.probeFP, &b.probe); cached != nil {
			b.table.copyFrom(cached)
			b.noteProfile(meanC, stdC, meanM, stdM)
			b.cacheHits++
			return b.table, true, nil
		}
	}
	if err := b.table.Rebuild(b, meanC, varC, meanM, varM); err != nil {
		return nil, false, err
	}
	if b.Cache != nil {
		b.Cache.insert(b.probeFP, &b.probe, b.table)
	}
	b.noteProfile(meanC, stdC, meanM, stdM)
	b.builds++
	return b.table, true, nil
}

// noteProfile records the profile moments a refresh acted on, the state
// the drift gate measures later refreshes against.
func (b *TableBuilder) noteProfile(meanC, stdC, meanM, stdM float64) {
	b.lastMeanC, b.lastStdC = meanC, stdC
	b.lastMeanM, b.lastStdM = meanM, stdM
	b.haveProfile = true
}

// relDrift measures how far a profile moved relative to its previous
// scale: the larger of the mean shift and the spread shift, normalized by
// the previous distribution's dominant magnitude.
func relDrift(mean, std, lastMean, lastStd float64) float64 {
	scale := math.Max(math.Abs(lastMean), lastStd)
	if scale < 1e-12 {
		scale = 1e-12
	}
	dm := math.Abs(mean-lastMean) / scale
	ds := math.Abs(std-lastStd) / scale
	return math.Max(dm, ds)
}

// planFor returns the cached convolution plan for transform size n,
// building it on first use.
func (b *TableBuilder) planFor(n int) (*stats.ConvolutionPlan, error) {
	if p, ok := b.plans[n]; ok {
		return p, nil
	}
	p, err := stats.NewConvolutionPlan(n)
	if err != nil {
		return nil, err
	}
	b.plans[n] = p
	return p, nil
}

// packedPlanFor returns the cached packed plan for unified transform
// size n, building it on first use.
func (b *TableBuilder) packedPlanFor(n int) (*stats.PackedConvolutionPlan, error) {
	if p, ok := b.packedPlans[n]; ok {
		return p, nil
	}
	p, err := stats.NewPackedConvolutionPlan(n)
	if err != nil {
		return nil, err
	}
	b.packedPlans[n] = p
	return p, nil
}
