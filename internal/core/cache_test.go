package core

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"rubik/internal/stats"
)

// TestCachedRebuildBitwiseEqual is the cache's core property: across
// random table shapes and sliding profile windows — including degenerate
// all-equal windows that collapse to single-bucket PMFs — a builder with
// a cache attached produces tables bit-identical to an uncached builder
// fed the same histograms, whether a given refresh hit or missed.
func TestCachedRebuildBitwiseEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nbuckets := 1 + r.Intn(130)
		rows := 1 + r.Intn(8)
		maxQueue := 1 + r.Intn(16)
		percentile := 0.9 + 0.09*r.Float64()
		capacity := 64 + r.Intn(256)

		cached, err := NewTableBuilder(percentile, nbuckets, rows, maxQueue)
		if err != nil {
			t.Fatal(err)
		}
		cached.Cache = NewTableCache(4)
		plain, err := NewTableBuilder(percentile, nbuckets, rows, maxQueue)
		if err != nil {
			t.Fatal(err)
		}
		histC := stats.NewHistogram(capacity)
		histM := stats.NewHistogram(capacity)
		for round := 0; round < 5; round++ {
			switch round % 3 {
			case 0, 1:
				comp, mem := randomSamples(r, 32+r.Intn(200))
				for i := range comp {
					histC.Push(comp[i])
					histM.Push(mem[i])
				}
			case 2:
				// Unchanged window: the cached builder must hit here and
				// still match bit for bit.
			}
			got, _, err := cached.Rebuild(histC, histM)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := plain.Rebuild(histC, histM)
			if err != nil {
				t.Fatal(err)
			}
			tablesBitwiseEqual(t, got, want)
		}
		if cached.CacheHits() == 0 {
			t.Fatal("repeated identical windows never hit the cache")
		}
		if plain.CacheHits() != 0 {
			t.Fatal("uncached builder reported cache hits")
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheDegenerateProfile covers the single-bucket PMF corner: all-
// equal samples, cached, must still match the uncached build bitwise and
// hit on the second refresh.
func TestCacheDegenerateProfile(t *testing.T) {
	b, err := NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	b.Cache = NewTableCache(2)
	histC, histM := stats.NewHistogram(64), stats.NewHistogram(64)
	for i := 0; i < 50; i++ {
		histC.Push(1e5)
		histM.Push(2e4)
	}
	got, _, err := b.Rebuild(histC, histM)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]float64, 50)
	memS := make([]float64, 50)
	for i := range samples {
		samples[i] = 1e5
		memS[i] = 2e4
	}
	want, err := referenceTailTable(samples, memS, 0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	tablesBitwiseEqual(t, got, want)
	if got, _, err = b.Rebuild(histC, histM); err != nil {
		t.Fatal(err)
	}
	tablesBitwiseEqual(t, got, want)
	if b.CacheHits() != 1 {
		t.Fatalf("second identical refresh: hits=%d, want 1", b.CacheHits())
	}
}

// TestCacheSharedAcrossBuilders checks the fleet-shard sharing pattern:
// two builders (two cores' controllers) handed one cache, profiling
// identical windows, and the second builder's first refresh is answered
// by the first builder's rebuild.
func TestCacheSharedAcrossBuilders(t *testing.T) {
	cache := NewTableCache(8)
	r := rand.New(rand.NewSource(21))
	comp, mem := randomSamples(r, 512)

	build := func() (*TableBuilder, *TailTable) {
		b, err := NewTableBuilder(0.95, 128, 8, 16)
		if err != nil {
			t.Fatal(err)
		}
		b.Cache = cache
		histC, histM := stats.NewHistogram(1024), stats.NewHistogram(1024)
		for i := range comp {
			histC.Push(comp[i])
			histM.Push(mem[i])
		}
		tbl, _, err := b.Rebuild(histC, histM)
		if err != nil {
			t.Fatal(err)
		}
		return b, tbl
	}

	b1, t1 := build()
	b2, t2 := build()
	if b1.Builds() != 1 || b1.CacheHits() != 0 {
		t.Fatalf("first builder: builds=%d hits=%d", b1.Builds(), b1.CacheHits())
	}
	if b2.Builds() != 0 || b2.CacheHits() != 1 {
		t.Fatalf("second builder must hit: builds=%d hits=%d", b2.Builds(), b2.CacheHits())
	}
	tablesBitwiseEqual(t, t2, t1)
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Collisions != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCacheCollisionFallsBack forces every key onto one fingerprint and
// checks the full-key verification: distinct profiles must not share a
// table, collisions are counted, and results stay bitwise-correct.
func TestCacheCollisionFallsBack(t *testing.T) {
	cache := NewTableCache(8)
	cache.fingerprint = func(*tableKey) uint64 { return 0xdead } // collide everything

	run := func(seed int64) (*TableBuilder, *TailTable, *TailTable) {
		b, err := NewTableBuilder(0.95, 64, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		b.Cache = cache
		plain, err := NewTableBuilder(0.95, 64, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		comp, mem := randomSamples(r, 256)
		histC, histM := stats.NewHistogram(512), stats.NewHistogram(512)
		for i := range comp {
			histC.Push(comp[i])
			histM.Push(mem[i])
		}
		tbl, _, err := b.Rebuild(histC, histM)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := plain.Rebuild(histC, histM)
		if err != nil {
			t.Fatal(err)
		}
		return b, tbl, want
	}

	// Seed 1 populates the colliding slot; seed 2's different profile
	// lands on the same fingerprint and must be detected as a collision.
	b1, t1, w1 := run(1)
	tablesBitwiseEqual(t, t1, w1)
	if b1.Builds() != 1 || b1.CacheHits() != 0 {
		t.Fatalf("first: builds=%d hits=%d", b1.Builds(), b1.CacheHits())
	}
	b2, t2, w2 := run(2)
	tablesBitwiseEqual(t, t2, w2)
	if b2.Builds() != 1 || b2.CacheHits() != 0 {
		t.Fatalf("collision must rebuild: builds=%d hits=%d", b2.Builds(), b2.CacheHits())
	}
	st := cache.Stats()
	if st.Collisions != 1 {
		t.Fatalf("collisions=%d, want 1 (stats %+v)", st.Collisions, st)
	}
	if cache.Len() != 1 {
		t.Fatalf("single-slot-per-fingerprint violated: len=%d", cache.Len())
	}
	// The slot now holds seed 2's rebuild; replaying seed 2 must hit.
	b3, t3, w3 := run(2)
	tablesBitwiseEqual(t, t3, w3)
	if b3.CacheHits() != 1 {
		t.Fatalf("replay must hit: builds=%d hits=%d", b3.Builds(), b3.CacheHits())
	}
}

// TestCacheEvictionBoundsMemory drives many distinct profiles through a
// small cache: Len stays at the bound, evictions are counted, and —
// because evicted entries are recycled — the steady churn does not grow
// the heap.
func TestCacheEvictionBoundsMemory(t *testing.T) {
	const capEntries = 4
	cache := NewTableCache(capEntries)
	b, err := NewTableBuilder(0.95, 64, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	b.Cache = cache
	histC, histM := stats.NewHistogram(256), stats.NewHistogram(256)
	r := rand.New(rand.NewSource(33))
	refresh := func() {
		comp, mem := randomSamples(r, 64)
		for i := range comp {
			histC.Push(comp[i])
			histM.Push(mem[i])
		}
		if _, _, err := b.Rebuild(histC, histM); err != nil {
			t.Fatal(err)
		}
	}
	// Warm past the bound so the recycled-entry path is active.
	for i := 0; i < 2*capEntries; i++ {
		refresh()
	}
	if cache.Len() != capEntries {
		t.Fatalf("len=%d, want the bound %d", cache.Len(), capEntries)
	}
	if ev := cache.Stats().Evictions; ev != int64(capEntries) {
		t.Fatalf("evictions=%d, want %d", ev, capEntries)
	}

	if raceEnabled {
		t.Skip("alloc guard needs an uninstrumented build")
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	const churn = 200
	for i := 0; i < churn; i++ {
		refresh()
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if cache.Len() != capEntries {
		t.Fatalf("len=%d after churn, want %d", cache.Len(), capEntries)
	}
	// Every refresh is a distinct-profile miss: a cache that allocated a
	// fresh entry per insert would grow by entries*tables; recycled
	// entries keep the churn's footprint in the noise.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("churn of %d evicting inserts allocated %d bytes", churn, grew)
	}
}

// TestCacheHitAllocationFree pins the hit path's cost: with the window
// unchanged, a cached refresh (fingerprint + verify + copy) performs
// zero steady-state allocations, like the rebuild path it replaces.
func TestCacheHitAllocationFree(t *testing.T) {
	b, err := NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	b.Cache = NewTableCache(4)
	r := rand.New(rand.NewSource(8))
	histC, histM := stats.NewHistogram(4096), stats.NewHistogram(4096)
	comp, mem := randomSamples(r, 4096)
	for i := range comp {
		histC.Push(comp[i])
		histM.Push(mem[i])
	}
	if _, _, err := b.Rebuild(histC, histM); err != nil { // populate
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, _, err := b.Rebuild(histC, histM); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit Rebuild allocates %v/op, want 0", allocs)
	}
	if b.CacheHits() == 0 {
		t.Fatal("refreshes never hit")
	}
}

// TestCacheStatsArithmetic covers the aggregate helpers fleet reporting
// relies on.
func TestCacheStatsArithmetic(t *testing.T) {
	var s TableCacheStats
	if s.Lookups() != 0 || s.HitRate() != 0 {
		t.Fatalf("zero stats: lookups=%d rate=%v", s.Lookups(), s.HitRate())
	}
	s.Add(TableCacheStats{Hits: 3, Misses: 1, Collisions: 1, Evictions: 2})
	s.Add(TableCacheStats{Hits: 1, Misses: 2})
	if s.Lookups() != 8 {
		t.Fatalf("lookups=%d, want 8", s.Lookups())
	}
	if got, want := s.HitRate(), 0.5; got != want {
		t.Fatalf("hit rate %v, want %v", got, want)
	}
	if s.Evictions != 2 {
		t.Fatalf("evictions=%d", s.Evictions)
	}
}

// BenchmarkTableCacheHit measures the hot hit path — fingerprint both
// PMFs, verify the full key, copy the table in place — against the full
// rebuild it short-circuits (BenchmarkTableCacheMiss: same refresh with
// the cache detached).
func BenchmarkTableCacheHit(b *testing.B) {
	benchRefresh(b, true)
}

// BenchmarkTableCacheMiss is the uncached refresh baseline for
// BenchmarkTableCacheHit.
func BenchmarkTableCacheMiss(b *testing.B) {
	benchRefresh(b, false)
}

func benchRefresh(b *testing.B, cached bool) {
	tb, err := NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		b.Fatal(err)
	}
	if cached {
		tb.Cache = NewTableCache(4)
	}
	r := rand.New(rand.NewSource(8))
	histC, histM := stats.NewHistogram(8192), stats.NewHistogram(8192)
	comp, mem := randomSamples(r, 8192)
	for i := range comp {
		histC.Push(comp[i])
		histM.Push(mem[i])
	}
	if _, _, err := tb.Rebuild(histC, histM); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tb.Rebuild(histC, histM); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cached && tb.CacheHits() == 0 {
		b.Fatal("cached refreshes never hit")
	}
}
