package core

import (
	"math"
	"math/rand"
	"testing"

	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

func TestBuildTailTableValidation(t *testing.T) {
	if _, err := BuildTailTable(nil, nil, 0.95, 128, 8, 16); err == nil {
		t.Fatal("empty samples must error")
	}
	one := []float64{1, 2, 3}
	if _, err := BuildTailTable(one, one, 1.5, 128, 8, 16); err == nil {
		t.Fatal("bad percentile must error")
	}
	if _, err := BuildTailTable(one, one, 0.95, 128, 0, 16); err == nil {
		t.Fatal("zero rows must error")
	}
	if _, err := BuildTailTable(one, one, 0.95, 128, 8, 0); err == nil {
		t.Fatal("zero queue must error")
	}
}

func TestTailTableConstantService(t *testing.T) {
	// With constant work, c_i must be ~ (i+1) * work (within bucketing).
	comp := make([]float64, 100)
	mem := make([]float64, 100)
	for i := range comp {
		comp[i] = 10000
		mem[i] = 500
	}
	tab, err := BuildTailTable(comp, mem, 0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		ci, mi := tab.Lookup(0, i)
		wantC := 10000 * float64(i+1)
		wantM := 500 * float64(i+1)
		if math.Abs(ci-wantC) > 0.02*wantC+2 {
			t.Fatalf("c_%d = %v, want ~%v", i, ci, wantC)
		}
		if math.Abs(mi-wantM) > 0.02*wantM+2 {
			t.Fatalf("m_%d = %v, want ~%v", i, mi, wantM)
		}
	}
}

func TestTailTableMonotoneInQueuePosition(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	comp := make([]float64, 3000)
	mem := make([]float64, 3000)
	for i := range comp {
		comp[i] = 50000 + r.ExpFloat64()*20000
		mem[i] = 1000 + r.ExpFloat64()*500
	}
	tab, err := BuildTailTable(comp, mem, 0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < tab.Rows(); row++ {
		prevC, prevM := 0.0, 0.0
		for i := 0; i < 24; i++ { // crosses into the Gaussian extension
			ci, mi := tab.Lookup(row, i)
			if ci <= prevC {
				t.Fatalf("row %d: c_%d=%v not increasing (prev %v)", row, i, ci, prevC)
			}
			if mi <= prevM {
				t.Fatalf("row %d: m_%d=%v not increasing (prev %v)", row, i, mi, prevM)
			}
			prevC, prevM = ci, mi
		}
	}
}

func TestTailTableGaussianExtensionContinuity(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	comp := make([]float64, 5000)
	mem := make([]float64, 5000)
	for i := range comp {
		comp[i] = 100000 * math.Exp(r.NormFloat64()*0.2)
		mem[i] = 2000 * math.Exp(r.NormFloat64()*0.2)
	}
	tab, err := BuildTailTable(comp, mem, 0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	// The convolved tail at i=15 and the Gaussian at i=16 should differ by
	// roughly one mean service (CLT has converged well by 15 summands).
	c15, _ := tab.Lookup(0, 15)
	c16, _ := tab.Lookup(0, 16)
	gap := c16 - c15
	if gap < 0.3*tab.meanC || gap > 2.5*tab.meanC {
		t.Fatalf("extension discontinuity: c15=%v c16=%v meanC=%v", c15, c16, tab.meanC)
	}
}

func TestTailTableRowSelection(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	comp := make([]float64, 4000)
	mem := make([]float64, 4000)
	for i := range comp {
		comp[i] = 1000 + 9000*r.Float64()
		mem[i] = 100
	}
	tab, err := BuildTailTable(comp, mem, 0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.RowFor(0); got != 0 {
		t.Fatalf("RowFor(0) = %d", got)
	}
	if got := tab.RowFor(1e12); got != tab.Rows()-1 {
		t.Fatalf("RowFor(huge) = %d, want last row", got)
	}
	// Monotone in omega.
	prev := 0
	for w := 0.0; w < 12000; w += 100 {
		row := tab.RowFor(w)
		if row < prev {
			t.Fatalf("row decreased: omega=%v row=%d prev=%d", w, row, prev)
		}
		prev = row
	}
	// More elapsed work => less remaining tail work at position 0.
	c0lo, _ := tab.Lookup(0, 0)
	c0hi, _ := tab.Lookup(tab.Rows()-1, 0)
	if c0hi >= c0lo {
		t.Fatalf("conditioning did not shrink remaining work: %v vs %v", c0hi, c0lo)
	}
}

func TestTailTableLookupClamps(t *testing.T) {
	comp := []float64{1, 2, 3, 4, 5}
	tab, err := BuildTailTable(comp, comp, 0.9, 16, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range rows clamp instead of panicking.
	a, _ := tab.Lookup(-5, 0)
	b, _ := tab.Lookup(0, 0)
	if a != b {
		t.Fatal("negative row must clamp to 0")
	}
	c, _ := tab.Lookup(99, 0)
	d, _ := tab.Lookup(tab.Rows()-1, 0)
	if c != d {
		t.Fatal("overlarge row must clamp to last")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config must error")
	}
	cfg := DefaultConfig(1e6)
	cfg.TailPercentile = 1.5
	if _, err := New(cfg); err == nil {
		t.Fatal("bad percentile must error")
	}
	cfg = DefaultConfig(1e6)
	cfg.HistoryCap = 1
	if _, err := New(cfg); err == nil {
		t.Fatal("HistoryCap < MinSamples must error")
	}
	cfg = DefaultConfig(1e6)
	cfg.Buckets = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero buckets must error")
	}
}

func TestRubikDecisionLogic(t *testing.T) {
	cfg := DefaultConfig(2e6) // 2 ms bound
	cfg.Feedback.Enabled = false
	cfg.TransitionLatency = 0
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Empty queue: park at minimum.
	if f := r.OnEvent(queueing.View{Now: 0}); f != cfg.Grid.Min() {
		t.Fatalf("idle decision = %d, want min", f)
	}
	// Untrained with work queued: nominal.
	v := queueing.View{Now: 0, Queue: []queueing.QueuedRequest{{Arrival: 0}}}
	if f := r.OnEvent(v); f != cpu.NominalMHz {
		t.Fatalf("untrained decision = %d, want nominal", f)
	}
	// Train on constant work: 480k cycles, zero memory.
	comp := make([]float64, 100)
	mem := make([]float64, 100)
	for i := range comp {
		comp[i] = 480_000
		mem[i] = 0
	}
	if err := r.Bootstrap(comp, mem); err != nil {
		t.Fatal(err)
	}
	// One fresh request, full 2 ms headroom: need ~480000/2000us = 240 MHz
	// -> min step 800.
	if f := r.OnEvent(v); f != 800 {
		t.Fatalf("single fresh request decision = %d, want 800", f)
	}
	// A request that has waited 1.8 ms has 0.2 ms headroom:
	// 480k cycles / 200 us = 2400 MHz. The table's right-edge bucket
	// rounding may push the estimate one conservative step up.
	v2 := queueing.View{Now: 1_800_000, Queue: []queueing.QueuedRequest{{Arrival: 0}}}
	if f := r.OnEvent(v2); f < cpu.NominalMHz || f > cpu.NominalMHz+200 {
		t.Fatalf("tight headroom decision = %d, want 2400 (or 2600 after rounding)", f)
	}
	// No headroom: max frequency.
	v3 := queueing.View{Now: 3_000_000, Queue: []queueing.QueuedRequest{{Arrival: 0}}}
	if f := r.OnEvent(v3); f != cfg.Grid.Max() {
		t.Fatalf("negative headroom decision = %d, want max", f)
	}
	// Deeper queues need more cycles: frequency grows with queue length.
	prev := 0
	for q := 1; q <= 6; q++ {
		queue := make([]queueing.QueuedRequest, q)
		for i := range queue {
			queue[i] = queueing.QueuedRequest{Arrival: 0}
		}
		f := r.OnEvent(queueing.View{Now: 100_000, Queue: queue})
		if f < prev {
			t.Fatalf("frequency decreased with queue depth: q=%d f=%d prev=%d", q, f, prev)
		}
		prev = f
	}
}

func TestRubikMemoryTimeReducesHeadroom(t *testing.T) {
	cfg := DefaultConfig(2e6)
	cfg.Feedback.Enabled = false
	cfg.TransitionLatency = 0
	noMem, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	withMem, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	comp := make([]float64, 200)
	zero := make([]float64, 200)
	mem := make([]float64, 200)
	for i := range comp {
		comp[i] = 2_400_000
		zero[i] = 0
		mem[i] = 800_000 // 0.8 ms memory time eats most of the 2 ms bound
	}
	if err := noMem.Bootstrap(comp, zero); err != nil {
		t.Fatal(err)
	}
	if err := withMem.Bootstrap(comp, mem); err != nil {
		t.Fatal(err)
	}
	v := queueing.View{Now: 0, Queue: []queueing.QueuedRequest{{Arrival: 0}}}
	fNo := noMem.OnEvent(v)
	fMem := withMem.OnEvent(v)
	if fMem <= fNo {
		t.Fatalf("memory-bound time must force higher frequency: %d vs %d", fMem, fNo)
	}
}

// boundFor measures the paper's latency target: the p95 of fixed-frequency
// execution at 50% load.
func boundFor(t *testing.T, app workload.LCApp, n int, seed int64) float64 {
	t.Helper()
	tr := workload.GenerateAtLoad(app, 0.5, n, seed)
	res, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, queueing.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res.TailNs(0.95, 0.1)
}

func runRubik(t *testing.T, app workload.LCApp, load, boundNs float64, n int, seed int64, feedback bool) queueing.Result {
	t.Helper()
	cfg := DefaultConfig(boundNs)
	cfg.Feedback.Enabled = feedback
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.GenerateAtLoad(app, load, n, seed)
	res, err := queueing.Run(tr, r, queueing.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRubikMeetsTailAndSavesPower(t *testing.T) {
	// The headline claim (paper Figs. 6 and 9): at loads <= 50%, Rubik
	// meets the tail bound while consuming less core energy than
	// fixed-frequency execution.
	apps := []workload.LCApp{workload.Masstree(), workload.Specjbb()}
	for _, app := range apps {
		bound := boundFor(t, app, 6000, 1)
		for _, load := range []float64{0.3, 0.5} {
			tr := workload.GenerateAtLoad(app, load, 6000, 2)
			fixed, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, queueing.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			res := runRubik(t, app, load, bound, 6000, 2, true)
			tail := res.TailNs(0.95, 0.15)
			if tail > bound*1.10 {
				t.Errorf("%s@%.0f%%: Rubik tail %.0f ns exceeds bound %.0f ns",
					app.Name, load*100, tail, bound)
			}
			if res.ActiveEnergyJ >= fixed.ActiveEnergyJ {
				t.Errorf("%s@%.0f%%: Rubik energy %.4f J >= fixed %.4f J",
					app.Name, load*100, res.ActiveEnergyJ, fixed.ActiveEnergyJ)
			}
		}
	}
}

func TestRubikNoFeedbackIsConservative(t *testing.T) {
	// Without feedback, the analytical model alone must keep the tail at
	// or below the bound (its approximations are conservative).
	app := workload.Masstree()
	bound := boundFor(t, app, 6000, 3)
	res := runRubik(t, app, 0.4, bound, 6000, 4, false)
	tail := res.TailNs(0.95, 0.15)
	if tail > bound*1.05 {
		t.Fatalf("no-feedback tail %.0f ns exceeds bound %.0f ns", tail, bound)
	}
}

func TestRubikSavesMoreAtLowerLoad(t *testing.T) {
	app := workload.Masstree()
	bound := boundFor(t, app, 6000, 5)
	lo := runRubik(t, app, 0.2, bound, 6000, 6, true)
	hi := runRubik(t, app, 0.6, bound, 6000, 6, true)
	if lo.EnergyPerRequestJ() >= hi.EnergyPerRequestJ() {
		t.Fatalf("energy/request at 20%% (%v) not below 60%% (%v)",
			lo.EnergyPerRequestJ(), hi.EnergyPerRequestJ())
	}
}

func TestRubikAdaptsToLoadStep(t *testing.T) {
	// Fig. 1b: when load steps up, Rubik immediately chooses higher
	// frequencies. Compare its mean frequency before and after the step.
	app := workload.Masstree()
	bound := boundFor(t, app, 6000, 7)
	rate30 := app.RateForLoad(0.3)
	rate70 := app.RateForLoad(0.7)
	step, err := workload.NewStepLoad(
		workload.Phase{Start: 0, RatePerSec: rate30},
		workload.Phase{Start: sim.Second, RatePerSec: rate70},
	)
	if err != nil {
		t.Fatal(err)
	}
	n := int(rate30 + rate70) // ~2 seconds worth
	tr := workload.Generate(app, step, n, 8)
	cfg := DefaultConfig(bound)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qcfg := queueing.DefaultConfig()
	qcfg.RecordTimeline = true
	res, err := queueing.Run(tr, r, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(from, to sim.Time) float64 {
		var wsum, tsum float64
		for i, fs := range res.FreqTimeline {
			end := res.EndTime
			if i+1 < len(res.FreqTimeline) {
				end = res.FreqTimeline[i+1].T
			}
			lo, hi := fs.T, end
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			if hi > lo {
				wsum += float64(fs.MHz) * float64(hi-lo)
				tsum += float64(hi - lo)
			}
		}
		return wsum / tsum
	}
	before := mean(sim.Second/2, sim.Second)
	after := mean(sim.Second+sim.Second/4, 2*sim.Second)
	if after <= before*1.1 {
		t.Fatalf("mean frequency did not rise after load step: %.0f -> %.0f MHz", before, after)
	}
	// And the tail during the post-step window stays controlled.
	var post []float64
	for _, c := range res.Completions {
		if c.Done > sim.Second+200*sim.Millisecond {
			post = append(post, c.ResponseNs)
		}
	}
	if len(post) > 100 {
		tail := percentile(post, 0.95)
		if tail > bound*1.25 {
			t.Fatalf("post-step tail %.0f ns far above bound %.0f ns", tail, bound)
		}
	}
}

func percentile(xs []float64, q float64) float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	// insertion-free: use sort via stats? avoid import cycle—small local sort
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(math.Ceil(q*float64(len(cp)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

func TestRubikFeedbackTightensConservatism(t *testing.T) {
	// With feedback, Rubik should consume no more energy than without
	// (the controller relaxes the internal target when the model is too
	// conservative) while keeping violations near the 5% budget.
	app := workload.Specjbb()
	bound := boundFor(t, app, 8000, 11)
	with := runRubik(t, app, 0.4, bound, 8000, 12, true)
	without := runRubik(t, app, 0.4, bound, 8000, 12, false)
	if with.ActiveEnergyJ > without.ActiveEnergyJ*1.02 {
		t.Fatalf("feedback increased energy: %.4f vs %.4f J",
			with.ActiveEnergyJ, without.ActiveEnergyJ)
	}
	if v := with.ViolationFrac(bound, 0.15); v > 0.08 {
		t.Fatalf("feedback violations %.3f exceed budget", v)
	}
}

func TestRubikHistoryCapBoundsMemory(t *testing.T) {
	cfg := DefaultConfig(1e6)
	cfg.HistoryCap = 100
	cfg.MinSamples = 10
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		r.ObserveCompletion(queueing.Completion{ComputeCycles: float64(i + 1), MemTime: 1})
	}
	if r.histC.Len() != 100 {
		t.Fatalf("history grew to %d", r.histC.Len())
	}
	// Most recent samples retained, oldest evicted.
	window := r.histC.Snapshot(nil)
	if window[99] != 1000 {
		t.Fatalf("newest sample lost: %v", window[99])
	}
	if window[0] != 901 {
		t.Fatalf("window start %v, want 901", window[0])
	}
}

func TestBootstrapValidation(t *testing.T) {
	r, err := New(DefaultConfig(1e6))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bootstrap([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched bootstrap lengths must error")
	}
	if err := r.Bootstrap([]float64{1e5, 2e5}, []float64{10, 10}); err != nil {
		t.Fatal(err)
	}
	if r.Table() == nil {
		t.Fatal("bootstrap must build a table")
	}
	if r.TableBuilds() != 1 {
		t.Fatalf("builds = %d", r.TableBuilds())
	}
}
