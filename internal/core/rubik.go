package core

import (
	"fmt"
	"math"

	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/stats"
)

// FeedbackConfig tunes Rubik's PI fine-tuning controller (paper Sec. 4.2):
// it observes the difference between the measured tail latency over a
// rolling window and the latency bound, and nudges Rubik's internal latency
// target. The analytical model is conservative, so adjustments are minor.
type FeedbackConfig struct {
	// Enabled turns the controller on.
	Enabled bool
	// Kp and Ki are the proportional and integral gains (unitless; they
	// act on the relative tail error).
	Kp, Ki float64
	// Window is the rolling measurement window (paper: 1 s).
	Window sim.Time
	// MinScale and MaxScale clamp the internal target relative to the
	// bound.
	MinScale, MaxScale float64
}

// DefaultFeedback returns the paper-like PI configuration.
func DefaultFeedback() FeedbackConfig {
	return FeedbackConfig{
		Enabled:  true,
		Kp:       0.3,
		Ki:       0.1,
		Window:   sim.Second,
		MinScale: 0.5,
		MaxScale: 1.5,
	}
}

// Config parameterizes a Rubik controller instance.
type Config struct {
	// LatencyBoundNs is the tail latency bound L.
	LatencyBoundNs float64
	// TailPercentile is the tail definition (paper: 0.95).
	TailPercentile float64
	// Grid is the DVFS frequency grid.
	Grid cpu.Grid
	// UpdatePeriod is the table refresh cadence (paper: 100 ms).
	UpdatePeriod sim.Time
	// Buckets is the distribution resolution (paper: 128).
	Buckets int
	// OmegaRows is the number of elapsed-work rows (paper: octiles = 8).
	OmegaRows int
	// MaxTableQueue is the number of explicit queue positions (paper: 16).
	MaxTableQueue int
	// TransitionLatency is the DVFS actuation lag Rubik subtracts from the
	// headroom of every constraint so that in-flight work cannot miss the
	// tail while a switch is pending.
	TransitionLatency sim.Time
	// MinSamples is the minimum number of profiled requests before the
	// first table build; until then Rubik runs at nominal frequency.
	MinSamples int
	// HistoryCap bounds the profiling sample window (most recent wins), so
	// the model tracks service-time drift.
	HistoryCap int
	// DriftThreshold gates the periodic table rebuild: when both profiled
	// distributions have moved less than this relative amount (in mean and
	// standard deviation) since the last full rebuild, the refresh keeps
	// the existing tables and skips the convolutions. 0 (the default)
	// disables the gate, making results byte-identical to the always-
	// rebuild pipeline; small values (e.g. 0.02) drop the dominant refresh
	// cost at steady load at the price of reacting one threshold-crossing
	// later to workload drift.
	DriftThreshold float64
	// PackedFFT selects the packed real-FFT rebuild pipeline: both
	// convolution chains of the periodic table refresh share one complex
	// transform (the PMFs are purely real), with Hermitian half-spectra
	// and size-pruned inverse transforms — 2-4x cheaper rebuilds than
	// the reference complex pipeline. DefaultConfig enables it; clear it
	// to run the bitwise-validated reference path for A/B or bisection
	// (rubiksim mirrors this as -packedfft). The packed pipeline rounds
	// differently at the ulp level but is equally deterministic, and the
	// quantile-bucketed tables it builds are pinned equal to the
	// reference pipeline's across the experiment suite.
	PackedFFT bool
	// Feedback configures the PI fine-tuning loop.
	Feedback FeedbackConfig

	// Ablation knobs. All default to false (= the full Rubik design); the
	// ablation experiment flips them one at a time to quantify what each
	// design choice buys (see experiments.Ablation).

	// SingleRow disables the elapsed-work (omega) conditioning: one table
	// row, always conditioned at zero progress.
	SingleRow bool
	// MergeMemory folds memory-bound time into compute cycles at nominal
	// frequency — i.e., assumes DVFS scales all work, the mis-modeling the
	// paper's C/M split exists to avoid (Sec. 4.1, "Core DVFS and memory").
	MergeMemory bool
	// HeadOnly evaluates Eq. 2 for the in-service request only, ignoring
	// queued requests — the PACE-like, queuing-blind mode the paper argues
	// is insufficient for datacenter servers (Sec. 2.2).
	HeadOnly bool
}

// DefaultConfig returns the paper's Rubik parameters for a given latency
// bound.
func DefaultConfig(latencyBoundNs float64) Config {
	return Config{
		LatencyBoundNs:    latencyBoundNs,
		TailPercentile:    0.95,
		Grid:              cpu.DefaultGrid(),
		UpdatePeriod:      100 * sim.Millisecond,
		Buckets:           128,
		OmegaRows:         8,
		MaxTableQueue:     16,
		TransitionLatency: 4 * sim.Microsecond,
		MinSamples:        48,
		HistoryCap:        8192,
		PackedFFT:         true,
		Feedback:          DefaultFeedback(),
	}
}

// Rubik is the controller. It implements queueing.Policy (frequency
// decisions on every arrival/completion), queueing.Ticker (periodic table
// refresh + feedback), and queueing.CompletionObserver (online profiling).
type Rubik struct {
	cfg Config

	// Profiling history: streaming histograms over the most recent
	// HistoryCap samples (O(1) ingest; the old sample slices cost a full
	// window copy per completion once the window was full).
	histC *stats.Histogram
	histM *stats.Histogram

	// builder owns the table, the FFT plans, and every rebuild buffer for
	// the controller's lifetime, so steady-state refreshes allocate
	// nothing.
	builder *TableBuilder
	table   *TailTable
	// cache, when set, is the shared content-addressed rebuild cache the
	// builder consults (fleet mode: one per shard, handed to every
	// controller simulated on that shard's goroutine).
	cache *TableCache

	// Feedback state.
	respWindow *stats.RollingWindow
	integral   float64
	internalNs float64

	// Stats exposed for diagnostics.
	tableBuilds int
	tableSkips  int
	decisions   int
}

var (
	_ queueing.Policy             = (*Rubik)(nil)
	_ queueing.Ticker             = (*Rubik)(nil)
	_ queueing.CompletionObserver = (*Rubik)(nil)
	_ queueing.SlackReporter      = (*Rubik)(nil)
)

// New validates the configuration and returns a Rubik controller.
func New(cfg Config) (*Rubik, error) {
	if cfg.LatencyBoundNs <= 0 {
		return nil, fmt.Errorf("core: latency bound must be positive, got %v", cfg.LatencyBoundNs)
	}
	if cfg.TailPercentile <= 0 || cfg.TailPercentile >= 1 {
		return nil, fmt.Errorf("core: tail percentile %v out of (0,1)", cfg.TailPercentile)
	}
	if cfg.Grid.Len() == 0 {
		return nil, fmt.Errorf("core: empty frequency grid")
	}
	if cfg.Buckets <= 0 || cfg.OmegaRows <= 0 || cfg.MaxTableQueue <= 0 {
		return nil, fmt.Errorf("core: non-positive table dimensions")
	}
	if cfg.HistoryCap < cfg.MinSamples {
		return nil, fmt.Errorf("core: HistoryCap %d below MinSamples %d", cfg.HistoryCap, cfg.MinSamples)
	}
	r := &Rubik{
		cfg:        cfg,
		histC:      stats.NewHistogram(cfg.HistoryCap),
		histM:      stats.NewHistogram(cfg.HistoryCap),
		internalNs: cfg.LatencyBoundNs,
	}
	if cfg.Feedback.Enabled {
		r.respWindow = stats.NewRollingWindow(cfg.Feedback.Window)
	}
	return r, nil
}

// Name implements queueing.Policy; ablation variants are labeled.
func (r *Rubik) Name() string {
	switch {
	case r.cfg.HeadOnly:
		return "rubik-headonly"
	case r.cfg.MergeMemory:
		return "rubik-nomemsplit"
	case r.cfg.SingleRow:
		return "rubik-singlerow"
	case !r.cfg.Feedback.Enabled:
		return "rubik-nofb"
	case r.cfg.DriftThreshold > 0:
		return "rubik-driftgate"
	}
	return "rubik"
}

// Bootstrap seeds the profiler with historical (computeCycles, memTimeNs)
// samples and builds the first table immediately. Useful to warm-start a
// controller from a previous run's profile.
func (r *Rubik) Bootstrap(computeSamples, memSamples []float64) error {
	if len(computeSamples) != len(memSamples) {
		return fmt.Errorf("core: bootstrap sample lengths differ: %d vs %d",
			len(computeSamples), len(memSamples))
	}
	for i := range computeSamples {
		if bad(computeSamples[i]) || bad(memSamples[i]) {
			return fmt.Errorf("core: bootstrap sample %d is not finite", i)
		}
	}
	for i := range computeSamples {
		r.histC.Push(computeSamples[i])
		r.histM.Push(memSamples[i])
	}
	return r.rebuild()
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// ObserveCompletion implements queueing.CompletionObserver: it profiles the
// request's compute cycles and memory time (the CPI-stack measurement of
// paper Sec. 4.2) and feeds the measured response latency to the feedback
// window.
func (r *Rubik) ObserveCompletion(c queueing.Completion) {
	cc := c.ComputeCycles
	mt := float64(c.MemTime)
	if r.cfg.MergeMemory {
		// Ablation: pretend all work scales with frequency.
		cc += mt * float64(cpu.NominalMHz) / 1000
		mt = 0
	}
	r.histC.Push(cc)
	r.histM.Push(mt)
	if r.respWindow != nil {
		r.respWindow.Add(c.Done, c.ResponseNs)
	}
}

// TickEvery implements queueing.Ticker.
func (r *Rubik) TickEvery() sim.Time { return r.cfg.UpdatePeriod }

// OnTick implements queueing.Ticker: refresh the target tail tables from
// the current profile, run the feedback update, and re-evaluate the
// frequency for the current queue state.
func (r *Rubik) OnTick(v queueing.View) int {
	if r.histC.Len() >= r.cfg.MinSamples {
		// Rebuild errors can only stem from degenerate sample sets; keep
		// the previous table in that case.
		_ = r.rebuild()
	}
	r.updateFeedback(v.Now)
	return r.OnEvent(v)
}

// rebuild refreshes the target tail tables through the controller's
// persistent TableBuilder — created on first use and kept for the
// controller's lifetime, so every refresh after the first performs zero
// steady-state allocations.
func (r *Rubik) rebuild() error {
	if r.builder == nil {
		rows := r.cfg.OmegaRows
		if r.cfg.SingleRow {
			rows = 1
		}
		b, err := NewTableBuilder(r.cfg.TailPercentile, r.cfg.Buckets, rows, r.cfg.MaxTableQueue)
		if err != nil {
			return err
		}
		b.DriftThreshold = r.cfg.DriftThreshold
		b.Cache = r.cache
		b.Packed = r.cfg.PackedFFT
		r.builder = b
	}
	t, rebuilt, err := r.builder.Rebuild(r.histC, r.histM)
	if err != nil {
		return err
	}
	r.table = t
	if rebuilt {
		r.tableBuilds++
	} else {
		r.tableSkips++
	}
	return nil
}

// updateFeedback nudges the internal latency target toward the measured
// tail (PI on the relative error, clamped).
func (r *Rubik) updateFeedback(now sim.Time) {
	if !r.cfg.Feedback.Enabled || r.respWindow == nil {
		return
	}
	r.respWindow.AdvanceTo(now)
	if r.respWindow.Len() < 16 {
		return
	}
	measured := r.respWindow.Percentile(r.cfg.TailPercentile)
	bound := r.cfg.LatencyBoundNs
	err := (bound - measured) / bound // >0: under target, can relax
	r.integral += err
	fb := r.cfg.Feedback
	// Anti-windup: keep the integral inside the range it can act on.
	maxI := (fb.MaxScale - 1) / maxFloat(fb.Ki, 1e-9)
	if r.integral > maxI {
		r.integral = maxI
	}
	if r.integral < -maxI {
		r.integral = -maxI
	}
	scale := 1 + fb.Kp*err + fb.Ki*r.integral
	if scale < fb.MinScale {
		scale = fb.MinScale
	}
	if scale > fb.MaxScale {
		scale = fb.MaxScale
	}
	r.internalNs = bound * scale
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// OnEvent implements queueing.Policy: paper Eq. 2 over the current queue.
// The queue snapshot is read synchronously and never retained, per the
// queueing.View contract (the core reuses the snapshot buffer).
//
// The DVFS actuation lag is charged only when satisfying the constraints
// requires switching *up*: staying at the current frequency involves no
// transition, and switching down keeps the (faster) old frequency until
// the transition lands, so neither can miss a deadline because of lag.
// This matters on real hardware, where the paper observed 130 us
// transitions (Sec. 5.5).
func (r *Rubik) OnEvent(v queueing.View) int {
	r.decisions++
	if len(v.Queue) == 0 {
		if r.table == nil {
			return r.cfg.Grid.Min()
		}
		// Nothing in flight: the core sleeps, so the parked frequency is
		// free — park at what a fresh arrival will need. With fast
		// transitions this is near-irrelevant (the arrival re-decides
		// immediately); with slow transitions (the 130 us of Sec. 5.5) it
		// keeps the wake-up from running at the minimum frequency for a
		// whole transition.
		c0, m0 := r.table.Lookup(0, 0)
		headroom := r.internalNs - m0 - float64(r.cfg.TransitionLatency)
		if headroom <= 0 {
			return r.cfg.Grid.Max()
		}
		return r.cfg.Grid.ClampUp(c0 * 1000 / headroom)
	}
	if r.table == nil {
		// Not yet profiled: hold nominal, the safe default the paper's
		// latency bounds are defined against.
		return cpu.NominalMHz
	}
	row := r.table.RowFor(v.HeadElapsedCycles)
	needNow, okNow := r.minFreq(v, row, 0)
	if !okNow {
		return r.cfg.Grid.Max()
	}
	fNow := r.cfg.Grid.ClampUp(needNow)
	if fNow <= v.CurrentMHz {
		// The current frequency satisfies the bound without switching.
		// Down-switching is also safe (the old, faster frequency applies
		// until the transition completes), but the post-switch frequency
		// must satisfy the lag-adjusted constraint.
		needLag, okLag := r.minFreq(v, row, float64(r.cfg.TransitionLatency))
		if !okLag {
			return v.CurrentMHz
		}
		fLag := r.cfg.Grid.ClampUp(needLag)
		if fLag > v.CurrentMHz {
			fLag = v.CurrentMHz
		}
		return fLag
	}
	// An up-switch is needed: the old (slower) frequency applies during
	// the transition, so the target must satisfy the lag-adjusted
	// constraint.
	needLag, okLag := r.minFreq(v, row, float64(r.cfg.TransitionLatency))
	if !okLag {
		return r.cfg.Grid.Max()
	}
	return r.cfg.Grid.ClampUp(needLag)
}

// minFreq evaluates Eq. 2 with the given headroom penalty; ok is false when
// some request has no headroom left (max frequency required).
func (r *Rubik) minFreq(v queueing.View, row int, penaltyNs float64) (float64, bool) {
	var need float64
	limit := len(v.Queue)
	if r.cfg.HeadOnly && limit > 1 {
		limit = 1 // ablation: queuing-blind
	}
	for i := 0; i < limit; i++ {
		ti := float64(v.Now - v.Queue[i].Arrival)
		ci, mi := r.table.Lookup(row, i)
		headroom := r.internalNs - ti - mi - penaltyNs
		if headroom <= 0 {
			return 0, false
		}
		if f := ci * 1000 / headroom; f > need {
			need = f
		}
	}
	return need, true
}

// PredictedSlackNs implements queueing.SlackReporter: the smallest tail
// headroom across the queued requests at the core's *current* frequency —
// how much slower the tightest constraint of paper Eq. 2 could finish and
// still make the (feedback-adjusted) bound. Power-budget coordinators use
// it to pick which cores donate frequency first under a binding cap. An
// empty queue reports the headroom a fresh arrival would see; before the
// first table build the slack is unknown and reported as 0, so capped
// bootstrapping cores never volunteer to donate.
func (r *Rubik) PredictedSlackNs(v queueing.View) float64 {
	if r.table == nil {
		return 0
	}
	f := float64(v.CurrentMHz)
	if f <= 0 {
		return 0
	}
	if len(v.Queue) == 0 {
		c0, m0 := r.table.Lookup(0, 0)
		return maxFloat(r.internalNs-m0-c0*1000/f, 0)
	}
	row := r.table.RowFor(v.HeadElapsedCycles)
	slack := r.internalNs
	for i := range v.Queue {
		ti := float64(v.Now - v.Queue[i].Arrival)
		ci, mi := r.table.Lookup(row, i)
		if s := r.internalNs - ti - mi - ci*1000/f; s < slack {
			slack = s
		}
	}
	return maxFloat(slack, 0)
}

// Table returns the current target tail table (nil before first build).
func (r *Rubik) Table() *TailTable { return r.table }

// InternalTargetNs returns the feedback-adjusted latency target.
func (r *Rubik) InternalTargetNs() float64 { return r.internalNs }

// TableBuilds returns how many times the tables were recomputed.
func (r *Rubik) TableBuilds() int { return r.tableBuilds }

// TableSkips returns how many periodic refreshes the drift gate
// short-circuited (always 0 with Config.DriftThreshold == 0).
func (r *Rubik) TableSkips() int { return r.tableSkips }

// SetTableCache shares a content-addressed rebuild cache with the
// controller: periodic refreshes whose profile inputs match a cached
// rebuild bit for bit copy the cached table instead of re-running the
// convolutions, with bitwise-identical results. The cache is confined to
// one goroutine — attach the same cache only to controllers simulated on
// the same event loop (cluster.Config.TableCache does this per cluster,
// cluster.RunFleet per shard). Call before simulation starts; nil
// detaches. Implements cluster.TableCacheUser.
func (r *Rubik) SetTableCache(c *TableCache) {
	r.cache = c
	if r.builder != nil {
		r.builder.Cache = c
	}
}

// TableCacheHits returns how many refreshes the shared rebuild cache
// answered (always 0 without SetTableCache).
func (r *Rubik) TableCacheHits() int {
	if r.builder == nil {
		return 0
	}
	return r.builder.CacheHits()
}

// SampleCount returns the number of profiled requests currently in the
// rolling window.
func (r *Rubik) SampleCount() int { return r.histC.Len() }
