package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

// randomApp draws a random-but-plausible latency-critical app shape:
// lognormal or bimodal service times, mean 50 us - 2 ms, CV 0.1 - 1.0,
// memory share 5% - 45%.
func randomApp(r *rand.Rand) workload.LCApp {
	meanCycles := (50e3 + r.Float64()*4.75e6) // 50k..4.8M cycles
	cv := 0.1 + r.Float64()*0.9
	var sampler stats.Sampler
	if r.Intn(2) == 0 {
		sampler = stats.LognormalFromMoments(meanCycles, cv, 6)
	} else {
		short := stats.LognormalFromMoments(meanCycles*0.6, 0.25, 6)
		long := stats.LognormalFromMoments(meanCycles*2.6, 0.4, 6)
		sampler = stats.NewMixture(
			stats.MixtureComponent{Weight: 0.8, Sampler: short},
			stats.MixtureComponent{Weight: 0.2, Sampler: long},
		)
	}
	return workload.LCApp{
		Name:     "random",
		Compute:  sampler,
		MemFrac:  0.05 + r.Float64()*0.40,
		MemNoise: stats.LognormalFromMoments(1, 0.2, 5),
		Requests: 4000,
	}
}

// TestRubikTailComplianceProperty is the reproduction's strongest
// correctness property: for randomized app shapes and loads at or below
// the 50% design point, Rubik must keep the p95 within the bound (small
// tolerance for finite-sample noise) while consuming no more energy than
// fixed-nominal execution.
func TestRubikTailComplianceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is expensive")
	}
	qcfg := queueing.DefaultConfig()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		app := randomApp(r)
		load := 0.15 + r.Float64()*0.35 // 15%..50%

		boundTr := workload.GenerateAtLoad(app, 0.5, 4000, seed+1)
		fixedRes, err := queueing.Run(boundTr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, qcfg)
		if err != nil {
			return false
		}
		bound := fixedRes.TailNs(0.95, 0)

		tr := workload.GenerateAtLoad(app, load, 4000, seed+2)
		fixed, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, qcfg)
		if err != nil {
			return false
		}
		ctl, err := New(DefaultConfig(bound))
		if err != nil {
			return false
		}
		res, err := queueing.Run(tr, ctl, qcfg)
		if err != nil {
			return false
		}
		tailOK := res.TailNs(0.95, 0.15) <= bound*1.12
		energyOK := res.ActiveEnergyJ <= fixed.ActiveEnergyJ*1.02
		if !tailOK || !energyOK {
			t.Logf("seed %d: load %.2f memfrac %.2f tail %.0f bound %.0f energy %.3f fixed %.3f",
				seed, load, app.MemFrac, res.TailNs(0.95, 0.15), bound,
				res.ActiveEnergyJ, fixed.ActiveEnergyJ)
		}
		return tailOK && energyOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestRubikDeterminismProperty: identical traces and configurations yield
// bit-identical results.
func TestRubikDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		app := workload.Masstree()
		tr := workload.GenerateAtLoad(app, 0.45, 1200, seed)
		run := func() (float64, float64) {
			ctl, err := New(DefaultConfig(500_000))
			if err != nil {
				return -1, -1
			}
			res, err := queueing.Run(tr, ctl, queueing.DefaultConfig())
			if err != nil {
				return -1, -1
			}
			return res.ActiveEnergyJ, res.TailNs(0.95, 0)
		}
		e1, t1 := run()
		e2, t2 := run()
		return e1 == e2 && t1 == t2 && e1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestTailTableFrequencyMonotoneInLoadSignal: deeper queues can never make
// Rubik pick a lower frequency, for arbitrary profiled distributions.
func TestTailTableFrequencyMonotoneInLoadSignal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig(2e6)
		cfg.Feedback.Enabled = false
		ctl, err := New(cfg)
		if err != nil {
			return false
		}
		comp := make([]float64, 300)
		mem := make([]float64, 300)
		for i := range comp {
			comp[i] = 50e3 + r.Float64()*500e3
			mem[i] = r.Float64() * 50e3
		}
		if err := ctl.Bootstrap(comp, mem); err != nil {
			return false
		}
		prev := 0
		for q := 1; q <= 12; q++ {
			queue := make([]queueing.QueuedRequest, q)
			for i := range queue {
				queue[i] = queueing.QueuedRequest{Arrival: 0}
			}
			f := ctl.OnEvent(queueing.View{Now: 50_000, CurrentMHz: 800, Queue: queue})
			if f < prev {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
