//go:build race

package core

// raceEnabled mirrors the race build tag: the race detector instruments
// allocations, so alloc-count guards only hold on uninstrumented builds.
const raceEnabled = true
