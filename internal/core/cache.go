package core

import (
	"math"

	"rubik/internal/stats"
)

// TableCache is a bounded, content-addressed memo of tail-table rebuilds.
//
// TailTable.Rebuild is a pure function of its inputs — the two profiled
// PMFs plus the (percentile, buckets, rows, maxQueue) table shape — and it
// is the dominant cost of the controller hot path at fleet scale: every
// core's periodic refresh re-runs the full FFT convolution chain even when
// its profile is byte-identical to the previous tick's (an idle burst
// phase adds no samples) or to a neighboring core's. The cache keys each
// rebuild by an FNV-1a fingerprint over the raw float bits of that exact
// input tuple; on a fingerprint hit it verifies the full key bit for bit
// (FNV-1a can collide; a false share would corrupt results, so collisions
// fall back to a full rebuild), then copies the cached table into the
// builder's table in place. Because the pipeline is bit-deterministic,
// a verified hit is bitwise-indistinguishable from rebuilding — cached
// and uncached runs produce DeepEqual results, which the cluster
// property tests and the pre-cache goldens pin.
//
// The cache is a plain bounded LRU with no locks: it is shard-confined by
// construction. Each fleet shard goroutine owns one cache and hands it to
// every socket it simulates (cluster.RunFleet), so entries are shared
// across all cores and sockets that run on that goroutine while the cache
// never synchronizes. Evicted entries are recycled, so a warm cache
// inserts without steady-state allocations. A TableCache must not be
// shared across goroutines.
type TableCache struct {
	capacity   int
	entries    map[uint64]*cacheEntry
	head, tail *cacheEntry // LRU list, most recent at head
	stats      TableCacheStats

	// fingerprint computes an entry's hash; tests override it to force
	// fingerprint collisions and exercise the full-key fallback.
	fingerprint func(*tableKey) uint64
}

// TableCacheStats counts rebuild-cache outcomes. Hit/miss/collision tally
// lookups; Evictions counts entries displaced by the LRU bound. In fleet
// runs the per-shard stats are summed into FleetResult.TableCache — note
// that with work stealing the socket→shard assignment is timing-
// dependent, so aggregate stats may vary between runs even though every
// socket's simulation result is identical.
type TableCacheStats struct {
	// Hits is the number of lookups whose fingerprint and full key both
	// matched: rebuilds answered by copying a cached table.
	Hits int64
	// Misses is the number of lookups with no entry at the fingerprint.
	Misses int64
	// Collisions is the number of lookups that found an entry at the
	// fingerprint whose full key mismatched — a genuine FNV-1a collision
	// (or a replaced slot), handled as a miss.
	Collisions int64
	// Evictions counts entries displaced by the capacity bound.
	Evictions int64
}

// Lookups returns the total number of cache probes.
func (s TableCacheStats) Lookups() int64 { return s.Hits + s.Misses + s.Collisions }

// HitRate returns Hits over Lookups (0 when the cache was never probed).
func (s TableCacheStats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Add accumulates o into s (summing per-shard stats fleet-wide).
func (s *TableCacheStats) Add(o TableCacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Collisions += o.Collisions
	s.Evictions += o.Evictions
}

// tableKey is the exact input tuple TailTable.Rebuild is a pure function
// of. The DVFS frequency grid is deliberately absent: tables hold tail
// work (cycles and nanoseconds), and frequency only enters when Eq. 2
// divides by f at decision time, so grid-differing controllers can share
// tables built from identical profiles. Cached keys own copies of the
// PMF buckets; probe keys alias the builder's buffers.
type tableKey struct {
	percentile               float64
	nbuckets, rows, maxQueue int
	// packed records which rebuild pipeline produced the table. The two
	// pipelines agree within an error bound but not bit for bit, and the
	// cache contract is "a verified hit is bitwise-indistinguishable
	// from rebuilding", so a table built by one pipeline must never
	// answer a refresh running the other.
	packed       bool
	distC, distM stats.PMF
}

// fingerprintKey hashes the key's raw bits with FNV-1a.
func fingerprintKey(k *tableKey) uint64 {
	packed := 0
	if k.packed {
		packed = 1
	}
	return stats.NewHash64().
		Float64(k.percentile).
		Int(k.nbuckets).Int(k.rows).Int(k.maxQueue).Int(packed).
		Float64(k.distC.Origin).Float64(k.distC.Width).Float64s(k.distC.P).
		Float64(k.distM.Origin).Float64(k.distM.Width).Float64s(k.distM.P).
		Sum()
}

// matches reports whether k and probe are bit-for-bit identical — the
// full-key verification that rules fingerprint collisions out.
func (k *tableKey) matches(probe *tableKey) bool {
	return math.Float64bits(k.percentile) == math.Float64bits(probe.percentile) &&
		k.nbuckets == probe.nbuckets && k.rows == probe.rows && k.maxQueue == probe.maxQueue &&
		k.packed == probe.packed &&
		pmfBitsEqual(k.distC, probe.distC) && pmfBitsEqual(k.distM, probe.distM)
}

// pmfBitsEqual compares two PMFs by raw bits (so -0 != +0, matching the
// fingerprint's view of equality).
func pmfBitsEqual(a, b stats.PMF) bool {
	if len(a.P) != len(b.P) ||
		math.Float64bits(a.Origin) != math.Float64bits(b.Origin) ||
		math.Float64bits(a.Width) != math.Float64bits(b.Width) {
		return false
	}
	for i := range a.P {
		if math.Float64bits(a.P[i]) != math.Float64bits(b.P[i]) {
			return false
		}
	}
	return true
}

// storeKey deep-copies probe into the entry's key, reusing its buffers.
func (k *tableKey) storeKey(probe *tableKey) {
	k.percentile = probe.percentile
	k.nbuckets, k.rows, k.maxQueue = probe.nbuckets, probe.rows, probe.maxQueue
	k.packed = probe.packed
	k.distC.Origin, k.distC.Width = probe.distC.Origin, probe.distC.Width
	k.distC.P = resizeCopy(k.distC.P, probe.distC.P)
	k.distM.Origin, k.distM.Width = probe.distM.Origin, probe.distM.Width
	k.distM.P = resizeCopy(k.distM.P, probe.distM.P)
}

// cacheEntry is one cached rebuild: the verified key plus a snapshot of
// the rebuilt table, linked into the LRU list.
type cacheEntry struct {
	fp    uint64
	key   tableKey
	table TailTable

	prev, next *cacheEntry
}

// NewTableCache returns a shard-confined rebuild cache bounded at the
// given entry count (at least 1). One cache per goroutine: it does not
// synchronize.
func NewTableCache(entries int) *TableCache {
	if entries < 1 {
		entries = 1
	}
	return &TableCache{
		capacity:    entries,
		entries:     make(map[uint64]*cacheEntry, entries),
		fingerprint: fingerprintKey,
	}
}

// Stats returns the cache's outcome counters so far.
func (c *TableCache) Stats() TableCacheStats { return c.stats }

// Len returns the number of cached rebuilds.
func (c *TableCache) Len() int { return len(c.entries) }

// Cap returns the entry bound.
func (c *TableCache) Cap() int { return c.capacity }

// lookup probes the cache: it returns the cached table for a key that
// matches probe bit for bit, or nil on a miss or fingerprint collision.
// A hit refreshes the entry's LRU position.
func (c *TableCache) lookup(fp uint64, probe *tableKey) *TailTable {
	e, ok := c.entries[fp]
	if !ok {
		c.stats.Misses++
		return nil
	}
	if !e.key.matches(probe) {
		c.stats.Collisions++
		return nil
	}
	c.stats.Hits++
	c.moveToFront(e)
	return &e.table
}

// insert caches a freshly rebuilt table under the probe key, evicting
// (and recycling) the least-recently-used entry at capacity. An existing
// entry at the same fingerprint — a collision whose rebuild just
// completed — is overwritten in place: the single-slot-per-fingerprint
// policy keeps colliding keys from evicting unrelated entries.
func (c *TableCache) insert(fp uint64, probe *tableKey, t *TailTable) {
	if e, ok := c.entries[fp]; ok {
		e.key.storeKey(probe)
		e.table.copyFrom(t)
		c.moveToFront(e)
		return
	}
	var e *cacheEntry
	if len(c.entries) >= c.capacity {
		e = c.tail
		c.unlink(e)
		delete(c.entries, e.fp)
		c.stats.Evictions++
	} else {
		e = &cacheEntry{}
	}
	e.fp = fp
	e.key.storeKey(probe)
	e.table.copyFrom(t)
	c.entries[fp] = e
	c.pushFront(e)
}

func (c *TableCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *TableCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *TableCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// copyFrom makes t a deep copy of src, reusing t's backing slices when
// their capacities allow. On the hit path the builder's table already has
// the key's exact dimensions, so the copy allocates nothing; recycled
// cache entries resize when a differently-shaped builder shares the
// cache.
func (t *TailTable) copyFrom(src *TailTable) {
	t.Percentile = src.Percentile
	t.MaxQueue = src.MaxQueue
	t.meanC, t.varC = src.meanC, src.varC
	t.meanM, t.varM = src.meanM, src.varM
	t.rowBoundsC = resizeCopy(t.rowBoundsC, src.rowBoundsC)
	t.rowBoundsM = resizeCopy(t.rowBoundsM, src.rowBoundsM)
	t.discC = resizeCopy(t.discC, src.discC)
	t.discM = resizeCopy(t.discM, src.discM)
	t.c = resizeCopyRows(t.c, src.c)
	t.m = resizeCopyRows(t.m, src.m)
}

// resizeCopy copies src into dst's backing array, growing only when the
// capacity falls short.
func resizeCopy(dst, src []float64) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	} else {
		dst = dst[:len(src)]
	}
	copy(dst, src)
	return dst
}

// resizeCopyRows copies a row matrix, reusing both the row slice and each
// row's backing array where capacities allow.
func resizeCopyRows(dst, src [][]float64) [][]float64 {
	if cap(dst) < len(src) {
		grown := make([][]float64, len(src))
		copy(grown, dst[:cap(dst)])
		dst = grown
	} else {
		dst = dst[:len(src)]
	}
	for i := range src {
		dst[i] = resizeCopy(dst[i], src[i])
	}
	return dst
}
