package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rubik/internal/stats"
)

// referenceTailTable is the pre-builder BuildTailTable algorithm, kept
// verbatim (naive stats entry points, fresh allocations everywhere) as the
// oracle the allocation-free pipeline is checked against.
func referenceTailTable(computeSamples, memSamples []float64, percentile float64, nbuckets, rows, maxQueue int) (*TailTable, error) {
	distC, err := stats.NewPMFFromSamples(computeSamples, nbuckets)
	if err != nil {
		return nil, err
	}
	distM, err := stats.NewPMFFromSamples(memSamples, nbuckets)
	if err != nil {
		return nil, err
	}
	t := &TailTable{
		Percentile: percentile,
		MaxQueue:   maxQueue,
		meanC:      distC.Mean(),
		varC:       distC.Variance(),
		meanM:      distM.Mean(),
		varM:       distM.Variance(),
	}
	exactC := make([]float64, maxQueue)
	exactM := make([]float64, maxQueue)
	cs, err := stats.IterConvolutions(distC, distC, maxQueue)
	if err != nil {
		return nil, err
	}
	msum, err := stats.IterConvolutions(distM, distM, maxQueue)
	if err != nil {
		return nil, err
	}
	for i := 0; i < maxQueue; i++ {
		exactC[i] = cs[i].Quantile(percentile)
		exactM[i] = msum[i].Quantile(percentile)
	}
	for r := 0; r < rows; r++ {
		q := float64(r) / float64(rows)
		var boundC, boundM float64
		if r > 0 {
			boundC = distC.Quantile(q)
			boundM = distM.Quantile(q)
		}
		t.rowBoundsC = append(t.rowBoundsC, boundC)
		t.rowBoundsM = append(t.rowBoundsM, boundM)
		condC := distC.ConditionAtLeast(boundC)
		condM := distM.ConditionAtLeast(boundM)
		discC := t.meanC - condC.Mean()
		discM := t.meanM - condM.Mean()
		if discC < 0 {
			discC = 0
		}
		if discM < 0 {
			discM = 0
		}
		headC := condC.Quantile(percentile)
		headM := condM.Quantile(percentile)
		cRow := make([]float64, maxQueue)
		mRow := make([]float64, maxQueue)
		for i := 0; i < maxQueue; i++ {
			cRow[i] = maxf(exactC[i]-discC, headC)
			mRow[i] = maxf(exactM[i]-discM, headM)
		}
		t.c = append(t.c, cRow)
		t.m = append(t.m, mRow)
		t.discC = append(t.discC, discC)
		t.discM = append(t.discM, discM)
	}
	return t, nil
}

func tablesBitwiseEqual(t *testing.T, got, want *TailTable) {
	t.Helper()
	bits := math.Float64bits
	if got.Percentile != want.Percentile || got.MaxQueue != want.MaxQueue {
		t.Fatalf("header mismatch: %+v vs %+v", got, want)
	}
	if bits(got.meanC) != bits(want.meanC) || bits(got.varC) != bits(want.varC) ||
		bits(got.meanM) != bits(want.meanM) || bits(got.varM) != bits(want.varM) {
		t.Fatal("moment mismatch")
	}
	if len(got.c) != len(want.c) {
		t.Fatalf("rows %d vs %d", len(got.c), len(want.c))
	}
	for r := range want.c {
		if bits(got.rowBoundsC[r]) != bits(want.rowBoundsC[r]) ||
			bits(got.rowBoundsM[r]) != bits(want.rowBoundsM[r]) ||
			bits(got.discC[r]) != bits(want.discC[r]) ||
			bits(got.discM[r]) != bits(want.discM[r]) {
			t.Fatalf("row %d bounds/discounts mismatch", r)
		}
		for i := range want.c[r] {
			if bits(got.c[r][i]) != bits(want.c[r][i]) || bits(got.m[r][i]) != bits(want.m[r][i]) {
				t.Fatalf("entry (%d,%d): got (%v,%v) want (%v,%v)",
					r, i, got.c[r][i], got.m[r][i], want.c[r][i], want.m[r][i])
			}
		}
	}
}

func randomSamples(r *rand.Rand, n int) ([]float64, []float64) {
	comp := make([]float64, n)
	mem := make([]float64, n)
	for i := range comp {
		comp[i] = 250e3 * (0.5 + r.Float64())
		mem[i] = 20e3 * (0.5 + r.Float64())
	}
	return comp, mem
}

// TestBuilderMatchesReferenceBitwise checks the end-to-end pipeline
// equivalence: streaming histograms + plan-cached convolutions + in-place
// refill must reproduce the naive allocate-everything build bit for bit,
// across repeated reuse of the same builder.
func TestBuilderMatchesReferenceBitwise(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nbuckets := 1 + r.Intn(130)
		rows := 1 + r.Intn(8)
		maxQueue := 1 + r.Intn(16)
		percentile := 0.9 + 0.09*r.Float64()
		capacity := 64 + r.Intn(256)

		b, err := NewTableBuilder(percentile, nbuckets, rows, maxQueue)
		if err != nil {
			t.Fatal(err)
		}
		histC := stats.NewHistogram(capacity)
		histM := stats.NewHistogram(capacity)
		var allC, allM []float64
		// Several refreshes from one builder, with the window sliding.
		for round := 0; round < 3; round++ {
			comp, mem := randomSamples(r, 32+r.Intn(300))
			for i := range comp {
				histC.Push(comp[i])
				histM.Push(mem[i])
			}
			allC = append(allC, comp...)
			allM = append(allM, mem...)
			windowC, windowM := allC, allM
			if len(windowC) > capacity {
				windowC = windowC[len(windowC)-capacity:]
				windowM = windowM[len(windowM)-capacity:]
			}
			got, rebuilt, err := b.Rebuild(histC, histM)
			if err != nil {
				t.Fatal(err)
			}
			if !rebuilt {
				t.Fatal("gate disabled but rebuild skipped")
			}
			want, err := referenceTailTable(windowC, windowM, percentile, nbuckets, rows, maxQueue)
			if err != nil {
				t.Fatal(err)
			}
			tablesBitwiseEqual(t, got, want)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDegenerateProfile(t *testing.T) {
	// All-equal samples collapse to single-bucket PMFs; the builder must
	// switch to the size-1 plan and still match the reference.
	b, err := NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	histC, histM := stats.NewHistogram(64), stats.NewHistogram(64)
	for i := 0; i < 50; i++ {
		histC.Push(1e5)
		histM.Push(2e4)
	}
	got, _, err := b.Rebuild(histC, histM)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]float64, 50)
	memS := make([]float64, 50)
	for i := range samples {
		samples[i] = 1e5
		memS[i] = 2e4
	}
	want, err := referenceTailTable(samples, memS, 0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	tablesBitwiseEqual(t, got, want)

	// And a later non-degenerate refresh on the same builder recovers.
	r := rand.New(rand.NewSource(9))
	comp, mem := randomSamples(r, 64)
	for i := range comp {
		histC.Push(comp[i])
		histM.Push(mem[i])
	}
	if _, _, err := b.Rebuild(histC, histM); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTailTableWrapperMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	comp, mem := randomSamples(r, 512)
	got, err := BuildTailTable(comp, mem, 0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, err := referenceTailTable(comp, mem, 0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	tablesBitwiseEqual(t, got, want)
}

func TestBuilderRebuildAllocationFree(t *testing.T) {
	b, err := NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	histC, histM := stats.NewHistogram(4096), stats.NewHistogram(4096)
	comp, mem := randomSamples(r, 4096)
	for i := range comp {
		histC.Push(comp[i])
		histM.Push(mem[i])
	}
	if _, _, err := b.Rebuild(histC, histM); err != nil { // warm buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, _, err := b.Rebuild(histC, histM); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Rebuild allocates %v/op, want 0", allocs)
	}
}

// TestDriftGateTransitions exercises the skip/refresh state machine: a
// still profile is skipped, a drifted one refreshes and re-arms the gate,
// and a zero threshold never skips.
func TestDriftGateTransitions(t *testing.T) {
	b, err := NewTableBuilder(0.95, 64, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	b.DriftThreshold = 0.05
	histC, histM := stats.NewHistogram(2048), stats.NewHistogram(2048)
	r := rand.New(rand.NewSource(12))
	push := func(scale float64, n int) {
		for i := 0; i < n; i++ {
			histC.Push(scale * 250e3 * (0.5 + r.Float64()))
			histM.Push(scale * 20e3 * (0.5 + r.Float64()))
		}
	}
	push(1, 2048)
	if _, rebuilt, err := b.Rebuild(histC, histM); err != nil || !rebuilt {
		t.Fatalf("first refresh must build (rebuilt=%v err=%v)", rebuilt, err)
	}

	// A handful of new same-distribution samples: profile barely moves.
	push(1, 64)
	tbl, rebuilt, err := b.Rebuild(histC, histM)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt {
		t.Fatal("still profile must be skipped")
	}
	if tbl != b.Table() {
		t.Fatal("skip must return the existing table")
	}
	if b.Skips() != 1 || b.Builds() != 1 {
		t.Fatalf("builds=%d skips=%d", b.Builds(), b.Skips())
	}

	// Shift the workload 2x: the mean moves far beyond 5%.
	push(2, 2048)
	if _, rebuilt, err = b.Rebuild(histC, histM); err != nil || !rebuilt {
		t.Fatalf("drifted profile must rebuild (rebuilt=%v err=%v)", rebuilt, err)
	}
	// The gate re-arms against the post-drift profile.
	push(2, 64)
	if _, rebuilt, err = b.Rebuild(histC, histM); err != nil || rebuilt {
		t.Fatalf("post-drift still profile must be skipped (rebuilt=%v err=%v)", rebuilt, err)
	}

	// Threshold 0 always rebuilds, even with an unchanged window.
	b2, err := NewTableBuilder(0.95, 64, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, rebuilt, err := b2.Rebuild(histC, histM); err != nil || !rebuilt {
			t.Fatalf("ungated refresh %d skipped (rebuilt=%v err=%v)", i, rebuilt, err)
		}
	}
	if b2.Skips() != 0 || b2.Builds() != 3 {
		t.Fatalf("ungated builds=%d skips=%d", b2.Builds(), b2.Skips())
	}
}

// TestRubikDriftGateCounters checks the gate end to end through the
// controller: gated refreshes under a steady profile skip, and the
// config knob defaults to off.
func TestRubikDriftGateCounters(t *testing.T) {
	cfg := DefaultConfig(1e6)
	cfg.DriftThreshold = 0.05
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "rubik-driftgate" {
		t.Fatalf("name %q", r.Name())
	}
	rng := rand.New(rand.NewSource(13))
	comp, mem := randomSamples(rng, 512)
	if err := r.Bootstrap(comp, mem); err != nil {
		t.Fatal(err)
	}
	if r.TableBuilds() != 1 || r.TableSkips() != 0 {
		t.Fatalf("builds=%d skips=%d", r.TableBuilds(), r.TableSkips())
	}
	// Unchanged profile: the periodic refresh must skip.
	if err := r.rebuild(); err != nil {
		t.Fatal(err)
	}
	if r.TableBuilds() != 1 || r.TableSkips() != 1 {
		t.Fatalf("builds=%d skips=%d", r.TableBuilds(), r.TableSkips())
	}
}

// TestRowForMatchesLinearScan pins the binary search to the scan it
// replaced, including duplicate bounds from heavy-tailed profiles.
func TestRowForMatchesLinearScan(t *testing.T) {
	scan := func(tt *TailTable, elapsed float64) int {
		row := 0
		for r := 1; r < len(tt.rowBoundsC); r++ {
			if tt.rowBoundsC[r] <= elapsed {
				row = r
			}
		}
		return row
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64 + r.Intn(512)
		comp := make([]float64, n)
		mem := make([]float64, n)
		for i := range comp {
			// Occasional ties produce duplicate quantile bounds.
			comp[i] = float64(1+r.Intn(6)) * 1e5
			mem[i] = 20e3 * (0.5 + r.Float64())
		}
		tt, err := BuildTailTable(comp, mem, 0.95, 32, 1+r.Intn(12), 4)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 64; trial++ {
			elapsed := r.Float64() * 8e5
			if got, want := tt.RowFor(elapsed), scan(tt, elapsed); got != want {
				t.Fatalf("RowFor(%v) = %d, scan says %d (bounds %v)",
					elapsed, got, want, tt.rowBoundsC)
			}
		}
		// Exactly-on-boundary lookups too.
		for _, bound := range tt.rowBoundsC {
			if got, want := tt.RowFor(bound), scan(tt, bound); got != want {
				t.Fatalf("RowFor(bound %v) = %d, scan says %d", bound, got, want)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
