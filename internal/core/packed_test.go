package core

import (
	"math/rand"
	"testing"

	"rubik/internal/stats"
)

// TestPackedPipelineDefaultOn pins the rollout switches: fresh builders
// run the packed pipeline, DefaultConfig exposes it enabled, and clearing
// Config.PackedFFT reaches the builder.
func TestPackedPipelineDefaultOn(t *testing.T) {
	b, err := NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Packed {
		t.Fatal("NewTableBuilder must default to the packed pipeline")
	}
	cfg := DefaultConfig(1e6)
	if !cfg.PackedFFT {
		t.Fatal("DefaultConfig must enable PackedFFT")
	}
	cfg.PackedFFT = false
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	comp, mem := randomSamples(rng, 256)
	if err := r.Bootstrap(comp, mem); err != nil {
		t.Fatal(err)
	}
	if r.builder.Packed {
		t.Fatal("PackedFFT=false must reach the builder")
	}
}

// TestPackedBuilderMatchesReferenceTables sweeps packed and reference
// builders over the same profile windows and table shapes and requires
// the finished tables to be bit-for-bit identical. The two convolution
// pipelines differ at the ulp level, but every table entry is a
// bucket-edge quantile of the convolved rows, and the quantile's 1e-12
// bucket slack absorbs that noise on these (realistic, continuously
// distributed) profiles — this is the property that lets packed become
// the default without re-pinning a single golden. Fixed seeds keep the
// sweep deterministic; the universal (bound-level) guarantee lives in
// the stats property and fuzz tests.
func TestPackedBuilderMatchesReferenceTables(t *testing.T) {
	shapes := []struct {
		nbuckets, rows, maxQueue int
	}{
		{128, 8, 16}, // paper shape
		{64, 4, 8},
		{32, 1, 4},
		{130, 8, 16}, // non-power-of-two buckets
		{1, 2, 3},
	}
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		for _, shape := range shapes {
			packed, err := NewTableBuilder(0.95, shape.nbuckets, shape.rows, shape.maxQueue)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewTableBuilder(0.95, shape.nbuckets, shape.rows, shape.maxQueue)
			if err != nil {
				t.Fatal(err)
			}
			ref.Packed = false
			histC, histM := stats.NewHistogram(512), stats.NewHistogram(512)
			// Two sliding-window refreshes per builder pair.
			for round := 0; round < 2; round++ {
				comp, mem := randomSamples(r, 128+r.Intn(256))
				for i := range comp {
					histC.Push(comp[i])
					histM.Push(mem[i])
				}
				got, _, err := packed.Rebuild(histC, histM)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := ref.Rebuild(histC, histM)
				if err != nil {
					t.Fatal(err)
				}
				tablesBitwiseEqual(t, got, want)
			}
		}
	}

	// Degenerate all-equal profiles collapse to delta chains; both
	// pipelines must still agree exactly.
	packed, err := NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ref.Packed = false
	histC, histM := stats.NewHistogram(64), stats.NewHistogram(64)
	for i := 0; i < 50; i++ {
		histC.Push(1e5)
		histM.Push(2e4)
	}
	got, _, err := packed.Rebuild(histC, histM)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ref.Rebuild(histC, histM)
	if err != nil {
		t.Fatal(err)
	}
	tablesBitwiseEqual(t, got, want)
}

// TestPackedCacheKeySeparation checks that the rebuild cache never serves
// a table across pipelines: the cache contract is "a verified hit is
// bitwise-indistinguishable from rebuilding", and the pipelines are only
// equal within an error bound, so the packed bit is part of the key.
func TestPackedCacheKeySeparation(t *testing.T) {
	cache := NewTableCache(8)
	packed, err := NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	packed.Cache = cache
	ref, err := NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ref.Packed = false
	ref.Cache = cache

	r := rand.New(rand.NewSource(5))
	histC, histM := stats.NewHistogram(512), stats.NewHistogram(512)
	comp, mem := randomSamples(r, 512)
	for i := range comp {
		histC.Push(comp[i])
		histM.Push(mem[i])
	}

	if _, _, err := packed.Rebuild(histC, histM); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Hits; got != 0 {
		t.Fatalf("first packed rebuild hit the cache (%d hits)", got)
	}
	// Same profile through the reference builder: the packed entry must
	// not answer it.
	if _, _, err := ref.Rebuild(histC, histM); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Hits; got != 0 {
		t.Fatalf("reference rebuild was served a packed table (%d hits)", got)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want one per pipeline", cache.Len())
	}
	// Same pipeline, same profile: now it hits.
	packed2, err := NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	packed2.Cache = cache
	if _, _, err := packed2.Rebuild(histC, histM); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Hits; got != 1 {
		t.Fatalf("same-pipeline probe missed (hits=%d)", got)
	}
	if packed2.CacheHits() != 1 {
		t.Fatalf("builder counted %d cache hits, want 1", packed2.CacheHits())
	}
}

// TestPackedBuilderRebuildAllocationFree mirrors the reference-path
// allocation test on the (default) packed path: warm rebuilds allocate
// nothing.
func TestPackedBuilderRebuildAllocationFree(t *testing.T) {
	b, err := NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Packed {
		t.Fatal("expected packed default")
	}
	r := rand.New(rand.NewSource(8))
	histC, histM := stats.NewHistogram(4096), stats.NewHistogram(4096)
	comp, mem := randomSamples(r, 4096)
	for i := range comp {
		histC.Push(comp[i])
		histM.Push(mem[i])
	}
	if _, _, err := b.Rebuild(histC, histM); err != nil { // warm buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, _, err := b.Rebuild(histC, histM); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state packed Rebuild allocates %v/op, want 0", allocs)
	}
}
