package core

import (
	"math/rand"
	"testing"

	"rubik/internal/queueing"
)

// bootstrappedRubik returns a controller with a built table over a
// deterministic synthetic profile.
func bootstrappedRubik(t *testing.T, boundNs float64) *Rubik {
	t.Helper()
	r, err := New(DefaultConfig(boundNs))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	comp := make([]float64, 512)
	mem := make([]float64, 512)
	for i := range comp {
		comp[i] = 250e3 * (0.5 + rng.Float64())
		mem[i] = 20e3 * (0.5 + rng.Float64())
	}
	if err := r.Bootstrap(comp, mem); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestPredictedSlack pins the SlackReporter contract the capping layer
// leans on: zero before the first table build, non-negative always,
// shrinking as the queue deepens or wait accumulates, and growing with
// frequency.
func TestPredictedSlack(t *testing.T) {
	const bound = 2e6
	fresh, err := New(DefaultConfig(bound))
	if err != nil {
		t.Fatal(err)
	}
	v := queueing.View{Now: 0, CurrentMHz: 2400}
	if s := fresh.PredictedSlackNs(v); s != 0 {
		t.Fatalf("unprofiled controller predicted %v ns slack", s)
	}

	r := bootstrappedRubik(t, bound)
	idle := r.PredictedSlackNs(v)
	if idle <= 0 || idle >= bound {
		t.Fatalf("idle slack %v outside (0, bound)", idle)
	}

	// Deeper queues can only shrink the headroom.
	prev := idle
	queue := []queueing.QueuedRequest{}
	for depth := 1; depth <= 6; depth++ {
		queue = append(queue, queueing.QueuedRequest{Arrival: 0})
		s := r.PredictedSlackNs(queueing.View{Now: 0, CurrentMHz: 2400, Queue: queue})
		if s > prev {
			t.Fatalf("slack grew with queue depth %d: %v > %v", depth, s, prev)
		}
		prev = s
	}

	// Accumulated waiting time eats slack at the same queue state...
	q1 := []queueing.QueuedRequest{{Arrival: 0}}
	early := r.PredictedSlackNs(queueing.View{Now: 0, CurrentMHz: 2400, Queue: q1})
	late := r.PredictedSlackNs(queueing.View{Now: 1_500_000, CurrentMHz: 2400, Queue: q1})
	if late >= early {
		t.Fatalf("slack did not shrink with waiting: %v >= %v", late, early)
	}
	// ...and a request waiting past the bound has none left.
	if s := r.PredictedSlackNs(queueing.View{Now: 3_000_000, CurrentMHz: 2400, Queue: q1}); s != 0 {
		t.Fatalf("slack %v for a request already past the bound", s)
	}

	// A faster core has at least as much headroom.
	slow := r.PredictedSlackNs(queueing.View{Now: 0, CurrentMHz: 800, Queue: q1})
	fast := r.PredictedSlackNs(queueing.View{Now: 0, CurrentMHz: 3400, Queue: q1})
	if fast < slow {
		t.Fatalf("slack fell with frequency: %v @3400 < %v @800", fast, slow)
	}
}
