package cluster

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"rubik/internal/capping"
	rubikcore "rubik/internal/core"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

// DefaultTableCacheEntries is the per-shard rebuild-cache bound RunFleet
// uses when FleetConfig.TableCacheEntries is 0: enough for every core of
// a socket to keep a few live profile windows resident (~5 KB per entry
// at paper table dimensions), small enough that a thousand-socket fleet's
// shards stay well under a megabyte each.
const DefaultTableCacheEntries = 64

// FleetConfig describes a fleet: Sockets independent core groups, each a
// CoresPerSocket-core cluster with its own request source, dispatcher and
// (optionally) power-capping domain, simulated across Shards parallel
// event loops.
//
// Sockets are shared-nothing by construction — no source, dispatcher,
// policy, allocator scratch or engine is shared between them — which is
// what makes the parallelism exact rather than approximate: the fleet
// result is invariant to the shard count, and RunFleet with Shards=1 is
// byte-identical to simulating the sockets one after another. Dispatch is
// socket-local (partitioned-queue semantics): a JSQ or least-work
// dispatcher compares only the queues of its own socket's cores. A
// fleet-global JSQ would need every core's queue length at every arrival,
// which is precisely the cross-shard synchronization sharding removes; see
// DESIGN.md §10 for the argument.
type FleetConfig struct {
	// Sockets is the number of independent core groups.
	Sockets int
	// CoresPerSocket is the core count of each group (paper CMP: 6).
	CoresPerSocket int
	// Shards is the number of parallel simulation goroutines the sockets
	// are packed onto. 0 means GOMAXPROCS; any value is clamped to
	// [1, Sockets]. The shard count is a throughput knob only — results
	// are identical at every value.
	Shards int
	// NewSource builds socket s's request stream. Sources must not be
	// shared between sockets (they are stateful); derive per-socket seeds
	// with workload.ShardSeed so the fleet is deterministic per fleet
	// seed. Called from shard goroutines: the factory must be safe for
	// concurrent calls (building independent sources concurrently is safe
	// for every source in this repo).
	NewSource func(socket int) workload.Source
	// NewDispatcher builds socket s's dispatcher (nil: round-robin per
	// socket). Dispatchers are stateful, so every socket needs a fresh
	// one; seed Random dispatchers per socket via workload.ShardSeed.
	NewDispatcher func(socket int) Dispatcher
	// Core parameterizes every core in the fleet.
	Core queueing.Config
	// NewPolicy builds the frequency policy for (socket, core). Like
	// NewSource it is called from shard goroutines and must be safe for
	// concurrent calls.
	NewPolicy func(socket, core int) (queueing.Policy, error)

	// CapW, when > 0, budgets every socket at CapW watts: each socket is
	// one power domain spanning its cores, reconciled by Allocator
	// (socket-local, like dispatch — see internal/capping). 0 = uncapped.
	// Under a Hierarchy, CapW instead bounds what any socket may be
	// granted (a physical per-socket ceiling on the leaf grants).
	CapW float64
	// Allocator is the per-socket budget strategy (default:
	// capping.Waterfill). Allocators are stateless values (per-round
	// scratch lives in each socket's Domain), so one value serves every
	// socket concurrently.
	Allocator capping.Allocator

	// Hierarchy, when non-nil, runs the fleet under a nested budget tree
	// (rack → PDU → ... → socket): the tree's leaf grants become
	// time-varying per-socket caps, re-allocated from reported demand at
	// Epoch barriers (see runFleetHier). Requires Epoch > 0.
	Hierarchy *capping.HierarchySpec
	// Epoch is the hierarchy's re-allocation cadence in simulated ns:
	// sockets advance independently between barriers and exchange demand
	// for caps at each multiple of Epoch.
	Epoch sim.Time

	// TableCacheEntries sizes the per-shard content-addressed tail-table
	// rebuild cache: every socket a shard goroutine simulates shares one
	// cache, so byte-identical rebuild inputs — across ticks of one
	// controller or across cores and sockets — run the FFT convolutions
	// once. 0 (the default) enables a DefaultTableCacheEntries-entry
	// cache — fleet mode is cached by default because a verified hit is
	// bitwise-identical to rebuilding, so results are unchanged (the
	// invariance tests and CI's cached-vs-uncached cmp pin this). < 0
	// disables caching; > 0 sets an explicit bound.
	TableCacheEntries int
}

// tableCacheEntries resolves the per-shard cache bound (0 = disabled).
func (cfg FleetConfig) tableCacheEntries() int {
	switch {
	case cfg.TableCacheEntries < 0:
		return 0
	case cfg.TableCacheEntries == 0:
		return DefaultTableCacheEntries
	default:
		return cfg.TableCacheEntries
	}
}

// socketConfig assembles the per-socket cluster Config: socket s of a
// fleet is exactly a CoresPerSocket-core cluster run, so fleet semantics
// reduce to the (golden-pinned) single-engine cluster semantics.
func (cfg FleetConfig) socketConfig(s int) Config {
	c := Config{
		Cores:     cfg.CoresPerSocket,
		Core:      cfg.Core,
		CapW:      cfg.CapW,
		Allocator: cfg.Allocator,
	}
	if cfg.NewDispatcher != nil {
		c.Dispatcher = cfg.NewDispatcher(s)
	}
	if cfg.NewPolicy != nil {
		s := s
		c.NewPolicy = func(core int) (queueing.Policy, error) {
			return cfg.NewPolicy(s, core)
		}
	}
	return c
}

// shardCount resolves the effective shard count.
func (cfg FleetConfig) shardCount() int {
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > cfg.Sockets {
		n = cfg.Sockets
	}
	if n < 1 {
		n = 1
	}
	return n
}

// FleetResult is the outcome of a fleet run: one cluster Result per
// socket, in socket order. Per-socket capping accounting (when the fleet
// was capped) lives in each socket Result's Capping field; core indices
// inside it are socket-local.
type FleetResult struct {
	// Shards is the shard count the run used (reporting only — results
	// are invariant to it).
	Shards int
	// Sockets holds each socket's cluster Result.
	Sockets []Result
	// TableCache sums the per-shard rebuild-cache outcomes (hits, misses,
	// collisions, evictions); the zero value means caching was disabled
	// or no policy used it. Reporting only: socket results are invariant
	// to cache hits (a verified hit is bitwise-identical to rebuilding),
	// but because work stealing assigns sockets to shards by timing, the
	// aggregate counts themselves may differ between runs. (Hierarchical
	// runs use per-socket caches, so there the counts are deterministic.)
	TableCache rubikcore.TableCacheStats
	// Hierarchy holds the budget tree's per-level accounting when the
	// fleet ran under FleetConfig.Hierarchy; nil for flat runs.
	Hierarchy *capping.HierarchyStats
}

// coreLists flattens the fleet's per-core completion logs in global core
// order (socket-major: global core index = cores-before-socket + local
// index), the key order of the deterministic merge.
func (r FleetResult) coreLists() [][]queueing.Completion {
	var lists [][]queueing.Completion
	for _, s := range r.Sockets {
		for _, c := range s.PerCore {
			lists = append(lists, c.Completions)
		}
	}
	return lists
}

// IterCompletions streams the fleet's pooled completions in completion
// order (ties by global core index) without materializing them: the same
// min-heap merge as Result.Completions, in callback form. yield returning
// false stops the merge. Memory is O(total cores), independent of the
// request count — the fleet-scale counterpart of a 10k-core Completions()
// call, which would materialize every served request.
func (r FleetResult) IterCompletions(yield func(queueing.Completion) bool) {
	iterMergedCompletions(r.coreLists(), yield)
}

// Completions materializes the pooled completion order. Prefer
// IterCompletions for large fleets: this allocates one slice holding
// every served request in the fleet.
func (r FleetResult) Completions() []queueing.Completion {
	var total int
	for _, s := range r.Sockets {
		for _, c := range s.PerCore {
			total += len(c.Completions)
		}
	}
	out := make([]queueing.Completion, 0, total)
	r.IterCompletions(func(c queueing.Completion) bool {
		out = append(out, c)
		return true
	})
	return out
}

// TailNs pools post-warmup responses across every core of every socket
// and returns the q-quantile, falling back to merging the streamed
// per-core response histograms when completion logs were dropped
// (queueing.Config.DropCompletions) — the same two-path estimate as
// Result.TailNs, fleet-wide.
func (r FleetResult) TailNs(q, warmupFrac float64) float64 {
	var all []float64
	for _, s := range r.Sockets {
		for _, c := range s.PerCore {
			all = append(all, c.Responses(warmupFrac)...)
		}
	}
	if len(all) > 0 {
		return stats.Percentile(all, q)
	}
	var merged *stats.LogHistogram
	for _, s := range r.Sockets {
		for _, c := range s.PerCore {
			if c.ResponseHist == nil {
				continue
			}
			if merged == nil {
				merged = stats.NewResponseHistogram()
			}
			if err := merged.Merge(c.ResponseHist); err != nil {
				return 0
			}
		}
	}
	if merged == nil {
		return 0
	}
	return merged.Quantile(q)
}

// Served counts completed requests across the fleet.
func (r FleetResult) Served() int {
	var n int
	for _, s := range r.Sockets {
		n += s.Served()
	}
	return n
}

// ActiveEnergyJ sums active core energy across the fleet.
func (r FleetResult) ActiveEnergyJ() float64 {
	var e float64
	for _, s := range r.Sockets {
		e += s.ActiveEnergyJ()
	}
	return e
}

// TotalEnergyJ sums active plus idle energy across the fleet.
func (r FleetResult) TotalEnergyJ() float64 {
	var e float64
	for _, s := range r.Sockets {
		e += s.TotalEnergyJ()
	}
	return e
}

// EnergyPerRequestJ is fleet-pooled active energy per completed request.
func (r FleetResult) EnergyPerRequestJ() float64 {
	n := r.Served()
	if n == 0 {
		return 0
	}
	return r.ActiveEnergyJ() / float64(n)
}

// EndTime is the latest socket end time: the simulated duration of the
// fleet run (sockets are independent, so each ends on its own clock).
func (r FleetResult) EndTime() sim.Time {
	var end sim.Time
	for _, s := range r.Sockets {
		if s.EndTime > end {
			end = s.EndTime
		}
	}
	return end
}

// Capping concatenates the per-socket power-domain accounting in socket
// order (empty when the fleet ran uncapped). Core indices inside each
// DomainStats are socket-local.
func (r FleetResult) Capping() []capping.DomainStats {
	var out []capping.DomainStats
	for _, s := range r.Sockets {
		out = append(out, s.Capping...)
	}
	return out
}

// RunFleet simulates the fleet across cfg.Shards parallel event loops.
//
// Sockets are scheduled by work stealing: shard goroutines claim the next
// unclaimed socket from a shared atomic counter and simulate it to
// completion, each socket on its own sim.Engine via the single-engine
// cluster path (RunSource). Stealing replaced the earlier static
// round-robin partition because per-socket loads are not uniform — one
// heavy socket (a skewed request count, a binding cap stretching its
// drain) used to stall its whole shard while sibling shards sat idle;
// with a shared counter the finishing shards drain the remaining sockets
// instead. Sockets get dedicated engines rather than one engine per shard
// because engine-global quantities — the end-of-run clock that trailing
// idle-energy accounting accrues to — would otherwise couple co-resident
// sockets, and co-residency buys nothing when sockets share no state.
// Sockets therefore stay shared-nothing and the schedule is pure timing:
// socket s's Result is a function of (source, config) alone, so shard=N
// output is deeply equal to shard=1 output for every N even though the
// socket→shard assignment itself is nondeterministic.
//
// Each shard goroutine additionally owns one content-addressed tail-table
// rebuild cache (see TableCacheEntries) handed to every socket it claims:
// goroutine confinement keeps the cache lock-free, and a stolen socket
// simply warms whichever shard's cache it lands on. Cache hits copy
// bitwise-identical tables, so the shard-invariance property is
// unaffected.
func RunFleet(cfg FleetConfig) (FleetResult, error) {
	if cfg.Sockets <= 0 {
		return FleetResult{}, fmt.Errorf("cluster: fleet needs at least 1 socket, got %d", cfg.Sockets)
	}
	if cfg.CoresPerSocket <= 0 {
		return FleetResult{}, fmt.Errorf("cluster: fleet needs at least 1 core per socket, got %d", cfg.CoresPerSocket)
	}
	if cfg.NewSource == nil {
		return FleetResult{}, fmt.Errorf("cluster: fleet needs a NewSource factory")
	}
	shards := cfg.shardCount()
	if cfg.Hierarchy != nil {
		return runFleetHier(cfg, shards)
	}
	if cfg.Epoch != 0 {
		return FleetResult{}, fmt.Errorf("cluster: Epoch set without a Hierarchy")
	}

	results := make([]Result, cfg.Sockets)
	errs := make([]error, cfg.Sockets)
	cacheStats := make([]rubikcore.TableCacheStats, shards)
	var next atomic.Int64 // next unclaimed socket index
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			// Label the goroutine so CPU profiles (rubiksim -cpuprofile)
			// attribute samples per shard and per claimed socket; the socket
			// label is rewritten as the shard steals new work.
			pprof.Do(context.Background(), pprof.Labels("fleet_shard", strconv.Itoa(k)), func(ctx context.Context) {
				var cache *rubikcore.TableCache
				if n := cfg.tableCacheEntries(); n > 0 {
					cache = rubikcore.NewTableCache(n)
				}
				for {
					s := int(next.Add(1)) - 1
					if s >= cfg.Sockets {
						break
					}
					src := cfg.NewSource(s)
					if src == nil {
						errs[s] = fmt.Errorf("cluster: fleet socket %d: NewSource returned nil", s)
						continue
					}
					c := cfg.socketConfig(s)
					c.TableCache = cache
					pprof.Do(ctx, pprof.Labels("socket", strconv.Itoa(s)), func(context.Context) {
						results[s], errs[s] = RunSource(src, c)
					})
				}
				if cache != nil {
					cacheStats[k] = cache.Stats()
				}
			})
		}(k)
	}
	wg.Wait()
	// Lowest-socket error wins, so the reported failure is deterministic
	// regardless of which shard hit it first.
	for s, err := range errs {
		if err != nil {
			return FleetResult{}, fmt.Errorf("cluster: fleet socket %d: %w", s, err)
		}
	}
	out := FleetResult{Shards: shards, Sockets: results}
	for _, st := range cacheStats {
		out.TableCache.Add(st)
	}
	return out, nil
}
