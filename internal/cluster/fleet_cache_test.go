package cluster

import (
	"reflect"
	"testing"

	rubikcore "rubik/internal/core"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// rubikFleetConfig is fleetConfig with per-core Rubik controllers tuned
// so small test fleets actually exercise the rebuild path: a 2 ms table
// refresh (vs the paper's 100 ms, which a short run never reaches) and a
// small profiling window, so ticks during idle stretches see an
// unchanged window and can hit the rebuild cache.
func rubikFleetConfig(t *testing.T, scenario, dispatcher string, sockets, coresPer, nPer, shards int) FleetConfig {
	t.Helper()
	cfg := fleetConfig(t, scenario, dispatcher, sockets, coresPer, nPer, 0, shards)
	cfg.NewPolicy = func(int, int) (queueing.Policy, error) {
		rcfg := rubikcore.DefaultConfig(500_000)
		rcfg.UpdatePeriod = 2 * sim.Millisecond
		rcfg.MinSamples = 16
		rcfg.HistoryCap = 256
		return rubikcore.New(rcfg)
	}
	return cfg
}

// TestFleetTableCacheInvariance is the cache's end-to-end acceptance
// property: across scenario shapes and dispatchers, a fleet run with the
// per-shard rebuild cache (the default) produces per-socket results
// deeply equal to the same fleet with caching disabled — the cache is a
// pure throughput optimization, invisible in every simulated quantity —
// while actually hitting (a never-hit cache would pass vacuously).
func TestFleetTableCacheInvariance(t *testing.T) {
	const sockets, coresPer, nPer = 2, 2, 600
	scenarios := []string{"bursty", "heavytail", "closedloop"}
	dispatchers := []string{"jsq", "roundrobin"}
	var hits int64
	for _, sc := range scenarios {
		for _, d := range dispatchers {
			t.Run(sc+"/"+d, func(t *testing.T) {
				off := rubikFleetConfig(t, sc, d, sockets, coresPer, nPer, 2)
				off.TableCacheEntries = -1
				want, err := RunFleet(off)
				if err != nil {
					t.Fatal(err)
				}
				if st := want.TableCache; st.Lookups() != 0 {
					t.Fatalf("disabled cache reported lookups: %+v", st)
				}

				on := rubikFleetConfig(t, sc, d, sockets, coresPer, nPer, 2)
				got, err := RunFleet(on)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Sockets, want.Sockets) {
					t.Fatal("cached fleet result diverged from uncached")
				}
				if st := got.TableCache; st.Lookups() == 0 {
					t.Fatal("default-on cache was never consulted")
				}
				hits += got.TableCache.Hits
			})
		}
	}
	if hits == 0 {
		t.Fatal("no scenario/dispatcher cell ever hit the cache")
	}
}

// TestFleetTableCacheExplicitSize checks the TableCacheEntries contract:
// an explicit bound is honored per shard, and shard-count invariance
// holds with a cache so small it evicts constantly.
func TestFleetTableCacheExplicitSize(t *testing.T) {
	const sockets, coresPer, nPer = 3, 2, 500
	want, err := RunFleet(rubikFleetConfig(t, "bursty", "jsq", sockets, coresPer, nPer, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, sockets} {
		cfg := rubikFleetConfig(t, "bursty", "jsq", sockets, coresPer, nPer, shards)
		cfg.TableCacheEntries = 1 // evict on every distinct rebuild
		got, err := RunFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Sockets, want.Sockets) {
			t.Fatalf("shard=%d size-1-cache fleet diverged", shards)
		}
	}
}

// TestFleetWorkStealingSkewed pins the scheduler rewrite: per-socket
// request counts are pathologically skewed (one socket carries 20x the
// work), which under the old static round-robin partition serialized the
// heavy socket's shard. Stealing must leave results deeply equal across
// shard counts anyway — the schedule moves, the simulation does not.
// The fixed CI race pass (-run 'TestFleet') covers the claim-counter
// and results-slice sharing under the detector.
func TestFleetWorkStealingSkewed(t *testing.T) {
	const sockets, coresPer = 4, 2
	perSocket := []int{4000, 200, 200, 200}
	build := func(shards int) FleetConfig {
		cfg := fleetConfig(t, "bursty", "jsq", sockets, coresPer, perSocket[0], 0, shards)
		sc, err := workload.ScenarioByName("bursty")
		if err != nil {
			t.Fatal(err)
		}
		app := workload.Masstree()
		cfg.NewSource = func(s int) workload.Source {
			return sc.New(app, 0.5*float64(coresPer), perSocket[s], workload.ShardSeed(7, s))
		}
		return cfg
	}
	want, err := RunFleet(build(1))
	if err != nil {
		t.Fatal(err)
	}
	for s, n := range perSocket {
		if got := want.Sockets[s].Served(); got != n {
			t.Fatalf("socket %d served %d, want %d", s, got, n)
		}
	}
	for _, shards := range []int{2, sockets} {
		got, err := RunFleet(build(shards))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Sockets, want.Sockets) {
			t.Fatalf("shard=%d skewed fleet diverged from shard=1", shards)
		}
	}
}
