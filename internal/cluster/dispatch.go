package cluster

import (
	"fmt"
	"math/rand"

	"rubik/internal/sim"
	"rubik/internal/workload"
)

// CoreState is the dispatcher-visible snapshot of one core at an arrival.
// The cluster accrues every core before building the snapshot, so queue
// lengths and pending work are exact as of the arrival instant.
type CoreState struct {
	// Index is the core's position in the cluster.
	Index int
	// QueueLen is the number of requests in the core's system (head in
	// service).
	QueueLen int
	// PendingWorkNs is the estimated time to drain the core's queue at its
	// current frequency.
	PendingWorkNs sim.Time
	// CurrentMHz is the core's executing frequency.
	CurrentMHz int
}

// Dispatcher routes arriving requests to cores. Implementations must be
// deterministic given their construction parameters: Run calls Reset
// before replaying a trace, so repeated simulations of the same trace
// under the same configuration are identical.
//
// Fleet semantics: in a sharded fleet run every socket has its own
// dispatcher instance over its own cores (partitioned-queue dispatch).
// Random and RoundRobin are shard-local by construction — their decisions
// never depended on cross-core state. JSQ and LeastWork compare queue
// state, so in a fleet they compare only the socket's cores: a
// fleet-global shortest-queue would need every core's depth at every
// arrival, which is exactly the cross-shard synchronization sharding
// removes (DESIGN.md §10).
type Dispatcher interface {
	// Name identifies the dispatch discipline in results and reports.
	Name() string
	// Reset returns the dispatcher to its initial state.
	Reset()
	// Pick returns the index of the core the request is routed to.
	Pick(req workload.Request, cores []CoreState) int
}

// Random routes each request to a uniformly random core from a seeded
// stream, so the routing is reproducible given the seed.
type Random struct {
	seed int64
	rng  *rand.Rand
}

// NewRandom returns a seeded random dispatcher.
func NewRandom(seed int64) *Random {
	return &Random{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Dispatcher.
func (d *Random) Name() string { return "random" }

// Reset implements Dispatcher: the routing stream restarts from the seed.
func (d *Random) Reset() { d.rng = rand.New(rand.NewSource(d.seed)) }

// Pick implements Dispatcher.
func (d *Random) Pick(_ workload.Request, cores []CoreState) int {
	return d.rng.Intn(len(cores))
}

// RoundRobin cycles through the cores in index order.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin dispatcher starting at core 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Dispatcher.
func (d *RoundRobin) Name() string { return "roundrobin" }

// Reset implements Dispatcher.
func (d *RoundRobin) Reset() { d.next = 0 }

// Pick implements Dispatcher.
func (d *RoundRobin) Pick(_ workload.Request, cores []CoreState) int {
	i := d.next % len(cores)
	d.next = (d.next + 1) % len(cores)
	return i
}

// JSQ is join-shortest-queue: the core with the fewest queued requests
// wins; ties break to the lowest core index, keeping the routing
// deterministic.
type JSQ struct{}

// NewJSQ returns a join-shortest-queue dispatcher.
func NewJSQ() JSQ { return JSQ{} }

// Name implements Dispatcher.
func (JSQ) Name() string { return "jsq" }

// Reset implements Dispatcher (JSQ is stateless).
func (JSQ) Reset() {}

// Pick implements Dispatcher.
func (JSQ) Pick(_ workload.Request, cores []CoreState) int {
	best := 0
	for i := 1; i < len(cores); i++ {
		if cores[i].QueueLen < cores[best].QueueLen {
			best = i
		}
	}
	return best
}

// LeastWork routes to the core with the least pending work (queue drain
// time at the core's current frequency), which accounts for both queue
// depth and per-core DVFS state; ties break to the lowest core index.
type LeastWork struct{}

// NewLeastWork returns a least-pending-work dispatcher.
func NewLeastWork() LeastWork { return LeastWork{} }

// Name implements Dispatcher.
func (LeastWork) Name() string { return "leastwork" }

// Reset implements Dispatcher (LeastWork is stateless).
func (LeastWork) Reset() {}

// Pick implements Dispatcher.
func (LeastWork) Pick(_ workload.Request, cores []CoreState) int {
	best := 0
	for i := 1; i < len(cores); i++ {
		if cores[i].PendingWorkNs < cores[best].PendingWorkNs {
			best = i
		}
	}
	return best
}

// Dispatchers returns one instance of every dispatch discipline, seeding
// the random one; the order is stable for experiment sweeps.
func Dispatchers(seed int64) []Dispatcher {
	return []Dispatcher{NewRandom(seed), NewRoundRobin(), NewJSQ(), NewLeastWork()}
}

// DispatcherByName returns a fresh dispatcher by discipline name (random,
// roundrobin, jsq, leastwork); seed only matters for random. Fleet
// configs build one per socket, deriving per-socket seeds with
// workload.ShardSeed.
func DispatcherByName(name string, seed int64) (Dispatcher, error) {
	switch name {
	case "random":
		return NewRandom(seed), nil
	case "roundrobin":
		return NewRoundRobin(), nil
	case "jsq":
		return NewJSQ(), nil
	case "leastwork":
		return NewLeastWork(), nil
	}
	return nil, fmt.Errorf("cluster: unknown dispatcher %q (random, roundrobin, jsq, leastwork)", name)
}
