// Package cluster simulates a multi-core server on one shared
// discrete-event engine: N instances of the single-core run loop
// (queueing.Core), each under its own frequency policy, behind a pluggable
// request dispatcher. It is the substrate for the paper's 6-core CMP
// evaluated as a whole server rather than by per-core extrapolation, and
// scales to any core count.
//
// Determinism: the engine fires equal-timestamp events in scheduling
// order, every dispatcher is deterministic given its construction
// parameters (Run resets it before replaying), and each core's policy is
// built fresh by the config's NewPolicy factory — so two runs of the same
// trace under the same config produce identical Results.
package cluster

import (
	"fmt"

	"rubik/internal/capping"
	rubikcore "rubik/internal/core"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

// Config parameterizes a simulated multi-core server.
type Config struct {
	// Cores is the number of cores (paper CMP: 6).
	Cores int
	// Dispatcher routes arriving requests (default: round-robin).
	Dispatcher Dispatcher
	// Core parameterizes every core (grid, power model, DVFS latency...).
	Core queueing.Config
	// NewPolicy builds the frequency policy for core i. Policies are
	// stateful (Rubik profiles online), so every core needs a fresh one.
	NewPolicy func(core int) (queueing.Policy, error)

	// CapW, when > 0, runs the cluster under shared power budgets: every
	// power domain's cores have their per-core frequency choices filtered
	// through Allocator so that the sum of granted active powers stays
	// within CapW per domain (see internal/capping). 0 (the default) is
	// completely uncapped — the run is byte-identical to a config without
	// the capping fields.
	CapW float64
	// PowerDomains groups core indices into power domains (sockets), each
	// budgeted at CapW. Nil with CapW set means one domain spanning every
	// core. A core may belong to at most one domain; cores outside every
	// domain run uncapped.
	PowerDomains [][]int
	// Allocator is the budget strategy (default: capping.Waterfill).
	Allocator capping.Allocator

	// TableCache, when non-nil, is offered to every policy that
	// implements TableCacheUser (core.Rubik does): their periodic tail-
	// table rebuilds are then memoized content-addressed by the exact
	// rebuild inputs, so byte-identical profiles rebuild once and share.
	// Results are unchanged — a verified cache hit is bitwise-identical
	// to rebuilding — so this is purely a throughput knob. Nil (the
	// default, and the single-core path's default throughout) leaves
	// every policy rebuilding privately. The cache is goroutine-confined:
	// share one only across clusters simulated on the same goroutine
	// (RunFleet hands every socket of a shard the same cache).
	TableCache *rubikcore.TableCache
}

// TableCacheUser is implemented by policies whose periodic model refresh
// can share a content-addressed rebuild cache (core.Rubik). buildCores
// attaches Config.TableCache to every policy that implements it.
type TableCacheUser interface {
	SetTableCache(*rubikcore.TableCache)
}

// DefaultConfig returns a 6-core server with round-robin dispatch and
// fixed-nominal cores, matching the paper's CMP (Table 2).
func DefaultConfig() Config {
	return Config{
		Cores:      6,
		Dispatcher: NewRoundRobin(),
		Core:       queueing.DefaultConfig(),
		NewPolicy: func(int) (queueing.Policy, error) {
			return queueing.FixedPolicy{MHz: queueing.DefaultConfig().InitialMHz}, nil
		},
	}
}

// Result is the outcome of simulating one trace on a cluster.
type Result struct {
	// Dispatcher is the dispatch discipline's name.
	Dispatcher string
	// PerCore holds each core's single-core Result (completions in that
	// core's service order).
	PerCore []queueing.Result
	// Routed[i] counts the requests dispatched to core i.
	Routed []int
	// EndTime is when the last event fired (all cores share the engine).
	EndTime sim.Time
	// Capping holds per-domain power budget accounting, in Config
	// PowerDomains order. Nil when the run was uncapped (Config.CapW 0).
	Capping []capping.DomainStats
}

// Completions pools all cores' completions ordered by completion time
// (ties by core index), i.e. the order a shared front-end would observe.
// Per-core slices are already sorted, so this is an O(total * log cores)
// k-way min-heap merge keyed by (next completion time, core index) — the
// tie-break keeps the ordering identical to the linear-scan merge it
// replaced, which always took the lowest-indexed core among equals. For
// fleet-scale results prefer IterCompletions, which streams the same
// order without materializing a per-request slice.
func (r Result) Completions() []queueing.Completion {
	var total int
	for _, c := range r.PerCore {
		total += len(c.Completions)
	}
	out := make([]queueing.Completion, 0, total)
	r.IterCompletions(func(c queueing.Completion) bool {
		out = append(out, c)
		return true
	})
	return out
}

// IterCompletions streams the pooled completion order of Completions in
// callback form: yield receives each completion in (Done, core index)
// order and returning false stops the merge. Memory is O(cores),
// independent of the request count.
func (r Result) IterCompletions(yield func(queueing.Completion) bool) {
	lists := make([][]queueing.Completion, len(r.PerCore))
	for i, c := range r.PerCore {
		lists[i] = c.Completions
	}
	iterMergedCompletions(lists, yield)
}

// iterMergedCompletions is the shared streaming k-way merge behind
// Result.IterCompletions and FleetResult.IterCompletions: lists must each
// be sorted by Done, and the merge is keyed by (Done, list index) — ties
// go to the lowest list index, exactly the ordering the materializing
// merge has always produced.
func iterMergedCompletions(lists [][]queueing.Completion, yield func(queueing.Completion) bool) {
	idx := make([]int, len(lists))
	// heap holds list indices; the key of list i is
	// (lists[i][idx[i]].Done, i).
	heap := make([]int, 0, len(lists))
	less := func(a, b int) bool {
		ca := lists[a][idx[a]]
		cb := lists[b][idx[b]]
		return ca.Done < cb.Done || (ca.Done == cb.Done && a < b)
	}
	siftDown := func(i int) {
		for {
			left, right := 2*i+1, 2*i+2
			smallest := i
			if left < len(heap) && less(heap[left], heap[smallest]) {
				smallest = left
			}
			if right < len(heap) && less(heap[right], heap[smallest]) {
				smallest = right
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}
	for i, l := range lists {
		if len(l) > 0 {
			heap = append(heap, i)
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(heap) > 0 {
		l := heap[0]
		if !yield(lists[l][idx[l]]) {
			return
		}
		idx[l]++
		if idx[l] >= len(lists[l]) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
	}
}

// TailNs pools post-warmup responses across cores and returns the
// q-quantile (warmup is trimmed per core, as in the paper's steady-state
// methodology). When the cores streamed their completion logs out
// (queueing.Config.DropCompletions) it merges the per-core response
// histograms instead; the streamed estimate covers the whole run.
func (r Result) TailNs(q, warmupFrac float64) float64 {
	var all []float64
	for _, c := range r.PerCore {
		all = append(all, c.Responses(warmupFrac)...)
	}
	if len(all) > 0 {
		return stats.Percentile(all, q)
	}
	var merged *stats.LogHistogram
	for _, c := range r.PerCore {
		if c.ResponseHist == nil {
			continue
		}
		if merged == nil {
			merged = stats.NewResponseHistogram()
		}
		if err := merged.Merge(c.ResponseHist); err != nil {
			// All cores use the shared response geometry; a mismatch means
			// a hand-built Result, for which there is no pooled tail.
			return 0
		}
	}
	if merged == nil {
		return 0
	}
	return merged.Quantile(q)
}

// ActiveEnergyJ sums active core energy across cores.
func (r Result) ActiveEnergyJ() float64 {
	var e float64
	for _, c := range r.PerCore {
		e += c.ActiveEnergyJ
	}
	return e
}

// TotalEnergyJ sums active plus idle energy across cores.
func (r Result) TotalEnergyJ() float64 {
	var e float64
	for _, c := range r.PerCore {
		e += c.ActiveEnergyJ + c.IdleEnergyJ
	}
	return e
}

// Served counts completed requests across cores (even when the per-core
// completion logs were streamed out).
func (r Result) Served() int {
	var n int
	for _, c := range r.PerCore {
		if c.Served > 0 {
			n += c.Served
		} else {
			n += len(c.Completions)
		}
	}
	return n
}

// EnergyPerRequestJ is pooled active energy per completed request.
func (r Result) EnergyPerRequestJ() float64 {
	n := r.Served()
	if n == 0 {
		return 0
	}
	return r.ActiveEnergyJ() / float64(n)
}

// MeanBusyCores is the average number of simultaneously busy cores (the
// uncore activity driver in the system power model).
func (r Result) MeanBusyCores() float64 {
	if r.EndTime == 0 {
		return 0
	}
	var busy float64
	for _, c := range r.PerCore {
		busy += float64(c.ActiveNs)
	}
	return busy / float64(r.EndTime)
}

// Run simulates the trace on a cluster. A materialized trace is just one
// Source: Run is RunSource over the trace's stream, byte-identical to
// the pre-streaming replay loop (the stream hints its length, so even
// the per-core completion-log presizing is identical).
func Run(tr workload.Trace, cfg Config) (Result, error) {
	return RunSource(workload.NewTraceSource(tr), cfg)
}

// buildCores validates the config and assembles the per-core simulators.
func buildCores(eng *sim.Engine, cfg Config) ([]*queueing.Core, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 core, got %d", cfg.Cores)
	}
	if cfg.NewPolicy == nil {
		return nil, fmt.Errorf("cluster: nil NewPolicy factory")
	}
	cores := make([]*queueing.Core, cfg.Cores)
	for i := range cores {
		p, err := cfg.NewPolicy(i)
		if err != nil {
			return nil, fmt.Errorf("cluster: building policy for core %d: %w", i, err)
		}
		if cfg.TableCache != nil {
			if u, ok := p.(TableCacheUser); ok {
				u.SetTableCache(cfg.TableCache)
			}
		}
		c, err := queueing.NewCore(eng, p, cfg.Core)
		if err != nil {
			return nil, err
		}
		cores[i] = c
	}
	return cores, nil
}

// finalize assembles the per-core results and the capping accounting.
func finalize(eng *sim.Engine, cores []*queueing.Core, dispatcher string, routed []int, capped *cappedSetup) Result {
	res := Result{
		Dispatcher: dispatcher,
		PerCore:    make([]queueing.Result, len(cores)),
		Routed:     routed,
		EndTime:    eng.Now(),
		Capping:    capped.domainStats(),
	}
	for i, c := range cores {
		res.PerCore[i] = c.Finalize()
	}
	return res
}

// socketSim is one cluster simulation split into (setup, advance,
// result): exactly RunSource's body, but resumable, so the hierarchical
// fleet can interleave many sockets at epoch barriers. RunSource composes
// the three pieces in one shot, which keeps the split from ever drifting
// from the single-shot path.
type socketSim struct {
	eng     *sim.Engine
	cfg     Config
	cores   []*queueing.Core
	feed    *queueing.Feeder
	capped  *cappedSetup
	routed  []int
	pickErr error
	drained bool
}

// newSocketSim validates the config, assembles cores, capping, dispatch
// and the source feeder, and leaves the engine primed at t=0.
func newSocketSim(src workload.Source, cfg Config) (*socketSim, error) {
	if cfg.Dispatcher == nil {
		cfg.Dispatcher = NewRoundRobin()
	}
	cfg.Dispatcher.Reset()

	eng := sim.NewEngine()
	if cfg.Core.ExpectedRequests == 0 && cfg.Cores > 0 {
		// Per-core share of the stream, as a capacity hint for completion
		// logs. Dispatch imbalance only costs an amortized regrow.
		if n := src.Len(); n > 0 {
			cfg.Core.ExpectedRequests = (n + cfg.Cores - 1) / cfg.Cores
		}
	}
	capped, err := wireCapping(eng, &cfg)
	if err != nil {
		return nil, err
	}
	cores, err := buildCores(eng, cfg)
	if err != nil {
		return nil, err
	}
	capped.attach(cores)

	s := &socketSim{
		eng:    eng,
		cfg:    cfg,
		cores:  cores,
		capped: capped,
		routed: make([]int, cfg.Cores),
	}
	states := make([]CoreState, cfg.Cores)
	s.feed = queueing.NewSourceFeeder(eng, src, func(req workload.Request) {
		// O(cores) per arrival: Accrue is O(1) (head progress only) and the
		// queue-length/pending-work counters are maintained incrementally
		// by each Core, so no core's queue is rescanned here.
		for i, c := range cores {
			c.Accrue()
			states[i] = CoreState{
				Index:         i,
				QueueLen:      c.QueueLen(),
				PendingWorkNs: c.PendingWorkNs(),
				CurrentMHz:    c.CurrentMHz(),
			}
		}
		i := cfg.Dispatcher.Pick(req, states)
		if i < 0 || i >= len(cores) {
			// A broken dispatcher must surface, not silently skew results;
			// route to core 0 so the simulation still drains, and fail the
			// run afterwards.
			if s.pickErr == nil {
				s.pickErr = fmt.Errorf("cluster: dispatcher %s picked core %d of %d for request %d",
					cfg.Dispatcher.Name(), i, len(cores), req.ID)
			}
			i = 0
		}
		s.routed[i]++
		cores[i].Enqueue(req)
	})
	if _, aware := src.(workload.CompletionAware); aware {
		for _, c := range cores {
			c.SetHooks(queueing.Hooks{
				Completion: func(comp queueing.Completion) { s.feed.NotifyCompletion(comp.Done) },
			})
		}
	}
	s.feed.Start()
	for _, c := range cores {
		c.StartTicks(func() bool { return s.feed.Remaining() > 0 })
	}
	return s, nil
}

// advanceTo fires every event due by t without moving the clock past the
// last one, and reports whether the simulation drained. Barriers that
// fire nothing leave no trace (sim.Engine.RunEventsUntil), so a segmented
// run observes exactly the clocks of an unsegmented one.
func (s *socketSim) advanceTo(t sim.Time) bool {
	if !s.drained {
		s.drained = s.eng.RunEventsUntil(t)
	}
	return s.drained
}

// result assembles the Result once advancing is done.
func (s *socketSim) result() (Result, error) {
	if s.pickErr != nil {
		return Result{}, s.pickErr
	}
	return finalize(s.eng, s.cores, s.cfg.Dispatcher.Name(), s.routed, s.capped), nil
}

// RunSource simulates a streaming request source on a cluster: one shared
// engine, Cores cores each under a fresh policy, with the dispatcher
// routing every arrival pulled from the source. The dispatcher sees exact
// queue state: all cores are accrued to the arrival instant before it
// picks. Nothing materializes the stream, so a 10M-request scenario run
// needs memory for the queue depths, not the request count (pair with
// Core.DropCompletions). Completion-aware sources (closed-loop clients)
// receive every core's completions.
func RunSource(src workload.Source, cfg Config) (Result, error) {
	s, err := newSocketSim(src, cfg)
	if err != nil {
		return Result{}, err
	}
	s.eng.RunUntilOrDrain(s.cfg.Core.Deadline)
	return s.result()
}

// RunPerCoreSources simulates cores with dedicated request streams — no
// dispatcher; core i serves srcs[i] exclusively. This is the segregated
// topology (one listener per core, as the paper's per-core extrapolation
// assumes) and the natural shape for per-core closed-loop populations.
// cfg.Cores is overridden by len(srcs).
func RunPerCoreSources(srcs []workload.Source, cfg Config) (Result, error) {
	if len(srcs) == 0 {
		return Result{}, fmt.Errorf("cluster: no per-core sources")
	}
	cfg.Cores = len(srcs)

	eng := sim.NewEngine()
	if cfg.Core.ExpectedRequests == 0 {
		// Per-core hint from the largest known source length.
		max := 0
		for _, s := range srcs {
			if n := s.Len(); n > max {
				max = n
			}
		}
		cfg.Core.ExpectedRequests = max
	}
	capped, err := wireCapping(eng, &cfg)
	if err != nil {
		return Result{}, err
	}
	cores, err := buildCores(eng, cfg)
	if err != nil {
		return Result{}, err
	}
	capped.attach(cores)

	routed := make([]int, len(srcs))
	feeds := make([]*queueing.Feeder, len(srcs))
	for i := range srcs {
		i := i
		feeds[i] = queueing.NewSourceFeeder(eng, srcs[i], func(req workload.Request) {
			routed[i]++
			cores[i].Enqueue(req)
		})
		if _, aware := srcs[i].(workload.CompletionAware); aware {
			cores[i].SetHooks(queueing.Hooks{
				Completion: func(comp queueing.Completion) { feeds[i].NotifyCompletion(comp.Done) },
			})
		}
	}
	for _, f := range feeds {
		f.Start()
	}
	for i, c := range cores {
		f := feeds[i]
		c.StartTicks(func() bool { return f.Remaining() > 0 })
	}
	eng.RunUntilOrDrain(cfg.Core.Deadline)
	return finalize(eng, cores, "percore", routed, capped), nil
}
