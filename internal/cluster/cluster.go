// Package cluster simulates a multi-core server on one shared
// discrete-event engine: N instances of the single-core run loop
// (queueing.Core), each under its own frequency policy, behind a pluggable
// request dispatcher. It is the substrate for the paper's 6-core CMP
// evaluated as a whole server rather than by per-core extrapolation, and
// scales to any core count.
//
// Determinism: the engine fires equal-timestamp events in scheduling
// order, every dispatcher is deterministic given its construction
// parameters (Run resets it before replaying), and each core's policy is
// built fresh by the config's NewPolicy factory — so two runs of the same
// trace under the same config produce identical Results.
package cluster

import (
	"fmt"

	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

// Config parameterizes a simulated multi-core server.
type Config struct {
	// Cores is the number of cores (paper CMP: 6).
	Cores int
	// Dispatcher routes arriving requests (default: round-robin).
	Dispatcher Dispatcher
	// Core parameterizes every core (grid, power model, DVFS latency...).
	Core queueing.Config
	// NewPolicy builds the frequency policy for core i. Policies are
	// stateful (Rubik profiles online), so every core needs a fresh one.
	NewPolicy func(core int) (queueing.Policy, error)
}

// DefaultConfig returns a 6-core server with round-robin dispatch and
// fixed-nominal cores, matching the paper's CMP (Table 2).
func DefaultConfig() Config {
	return Config{
		Cores:      6,
		Dispatcher: NewRoundRobin(),
		Core:       queueing.DefaultConfig(),
		NewPolicy: func(int) (queueing.Policy, error) {
			return queueing.FixedPolicy{MHz: queueing.DefaultConfig().InitialMHz}, nil
		},
	}
}

// Result is the outcome of simulating one trace on a cluster.
type Result struct {
	// Dispatcher is the dispatch discipline's name.
	Dispatcher string
	// PerCore holds each core's single-core Result (completions in that
	// core's service order).
	PerCore []queueing.Result
	// Routed[i] counts the requests dispatched to core i.
	Routed []int
	// EndTime is when the last event fired (all cores share the engine).
	EndTime sim.Time
}

// Completions pools all cores' completions ordered by completion time
// (ties by core index), i.e. the order a shared front-end would observe.
// Per-core slices are already sorted, so this is an O(total * log cores)
// k-way min-heap merge keyed by (next completion time, core index) — the
// tie-break keeps the ordering identical to the linear-scan merge it
// replaced, which always took the lowest-indexed core among equals.
func (r Result) Completions() []queueing.Completion {
	var total int
	for _, c := range r.PerCore {
		total += len(c.Completions)
	}
	out := make([]queueing.Completion, 0, total)
	idx := make([]int, len(r.PerCore))
	// heap holds core indices; the key of core i is
	// (PerCore[i].Completions[idx[i]].Done, i).
	heap := make([]int, 0, len(r.PerCore))
	less := func(a, b int) bool {
		ca := r.PerCore[a].Completions[idx[a]]
		cb := r.PerCore[b].Completions[idx[b]]
		return ca.Done < cb.Done || (ca.Done == cb.Done && a < b)
	}
	siftDown := func(i int) {
		for {
			left, right := 2*i+1, 2*i+2
			smallest := i
			if left < len(heap) && less(heap[left], heap[smallest]) {
				smallest = left
			}
			if right < len(heap) && less(heap[right], heap[smallest]) {
				smallest = right
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}
	for i, c := range r.PerCore {
		if len(c.Completions) > 0 {
			heap = append(heap, i)
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(heap) > 0 {
		core := heap[0]
		out = append(out, r.PerCore[core].Completions[idx[core]])
		idx[core]++
		if idx[core] >= len(r.PerCore[core].Completions) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
	}
	return out
}

// TailNs pools post-warmup responses across cores and returns the
// q-quantile (warmup is trimmed per core, as in the paper's steady-state
// methodology).
func (r Result) TailNs(q, warmupFrac float64) float64 {
	var all []float64
	for _, c := range r.PerCore {
		all = append(all, c.Responses(warmupFrac)...)
	}
	return stats.Percentile(all, q)
}

// ActiveEnergyJ sums active core energy across cores.
func (r Result) ActiveEnergyJ() float64 {
	var e float64
	for _, c := range r.PerCore {
		e += c.ActiveEnergyJ
	}
	return e
}

// TotalEnergyJ sums active plus idle energy across cores.
func (r Result) TotalEnergyJ() float64 {
	var e float64
	for _, c := range r.PerCore {
		e += c.ActiveEnergyJ + c.IdleEnergyJ
	}
	return e
}

// EnergyPerRequestJ is pooled active energy per completed request.
func (r Result) EnergyPerRequestJ() float64 {
	var n int
	for _, c := range r.PerCore {
		n += len(c.Completions)
	}
	if n == 0 {
		return 0
	}
	return r.ActiveEnergyJ() / float64(n)
}

// MeanBusyCores is the average number of simultaneously busy cores (the
// uncore activity driver in the system power model).
func (r Result) MeanBusyCores() float64 {
	if r.EndTime == 0 {
		return 0
	}
	var busy float64
	for _, c := range r.PerCore {
		busy += float64(c.ActiveNs)
	}
	return busy / float64(r.EndTime)
}

// Run simulates the trace on a cluster: one shared engine, Cores cores
// each under a fresh policy, with the dispatcher routing every arrival.
// The dispatcher sees exact queue state: all cores are accrued to the
// arrival instant before it picks.
func Run(tr workload.Trace, cfg Config) (Result, error) {
	if cfg.Cores <= 0 {
		return Result{}, fmt.Errorf("cluster: need at least 1 core, got %d", cfg.Cores)
	}
	if cfg.NewPolicy == nil {
		return Result{}, fmt.Errorf("cluster: nil NewPolicy factory")
	}
	if cfg.Dispatcher == nil {
		cfg.Dispatcher = NewRoundRobin()
	}
	cfg.Dispatcher.Reset()

	eng := sim.NewEngine()
	if cfg.Core.ExpectedRequests == 0 {
		// Per-core share of the trace, as a capacity hint for completion
		// logs. Dispatch imbalance only costs an amortized regrow.
		cfg.Core.ExpectedRequests = (len(tr.Requests) + cfg.Cores - 1) / cfg.Cores
	}
	cores := make([]*queueing.Core, cfg.Cores)
	for i := range cores {
		p, err := cfg.NewPolicy(i)
		if err != nil {
			return Result{}, fmt.Errorf("cluster: building policy for core %d: %w", i, err)
		}
		c, err := queueing.NewCore(eng, p, cfg.Core)
		if err != nil {
			return Result{}, err
		}
		cores[i] = c
	}

	routed := make([]int, cfg.Cores)
	states := make([]CoreState, cfg.Cores)
	var pickErr error
	var feed *queueing.Feeder
	feed = queueing.NewFeeder(eng, tr.Requests, func(req workload.Request) {
		// O(cores) per arrival: Accrue is O(1) (head progress only) and the
		// queue-length/pending-work counters are maintained incrementally
		// by each Core, so no core's queue is rescanned here.
		for i, c := range cores {
			c.Accrue()
			states[i] = CoreState{
				Index:         i,
				QueueLen:      c.QueueLen(),
				PendingWorkNs: c.PendingWorkNs(),
				CurrentMHz:    c.CurrentMHz(),
			}
		}
		i := cfg.Dispatcher.Pick(req, states)
		if i < 0 || i >= len(cores) {
			// A broken dispatcher must surface, not silently skew results;
			// route to core 0 so the simulation still drains, and fail the
			// run afterwards.
			if pickErr == nil {
				pickErr = fmt.Errorf("cluster: dispatcher %s picked core %d of %d for request %d",
					cfg.Dispatcher.Name(), i, len(cores), req.ID)
			}
			i = 0
		}
		routed[i]++
		cores[i].Enqueue(req)
	})
	feed.Start()
	for _, c := range cores {
		c.StartTicks(func() bool { return feed.Remaining() > 0 })
	}
	eng.Run()
	if pickErr != nil {
		return Result{}, pickErr
	}

	res := Result{
		Dispatcher: cfg.Dispatcher.Name(),
		PerCore:    make([]queueing.Result, cfg.Cores),
		Routed:     routed,
		EndTime:    eng.Now(),
	}
	for i, c := range cores {
		res.PerCore[i] = c.Finalize()
	}
	return res, nil
}
