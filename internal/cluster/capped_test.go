package cluster

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"rubik/internal/capping"
	rubikcore "rubik/internal/core"
	"rubik/internal/queueing"
	"rubik/internal/workload"
)

// rubikClusterConfig returns a capped-or-not cluster config with a fresh
// Rubik controller per core, the shape every capped test exercises
// (Rubik is the SlackReporter the greedy-slack strategy feeds on).
func rubikClusterConfig(t testing.TB, cores int, boundNs float64) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cores = cores
	cfg.Dispatcher = NewJSQ()
	cfg.NewPolicy = func(int) (queueing.Policy, error) {
		rcfg := rubikcore.DefaultConfig(boundNs)
		rcfg.TransitionLatency = cfg.Core.TransitionLatency
		return rubikcore.New(rcfg)
	}
	return cfg
}

// TestInfiniteCapByteIdentical is the no-cap transparency guarantee
// across every scenario shape in the registry: running with CapW = +Inf
// must produce cluster Results deeply identical to the uncapped run —
// same completions, same energies, same end times — for every allocator.
// Only the Capping accounting field may differ (nil vs. populated), and
// the populated accounting must show zero throttling.
func TestInfiniteCapByteIdentical(t *testing.T) {
	app := workload.Masstree()
	const bound = 500_000.0
	const n = 3000
	for _, sc := range workload.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			mk := func() workload.Source { return sc.New(app, 0.5*4, n, 9) }
			base := rubikClusterConfig(t, 4, bound)
			base.Core.Deadline = 30 * 1_000_000_000 // bound unbounded shapes
			want, err := RunSource(mk(), base)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range capping.Names() {
				alloc, err := capping.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := rubikClusterConfig(t, 4, bound)
				cfg.Core.Deadline = base.Core.Deadline
				cfg.CapW = math.Inf(1)
				cfg.Allocator = alloc
				got, err := RunSource(mk(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Capping) != 1 {
					t.Fatalf("%s: capped run reported %d domains, want 1", name, len(got.Capping))
				}
				for _, d := range got.Capping {
					if d.ThrottleEvents != 0 || d.CapExceededNs != 0 {
						t.Errorf("%s: infinite cap throttled: %+v", name, d)
					}
				}
				got.Capping = nil
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: CapW=+Inf diverged from the uncapped run", name)
				}
			}
		})
	}
}

// powerProbe wraps an allocator to record the granted power sum of every
// allocation round, so tests can assert the budget at each decision point
// of a real cluster run rather than only in allocator unit tests.
type powerProbe struct {
	inner capping.Allocator
	sums  *[]float64
}

func (p powerProbe) Name() string { return p.inner.Name() }

func (p powerProbe) Allocate(d *capping.Domain, demands []capping.Demand, grants []int) {
	p.inner.Allocate(d, demands, grants)
	*p.sums = append(*p.sums, d.PowerOf(grants))
}

// TestBindingCapHoldsBudget runs a binding cap end to end and asserts the
// invariant the subsystem exists for: at every allocation round of the
// whole simulation, the granted power sum stays within the cap, the
// accounting sees the same peak, and the cap is actually binding (some
// rounds throttle).
func TestBindingCapHoldsBudget(t *testing.T) {
	app := workload.Masstree()
	const capW = 14.0
	tr := workload.GenerateAtLoad(app, 0.5*4, 4000, 17)
	for _, name := range capping.Names() {
		alloc, err := capping.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var sums []float64
		cfg := rubikClusterConfig(t, 4, 500_000)
		cfg.CapW = capW
		cfg.Allocator = powerProbe{inner: alloc, sums: &sums}
		res, err := Run(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Served() != 4000 {
			t.Fatalf("%s: served %d of 4000", name, res.Served())
		}
		if len(sums) == 0 {
			t.Fatalf("%s: no allocation rounds ran", name)
		}
		peak := 0.0
		for i, s := range sums {
			if s > capW*(1+1e-9) {
				t.Fatalf("%s: round %d granted %.9f W over the %.1f W cap", name, i, s, capW)
			}
			if s > peak {
				peak = s
			}
		}
		d := res.Capping[0]
		if d.Allocator != name {
			t.Errorf("%s: stats report allocator %q", name, d.Allocator)
		}
		if d.Rounds != len(sums) {
			t.Errorf("%s: stats counted %d rounds, probe saw %d", name, d.Rounds, len(sums))
		}
		if math.Abs(d.PeakPowerW-peak) > 1e-9 {
			t.Errorf("%s: stats peak %.9f W, probe peak %.9f W", name, d.PeakPowerW, peak)
		}
		if d.ThrottleEvents == 0 {
			t.Errorf("%s: a %.0f W cap on 4 Rubik cores at 50%% load never throttled", name, capW)
		}
		if d.CapExceededNs != 0 {
			t.Errorf("%s: feasible cap accounted %d ns exceeded", name, d.CapExceededNs)
		}
		if d.AvgPowerW <= 0 || d.AvgPowerW > capW*(1+1e-9) {
			t.Errorf("%s: avg granted power %.3f W outside (0, cap]", name, d.AvgPowerW)
		}
	}
}

// TestCappedRunDeterministic pins that two capped runs of the same seed
// and configuration are deeply identical, including the accounting.
func TestCappedRunDeterministic(t *testing.T) {
	app := workload.Masstree()
	mk := func() (Result, error) {
		cfg := rubikClusterConfig(t, 4, 500_000)
		cfg.CapW = 16
		cfg.Allocator = capping.GreedySlack{}
		return RunSource(workload.NewLoadSource(app, 0.5*4, 3000, 23), cfg)
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("capped cluster run not deterministic")
	}
}

// TestInfeasibleCapAccounted pins the infeasible regime: a cap below the
// all-minimum floor cannot be honored, every core pins to the minimum
// step, and the whole run is accounted as cap-exceeded.
func TestInfeasibleCapAccounted(t *testing.T) {
	app := workload.Masstree()
	tr := workload.GenerateAtLoad(app, 0.3*2, 400, 5)
	cfg := rubikClusterConfig(t, 2, 500_000)
	cfg.CapW = 1 // 2 cores at 800 MHz need ~2.1 W
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Capping[0]
	if d.CapExceededNs != res.EndTime {
		t.Errorf("infeasible cap: exceeded %d ns of %d ns total", d.CapExceededNs, res.EndTime)
	}
	for i, c := range res.PerCore {
		for j, frac := range c.Residency {
			if j > 0 && frac > 0 {
				t.Fatalf("core %d ran %f of its active time above the minimum step under an infeasible cap", i, frac)
				break
			}
		}
	}
}

// TestPowerDomainsValidation exercises the wiring error paths.
func TestPowerDomainsValidation(t *testing.T) {
	app := workload.Masstree()
	tr := workload.GenerateAtLoad(app, 0.5, 50, 1)
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Cores = 4
		return cfg
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"domains without cap", func(c *Config) { c.PowerDomains = [][]int{{0, 1}} }},
		{"negative cap", func(c *Config) { c.CapW = -3 }},
		{"empty domain", func(c *Config) { c.CapW = 20; c.PowerDomains = [][]int{{}} }},
		{"member out of range", func(c *Config) { c.CapW = 20; c.PowerDomains = [][]int{{0, 7}} }},
		{"duplicate member", func(c *Config) { c.CapW = 20; c.PowerDomains = [][]int{{0, 1}, {1, 2}} }},
	}
	for _, cse := range cases {
		cfg := base()
		cse.mut(&cfg)
		if _, err := Run(tr, cfg); err == nil {
			t.Errorf("%s: accepted", cse.name)
		}
	}

	// Two disjoint sockets plus an uncapped core are valid; each domain is
	// budgeted and accounted separately.
	cfg := base()
	cfg.Cores = 5
	cfg.CapW = 8
	cfg.PowerDomains = [][]int{{0, 1}, {2, 3}}
	res, err := Run(workload.GenerateAtLoad(app, 0.5*5, 2000, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Capping) != 2 {
		t.Fatalf("got %d domains, want 2", len(res.Capping))
	}
	for i, d := range res.Capping {
		if want := []int{2 * i, 2*i + 1}; !reflect.DeepEqual(d.Cores, want) {
			t.Errorf("domain %d cores %v, want %v", i, d.Cores, want)
		}
	}
}

// TestStreamingCappedClusterConstantMemory is the capped counterpart of
// TestStreamingClusterConstantMemory: a 1M-request diurnal run on a
// capped 4-core cluster with DropCompletions must complete with total
// allocation independent of the request count — the coordinator's
// per-decision path reuses the domain scratch just like the cores reuse
// their rings.
func TestStreamingCappedClusterConstantMemory(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 200_000
	}
	app := workload.Masstree()
	sc, err := workload.ScenarioByName("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rubikClusterConfig(t, 4, 500_000)
	cfg.Core.DropCompletions = true
	cfg.CapW = 16
	cfg.Allocator = capping.Waterfill{}

	src := sc.New(app, 0.5*float64(cfg.Cores), n, 11)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	res, err := RunSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)

	if res.Served() != n {
		t.Fatalf("served %d of %d", res.Served(), n)
	}
	for i, c := range res.PerCore {
		if len(c.Completions) != 0 {
			t.Fatalf("core %d retained %d completions", i, len(c.Completions))
		}
	}
	if tail := res.TailNs(0.95, 0); tail <= 0 {
		t.Fatalf("streamed tail %v", tail)
	}
	if d := res.Capping[0]; d.ThrottleEvents == 0 {
		t.Fatal("16 W cap on 4 Rubik cores never throttled")
	}
	// Setup (engine, cores, domains, histograms, Rubik tables) is
	// fixed-size; everything per request and per allocation round is
	// pooled. Rubik's table builder owns a few MB of FFT scratch, so the
	// guard is 16 MB — at 1M requests that is 16 bytes/request, far below
	// what any per-request log or per-round allocation would cost. (The
	// race detector instruments allocations; the guard only holds
	// uninstrumented.)
	if delta := m1.TotalAlloc - m0.TotalAlloc; !raceEnabled && delta > 16<<20 {
		t.Errorf("capped streaming run allocated %.2f MB total (%.2f B/request) — memory not independent of request count",
			float64(delta)/1e6, float64(delta)/float64(n))
	}
}
