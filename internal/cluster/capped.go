package cluster

import (
	"fmt"

	"rubik/internal/capping"
	"rubik/internal/queueing"
	"rubik/internal/sim"
)

// domainCtl runs one power domain's allocation rounds: it intercepts every
// member policy decision, reconciles the domain's desired frequencies
// through the allocator, actuates sibling grant changes, and keeps the
// time-weighted budget accounting. All slices are sized at construction,
// so a steady-state decision performs zero allocations.
//
// Rounds run when a member's desired grid step changes (the initial round
// runs at t=0 over every member's InitialMHz). A decision that repeats the
// member's previous desired step is O(1): demands are unchanged, so the
// previous grants still satisfy the budget. The deciding member's slack
// estimate is refreshed when its round runs; siblings keep the estimate
// from their own last change — slack steers *which* core donates, never
// whether the budget holds, so staleness cannot break the cap.
type domainCtl struct {
	eng   *sim.Engine
	dom   *capping.Domain
	alloc capping.Allocator

	cores   []*queueing.Core // member cores, attached after buildCores
	idx     []int            // member -> cluster core index
	demands []capping.Demand
	grants  []int
	granted []int // last actuated grant per member

	stats    capping.DomainStats
	lastT    sim.Time
	curSumW  float64
	powerWNs float64 // time integral of granted power (W * ns)
	exceed   bool

	// Epoch demand integral (hierarchical fleets): time-weighted Σ desired
	// power since the last barrier, accounted in fields of its own so
	// reporting never perturbs the granted-power spans above — a
	// hierarchical run whose caps never change stays bit-identical to the
	// flat run, DomainStats included.
	demEpochT sim.Time
	demLastT  sim.Time
	demWNs    float64 // time integral of desired power (W * ns)
	curDesW   float64
}

// decide is the per-decision entry point: member's policy asked for
// desiredMHz. It returns the member's granted frequency in MHz (which the
// member core actuates itself via the policy return path) and actuates
// any sibling grant changes directly. The slack reporter is only
// consulted when a full allocation round runs — predicting slack walks
// the member's queue, and a decision that repeats the previous desired
// step resolves O(1) without it.
func (ctl *domainCtl) decide(member int, desiredMHz int, slack queueing.SlackReporter, v queueing.View) int {
	grid := ctl.dom.Grid()
	dIdx := grid.Index(desiredMHz)
	if dIdx < 0 {
		dIdx = grid.Index(grid.ClampUp(float64(desiredMHz)))
	}
	if dIdx == ctl.demands[member].DesiredIdx {
		// Demand unchanged: the previous allocation still holds.
		return grid.Step(ctl.granted[member])
	}
	ctl.accrueDemand()
	ctl.curDesW += ctl.dom.PowerAt(dIdx) - ctl.dom.PowerAt(ctl.demands[member].DesiredIdx)
	ctl.demands[member].DesiredIdx = dIdx
	if slack != nil {
		ctl.demands[member].SlackNs = slack.PredictedSlackNs(v)
	}
	ctl.reallocate()
	return grid.Step(ctl.granted[member])
}

// reallocate runs one allocation round and actuates every changed grant,
// the deciding member's included — its policy return path then applies
// the same frequency again, which is a no-op (ApplyFreq is idempotent
// for an unchanged target, and switchPending guards the latency path).
func (ctl *domainCtl) reallocate() {
	ctl.accrueStats()
	ctl.alloc.Allocate(ctl.dom, ctl.demands, ctl.grants)
	ctl.stats.Rounds++
	throttled := false
	grid := ctl.dom.Grid()
	for m, g := range ctl.grants {
		if g < ctl.demands[m].DesiredIdx {
			throttled = true
		}
		if g == ctl.granted[m] {
			continue
		}
		ctl.granted[m] = g
		if c := ctl.cores[m]; c != nil {
			// Bring the sibling's progress up to now before retargeting:
			// ApplyFreq with zero transition latency switches immediately,
			// and accrued spans must never straddle a frequency change.
			c.Accrue()
			c.ApplyFreq(grid.Step(g))
		}
	}
	if throttled {
		ctl.stats.ThrottleEvents++
	}
	sum := ctl.dom.PowerOf(ctl.grants)
	ctl.curSumW = sum
	ctl.exceed = sum > ctl.dom.CapW()
	if sum > ctl.stats.PeakPowerW {
		ctl.stats.PeakPowerW = sum
	}
}

// accrueStats closes the accounting span ending now.
func (ctl *domainCtl) accrueStats() {
	now := ctl.eng.Now()
	dt := now - ctl.lastT
	if dt <= 0 {
		return
	}
	ctl.lastT = now
	ctl.powerWNs += ctl.curSumW * float64(dt)
	if ctl.exceed {
		ctl.stats.CapExceededNs += dt
	}
}

// accrueDemand closes the desired-power span ending now.
func (ctl *domainCtl) accrueDemand() {
	now := ctl.eng.Now()
	if dt := now - ctl.demLastT; dt > 0 {
		ctl.demWNs += ctl.curDesW * float64(dt)
		ctl.demLastT = now
	}
}

// epochReport closes the demand window ending at the barrier time upTo
// and returns the window's time-weighted mean desired power — the
// socket's demand signal to the budget hierarchy. upTo may be past the
// last fired event (the barrier is a wall, not an event); the next window
// starts there.
func (ctl *domainCtl) epochReport(upTo sim.Time) float64 {
	if dt := upTo - ctl.demLastT; dt > 0 {
		ctl.demWNs += ctl.curDesW * float64(dt)
		ctl.demLastT = upTo
	}
	mean := ctl.curDesW
	if span := upTo - ctl.demEpochT; span > 0 {
		mean = ctl.demWNs / float64(span)
	}
	ctl.demWNs = 0
	ctl.demEpochT = upTo
	return mean
}

// applyCap retargets the domain budget and immediately re-allocates under
// it. It runs as an engine event at an epoch boundary, so the accounting
// spans split exactly there. An unchanged cap is a strict no-op — the
// degenerate hierarchy (every barrier re-deriving the flat cap) must not
// perturb the run. The hierarchy only grants positive watts, so a
// non-positive cap cannot reach SetCapW here.
func (ctl *domainCtl) applyCap(w float64) {
	if w == ctl.dom.CapW() {
		return
	}
	if err := ctl.dom.SetCapW(w); err != nil {
		return
	}
	ctl.stats.CapW = w
	ctl.reallocate()
}

// finalize closes the trailing span and returns the domain stats.
func (ctl *domainCtl) finalize() capping.DomainStats {
	ctl.accrueStats()
	if end := ctl.eng.Now(); end > 0 {
		ctl.stats.AvgPowerW = ctl.powerWNs / float64(end)
	}
	return ctl.stats
}

// cappedPolicy filters one member core's policy through its domain
// controller. It forwards Name (results stay labeled by the inner policy),
// ticks and completion observations, and is fully transparent when the cap
// never binds: grants equal desires, no sibling is touched, and the
// decision sequence is identical to the unwrapped run.
type cappedPolicy struct {
	inner  queueing.Policy
	ticker queueing.Ticker             // inner as Ticker, nil if not one
	obs    queueing.CompletionObserver // inner as observer, nil if not one
	slack  queueing.SlackReporter      // inner as reporter, nil if not one
	ctl    *domainCtl
	member int
}

func newCappedPolicy(inner queueing.Policy, ctl *domainCtl, member int) *cappedPolicy {
	p := &cappedPolicy{inner: inner, ctl: ctl, member: member}
	p.ticker, _ = inner.(queueing.Ticker)
	p.obs, _ = inner.(queueing.CompletionObserver)
	p.slack, _ = inner.(queueing.SlackReporter)
	return p
}

// Name implements queueing.Policy.
func (p *cappedPolicy) Name() string { return p.inner.Name() }

// OnEvent implements queueing.Policy.
func (p *cappedPolicy) OnEvent(v queueing.View) int {
	return p.filter(p.inner.OnEvent(v), v)
}

// TickEvery implements queueing.Ticker; 0 (no ticking) when the inner
// policy is not a Ticker, which Core.StartTicks treats as absent.
func (p *cappedPolicy) TickEvery() sim.Time {
	if p.ticker == nil {
		return 0
	}
	return p.ticker.TickEvery()
}

// OnTick implements queueing.Ticker.
func (p *cappedPolicy) OnTick(v queueing.View) int {
	if p.ticker == nil {
		return 0
	}
	return p.filter(p.ticker.OnTick(v), v)
}

// ObserveCompletion implements queueing.CompletionObserver.
func (p *cappedPolicy) ObserveCompletion(c queueing.Completion) {
	if p.obs != nil {
		p.obs.ObserveCompletion(c)
	}
}

// filter routes a desired frequency through the domain controller. A
// non-positive desire means "keep the current setting" and passes through
// untouched, exactly as the core itself treats it.
func (p *cappedPolicy) filter(desired int, v queueing.View) int {
	if desired <= 0 {
		return desired
	}
	return p.ctl.decide(p.member, desired, p.slack, v)
}

// cappedSetup carries the capping wiring between config validation (before
// the cores exist) and attachment (after).
type cappedSetup struct {
	ctls []*domainCtl
}

// wireCapping validates the capping configuration and, when a cap is set,
// wraps cfg.NewPolicy so every member core's decisions flow through its
// domain controller. It returns nil when CapW is 0 (unset): the config is
// untouched and the run is byte-identical to an uncapped cluster. Call
// attach with the built cores afterwards.
//
// Fleet runs wire capping through this exact path, once per socket: a
// FleetConfig cap makes each socket one domain spanning its cores, with
// its own Domain (and allocator scratch) on its own engine — so capped
// fleets stay shared-nothing across shards, and a capped socket's
// accounting is identical to the same socket run standalone.
func wireCapping(eng *sim.Engine, cfg *Config) (*cappedSetup, error) {
	if cfg.CapW == 0 {
		if len(cfg.PowerDomains) > 0 {
			return nil, fmt.Errorf("cluster: PowerDomains set without CapW")
		}
		return nil, nil
	}
	if cfg.CapW < 0 {
		return nil, fmt.Errorf("cluster: negative power cap %v W", cfg.CapW)
	}
	domains := cfg.PowerDomains
	if len(domains) == 0 {
		// Default: one domain (socket) spanning every core.
		all := make([]int, cfg.Cores)
		for i := range all {
			all[i] = i
		}
		domains = [][]int{all}
	}
	alloc := cfg.Allocator
	if alloc == nil {
		alloc = capping.Waterfill{}
	}
	seen := make([]bool, cfg.Cores)
	setup := &cappedSetup{}
	memberOf := make(map[int]*cappedMembership, cfg.Cores)
	for di, members := range domains {
		if len(members) == 0 {
			return nil, fmt.Errorf("cluster: power domain %d is empty", di)
		}
		dom, err := capping.NewDomain(cfg.Core.Grid, cfg.Core.Power, cfg.CapW, len(members))
		if err != nil {
			return nil, err
		}
		ctl := &domainCtl{
			eng:     eng,
			dom:     dom,
			alloc:   alloc,
			cores:   make([]*queueing.Core, len(members)),
			idx:     make([]int, len(members)),
			demands: make([]capping.Demand, len(members)),
			grants:  make([]int, len(members)),
			granted: make([]int, len(members)),
		}
		ctl.stats = capping.DomainStats{
			Cores:     append([]int(nil), members...),
			CapW:      cfg.CapW,
			Allocator: alloc.Name(),
		}
		for m, core := range members {
			if core < 0 || core >= cfg.Cores {
				return nil, fmt.Errorf("cluster: power domain %d member %d out of range [0,%d)", di, core, cfg.Cores)
			}
			if seen[core] {
				return nil, fmt.Errorf("cluster: core %d appears in more than one power domain", core)
			}
			seen[core] = true
			ctl.idx[m] = core
			memberOf[core] = &cappedMembership{ctl: ctl, member: m}
		}
		setup.ctls = append(setup.ctls, ctl)
	}

	inner := cfg.NewPolicy
	cfg.NewPolicy = func(core int) (queueing.Policy, error) {
		p, err := inner(core)
		if err != nil {
			return nil, err
		}
		ms, ok := memberOf[core]
		if !ok {
			return p, nil // outside every domain: uncapped
		}
		return newCappedPolicy(p, ms.ctl, ms.member), nil
	}
	return setup, nil
}

type cappedMembership struct {
	ctl    *domainCtl
	member int
}

// attach hands each domain its member cores and runs the initial
// allocation round at t=0 over the cores' initial frequencies, so the cap
// holds from the first instant (with a binding cap, cores start throttled
// rather than briefly overshooting at InitialMHz).
func (s *cappedSetup) attach(cores []*queueing.Core) {
	if s == nil {
		return
	}
	for _, ctl := range s.ctls {
		grid := ctl.dom.Grid()
		for m, core := range ctl.idx {
			c := cores[core]
			ctl.cores[m] = c
			dIdx := grid.Index(c.CurrentMHz())
			if dIdx < 0 {
				// Off-grid initial frequency: clamp up exactly as decide
				// does, instead of letting -1 flow into the power curve.
				dIdx = grid.Index(grid.ClampUp(float64(c.CurrentMHz())))
			}
			ctl.demands[m] = capping.Demand{DesiredIdx: dIdx}
			ctl.granted[m] = dIdx
			ctl.curDesW += ctl.dom.PowerAt(dIdx)
		}
		ctl.reallocate()
	}
}

// epochDemandW closes every domain's demand window at the barrier time
// upTo and returns the socket's total time-weighted mean desired power —
// the demand signal a hierarchical fleet feeds the budget tree.
func (s *cappedSetup) epochDemandW(upTo sim.Time) float64 {
	var sum float64
	for _, ctl := range s.ctls {
		sum += ctl.epochReport(upTo)
	}
	return sum
}

// domainStats finalizes every domain's accounting (nil-safe; nil when the
// run was uncapped).
func (s *cappedSetup) domainStats() []capping.DomainStats {
	if s == nil {
		return nil
	}
	out := make([]capping.DomainStats, len(s.ctls))
	for i, ctl := range s.ctls {
		out[i] = ctl.finalize()
	}
	return out
}
