package cluster

import (
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"rubik/internal/queueing"
	"rubik/internal/workload"
)

// fleetConfig builds the test fleet: per-socket scenario sources with
// ShardSeed-derived seeds, a fresh dispatcher per socket, fixed-frequency
// cores (the sharding property is about partitioning, not the policy).
func fleetConfig(t *testing.T, scenario, dispatcher string, sockets, coresPer, nPer int, capW float64, shards int) FleetConfig {
	t.Helper()
	app := workload.Masstree()
	sc, err := workload.ScenarioByName(scenario)
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultConfig()
	return FleetConfig{
		Sockets:        sockets,
		CoresPerSocket: coresPer,
		Shards:         shards,
		NewSource: func(s int) workload.Source {
			return sc.New(app, 0.5*float64(coresPer), nPer, workload.ShardSeed(7, s))
		},
		NewDispatcher: func(s int) Dispatcher {
			d, err := DispatcherByName(dispatcher, workload.ShardSeed(7, s))
			if err != nil {
				panic(err)
			}
			return d
		},
		Core: base.Core,
		NewPolicy: func(int, int) (queueing.Policy, error) {
			return queueing.FixedPolicy{MHz: base.Core.InitialMHz}, nil
		},
		CapW: capW,
	}
}

// TestFleetShardInvariance is the tentpole property: for every dispatcher
// x scenario shape x capped/uncapped cell, running the fleet on 1 shard,
// 2 shards and one shard per socket produces deeply equal per-socket
// results. Shards are shared-nothing, so the partition is pure scheduling
// — any divergence here means state leaked across sockets.
func TestFleetShardInvariance(t *testing.T) {
	const sockets, coresPer, nPer = 3, 2, 500
	scenarios := []string{"bursty", "heavytail", "closedloop"}
	dispatchers := []string{"random", "roundrobin", "jsq", "leastwork"}
	caps := []float64{0, 9} // uncapped; binding 2-core budget
	for _, sc := range scenarios {
		for _, d := range dispatchers {
			for _, capW := range caps {
				name := sc + "/" + d
				if capW > 0 {
					name += "/capped"
				}
				t.Run(name, func(t *testing.T) {
					want, err := RunFleet(fleetConfig(t, sc, d, sockets, coresPer, nPer, capW, 1))
					if err != nil {
						t.Fatal(err)
					}
					if want.Shards != 1 {
						t.Fatalf("shard count %d, want 1", want.Shards)
					}
					for _, shards := range []int{2, sockets} {
						got, err := RunFleet(fleetConfig(t, sc, d, sockets, coresPer, nPer, capW, shards))
						if err != nil {
							t.Fatal(err)
						}
						if got.Shards != shards {
							t.Fatalf("shard count %d, want %d", got.Shards, shards)
						}
						if !reflect.DeepEqual(got.Sockets, want.Sockets) {
							t.Fatalf("shard=%d fleet result diverged from shard=1", shards)
						}
					}
				})
			}
		}
	}
}

// TestFleetSocketMatchesStandalone pins fleet semantics to the
// golden-pinned single-engine cluster path: every socket of a fleet run
// is deeply equal to running that socket's source and config through
// RunSource standalone. Sharding adds no simulation semantics of its own.
func TestFleetSocketMatchesStandalone(t *testing.T) {
	const sockets, coresPer, nPer = 3, 2, 800
	cfg := fleetConfig(t, "bursty", "jsq", sockets, coresPer, nPer, 0, 0)
	fleet, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Sockets) != sockets {
		t.Fatalf("got %d socket results, want %d", len(fleet.Sockets), sockets)
	}
	maxShards := runtime.GOMAXPROCS(0)
	if maxShards > sockets {
		maxShards = sockets
	}
	if fleet.Shards != maxShards {
		t.Fatalf("auto shard count %d, want GOMAXPROCS clamped to %d", fleet.Shards, maxShards)
	}
	for s := 0; s < sockets; s++ {
		solo, err := RunSource(cfg.NewSource(s), cfg.socketConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fleet.Sockets[s], solo) {
			t.Fatalf("fleet socket %d diverged from standalone RunSource", s)
		}
	}
	// Distinct derived seeds: sockets must not replay each other's stream.
	if reflect.DeepEqual(fleet.Sockets[0].PerCore, fleet.Sockets[1].PerCore) {
		t.Fatal("sockets 0 and 1 served identical streams — seed derivation collapsed")
	}
}

// TestFleetIterCompletions checks the streaming merge: IterCompletions
// yields exactly Completions() in order, the order is nondecreasing in
// Done with ties broken by global core index, and yield=false stops the
// merge early.
func TestFleetIterCompletions(t *testing.T) {
	fleet, err := RunFleet(fleetConfig(t, "bursty", "roundrobin", 3, 2, 400, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := fleet.Completions()
	if len(want) != fleet.Served() {
		t.Fatalf("merged %d completions, served %d", len(want), fleet.Served())
	}
	var got []queueing.Completion
	fleet.IterCompletions(func(c queueing.Completion) bool {
		got = append(got, c)
		return true
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("IterCompletions stream differs from materialized Completions")
	}
	for i := 1; i < len(got); i++ {
		if got[i].Done < got[i-1].Done {
			t.Fatalf("merge out of order at %d: %v after %v", i, got[i].Done, got[i-1].Done)
		}
	}
	stopped := 0
	fleet.IterCompletions(func(queueing.Completion) bool {
		stopped++
		return stopped < 10
	})
	if stopped != 10 {
		t.Fatalf("early stop yielded %d completions, want 10", stopped)
	}
}

// TestFleetCapTransparent checks the capping boundary fleet-wide: an
// unreachable cap leaves every socket's cores deeply equal to the
// uncapped fleet (the wiring is installed but never binds), while a
// binding cap throttles and accounts in every socket.
func TestFleetCapTransparent(t *testing.T) {
	uncapped, err := RunFleet(fleetConfig(t, "bursty", "jsq", 2, 2, 500, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	loose, err := RunFleet(fleetConfig(t, "bursty", "jsq", 2, 2, 500, math.Inf(1), 1))
	if err != nil {
		t.Fatal(err)
	}
	for s := range loose.Sockets {
		if !reflect.DeepEqual(loose.Sockets[s].PerCore, uncapped.Sockets[s].PerCore) {
			t.Fatalf("socket %d: non-binding cap perturbed the run", s)
		}
		if len(loose.Sockets[s].Capping) != 1 {
			t.Fatalf("socket %d: %d capping domains, want 1", s, len(loose.Sockets[s].Capping))
		}
	}
	tight, err := RunFleet(fleetConfig(t, "bursty", "jsq", 2, 2, 500, 9, 1))
	if err != nil {
		t.Fatal(err)
	}
	doms := tight.Capping()
	if len(doms) != 2 {
		t.Fatalf("fleet capping reported %d domains, want 2", len(doms))
	}
	for s, d := range doms {
		if d.PeakPowerW > 9+1e-9 {
			t.Fatalf("socket %d granted %.2f W over the 9 W cap", s, d.PeakPowerW)
		}
		if d.Rounds == 0 {
			t.Fatalf("socket %d: no allocation rounds under a binding cap", s)
		}
	}
}

// TestFleetValidation exercises the config errors, including that a
// failing socket reports deterministically (lowest socket index wins no
// matter which shard hits its error first).
func TestFleetValidation(t *testing.T) {
	good := fleetConfig(t, "bursty", "jsq", 2, 2, 100, 0, 1)

	bad := good
	bad.Sockets = 0
	if _, err := RunFleet(bad); err == nil {
		t.Fatal("0 sockets accepted")
	}
	bad = good
	bad.CoresPerSocket = 0
	if _, err := RunFleet(bad); err == nil {
		t.Fatal("0 cores per socket accepted")
	}
	bad = good
	bad.NewSource = nil
	if _, err := RunFleet(bad); err == nil {
		t.Fatal("nil NewSource accepted")
	}
	bad = good
	bad.Sockets = 4
	bad.Shards = 4
	inner := bad.NewSource
	bad.NewSource = func(s int) workload.Source {
		if s >= 1 {
			return nil // sockets 1..3 all fail, on different shards
		}
		return inner(s)
	}
	_, err := RunFleet(bad)
	if err == nil || !strings.Contains(err.Error(), "socket 1") {
		t.Fatalf("want deterministic lowest-socket error, got %v", err)
	}
}

// TestStreamingFleetConstantMemory is the fleet acceptance run, mirroring
// TestStreamingClusterConstantMemory: a multi-socket diurnal fleet with
// streamed completion logs finishes with total allocation independent of
// the request count — per-socket engines, cores and histograms are the
// only footprint, and the pooled tail comes from the merged histograms.
func TestStreamingFleetConstantMemory(t *testing.T) {
	nPer := 250_000
	if testing.Short() {
		nPer = 40_000
	}
	const sockets, coresPer = 8, 4
	cfg := fleetConfig(t, "diurnal", "jsq", sockets, coresPer, nPer, 0, 0)
	cfg.Core.DropCompletions = true

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)

	if res.Served() != sockets*nPer {
		t.Fatalf("served %d of %d", res.Served(), sockets*nPer)
	}
	for s, sr := range res.Sockets {
		for i, c := range sr.PerCore {
			if len(c.Completions) != 0 {
				t.Fatalf("socket %d core %d retained %d completions", s, i, len(c.Completions))
			}
		}
	}
	if tail := res.TailNs(0.95, 0); tail <= 0 {
		t.Fatalf("fleet streamed tail %v", tail)
	}
	// Setup is O(sockets x cores): engines, cores, response histograms.
	// 1 MB per socket covers that comfortably while staying far below
	// what any per-request retention would cost at 2M requests. (The race
	// detector instruments allocations; the byte guard only holds
	// uninstrumented.)
	if delta := m1.TotalAlloc - m0.TotalAlloc; !raceEnabled && delta > sockets<<20 {
		t.Errorf("fleet run allocated %.2f MB total (%.2f B/request) — memory not independent of request count",
			float64(delta)/1e6, float64(delta)/float64(res.Served()))
	}
}
