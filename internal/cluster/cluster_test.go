package cluster

import (
	"math"
	"reflect"
	"testing"

	rubikcore "rubik/internal/core"
	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

func testTrace(load float64, n int, seed int64) workload.Trace {
	return workload.GenerateAtLoad(workload.Masstree(), load, n, seed)
}

func fixedCfg(cores int, d Dispatcher) Config {
	return Config{
		Cores:      cores,
		Dispatcher: d,
		Core:       queueing.DefaultConfig(),
		NewPolicy: func(int) (queueing.Policy, error) {
			return queueing.FixedPolicy{MHz: cpu.NominalMHz}, nil
		},
	}
}

func rubikCfg(cores int, d Dispatcher, boundNs float64) Config {
	cfg := fixedCfg(cores, d)
	cfg.NewPolicy = func(int) (queueing.Policy, error) {
		return rubikcore.New(rubikcore.DefaultConfig(boundNs))
	}
	return cfg
}

// TestClusterDeterministic is the acceptance check for dispatch
// determinism: two runs of the same trace under the same configuration —
// including the stateful random and round-robin dispatchers, which Run
// resets — produce identical Results, per-core Rubik controllers
// included.
func TestClusterDeterministic(t *testing.T) {
	tr := testTrace(0.5*4, 2000, 11)
	for _, d := range Dispatchers(99) {
		a, err := Run(tr, rubikCfg(4, d, 500_000))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(tr, rubikCfg(4, d, 500_000))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: repeated runs differ", d.Name())
		}
	}
}

// TestSingleCoreClusterMatchesRun anchors the cluster to the extracted
// single-core loop: a 1-core cluster must reproduce queueing.Run exactly
// (every dispatcher degenerates to the identity on one core).
func TestSingleCoreClusterMatchesRun(t *testing.T) {
	tr := testTrace(0.5, 2000, 7)
	want, err := queueing.Run(tr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, queueing.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Dispatchers(3) {
		got, err := Run(tr, fixedCfg(1, d))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.PerCore[0], want) {
			t.Errorf("%s: 1-core cluster differs from queueing.Run", d.Name())
		}
	}
}

func TestJSQTieBreaking(t *testing.T) {
	d := NewJSQ()
	req := workload.Request{}
	// All queues equal: the lowest index must win.
	equal := []CoreState{{Index: 0, QueueLen: 2}, {Index: 1, QueueLen: 2}, {Index: 2, QueueLen: 2}}
	if i := d.Pick(req, equal); i != 0 {
		t.Errorf("all-equal tie broke to %d, want 0", i)
	}
	// A strict minimum wins regardless of position.
	min2 := []CoreState{{QueueLen: 3}, {QueueLen: 4}, {QueueLen: 1}, {QueueLen: 3}}
	if i := d.Pick(req, min2); i != 2 {
		t.Errorf("minimum at 2, picked %d", i)
	}
	// Tie between a subset: the lowest-indexed of the tied cores wins, not
	// a later equally-short one.
	tied := []CoreState{{QueueLen: 5}, {QueueLen: 1}, {QueueLen: 1}, {QueueLen: 1}}
	if i := d.Pick(req, tied); i != 1 {
		t.Errorf("tied minimum broke to %d, want 1", i)
	}
	// LeastWork ties break the same way.
	lw := NewLeastWork()
	work := []CoreState{{PendingWorkNs: 100}, {PendingWorkNs: 40}, {PendingWorkNs: 40}}
	if i := lw.Pick(req, work); i != 1 {
		t.Errorf("least-work tie broke to %d, want 1", i)
	}
}

func TestRoundRobinCoverage(t *testing.T) {
	tr := testTrace(0.5*3, 900, 5)
	res, err := Run(tr, fixedCfg(3, NewRoundRobin()))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.Routed {
		if n != 300 {
			t.Errorf("core %d served %d requests, want exactly 300", i, n)
		}
	}
	var total int
	for _, c := range res.PerCore {
		total += len(c.Completions)
	}
	if total != len(tr.Requests) {
		t.Fatalf("completions %d != requests %d", total, len(tr.Requests))
	}
}

// TestClusterBalancesTail checks the queueing-theory basics: at equal
// aggregate load, JSQ's pooled tail is no worse than random dispatch
// (routing-aware beats routing-blind).
func TestClusterBalancesTail(t *testing.T) {
	tr := testTrace(0.6*4, 6000, 21)
	rnd, err := Run(tr, fixedCfg(4, NewRandom(1)))
	if err != nil {
		t.Fatal(err)
	}
	jsq, err := Run(tr, fixedCfg(4, NewJSQ()))
	if err != nil {
		t.Fatal(err)
	}
	if jsq.TailNs(0.95, 0) > rnd.TailNs(0.95, 0) {
		t.Errorf("JSQ tail %.0f ns above random %.0f ns",
			jsq.TailNs(0.95, 0), rnd.TailNs(0.95, 0))
	}
}

// TestClusterRubikHoldsBound runs the paper-shaped configuration — a
// 6-core server with a fresh Rubik controller per core — and checks the
// pooled tail stays near the single-core bound under JSQ dispatch.
func TestClusterRubikHoldsBound(t *testing.T) {
	app := workload.Masstree()
	// Single-core bound: p95 of fixed-nominal at 50% load.
	btr := workload.GenerateAtLoad(app, 0.5, 3000, 1)
	bres, err := queueing.Run(btr, queueing.FixedPolicy{MHz: cpu.NominalMHz}, queueing.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bound := bres.TailNs(0.95, 0)

	tr := workload.GenerateAtLoad(app, 0.5*6, 12000, 2)
	res, err := Run(tr, rubikCfg(6, NewJSQ(), bound))
	if err != nil {
		t.Fatal(err)
	}
	if tail := res.TailNs(0.95, 0.1); tail > bound*1.15 {
		t.Errorf("pooled p95 %.0f ns above bound %.0f ns", tail, bound)
	}
	// Rubik must actually save energy against fixed-nominal on the same
	// cluster.
	fixed, err := Run(tr, fixedCfg(6, NewJSQ()))
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyPerRequestJ() >= fixed.EnergyPerRequestJ() {
		t.Errorf("Rubik %.3g J/req not below fixed %.3g J/req",
			res.EnergyPerRequestJ(), fixed.EnergyPerRequestJ())
	}
}

func TestClusterValidation(t *testing.T) {
	tr := testTrace(0.5, 100, 1)
	if _, err := Run(tr, Config{Cores: 0}); err == nil {
		t.Error("0 cores must error")
	}
	cfg := fixedCfg(2, nil) // nil dispatcher defaults to round-robin
	cfg.NewPolicy = nil
	if _, err := Run(tr, cfg); err == nil {
		t.Error("nil policy factory must error")
	}
	res, err := Run(tr, fixedCfg(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatcher != "roundrobin" {
		t.Errorf("default dispatcher %q, want roundrobin", res.Dispatcher)
	}
}

type badDispatcher struct{}

func (badDispatcher) Name() string                           { return "bad" }
func (badDispatcher) Reset()                                 {}
func (badDispatcher) Pick(workload.Request, []CoreState) int { return 99 }

// TestClusterBadDispatcherErrors pins the contract that an out-of-range
// pick fails the run instead of silently skewing results.
func TestClusterBadDispatcherErrors(t *testing.T) {
	tr := testTrace(0.5, 50, 1)
	if _, err := Run(tr, fixedCfg(2, badDispatcher{})); err == nil {
		t.Fatal("out-of-range dispatcher pick must error")
	}
}

func TestClusterPooledMetrics(t *testing.T) {
	tr := testTrace(0.5*2, 1000, 9)
	res, err := Run(tr, fixedCfg(2, NewRoundRobin()))
	if err != nil {
		t.Fatal(err)
	}
	comps := res.Completions()
	if len(comps) != len(tr.Requests) {
		t.Fatalf("pooled completions %d != %d", len(comps), len(tr.Requests))
	}
	for i := 1; i < len(comps); i++ {
		if comps[i].Done < comps[i-1].Done {
			t.Fatal("pooled completions not sorted by completion time")
		}
	}
	if e := res.EnergyPerRequestJ(); e <= 0 || math.IsNaN(e) {
		t.Errorf("bad energy/request %v", e)
	}
	if b := res.MeanBusyCores(); b <= 0 || b > 2 {
		t.Errorf("mean busy cores %v out of range", b)
	}
}

// TestCompletionsHeapMergeMatchesLinearScan pins the min-heap k-way merge
// to the O(total x cores) linear-scan merge it replaced, including its
// lowest-core-index tie-break, on both synthetic tie-heavy inputs and a
// real cluster result.
func TestCompletionsHeapMergeMatchesLinearScan(t *testing.T) {
	scanMerge := func(r Result) []queueing.Completion {
		var total int
		for _, c := range r.PerCore {
			total += len(c.Completions)
		}
		out := make([]queueing.Completion, 0, total)
		idx := make([]int, len(r.PerCore))
		for len(out) < total {
			best := -1
			for i, c := range r.PerCore {
				if idx[i] >= len(c.Completions) {
					continue
				}
				if best < 0 || c.Completions[idx[i]].Done < r.PerCore[best].Completions[idx[best]].Done {
					best = i
				}
			}
			out = append(out, r.PerCore[best].Completions[idx[best]])
			idx[best]++
		}
		return out
	}
	check := func(name string, r Result) {
		t.Helper()
		got, want := r.Completions(), scanMerge(r)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: heap merge differs from linear scan (%d vs %d completions)",
				name, len(got), len(want))
		}
	}

	// Synthetic: heavy timestamp ties across cores, plus an empty core and
	// one exhausted early.
	mk := func(core int, dones ...int64) queueing.Result {
		var res queueing.Result
		for _, d := range dones {
			res.Completions = append(res.Completions, queueing.Completion{
				ID: core*1000 + len(res.Completions), Done: sim.Time(d),
			})
		}
		return res
	}
	synthetic := Result{PerCore: []queueing.Result{
		mk(0, 1, 5, 5, 9),
		mk(1),
		mk(2, 5, 5, 5),
		mk(3, 0, 5, 12, 12, 12),
	}}
	check("synthetic", synthetic)
	check("empty", Result{PerCore: []queueing.Result{mk(0), mk(1)}})

	real6, err := Run(testTrace(0.5*6, 3000, 21), fixedCfg(6, NewJSQ()))
	if err != nil {
		t.Fatal(err)
	}
	check("6-core JSQ", real6)
}

// TestPackedFFTDecisionEquivalence is the decision-trajectory sweep for
// the packed rebuild pipeline: clusters whose Rubik controllers rebuild
// through the packed path and through the reference complex path must
// produce identical Results — every completion, every per-core tail —
// across application profiles, loads, and dispatchers. The pipelines
// differ at the ulp level inside the convolutions, but the quantile
// bucketing of the tail tables absorbs that noise, so every frequency
// decision (and therefore the whole trajectory) comes out the same.
func TestPackedFFTDecisionEquivalence(t *testing.T) {
	packedCfg := func(cores int, d Dispatcher, boundNs float64, packed bool) Config {
		cfg := fixedCfg(cores, d)
		cfg.NewPolicy = func(int) (queueing.Policy, error) {
			rc := rubikcore.DefaultConfig(boundNs)
			rc.PackedFFT = packed
			return rubikcore.New(rc)
		}
		return cfg
	}
	apps := []workload.LCApp{workload.Masstree(), workload.Xapian(), workload.Moses()}
	for ai, app := range apps {
		for _, load := range []float64{0.3, 0.7} {
			tr := workload.GenerateAtLoad(app, load*4, 1500, 17+int64(ai))
			for _, d := range Dispatchers(5) {
				got, err := Run(tr, packedCfg(4, d, 500_000, true))
				if err != nil {
					t.Fatal(err)
				}
				want, err := Run(tr, packedCfg(4, d, 500_000, false))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s load %.1f: packed and reference trajectories differ",
						app.Name, d.Name(), load)
				}
			}
		}
	}
}
