package cluster

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"rubik/internal/capping"
	rubikcore "rubik/internal/core"
	"rubik/internal/sim"
)

// This file is the hierarchical (nested-budget) fleet path: a rack-level
// allocation round couples sockets, which the shared-nothing shard engine
// deliberately forbids mid-run — so coupling is confined to epoch
// barriers. The run alternates two strictly separated regimes:
//
//	phase    sockets advance independently (work-stealing parallel, each
//	         on its own engine) up to the next multiple of Epoch, firing
//	         only events due by it and never moving a clock past its last
//	         event (sim.Engine.RunEventsUntil);
//	barrier  a single goroutine, in socket order, closes every socket's
//	         demand window, runs one top-down tree re-allocation, and
//	         schedules each changed socket cap as an engine event AT the
//	         barrier time — the first thing the socket's next phase sees.
//
// Determinism/shard-invariance argument (DESIGN.md §13): phases only read
// and advance socket-local state, so the phase outcome is a function of
// (socket inputs, barrier time) regardless of which shard goroutine runs
// it; barriers are sequential and iterate in socket order; hence every
// input to every Reallocate — and so every cap every socket observes — is
// identical at any shard count, and shard=N stays DeepEqual shard=1. With
// a degenerate tree whose every round re-derives the flat cap, applyCap
// no-ops and the whole run is bit-identical to flat per-socket capping.
type hierFleet struct {
	cfg    FleetConfig
	shards int
	h      *capping.Hierarchy
	sims   []*socketSim
	caches []*rubikcore.TableCache
	errs   []error

	caps       []float64 // cap currently applied (or armed) per socket
	demandW    []float64
	drained    []bool
	capChanges int
}

// scheduleCap arms a budget retarget at t on each of the socket's domains
// (hierarchical sockets have exactly one, spanning the socket).
func (s *socketSim) scheduleCap(t sim.Time, w float64) {
	for _, ctl := range s.capped.ctls {
		ctl := ctl
		s.eng.At(t, func() { ctl.applyCap(w) })
	}
}

// forEachSocket runs fn(socket) across the fleet with the same
// work-stealing claim loop as the flat path, labeled for CPU profiles.
// It is a barrier: every socket has been processed when it returns.
func (f *hierFleet) forEachSocket(fn func(s int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < f.shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			pprof.Do(context.Background(), pprof.Labels("fleet_shard", strconv.Itoa(k)), func(ctx context.Context) {
				for {
					s := int(next.Add(1)) - 1
					if s >= f.cfg.Sockets {
						return
					}
					pprof.Do(ctx, pprof.Labels("socket", strconv.Itoa(s)), func(context.Context) {
						fn(s)
					})
				}
			})
		}(k)
	}
	wg.Wait()
}

// runFleetHier simulates the fleet under cfg.Hierarchy. Called from
// RunFleet after the shared validation; see the file comment for the
// phase/barrier protocol.
func runFleetHier(cfg FleetConfig, shards int) (FleetResult, error) {
	if cfg.Epoch <= 0 {
		return FleetResult{}, fmt.Errorf("cluster: hierarchical fleet needs a positive Epoch, got %d", cfg.Epoch)
	}
	if cfg.CapW < 0 {
		return FleetResult{}, fmt.Errorf("cluster: negative per-socket ceiling %v W", cfg.CapW)
	}
	// Leaf power bounds from the shared core curve: a probe domain reuses
	// the grid/model validation and the true (non-monotone-safe) extremes.
	probe, err := capping.NewDomain(cfg.Core.Grid, cfg.Core.Power, 1, 1)
	if err != nil {
		return FleetResult{}, err
	}
	floorW := float64(cfg.CoresPerSocket) * probe.MinPowerW()
	leafMaxW := float64(cfg.CoresPerSocket) * probe.MaxPowerW()
	if cfg.CapW > 0 && cfg.CapW < leafMaxW {
		leafMaxW = cfg.CapW
	}
	if leafMaxW < floorW {
		leafMaxW = floorW // a sub-floor ceiling pins every grant at the floor
	}
	h, err := capping.NewHierarchy(*cfg.Hierarchy, cfg.Sockets, floorW, leafMaxW)
	if err != nil {
		return FleetResult{}, err
	}

	f := &hierFleet{
		cfg:     cfg,
		shards:  shards,
		h:       h,
		sims:    make([]*socketSim, cfg.Sockets),
		caches:  make([]*rubikcore.TableCache, cfg.Sockets),
		errs:    make([]error, cfg.Sockets),
		caps:    make([]float64, cfg.Sockets),
		demandW: make([]float64, cfg.Sockets),
		drained: make([]bool, cfg.Sockets),
	}

	// Initial round before any demand exists: every socket asks for its
	// maximum, so tight budgets start divided instead of briefly uncapped.
	for s := range f.demandW {
		f.demandW[s] = leafMaxW
	}
	copy(f.caps, h.Reallocate(f.demandW))

	// Build every socket sim. Caches are per socket, not per shard: a
	// socket migrates across phase goroutines, and the WaitGroup barrier
	// between phases is what keeps its cache single-owner at any instant.
	f.forEachSocket(func(s int) {
		src := cfg.NewSource(s)
		if src == nil {
			f.errs[s] = fmt.Errorf("cluster: fleet socket %d: NewSource returned nil", s)
			return
		}
		c := cfg.socketConfig(s)
		c.CapW = f.caps[s]
		if n := cfg.tableCacheEntries(); n > 0 {
			f.caches[s] = rubikcore.NewTableCache(n)
			c.TableCache = f.caches[s]
		}
		f.sims[s], f.errs[s] = newSocketSim(src, c)
	})
	if err := f.firstErr(); err != nil {
		return FleetResult{}, err
	}

	// Phase/barrier loop.
	deadline := cfg.Core.Deadline
	for barrier := cfg.Epoch; ; barrier += cfg.Epoch {
		target := barrier
		if deadline > 0 && target > deadline {
			target = deadline
		}
		f.forEachSocket(func(s int) {
			if !f.drained[s] {
				f.drained[s] = f.sims[s].advanceTo(target)
			}
		})
		all := true
		for _, d := range f.drained {
			if !d {
				all = false
				break
			}
		}
		if all || (deadline > 0 && target >= deadline) {
			break
		}
		f.barrier(target)
	}
	// Deadline cut-off parity with the flat path: undrained sockets end
	// with their clocks on the deadline (every due event already fired).
	if deadline > 0 {
		for s, sim := range f.sims {
			if !f.drained[s] {
				sim.eng.RunUntil(deadline)
			}
		}
	}

	results := make([]Result, cfg.Sockets)
	f.forEachSocket(func(s int) {
		results[s], f.errs[s] = f.sims[s].result()
	})
	if err := f.firstErr(); err != nil {
		return FleetResult{}, err
	}
	out := FleetResult{Shards: shards, Sockets: results}
	for _, c := range f.caches {
		if c != nil {
			out.TableCache.Add(c.Stats())
		}
	}
	hs := h.Stats()
	hs.LeafCapChanges = f.capChanges
	out.Hierarchy = &hs
	return out, nil
}

// barrier closes the epoch ending at target: collect demand in socket
// order, re-allocate the tree, and arm every changed cap as an event at
// exactly the barrier time. Runs on one goroutine between phases, so it
// reads and writes socket state without synchronization.
func (f *hierFleet) barrier(target sim.Time) {
	for s, sm := range f.sims {
		if f.drained[s] {
			// A finished socket needs only its floor; its budget flows to
			// the sockets still running.
			f.demandW[s] = f.h.LeafFloorW()
			continue
		}
		f.demandW[s] = sm.capped.epochDemandW(target)
	}
	grants := f.h.Reallocate(f.demandW)
	for s, sm := range f.sims {
		if f.drained[s] || grants[s] == f.caps[s] {
			continue
		}
		f.caps[s] = grants[s]
		f.capChanges++
		sm.scheduleCap(target, grants[s])
	}
}

// firstErr returns the lowest-socket error, so the reported failure is
// deterministic regardless of which phase goroutine hit it first.
func (f *hierFleet) firstErr() error {
	for s, err := range f.errs {
		if err != nil {
			return fmt.Errorf("cluster: fleet socket %d: %w", s, err)
		}
	}
	return nil
}
