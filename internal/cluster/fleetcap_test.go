package cluster

import (
	"reflect"
	"strings"
	"testing"

	"rubik/internal/capping"
	"rubik/internal/workload"
)

// hierFleetConfig is fleetConfig plus a budget tree: per-socket load is
// skewed (socket s drives 0.3+0.4·s/(n-1) load per core) so a
// demand-aware allocator has something to move between sockets.
func hierFleetConfig(t *testing.T, scenario string, sockets, coresPer, nPer, shards int, spec capping.HierarchySpec, epoch int64) FleetConfig {
	t.Helper()
	cfg := fleetConfig(t, scenario, "jsq", sockets, coresPer, nPer, 0, shards)
	app := workload.Masstree()
	sc, err := workload.ScenarioByName(scenario)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NewSource = func(s int) workload.Source {
		load := 0.3
		if sockets > 1 {
			load += 0.4 * float64(s) / float64(sockets-1)
		}
		return sc.New(app, load*float64(coresPer), nPer, workload.ShardSeed(7, s))
	}
	cfg.Hierarchy = &spec
	cfg.Epoch = sim1ms * epoch
	return cfg
}

const sim1ms = 1_000_000 // simulated ns per ms

// TestFleetHierShardInvariance extends the tentpole shard property to
// hierarchical runs: epoch barriers are the only cross-socket coupling,
// they run sequentially in socket order, and new caps land as events at
// exactly the barrier time — so shard=N must stay DeepEqual shard=1,
// budget tree included.
func TestFleetHierShardInvariance(t *testing.T) {
	const sockets, coresPer, nPer = 3, 2, 500
	spec := capping.HierarchySpec{Levels: []capping.LevelSpec{
		{Name: "rack", Nodes: 1, CapW: 30},
		{Name: "pdu", Nodes: 2, Oversub: 1.1},
	}}
	for _, sc := range []string{"bursty", "heavytail"} {
		t.Run(sc, func(t *testing.T) {
			want, err := RunFleet(hierFleetConfig(t, sc, sockets, coresPer, nPer, 1, spec, 5))
			if err != nil {
				t.Fatal(err)
			}
			if want.Hierarchy == nil {
				t.Fatal("hierarchical run returned no hierarchy stats")
			}
			for _, shards := range []int{2, sockets} {
				got, err := RunFleet(hierFleetConfig(t, sc, sockets, coresPer, nPer, shards, spec, 5))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Sockets, want.Sockets) {
					t.Fatalf("shard=%d hierarchical sockets diverged from shard=1", shards)
				}
				if !reflect.DeepEqual(got.Hierarchy, want.Hierarchy) {
					t.Fatalf("shard=%d hierarchy stats diverged from shard=1", shards)
				}
				if got.TableCache != want.TableCache {
					t.Fatalf("shard=%d cache stats diverged: %+v vs %+v", shards, got.TableCache, want.TableCache)
				}
			}
		})
	}
}

// TestFleetHierDegenerateMatchesFlat pins the bridge between the two
// fleet paths: a one-level static tree whose root holds exactly
// sockets x flat-cap watts re-derives the flat per-socket cap at every
// barrier (n·c/n is float-exact), applyCap no-ops, and the whole run —
// DomainStats and all — is bit-identical to flat per-socket capping.
func TestFleetHierDegenerateMatchesFlat(t *testing.T) {
	const sockets, coresPer, nPer = 3, 2, 500
	const flatCapW = 9.0 // binding 2-core budget, float-exact under /3
	flat, err := RunFleet(fleetConfig(t, "bursty", "jsq", sockets, coresPer, nPer, flatCapW, 1))
	if err != nil {
		t.Fatal(err)
	}
	hcfg := fleetConfig(t, "bursty", "jsq", sockets, coresPer, nPer, flatCapW, 1)
	hcfg.Hierarchy = &capping.HierarchySpec{Levels: []capping.LevelSpec{
		{Name: "rack", Nodes: 1, CapW: sockets * flatCapW, Alloc: capping.StaticLevel{}},
	}}
	hcfg.Epoch = 2 * sim1ms
	hier, err := RunFleet(hcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hier.Sockets, flat.Sockets) {
		t.Fatal("degenerate one-level static hierarchy diverged from flat per-socket capping")
	}
	if hier.Hierarchy == nil || hier.Hierarchy.LeafCapChanges != 0 {
		t.Fatalf("degenerate hierarchy changed caps: %+v", hier.Hierarchy)
	}
	for s, ds := range hier.Capping() {
		if ds.CapW != flatCapW {
			t.Fatalf("socket %d ended on cap %v W, want flat %v W", s, ds.CapW, flatCapW)
		}
	}
}

// TestFleetHierReallocates exercises the demand-following path: a tight
// waterfilled rack over skewed sockets must move watts at least once,
// keep every socket's cap within the tree's leaf bounds, and account its
// rounds in the stats.
func TestFleetHierReallocates(t *testing.T) {
	const sockets, coresPer, nPer = 4, 2, 600
	spec := capping.HierarchySpec{Levels: []capping.LevelSpec{
		{Name: "rack", Nodes: 1, CapW: 34},
		{Name: "pdu", Nodes: 2},
	}}
	res, err := RunFleet(hierFleetConfig(t, "bursty", sockets, coresPer, nPer, 2, spec, 3))
	if err != nil {
		t.Fatal(err)
	}
	hs := res.Hierarchy
	if hs == nil {
		t.Fatal("no hierarchy stats")
	}
	if hs.Reallocations < 2 {
		t.Fatalf("only %d reallocation rounds over a multi-epoch run", hs.Reallocations)
	}
	if hs.LeafCapChanges == 0 {
		t.Fatal("skewed demand under a tight rack budget changed no socket cap")
	}
	wantLevels := []string{"rack", "pdu", "socket"}
	if len(hs.Levels) != len(wantLevels) {
		t.Fatalf("got %d stat levels, want %d", len(hs.Levels), len(wantLevels))
	}
	for i, ls := range hs.Levels {
		if ls.Name != wantLevels[i] {
			t.Fatalf("level %d named %q, want %q", i, ls.Name, wantLevels[i])
		}
	}
	// Per-round budget safety (no oversubscription anywhere): the rack
	// never grants over its cap, and every round's socket grants divide a
	// rack grant, so the mean socket grant times the socket count fits the
	// rack budget too. (Final per-socket CapW values can legitimately sum
	// over the budget: a drained socket keeps its last cap on the books
	// while the tree hands its watts to the sockets still running.)
	if rack := hs.Levels[0]; rack.MaxGrantW > 34+1e-9 {
		t.Fatalf("rack granted %v W over its 34 W cap", rack.MaxGrantW)
	}
	if leaf := hs.Levels[len(hs.Levels)-1]; float64(sockets)*leaf.AvgGrantW > 34+1e-9 {
		t.Fatalf("mean socket grants sum to %v W over the 34 W rack budget", float64(sockets)*leaf.AvgGrantW)
	}
	for s, ds := range res.Capping() {
		if ds.CapW <= 0 {
			t.Fatalf("socket %d ended on non-positive cap %v", s, ds.CapW)
		}
	}
}

// TestFleetHierValidation pins the config seams of the hierarchical path.
func TestFleetHierValidation(t *testing.T) {
	base := func() FleetConfig {
		return fleetConfig(t, "bursty", "jsq", 2, 2, 50, 0, 1)
	}

	cfg := base()
	cfg.Epoch = sim1ms
	if _, err := RunFleet(cfg); err == nil || !strings.Contains(err.Error(), "Epoch set without a Hierarchy") {
		t.Fatalf("Epoch without Hierarchy: err = %v", err)
	}

	cfg = base()
	cfg.Hierarchy = &capping.HierarchySpec{Levels: []capping.LevelSpec{{Name: "rack", Nodes: 1, CapW: 40}}}
	if _, err := RunFleet(cfg); err == nil || !strings.Contains(err.Error(), "positive Epoch") {
		t.Fatalf("Hierarchy without Epoch: err = %v", err)
	}

	cfg = base()
	cfg.Hierarchy = &capping.HierarchySpec{Levels: []capping.LevelSpec{{Name: "rack", Nodes: 1}}}
	cfg.Epoch = sim1ms
	if _, err := RunFleet(cfg); err == nil {
		t.Fatal("uncapped root accepted")
	}
}
