package cluster

import (
	"reflect"
	"runtime"
	"testing"

	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// TestRunSourceMatchesRunJSQ is the cluster half of the tentpole
// property: streaming a Poisson source through JSQ dispatch produces a
// Result deeply identical to materializing the same seed's trace and
// replaying it through Run.
func TestRunSourceMatchesRunJSQ(t *testing.T) {
	app := workload.Masstree()
	const n, seed = 6000, 13
	mkCfg := func() Config {
		cfg := DefaultConfig()
		cfg.Cores = 4
		cfg.Dispatcher = NewJSQ()
		return cfg
	}
	tr := workload.GenerateAtLoad(app, 0.5*4, n, seed)
	want, err := Run(tr, mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSource(workload.NewLoadSource(app, 0.5*4, n, seed), mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed cluster Result differs from materialized replay")
	}
	if got.Served() != n {
		t.Fatalf("served %d of %d", got.Served(), n)
	}
}

// TestRunPerCoreSources checks the segregated topology: each core serves
// exactly its own stream, and the pooled result is deterministic.
func TestRunPerCoreSources(t *testing.T) {
	app := workload.Masstree()
	mkSrcs := func() []workload.Source {
		return []workload.Source{
			workload.NewLoadSource(app, 0.4, 800, 1),
			workload.NewLoadSource(app, 0.6, 1200, 2),
			workload.NewLoadSource(app, 0.5, 1000, 3),
		}
	}
	cfg := DefaultConfig()
	a, err := RunPerCoreSources(mkSrcs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPerCoreSources(mkSrcs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("per-core run not deterministic")
	}
	if a.Dispatcher != "percore" {
		t.Fatalf("dispatcher %q", a.Dispatcher)
	}
	for i, want := range []int{800, 1200, 1000} {
		if a.Routed[i] != want || len(a.PerCore[i].Completions) != want {
			t.Fatalf("core %d served %d/%d, want %d", i, a.Routed[i], len(a.PerCore[i].Completions), want)
		}
	}
	// Per-core single-load run must equal the standalone single-core run.
	solo, err := queueing.Run(workload.GenerateAtLoad(app, 0.4, 800, 1),
		queueing.FixedPolicy{MHz: DefaultConfig().Core.InitialMHz}, DefaultConfig().Core)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.PerCore[0].Completions, solo.Completions) {
		t.Fatal("per-core source run diverged from standalone queueing.Run")
	}
	if _, err := RunPerCoreSources(nil, cfg); err == nil {
		t.Fatal("empty source list accepted")
	}
}

// TestClusterClosedLoop routes a shared closed-loop population through
// JSQ dispatch: completions on any core re-arm the population.
func TestClusterClosedLoop(t *testing.T) {
	app := workload.Masstree()
	cl := workload.ClosedLoop{
		App:       app,
		Clients:   12,
		MeanThink: sim.Time(5 * app.MeanServiceNsAtNominal()),
		N:         3000,
		Seed:      4,
	}
	cfg := DefaultConfig()
	cfg.Cores = 3
	cfg.Dispatcher = NewJSQ()
	a, err := RunSource(cl.NewSource(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Served() != 3000 {
		t.Fatalf("closed-loop cluster served %d of 3000", a.Served())
	}
	b, err := RunSource(cl.NewSource(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("closed-loop cluster run not deterministic")
	}
}

// tickProbe is a fixed-frequency Ticker that records its last tick time,
// so tests can detect a periodic control loop dying mid-run.
type tickProbe struct {
	mhz   int
	every sim.Time
	last  *sim.Time
}

func (p *tickProbe) Name() string               { return "tickprobe" }
func (p *tickProbe) OnEvent(queueing.View) int  { return p.mhz }
func (p *tickProbe) OnTick(v queueing.View) int { *p.last = v.Now; return p.mhz }
func (p *tickProbe) TickEvery() sim.Time        { return p.every }

// TestClosedLoopKeepsTickersAlive regresses the shared-feeder lifecycle
// bug: with a closed-loop source, the feeder's lookahead is frequently
// empty while every request is in flight, and an idle core's policy tick
// firing in that window used to terminate permanently (Remaining()==0).
// Remaining now keeps reporting more until the source is Exhausted, so
// every core's ticker must survive to the end of the run.
func TestClosedLoopKeepsTickersAlive(t *testing.T) {
	app := workload.Masstree()
	cl := workload.ClosedLoop{
		App:     app,
		Clients: 2, // fewer clients than cores, short think: the spare
		// core is idle while every client is in flight, exactly the
		// window where its tick used to see Remaining()==0 and die.
		MeanThink: sim.Time(0.2 * app.MeanServiceNsAtNominal()),
		N:         2000,
		Seed:      6,
	}
	cfg := DefaultConfig()
	cfg.Cores = 3
	cfg.Dispatcher = NewJSQ()
	lasts := make([]sim.Time, cfg.Cores)
	every := 20 * sim.Microsecond
	cfg.NewPolicy = func(i int) (queueing.Policy, error) {
		return &tickProbe{mhz: cfg.Core.InitialMHz, every: every, last: &lasts[i]}, nil
	}
	res, err := RunSource(cl.NewSource(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served() != 2000 {
		t.Fatalf("served %d of 2000", res.Served())
	}
	for i, last := range lasts {
		if last < res.EndTime-10*every {
			t.Errorf("core %d ticker died at %v (end %v): lifecycle bug is back", i, last, res.EndTime)
		}
	}
}

// TestStreamingClusterConstantMemory is the acceptance run: a 10M-request
// diurnal scenario on a 4-core cluster completes with memory independent
// of the request count — no []Request materialization, no completion
// log, a fixed-size response histogram per core. The guard is on total
// allocated bytes over the whole run: a fraction of a byte per request.
func TestStreamingClusterConstantMemory(t *testing.T) {
	n := 10_000_000
	if testing.Short() {
		n = 500_000
	}
	app := workload.Masstree()
	sc, err := workload.ScenarioByName("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Dispatcher = NewJSQ()
	cfg.Core.DropCompletions = true

	src := sc.New(app, 0.5*float64(cfg.Cores), n, 11)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	res, err := RunSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)

	if res.Served() != n {
		t.Fatalf("served %d of %d", res.Served(), n)
	}
	for i, c := range res.PerCore {
		if len(c.Completions) != 0 {
			t.Fatalf("core %d retained %d completions", i, len(c.Completions))
		}
	}
	if tail := res.TailNs(0.95, 0); tail <= 0 {
		t.Fatalf("streamed tail %v", tail)
	}
	// Setup (engine, cores, histograms) is fixed-size; everything per
	// request is pooled. Allow 2 MB of slack for the runtime itself —
	// at 10M requests that is 0.2 bytes/request, which no per-request
	// []Request or completion log could hide under. (Race-instrumented
	// builds allocate per instrumentation point, so the byte guard only
	// holds uninstrumented.)
	if delta := m1.TotalAlloc - m0.TotalAlloc; !raceEnabled && delta > 2<<20 {
		t.Errorf("streaming run allocated %.2f MB total (%.2f B/request) — memory not independent of request count",
			float64(delta)/1e6, float64(delta)/float64(n))
	}
}
