package cluster

import (
	"math"
	"math/rand"
	"testing"

	"rubik/internal/capping"
	"rubik/internal/cpu"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// TestAttachOffGridInitialClamps is the regression pin for the attach
// seeding bug: a core whose CurrentMHz is absent from the domain grid
// seeded DesiredIdx = -1 with no fallback, and the initial allocation
// round indexed power[-1] and panicked. attach must clamp up exactly as
// decide does. The public path guards this today (NewCore rejects an
// off-grid InitialMHz against the same grid), so the pin is white-box:
// a domain grid coarser than the core grid reproduces the mismatch.
func TestAttachOffGridInitialClamps(t *testing.T) {
	eng := sim.NewEngine()
	domGrid, err := cpu.NewGrid([]int{800, 1600, 2400, 3200})
	if err != nil {
		t.Fatal(err)
	}
	model := cpu.DefaultPowerModel()
	const capW = 9.0 // binding for two cores near the middle of the curve
	dom, err := capping.NewDomain(domGrid, model, capW, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctl := &domainCtl{
		eng:     eng,
		dom:     dom,
		alloc:   capping.Waterfill{},
		cores:   make([]*queueing.Core, 2),
		idx:     []int{0, 1},
		demands: make([]capping.Demand, 2),
		grants:  make([]int, 2),
		granted: make([]int, 2),
	}
	ctl.stats = capping.DomainStats{Cores: []int{0, 1}, CapW: capW, Allocator: "waterfill"}

	qcfg := queueing.DefaultConfig()
	qcfg.InitialMHz = 2000 // on the core grid, absent from the domain grid
	cores := make([]*queueing.Core, 2)
	for i := range cores {
		c, err := queueing.NewCore(eng, queueing.FixedPolicy{MHz: 2000}, qcfg)
		if err != nil {
			t.Fatal(err)
		}
		cores[i] = c
	}

	setup := &cappedSetup{ctls: []*domainCtl{ctl}}
	setup.attach(cores) // panicked (power[-1]) before the clamp fix

	wantIdx := domGrid.Index(domGrid.ClampUp(2000))
	if wantIdx < 0 {
		t.Fatal("clamped step must be on the domain grid")
	}
	for m, dem := range ctl.demands {
		if dem.DesiredIdx != wantIdx {
			t.Fatalf("member %d seeded DesiredIdx %d, want clamped %d", m, dem.DesiredIdx, wantIdx)
		}
	}
	if sum := dom.PowerOf(ctl.grants); sum > capW+1e-9 {
		t.Fatalf("initial round exceeded the binding cap: Σ=%v W > %v W", sum, capW)
	}
	if ctl.stats.Rounds != 1 {
		t.Fatalf("initial round count = %d, want 1", ctl.stats.Rounds)
	}
}

// TestCappedOffGridInitialMHzRejected pins the public-API seam in front
// of the attach clamp: an off-grid InitialMHz under a binding cap must
// surface as a clean config error from core validation — never a panic
// out of the capping wiring.
func TestCappedOffGridInitialMHzRejected(t *testing.T) {
	cfg := rubikClusterConfig(t, 2, 500_000)
	cfg.CapW = 9
	cfg.Core.InitialMHz = 999 // not a grid step
	src := workload.NewLoadSource(workload.Masstree(), 0.5, 100, 1)
	if _, err := RunSource(src, cfg); err == nil {
		t.Fatal("off-grid InitialMHz accepted under a binding cap")
	}
}

// TestCappedConfigProperties is the property sweep over capped cluster
// configs: single-member domains, multi-domain splits, caps at exactly
// n·P_min, binding, generous and +Inf caps — no run may panic, every
// feasible domain must hold Σ granted power within its cap at all times
// (PeakPowerW is the running max), and infeasible domains must account
// CapExceededNs over effectively the whole run.
func TestCappedConfigProperties(t *testing.T) {
	app := workload.Masstree()
	grid := cpu.DefaultGrid()
	model := cpu.DefaultPowerModel()
	minW := model.ActivePower(grid.Min())
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 24; trial++ {
		cores := 1 + r.Intn(5)
		var domains [][]int
		switch r.Intn(3) {
		case 0:
			// Default: one implicit domain spanning every core.
		case 1:
			// Single-member domains: every core budgeted alone.
			for i := 0; i < cores; i++ {
				domains = append(domains, []int{i})
			}
		default:
			// A leading pair plus singletons, when enough cores exist.
			if cores >= 2 {
				domains = append(domains, []int{0, 1})
				for i := 2; i < cores; i++ {
					domains = append(domains, []int{i})
				}
			}
		}
		domSize := cores
		if len(domains) > 0 {
			domSize = len(domains[0])
		}
		var capW float64
		var infeasible bool
		switch r.Intn(4) {
		case 0:
			capW = float64(domSize) * minW // exactly n·P_min: feasible boundary
		case 1:
			capW = math.Inf(1)
		case 2:
			capW = float64(domSize) * (minW + r.Float64()*8)
		default:
			capW = float64(domSize) * minW * (0.2 + 0.6*r.Float64()) // below the floor
			infeasible = true
		}

		cfg := rubikClusterConfig(t, cores, 500_000)
		cfg.CapW = capW
		cfg.PowerDomains = domains
		alloc, err := capping.ByName(capping.Names()[r.Intn(len(capping.Names()))])
		if err != nil {
			t.Fatal(err)
		}
		cfg.Allocator = alloc
		src := workload.NewLoadSource(app, 0.4*float64(cores), 400, int64(trial))
		res, err := RunSource(src, cfg)
		if err != nil {
			t.Fatalf("trial %d (cap %v, domains %v): %v", trial, capW, domains, err)
		}
		for di, ds := range res.Capping {
			n := len(ds.Cores)
			feasible := float64(n)*minW <= capW
			if feasible && ds.PeakPowerW > capW*(1+1e-9) {
				t.Fatalf("trial %d domain %d: peak %v W over cap %v W (%s)",
					trial, di, ds.PeakPowerW, capW, alloc.Name())
			}
			if feasible && ds.CapExceededNs != 0 {
				t.Fatalf("trial %d domain %d: feasible domain accounted CapExceededNs=%d",
					trial, di, ds.CapExceededNs)
			}
			if !feasible {
				if ds.CapExceededNs == 0 {
					t.Fatalf("trial %d domain %d: infeasible domain accounted no excess time", trial, di)
				}
				if res.EndTime > 0 && ds.CapExceededNs < res.EndTime/2 {
					t.Fatalf("trial %d domain %d: infeasible domain exceeded only %d of %d ns",
						trial, di, ds.CapExceededNs, res.EndTime)
				}
			}
		}
		if infeasible && len(res.Capping) == 0 {
			t.Fatalf("trial %d: capped run reported no domains", trial)
		}
	}
}
