//go:build race

package cluster

// raceEnabled mirrors the race build tag: the race detector instruments
// allocations, so byte-count guards only hold on uninstrumented builds.
const raceEnabled = true
