package queueing

import (
	"fmt"
	"math"

	"rubik/internal/cpu"
	"rubik/internal/sim"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

// ActiveRequest is one request inside a Core: the immutable trace request
// plus its remaining/elapsed work split. Hooks may inflate the remaining
// work when service begins (wake penalties, colocation interference); the
// elapsed counters then report the inflated work, exactly as CPI-stack
// performance counters would.
//
// ActiveRequests live by value in a core-owned ring buffer; the pointer a
// hook receives is valid only for the duration of the hook call and must
// not be retained.
type ActiveRequest struct {
	Req workload.Request
	// RemainingCC / RemainingMem are compute cycles and memory-bound ns
	// left to serve.
	RemainingCC  float64
	RemainingMem float64
	// ElapsedCC / ElapsedMem are the work already performed.
	ElapsedCC  float64
	ElapsedMem float64
	// Start is when the request reached the head of the queue.
	Start sim.Time
	// QlenAtArrival is the system population the request found on arrival.
	QlenAtArrival int
}

// Hooks customize a Core at its extension points. Every field is optional;
// the zero Hooks value reproduces the standalone latency-critical server
// (idle time is slept, the first request of a busy period pays the wake
// penalty). The coloc package fills the hooks to run batch work in the
// idle gaps and charge core-state interference.
type Hooks struct {
	// StartService fires when a request reaches the head of the queue,
	// after Start is stamped. preempting is true when the request begins a
	// busy period (the core was idle or occupied by other work). When nil,
	// the default adds Config.WakeLatency to the first request of each
	// busy period. The *ActiveRequest points into the core's ring buffer:
	// mutate it synchronously, do not retain it.
	StartService func(a *ActiveRequest, preempting bool)
	// Busy fires when a busy period begins, before StartService.
	Busy func(now sim.Time)
	// Idle fires when the queue drains. When set, it replaces the default
	// empty-queue policy decision after the draining completion.
	Idle func(now sim.Time)
	// IdleAccrual, when set, replaces idle-energy metering for spans where
	// the queue is empty (coloc: batch work runs in the gaps and pays its
	// own energy).
	IdleAccrual func(dtNs float64, curMHz int)
	// GateTick, when set and returning false, suppresses actuating the
	// policy's periodic tick decision (coloc: the LC policy only owns the
	// frequency while LC work is queued).
	GateTick func() bool
	// Completion fires after a completion is recorded (and after a
	// CompletionObserver policy sees it), before the next request starts
	// service. RunSource uses it to feed completions back to closed-loop
	// sources.
	Completion func(c Completion)
}

// Core is the single-core run loop every simulated server in the repo is
// built on: a FIFO queue served by a DVFS-capable core on a shared
// discrete-event engine. The standalone Run, the coloc colocated core and
// the cluster package all consume it; arrivals are pushed in via Enqueue
// (by a trace feeder or a cluster dispatcher) at the engine's current
// time.
//
// The event hot path is allocation-free in steady state: requests live by
// value in a ring buffer (slots recycle as the FIFO wraps), the
// completion/switch/tick events are pre-registered engine handles moved
// with Reschedule/Cancel, the policy View reuses a core-owned snapshot
// buffer, and queue-length/pending-work counters are maintained
// incrementally so dispatchers never rescan the queue.
type Core struct {
	eng    *sim.Engine
	cfg    Config
	policy Policy
	hooks  Hooks

	// FIFO ring buffer: the request in service is ring[head], arrivals
	// append at (head+count) & mask. Capacity is a power of two and grows
	// only when the instantaneous queue depth exceeds it.
	ring  []ActiveRequest
	head  int
	count int
	mask  int

	// pendCC/pendMem sum RemainingCC/RemainingMem over the ring: the O(1)
	// pending-work counters behind PendingWorkNs. Updated on enqueue,
	// accrual, service-begin inflation and completion.
	pendCC  float64
	pendMem float64

	// viewQueue is the policy-visible queue snapshot reused across
	// decision points (non-race builds; see view_norace.go / view_race.go).
	viewQueue []QueuedRequest

	meter *cpu.EnergyMeter

	cur           int
	target        int
	switchPending bool
	lastAccrual   sim.Time

	completionH sim.Handle
	switchH     sim.Handle
	tickH       sim.Handle

	completions []Completion
	served      int
	respHist    *stats.LogHistogram

	freqTimeline   []FreqSample
	energyTimeline []EnergySample
}

// NewCore validates the config and prepares a core on the engine. policy
// may be nil when an external allocator owns the frequency (coloc HW-T /
// HW-TPW); such a core never decides, it only serves.
func NewCore(eng *sim.Engine, p Policy, cfg Config) (*Core, error) {
	if cfg.Grid.Len() == 0 {
		return nil, fmt.Errorf("queueing: config has empty grid")
	}
	if cfg.InitialMHz == 0 {
		cfg.InitialMHz = cpu.NominalMHz
	}
	if cfg.Grid.Index(cfg.InitialMHz) < 0 {
		return nil, fmt.Errorf("queueing: initial frequency %d not on grid", cfg.InitialMHz)
	}
	c := &Core{
		eng:    eng,
		cfg:    cfg,
		policy: p,
		meter:  cpu.NewEnergyMeter(cfg.Grid, cfg.Power),
		cur:    cfg.InitialMHz,
		target: cfg.InitialMHz,
	}
	c.completionH = eng.Register(c.completionEvent)
	c.switchH = eng.Register(c.switchEvent)
	if cfg.DropCompletions {
		// Streaming mode: per-request records fold into a fixed-size
		// response histogram instead of an O(requests) log, so memory is
		// independent of run length.
		c.respHist = stats.NewResponseHistogram()
	} else if cfg.ExpectedRequests > 0 {
		c.completions = make([]Completion, 0, cfg.ExpectedRequests)
	}
	if cfg.RecordTimeline {
		if cfg.ExpectedRequests > 0 {
			// Frequency changes track decision points, which track events:
			// a couple per request is the right order of magnitude.
			c.freqTimeline = make([]FreqSample, 0, 2*cfg.ExpectedRequests)
			c.energyTimeline = make([]EnergySample, 0, 2*cfg.ExpectedRequests)
		}
		c.freqTimeline = append(c.freqTimeline, FreqSample{T: 0, MHz: c.cur})
	}
	return c, nil
}

// SetHooks installs the customization hooks. Call before the first event.
func (c *Core) SetHooks(h Hooks) { c.hooks = h }

// StartTicks schedules the policy's periodic tick, if it is a Ticker.
// moreArrivals reports whether the core's feeder still has requests to
// deliver; ticking stops once it is false and the queue has drained, so
// the simulation terminates.
func (c *Core) StartTicks(moreArrivals func() bool) {
	t, ok := c.policy.(Ticker)
	if !ok || t.TickEvery() <= 0 {
		return
	}
	c.tickH = c.eng.Register(func() { c.tickEvent(t, moreArrivals) })
	c.eng.RescheduleAfter(c.tickH, t.TickEvery())
}

// at returns the i-th request in FIFO order (0 = head, in service).
func (c *Core) at(i int) *ActiveRequest {
	return &c.ring[(c.head+i)&c.mask]
}

// grow doubles the ring, unwrapping the FIFO to the front. Amortized: the
// ring stops growing once it covers the run's peak queue depth.
func (c *Core) grow() {
	n := len(c.ring)
	if n == 0 {
		c.ring = make([]ActiveRequest, 16)
		c.mask = 15
		return
	}
	bigger := make([]ActiveRequest, 2*n)
	for i := 0; i < c.count; i++ {
		bigger[i] = c.ring[(c.head+i)&c.mask]
	}
	c.ring = bigger
	c.mask = 2*n - 1
	c.head = 0
}

// Enqueue delivers a request to the core at the engine's current time.
func (c *Core) Enqueue(req workload.Request) {
	c.Accrue()
	if c.count == len(c.ring) {
		c.grow()
	}
	i := (c.head + c.count) & c.mask
	a := &c.ring[i]
	*a = ActiveRequest{
		Req:           req,
		RemainingCC:   req.ComputeCycles,
		RemainingMem:  float64(req.MemTime),
		QlenAtArrival: c.count,
	}
	wasIdle := c.count == 0
	c.count++
	c.pendCC += a.RemainingCC
	c.pendMem += a.RemainingMem
	if wasIdle {
		if c.hooks.Busy != nil {
			c.hooks.Busy(c.eng.Now())
		}
		c.startService(a, true)
	}
	c.decide()
	if wasIdle {
		c.rescheduleCompletion()
	}
}

// startService stamps the head request's service start and applies the
// service-begin hook (wake penalty / interference inflation), folding any
// remaining-work inflation into the pending-work counters.
func (c *Core) startService(a *ActiveRequest, preempting bool) {
	a.Start = c.eng.Now()
	ccBefore, memBefore := a.RemainingCC, a.RemainingMem
	if c.hooks.StartService != nil {
		c.hooks.StartService(a, preempting)
	} else if preempting {
		// Sleep exit: the first request of a busy period pays the wake
		// penalty as additional non-scalable time.
		a.RemainingMem += float64(c.cfg.WakeLatency)
	}
	c.pendCC += a.RemainingCC - ccBefore
	c.pendMem += a.RemainingMem - memBefore
}

// Accrue charges energy and advances the head request's progress from the
// last accrual point to now. Frequency is constant over that span because
// every frequency change is itself an event that accrues first. Exported
// so epoch-driven allocators (coloc HW schemes) and dispatchers that need
// fresh queue state can bring the core up to date mid-run.
func (c *Core) Accrue() {
	now := c.eng.Now()
	dt := now - c.lastAccrual
	c.lastAccrual = now
	if dt <= 0 {
		return
	}
	if c.count == 0 {
		if c.hooks.IdleAccrual != nil {
			c.hooks.IdleAccrual(float64(dt), c.cur)
		} else {
			c.meter.AccrueIdle(dt)
		}
		return
	}
	c.meter.AccrueActive(dt, c.cur)
	if c.cfg.RecordTimeline {
		j := c.meter.Model.ActivePower(c.cur) * float64(dt) / 1e9
		c.energyTimeline = append(c.energyTimeline, EnergySample{T: now, J: j})
	}
	head := &c.ring[c.head]
	total := head.RemainingCC*1000/float64(c.cur) + head.RemainingMem
	if total <= 0 {
		return
	}
	alpha := float64(dt) / total
	if alpha > 1 {
		alpha = 1
	}
	dCC := head.RemainingCC * alpha
	dMem := head.RemainingMem * alpha
	head.RemainingCC -= dCC
	head.RemainingMem -= dMem
	head.ElapsedCC += dCC
	head.ElapsedMem += dMem
	c.pendCC -= dCC
	c.pendMem -= dMem
}

// View assembles the policy-visible snapshot of the core. The snapshot's
// Queue aliases a core-owned buffer reused across decision points: a
// policy must read it synchronously inside OnEvent/OnTick and must not
// retain it past the call (race-instrumented builds poison retained
// snapshots so `go test -race` catches violations; see view_race.go).
func (c *Core) View() View {
	q := c.snapshotBuf(c.count)
	for i := 0; i < c.count; i++ {
		q[i] = QueuedRequest{Arrival: c.ring[(c.head+i)&c.mask].Req.Arrival}
	}
	v := View{
		Now:        c.eng.Now(),
		CurrentMHz: c.cur,
		TargetMHz:  c.target,
		Queue:      q,
	}
	if c.count > 0 {
		head := &c.ring[c.head]
		v.HeadElapsedCycles = head.ElapsedCC
		v.HeadElapsedMemNs = sim.Time(head.ElapsedMem)
	}
	return v
}

// decide asks the policy for a frequency and applies it.
func (c *Core) decide() {
	if c.policy == nil {
		return
	}
	v := c.View()
	f := c.policy.OnEvent(v)
	retireView(v.Queue)
	c.ApplyFreq(f)
}

// ApplyFreq retargets the DVFS actuator. A transition takes
// TransitionLatency; while one is in flight, new decisions update the
// target and the in-flight transition applies the latest target when it
// completes (actuation lag; the core keeps running at the old frequency
// until then, which is how the paper models V/F switches). Exported for
// external allocators.
func (c *Core) ApplyFreq(fMHz int) {
	if fMHz <= 0 {
		return
	}
	if c.cfg.Grid.Index(fMHz) < 0 {
		fMHz = c.cfg.Grid.ClampUp(float64(fMHz))
	}
	c.target = fMHz
	if fMHz == c.cur {
		return
	}
	if c.cfg.TransitionLatency == 0 {
		c.cur = fMHz
		c.recordFreq()
		c.rescheduleCompletion()
		return
	}
	if !c.switchPending {
		c.switchPending = true
		c.eng.RescheduleAfter(c.switchH, c.cfg.TransitionLatency)
	}
}

func (c *Core) switchEvent() {
	c.Accrue()
	c.switchPending = false
	if c.cur != c.target {
		c.cur = c.target
		c.recordFreq()
		c.rescheduleCompletion()
	}
}

func (c *Core) recordFreq() {
	if c.cfg.RecordTimeline {
		c.freqTimeline = append(c.freqTimeline, FreqSample{T: c.eng.Now(), MHz: c.cur})
	}
}

// rescheduleCompletion re-projects the head's completion time at the
// current frequency, moving the pre-registered completion event (or
// parking it while the queue is empty). The engine relocates the event
// under the same handle: no closure, no allocation, no stale tombstone.
func (c *Core) rescheduleCompletion() {
	if c.count == 0 {
		c.eng.Cancel(c.completionH)
		return
	}
	head := &c.ring[c.head]
	total := head.RemainingCC*1000/float64(c.cur) + head.RemainingMem
	c.eng.RescheduleAfter(c.completionH, sim.Time(math.Ceil(total)))
}

func (c *Core) completionEvent() {
	c.Accrue()
	head := &c.ring[c.head]
	c.pendCC -= head.RemainingCC
	c.pendMem -= head.RemainingMem
	head.RemainingCC = 0
	head.RemainingMem = 0
	now := c.eng.Now()
	comp := Completion{
		ID:      head.Req.ID,
		Arrival: head.Req.Arrival,
		Start:   head.Start,
		Done:    now,
		// Measured work, as CPI-stack performance counters would report
		// it: elapsed memory time includes the wake penalty the request
		// actually paid, so profiling policies model it.
		ComputeCycles:     head.ElapsedCC,
		MemTime:           sim.Time(head.ElapsedMem),
		QueueLenAtArrival: head.QlenAtArrival,
		ResponseNs:        float64(now - head.Req.Arrival),
		ServiceNs:         float64(now - head.Start),
	}
	c.served++
	if c.cfg.DropCompletions {
		c.respHist.Observe(comp.ResponseNs)
	} else {
		c.completions = append(c.completions, comp)
	}
	c.head = (c.head + 1) & c.mask
	c.count--
	if c.count == 0 {
		// Re-zero the pending-work counters at every idle point so float
		// rounding from incremental updates cannot accumulate across busy
		// periods.
		c.pendCC, c.pendMem = 0, 0
	}
	if obs, ok := c.policy.(CompletionObserver); ok {
		obs.ObserveCompletion(comp)
	}
	if c.hooks.Completion != nil {
		c.hooks.Completion(comp)
	}
	if c.count > 0 {
		c.startService(&c.ring[c.head], false)
		c.decide()
		c.rescheduleCompletion()
		return
	}
	if c.hooks.Idle != nil {
		c.hooks.Idle(now)
		return
	}
	c.decide()
	c.rescheduleCompletion()
}

func (c *Core) tickEvent(t Ticker, moreArrivals func() bool) {
	c.Accrue()
	v := c.View()
	f := t.OnTick(v)
	retireView(v.Queue)
	if c.hooks.GateTick == nil || c.hooks.GateTick() {
		c.ApplyFreq(f)
	}
	// Keep ticking only while there is work left to do; otherwise the
	// simulation would never drain.
	if (moreArrivals != nil && moreArrivals()) || c.count > 0 {
		c.eng.RescheduleAfter(c.tickH, t.TickEvery())
	}
}

// QueueLen returns the number of requests in the system (head in service).
func (c *Core) QueueLen() int { return c.count }

// PendingWorkNs estimates the time to drain the queue at the current
// frequency: the remaining work of every queued request, from the
// incrementally maintained pending-work counters — O(1), so dispatchers
// can consult every core on every arrival without rescanning queues. Call
// Accrue first for an up-to-date value.
func (c *Core) PendingWorkNs() sim.Time {
	return sim.Time(c.pendCC*1000/float64(c.cur) + c.pendMem)
}

// pendingWorkScan is the O(queue) reference for PendingWorkNs, retained
// for the equality test pinning the incremental counters.
func (c *Core) pendingWorkScan() sim.Time {
	var cc, mem float64
	for i := 0; i < c.count; i++ {
		a := c.at(i)
		cc += a.RemainingCC
		mem += a.RemainingMem
	}
	return sim.Time(cc*1000/float64(c.cur) + mem)
}

// CurrentMHz returns the frequency the core is executing at.
func (c *Core) CurrentMHz() int { return c.cur }

// Completions returns the completions recorded so far.
func (c *Core) Completions() []Completion { return c.completions }

// Meter exposes the core's energy meter (read-only use).
func (c *Core) Meter() *cpu.EnergyMeter { return c.meter }

// Finalize accrues any trailing span and assembles the core's Result.
// EndTime is the engine's current time.
func (c *Core) Finalize() Result {
	c.Accrue()
	name := ""
	if c.policy != nil {
		name = c.policy.Name()
	}
	return Result{
		Policy:         name,
		Completions:    c.completions,
		Served:         c.served,
		ResponseHist:   c.respHist,
		ActiveEnergyJ:  c.meter.ActiveEnergyJ(),
		IdleEnergyJ:    c.meter.IdleEnergyJ(),
		ActiveNs:       c.meter.ActiveNs(),
		IdleNs:         c.meter.IdleNs(),
		Residency:      c.meter.Residency(),
		EndTime:        c.eng.Now(),
		FreqTimeline:   c.freqTimeline,
		EnergyTimeline: c.energyTimeline,
	}
}

// Feeder streams a workload.Source into a core through one pre-registered
// arrival event: it holds a one-request lookahead, and each firing
// delivers the lookahead, pulls the next request and moves the same
// handle to its arrival — so the engine holds at most one pending
// arrival per feeder and steady-state feeding allocates nothing,
// regardless of whether the source is a materialized trace or an
// unbounded generator.
type Feeder struct {
	eng *sim.Engine
	src workload.Source
	// deliver routes the arriving request (single core: Enqueue on the one
	// core; cluster: dispatch).
	deliver func(req workload.Request)

	pending workload.Request
	ok      bool

	h          sim.Handle
	registered bool
}

// NewFeeder prepares a feeder replaying a materialized request slice;
// Start schedules the first arrival. It is NewSourceFeeder over the
// slice's TraceSource.
func NewFeeder(eng *sim.Engine, reqs []workload.Request, deliver func(req workload.Request)) *Feeder {
	return NewSourceFeeder(eng, workload.NewRequestsSource(reqs), deliver)
}

// NewSourceFeeder prepares a feeder pulling from a streaming source;
// Start schedules the first arrival.
func NewSourceFeeder(eng *sim.Engine, src workload.Source, deliver func(req workload.Request)) *Feeder {
	return &Feeder{eng: eng, src: src, deliver: deliver}
}

// Start pulls the first request and schedules its arrival, if any.
func (f *Feeder) Start() {
	f.pending, f.ok = f.src.Next()
	if !f.ok {
		return
	}
	f.schedule()
}

// schedule (re)arms the arrival handle at the lookahead's arrival time.
func (f *Feeder) schedule() {
	if !f.registered {
		f.h = f.eng.Register(f.event)
		f.registered = true
	}
	f.eng.Reschedule(f.h, f.pending.Arrival)
}

// Remaining reports how many requests have not yet arrived. For sources
// of unknown length it reports 1 while the stream has more; consumers
// use it only as a has-more predicate and a capacity hint. A drained
// lookahead on a completion-aware source still counts as more until the
// source is Exhausted: with requests in flight, a completion may spawn
// new arrivals, and periodic machinery (policy ticks) must stay alive
// for them.
func (f *Feeder) Remaining() int {
	if !f.ok {
		if ca, aware := f.src.(workload.CompletionAware); aware && !ca.Exhausted() {
			return 1
		}
		return 0
	}
	if n := f.src.Len(); n >= 0 {
		return n + 1
	}
	return 1
}

func (f *Feeder) event() {
	req := f.pending
	f.pending, f.ok = f.src.Next()
	if f.ok {
		f.eng.Reschedule(f.h, f.pending.Arrival)
	}
	f.deliver(req)
}

// NotifyCompletion forwards a completion to a completion-aware source
// (closed-loop clients) and re-arms the arrival event, since the
// completion may have spawned an arrival earlier than the current
// lookahead — the lookahead is returned to the source and the earliest
// pending arrival re-pulled. A no-op for ordinary sources.
func (f *Feeder) NotifyCompletion(done sim.Time) {
	ca, aware := f.src.(workload.CompletionAware)
	if !aware {
		return
	}
	ca.OnCompletion(done)
	if f.ok {
		ca.Requeue(f.pending)
	}
	f.pending, f.ok = f.src.Next()
	if f.ok {
		f.schedule()
	} else if f.registered {
		f.eng.Cancel(f.h)
	}
}
