package queueing

import (
	"fmt"
	"math"

	"rubik/internal/cpu"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// ActiveRequest is one request inside a Core: the immutable trace request
// plus its remaining/elapsed work split. Hooks may inflate the remaining
// work when service begins (wake penalties, colocation interference); the
// elapsed counters then report the inflated work, exactly as CPI-stack
// performance counters would.
type ActiveRequest struct {
	Req workload.Request
	// RemainingCC / RemainingMem are compute cycles and memory-bound ns
	// left to serve.
	RemainingCC  float64
	RemainingMem float64
	// ElapsedCC / ElapsedMem are the work already performed.
	ElapsedCC  float64
	ElapsedMem float64
	// Start is when the request reached the head of the queue.
	Start sim.Time
	// QlenAtArrival is the system population the request found on arrival.
	QlenAtArrival int
}

// Hooks customize a Core at its extension points. Every field is optional;
// the zero Hooks value reproduces the standalone latency-critical server
// (idle time is slept, the first request of a busy period pays the wake
// penalty). The coloc package fills the hooks to run batch work in the
// idle gaps and charge core-state interference.
type Hooks struct {
	// StartService fires when a request reaches the head of the queue,
	// after Start is stamped. preempting is true when the request begins a
	// busy period (the core was idle or occupied by other work). When nil,
	// the default adds Config.WakeLatency to the first request of each
	// busy period.
	StartService func(a *ActiveRequest, preempting bool)
	// Busy fires when a busy period begins, before StartService.
	Busy func(now sim.Time)
	// Idle fires when the queue drains. When set, it replaces the default
	// empty-queue policy decision after the draining completion.
	Idle func(now sim.Time)
	// IdleAccrual, when set, replaces idle-energy metering for spans where
	// the queue is empty (coloc: batch work runs in the gaps and pays its
	// own energy).
	IdleAccrual func(dtNs float64, curMHz int)
	// GateTick, when set and returning false, suppresses actuating the
	// policy's periodic tick decision (coloc: the LC policy only owns the
	// frequency while LC work is queued).
	GateTick func() bool
}

// Core is the single-core run loop every simulated server in the repo is
// built on: a FIFO queue served by a DVFS-capable core on a shared
// discrete-event engine. The standalone Run, the coloc colocated core and
// the cluster package all consume it; arrivals are pushed in via Enqueue
// (by a trace feeder or a cluster dispatcher) at the engine's current
// time.
type Core struct {
	eng    *sim.Engine
	cfg    Config
	policy Policy
	hooks  Hooks

	queue []*ActiveRequest
	meter *cpu.EnergyMeter

	cur           int
	target        int
	switchPending bool
	lastAccrual   sim.Time
	completionGen uint64

	completions []Completion

	freqTimeline   []FreqSample
	energyTimeline []EnergySample
}

// NewCore validates the config and prepares a core on the engine. policy
// may be nil when an external allocator owns the frequency (coloc HW-T /
// HW-TPW); such a core never decides, it only serves.
func NewCore(eng *sim.Engine, p Policy, cfg Config) (*Core, error) {
	if cfg.Grid.Len() == 0 {
		return nil, fmt.Errorf("queueing: config has empty grid")
	}
	if cfg.InitialMHz == 0 {
		cfg.InitialMHz = cpu.NominalMHz
	}
	if cfg.Grid.Index(cfg.InitialMHz) < 0 {
		return nil, fmt.Errorf("queueing: initial frequency %d not on grid", cfg.InitialMHz)
	}
	c := &Core{
		eng:    eng,
		cfg:    cfg,
		policy: p,
		meter:  cpu.NewEnergyMeter(cfg.Grid, cfg.Power),
		cur:    cfg.InitialMHz,
		target: cfg.InitialMHz,
	}
	if cfg.RecordTimeline {
		c.freqTimeline = append(c.freqTimeline, FreqSample{T: 0, MHz: c.cur})
	}
	return c, nil
}

// SetHooks installs the customization hooks. Call before the first event.
func (c *Core) SetHooks(h Hooks) { c.hooks = h }

// StartTicks schedules the policy's periodic tick, if it is a Ticker.
// moreArrivals reports whether the core's feeder still has requests to
// deliver; ticking stops once it is false and the queue has drained, so
// the simulation terminates.
func (c *Core) StartTicks(moreArrivals func() bool) {
	t, ok := c.policy.(Ticker)
	if !ok || t.TickEvery() <= 0 {
		return
	}
	c.eng.After(t.TickEvery(), func() { c.tickEvent(t, moreArrivals) })
}

// Enqueue delivers a request to the core at the engine's current time.
func (c *Core) Enqueue(req workload.Request) {
	c.Accrue()
	a := &ActiveRequest{
		Req:           req,
		RemainingCC:   req.ComputeCycles,
		RemainingMem:  float64(req.MemTime),
		QlenAtArrival: len(c.queue),
	}
	wasIdle := len(c.queue) == 0
	c.queue = append(c.queue, a)
	if wasIdle {
		if c.hooks.Busy != nil {
			c.hooks.Busy(c.eng.Now())
		}
		c.startService(a, true)
	}
	c.decide()
	if wasIdle {
		c.rescheduleCompletion()
	}
}

// startService stamps the head request's service start and applies the
// service-begin hook (wake penalty / interference inflation).
func (c *Core) startService(a *ActiveRequest, preempting bool) {
	a.Start = c.eng.Now()
	if c.hooks.StartService != nil {
		c.hooks.StartService(a, preempting)
		return
	}
	if preempting {
		// Sleep exit: the first request of a busy period pays the wake
		// penalty as additional non-scalable time.
		a.RemainingMem += float64(c.cfg.WakeLatency)
	}
}

// Accrue charges energy and advances the head request's progress from the
// last accrual point to now. Frequency is constant over that span because
// every frequency change is itself an event that accrues first. Exported
// so epoch-driven allocators (coloc HW schemes) and dispatchers that need
// fresh queue state can bring the core up to date mid-run.
func (c *Core) Accrue() {
	now := c.eng.Now()
	dt := now - c.lastAccrual
	c.lastAccrual = now
	if dt <= 0 {
		return
	}
	if len(c.queue) == 0 {
		if c.hooks.IdleAccrual != nil {
			c.hooks.IdleAccrual(float64(dt), c.cur)
		} else {
			c.meter.AccrueIdle(dt)
		}
		return
	}
	c.meter.AccrueActive(dt, c.cur)
	if c.cfg.RecordTimeline {
		j := c.meter.Model.ActivePower(c.cur) * float64(dt) / 1e9
		c.energyTimeline = append(c.energyTimeline, EnergySample{T: now, J: j})
	}
	head := c.queue[0]
	total := head.RemainingCC*1000/float64(c.cur) + head.RemainingMem
	if total <= 0 {
		return
	}
	alpha := float64(dt) / total
	if alpha > 1 {
		alpha = 1
	}
	dCC := head.RemainingCC * alpha
	dMem := head.RemainingMem * alpha
	head.RemainingCC -= dCC
	head.RemainingMem -= dMem
	head.ElapsedCC += dCC
	head.ElapsedMem += dMem
}

// View assembles the policy-visible snapshot of the core.
func (c *Core) View() View {
	q := make([]QueuedRequest, len(c.queue))
	for i, a := range c.queue {
		q[i] = QueuedRequest{Arrival: a.Req.Arrival}
	}
	v := View{
		Now:        c.eng.Now(),
		CurrentMHz: c.cur,
		TargetMHz:  c.target,
		Queue:      q,
	}
	if len(c.queue) > 0 {
		v.HeadElapsedCycles = c.queue[0].ElapsedCC
		v.HeadElapsedMemNs = sim.Time(c.queue[0].ElapsedMem)
	}
	return v
}

// decide asks the policy for a frequency and applies it.
func (c *Core) decide() {
	if c.policy == nil {
		return
	}
	c.ApplyFreq(c.policy.OnEvent(c.View()))
}

// ApplyFreq retargets the DVFS actuator. A transition takes
// TransitionLatency; while one is in flight, new decisions update the
// target and the in-flight transition applies the latest target when it
// completes (actuation lag; the core keeps running at the old frequency
// until then, which is how the paper models V/F switches). Exported for
// external allocators.
func (c *Core) ApplyFreq(fMHz int) {
	if fMHz <= 0 {
		return
	}
	if c.cfg.Grid.Index(fMHz) < 0 {
		fMHz = c.cfg.Grid.ClampUp(float64(fMHz))
	}
	c.target = fMHz
	if fMHz == c.cur {
		return
	}
	if c.cfg.TransitionLatency == 0 {
		c.cur = fMHz
		c.recordFreq()
		c.rescheduleCompletion()
		return
	}
	if !c.switchPending {
		c.switchPending = true
		c.eng.After(c.cfg.TransitionLatency, c.switchEvent)
	}
}

func (c *Core) switchEvent() {
	c.Accrue()
	c.switchPending = false
	if c.cur != c.target {
		c.cur = c.target
		c.recordFreq()
		c.rescheduleCompletion()
	}
}

func (c *Core) recordFreq() {
	if c.cfg.RecordTimeline {
		c.freqTimeline = append(c.freqTimeline, FreqSample{T: c.eng.Now(), MHz: c.cur})
	}
}

// rescheduleCompletion re-projects the head's completion time at the
// current frequency. Stale completion events are invalidated by the
// generation counter.
func (c *Core) rescheduleCompletion() {
	c.completionGen++
	if len(c.queue) == 0 {
		return
	}
	head := c.queue[0]
	total := head.RemainingCC*1000/float64(c.cur) + head.RemainingMem
	dur := sim.Time(math.Ceil(total))
	gen := c.completionGen
	c.eng.After(dur, func() { c.completionEvent(gen) })
}

func (c *Core) completionEvent(gen uint64) {
	if gen != c.completionGen {
		return // superseded by a frequency change
	}
	c.Accrue()
	head := c.queue[0]
	head.RemainingCC = 0
	head.RemainingMem = 0
	now := c.eng.Now()
	comp := Completion{
		ID:      head.Req.ID,
		Arrival: head.Req.Arrival,
		Start:   head.Start,
		Done:    now,
		// Measured work, as CPI-stack performance counters would report
		// it: elapsed memory time includes the wake penalty the request
		// actually paid, so profiling policies model it.
		ComputeCycles:     head.ElapsedCC,
		MemTime:           sim.Time(head.ElapsedMem),
		QueueLenAtArrival: head.QlenAtArrival,
		ResponseNs:        float64(now - head.Req.Arrival),
		ServiceNs:         float64(now - head.Start),
	}
	c.completions = append(c.completions, comp)
	c.queue = c.queue[1:]
	if obs, ok := c.policy.(CompletionObserver); ok {
		obs.ObserveCompletion(comp)
	}
	if len(c.queue) > 0 {
		c.startService(c.queue[0], false)
		c.decide()
		c.rescheduleCompletion()
		return
	}
	if c.hooks.Idle != nil {
		c.completionGen++ // no completion pending
		c.hooks.Idle(now)
		return
	}
	c.decide()
	c.rescheduleCompletion()
}

func (c *Core) tickEvent(t Ticker, moreArrivals func() bool) {
	c.Accrue()
	f := t.OnTick(c.View())
	if c.hooks.GateTick == nil || c.hooks.GateTick() {
		c.ApplyFreq(f)
	}
	// Keep ticking only while there is work left to do; otherwise the
	// simulation would never drain.
	if (moreArrivals != nil && moreArrivals()) || len(c.queue) > 0 {
		c.eng.After(t.TickEvery(), func() { c.tickEvent(t, moreArrivals) })
	}
}

// QueueLen returns the number of requests in the system (head in service).
func (c *Core) QueueLen() int { return len(c.queue) }

// PendingWorkNs estimates the time to drain the queue at the current
// frequency: the remaining work of every queued request. Dispatchers use
// it for least-work routing. Call Accrue first for an up-to-date value.
func (c *Core) PendingWorkNs() sim.Time {
	var total float64
	for _, a := range c.queue {
		total += a.RemainingCC*1000/float64(c.cur) + a.RemainingMem
	}
	return sim.Time(total)
}

// CurrentMHz returns the frequency the core is executing at.
func (c *Core) CurrentMHz() int { return c.cur }

// Completions returns the completions recorded so far.
func (c *Core) Completions() []Completion { return c.completions }

// Meter exposes the core's energy meter (read-only use).
func (c *Core) Meter() *cpu.EnergyMeter { return c.meter }

// Finalize accrues any trailing span and assembles the core's Result.
// EndTime is the engine's current time.
func (c *Core) Finalize() Result {
	c.Accrue()
	name := ""
	if c.policy != nil {
		name = c.policy.Name()
	}
	return Result{
		Policy:         name,
		Completions:    c.completions,
		ActiveEnergyJ:  c.meter.ActiveEnergyJ(),
		IdleEnergyJ:    c.meter.IdleEnergyJ(),
		ActiveNs:       c.meter.ActiveNs(),
		IdleNs:         c.meter.IdleNs(),
		Residency:      c.meter.Residency(),
		EndTime:        c.eng.Now(),
		FreqTimeline:   c.freqTimeline,
		EnergyTimeline: c.energyTimeline,
	}
}

// Feeder replays a trace into a core: each arrival event schedules the
// next one and enqueues the request, so the event heap holds at most one
// pending arrival per feeder (the same chaining the original server used).
type Feeder struct {
	eng  *sim.Engine
	reqs []workload.Request
	next int
	// deliver routes the arriving request (single core: Enqueue on the one
	// core; cluster: dispatch).
	deliver func(req workload.Request)
}

// NewFeeder prepares a feeder; Start schedules the first arrival.
func NewFeeder(eng *sim.Engine, reqs []workload.Request, deliver func(req workload.Request)) *Feeder {
	return &Feeder{eng: eng, reqs: reqs, deliver: deliver}
}

// Start schedules the first arrival, if any.
func (f *Feeder) Start() {
	if len(f.reqs) > 0 {
		f.eng.At(f.reqs[0].Arrival, f.event)
	}
}

// Remaining reports how many requests have not yet arrived.
func (f *Feeder) Remaining() int { return len(f.reqs) - f.next }

func (f *Feeder) event() {
	req := f.reqs[f.next]
	f.next++
	if f.next < len(f.reqs) {
		f.eng.At(f.reqs[f.next].Arrival, f.event)
	}
	f.deliver(req)
}
