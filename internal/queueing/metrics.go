package queueing

import (
	"rubik/internal/stats"
)

// Responses returns the response latencies in ns of all completions after
// skipping the leading warmupFrac fraction (by completion order). Skipping
// warmup excludes the interval before online-profiled policies (Rubik)
// have built their first model, matching the paper's steady-state
// measurement.
func (r Result) Responses(warmupFrac float64) []float64 {
	cs := r.warm(warmupFrac)
	out := make([]float64, len(cs))
	for i, c := range cs {
		out[i] = c.ResponseNs
	}
	return out
}

// warm returns the completions after the warmup prefix.
func (r Result) warm(warmupFrac float64) []Completion {
	if warmupFrac <= 0 {
		return r.Completions
	}
	skip := int(warmupFrac * float64(len(r.Completions)))
	if skip >= len(r.Completions) {
		return nil
	}
	return r.Completions[skip:]
}

// TailNs returns the q-quantile response latency after warmup. When the
// completion log was streamed out (Config.DropCompletions) it falls back
// to the aggregate response histogram, which covers the whole run —
// warmup cannot be trimmed retroactively from a streamed run.
func (r Result) TailNs(q, warmupFrac float64) float64 {
	if len(r.Completions) == 0 && r.ResponseHist != nil {
		return r.ResponseHist.Quantile(q)
	}
	return stats.Percentile(r.Responses(warmupFrac), q)
}

// ViolationFrac returns the fraction of post-warmup responses above
// boundNs. Like TailNs it falls back to the aggregate histogram when the
// completion log was streamed out (bucket-resolution estimate over the
// whole run, no warmup trim).
func (r Result) ViolationFrac(boundNs, warmupFrac float64) float64 {
	if len(r.Completions) == 0 && r.ResponseHist != nil {
		return r.ResponseHist.FracAbove(boundNs)
	}
	cs := r.warm(warmupFrac)
	if len(cs) == 0 {
		return 0
	}
	n := 0
	for _, c := range cs {
		if c.ResponseNs > boundNs {
			n++
		}
	}
	return float64(n) / float64(len(cs))
}

// EnergyPerRequestJ returns active core energy per completed request — the
// metric of the paper's Figs. 1a and 9b. Served counts completions even
// when the log itself was streamed out.
func (r Result) EnergyPerRequestJ() float64 {
	n := r.Served
	if n == 0 {
		// Hand-assembled Results may carry a completion log without the
		// counter.
		n = len(r.Completions)
	}
	if n == 0 {
		return 0
	}
	return r.ActiveEnergyJ / float64(n)
}

// MeanActivePowerW returns active energy divided by total wall time — the
// "core power" of the paper's Fig. 6 savings comparison.
func (r Result) MeanActivePowerW() float64 {
	total := r.ActiveNs + r.IdleNs
	if total == 0 {
		return 0
	}
	return r.ActiveEnergyJ / (float64(total) / 1e9)
}

// Utilization returns the fraction of wall time the core was serving.
func (r Result) Utilization() float64 {
	total := r.ActiveNs + r.IdleNs
	if total == 0 {
		return 0
	}
	return float64(r.ActiveNs) / float64(total)
}
