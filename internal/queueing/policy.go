// Package queueing simulates a single latency-critical core: a FIFO request
// queue served by a DVFS-capable core, with a pluggable frequency policy
// invoked on every request arrival and completion — the control points the
// paper gives Rubik (Fig. 3: "Rubik adjusts core frequency on each request
// arrival and completion").
//
// The simulation is event-driven and deterministic. Work is split into
// compute cycles (scale with frequency) and memory-bound time (do not), and
// progress between events interleaves the two proportionally.
package queueing

import (
	"rubik/internal/sim"
)

// QueuedRequest is a policy-visible snapshot of one request in the system.
type QueuedRequest struct {
	// Arrival is when the request entered the system.
	Arrival sim.Time
}

// View is the system state handed to a Policy at a decision point. Index 0
// of Queue is the request in service (if any).
//
// Queue aliases a buffer the core reuses across decision points: a policy
// must read it synchronously inside OnEvent/OnTick and must not retain it
// past the call. Race-instrumented builds (`go test -race`) poison
// retained snapshots from another goroutine, so a violation surfaces as a
// data race instead of silent stale data.
type View struct {
	// Now is the current simulated time.
	Now sim.Time
	// CurrentMHz is the frequency the core is executing at.
	CurrentMHz int
	// TargetMHz is the pending DVFS target (equals CurrentMHz if no
	// transition is in flight).
	TargetMHz int
	// Queue lists the requests in the system, head (in service) first.
	Queue []QueuedRequest
	// HeadElapsedCycles is the compute work already performed on the head
	// request — the paper's omega, measured by performance counters.
	HeadElapsedCycles float64
	// HeadElapsedMemNs is the memory-bound time already spent on the head.
	HeadElapsedMemNs sim.Time
}

// Policy chooses core frequencies. OnEvent fires after each arrival and
// each completion; the returned frequency must be a grid step (the server
// rounds up off-grid values); returning 0 or a negative value keeps the
// current setting. OnEvent must consume the View synchronously (see View).
type Policy interface {
	// Name identifies the policy in results and reports.
	Name() string
	// OnEvent returns the desired frequency in MHz.
	OnEvent(v View) int
}

// Ticker is implemented by policies that need periodic work in addition to
// event-driven decisions — Rubik refreshes its target tail tables every
// 100 ms and runs feedback on the same cadence.
type Ticker interface {
	// TickEvery returns the tick period.
	TickEvery() sim.Time
	// OnTick may return a new frequency (same semantics as OnEvent).
	OnTick(v View) int
}

// CompletionObserver is implemented by policies that learn from served
// requests (Rubik profiles per-request compute cycles and memory time).
type CompletionObserver interface {
	// ObserveCompletion is called after each request completes.
	ObserveCompletion(c Completion)
}

// SlackReporter is implemented by policies that can predict how much tail
// headroom the core has at a decision point. Power-budget coordinators use
// it to decide which cores donate frequency first when a shared cap binds:
// a core with slack can run slower without missing its bound. Like
// OnEvent, PredictedSlackNs must consume the View synchronously and must
// not mutate policy state.
type SlackReporter interface {
	// PredictedSlackNs returns the predicted tail slack in nanoseconds at
	// the current operating point (>= 0; 0 = no headroom or unknown).
	PredictedSlackNs(v View) float64
}

// FixedPolicy always requests the same frequency; it is the paper's
// Fixed-frequency baseline.
type FixedPolicy struct {
	MHz int
}

// Name implements Policy.
func (p FixedPolicy) Name() string { return "fixed" }

// OnEvent implements Policy.
func (p FixedPolicy) OnEvent(View) int { return p.MHz }
