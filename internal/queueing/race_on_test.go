//go:build race

package queueing

// raceTestBuild mirrors the race build tag: the race detector allocates
// per instrumentation point, so allocs-per-request guards only hold on
// uninstrumented builds.
const raceTestBuild = true
