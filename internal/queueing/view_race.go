//go:build race

package queueing

// raceEnabled reports whether the race-detector view instrumentation is
// compiled in.
const raceEnabled = true

// Under the race detector every View gets a fresh snapshot, and retireView
// poisons it from an unsynchronized goroutine once the policy call
// returns. A policy that held on to View.Queue and reads it after its
// OnEvent/OnTick call therefore races with the poisoner and `go test
// -race` reports it — turning a silent stale-aliasing bug into a build
// failure. Simulation results are unchanged: the fresh snapshot holds the
// same values the reused buffer would.

func (c *Core) snapshotBuf(n int) []QueuedRequest {
	return make([]QueuedRequest, n)
}

func retireView(q []QueuedRequest) {
	if len(q) == 0 {
		return
	}
	go func() {
		for i := range q {
			q[i] = QueuedRequest{Arrival: -1 << 62}
		}
	}()
}
