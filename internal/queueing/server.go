package queueing

import (
	"rubik/internal/cpu"
	"rubik/internal/sim"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

// Config parameterizes a simulated core.
type Config struct {
	// Grid is the DVFS frequency grid (default: paper Table 2).
	Grid cpu.Grid
	// Power is the core power model.
	Power cpu.PowerModel
	// TransitionLatency is the V/F switch latency (paper Table 2: 4 us;
	// the real-system mode of Fig. 11 uses 130 us).
	TransitionLatency sim.Time
	// WakeLatency is the sleep-exit penalty paid by the first request of a
	// busy period (Haswell C3-like: private caches refill from the warm
	// LLC in microseconds).
	WakeLatency sim.Time
	// InitialMHz is the starting frequency (default: nominal).
	InitialMHz int
	// RecordTimeline enables frequency and active-energy timelines in the
	// Result, used by the transient-response figures (1b, 10).
	RecordTimeline bool
	// ExpectedRequests hints how many requests the core will serve
	// (typically the trace or source length), pre-sizing the completion
	// log and the optional timelines so steady-state appends never
	// reallocate. Purely a capacity hint: it never changes simulation
	// results. When the length is unknown (0 hint, streaming sources) the
	// logs grow geometrically via append, so cost stays amortized O(1)
	// per request.
	ExpectedRequests int
	// DropCompletions switches the core to streaming metrics: per-request
	// records fold into a fixed-size response-latency histogram
	// (Result.ResponseHist) instead of accumulating in
	// Result.Completions, making memory independent of run length.
	// Completion hooks and CompletionObserver policies still see every
	// completion. Use for constant-memory runs of unbounded sources.
	DropCompletions bool
	// Deadline, when > 0, stops the simulation at that time if it has
	// not drained by then — the termination bound for unbounded sources
	// (n < 0 generators, uncapped closed-loop populations), which
	// otherwise reschedule arrivals forever. Requests still in flight at
	// the deadline are not completed. A run that drains earlier is
	// completely unaffected (the deadline is a pure safety bound), so it
	// is safe to set always. 0 (the default) runs to drain. Honored by
	// the Run/RunSource entry points here and in cluster (coloc has its
	// own CoreConfig.Deadline); assemblies driving a Core directly bound
	// the run themselves via sim.Engine.RunUntilOrDrain.
	Deadline sim.Time
}

// FreqSample marks a frequency change: the core runs at MHz from T onward.
type FreqSample struct {
	T   sim.Time
	MHz int
}

// EnergySample records active energy (joules) accrued in the interval
// ending at T since the previous sample.
type EnergySample struct {
	T sim.Time
	J float64
}

// DefaultConfig returns the paper's simulated-CMP configuration.
func DefaultConfig() Config {
	return Config{
		Grid:              cpu.DefaultGrid(),
		Power:             cpu.DefaultPowerModel(),
		TransitionLatency: 4 * sim.Microsecond,
		WakeLatency:       5 * sim.Microsecond,
		InitialMHz:        cpu.NominalMHz,
	}
}

// Completion records one served request.
type Completion struct {
	// ID is the trace request ID.
	ID int
	// Arrival, Start and Done are the request's lifecycle timestamps.
	Arrival, Start, Done sim.Time
	// ComputeCycles and MemTime are the request's *measured* work, as
	// CPI-stack performance counters would report it (elapsed memory time
	// includes stalls the request actually paid, e.g. the wake penalty).
	ComputeCycles float64
	MemTime       sim.Time
	// QueueLenAtArrival is the number of requests already in the system
	// when this one arrived (0 = it found the core idle).
	QueueLenAtArrival int
	// ResponseNs is the end-to-end latency (Done - Arrival).
	ResponseNs float64
	// ServiceNs is the time in service (Done - Start), including DVFS and
	// wake effects.
	ServiceNs float64
}

// Result is the outcome of simulating one trace under one policy.
type Result struct {
	Policy      string
	Completions []Completion
	// Served counts completed requests — equal to len(Completions) unless
	// Config.DropCompletions streamed the records out.
	Served int
	// ResponseHist is the streaming response-latency histogram, populated
	// only under Config.DropCompletions; TailNs falls back to it when the
	// completion log is empty.
	ResponseHist *stats.LogHistogram
	// ActiveEnergyJ is core energy while serving requests; IdleEnergyJ is
	// sleep energy between them. The paper's core power/energy figures use
	// active energy only (Fig. 9b: fixed-frequency energy/request is flat
	// across load).
	ActiveEnergyJ float64
	IdleEnergyJ   float64
	ActiveNs      sim.Time
	IdleNs        sim.Time
	// Residency is the fraction of active time per grid step.
	Residency []float64
	// EndTime is when the last request completed.
	EndTime sim.Time
	// FreqTimeline and EnergyTimeline are populated when
	// Config.RecordTimeline is set.
	FreqTimeline   []FreqSample
	EnergyTimeline []EnergySample
}

// Run simulates the trace under the policy on a dedicated single-core
// engine and returns the result. A materialized trace is just one Source:
// Run is RunSource over the trace's stream, byte-identical to the
// pre-streaming replay loop (the stream hints its length, so even the
// completion-log presizing is identical).
func Run(trace workload.Trace, p Policy, cfg Config) (Result, error) {
	return RunSource(workload.NewTraceSource(trace), p, cfg)
}

// RunSource simulates a streaming request source under the policy on a
// dedicated single-core engine. It is a thin assembly of the shared Core:
// a Feeder pulls the source through one rescheduled arrival handle, the
// policy's Ticker (if any) is scheduled, and the engine drains (or stops
// at Config.Deadline). Nothing on this path materializes the stream, so
// run length is bounded by time, not memory; pair an unbounded source
// with Config.DropCompletions for constant memory and Config.Deadline
// for termination. Completion-aware sources (closed-loop clients) are
// fed every completion.
func RunSource(src workload.Source, p Policy, cfg Config) (Result, error) {
	eng := sim.NewEngine()
	if cfg.ExpectedRequests == 0 {
		if n := src.Len(); n > 0 {
			cfg.ExpectedRequests = n
		}
	}
	c, err := NewCore(eng, p, cfg)
	if err != nil {
		return Result{}, err
	}
	f := NewSourceFeeder(eng, src, c.Enqueue)
	if _, aware := src.(workload.CompletionAware); aware {
		c.SetHooks(Hooks{Completion: func(comp Completion) { f.NotifyCompletion(comp.Done) }})
	}
	f.Start()
	c.StartTicks(func() bool { return f.Remaining() > 0 })
	eng.RunUntilOrDrain(cfg.Deadline)
	return c.Finalize(), nil
}
