package queueing

import (
	"rubik/internal/cpu"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// Config parameterizes a simulated core.
type Config struct {
	// Grid is the DVFS frequency grid (default: paper Table 2).
	Grid cpu.Grid
	// Power is the core power model.
	Power cpu.PowerModel
	// TransitionLatency is the V/F switch latency (paper Table 2: 4 us;
	// the real-system mode of Fig. 11 uses 130 us).
	TransitionLatency sim.Time
	// WakeLatency is the sleep-exit penalty paid by the first request of a
	// busy period (Haswell C3-like: private caches refill from the warm
	// LLC in microseconds).
	WakeLatency sim.Time
	// InitialMHz is the starting frequency (default: nominal).
	InitialMHz int
	// RecordTimeline enables frequency and active-energy timelines in the
	// Result, used by the transient-response figures (1b, 10).
	RecordTimeline bool
	// ExpectedRequests hints how many requests the core will serve
	// (typically the trace length), pre-sizing the completion log and the
	// optional timelines so steady-state appends never reallocate. Purely
	// a capacity hint: it never changes simulation results.
	ExpectedRequests int
}

// FreqSample marks a frequency change: the core runs at MHz from T onward.
type FreqSample struct {
	T   sim.Time
	MHz int
}

// EnergySample records active energy (joules) accrued in the interval
// ending at T since the previous sample.
type EnergySample struct {
	T sim.Time
	J float64
}

// DefaultConfig returns the paper's simulated-CMP configuration.
func DefaultConfig() Config {
	return Config{
		Grid:              cpu.DefaultGrid(),
		Power:             cpu.DefaultPowerModel(),
		TransitionLatency: 4 * sim.Microsecond,
		WakeLatency:       5 * sim.Microsecond,
		InitialMHz:        cpu.NominalMHz,
	}
}

// Completion records one served request.
type Completion struct {
	// ID is the trace request ID.
	ID int
	// Arrival, Start and Done are the request's lifecycle timestamps.
	Arrival, Start, Done sim.Time
	// ComputeCycles and MemTime are the request's *measured* work, as
	// CPI-stack performance counters would report it (elapsed memory time
	// includes stalls the request actually paid, e.g. the wake penalty).
	ComputeCycles float64
	MemTime       sim.Time
	// QueueLenAtArrival is the number of requests already in the system
	// when this one arrived (0 = it found the core idle).
	QueueLenAtArrival int
	// ResponseNs is the end-to-end latency (Done - Arrival).
	ResponseNs float64
	// ServiceNs is the time in service (Done - Start), including DVFS and
	// wake effects.
	ServiceNs float64
}

// Result is the outcome of simulating one trace under one policy.
type Result struct {
	Policy      string
	Completions []Completion
	// ActiveEnergyJ is core energy while serving requests; IdleEnergyJ is
	// sleep energy between them. The paper's core power/energy figures use
	// active energy only (Fig. 9b: fixed-frequency energy/request is flat
	// across load).
	ActiveEnergyJ float64
	IdleEnergyJ   float64
	ActiveNs      sim.Time
	IdleNs        sim.Time
	// Residency is the fraction of active time per grid step.
	Residency []float64
	// EndTime is when the last request completed.
	EndTime sim.Time
	// FreqTimeline and EnergyTimeline are populated when
	// Config.RecordTimeline is set.
	FreqTimeline   []FreqSample
	EnergyTimeline []EnergySample
}

// Run simulates the trace under the policy on a dedicated single-core
// engine and returns the result. It is a thin assembly of the shared Core:
// a Feeder replays the trace, the policy's Ticker (if any) is scheduled,
// and the engine drains.
func Run(trace workload.Trace, p Policy, cfg Config) (Result, error) {
	eng := sim.NewEngine()
	if cfg.ExpectedRequests == 0 {
		cfg.ExpectedRequests = len(trace.Requests)
	}
	c, err := NewCore(eng, p, cfg)
	if err != nil {
		return Result{}, err
	}
	f := NewFeeder(eng, trace.Requests, c.Enqueue)
	f.Start()
	c.StartTicks(func() bool { return f.Remaining() > 0 })
	eng.Run()
	return c.Finalize(), nil
}
