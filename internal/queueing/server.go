package queueing

import (
	"fmt"
	"math"

	"rubik/internal/cpu"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

// Config parameterizes a simulated core.
type Config struct {
	// Grid is the DVFS frequency grid (default: paper Table 2).
	Grid cpu.Grid
	// Power is the core power model.
	Power cpu.PowerModel
	// TransitionLatency is the V/F switch latency (paper Table 2: 4 us;
	// the real-system mode of Fig. 11 uses 130 us).
	TransitionLatency sim.Time
	// WakeLatency is the sleep-exit penalty paid by the first request of a
	// busy period (Haswell C3-like: private caches refill from the warm
	// LLC in microseconds).
	WakeLatency sim.Time
	// InitialMHz is the starting frequency (default: nominal).
	InitialMHz int
	// RecordTimeline enables frequency and active-energy timelines in the
	// Result, used by the transient-response figures (1b, 10).
	RecordTimeline bool
}

// FreqSample marks a frequency change: the core runs at MHz from T onward.
type FreqSample struct {
	T   sim.Time
	MHz int
}

// EnergySample records active energy (joules) accrued in the interval
// ending at T since the previous sample.
type EnergySample struct {
	T sim.Time
	J float64
}

// DefaultConfig returns the paper's simulated-CMP configuration.
func DefaultConfig() Config {
	return Config{
		Grid:              cpu.DefaultGrid(),
		Power:             cpu.DefaultPowerModel(),
		TransitionLatency: 4 * sim.Microsecond,
		WakeLatency:       5 * sim.Microsecond,
		InitialMHz:        cpu.NominalMHz,
	}
}

// Completion records one served request.
type Completion struct {
	// ID is the trace request ID.
	ID int
	// Arrival, Start and Done are the request's lifecycle timestamps.
	Arrival, Start, Done sim.Time
	// ComputeCycles and MemTime are the request's *measured* work, as
	// CPI-stack performance counters would report it (elapsed memory time
	// includes stalls the request actually paid, e.g. the wake penalty).
	ComputeCycles float64
	MemTime       sim.Time
	// QueueLenAtArrival is the number of requests already in the system
	// when this one arrived (0 = it found the core idle).
	QueueLenAtArrival int
	// ResponseNs is the end-to-end latency (Done - Arrival).
	ResponseNs float64
	// ServiceNs is the time in service (Done - Start), including DVFS and
	// wake effects.
	ServiceNs float64
}

// Result is the outcome of simulating one trace under one policy.
type Result struct {
	Policy      string
	Completions []Completion
	// ActiveEnergyJ is core energy while serving requests; IdleEnergyJ is
	// sleep energy between them. The paper's core power/energy figures use
	// active energy only (Fig. 9b: fixed-frequency energy/request is flat
	// across load).
	ActiveEnergyJ float64
	IdleEnergyJ   float64
	ActiveNs      sim.Time
	IdleNs        sim.Time
	// Residency is the fraction of active time per grid step.
	Residency []float64
	// EndTime is when the last request completed.
	EndTime sim.Time
	// FreqTimeline and EnergyTimeline are populated when
	// Config.RecordTimeline is set.
	FreqTimeline   []FreqSample
	EnergyTimeline []EnergySample
}

type activeReq struct {
	req          workload.Request
	remainingCC  float64 // compute cycles left
	remainingMem float64 // memory-bound ns left
	elapsedCC    float64
	elapsedMem   float64
	start        sim.Time
	qlenAtArr    int
}

type server struct {
	eng    *sim.Engine
	cfg    Config
	policy Policy

	trace       []workload.Request
	nextArrival int

	queue []*activeReq
	meter *cpu.EnergyMeter

	cur           int
	target        int
	switchPending bool
	lastAccrual   sim.Time
	completionGen uint64

	completions []Completion

	freqTimeline   []FreqSample
	energyTimeline []EnergySample
}

// Run simulates the trace under the policy and returns the result.
func Run(trace workload.Trace, p Policy, cfg Config) (Result, error) {
	if cfg.Grid.Len() == 0 {
		return Result{}, fmt.Errorf("queueing: config has empty grid")
	}
	if cfg.InitialMHz == 0 {
		cfg.InitialMHz = cpu.NominalMHz
	}
	if cfg.Grid.Index(cfg.InitialMHz) < 0 {
		return Result{}, fmt.Errorf("queueing: initial frequency %d not on grid", cfg.InitialMHz)
	}
	s := &server{
		eng:    sim.NewEngine(),
		cfg:    cfg,
		policy: p,
		trace:  trace.Requests,
		meter:  cpu.NewEnergyMeter(cfg.Grid, cfg.Power),
		cur:    cfg.InitialMHz,
		target: cfg.InitialMHz,
	}
	if cfg.RecordTimeline {
		s.freqTimeline = append(s.freqTimeline, FreqSample{T: 0, MHz: s.cur})
	}
	if len(s.trace) > 0 {
		s.eng.At(s.trace[0].Arrival, s.arrivalEvent)
	}
	if t, ok := p.(Ticker); ok && t.TickEvery() > 0 {
		s.eng.After(t.TickEvery(), func() { s.tickEvent(t) })
	}
	s.eng.Run()
	return Result{
		Policy:         p.Name(),
		Completions:    s.completions,
		ActiveEnergyJ:  s.meter.ActiveEnergyJ(),
		IdleEnergyJ:    s.meter.IdleEnergyJ(),
		ActiveNs:       s.meter.ActiveNs(),
		IdleNs:         s.meter.IdleNs(),
		Residency:      s.meter.Residency(),
		EndTime:        s.eng.Now(),
		FreqTimeline:   s.freqTimeline,
		EnergyTimeline: s.energyTimeline,
	}, nil
}

// accrue charges energy and advances the head request's progress from the
// last accrual point to now. Frequency is constant over that span because
// every frequency change is itself an event that accrues first.
func (s *server) accrue() {
	now := s.eng.Now()
	dt := now - s.lastAccrual
	s.lastAccrual = now
	if dt <= 0 {
		return
	}
	if len(s.queue) == 0 {
		s.meter.AccrueIdle(dt)
		return
	}
	s.meter.AccrueActive(dt, s.cur)
	if s.cfg.RecordTimeline {
		j := s.meter.Model.ActivePower(s.cur) * float64(dt) / 1e9
		s.energyTimeline = append(s.energyTimeline, EnergySample{T: now, J: j})
	}
	head := s.queue[0]
	total := head.remainingCC*1000/float64(s.cur) + head.remainingMem
	if total <= 0 {
		return
	}
	alpha := float64(dt) / total
	if alpha > 1 {
		alpha = 1
	}
	dCC := head.remainingCC * alpha
	dMem := head.remainingMem * alpha
	head.remainingCC -= dCC
	head.remainingMem -= dMem
	head.elapsedCC += dCC
	head.elapsedMem += dMem
}

func (s *server) view() View {
	q := make([]QueuedRequest, len(s.queue))
	for i, a := range s.queue {
		q[i] = QueuedRequest{Arrival: a.req.Arrival}
	}
	v := View{
		Now:        s.eng.Now(),
		CurrentMHz: s.cur,
		TargetMHz:  s.target,
		Queue:      q,
	}
	if len(s.queue) > 0 {
		v.HeadElapsedCycles = s.queue[0].elapsedCC
		v.HeadElapsedMemNs = sim.Time(s.queue[0].elapsedMem)
	}
	return v
}

// decide asks the policy for a frequency and applies it.
func (s *server) decide() {
	f := s.policy.OnEvent(s.view())
	s.applyFreq(f)
}

// applyFreq retargets the DVFS actuator. A transition takes
// TransitionLatency; while one is in flight, new decisions update the
// target and the in-flight transition applies the latest target when it
// completes (actuation lag; the core keeps running at the old frequency
// until then, which is how the paper models V/F switches).
func (s *server) applyFreq(fMHz int) {
	if fMHz <= 0 {
		return
	}
	if s.cfg.Grid.Index(fMHz) < 0 {
		fMHz = s.cfg.Grid.ClampUp(float64(fMHz))
	}
	s.target = fMHz
	if fMHz == s.cur {
		return
	}
	if s.cfg.TransitionLatency == 0 {
		s.cur = fMHz
		s.recordFreq()
		s.rescheduleCompletion()
		return
	}
	if !s.switchPending {
		s.switchPending = true
		s.eng.After(s.cfg.TransitionLatency, s.switchEvent)
	}
}

func (s *server) switchEvent() {
	s.accrue()
	s.switchPending = false
	if s.cur != s.target {
		s.cur = s.target
		s.recordFreq()
		s.rescheduleCompletion()
	}
}

func (s *server) recordFreq() {
	if s.cfg.RecordTimeline {
		s.freqTimeline = append(s.freqTimeline, FreqSample{T: s.eng.Now(), MHz: s.cur})
	}
}

// rescheduleCompletion re-projects the head's completion time at the
// current frequency. Stale completion events are invalidated by the
// generation counter.
func (s *server) rescheduleCompletion() {
	s.completionGen++
	if len(s.queue) == 0 {
		return
	}
	head := s.queue[0]
	total := head.remainingCC*1000/float64(s.cur) + head.remainingMem
	dur := sim.Time(math.Ceil(total))
	gen := s.completionGen
	s.eng.After(dur, func() { s.completionEvent(gen) })
}

func (s *server) arrivalEvent() {
	s.accrue()
	req := s.trace[s.nextArrival]
	s.nextArrival++
	if s.nextArrival < len(s.trace) {
		s.eng.At(s.trace[s.nextArrival].Arrival, s.arrivalEvent)
	}
	a := &activeReq{
		req:          req,
		remainingCC:  req.ComputeCycles,
		remainingMem: float64(req.MemTime),
		qlenAtArr:    len(s.queue),
	}
	wasIdle := len(s.queue) == 0
	s.queue = append(s.queue, a)
	if wasIdle {
		a.start = s.eng.Now()
		// Sleep exit: the first request of a busy period pays the wake
		// penalty as additional non-scalable time.
		a.remainingMem += float64(s.cfg.WakeLatency)
	}
	s.decide()
	if wasIdle {
		s.rescheduleCompletion()
	}
}

func (s *server) completionEvent(gen uint64) {
	if gen != s.completionGen {
		return // superseded by a frequency change
	}
	s.accrue()
	head := s.queue[0]
	head.remainingCC = 0
	head.remainingMem = 0
	now := s.eng.Now()
	c := Completion{
		ID:      head.req.ID,
		Arrival: head.req.Arrival,
		Start:   head.start,
		Done:    now,
		// Measured work, as CPI-stack performance counters would report
		// it: elapsed memory time includes the wake penalty the request
		// actually paid, so profiling policies model it.
		ComputeCycles:     head.elapsedCC,
		MemTime:           sim.Time(head.elapsedMem),
		QueueLenAtArrival: head.qlenAtArr,
		ResponseNs:        float64(now - head.req.Arrival),
		ServiceNs:         float64(now - head.start),
	}
	s.completions = append(s.completions, c)
	s.queue = s.queue[1:]
	if obs, ok := s.policy.(CompletionObserver); ok {
		obs.ObserveCompletion(c)
	}
	if len(s.queue) > 0 {
		s.queue[0].start = now
	}
	s.decide()
	s.rescheduleCompletion()
}

func (s *server) tickEvent(t Ticker) {
	s.accrue()
	f := t.OnTick(s.view())
	s.applyFreq(f)
	// Keep ticking only while there is work left to do; otherwise the
	// simulation would never drain.
	if s.nextArrival < len(s.trace) || len(s.queue) > 0 {
		s.eng.After(t.TickEvery(), func() { s.tickEvent(t) })
	}
}
