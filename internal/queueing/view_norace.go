//go:build !race

package queueing

// raceEnabled reports whether the race-detector view instrumentation is
// compiled in (see view_race.go).
const raceEnabled = false

// snapshotBuf returns the core-owned snapshot buffer, reused across
// decision points so a steady-state View performs zero allocations. The
// View contract (read synchronously, do not retain) is what makes the
// reuse safe; race-instrumented builds enforce it.
func (c *Core) snapshotBuf(n int) []QueuedRequest {
	if cap(c.viewQueue) < n {
		c.viewQueue = make([]QueuedRequest, n)
	}
	return c.viewQueue[:n]
}

// retireView marks the snapshot as dead after the policy call returns. A
// no-op without the race detector: the buffer is simply overwritten by the
// next View.
func retireView([]QueuedRequest) {}
