package queueing

import (
	"reflect"
	"testing"

	"rubik/internal/sim"
	"rubik/internal/workload"
)

// TestRunSourceMatchesRun is the single-core half of the tentpole
// property: streaming Poisson and StepLoad sources through RunSource
// produces Results deeply identical to materializing the same seed's
// trace and replaying it through Run — same completions, same energy,
// same timelines, to the last bit.
func TestRunSourceMatchesRun(t *testing.T) {
	app := workload.Masstree()
	step, err := workload.NewStepLoad(
		workload.Phase{Start: 0, RatePerSec: app.RateForLoad(0.3)},
		workload.Phase{Start: sim.Second / 4, RatePerSec: app.RateForLoad(0.7)},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		arrivals workload.ArrivalProcess
	}{
		{"poisson", workload.Poisson{RatePerSec: app.RateForLoad(0.5)}},
		{"step", step},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n, seed = 2500, 77
			cfg := DefaultConfig()
			cfg.RecordTimeline = true

			tr := workload.Generate(app, tc.arrivals, n, seed)
			want, err := Run(tr, FixedPolicy{MHz: 2000}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunSource(workload.NewGenSource(app, tc.arrivals, n, seed), FixedPolicy{MHz: 2000}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("streamed Result differs from materialized replay")
			}
			if got.Served != n || len(got.Completions) != n {
				t.Fatalf("served %d/%d of %d", got.Served, len(got.Completions), n)
			}
		})
	}
}

// TestDropCompletionsStreamsMetrics checks the streaming-metrics mode:
// identical energy/time accounting, no completion log, and a histogram
// tail within the bucket resolution of the exact tail.
func TestDropCompletionsStreamsMetrics(t *testing.T) {
	app := workload.Masstree()
	const n, seed = 4000, 5
	full, err := RunSource(workload.NewLoadSource(app, 0.5, n, seed), FixedPolicy{MHz: 2400}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DropCompletions = true
	lean, err := RunSource(workload.NewLoadSource(app, 0.5, n, seed), FixedPolicy{MHz: 2400}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lean.Completions) != 0 {
		t.Fatalf("DropCompletions retained %d completions", len(lean.Completions))
	}
	if lean.Served != n {
		t.Fatalf("served %d of %d", lean.Served, n)
	}
	if lean.ActiveEnergyJ != full.ActiveEnergyJ || lean.EndTime != full.EndTime {
		t.Fatal("streaming metrics changed the simulation")
	}
	if lean.EnergyPerRequestJ() != full.EnergyPerRequestJ() {
		t.Fatal("energy/request diverged")
	}
	exact := full.TailNs(0.95, 0)
	approx := lean.TailNs(0.95, 0)
	if rel := (approx - exact) / exact; rel > 0.08 || rel < -0.08 {
		t.Fatalf("histogram tail %.0f vs exact %.0f (rel %.3f)", approx, exact, rel)
	}
	// ViolationFrac must fall back to the histogram too, not report a
	// silent 0 for streamed runs.
	exactViol := full.ViolationFrac(exact, 0)
	leanViol := lean.ViolationFrac(exact, 0)
	if leanViol == 0 || leanViol > exactViol+0.03 || leanViol < exactViol-0.03 {
		t.Fatalf("streamed ViolationFrac %.4f vs exact %.4f", leanViol, exactViol)
	}
}

// TestClosedLoopRun drives a closed-loop population through RunSource:
// every spawned request must complete, in-flight never exceeds the
// population, and the run is deterministic.
func TestClosedLoopRun(t *testing.T) {
	app := workload.Masstree()
	cl := workload.ClosedLoop{
		App:       app,
		Clients:   8,
		MeanThink: sim.Time(10 * app.MeanServiceNsAtNominal()),
		N:         2000,
		Seed:      9,
	}
	run := func() Result {
		res, err := RunSource(cl.NewSource(), FixedPolicy{MHz: 2400}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Served != 2000 {
		t.Fatalf("closed loop served %d of 2000", a.Served)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("closed-loop run not deterministic")
	}
	// Self-throttling: at most Clients requests are ever in the system.
	for i, c := range a.Completions {
		if c.QueueLenAtArrival >= cl.Clients {
			t.Fatalf("completion %d found %d in system with %d clients",
				i, c.QueueLenAtArrival, cl.Clients)
		}
	}
	// Each client's next request arrives only after its previous one
	// completed: arrivals never outrun completions by more than Clients.
	if len(a.Completions) > 0 {
		last := a.Completions[len(a.Completions)-1]
		if last.Done < last.Arrival {
			t.Fatal("bogus completion ordering")
		}
	}
}

// TestDeadlineBoundsUnboundedSource checks the termination story for
// n<0 streams: RunSource stops at Config.Deadline instead of spinning on
// an arrival handle that reschedules forever.
func TestDeadlineBoundsUnboundedSource(t *testing.T) {
	app := workload.Masstree()
	cfg := DefaultConfig()
	cfg.DropCompletions = true
	cfg.Deadline = 50 * sim.Millisecond
	res, err := RunSource(workload.NewLoadSource(app, 0.5, -1, 7), FixedPolicy{MHz: 2400}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EndTime != cfg.Deadline {
		t.Fatalf("end time %v, want the deadline %v", res.EndTime, cfg.Deadline)
	}
	// ~50ms at 50% load of a ~0.15ms-service app: hundreds of requests.
	if res.Served < 50 {
		t.Fatalf("served only %d before the deadline", res.Served)
	}
	// A run that drains before the deadline must be completely
	// unaffected — the deadline is a pure safety bound, not an extension
	// of the run's wall clock (which would corrupt utilization/power).
	plain, err := RunSource(workload.NewLoadSource(app, 0.5, 300, 7), FixedPolicy{MHz: 2400}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bounded := DefaultConfig()
	bounded.Deadline = 3600 * sim.Second
	got, err := RunSource(workload.NewLoadSource(app, 0.5, 300, 7), FixedPolicy{MHz: 2400}, bounded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, plain) {
		t.Fatal("an unreached deadline perturbed a draining run")
	}
}

// TestStreamingHotPathAllocs is the allocs/op guard for the streaming
// ingest path: a long run through an unknown-length source must stay
// amortized allocation-free per request (geometric log growth only).
func TestStreamingHotPathAllocs(t *testing.T) {
	if raceTestBuild {
		t.Skip("race instrumentation allocates; the guard holds uninstrumented")
	}
	app := workload.Masstree()
	const n = 30000
	cfg := DefaultConfig()
	cfg.DropCompletions = true
	// Unbounded-length wrapper: hides Len so no presizing hint exists.
	allocs := testing.AllocsPerRun(1, func() {
		src := unknownLen{workload.NewLoadSource(app, 0.5, n, 3)}
		res, err := RunSource(src, FixedPolicy{MHz: 2400}, cfg)
		if err != nil || res.Served != n {
			t.Fatalf("run failed: %v served=%d", err, res.Served)
		}
	})
	if perReq := allocs / n; perReq > 0.05 {
		t.Errorf("streaming path allocates %.3f allocs/request (total %.0f for %d)", perReq, allocs, n)
	}
}

// unknownLen masks a source's length, as an unbounded generator would.
type unknownLen struct{ src workload.Source }

func (u unknownLen) Next() (workload.Request, bool) { return u.src.Next() }
func (u unknownLen) Len() int                       { return -1 }
func (u unknownLen) Reset()                         { u.src.Reset() }

// TestFeederNotifyCompletionInert checks NotifyCompletion is a no-op for
// ordinary sources (no spurious rescheduling).
func TestFeederNotifyCompletionInert(t *testing.T) {
	eng := sim.NewEngine()
	tr := workload.GenerateAtLoad(workload.Masstree(), 0.5, 10, 1)
	var got []workload.Request
	f := NewSourceFeeder(eng, tr.Source(), func(r workload.Request) { got = append(got, r) })
	f.Start()
	f.NotifyCompletion(12345) // before any arrival: must not disturb the schedule
	eng.Run()
	if len(got) != 10 {
		t.Fatalf("delivered %d of 10", len(got))
	}
	if !reflect.DeepEqual(got, tr.Requests) {
		t.Fatal("delivery order changed")
	}
}
