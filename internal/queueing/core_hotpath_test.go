package queueing

import (
	"math"
	"os"
	"os/exec"
	"strings"
	"testing"

	"rubik/internal/sim"
	"rubik/internal/workload"
)

// checkingPolicy switches frequency with queue depth (exercising the
// pending-work rescale paths) and cross-checks the incremental
// queue-length/pending-work counters against the O(queue) reference scan
// at every decision point.
type checkingPolicy struct {
	t     *testing.T
	c     *Core
	freqs []int
}

func (p *checkingPolicy) Name() string { return "checking" }
func (p *checkingPolicy) OnEvent(v View) int {
	if got, want := p.c.QueueLen(), len(v.Queue); got != want {
		p.t.Fatalf("QueueLen() = %d, want %d", got, want)
	}
	// The counters accumulate in a different order than the per-request
	// scan ((a+b)-d vs (a-d)+b), so the float sums can differ in the last
	// ulp and the truncated ns by at most 1. The pin is therefore ±1 ns;
	// the golden tests separately prove the pinned experiments (including
	// leastwork clusterscale) route byte-identically to the old scan.
	inc, scan := p.c.PendingWorkNs(), p.c.pendingWorkScan()
	if d := inc - scan; d < -1 || d > 1 {
		p.t.Fatalf("incremental PendingWorkNs %d diverged from scan %d (queue %d)",
			inc, scan, p.c.QueueLen())
	}
	return p.freqs[len(v.Queue)%len(p.freqs)]
}

// TestPendingWorkCountersMatchScan pins the O(1) incremental pending-work
// counters (the jsq/leastwork dispatch path) to the queue rescan they
// replaced, across arrivals, completions, frequency changes and wake
// inflation.
func TestPendingWorkCountersMatchScan(t *testing.T) {
	app := workload.Masstree()
	tr := workload.GenerateAtLoad(app, 0.9, 3000, 11) // high load: deep queues
	cfg := DefaultConfig()                            // 4 us transitions, 5 us wake
	p := &checkingPolicy{t: t, freqs: []int{1200, 3400, 2000, 2700}}
	eng := sim.NewEngine()
	c, err := NewCore(eng, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.c = c
	f := NewFeeder(eng, tr.Requests, c.Enqueue)
	f.Start()
	eng.Run()
	res := c.Finalize()
	if len(res.Completions) != len(tr.Requests) {
		t.Fatalf("served %d of %d requests", len(res.Completions), len(tr.Requests))
	}
	if got := c.PendingWorkNs(); got != 0 {
		t.Fatalf("drained core reports pending work %d", got)
	}
}

// TestPendingWorkCountersWithHooks covers the coloc shape: a StartService
// hook inflating the head's remaining work must flow into the counters.
func TestPendingWorkCountersWithHooks(t *testing.T) {
	app := workload.Masstree()
	tr := workload.GenerateAtLoad(app, 0.7, 1500, 5)
	cfg := DefaultConfig()
	p := &checkingPolicy{t: t, freqs: []int{2400, 1600}}
	eng := sim.NewEngine()
	c, err := NewCore(eng, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.c = c
	c.SetHooks(Hooks{
		StartService: func(a *ActiveRequest, preempting bool) {
			if preempting {
				a.RemainingCC += 50_000 // re-warm cycles
				a.RemainingMem += 2_000 // preemption latency
			}
		},
	})
	f := NewFeeder(eng, tr.Requests, c.Enqueue)
	f.Start()
	eng.Run()
	if got := len(c.Completions()); got != len(tr.Requests) {
		t.Fatalf("served %d of %d requests", got, len(tr.Requests))
	}
}

// TestRingBufferWrapFIFO forces the request ring through growth and many
// wraparounds and checks FIFO order and arrival-population stamps survive.
func TestRingBufferWrapFIFO(t *testing.T) {
	// Bursts of 40 (past the initial ring capacity of 16) arriving faster
	// than they drain, many times over, so head wraps the ring repeatedly.
	var reqs []workload.Request
	var at sim.Time
	id := 0
	for burst := 0; burst < 30; burst++ {
		for i := 0; i < 40; i++ {
			reqs = append(reqs, workload.Request{
				ID: id, Arrival: at, ComputeCycles: 24_000, // 10 us at 2.4 GHz
			})
			id++
			at += 2_000 // 2 us apart: queue builds
		}
		at += 600_000 // drain gap
	}
	res, err := Run(workload.Trace{Requests: reqs}, FixedPolicy{MHz: 2400}, bareConfig(2400))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != len(reqs) {
		t.Fatalf("served %d of %d", len(res.Completions), len(reqs))
	}
	prevDone := sim.Time(-1)
	for i, comp := range res.Completions {
		if comp.ID != i {
			t.Fatalf("completion %d has ID %d: FIFO order broken", i, comp.ID)
		}
		if comp.Done < prevDone {
			t.Fatalf("completion %d done at %d before predecessor at %d", i, comp.Done, prevDone)
		}
		prevDone = comp.Done
	}
	// Spot-check the arrival-population stamp on the second burst: request
	// 40 arrives into a fresh busy period, request 41 finds one in system.
	if res.Completions[41].QueueLenAtArrival == 0 {
		t.Fatal("queue-length stamp lost across ring wrap")
	}
}

// retainingPolicy deliberately violates the View contract: it keeps the
// Queue slice from every decision and remembers what the slice held at
// retention time.
type retainingPolicy struct {
	retained []QueuedRequest
	copied   []QueuedRequest
}

func (p *retainingPolicy) Name() string { return "retaining" }
func (p *retainingPolicy) OnEvent(v View) int {
	if len(v.Queue) >= 2 && p.retained == nil {
		p.retained = v.Queue
		p.copied = append([]QueuedRequest(nil), v.Queue...)
	}
	return 0
}

func retentionTrace() workload.Trace {
	return workload.Trace{Requests: []workload.Request{
		{ID: 0, Arrival: 0, ComputeCycles: 2_400_000},
		{ID: 1, Arrival: 100_000, ComputeCycles: 2_400_000},
		{ID: 2, Arrival: 3_000_000, ComputeCycles: 240_000},
		{ID: 3, Arrival: 3_050_000, ComputeCycles: 240_000},
	}}
}

// TestViewRetentionIsUnsafe documents and pins the View contract from the
// non-race side: the Queue snapshot aliases a core-owned buffer, so a
// policy that retains it observes the buffer's later contents, not its
// snapshot. (Race-instrumented builds turn the same violation into a data
// race; see TestViewRetentionCaughtByRaceDetector.)
func TestViewRetentionIsUnsafe(t *testing.T) {
	if raceEnabled {
		// Under -race the retained slice is poisoned from another
		// goroutine; reading it here would be the very race the mechanism
		// exists to report.
		t.Skip("race-instrumented build: retention is caught by the race detector instead")
	}
	p := &retainingPolicy{}
	if _, err := Run(retentionTrace(), p, bareConfig(2400)); err != nil {
		t.Fatal(err)
	}
	if p.retained == nil {
		t.Fatal("trace never reached queue depth 2")
	}
	same := true
	for i := range p.retained {
		if p.retained[i] != p.copied[i] {
			same = false
		}
	}
	if same {
		t.Fatal("retained snapshot survived unchanged; buffer reuse contract not exercised")
	}
}

// TestViewRetentionRaceProbe is the subprocess half of the race test: it
// retains View.Queue and then reads it, which races with the poisoner
// under -race. Only run deliberately (RUBIK_VIEW_RACE_PROBE=1).
func TestViewRetentionRaceProbe(t *testing.T) {
	if os.Getenv("RUBIK_VIEW_RACE_PROBE") == "" {
		t.Skip("probe only runs under TestViewRetentionCaughtByRaceDetector")
	}
	p := &retainingPolicy{}
	if _, err := Run(retentionTrace(), p, bareConfig(2400)); err != nil {
		t.Fatal(err)
	}
	var sum sim.Time
	for _, q := range p.retained { // unsynchronized read of a poisoned slice
		sum += q.Arrival
	}
	t.Logf("retained sum %d", sum)
}

// TestViewRetentionCaughtByRaceDetector asserts the enforcement works: a
// policy retaining View.Queue fails `go test -race` with a data-race
// report. It shells out so the expected failure cannot fail this process.
func TestViewRetentionCaughtByRaceDetector(t *testing.T) {
	if raceEnabled {
		t.Skip("already race-instrumented; the probe would fail this process")
	}
	if testing.Short() {
		t.Skip("subprocess go test -race in short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cmd := exec.Command(goBin, "test", "-race", "-count=1",
		"-run", "TestViewRetentionRaceProbe", "rubik/internal/queueing")
	cmd.Env = append(os.Environ(), "RUBIK_VIEW_RACE_PROBE=1")
	out, err := cmd.CombinedOutput()
	s := string(out)
	if err == nil {
		t.Fatalf("retaining policy passed under -race; poisoning is broken:\n%s", s)
	}
	if strings.Contains(s, "cgo: C compiler") || strings.Contains(s, "race is not supported") {
		t.Skipf("-race unavailable in this environment:\n%s", s)
	}
	if !strings.Contains(s, "DATA RACE") {
		t.Fatalf("expected a data-race report, got:\n%s", s)
	}
}

// TestFeederSingleArrivalEvent pins the feeder satellite: replaying a
// trace keeps exactly one pending arrival event, rescheduled in place,
// instead of a closure per request.
func TestFeederSingleArrivalEvent(t *testing.T) {
	app := workload.Masstree()
	tr := workload.GenerateAtLoad(app, 0.5, 200, 3)
	eng := sim.NewEngine()
	c, err := NewCore(eng, FixedPolicy{MHz: 2400}, bareConfig(2400))
	if err != nil {
		t.Fatal(err)
	}
	f := NewFeeder(eng, tr.Requests, c.Enqueue)
	f.Start()
	if eng.Pending() != 1 {
		t.Fatalf("pending after Start = %d, want 1", eng.Pending())
	}
	for eng.Step() {
		// At most: one arrival (feeder), one completion, one DVFS switch.
		if got := eng.Pending(); got > 3 {
			t.Fatalf("pending events grew to %d; feeder is not reusing its handle", got)
		}
	}
	if got := len(c.Completions()); got != len(tr.Requests) {
		t.Fatalf("served %d of %d", got, len(tr.Requests))
	}
	if math.Abs(float64(f.Remaining())) != 0 {
		t.Fatalf("feeder left %d requests undelivered", f.Remaining())
	}
}
