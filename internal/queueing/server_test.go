package queueing

import (
	"math"
	"testing"

	"rubik/internal/cpu"
	"rubik/internal/sim"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

// expApp builds a memory-free app with exponential service times, for
// comparing against M/M/1 queueing theory.
func expApp(meanCycles float64) workload.LCApp {
	return workload.LCApp{
		Name:     "exp",
		Compute:  stats.Exponential{MeanValue: meanCycles},
		MemFrac:  0,
		Requests: 1000,
	}
}

func bareConfig(fMHz int) Config {
	cfg := DefaultConfig()
	cfg.TransitionLatency = 0
	cfg.WakeLatency = 0
	cfg.InitialMHz = fMHz
	return cfg
}

func TestRunValidation(t *testing.T) {
	tr := workload.Trace{}
	if _, err := Run(tr, FixedPolicy{MHz: 2400}, Config{}); err == nil {
		t.Fatal("empty grid must error")
	}
	cfg := DefaultConfig()
	cfg.InitialMHz = 999
	if _, err := Run(tr, FixedPolicy{MHz: 2400}, cfg); err == nil {
		t.Fatal("off-grid initial frequency must error")
	}
}

func TestEmptyTrace(t *testing.T) {
	res, err := Run(workload.Trace{}, FixedPolicy{MHz: 2400}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != 0 || res.ActiveEnergyJ != 0 {
		t.Fatalf("empty trace produced output: %+v", res)
	}
}

func TestSingleRequestTiming(t *testing.T) {
	tr := workload.Trace{Requests: []workload.Request{
		{ID: 0, Arrival: 1000, ComputeCycles: 2400_000, MemTime: 50_000},
	}}
	res, err := Run(tr, FixedPolicy{MHz: 2400}, bareConfig(2400))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != 1 {
		t.Fatalf("completions = %d", len(res.Completions))
	}
	c := res.Completions[0]
	// 2.4M cycles at 2400 MHz = 1 ms; plus 50 us memory.
	want := 1_050_000.0
	if math.Abs(c.ResponseNs-want) > 2 {
		t.Fatalf("response = %v ns, want %v", c.ResponseNs, want)
	}
	if c.Start != 1000 || c.QueueLenAtArrival != 0 {
		t.Fatalf("unexpected lifecycle: %+v", c)
	}
	// Energy: P(2400 MHz) for 1.05 ms.
	wantJ := cpu.DefaultPowerModel().ActivePower(2400) * want / 1e9
	if math.Abs(res.ActiveEnergyJ-wantJ) > 1e-9 {
		t.Fatalf("energy = %v, want %v", res.ActiveEnergyJ, wantJ)
	}
}

func TestWakeLatencyAppliesToFirstOfBusyPeriod(t *testing.T) {
	cfg := bareConfig(2400)
	cfg.WakeLatency = 10_000
	tr := workload.Trace{Requests: []workload.Request{
		{ID: 0, Arrival: 0, ComputeCycles: 240_000}, // 100 us
		{ID: 1, Arrival: 1, ComputeCycles: 240_000}, // queued behind 0
	}}
	res, err := Run(tr, FixedPolicy{MHz: 2400}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First request pays wake latency: 110 us.
	if math.Abs(res.Completions[0].ResponseNs-110_000) > 2 {
		t.Fatalf("first response = %v", res.Completions[0].ResponseNs)
	}
	// Second starts when first done; no wake penalty: done at 210 us.
	if math.Abs(res.Completions[1].ResponseNs-(210_000-1)) > 2 {
		t.Fatalf("second response = %v", res.Completions[1].ResponseNs)
	}
}

func TestFIFOOrderAndConservation(t *testing.T) {
	tr := workload.GenerateAtLoad(workload.Masstree(), 0.6, 3000, 4)
	res, err := Run(tr, FixedPolicy{MHz: 2400}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != len(tr.Requests) {
		t.Fatalf("served %d of %d", len(res.Completions), len(tr.Requests))
	}
	for i, c := range res.Completions {
		if c.ID != i {
			t.Fatalf("completion %d has ID %d: FIFO violated", i, c.ID)
		}
		if i > 0 && c.Done < res.Completions[i-1].Done {
			t.Fatal("completions out of time order")
		}
		if c.ResponseNs < c.ServiceNs-1e-9 {
			t.Fatal("response below service time")
		}
	}
}

func TestMM1MeanResponse(t *testing.T) {
	// M/M/1 at load rho: E[response] = E[S] / (1 - rho).
	app := expApp(240_000) // 100 us at 2.4 GHz
	rho := 0.5
	tr := workload.GenerateAtLoad(app, rho, 60000, 9)
	res, err := Run(tr, FixedPolicy{MHz: 2400}, bareConfig(2400))
	if err != nil {
		t.Fatal(err)
	}
	var w stats.Welford
	for _, c := range res.Completions {
		w.Add(c.ResponseNs)
	}
	want := 100_000.0 / (1 - rho)
	if math.Abs(w.Mean()-want) > 0.08*want {
		t.Fatalf("mean response %v ns, want M/M/1 %v", w.Mean(), want)
	}
}

func TestMD1MeanWait(t *testing.T) {
	// M/D/1 (deterministic service): Pollaczek-Khinchine gives
	// E[wait in queue] = rho * E[S] / (2 * (1 - rho)) — half the M/M/1
	// wait. This exercises the simulator against a second closed form.
	app := workload.LCApp{
		Name:     "det",
		Compute:  stats.Constant{V: 240_000}, // exactly 100 us at 2.4 GHz
		MemFrac:  0,
		Requests: 1000,
	}
	rho := 0.6
	tr := workload.GenerateAtLoad(app, rho, 60000, 14)
	res, err := Run(tr, FixedPolicy{MHz: 2400}, bareConfig(2400))
	if err != nil {
		t.Fatal(err)
	}
	var w stats.Welford
	for _, c := range res.Completions {
		w.Add(c.ResponseNs - c.ServiceNs) // waiting time
	}
	want := rho * 100_000 / (2 * (1 - rho))
	if math.Abs(w.Mean()-want) > 0.08*want {
		t.Fatalf("mean wait %v ns, want M/D/1 %v", w.Mean(), want)
	}
}

func TestUtilizationMatchesLoad(t *testing.T) {
	app := expApp(240_000)
	tr := workload.GenerateAtLoad(app, 0.3, 30000, 2)
	res, err := Run(tr, FixedPolicy{MHz: 2400}, bareConfig(2400))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Utilization()-0.3) > 0.03 {
		t.Fatalf("utilization %v, want ~0.3", res.Utilization())
	}
}

func TestHigherFrequencyShortensResponses(t *testing.T) {
	tr := workload.GenerateAtLoad(workload.Masstree(), 0.5, 2000, 3)
	lo, err := Run(tr, FixedPolicy{MHz: 1200}, bareConfig(1200))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(tr, FixedPolicy{MHz: 3400}, bareConfig(3400))
	if err != nil {
		t.Fatal(err)
	}
	if hi.TailNs(0.95, 0) >= lo.TailNs(0.95, 0) {
		t.Fatalf("p95 at 3.4GHz (%v) not below p95 at 1.2GHz (%v)",
			hi.TailNs(0.95, 0), lo.TailNs(0.95, 0))
	}
	if hi.ActiveEnergyJ <= lo.ActiveEnergyJ {
		t.Fatal("higher frequency must cost more energy")
	}
}

// switchOnSecond asks for a new frequency once the queue reaches 2.
type switchOnSecond struct {
	to int
}

func (p switchOnSecond) Name() string { return "switchOnSecond" }
func (p switchOnSecond) OnEvent(v View) int {
	if len(v.Queue) >= 2 {
		return p.to
	}
	return 0 // keep
}

func TestMidRequestFrequencyChange(t *testing.T) {
	// One long request; a second arrival halfway through triggers a switch
	// from 1200 to 2400 MHz with zero transition latency.
	tr := workload.Trace{Requests: []workload.Request{
		{ID: 0, Arrival: 0, ComputeCycles: 1_200_000}, // 1 ms at 1200 MHz
		{ID: 1, Arrival: 500_000, ComputeCycles: 1_200_000},
	}}
	res, err := Run(tr, switchOnSecond{to: 2400}, bareConfig(1200))
	if err != nil {
		t.Fatal(err)
	}
	// Request 0: 500 us at 1200 MHz consumes 600k cycles; remaining 600k
	// at 2400 MHz takes 250 us. Total 750 us.
	if got := res.Completions[0].ResponseNs; math.Abs(got-750_000) > 5 {
		t.Fatalf("first response = %v, want 750000", got)
	}
	// Request 1: starts at 750 us, runs at 2400 (queue len 1 keeps freq),
	// 1.2M cycles at 2400 = 500 us, done at 1250 us; response 750 us.
	if got := res.Completions[1].ResponseNs; math.Abs(got-750_000) > 5 {
		t.Fatalf("second response = %v, want 750000", got)
	}
}

func TestTransitionLatencyDelaysSwitch(t *testing.T) {
	cfg := bareConfig(1200)
	cfg.TransitionLatency = 100_000 // 100 us
	tr := workload.Trace{Requests: []workload.Request{
		{ID: 0, Arrival: 0, ComputeCycles: 1_200_000},
		{ID: 1, Arrival: 100, ComputeCycles: 1_200_000},
	}}
	res, err := Run(tr, switchOnSecond{to: 2400}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Request 0 runs at 1200 MHz until t=100+100000 ns (second arrival at
	// t=100 triggers the switch; it lands 100 us later). By then it has
	// consumed ~120,120 cycles; the remaining ~1,079,880 cycles run at
	// 2400 MHz (449,950 ns). Total ≈ 550,150 ns.
	want := 100.0 + 100_000 + (1_200_000-120_120)/2.4
	if got := res.Completions[0].ResponseNs; math.Abs(got-want) > 50 {
		t.Fatalf("response = %v, want ~%v", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	tr := workload.GenerateAtLoad(workload.Specjbb(), 0.5, 5000, 77)
	r1, err := Run(tr, FixedPolicy{MHz: 2000}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tr, FixedPolicy{MHz: 2000}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r1.ActiveEnergyJ != r2.ActiveEnergyJ || r1.EndTime != r2.EndTime {
		t.Fatal("simulation is not deterministic")
	}
	for i := range r1.Completions {
		if r1.Completions[i] != r2.Completions[i] {
			t.Fatalf("completion %d differs", i)
		}
	}
}

func TestFixedEnergyPerRequestFlatAcrossLoad(t *testing.T) {
	// Paper Fig. 9b: at a fixed frequency, active energy per request does
	// not change with load.
	app := workload.Masstree()
	cfg := bareConfig(2400)
	e := map[float64]float64{}
	for _, load := range []float64{0.2, 0.6} {
		tr := workload.GenerateAtLoad(app, load, 4000, 12)
		res, err := Run(tr, FixedPolicy{MHz: 2400}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e[load] = res.EnergyPerRequestJ()
	}
	if math.Abs(e[0.2]-e[0.6]) > 0.02*e[0.2] {
		t.Fatalf("fixed-frequency energy/request varies with load: %v vs %v", e[0.2], e[0.6])
	}
}

func TestResidencySumsToOne(t *testing.T) {
	tr := workload.GenerateAtLoad(workload.Masstree(), 0.4, 1000, 8)
	res, err := Run(tr, FixedPolicy{MHz: 1800}, bareConfig(1800))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range res.Residency {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("residency sums to %v", sum)
	}
	// All of it at 1800 MHz.
	if idx := cpu.DefaultGrid().Index(1800); res.Residency[idx] != 1 {
		t.Fatalf("residency not concentrated at 1800: %v", res.Residency)
	}
}

func TestOffGridPolicyRequestRoundsUp(t *testing.T) {
	tr := workload.Trace{Requests: []workload.Request{
		{ID: 0, Arrival: 0, ComputeCycles: 100_000},
	}}
	res, err := Run(tr, FixedPolicy{MHz: 2300}, bareConfig(800))
	if err != nil {
		t.Fatal(err)
	}
	idx := cpu.DefaultGrid().Index(2400)
	if res.Residency[idx] == 0 {
		t.Fatalf("2300 MHz request should round up to 2400: %v", res.Residency)
	}
}

// tickCounter counts ticks and never changes frequency.
type tickCounter struct {
	period sim.Time
	ticks  int
}

func (p *tickCounter) Name() string        { return "ticker" }
func (p *tickCounter) OnEvent(View) int    { return 0 }
func (p *tickCounter) TickEvery() sim.Time { return p.period }
func (p *tickCounter) OnTick(View) int     { p.ticks++; return 0 }

func TestTickerRunsAndStops(t *testing.T) {
	// 10 requests spread over ~10 ms with 1 ms ticks.
	reqs := make([]workload.Request, 10)
	for i := range reqs {
		reqs[i] = workload.Request{ID: i, Arrival: sim.Time(i) * sim.Millisecond, ComputeCycles: 240_000}
	}
	p := &tickCounter{period: sim.Millisecond}
	res, err := Run(workload.Trace{Requests: reqs}, p, bareConfig(2400))
	if err != nil {
		t.Fatal(err)
	}
	if p.ticks < 8 || p.ticks > 12 {
		t.Fatalf("ticks = %d, want ~10", p.ticks)
	}
	if len(res.Completions) != 10 {
		t.Fatalf("completions = %d", len(res.Completions))
	}
	// The simulation terminated, so ticking stopped after the drain.
}

// observer collects completions via the CompletionObserver hook.
type observer struct {
	FixedPolicy
	seen int
}

func (o *observer) ObserveCompletion(Completion) { o.seen++ }

func TestCompletionObserver(t *testing.T) {
	tr := workload.GenerateAtLoad(workload.Masstree(), 0.3, 100, 6)
	o := &observer{FixedPolicy: FixedPolicy{MHz: 2400}}
	if _, err := Run(tr, o, bareConfig(2400)); err != nil {
		t.Fatal(err)
	}
	if o.seen != 100 {
		t.Fatalf("observer saw %d completions", o.seen)
	}
}

func TestTimelineRecording(t *testing.T) {
	cfg := bareConfig(1200)
	cfg.RecordTimeline = true
	tr := workload.Trace{Requests: []workload.Request{
		{ID: 0, Arrival: 0, ComputeCycles: 1_200_000},
		{ID: 1, Arrival: 100, ComputeCycles: 1_200_000},
	}}
	res, err := Run(tr, switchOnSecond{to: 2400}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FreqTimeline) < 2 {
		t.Fatalf("freq timeline too short: %v", res.FreqTimeline)
	}
	if res.FreqTimeline[0].MHz != 1200 {
		t.Fatalf("initial frequency sample wrong: %v", res.FreqTimeline[0])
	}
	var total float64
	for _, e := range res.EnergyTimeline {
		total += e.J
	}
	if math.Abs(total-res.ActiveEnergyJ) > 1e-12 {
		t.Fatalf("energy timeline sums to %v, meter says %v", total, res.ActiveEnergyJ)
	}
	// Off by default.
	res2, err := Run(tr, switchOnSecond{to: 2400}, bareConfig(1200))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.FreqTimeline) != 0 || len(res2.EnergyTimeline) != 0 {
		t.Fatal("timelines must be empty when not requested")
	}
}

func TestMetricsHelpers(t *testing.T) {
	res := Result{Completions: []Completion{
		{ResponseNs: 100}, {ResponseNs: 200}, {ResponseNs: 300}, {ResponseNs: 400},
	}, ActiveEnergyJ: 4, ActiveNs: sim.Second, IdleNs: sim.Second}
	if got := res.TailNs(0.5, 0); got != 200 {
		t.Fatalf("median = %v", got)
	}
	if got := res.TailNs(0.5, 0.5); got != 300 {
		t.Fatalf("median after warmup skip = %v", got)
	}
	if got := res.ViolationFrac(250, 0); got != 0.5 {
		t.Fatalf("violations = %v", got)
	}
	if got := res.EnergyPerRequestJ(); got != 1 {
		t.Fatalf("energy/request = %v", got)
	}
	if got := res.MeanActivePowerW(); got != 2 {
		t.Fatalf("mean active power = %v", got)
	}
	if got := res.Utilization(); got != 0.5 {
		t.Fatalf("utilization = %v", got)
	}
	// Degenerate cases.
	var empty Result
	if empty.TailNs(0.95, 0) != 0 || empty.EnergyPerRequestJ() != 0 ||
		empty.MeanActivePowerW() != 0 || empty.Utilization() != 0 ||
		empty.ViolationFrac(1, 0) != 0 {
		t.Fatal("empty result metrics must be 0")
	}
	if got := res.Responses(2.0); len(got) != 0 {
		t.Fatal("warmup > 1 must skip everything")
	}
}
