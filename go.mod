module rubik

go 1.24
