package rubik_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rubik"
)

func TestFacadeApps(t *testing.T) {
	apps := rubik.Apps()
	if len(apps) != 5 {
		t.Fatalf("Apps() = %d entries", len(apps))
	}
	if _, err := rubik.AppByName("masstree"); err != nil {
		t.Fatal(err)
	}
	if _, err := rubik.AppByName("bogus"); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	app, err := rubik.AppByName("masstree")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := rubik.TailBound(app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 {
		t.Fatalf("bound = %v", bound)
	}
	tr := rubik.GenerateTrace(app, 0.4, 3000, 2)
	fixed, err := rubik.Simulate(tr, rubik.Fixed(rubik.NominalMHz))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := rubik.NewController(bound)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rubik.Simulate(tr, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveEnergyJ >= fixed.ActiveEnergyJ {
		t.Fatalf("Rubik energy %v not below fixed %v", res.ActiveEnergyJ, fixed.ActiveEnergyJ)
	}
	if tail := res.TailNs(rubik.TailPercentile, 0.1); tail > bound*1.1 {
		t.Fatalf("Rubik tail %v above bound %v", tail, bound)
	}
}

func TestFacadeStaticOracle(t *testing.T) {
	app, err := rubik.AppByName("moses")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := rubik.TailBound(app, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := rubik.GenerateTrace(app, 0.3, 900, 3)
	mhz, feasible, err := rubik.StaticOracleMHz(tr, bound)
	if err != nil {
		t.Fatal(err)
	}
	if !feasible {
		t.Fatal("static oracle infeasible at 30% load")
	}
	if mhz >= rubik.NominalMHz {
		t.Fatalf("oracle chose %d MHz at 30%% load", mhz)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(rubik.Experiments()) != 25 {
		t.Fatalf("experiments = %d, want 25", len(rubik.Experiments()))
	}
	var buf bytes.Buffer
	opts := rubik.ExperimentOptions{Quick: true, Seed: 1}
	if err := rubik.RunExperiment("table2", opts, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DVFS") {
		t.Fatal("table2 output missing expected content")
	}
	if err := rubik.RunExperiment("bogus", opts, &buf); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestFacadeValidate(t *testing.T) {
	cfg := rubik.DefaultServerConfig()
	if err := rubik.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.InitialMHz = 999
	if err := rubik.Validate(cfg); err == nil {
		t.Fatal("off-grid initial frequency must fail validation")
	}
	var zero rubik.ServerConfig
	if err := rubik.Validate(zero); err == nil {
		t.Fatal("zero config must fail validation")
	}
}

func TestFacadeControllerConfig(t *testing.T) {
	cfg := rubik.ControllerConfig{}
	if _, err := rubik.NewControllerWithConfig(cfg); err == nil {
		t.Fatal("zero controller config must error")
	}
}

func TestFacadeCluster(t *testing.T) {
	app, err := rubik.AppByName("masstree")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := rubik.TailBound(app, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4-core server at 50% per-core load: aggregate trace, per-core Rubik.
	tr := rubik.GenerateTrace(app, 0.5*4, 6000, 2)
	for _, d := range []rubik.Dispatcher{
		rubik.RandomDispatcher(7), rubik.RoundRobinDispatcher(),
		rubik.JSQDispatcher(), rubik.LeastWorkDispatcher(),
	} {
		cfg := rubik.NewCluster(4, d, func(int) (rubik.Policy, error) {
			return rubik.NewController(bound)
		})
		res, err := rubik.SimulateCluster(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PerCore) != 4 {
			t.Fatalf("%s: %d cores", d.Name(), len(res.PerCore))
		}
		var total int
		for _, c := range res.PerCore {
			total += len(c.Completions)
		}
		if total != 6000 {
			t.Fatalf("%s: completions %d != 6000", d.Name(), total)
		}
		if tail := res.TailNs(rubik.TailPercentile, 0.1); tail > bound*1.2 {
			t.Errorf("%s: pooled p95 %.0f ns above bound %.0f ns", d.Name(), tail, bound)
		}
	}
}

func TestFacadeStreaming(t *testing.T) {
	app, err := rubik.AppByName("masstree")
	if err != nil {
		t.Fatal(err)
	}

	// Streamed Poisson == materialized trace, end to end via the facade.
	tr := rubik.GenerateTrace(app, 0.5, 2000, 3)
	want, err := rubik.Simulate(tr, rubik.Fixed(rubik.NominalMHz))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rubik.SimulateSource(rubik.StreamTrace(app, 0.5, 2000, 3), rubik.Fixed(rubik.NominalMHz))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("SimulateSource(StreamTrace) differs from Simulate(GenerateTrace)")
	}
	viaTrace, err := rubik.SimulateSource(rubik.TraceSource(tr), rubik.Fixed(rubik.NominalMHz))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaTrace, want) {
		t.Fatal("SimulateSource(TraceSource) differs from Simulate")
	}

	// Scenario registry through the facade, constant-memory config.
	if len(rubik.Scenarios()) < 6 {
		t.Fatalf("scenario registry has %d entries", len(rubik.Scenarios()))
	}
	src, err := rubik.NewScenarioSource("diurnal", app, 0.5, 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rubik.DefaultServerConfig()
	cfg.DropCompletions = true
	res, err := rubik.SimulateSourceWithConfig(src, rubik.Fixed(rubik.NominalMHz), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 3000 || len(res.Completions) != 0 {
		t.Fatalf("streamed run served %d, retained %d", res.Served, len(res.Completions))
	}
	if res.TailNs(rubik.TailPercentile, 0) <= 0 {
		t.Fatal("streamed tail missing")
	}
	if _, err := rubik.NewScenarioSource("nope", app, 0.5, 10, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}

	// Cluster streaming: shared source and per-core sources.
	ccfg := rubik.NewCluster(2, rubik.JSQDispatcher(), func(int) (rubik.Policy, error) {
		return rubik.Fixed(rubik.NominalMHz), nil
	})
	cres, err := rubik.SimulateClusterSource(rubik.StreamTrace(app, 0.5*2, 2000, 4), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cres.PerCore[0].Completions) + len(cres.PerCore[1].Completions); got != 2000 {
		t.Fatalf("cluster streamed %d of 2000", got)
	}
	pres, err := rubik.SimulateClusterPerCore([]rubik.Source{
		rubik.StreamTrace(app, 0.4, 500, 1),
		rubik.StreamTrace(app, 0.6, 700, 2),
	}, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Routed[0] != 500 || pres.Routed[1] != 700 {
		t.Fatalf("per-core routing %v", pres.Routed)
	}
}

// TestFacadeCappedCluster exercises the power-capping surface end to end
// through the facade: allocator constructors and lookup, FreqForPower,
// NewCappedCluster/SimulateClusterCapped(-Source), the accounting field,
// and the capW<=0 passthrough.
func TestFacadeCappedCluster(t *testing.T) {
	grid := rubik.DefaultGrid()
	model := rubik.DefaultServerConfig().Power
	if f, ok := rubik.FreqForPower(grid, model, 1e9); !ok || f != grid.Max() {
		t.Fatalf("FreqForPower(huge) = %d, %v", f, ok)
	}
	if f, ok := rubik.FreqForPower(grid, model, 0.01); ok || f != grid.Min() {
		t.Fatalf("FreqForPower(tiny) = %d, %v", f, ok)
	}
	for _, a := range []rubik.Allocator{
		rubik.UniformAllocator(), rubik.GreedySlackAllocator(), rubik.WaterfillAllocator(),
	} {
		byName, err := rubik.AllocatorByName(a.Name())
		if err != nil || byName.Name() != a.Name() {
			t.Fatalf("AllocatorByName(%q) = %v, %v", a.Name(), byName, err)
		}
	}
	if _, err := rubik.AllocatorByName("bogus"); err == nil {
		t.Fatal("unknown allocator must error")
	}

	app, err := rubik.AppByName("masstree")
	if err != nil {
		t.Fatal(err)
	}
	tr := rubik.GenerateTrace(app, 0.5*2, 2000, 6)
	newPolicy := func(int) (rubik.Policy, error) { return rubik.NewController(500_000) }

	cfg := rubik.NewCappedCluster(2, rubik.JSQDispatcher(), 7, rubik.WaterfillAllocator(), newPolicy)
	res, err := rubik.SimulateCluster(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Served(); got != 2000 {
		t.Fatalf("capped cluster served %d of 2000", got)
	}
	if len(res.Capping) != 1 {
		t.Fatalf("capped cluster reported %d domains", len(res.Capping))
	}
	d := res.Capping[0]
	if d.Allocator != "waterfill" || d.CapW != 7 {
		t.Fatalf("domain stats %+v", d)
	}
	if d.ThrottleEvents == 0 {
		t.Fatal("a 7 W cap on 2 cores at 50% load never throttled")
	}
	if d.PeakPowerW > 7+1e-9 {
		t.Fatalf("peak granted power %.6f W over the 7 W cap", d.PeakPowerW)
	}

	// SimulateClusterCapped applies the cap to a plain cluster config; the
	// streaming variant must agree exactly on the same seed's stream.
	base := rubik.NewCluster(2, rubik.JSQDispatcher(), newPolicy)
	res2, err := rubik.SimulateClusterCapped(tr, base, 7, rubik.WaterfillAllocator())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("SimulateClusterCapped diverged from NewCappedCluster+SimulateCluster")
	}
	res3, err := rubik.SimulateClusterCappedSource(
		rubik.StreamTrace(app, 0.5*2, 2000, 6), base, 7, rubik.WaterfillAllocator())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res3) {
		t.Fatal("streamed capped cluster diverged from materialized replay")
	}

	// capW <= 0 is a plain uncapped simulation.
	res4, err := rubik.SimulateClusterCapped(tr, base, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res4.Capping != nil {
		t.Fatal("capW=0 still produced capping accounting")
	}
}
