package rubik_test

// One benchmark per table/figure of the paper's evaluation (quick
// fidelity), plus micro-benchmarks of the primitives on Rubik's hot paths:
// the per-event frequency decision, the periodic target-tail-table
// rebuild, the FFT convolutions behind it, and the event-driven simulator
// itself. Run with:
//
//	go test -bench=. -benchmem
import (
	"io"
	"math/rand"
	"runtime"
	"testing"

	"rubik"
	rubikcore "rubik/internal/core"
	"rubik/internal/experiments"
	"rubik/internal/policy"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := experiments.Options{Quick: true, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAndRender(id, opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Paper artifacts.
func BenchmarkFig1a(b *testing.B)                { benchExperiment(b, "fig1a") }
func BenchmarkFig1b(b *testing.B)                { benchExperiment(b, "fig1b") }
func BenchmarkFig2a(b *testing.B)                { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)                { benchExperiment(b, "fig2b") }
func BenchmarkFig2c(b *testing.B)                { benchExperiment(b, "fig2c") }
func BenchmarkTable1(b *testing.B)               { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)               { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)               { benchExperiment(b, "table3") }
func BenchmarkFig6(b *testing.B)                 { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)                 { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)                 { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)                 { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)                { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)                { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)                { benchExperiment(b, "fig12") }
func BenchmarkPowerModelValidation(b *testing.B) { benchExperiment(b, "pmv") }
func BenchmarkFig15(b *testing.B)                { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)                { benchExperiment(b, "fig16") }
func BenchmarkAblation(b *testing.B)             { benchExperiment(b, "ablation") }
func BenchmarkPegasus(b *testing.B)              { benchExperiment(b, "pegasus") }
func BenchmarkClusterScale(b *testing.B)         { benchExperiment(b, "clusterscale") }
func BenchmarkScenarios(b *testing.B)            { benchExperiment(b, "scenarios") }

// Micro-benchmarks of the hot paths.

// BenchmarkSourceHotPath measures the streaming ingest cycle end to end:
// generate one request from a scenario source, feed it through the core,
// fold the completion into the aggregate histogram. This is the
// per-request cost of a constant-memory run, and the allocs/op guard for
// the whole streaming path — it must report 0 allocs/op (setup and
// geometric ring growth amortize to zero over b.N requests).
func BenchmarkSourceHotPath(b *testing.B) {
	app := workload.Masstree()
	src := workload.NewLoadSource(app, 0.5, b.N, 5)
	cfg := queueing.DefaultConfig()
	cfg.DropCompletions = true
	b.ReportAllocs()
	b.ResetTimer()
	res, err := queueing.RunSource(src, queueing.FixedPolicy{MHz: 2400}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if res.Served != b.N {
		b.Fatalf("served %d of %d", res.Served, b.N)
	}
}

// BenchmarkTailTableBuild measures one periodic target-tail-table refresh
// at paper parameters (128 buckets, 8 rows, 16 positions) the way the
// controller actually performs it: through a persistent TableBuilder whose
// plans and buffers are warm, so the steady state is allocation-free (the
// paper reports 0.2 ms per update on its testbed).
func BenchmarkTailTableBuild(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	histC := stats.NewHistogram(4096)
	histM := stats.NewHistogram(4096)
	for i := 0; i < 4096; i++ {
		histC.Push(250e3 * (0.5 + r.Float64()))
		histM.Push(20e3 * (0.5 + r.Float64()))
	}
	tb, err := rubikcore.NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := tb.Rebuild(histC, histM); err != nil { // warm buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tb.Rebuild(histC, histM); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTailTableBuildPacked pins the packed real-FFT rebuild pipeline
// explicitly (it is the builder default, so it matches
// BenchmarkTailTableBuild today); BenchmarkTailTableBuildRef is the
// reference complex pipeline — the pair is the packed pipeline's
// before/after at the paper's table shape.
func BenchmarkTailTableBuildPacked(b *testing.B) { benchTailTableBuildPipeline(b, true) }
func BenchmarkTailTableBuildRef(b *testing.B)    { benchTailTableBuildPipeline(b, false) }

func benchTailTableBuildPipeline(b *testing.B, packed bool) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	histC := stats.NewHistogram(4096)
	histM := stats.NewHistogram(4096)
	for i := 0; i < 4096; i++ {
		histC.Push(250e3 * (0.5 + r.Float64()))
		histM.Push(20e3 * (0.5 + r.Float64()))
	}
	tb, err := rubikcore.NewTableBuilder(0.95, 128, 8, 16)
	if err != nil {
		b.Fatal(err)
	}
	tb.Packed = packed
	if _, _, err := tb.Rebuild(histC, histM); err != nil { // warm buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tb.Rebuild(histC, histM); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTailTableBuildOneShot measures the allocate-everything one-shot
// entry point the builder replaced on the periodic path; the gap between
// this and BenchmarkTailTableBuild is what holding a builder buys.
func BenchmarkTailTableBuildOneShot(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	comp := make([]float64, 4096)
	mem := make([]float64, 4096)
	for i := range comp {
		comp[i] = 250e3 * (0.5 + r.Float64())
		mem[i] = 20e3 * (0.5 + r.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rubikcore.BuildTailTable(comp, mem, 0.95, 128, 8, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogramPush measures one profiling ingest on a full window —
// O(1) amortized, versus the O(window) copy the sample slices paid per
// completion once HistoryCap was reached.
func BenchmarkHistogramPush(b *testing.B) {
	r := rand.New(rand.NewSource(14))
	h := stats.NewHistogram(8192)
	for i := 0; i < 8192; i++ {
		h.Push(250e3 * (0.5 + r.Float64()))
	}
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = 250e3 * (0.5 + r.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(vals[i&1023])
	}
}

// BenchmarkRubikDecision measures one arrival/completion frequency
// decision (paper Sec. 4.2: "computing each constraint requires few
// instructions").
func BenchmarkRubikDecision(b *testing.B) {
	ctl, err := rubik.NewController(1e6)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	comp := make([]float64, 512)
	mem := make([]float64, 512)
	for i := range comp {
		comp[i] = 250e3 * (0.5 + r.Float64())
		mem[i] = 20e3 * (0.5 + r.Float64())
	}
	if err := ctl.Bootstrap(comp, mem); err != nil {
		b.Fatal(err)
	}
	v := queueing.View{
		Now:        1_000_000,
		CurrentMHz: 1600,
		Queue: []queueing.QueuedRequest{
			{Arrival: 100_000}, {Arrival: 400_000}, {Arrival: 900_000},
		},
		HeadElapsedCycles: 120e3,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := ctl.OnEvent(v); f <= 0 {
			b.Fatal("bad decision")
		}
	}
}

// BenchmarkEventSim measures the event-driven server simulating masstree
// under Rubik (ns per simulated request ≈ reported time / 2000).
func BenchmarkEventSim(b *testing.B) {
	app := workload.Masstree()
	tr := workload.GenerateAtLoad(app, 0.5, 2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl, err := rubik.NewController(500_000)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rubik.Simulate(tr, ctl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterSimulate measures the paper-shaped 6-core cluster: one
// shared engine, a fresh Rubik controller per core, JSQ dispatch
// (ns per simulated request ≈ reported time / 12000).
func BenchmarkClusterSimulate(b *testing.B) {
	app := workload.Masstree()
	tr := workload.GenerateAtLoad(app, 0.5*6, 12000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := rubik.NewCluster(6, rubik.JSQDispatcher(), func(int) (rubik.Policy, error) {
			return rubik.NewController(500_000)
		})
		if _, err := rubik.SimulateCluster(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCappedCluster measures the same 6-core Rubik cluster as
// BenchmarkClusterSimulate under a binding 27 W socket budget with
// waterfill allocation. The per-decision allocator path is allocation-free
// (Domain-owned scratch, O(1) unchanged-demand fast path), so the delta to
// BenchmarkClusterSimulate is the pure coordination cost — the target is
// ≤10% ms/op and no per-decision allocations.
func BenchmarkCappedCluster(b *testing.B) {
	app := workload.Masstree()
	tr := workload.GenerateAtLoad(app, 0.5*6, 12000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := rubik.NewCappedCluster(6, rubik.JSQDispatcher(), 27, rubik.WaterfillAllocator(),
			func(int) (rubik.Policy, error) {
				return rubik.NewController(500_000)
			})
		if _, err := rubik.SimulateCluster(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFleet runs a 4-socket fleet — per-socket bursty sources behind
// socket-local JSQ, a fresh Rubik controller per core — at a fixed shard
// count. Each socket is the BenchmarkClusterSimulate shape, so on an
// n-core host ms/op should fall toward 1/min(shards, n, 4) of the
// 1-shard cost; on a single-CPU host every shard count costs the same,
// which is itself the measurement that the shard plumbing adds no
// overhead. Fixed-name wrappers (not GOMAXPROCS-derived) keep the
// BENCH_*.json series comparable across runner shapes. tablecache is
// FleetConfig.TableCacheEntries (0 = the fleet default, on), so the
// numbered FleetSimulate series measures what fleet callers get, and the
// Cached/Uncached pair isolates what the rebuild cache is worth.
func benchFleet(b *testing.B, shards, tablecache int) {
	b.Helper()
	const sockets, cores, nPer = 4, 6, 12000
	app := workload.Masstree()
	sc, err := workload.ScenarioByName("bursty")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := rubik.NewFleet(sockets, cores,
			func(s int) rubik.Source {
				return sc.New(app, 0.5*cores, nPer, rubik.ShardSeed(3, s))
			},
			func(int, int) (rubik.Policy, error) { return rubik.NewController(500_000) })
		cfg.Shards = shards
		cfg.TableCacheEntries = tablecache
		cfg.NewDispatcher = func(int) rubik.Dispatcher { return rubik.JSQDispatcher() }
		res, err := rubik.SimulateFleet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Served() != sockets*nPer {
			b.Fatalf("served %d of %d", res.Served(), sockets*nPer)
		}
		if tablecache >= 0 && res.TableCache.Lookups() == 0 {
			b.Fatal("rebuild cache never consulted")
		}
	}
}

func BenchmarkFleetSimulate1(b *testing.B)    { benchFleet(b, 1, 0) }
func BenchmarkFleetSimulate2(b *testing.B)    { benchFleet(b, 2, 0) }
func BenchmarkFleetSimulate4(b *testing.B)    { benchFleet(b, 4, 0) }
func BenchmarkFleetSimulateAuto(b *testing.B) { benchFleet(b, 0, 0) }

// benchFleetCapped measures the hierarchical budget path: the flat
// 4-socket fleet shape under a tight waterfilled rack budget with a 5 ms
// epoch cadence, so every epoch runs demand reporting, a tree
// re-allocation and (under skewed demand) cap retargets on top of the
// socket simulations. The delta vs FleetSimulate4 is the cost of
// hierarchical capping itself.
func benchFleetCapped(b *testing.B, shards int) {
	b.Helper()
	const sockets, cores, nPer = 4, 6, 12000
	app := workload.Masstree()
	sc, err := workload.ScenarioByName("bursty")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := rubik.NewFleet(sockets, cores,
			func(s int) rubik.Source {
				load := 0.3 + 0.4*float64(s)/float64(sockets-1)
				return sc.New(app, load*cores, nPer, rubik.ShardSeed(3, s))
			},
			func(int, int) (rubik.Policy, error) { return rubik.NewController(500_000) })
		cfg.Shards = shards
		cfg.NewDispatcher = func(int) rubik.Dispatcher { return rubik.JSQDispatcher() }
		cfg.Hierarchy = &rubik.HierarchySpec{Levels: []rubik.LevelSpec{
			{Name: "rack", Nodes: 1, CapW: 64},
			{Name: "pdu", Nodes: 2, Oversub: 1.25},
		}}
		cfg.Epoch = 5_000_000
		res, err := rubik.SimulateFleet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Served() != sockets*nPer {
			b.Fatalf("served %d of %d", res.Served(), sockets*nPer)
		}
		if res.Hierarchy == nil || res.Hierarchy.Reallocations == 0 {
			b.Fatal("hierarchical run never re-allocated")
		}
	}
}

func BenchmarkFleetCapped(b *testing.B) { benchFleetCapped(b, 4) }

// benchFleetTrough is the rebuild cache's before/after shape: a fleet in
// a diurnal-style trough (10% load) under a fine 2 ms control cadence.
// This is the regime where the controller hot path dominates — at 2 ms
// the refresh runs 50x more often than the paper's 100 ms, and rebuilds
// are most of the fleet's wall-clock — and where profile windows sit
// unchanged between ticks (a 10%-load core is usually idle across a
// 2 ms window), so refreshes repeat their exact inputs and the cache
// hits ~33% of lookups. At the default 100 ms cadence and 50% load
// (the FleetSimulate1/2/4 shape) every window gains samples between
// ticks, the hit rate is ~0, and the cache is measurably neutral — see
// EXPERIMENTS.md for both measurements.
func benchFleetTrough(b *testing.B, tablecache int) {
	b.Helper()
	const sockets, cores, nPer = 2, 6, 2000
	app := workload.Masstree()
	sc, err := workload.ScenarioByName("bursty")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := rubik.NewFleet(sockets, cores,
			func(s int) rubik.Source {
				return sc.New(app, 0.1*cores, nPer, rubik.ShardSeed(3, s))
			},
			func(int, int) (rubik.Policy, error) {
				rcfg := rubik.DefaultControllerConfig(500_000)
				rcfg.UpdatePeriod = 2 * sim.Millisecond
				return rubik.NewControllerWithConfig(rcfg)
			})
		cfg.Shards = 2
		cfg.TableCacheEntries = tablecache
		cfg.NewDispatcher = func(int) rubik.Dispatcher { return rubik.JSQDispatcher() }
		res, err := rubik.SimulateFleet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Served() != sockets*nPer {
			b.Fatalf("served %d of %d", res.Served(), sockets*nPer)
		}
		if tablecache >= 0 && res.TableCache.Hits == 0 {
			b.Fatal("trough fleet never hit the rebuild cache")
		}
	}
}

func BenchmarkFleetSimulateCached(b *testing.B)   { benchFleetTrough(b, 0) }
func BenchmarkFleetSimulateUncached(b *testing.B) { benchFleetTrough(b, -1) }

// benchWorkers runs the clusterscale sweep at a fixed fan-out, so the
// sequential-vs-parallel speedup of the experiment runner is measurable
// in the bench trajectory (compare ClusterScaleSequential to
// ClusterScaleParallel).
func benchWorkers(b *testing.B, workers int) {
	b.Helper()
	opts := experiments.Options{Quick: true, Seed: 42, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAndRender("clusterscale", opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterScaleSequential(b *testing.B) { benchWorkers(b, 1) }
func BenchmarkClusterScaleParallel(b *testing.B)   { benchWorkers(b, runtime.GOMAXPROCS(0)) }

// BenchmarkEngine pins the per-event cost of the simulation substrate: 16
// pre-registered handles rescheduling themselves through a populated event
// queue — the engine's sorted small-mode regime. Steady state performs
// zero allocations per event.
func BenchmarkEngine(b *testing.B) {
	benchEngine(b, 16, 97, 13)
}

// BenchmarkEngineDense is the same cycle with 64 live timers over a wide
// horizon — past the small-mode capacity, so every event exercises the
// hierarchical timing wheel itself (occupancy-bitmap scans, bucket
// drains), where the 4-ary heap it replaced paid O(log n) sifts.
func BenchmarkEngineDense(b *testing.B) {
	benchEngine(b, 64, 1500, 97)
}

func benchEngine(b *testing.B, handles int, base, step sim.Time) {
	eng := sim.NewEngine()
	fired := 0
	hs := make([]sim.Handle, handles)
	for i := 0; i < handles; i++ {
		i := i
		hs[i] = eng.Register(func() {
			fired++
			if fired <= b.N-handles {
				// Distinct periods keep the queue busy and unordered.
				eng.RescheduleAfter(hs[i], base+step*sim.Time(i))
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	fired = 0
	for i := range hs {
		eng.Reschedule(hs[i], sim.Time(1+i))
	}
	eng.Run()
	if fired < b.N {
		b.Fatalf("fired %d of %d events", fired, b.N)
	}
}

// BenchmarkCoreEvent pins the per-event cost of the queueing hot path: one
// arrival into an idle core, the policy decision, the completion, and the
// trailing idle decision — the full busy-period cycle with zero
// steady-state allocations (ring slot reuse, handle reschedules, snapshot
// buffer reuse; the pre-sized completion log is charged up front).
func BenchmarkCoreEvent(b *testing.B) {
	eng := sim.NewEngine()
	cfg := queueing.DefaultConfig()
	cfg.ExpectedRequests = b.N
	c, err := queueing.NewCore(eng, queueing.FixedPolicy{MHz: 2400}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	req := workload.Request{ComputeCycles: 240_000, MemTime: 20_000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.ID = i
		req.Arrival = eng.Now()
		c.Enqueue(req)
		eng.Run()
	}
	if got := len(c.Completions()); got != b.N {
		b.Fatalf("completed %d of %d", got, b.N)
	}
}

// BenchmarkReplay measures the analytic FIFO replay the oracles use.
func BenchmarkReplay(b *testing.B) {
	app := workload.Masstree()
	tr := workload.GenerateAtLoad(app, 0.5, 5000, 4)
	freqs := policy.UniformAssignment(len(tr.Requests), 2400)
	cfg := policy.DefaultReplayConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := policy.Replay(tr, freqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicOracle measures the strongest oracle's schedule search.
func BenchmarkDynamicOracle(b *testing.B) {
	app := workload.Masstree()
	tr := workload.GenerateAtLoad(app, 0.5, 3000, 5)
	grid := rubik.DefaultGrid()
	cfg := policy.DefaultReplayConfig()
	rep, err := policy.Replay(tr, policy.UniformAssignment(len(tr.Requests), 2400), cfg)
	if err != nil {
		b.Fatal(err)
	}
	bound := rep.TailNs(0.95)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := policy.DynamicOracle(tr, grid, bound, 0.95, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvolutionFFT measures the FFT-based 16-position convolution
// chain at the paper's 128-bucket resolution on the production path: a
// cached ConvolutionPlan writing into reused buffers (zero steady-state
// allocations, bitwise-equal to the naive chain).
func BenchmarkConvolutionFFT(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	p := make([]float64, 128)
	var tot float64
	for i := range p {
		p[i] = r.Float64()
		tot += p[i]
	}
	for i := range p {
		p[i] /= tot
	}
	d := stats.PMF{Origin: 0, Width: 1000, P: p}
	plan, err := stats.NewConvolutionPlan(stats.PlanSizeFor(128, 128, 16))
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]stats.PMF, 16)
	if err := plan.IterConvolutionsInto(dst, d, d); err != nil { // warm buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.IterConvolutionsInto(dst, d, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvolutionPacked runs both 16-position self-convolution
// chains in one packed real-FFT pass — one forward transform, Hermitian
// half-spectrum power steps, size-pruned fused inverses. Compare against
// 2x BenchmarkConvolutionFFT, the two independent reference chains a
// rebuild would otherwise run.
func BenchmarkConvolutionPacked(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	mk := func() stats.PMF {
		p := make([]float64, 128)
		var tot float64
		for i := range p {
			p[i] = r.Float64()
			tot += p[i]
		}
		for i := range p {
			p[i] /= tot
		}
		return stats.PMF{Origin: 0, Width: 1000, P: p}
	}
	c, m := mk(), mk()
	plan, err := stats.NewPackedConvolutionPlan(stats.PackedPlanSizeFor(128, 128, 16))
	if err != nil {
		b.Fatal(err)
	}
	dstC := make([]stats.PMF, 16)
	dstM := make([]stats.PMF, 16)
	if err := plan.IterSelfConvolutionsInto(dstC, dstM, c, m); err != nil { // warm buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.IterSelfConvolutionsInto(dstC, dstM, c, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvolutionFFTUnplanned is the pre-plan chain (twiddles and
// buffers recomputed per call), kept as the before side of the plan's
// before/after story.
func BenchmarkConvolutionFFTUnplanned(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	p := make([]float64, 128)
	var tot float64
	for i := range p {
		p[i] = r.Float64()
		tot += p[i]
	}
	for i := range p {
		p[i] /= tot
	}
	d := stats.PMF{Origin: 0, Width: 1000, P: p}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.IterConvolutions(d, d, 16); err != nil {
			b.Fatal(err)
		}
	}
}
