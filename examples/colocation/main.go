// Colocation: reproduce the paper's Sec. 6 scenario on one server — share
// the cores of a latency-critical masstree node with a mix of batch
// applications. RubikColoc absorbs the core-state interference and keeps
// the tail at the bound while the batch mix soaks up the idle cycles;
// StaticColoc, with no latency feedback, lets the tail drift over the
// bound.
package main

import (
	"fmt"
	"log"

	"rubik"
	"rubik/internal/coloc"
	"rubik/internal/policy"
	"rubik/internal/workload"
)

func main() {
	app, err := rubik.AppByName("masstree")
	if err != nil {
		log.Fatal(err)
	}
	bound, err := rubik.TailBound(app, 1)
	if err != nil {
		log.Fatal(err)
	}
	load := 0.6
	mix := workload.Mixes(1, 6, 42)[0]

	fmt.Printf("masstree at %.0f%% load, bound %.3f ms, colocated with:", load*100, bound/1e6)
	for _, b := range mix {
		fmt.Printf(" %s", b.Name)
	}
	fmt.Println()

	// StaticColoc frequency: StaticOracle on an uncolocated trace.
	tr := rubik.GenerateTrace(app, load, 4000, 3)
	so, err := policy.StaticOracle(tr, rubik.DefaultGrid(), bound, rubik.TailPercentile,
		policy.DefaultReplayConfig())
	if err != nil {
		log.Fatal(err)
	}

	cfg := coloc.DefaultSchemeConfig(app, mix, load, bound, 7)
	st, err := coloc.RunStaticColocServer(cfg, so.MHz)
	if err != nil {
		log.Fatal(err)
	}
	rb, err := coloc.RunRubikColocServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, res coloc.ServerResult) {
		var units, energy float64
		for _, c := range res.Cores {
			units += c.BatchUnits
			energy += c.LCEnergyJ + c.BatchEnergyJ
		}
		tail := res.TailNs(rubik.TailPercentile, 0.1)
		fmt.Printf("%-12s p95 %.3f ms (%.2fx bound)   batch %.0f units   cores %.2f J\n",
			name, tail/1e6, tail/bound, units, energy)
	}
	fmt.Println()
	report(fmt.Sprintf("static@%d", so.MHz), st)
	report("rubikcoloc", rb)
	fmt.Println("\nRubikColoc raises the frequency only when interference or queuing")
	fmt.Println("threatens the tail; the batch mix gets every remaining cycle.")
}
