// Tracereplay: the paper's trace-driven methodology (Sec. 5.3) as a
// library workflow — capture a request trace once, persist it as JSON, and
// replay the identical trace under every scheme so comparisons are
// apples-to-apples. Prints the oracle hierarchy: DynamicOracle (per-request
// frequencies, clairvoyant) <= AdrenalineOracle (two frequencies, oracular
// request classes) <= StaticOracle (one frequency).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rubik"
	"rubik/internal/policy"
	"rubik/internal/workload"
)

func main() {
	app, err := rubik.AppByName("specjbb") // short/long request mix
	if err != nil {
		log.Fatal(err)
	}
	bound, err := rubik.TailBound(app, 1)
	if err != nil {
		log.Fatal(err)
	}
	trace := rubik.GenerateTrace(app, 0.4, 8000, 21)

	// Persist and reload the trace (validates on load).
	path := filepath.Join(os.TempDir(), "specjbb-40.trace.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := workload.Load(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d specjbb requests at 40%% load, saved to %s\n", len(loaded.Requests), path)
	fmt.Printf("tail bound: %.3f ms\n\n", bound/1e6)

	grid := rubik.DefaultGrid()
	rcfg := policy.DefaultReplayConfig()

	fixed, err := policy.Replay(loaded, policy.UniformAssignment(len(loaded.Requests), rubik.NominalMHz), rcfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := policy.StaticOracle(loaded, grid, bound, rubik.TailPercentile, rcfg)
	if err != nil {
		log.Fatal(err)
	}
	ad, err := policy.AdrenalineOracle(loaded, grid, bound, rubik.TailPercentile, rcfg)
	if err != nil {
		log.Fatal(err)
	}
	dyn, err := policy.DynamicOracle(loaded, grid, bound, rubik.TailPercentile, rcfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %-12s %-12s %s\n", "scheme", "p95 (ms)", "mJ/request", "notes")
	row := func(name string, r policy.ReplayResult, notes string) {
		fmt.Printf("%-18s %-12.3f %-12.3f %s\n",
			name, r.TailNs(rubik.TailPercentile)/1e6, r.EnergyPerRequestJ()*1e3, notes)
	}
	row("fixed@2.4GHz", fixed, "")
	row("static-oracle", st.Result, fmt.Sprintf("f=%d MHz", st.MHz))
	row("adrenaline-oracle", ad.Result, fmt.Sprintf("boost >=%.2f ms: %d/%d MHz",
		ad.ThresholdNs/1e6, ad.LowMHz, ad.HighMHz))
	row("dynamic-oracle", dyn.Result, fmt.Sprintf("%d step-downs accepted", dyn.Reductions))
}
