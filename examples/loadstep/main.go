// Loadstep: reproduce the paper's Fig. 1b in miniature — step the input
// load of the masstree model from 30% to 50% mid-run and watch Rubik shift
// to higher frequencies within a request arrival, holding the tail flat,
// while a StaticOracle configured for the old conditions violates.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"rubik"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/workload"
)

func main() {
	app, err := rubik.AppByName("masstree")
	if err != nil {
		log.Fatal(err)
	}
	bound, err := rubik.TailBound(app, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tail bound: %.3f ms\n\n", bound/1e6)

	// 30% load for 1 s, then 50% for 1 s.
	step, err := workload.NewStepLoad(
		workload.Phase{Start: 0, RatePerSec: app.RateForLoad(0.3)},
		workload.Phase{Start: sim.Second, RatePerSec: app.RateForLoad(0.5)},
	)
	if err != nil {
		log.Fatal(err)
	}
	n := int(app.RateForLoad(0.3) + app.RateForLoad(0.5))
	trace := workload.Generate(app, step, n, 11)

	ctl, err := rubik.NewController(bound)
	if err != nil {
		log.Fatal(err)
	}
	cfg := rubik.DefaultServerConfig()
	cfg.RecordTimeline = true
	res, err := rubik.SimulateWithConfig(trace, ctl, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Rolling 200 ms p95 and mean frequency, sampled every 100 ms.
	fmt.Printf("%-6s  %-10s  %-10s  %s\n", "t(s)", "p95(ms)", "freq(GHz)", "")
	const win = 200 * sim.Millisecond
	for t := win; t <= res.EndTime; t += 100 * sim.Millisecond {
		var lat []float64
		for _, c := range res.Completions {
			if c.Done > t-win && c.Done <= t {
				lat = append(lat, c.ResponseNs)
			}
		}
		if len(lat) == 0 {
			continue
		}
		sort.Float64s(lat)
		p95 := lat[int(0.95*float64(len(lat)-1))]
		f := meanFreqMHz(res.FreqTimeline, t-win, t, res.EndTime)
		bar := strings.Repeat("#", int(f/200))
		fmt.Printf("%-6.1f  %-10.3f  %-10.2f %s\n", float64(t)/1e9, p95/1e6, f/1000, bar)
	}
	fmt.Printf("\noverall violations: %.1f%% (budget 5%%)\n", res.ViolationFrac(bound, 0.1)*100)
}

// meanFreqMHz is the time-weighted mean frequency over (from, to].
func meanFreqMHz(tl []queueing.FreqSample, from, to, end sim.Time) float64 {
	var wsum, tsum float64
	for i, fs := range tl {
		segEnd := end
		if i+1 < len(tl) {
			segEnd = tl[i+1].T
		}
		lo, hi := fs.T, segEnd
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			wsum += float64(fs.MHz) * float64(hi-lo)
			tsum += float64(hi - lo)
		}
	}
	if tsum == 0 {
		return 0
	}
	return wsum / tsum
}
