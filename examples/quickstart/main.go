// Quickstart: run Rubik on the masstree key-value store model and compare
// it with fixed-frequency execution — the paper's headline result in a few
// lines of library code.
package main

import (
	"fmt"
	"log"

	"rubik"
)

func main() {
	app, err := rubik.AppByName("masstree")
	if err != nil {
		log.Fatal(err)
	}

	// The paper's latency target: the p95 of fixed-nominal execution at
	// 50% load.
	bound, err := rubik.TailBound(app, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("masstree tail bound: %.3f ms (p95 @ 2.4 GHz, 50%% load)\n\n", bound/1e6)

	fmt.Printf("%-6s  %-12s  %-12s  %-10s  %s\n", "load", "fixed p95", "rubik p95", "energy", "violations")
	for _, load := range []float64{0.2, 0.3, 0.4, 0.5} {
		trace := rubik.GenerateTrace(app, load, 6000, 7)

		fixed, err := rubik.Simulate(trace, rubik.Fixed(rubik.NominalMHz))
		if err != nil {
			log.Fatal(err)
		}
		ctl, err := rubik.NewController(bound)
		if err != nil {
			log.Fatal(err)
		}
		res, err := rubik.Simulate(trace, ctl)
		if err != nil {
			log.Fatal(err)
		}

		saving := 1 - res.ActiveEnergyJ/fixed.ActiveEnergyJ
		fmt.Printf("%-7s %9.3f ms %9.3f ms  %9.1f%%  %9.1f%%\n",
			fmt.Sprintf("%d%%", int(load*100)),
			fixed.TailNs(rubik.TailPercentile, 0.1)/1e6,
			res.TailNs(rubik.TailPercentile, 0.1)/1e6,
			saving*100,
			res.ViolationFrac(bound, 0.1)*100)
	}
	fmt.Println("\nRubik holds the tail at the bound while cutting core energy;")
	fmt.Println("fixed-frequency execution over-provisions at every load below 50%.")
}
