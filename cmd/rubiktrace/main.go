// Command rubiktrace generates, inspects and summarizes latency-critical
// request traces — the unit of reproducibility in this repository: every
// scheme in a comparison replays the same trace (paper Sec. 5.3).
//
// Usage:
//
//	rubiktrace -gen -app masstree -load 0.4 -n 9000 -seed 7 -out m40.json
//	rubiktrace -gen -scenario diurnal -app xapian -n 100000 -jsonl -out d.jsonl
//	rubiktrace -describe m40.json
//	rubiktrace -apps
//	rubiktrace -scenarios
//
// With -scenario the requests come from the named entry of the scenario
// registry (bursty MMPP, diurnal sinusoid, flash crowd, closed-loop
// clients, heavy-tailed/correlated slowdowns, ...). With -jsonl the
// output is JSON Lines — a metadata header then one request per line —
// streamed straight from the scenario source, so arbitrarily long
// exports run in constant memory. -describe reads both formats.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rubik/internal/cpu"
	"rubik/internal/workload"
)

func main() {
	var (
		gen       = flag.Bool("gen", false, "generate a trace")
		describe  = flag.String("describe", "", "summarize a saved trace file")
		listApps  = flag.Bool("apps", false, "list available application models")
		listScens = flag.Bool("scenarios", false, "list available scenario shapes")
		appName   = flag.String("app", "masstree", "application model")
		scenario  = flag.String("scenario", "", "scenario shape (default: plain Poisson; see -scenarios)")
		load      = flag.Float64("load", 0.5, "load fraction of nominal capacity")
		n         = flag.Int("n", 0, "requests (0 = the app's Table 3 count)")
		seed      = flag.Int64("seed", 1, "random seed")
		jsonl     = flag.Bool("jsonl", false, "write JSON Lines (header + one request per line, streamed)")
		out       = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	switch {
	case *listApps:
		fmt.Printf("%-10s %-10s %-14s %s\n", "app", "requests", "mean service", "workload")
		for _, a := range workload.Apps() {
			fmt.Printf("%-10s %-10d %-14s %s\n", a.Name, a.Requests,
				fmt.Sprintf("%.3f ms", a.MeanServiceNsAtNominal()/1e6), a.Workload)
		}
	case *listScens:
		fmt.Printf("%-12s %s\n", "scenario", "description")
		for _, s := range workload.Scenarios() {
			fmt.Printf("%-12s %s\n", s.Name, s.Description)
		}
	case *gen:
		app, err := workload.AppByName(*appName)
		if err != nil {
			fatal(err)
		}
		count := *n
		if count < 0 {
			// A negative cap means "unbounded" to the source layer, which
			// an exporter must not materialize.
			fatal(fmt.Errorf("-n must be >= 0 (0 = the app's Table 3 count), got %d", count))
		}
		if count == 0 {
			count = app.Requests
		}
		src := workload.Source(workload.NewLoadSource(app, *load, count, *seed))
		srcName := app.Name
		if *scenario != "" {
			sc, err := workload.ScenarioByName(*scenario)
			if err != nil {
				fatal(err)
			}
			src = sc.New(app, *load, count, *seed)
			srcName = app.Name + "/" + sc.Name
		}
		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if *jsonl {
			// Streamed: one request in memory at a time.
			written, err := workload.WriteJSONL(w, srcName, *seed, src, count)
			if err != nil {
				fatal(err)
			}
			warnShort(written, count)
			return
		}
		tr, err := workload.Materialize(srcName, *seed, src, count)
		if err != nil {
			fatal(err)
		}
		if err := tr.Save(w); err != nil {
			fatal(err)
		}
		warnShort(len(tr.Requests), count)
		if *out != "" {
			printStats(tr)
		}
	case *describe != "":
		f, err := os.Open(*describe)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := workload.Load(f)
		if err != nil {
			fatal(err)
		}
		printStats(tr)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printStats(tr workload.Trace) {
	s := tr.Describe(cpu.NominalMHz)
	fmt.Printf("app            %s (seed %d)\n", tr.App, tr.Seed)
	fmt.Printf("requests       %d over %.3f s\n", s.Requests, float64(s.DurationNs)/1e9)
	fmt.Printf("offered load   %.1f%% of nominal capacity\n", s.OfferedLoad*100)
	fmt.Printf("service @2.4G  mean %.3f ms, cv %.2f, p50/p95/p99 %.3f/%.3f/%.3f ms\n",
		s.MeanServiceNs/1e6, s.CVService,
		s.P50ServiceNs/1e6, s.P95ServiceNs/1e6, s.P99ServiceNs/1e6)
	fmt.Printf("memory-bound   %.0f%% of work time\n", s.MemShare*100)
	fmt.Printf("interarrival   mean %.3f ms\n", s.MeanInterarrivalNs/1e6)
}

// warnShort flags exports that drained before the requested count.
// Closed-loop sources are the common case: they need completion feedback
// an exporter cannot give, so only their open-loop prefix (one request
// per client) can be captured — drive them live via the simulator entry
// points (SimulateSource) instead.
func warnShort(written, requested int) {
	if written >= requested {
		return
	}
	fmt.Fprintf(os.Stderr,
		"rubiktrace: warning: source drained after %d of %d requests (closed-loop scenarios export only their open-loop prefix; simulate them live instead)\n",
		written, requested)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rubiktrace:", err)
	os.Exit(1)
}
