// Command rubiktrace generates, inspects and summarizes latency-critical
// request traces — the unit of reproducibility in this repository: every
// scheme in a comparison replays the same trace (paper Sec. 5.3).
//
// Usage:
//
//	rubiktrace -gen -app masstree -load 0.4 -n 9000 -seed 7 -out m40.json
//	rubiktrace -describe m40.json
//	rubiktrace -apps
package main

import (
	"flag"
	"fmt"
	"os"

	"rubik/internal/cpu"
	"rubik/internal/workload"
)

func main() {
	var (
		gen      = flag.Bool("gen", false, "generate a trace")
		describe = flag.String("describe", "", "summarize a saved trace file")
		listApps = flag.Bool("apps", false, "list available application models")
		appName  = flag.String("app", "masstree", "application model")
		load     = flag.Float64("load", 0.5, "load fraction of nominal capacity")
		n        = flag.Int("n", 0, "requests (0 = the app's Table 3 count)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	switch {
	case *listApps:
		fmt.Printf("%-10s %-10s %-14s %s\n", "app", "requests", "mean service", "workload")
		for _, a := range workload.Apps() {
			fmt.Printf("%-10s %-10d %-14s %s\n", a.Name, a.Requests,
				fmt.Sprintf("%.3f ms", a.MeanServiceNsAtNominal()/1e6), a.Workload)
		}
	case *gen:
		app, err := workload.AppByName(*appName)
		if err != nil {
			fatal(err)
		}
		count := *n
		if count == 0 {
			count = app.Requests
		}
		tr := workload.GenerateAtLoad(app, *load, count, *seed)
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := tr.Save(w); err != nil {
			fatal(err)
		}
		if *out != "" {
			printStats(tr)
		}
	case *describe != "":
		f, err := os.Open(*describe)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := workload.Load(f)
		if err != nil {
			fatal(err)
		}
		printStats(tr)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printStats(tr workload.Trace) {
	s := tr.Describe(cpu.NominalMHz)
	fmt.Printf("app            %s (seed %d)\n", tr.App, tr.Seed)
	fmt.Printf("requests       %d over %.3f s\n", s.Requests, float64(s.DurationNs)/1e9)
	fmt.Printf("offered load   %.1f%% of nominal capacity\n", s.OfferedLoad*100)
	fmt.Printf("service @2.4G  mean %.3f ms, cv %.2f, p50/p95/p99 %.3f/%.3f/%.3f ms\n",
		s.MeanServiceNs/1e6, s.CVService,
		s.P50ServiceNs/1e6, s.P95ServiceNs/1e6, s.P99ServiceNs/1e6)
	fmt.Printf("memory-bound   %.0f%% of work time\n", s.MemShare*100)
	fmt.Printf("interarrival   mean %.3f ms\n", s.MeanInterarrivalNs/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rubiktrace:", err)
	os.Exit(1)
}
