// Command rubikbench runs the hot-path micro-benchmarks of the analytical
// model pipeline and the simulation substrate, and emits machine-readable
// BENCH_<name>.json files, so the perf trajectory (event engine, core
// event cycle, table rebuild, convolution chain, per-event decision,
// cluster simulation) can be tracked across commits without scraping `go
// test -bench` text output.
//
// Usage:
//
//	rubikbench [-out dir] [-bench regexp] [-count n] [-list]
//	rubikbench -baseline dir   compare a fresh run against saved BENCH_*.json
//	rubikbench -baseline dir -gate 15   additionally exit 3 on a >15% ns/op regression
//
// -count n runs every selected benchmark n times and keeps the fastest
// run (minimum ns/op): the minimum estimates the noise floor of a shared
// runner far better than any single run, so CI feeds it to -gate to cut
// scheduling-jitter flakes.
//
// The repo commits a reference run under bench/baseline (see its
// README), so `rubikbench -baseline bench/baseline` diffs the working
// tree against the last recorded trajectory point without hunting for
// CI artifacts; CI runs that diff with -gate 15 and annotates the build
// on regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"rubik"
	rubikcore "rubik/internal/core"
	"rubik/internal/queueing"
	"rubik/internal/sim"
	"rubik/internal/stats"
	"rubik/internal/workload"
)

// result is the JSON schema of one BENCH_*.json file.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func profiledHistograms(n int) (*stats.Histogram, *stats.Histogram) {
	r := rand.New(rand.NewSource(1))
	histC := stats.NewHistogram(n)
	histM := stats.NewHistogram(n)
	for i := 0; i < n; i++ {
		histC.Push(250e3 * (0.5 + r.Float64()))
		histM.Push(20e3 * (0.5 + r.Float64()))
	}
	return histC, histM
}

func profiledSamples(n int) ([]float64, []float64) {
	r := rand.New(rand.NewSource(1))
	comp := make([]float64, n)
	mem := make([]float64, n)
	for i := range comp {
		comp[i] = 250e3 * (0.5 + r.Float64())
		mem[i] = 20e3 * (0.5 + r.Float64())
	}
	return comp, mem
}

func uniformPMF(n int) stats.PMF {
	r := rand.New(rand.NewSource(6))
	p := make([]float64, n)
	var tot float64
	for i := range p {
		p[i] = r.Float64()
		tot += p[i]
	}
	for i := range p {
		p[i] /= tot
	}
	return stats.PMF{Origin: 0, Width: 1000, P: p}
}

// fleetBench mirrors bench_test.go's benchFleet: a 4-socket fleet of
// 6-core Rubik sockets behind socket-local JSQ at a fixed shard count.
// The names are fixed (FleetSimulate1/2/4, never GOMAXPROCS-derived) so
// the BENCH_*.json series stays comparable across runner shapes; the
// 4-vs-1 ratio is the fleet engine's parallel speedup on that runner,
// and the FleetSimulateCached/Uncached pair (tablecache 0 = fleet
// default, -1 = off) is the rebuild cache's before/after.
func fleetBench(shards, tablecache int) func(b *testing.B) {
	return func(b *testing.B) {
		const sockets, cores, nPer = 4, 6, 12000
		app := workload.Masstree()
		sc, err := workload.ScenarioByName("bursty")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := rubik.NewFleet(sockets, cores,
				func(s int) rubik.Source {
					return sc.New(app, 0.5*cores, nPer, rubik.ShardSeed(3, s))
				},
				func(int, int) (rubik.Policy, error) { return rubik.NewController(500_000) })
			cfg.Shards = shards
			cfg.TableCacheEntries = tablecache
			cfg.NewDispatcher = func(int) rubik.Dispatcher { return rubik.JSQDispatcher() }
			res, err := rubik.SimulateFleet(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Served() != sockets*nPer {
				b.Fatalf("served %d of %d", res.Served(), sockets*nPer)
			}
			if tablecache >= 0 && res.TableCache.Lookups() == 0 {
				b.Fatal("rebuild cache never consulted")
			}
		}
	}
}

// cappedFleetBench mirrors bench_test.go's benchFleetCapped: the
// FleetSimulate4 fleet shape with skewed per-socket load under a tight
// waterfilled rack->PDU->socket budget re-allocated every 5 ms, so the
// FleetCapped-vs-FleetSimulate4 delta is the cost of hierarchical
// capping (demand integrals, epoch barriers, tree rounds, retargets).
func cappedFleetBench() func(b *testing.B) {
	return func(b *testing.B) {
		const sockets, cores, nPer = 4, 6, 12000
		app := workload.Masstree()
		sc, err := workload.ScenarioByName("bursty")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := rubik.NewFleet(sockets, cores,
				func(s int) rubik.Source {
					load := 0.3 + 0.4*float64(s)/float64(sockets-1)
					return sc.New(app, load*cores, nPer, rubik.ShardSeed(3, s))
				},
				func(int, int) (rubik.Policy, error) { return rubik.NewController(500_000) })
			cfg.Shards = 4
			cfg.NewDispatcher = func(int) rubik.Dispatcher { return rubik.JSQDispatcher() }
			cfg.Hierarchy = &rubik.HierarchySpec{Levels: []rubik.LevelSpec{
				{Name: "rack", Nodes: 1, CapW: 64},
				{Name: "pdu", Nodes: 2, Oversub: 1.25},
			}}
			cfg.Epoch = 5 * sim.Millisecond
			res, err := rubik.SimulateFleet(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Served() != sockets*nPer {
				b.Fatalf("served %d of %d", res.Served(), sockets*nPer)
			}
			if res.Hierarchy == nil || res.Hierarchy.Reallocations == 0 {
				b.Fatal("hierarchical run never re-allocated")
			}
		}
	}
}

// troughFleetBench mirrors bench_test.go's benchFleetTrough: a 2-socket
// fleet in a diurnal-style trough (10% load) under a fine 2 ms control
// cadence — the regime where table rebuilds dominate wall-clock and
// profile windows repeat between ticks, so the
// FleetSimulateCached/Uncached delta is what the rebuild cache is worth
// where it matters (at the default 100 ms cadence the hit rate is ~0 and
// the cache is neutral).
func troughFleetBench(tablecache int) func(b *testing.B) {
	return func(b *testing.B) {
		const sockets, cores, nPer = 2, 6, 2000
		app := workload.Masstree()
		sc, err := workload.ScenarioByName("bursty")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := rubik.NewFleet(sockets, cores,
				func(s int) rubik.Source {
					return sc.New(app, 0.1*cores, nPer, rubik.ShardSeed(3, s))
				},
				func(int, int) (rubik.Policy, error) {
					rcfg := rubik.DefaultControllerConfig(500_000)
					rcfg.UpdatePeriod = 2 * sim.Millisecond
					return rubik.NewControllerWithConfig(rcfg)
				})
			cfg.Shards = 2
			cfg.TableCacheEntries = tablecache
			cfg.NewDispatcher = func(int) rubik.Dispatcher { return rubik.JSQDispatcher() }
			res, err := rubik.SimulateFleet(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Served() != sockets*nPer {
				b.Fatalf("served %d of %d", res.Served(), sockets*nPer)
			}
			if tablecache >= 0 && res.TableCache.Hits == 0 {
				b.Fatal("trough fleet never hit the rebuild cache")
			}
		}
	}
}

// benches mirrors the micro-benchmarks of bench_test.go at paper
// parameters (128 buckets, 8 rows, 16 positions).
var benches = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"TailTableBuild", func(b *testing.B) {
		histC, histM := profiledHistograms(4096)
		tb, err := rubikcore.NewTableBuilder(0.95, 128, 8, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := tb.Rebuild(histC, histM); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := tb.Rebuild(histC, histM); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"TailTableBuildPacked", func(b *testing.B) {
		// Same rebuild as TailTableBuild with the packed pipeline pinned
		// explicitly (it is the builder default), so the name survives any
		// future default change; TailTableBuildRef is the reference
		// complex pipeline the packed one is measured against.
		histC, histM := profiledHistograms(4096)
		tb, err := rubikcore.NewTableBuilder(0.95, 128, 8, 16)
		if err != nil {
			b.Fatal(err)
		}
		tb.Packed = true
		if _, _, err := tb.Rebuild(histC, histM); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := tb.Rebuild(histC, histM); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"TailTableBuildRef", func(b *testing.B) {
		histC, histM := profiledHistograms(4096)
		tb, err := rubikcore.NewTableBuilder(0.95, 128, 8, 16)
		if err != nil {
			b.Fatal(err)
		}
		tb.Packed = false
		if _, _, err := tb.Rebuild(histC, histM); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := tb.Rebuild(histC, histM); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"TailTableBuildOneShot", func(b *testing.B) {
		comp, mem := profiledSamples(4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rubikcore.BuildTailTable(comp, mem, 0.95, 128, 8, 16); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"ConvolutionFFT", func(b *testing.B) {
		d := uniformPMF(128)
		plan, err := stats.NewConvolutionPlan(stats.PlanSizeFor(128, 128, 16))
		if err != nil {
			b.Fatal(err)
		}
		dst := make([]stats.PMF, 16)
		if err := plan.IterConvolutionsInto(dst, d, d); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := plan.IterConvolutionsInto(dst, d, d); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"ConvolutionPacked", func(b *testing.B) {
		// Both 16-position chains in one packed pass — compare against
		// 2x ConvolutionFFT, the two independent reference chains it
		// replaces inside a rebuild.
		c := uniformPMF(128)
		m := uniformPMF(128)
		plan, err := stats.NewPackedConvolutionPlan(stats.PackedPlanSizeFor(128, 128, 16))
		if err != nil {
			b.Fatal(err)
		}
		dstC := make([]stats.PMF, 16)
		dstM := make([]stats.PMF, 16)
		if err := plan.IterSelfConvolutionsInto(dstC, dstM, c, m); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := plan.IterSelfConvolutionsInto(dstC, dstM, c, m); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"HistogramPush", func(b *testing.B) {
		r := rand.New(rand.NewSource(14))
		histC, _ := profiledHistograms(8192)
		vals := make([]float64, 1024)
		for i := range vals {
			vals[i] = 250e3 * (0.5 + r.Float64())
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			histC.Push(vals[i&1023])
		}
	}},
	{"RubikDecision", func(b *testing.B) {
		ctl, err := rubik.NewController(1e6)
		if err != nil {
			b.Fatal(err)
		}
		comp, mem := profiledSamples(512)
		if err := ctl.Bootstrap(comp, mem); err != nil {
			b.Fatal(err)
		}
		v := queueing.View{
			Now:        1_000_000,
			CurrentMHz: 1600,
			Queue: []queueing.QueuedRequest{
				{Arrival: 100_000}, {Arrival: 400_000}, {Arrival: 900_000},
			},
			HeadElapsedCycles: 120e3,
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f := ctl.OnEvent(v); f <= 0 {
				b.Fatal("bad decision")
			}
		}
	}},
	{"SourceHotPath", func(b *testing.B) {
		// Streaming ingest cycle: generate one request from a source, feed
		// it through the core, fold the completion into the aggregate
		// histogram. Guard: 0 allocs/op (constant-memory streaming path).
		app := workload.Masstree()
		src := workload.NewLoadSource(app, 0.5, b.N, 5)
		cfg := queueing.DefaultConfig()
		cfg.DropCompletions = true
		b.ReportAllocs()
		b.ResetTimer()
		res, err := queueing.RunSource(src, queueing.FixedPolicy{MHz: 2400}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Served != b.N {
			b.Fatalf("served %d of %d", res.Served, b.N)
		}
	}},
	{"ClusterSimulate", func(b *testing.B) {
		tr := workload.GenerateAtLoad(workload.Masstree(), 0.5*6, 12000, 3)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := rubik.NewCluster(6, rubik.JSQDispatcher(), func(int) (rubik.Policy, error) {
				return rubik.NewController(500_000)
			})
			if _, err := rubik.SimulateCluster(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"CappedCluster", func(b *testing.B) {
		tr := workload.GenerateAtLoad(workload.Masstree(), 0.5*6, 12000, 3)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := rubik.NewCappedCluster(6, rubik.JSQDispatcher(), 27, rubik.WaterfillAllocator(),
				func(int) (rubik.Policy, error) {
					return rubik.NewController(500_000)
				})
			if _, err := rubik.SimulateCluster(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"TableCacheHit", func(b *testing.B) {
		// The rebuild cache's hot hit path — fingerprint both PMFs,
		// verify the full key, copy the table — vs TailTableBuild, the
		// full convolution chain it short-circuits. Guard: 0 allocs/op.
		histC, histM := profiledHistograms(8192)
		tb, err := rubikcore.NewTableBuilder(0.95, 128, 8, 16)
		if err != nil {
			b.Fatal(err)
		}
		tb.Cache = rubikcore.NewTableCache(4)
		if _, _, err := tb.Rebuild(histC, histM); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := tb.Rebuild(histC, histM); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if tb.CacheHits() == 0 {
			b.Fatal("cached refreshes never hit")
		}
	}},
	{"FleetSimulate1", fleetBench(1, 0)},
	{"FleetSimulate2", fleetBench(2, 0)},
	{"FleetSimulate4", fleetBench(4, 0)},
	{"FleetSimulateCached", troughFleetBench(0)},
	{"FleetSimulateUncached", troughFleetBench(-1)},
	{"FleetCapped", cappedFleetBench()},
	{"Engine", func(b *testing.B) {
		eng := sim.NewEngine()
		const handles = 16
		fired := 0
		hs := make([]sim.Handle, handles)
		for i := 0; i < handles; i++ {
			i := i
			hs[i] = eng.Register(func() {
				fired++
				if fired <= b.N-handles {
					eng.RescheduleAfter(hs[i], sim.Time(97+13*i))
				}
			})
		}
		b.ReportAllocs()
		b.ResetTimer()
		fired = 0
		for i := range hs {
			eng.Reschedule(hs[i], sim.Time(1+i))
		}
		eng.Run()
		if fired < b.N {
			b.Fatalf("fired %d of %d events", fired, b.N)
		}
	}},
	{"EngineDense", func(b *testing.B) {
		// More live timers than the engine's small-mode capacity, spread
		// over a wide horizon: steady-state wheel scheduling (bitmap scans,
		// bucket drains), where the heap it replaced paid O(log n) sifts.
		eng := sim.NewEngine()
		const handles = 64
		fired := 0
		hs := make([]sim.Handle, handles)
		for i := 0; i < handles; i++ {
			i := i
			hs[i] = eng.Register(func() {
				fired++
				if fired <= b.N-handles {
					eng.RescheduleAfter(hs[i], sim.Time(1500+97*i))
				}
			})
		}
		b.ReportAllocs()
		b.ResetTimer()
		fired = 0
		for i := range hs {
			eng.Reschedule(hs[i], sim.Time(1+i))
		}
		eng.Run()
		if fired < b.N {
			b.Fatalf("fired %d of %d events", fired, b.N)
		}
	}},
	{"CoreEvent", func(b *testing.B) {
		eng := sim.NewEngine()
		cfg := queueing.DefaultConfig()
		cfg.ExpectedRequests = b.N
		c, err := queueing.NewCore(eng, queueing.FixedPolicy{MHz: 2400}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		req := workload.Request{ComputeCycles: 240_000, MemTime: 20_000}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req.ID = i
			req.Arrival = eng.Now()
			c.Enqueue(req)
			eng.Run()
		}
		if got := len(c.Completions()); got != b.N {
			b.Fatalf("completed %d of %d", got, b.N)
		}
	}},
}

// loadBaseline reads BENCH_<name>.json files from a directory (or one
// file), keyed by benchmark name.
func loadBaseline(path string) (map[string]result, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	files := []string{path}
	if st.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "BENCH_*.json"))
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("no BENCH_*.json files in %s", path)
		}
	}
	base := map[string]result{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var r result
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		if r.Name == "" {
			return nil, fmt.Errorf("%s: missing benchmark name", f)
		}
		base[r.Name] = r
	}
	return base, nil
}

// deltaPct formats the relative change from base to cur ("-25.0%").
func deltaPct(base, cur float64) string {
	if base == 0 {
		if cur == 0 {
			return "±0.0%"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", 100*(cur-base)/base)
}

func main() {
	out := flag.String("out", ".", "directory to write BENCH_<name>.json files to")
	pattern := flag.String("bench", ".", "regexp selecting benchmarks to run")
	list := flag.Bool("list", false, "list benchmark names and exit")
	baseline := flag.String("baseline", "", "BENCH_*.json dir (or one file) to diff the fresh run against")
	gate := flag.Float64("gate", 0, "with -baseline: exit 3 when any benchmark regresses more than this percent in ns/op")
	count := flag.Int("count", 1, "runs per benchmark; the minimum-ns/op run is recorded")
	flag.Parse()
	if *count < 1 {
		fmt.Fprintf(os.Stderr, "rubikbench: -count must be >= 1, got %d\n", *count)
		os.Exit(1)
	}

	re, err := regexp.Compile(*pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rubikbench: bad -bench pattern: %v\n", err)
		os.Exit(1)
	}
	if *list {
		for _, bm := range benches {
			fmt.Println(bm.name)
		}
		return
	}
	var base map[string]result
	if *baseline != "" {
		if base, err = loadBaseline(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "rubikbench: -baseline: %v\n", err)
			os.Exit(1)
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "rubikbench: %v\n", err)
		os.Exit(1)
	}
	ran := 0
	var regressions []string
	for _, bm := range benches {
		if !re.MatchString(bm.name) {
			continue
		}
		ran++
		var res result
		for c := 0; c < *count; c++ {
			r := testing.Benchmark(bm.fn)
			// testing.Benchmark discards b.Fatal output and returns a zero
			// result; surface that as a failure instead of emitting NaNs.
			if r.N == 0 {
				fmt.Fprintf(os.Stderr, "rubikbench: benchmark %s failed (zero iterations)\n", bm.name)
				os.Exit(1)
			}
			cur := result{
				Name:        bm.name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if c == 0 || cur.NsPerOp < res.NsPerOp {
				res = cur
			}
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rubikbench: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, "BENCH_"+bm.name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rubikbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-24s %12.0f ns/op %8d B/op %6d allocs/op  -> %s\n",
			bm.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, path)
		if base != nil {
			if b, ok := base[bm.name]; ok {
				fmt.Printf("%-24s %12.0f ns/op (%s) %15d allocs/op (%s)\n",
					"  vs baseline", b.NsPerOp, deltaPct(b.NsPerOp, res.NsPerOp),
					b.AllocsPerOp, deltaPct(float64(b.AllocsPerOp), float64(res.AllocsPerOp)))
				if *gate > 0 && b.NsPerOp > 0 {
					if pct := 100 * (res.NsPerOp - b.NsPerOp) / b.NsPerOp; pct > *gate {
						regressions = append(regressions, fmt.Sprintf(
							"%s: %.0f -> %.0f ns/op (%+.1f%%, gate %.1f%%)",
							bm.name, b.NsPerOp, res.NsPerOp, pct, *gate))
					}
				}
			} else {
				fmt.Printf("%-24s (not in baseline)\n", "  vs baseline")
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rubikbench: no benchmarks match %q\n", *pattern)
		os.Exit(1)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "rubikbench: regression: %s\n", r)
		}
		os.Exit(3)
	}
}
